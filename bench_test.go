package silo

import (
	"fmt"
	"testing"

	"silo/internal/core"
	"silo/internal/harness"
	"silo/internal/logging"
	"silo/internal/pm"
	"silo/internal/sim"
)

// The benchmarks below regenerate each table/figure of the paper's
// evaluation at a reduced scale and report the headline quantity as a
// custom metric, so `go test -bench=.` doubles as a fast reproduction
// sweep. Run `silo-bench -exp all -txns 1250` for the full-scale tables.

const benchTxns = 400 // per run; kept small so -bench=. stays quick

func runSpec(b *testing.B, spec harness.Spec) (r Result) {
	b.Helper()
	r, err := harness.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkDesigns measures simulated throughput and media writes for each
// design on the Btree workload — the core Fig. 11/12 comparison.
func BenchmarkDesigns(b *testing.B) {
	for _, d := range harness.DesignNames() {
		b.Run(d, func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: d, Workload: "Btree", Cores: 4,
					Txns: benchTxns * 4, Seed: int64(i)})
			}
			b.ReportMetric(r.Throughput(), "tx/Mcycle")
			b.ReportMetric(float64(r.MediaWrites)/float64(r.Transactions), "mediaWr/tx")
		})
	}
}

// BenchmarkFig4WriteSize reports bytes written per transaction per
// workload (Fig. 4).
func BenchmarkFig4WriteSize(b *testing.B) {
	for _, wl := range harness.Fig4Names() {
		name := wl
		if wl == "TPCC" {
			name = "TPCC-Mix"
		}
		b.Run(wl, func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: "Silo", Workload: name, Cores: 1,
					Txns: benchTxns, Seed: 1})
			}
			b.ReportMetric(r.WriteBytesPerTx(), "B/tx")
		})
	}
}

// BenchmarkFig11WriteTraffic reports media writes per transaction for
// every design at 8 cores (Fig. 11d).
func BenchmarkFig11WriteTraffic(b *testing.B) {
	for _, d := range harness.DesignNames() {
		b.Run(d, func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: d, Workload: "Hash", Cores: 8,
					Txns: benchTxns * 8, Seed: 1})
			}
			b.ReportMetric(float64(r.MediaWrites)/float64(r.Transactions), "mediaWr/tx")
			b.ReportMetric(float64(r.MediaBytes)/float64(r.Transactions), "mediaB/tx")
		})
	}
}

// BenchmarkFig12Throughput reports simulated throughput for every design
// at 8 cores (Fig. 12d).
func BenchmarkFig12Throughput(b *testing.B) {
	for _, d := range harness.DesignNames() {
		b.Run(d, func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: d, Workload: "TPCC", Cores: 8,
					Txns: benchTxns * 8, Seed: 1})
			}
			b.ReportMetric(r.Throughput(), "tx/Mcycle")
		})
	}
}

// BenchmarkFig13LogReduction reports total and remaining on-chip log
// entries per transaction (Fig. 13).
func BenchmarkFig13LogReduction(b *testing.B) {
	for _, wl := range []string{"Array", "Btree", "Hash", "Queue", "RBtree", "TPCC-Mix", "YCSB"} {
		b.Run(wl, func(b *testing.B) {
			var total, remaining float64
			for i := 0; i < b.N; i++ {
				m, _, err := harness.RunMachine(harness.Spec{Design: "Silo", Workload: wl,
					Cores: 1, Txns: benchTxns, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				total, remaining, _ = m.Design().(*core.Silo).LogReduction()
			}
			b.ReportMetric(total, "logs/tx")
			b.ReportMetric(remaining, "remaining/tx")
		})
	}
}

// BenchmarkTable4Battery reports the crash-flush energy of each
// persistence domain (Table IV); it is analytic, so the benchmark also
// measures the model's cost.
func BenchmarkTable4Battery(b *testing.B) {
	var tbl fmt.Stringer
	for i := 0; i < b.N; i++ {
		tbl = harness.Table4(8, 0)
	}
	if tbl.String() == "" {
		b.Fatal("empty table")
	}
}

// BenchmarkFig14Overflow reports the per-operation throughput and media
// writes at 1x and 16x write sets (Fig. 14's endpoints).
func BenchmarkFig14Overflow(b *testing.B) {
	for _, mult := range []int{1, 4, 16} {
		words := mult * logging.DefaultBufferEntries
		b.Run(fmt.Sprintf("%dx", mult), func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: "Silo",
					Workload: fmt.Sprintf("Sweep%d", words), Cores: 4,
					Txns: benchTxns, Seed: 1})
			}
			perOp := float64(words)
			b.ReportMetric(r.Throughput()*perOp, "words/Mcycle")
			b.ReportMetric(float64(r.MediaWrites)/float64(r.Transactions)/perOp, "mediaWr/word")
			b.ReportMetric(float64(r.LogOverflows)/float64(r.Transactions), "overflows/tx")
		})
	}
}

// BenchmarkFig15BufferLatency reports throughput at 8 vs 128 cycle log
// buffers (Fig. 15: expected flat).
func BenchmarkFig15BufferLatency(b *testing.B) {
	for _, lat := range []int{8, 64, 128} {
		b.Run(fmt.Sprintf("%dcy", lat), func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: "Silo", Workload: "Btree", Cores: 4,
					Txns: benchTxns * 4, Seed: 1, LogBufLatency: sim.Cycle(lat)})
			}
			b.ReportMetric(r.Throughput(), "tx/Mcycle")
		})
	}
}

// BenchmarkEngineOverhead measures the simulator's own speed: host
// nanoseconds per simulated memory operation (the number that bounds how
// big an experiment is practical). The cooperative sub-benchmark drives
// the pull-based scheduler directly; legacy routes the same workload
// through the goroutine-per-core channel shim, so the pair quantifies the
// transport rewrite. Both produce bit-identical simulated results.
func BenchmarkEngineOverhead(b *testing.B) {
	for _, tc := range []struct {
		name   string
		legacy bool
	}{{"cooperative", false}, {"legacy", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var ops int64
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: "Silo", Workload: "Btree", Cores: 4,
					Txns: 2000, Seed: int64(i), LegacyEngine: tc.legacy})
				ops = r.Loads + r.Stores + 2*r.Transactions
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops)/float64(b.N), "host-ns/simOp")
			b.ReportMetric(float64(ops), "simOps/run")
		})
	}
}

// --- Ablations (DESIGN.md §4): each design choice on vs off ---

func benchAblation(b *testing.B, spec harness.Spec) {
	var r Result
	for i := 0; i < b.N; i++ {
		r = runSpec(b, spec)
	}
	b.ReportMetric(r.Throughput(), "tx/Mcycle")
	b.ReportMetric(float64(r.MediaWrites)/float64(r.Transactions), "mediaWr/tx")
}

// BenchmarkAblationNoCoalescing disables the on-PM buffer (§III-E).
func BenchmarkAblationNoCoalescing(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("coalescing=%v", on), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "TPCC", Cores: 4,
				Txns: benchTxns * 4, Seed: 1,
				PMMod: func(c *pm.Config) { c.Coalescing = on }})
		})
	}
}

// BenchmarkAblationNoDCW disables data-comparison-write (§III-D).
func BenchmarkAblationNoDCW(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("dcw=%v", on), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "Array", Cores: 4,
				Txns: benchTxns * 4, Seed: 1,
				PMMod: func(c *pm.Config) { c.DCW = on }})
		})
	}
}

// BenchmarkAblationNoMerge disables on-chip log merging (§III-C).
func BenchmarkAblationNoMerge(b *testing.B) {
	for _, off := range []bool{false, true} {
		b.Run(fmt.Sprintf("mergeDisabled=%v", off), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "Queue", Cores: 4,
				Txns: benchTxns * 4, Seed: 1, SiloOpts: core.Options{DisableMerge: off}})
		})
	}
}

// BenchmarkAblationNoIgnore disables log ignorance (§III-C).
func BenchmarkAblationNoIgnore(b *testing.B) {
	for _, off := range []bool{false, true} {
		b.Run(fmt.Sprintf("ignoreDisabled=%v", off), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "Array", Cores: 4,
				Txns: benchTxns * 4, Seed: 1, SiloOpts: core.Options{DisableIgnore: off}})
		})
	}
}

// BenchmarkAblationNoBatchOverflow evicts one log at a time on overflow
// instead of the batched N = ⌊S/18⌋ (§III-F).
func BenchmarkAblationNoBatchOverflow(b *testing.B) {
	for _, single := range []bool{false, true} {
		b.Run(fmt.Sprintf("singleEntry=%v", single), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "Sweep80", Cores: 4,
				Txns: benchTxns, Seed: 1, SiloOpts: core.Options{SingleEntryOverflow: single}})
		})
	}
}

// BenchmarkAblationMultiMC sweeps the number of memory-controller
// channels (§III-D, "Multiple MCs"): Silo's efficiency must not depend on
// MC count because a transaction's logs and in-place updates meet at the
// same controller.
func BenchmarkAblationMultiMC(b *testing.B) {
	for _, ch := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dMCs", ch), func(b *testing.B) {
			benchAblation(b, harness.Spec{Design: "Silo", Workload: "Hash", Cores: 8,
				Txns: benchTxns * 8, Seed: 1,
				PMMod: func(c *pm.Config) { c.Channels = ch }})
		})
	}
}

// BenchmarkAblationLogBufCapacity sweeps the log buffer size around the
// paper's 20 entries (§VI-D).
func BenchmarkAblationLogBufCapacity(b *testing.B) {
	for _, entries := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("%dentries", entries), func(b *testing.B) {
			var r Result
			for i := 0; i < b.N; i++ {
				r = runSpec(b, harness.Spec{Design: "Silo", Workload: "TPCC", Cores: 4,
					Txns: benchTxns * 4, Seed: 1, LogBufEntries: entries})
			}
			b.ReportMetric(r.Throughput(), "tx/Mcycle")
			b.ReportMetric(float64(r.LogOverflows)/float64(r.Transactions), "overflows/tx")
		})
	}
}
