module silo

go 1.23
