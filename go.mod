module silo

go 1.22
