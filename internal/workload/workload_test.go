package workload

import (
	"math/rand"
	"testing"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/machine"
	"silo/internal/pm"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// runWorkload executes a workload on a fresh 1-core Silo machine and
// returns stores and committed transactions.
func runWorkload(t *testing.T, w Workload, txns int) (stores, commits int64) {
	t.Helper()
	m := machine.New(machine.Config{
		Cores:  1,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: core.Factory(core.Options{}),
	})
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(Direct(m.Device()), heap, 1, rand.New(rand.NewSource(9)))
	eng := m.Engine(9)
	eng.Run([]sim.Program{w.Program(0, txns)})
	r := m.CollectStats("Silo", w.Name())
	return r.Stores, r.Transactions
}

func TestRegistryKnownNames(t *testing.T) {
	for _, name := range []string{"Array", "Btree", "Hash", "Queue", "RBtree",
		"YCSB", "YCSB-A", "YCSB-B", "YCSB-C", "Rtree", "Ctrie", "TATP", "Bank",
		"HashMix", "RBtreeMix", "BPtree", "LevelHash"} {
		w := Registry(name)
		if w == nil {
			t.Fatalf("workload %q missing from registry", name)
		}
		if w.Name() != name {
			t.Errorf("registry %q returned %q", name, w.Name())
		}
	}
	if Registry("nope") != nil {
		t.Error("unknown name resolved")
	}
	if len(MicroNames()) != 5 {
		t.Error("micro name list")
	}
}

func TestEveryWorkloadCommits(t *testing.T) {
	for _, name := range []string{"Array", "Btree", "Hash", "Queue", "RBtree",
		"YCSB", "Rtree", "Ctrie", "TATP", "Bank"} {
		name := name
		t.Run(name, func(t *testing.T) {
			stores, commits := runWorkload(t, Registry(name), 100)
			if commits != 100 {
				t.Fatalf("committed %d of 100 transactions", commits)
			}
			if name != "TATP" && name != "YCSB" && stores == 0 {
				t.Error("workload never stored")
			}
			_ = stores
		})
	}
}

// TestWriteSizesSmall checks the Fig. 4 property: OLTP-style transactions
// have small write sets (well under ~0.5 KB on average).
func TestWriteSizesSmall(t *testing.T) {
	for _, name := range []string{"Btree", "Hash", "Queue", "RBtree", "TATP", "Bank", "YCSB", "Ctrie", "Rtree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			stores, commits := runWorkload(t, Registry(name), 200)
			bytesPerTx := float64(stores*8) / float64(commits)
			if bytesPerTx > 512 {
				t.Errorf("avg write size %.0f B/tx exceeds the small-write-set regime", bytesPerTx)
			}
		})
	}
}

// TestArrayIgnoranceShape: the Array workload's sparse elements mean most
// swap stores rewrite identical words — the basis of the paper's 90.4 %
// ignorance rate.
func TestArrayIgnoranceShape(t *testing.T) {
	m := machine.New(machine.Config{
		Cores:  1,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: core.Factory(core.Options{}),
	})
	w := NewArray(512)
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(Direct(m.Device()), heap, 1, rand.New(rand.NewSource(1)))
	m.Engine(1).Run([]sim.Program{w.Program(0, 200)})
	r := m.CollectStats("Silo", "Array")
	ignoreRate := float64(r.LogEntriesIgnored) / float64(r.LogEntriesCreated)
	if ignoreRate < 0.7 {
		t.Errorf("Array ignorance rate %.2f, want > 0.7 (paper: 0.904)", ignoreRate)
	}
}

func TestOpsPerTxScalesWriteSet(t *testing.T) {
	// Bank writes a fixed 5 words per operation, so the scaling is exact.
	w1 := NewBank(1024)
	s1, c1 := runWorkload(t, w1, 100)
	w4 := NewBank(1024)
	w4.SetOpsPerTx(4)
	s4, c4 := runWorkload(t, w4, 100)
	if c1 != 100 || c4 != 100 {
		t.Fatal("commit counts wrong")
	}
	if s4 != 4*s1 {
		t.Errorf("4 ops/tx: stores %d, want exactly %d", s4, 4*s1)
	}
}

func TestTxShapeDefaults(t *testing.T) {
	var s TxShape
	if s.OpsPerTx() != 1 {
		t.Error("default ops per tx != 1")
	}
	s.SetOpsPerTx(-3)
	if s.OpsPerTx() != 1 {
		t.Error("negative ops not clamped")
	}
	s.SetOpsPerTx(7)
	if s.OpsPerTx() != 7 {
		t.Error("setter broken")
	}
}

func TestSweepWritesExactWordCount(t *testing.T) {
	w := NewSweep(40, 160)
	if w.Name() != "Sweep40" || w.Words() != 40 {
		t.Error("sweep metadata")
	}
	stores, commits := runWorkload(t, w, 50)
	if commits != 50 {
		t.Fatal("commits")
	}
	if stores != 50*40 {
		t.Errorf("stores = %d, want %d (distinct words per tx)", stores, 50*40)
	}
}

func TestSweepDistinctWordsPerTx(t *testing.T) {
	// Distinct words matter: they must survive Silo's merge/ignore
	// reduction so the overflow path is really exercised.
	m := machine.New(machine.Config{
		Cores:  1,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: core.Factory(core.Options{}),
	})
	w := NewSweep(60, 240) // 3x the 20-entry buffer
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(Direct(m.Device()), heap, 1, rand.New(rand.NewSource(1)))
	m.Engine(1).Run([]sim.Program{w.Program(0, 30)})
	r := m.CollectStats("Silo", w.Name())
	if r.LogOverflows == 0 {
		t.Error("3x write set never overflowed the log buffer")
	}
}

func TestDirectAccessor(t *testing.T) {
	dev := pm.New(pm.DefaultConfig())
	acc := Direct(dev)
	acc.Store(0x123450, 77)
	if got := acc.Load(0x123450); got != 77 {
		t.Errorf("direct accessor roundtrip = %d", got)
	}
	if dev.Stats().WPQWrites != 0 {
		t.Error("direct accessor counted traffic")
	}
}

func TestMixedWorkloadsCommit(t *testing.T) {
	for _, name := range []string{"HashMix", "RBtreeMix", "BPtree", "LevelHash"} {
		name := name
		t.Run(name, func(t *testing.T) {
			stores, commits := runWorkload(t, Registry(name), 150)
			if commits != 150 {
				t.Fatalf("committed %d", commits)
			}
			if stores == 0 {
				t.Error("churn workload never stored")
			}
		})
	}
}

func TestYCSBVariantsReadShare(t *testing.T) {
	// YCSB-C is read-only: it must store (almost) nothing; YCSB-A writes
	// roughly half as often as the paper's 80%-update mix.
	sDefault, _ := runWorkload(t, Registry("YCSB"), 400)
	sA, _ := runWorkload(t, Registry("YCSB-A"), 400)
	sC, _ := runWorkload(t, Registry("YCSB-C"), 400)
	if sC != 0 {
		t.Errorf("YCSB-C stored %d words; it is read-only", sC)
	}
	if sA >= sDefault {
		t.Errorf("YCSB-A (50%% reads) stored %d >= default 20%%-read mix %d", sA, sDefault)
	}
}
