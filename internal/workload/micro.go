package workload

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// ArrayWL randomly swaps two 64 B elements per transaction (Table III).
type ArrayWL struct {
	TxShape
	n    int
	arrs []*pmds.Array
}

// NewArray builds the Array workload with n elements per core.
func NewArray(n int) *ArrayWL { return &ArrayWL{n: n} }

// Name implements Workload.
func (w *ArrayWL) Name() string { return "Array" }

// Setup implements Workload.
func (w *ArrayWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.arrs = w.arrs[:0]
	for c := 0; c < cores; c++ {
		w.arrs = append(w.arrs, pmds.NewArray(direct, heap, c, w.n))
	}
}

// Program implements Workload.
func (w *ArrayWL) Program(core, txns int) sim.Program {
	arr := w.arrs[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				a := ctx.Rand.Intn(w.n)
				b := ctx.Rand.Intn(w.n)
				arr.Swap(ctx, a, b)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload as a hand-written state machine: the swap's
// sixteen loads and sixteen stores are scheduled directly, with no
// program frame at all. The op and random-draw order is identical to
// Program's (TxBegin; per swap draw i then j, interleave L i_w/L j_w for
// w=0..7, then S i_w/S j_w; TxEnd).
func (w *ArrayWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return &arrayStream{arr: w.arrs[core], n: w.n, ops: w.OpsPerTx(), txns: txns, rng: rng}
}

const (
	arrPhaseBegin = iota
	arrPhaseLoad
	arrPhaseStore
	arrPhaseEnd
)

type arrayStream struct {
	arr  *pmds.Array
	n    int
	ops  int // swaps per transaction
	txns int
	rng  *rand.Rand

	i, j   int // transaction index, swap index within it
	a, b   int // current swap's element indices
	w      int // word index within the swap (0..ElemWords-1)
	side   int // 0 = element a, 1 = element b
	phase  int
	ea, eb [pmds.ElemWords]mem.Word // loaded element contents
	done   bool
}

func (s *arrayStream) Next() (sim.Op, bool) {
	if s.done || s.i >= s.txns {
		return sim.Op{}, false
	}
	switch s.phase {
	case arrPhaseBegin:
		return sim.Op{Kind: sim.OpTxBegin}, true
	case arrPhaseLoad:
		if s.side == 0 {
			return sim.Op{Kind: sim.OpLoad, Addr: s.arr.Elem(s.a, s.w)}, true
		}
		return sim.Op{Kind: sim.OpLoad, Addr: s.arr.Elem(s.b, s.w)}, true
	case arrPhaseStore:
		if s.side == 0 {
			return sim.Op{Kind: sim.OpStore, Addr: s.arr.Elem(s.a, s.w), Data: s.eb[s.w]}, true
		}
		return sim.Op{Kind: sim.OpStore, Addr: s.arr.Elem(s.b, s.w), Data: s.ea[s.w]}, true
	default:
		return sim.Op{Kind: sim.OpTxEnd}, true
	}
}

func (s *arrayStream) Deliver(r sim.Result) {
	if r.Latency < 0 {
		s.done = true
		return
	}
	switch s.phase {
	case arrPhaseBegin:
		s.startSwap()
	case arrPhaseLoad:
		if s.side == 0 {
			s.ea[s.w] = r.Value
			s.side = 1
			return
		}
		s.eb[s.w] = r.Value
		s.side = 0
		if s.w++; s.w == pmds.ElemWords {
			s.w, s.phase = 0, arrPhaseStore
		}
	case arrPhaseStore:
		if s.side == 0 {
			s.side = 1
			return
		}
		s.side = 0
		if s.w++; s.w < pmds.ElemWords {
			return
		}
		if s.j++; s.j < s.ops {
			s.startSwap()
		} else {
			s.phase = arrPhaseEnd
		}
	default: // TxEnd
		s.i++
		s.j = 0
		s.phase = arrPhaseBegin
	}
}

// startSwap draws the next swap's element pair (same order as Program)
// and arms the load phase.
func (s *arrayStream) startSwap() {
	s.a = s.rng.Intn(s.n)
	s.b = s.rng.Intn(s.n)
	s.w, s.side, s.phase = 0, 0, arrPhaseLoad
}

// BtreeWL randomly inserts keys into a per-core B-tree.
type BtreeWL struct {
	TxShape
	keyRange int
	preload  int
	trees    []*pmds.BTree
}

// NewBtree builds the Btree workload: keys uniform in [1, keyRange],
// preload keys inserted during setup.
func NewBtree(keyRange, preload int) *BtreeWL {
	return &BtreeWL{keyRange: keyRange, preload: preload}
}

// Name implements Workload.
func (w *BtreeWL) Name() string { return "Btree" }

// Setup implements Workload.
func (w *BtreeWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.trees = w.trees[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewBTree(direct, heap, c)
		for i := 0; i < w.preload; i++ {
			t.Insert(direct, mem.Word(rng.Intn(w.keyRange))+1)
		}
		w.trees = append(w.trees, t)
	}
}

// Program implements Workload.
func (w *BtreeWL) Program(core, txns int) sim.Program {
	t := w.trees[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				t.Insert(ctx, mem.Word(ctx.Rand.Intn(w.keyRange))+1)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload natively: the tree's insert state machine
// (pmds.BTree.InsertStream) drives the engine with no coroutine at all.
func (w *BtreeWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return w.trees[core].InsertStream(rng, txns, w.OpsPerTx(), w.keyRange)
}

// HashWL randomly inserts key/value items into a per-core hash table.
type HashWL struct {
	TxShape
	buckets int
	preload int
	tables  []*pmds.HashTable
}

// NewHash builds the Hash workload.
func NewHash(buckets, preload int) *HashWL {
	return &HashWL{buckets: buckets, preload: preload}
}

// Name implements Workload.
func (w *HashWL) Name() string { return "Hash" }

// Setup implements Workload.
func (w *HashWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	for c := 0; c < cores; c++ {
		h := pmds.NewHashTable(heap, c, w.buckets)
		for i := 0; i < w.preload; i++ {
			h.Put(direct, mem.Word(rng.Int63n(1<<40))+1, mem.Word(i))
		}
		w.tables = append(w.tables, h)
	}
}

// Program implements Workload.
func (w *HashWL) Program(core, txns int) sim.Program {
	h := w.tables[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				h.Put(ctx, mem.Word(ctx.Rand.Int63n(1<<40))+1, mem.Word(i))
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *HashWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// QueueWL enqueues and dequeues one element per transaction.
type QueueWL struct {
	TxShape
	capacity int
	preload  int
	queues   []*pmds.Queue
}

// NewQueue builds the Queue workload.
func NewQueue(capacity, preload int) *QueueWL {
	return &QueueWL{capacity: capacity, preload: preload}
}

// Name implements Workload.
func (w *QueueWL) Name() string { return "Queue" }

// Setup implements Workload.
func (w *QueueWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.queues = w.queues[:0]
	for c := 0; c < cores; c++ {
		q := pmds.NewQueue(direct, heap, c, w.capacity)
		for i := 0; i < w.preload; i++ {
			q.Enqueue(direct, mem.Word(rng.Int63()))
		}
		w.queues = append(w.queues, q)
	}
}

// Program implements Workload.
func (w *QueueWL) Program(core, txns int) sim.Program {
	q := w.queues[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				q.Enqueue(ctx, mem.Word(ctx.Rand.Int63()))
				q.Dequeue(ctx)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *QueueWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// RBtreeWL randomly inserts keys into a per-core red-black tree.
type RBtreeWL struct {
	TxShape
	keyRange int
	preload  int
	trees    []*pmds.RBTree
}

// NewRBtree builds the RBtree workload.
func NewRBtree(keyRange, preload int) *RBtreeWL {
	return &RBtreeWL{keyRange: keyRange, preload: preload}
}

// Name implements Workload.
func (w *RBtreeWL) Name() string { return "RBtree" }

// Setup implements Workload.
func (w *RBtreeWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.trees = w.trees[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewRBTree(direct, heap, c)
		for i := 0; i < w.preload; i++ {
			k := mem.Word(rng.Intn(w.keyRange)) + 1
			t.Insert(direct, k, k*3)
		}
		w.trees = append(w.trees, t)
	}
}

// Program implements Workload.
func (w *RBtreeWL) Program(core, txns int) sim.Program {
	t := w.trees[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Intn(w.keyRange)) + 1
				t.Insert(ctx, k, k*3)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *RBtreeWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// RtreeWL inserts into the PMDK-style radix tree (Fig. 4).
type RtreeWL struct {
	TxShape
	keyBits int
	trees   []*pmds.RadixTree
}

// NewRtree builds the Rtree workload over keyBits-bit keys.
func NewRtree(keyBits int) *RtreeWL { return &RtreeWL{keyBits: keyBits} }

// Name implements Workload.
func (w *RtreeWL) Name() string { return "Rtree" }

// Setup implements Workload.
func (w *RtreeWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.trees = w.trees[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewRadixTree(direct, heap, c, w.keyBits)
		for i := 0; i < 1000; i++ {
			k := mem.Word(rng.Intn(1 << w.keyBits))
			t.Insert(direct, k, k+7)
		}
		w.trees = append(w.trees, t)
	}
}

// Program implements Workload.
func (w *RtreeWL) Program(core, txns int) sim.Program {
	t := w.trees[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Intn(1 << w.keyBits))
				t.Insert(ctx, k, k+7)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *RtreeWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// CtrieWL inserts into the PMDK-style crit-bit trie (Fig. 4).
type CtrieWL struct {
	TxShape
	keyRange int64
	tries    []*pmds.CritBitTrie
}

// NewCtrie builds the Ctrie workload with keys uniform in [1, keyRange].
func NewCtrie(keyRange int64) *CtrieWL { return &CtrieWL{keyRange: keyRange} }

// Name implements Workload.
func (w *CtrieWL) Name() string { return "Ctrie" }

// Setup implements Workload.
func (w *CtrieWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tries = w.tries[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewCritBitTrie(direct, heap, c)
		for i := 0; i < 1000; i++ {
			k := mem.Word(rng.Int63n(w.keyRange)) + 1
			t.Insert(direct, k, k^0xFF)
		}
		w.tries = append(w.tries, t)
	}
}

// Program implements Workload.
func (w *CtrieWL) Program(core, txns int) sim.Program {
	t := w.tries[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Int63n(w.keyRange)) + 1
				t.Insert(ctx, k, k^0xFF)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *CtrieWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}
