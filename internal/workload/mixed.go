package workload

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// HashMixWL is a churn workload over the persistent hash table: 50 %
// inserts, 30 % deletes, 20 % lookups per operation. It exercises the
// tombstone path and gives crash-injection tests a delete-heavy write
// pattern the paper's insert-only benchmarks never produce.
type HashMixWL struct {
	TxShape
	buckets int
	preload int
	keySpan int64
	tables  []*pmds.HashTable
}

// NewHashMix builds the hash churn workload.
func NewHashMix(buckets, preload int, keySpan int64) *HashMixWL {
	return &HashMixWL{buckets: buckets, preload: preload, keySpan: keySpan}
}

// Name implements Workload.
func (w *HashMixWL) Name() string { return "HashMix" }

// Setup implements Workload.
func (w *HashMixWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	for c := 0; c < cores; c++ {
		h := pmds.NewHashTable(heap, c, w.buckets)
		for i := 0; i < w.preload; i++ {
			h.Put(direct, mem.Word(rng.Int63n(w.keySpan))+1, mem.Word(i))
		}
		w.tables = append(w.tables, h)
	}
}

// Program implements Workload.
func (w *HashMixWL) Program(core, txns int) sim.Program {
	h := w.tables[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Int63n(w.keySpan)) + 1
				switch p := ctx.Rand.Intn(100); {
				case p < 50:
					h.Put(ctx, k, mem.Word(i))
				case p < 80:
					h.Delete(ctx, k)
				default:
					h.Get(ctx, k)
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *HashMixWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// RBtreeMixWL is insert/delete churn over the red-black tree: rotations
// and recolorings run in both directions, scattering pointer writes.
type RBtreeMixWL struct {
	TxShape
	keyRange int
	preload  int
	trees    []*pmds.RBTree
}

// NewRBtreeMix builds the RB-tree churn workload.
func NewRBtreeMix(keyRange, preload int) *RBtreeMixWL {
	return &RBtreeMixWL{keyRange: keyRange, preload: preload}
}

// Name implements Workload.
func (w *RBtreeMixWL) Name() string { return "RBtreeMix" }

// Setup implements Workload.
func (w *RBtreeMixWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.trees = w.trees[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewRBTree(direct, heap, c)
		for i := 0; i < w.preload; i++ {
			k := mem.Word(rng.Intn(w.keyRange)) + 1
			t.Insert(direct, k, k)
		}
		w.trees = append(w.trees, t)
	}
}

// Program implements Workload.
func (w *RBtreeMixWL) Program(core, txns int) sim.Program {
	t := w.trees[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Intn(w.keyRange)) + 1
				if ctx.Rand.Intn(100) < 60 {
					t.Insert(ctx, k, mem.Word(i))
				} else {
					t.Delete(ctx, k)
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *RBtreeMixWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}
