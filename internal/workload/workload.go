// Package workload defines the benchmark workloads of Table III and
// Fig. 4 as programs over the simulated machine: the five
// micro-benchmarks (Array, Btree, Hash, Queue, RBtree), the PMDK
// structures (Rtree, Ctrie), YCSB, TATP, Bank, and the write-set-size
// sweep used for the large-transaction study (Fig. 14). TPCC lives in its
// own package.
//
// Every workload partitions its data per core (one structure instance per
// thread), matching the paper's assumption that isolation is provided by
// software and logs never cross threads (§III-A, §III-C).
package workload

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// Workload is one benchmark: Setup builds initial PM state through the
// untimed direct accessor, then Stream(core, txns, rng) returns the
// pull-based operation stream each simulated core runs on the
// cooperative engine (Program is the same transaction loop in legacy
// goroutine form, kept for the compatibility shim and the
// determinism-equivalence tests). SetOpsPerTx grows the write set of
// every transaction by repeating the workload's operation — the
// mechanism behind the Fig. 14 large-transaction sweep.
//
// Both forms must issue the identical operation sequence and consume
// the per-core random source in the identical order, so a run is
// bit-for-bit reproducible no matter which scheduler drives it.
type Workload interface {
	Name() string
	Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand)
	Program(core, txns int) sim.Program
	Stream(core, txns int, rng *rand.Rand) sim.OpStream
	SetOpsPerTx(n int)
}

// TxShape is embedded by workloads to implement SetOpsPerTx.
type TxShape struct{ ops int }

// SetOpsPerTx sets how many workload operations run inside one
// transaction (minimum 1).
func (s *TxShape) SetOpsPerTx(n int) { s.ops = n }

// OpsPerTx returns the configured operations per transaction.
func (s *TxShape) OpsPerTx() int {
	if s.ops < 1 {
		return 1
	}
	return s.ops
}

// coro runs a workload's transaction loop on the engine's coroutine
// transport — the native port path for data-dependent structures (tree
// descents, chain walks) whose next address depends on loaded values, so
// the op sequence cannot be precomputed into a flat state machine.
func coro(core int, rng *rand.Rand, p sim.Program) sim.OpStream {
	return sim.NewProgramStream(core, rng, p)
}

// Direct returns an untimed accessor writing straight to the PM device —
// used to populate initial state before the simulation starts.
func Direct(dev *pm.Device) pmds.Accessor { return directAccessor{dev} }

type directAccessor struct{ dev *pm.Device }

func (d directAccessor) Load(a mem.Addr) mem.Word     { return d.dev.PeekWord(a) }
func (d directAccessor) Store(a mem.Addr, v mem.Word) { d.dev.PokeWord(a, v) }

// Registry returns the named workload, or nil. TPCC variants are
// registered by the harness (import-cycle hygiene).
func Registry(name string) Workload {
	switch name {
	case "Array":
		return NewArray(4096)
	case "Btree":
		return NewBtree(1<<20, 1000)
	case "Hash":
		return NewHash(1<<15, 2048)
	case "Queue":
		return NewQueue(1024, 512)
	case "RBtree":
		return NewRBtree(1<<20, 1000)
	case "YCSB":
		return NewYCSB(1<<14, 8192, 20) // the paper's 20/80 read/update mix
	case "YCSB-A":
		return NewYCSB(1<<14, 8192, 50).Named("YCSB-A") // standard workload A: 50/50
	case "YCSB-B":
		return NewYCSB(1<<14, 8192, 95).Named("YCSB-B") // standard workload B: 95/5
	case "YCSB-C":
		return NewYCSB(1<<14, 8192, 100).Named("YCSB-C") // standard workload C: read-only
	case "Rtree":
		return NewRtree(20)
	case "Ctrie":
		return NewCtrie(1 << 30)
	case "TATP":
		return NewTATP(8192)
	case "Bank":
		return NewBank(8192)
	case "HashMix":
		return NewHashMix(1<<14, 4096, 12000)
	case "RBtreeMix":
		return NewRBtreeMix(4096, 1024)
	case "BPtree":
		return NewBPtree(1<<18, 2000)
	case "LevelHash":
		return NewLevelHash(1<<12, 4096, 20000)
	}
	return nil
}

// MicroNames lists the five micro-benchmarks in Table III order.
func MicroNames() []string { return []string{"Array", "Btree", "Hash", "Queue", "RBtree"} }
