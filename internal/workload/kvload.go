package workload

import (
	"math"
	"math/rand"

	"silo/internal/sim"
)

// KVLoadConfig shapes the cluster client load model.
type KVLoadConfig struct {
	Seed    int64
	Tenants int     // independent client populations (>=1)
	Keys    uint64  // shared keyspace size (>=2)
	ZipfS   float64 // Zipf skew parameter (>1; ~1.07 is YCSB-ish)
	// ReadPercent is the base read share; tenants vary around it so the
	// mix differs per tenant (multi-tenant interference).
	ReadPercent int
	// MeanGap is the mean inter-arrival time per tenant in cycles
	// (open-loop Poisson arrivals).
	MeanGap float64
	// RecentBias is the percent of reads redirected to one of the
	// tenant's own recent writes (read-your-writes pressure: biased
	// reads chase fresh keys, the ones most exposed across a failover).
	// 0 disables the bias and leaves the draw sequence untouched.
	RecentBias int
	// Diurnal modulates the arrival rate with a sinusoid of the given
	// period and amplitude (0 < amp < 1): rate(t) = base * (1 +
	// amp*sin(2πt/period)). Amp 0 or period 0 disables it.
	DiurnalPeriod sim.Cycle
	DiurnalAmp    float64
}

// KVLoad generates the cluster's client requests: per-tenant seeded
// random sources, Zipfian key popularity with a per-tenant rotation (so
// tenants hammer different hot keys), per-tenant read/write mixes, and
// open-loop exponential arrival pacing with an optional diurnal curve.
// It is engine-free — the cluster's event loop asks each tenant for its
// next request and schedules it — and deterministic in its config.
type KVLoad struct {
	cfg     KVLoadConfig
	tenants []tenantState
}

type tenantState struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	readPct int
	rotate  uint64 // per-tenant hot-set rotation offset
	// recent is a small ring of the tenant's latest write keys, fed
	// back into reads when RecentBias fires.
	recent  [8]uint64
	nrecent int
	rpos    int
}

// NewKVLoad builds the load model. Invalid fields are clamped to sane
// defaults so a zero-ish config still generates load.
func NewKVLoad(cfg KVLoadConfig) *KVLoad {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.Keys < 2 {
		cfg.Keys = 2
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.07
	}
	if cfg.ReadPercent < 0 {
		cfg.ReadPercent = 0
	}
	if cfg.ReadPercent > 100 {
		cfg.ReadPercent = 100
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 1000
	}
	if cfg.DiurnalAmp < 0 {
		cfg.DiurnalAmp = 0
	}
	if cfg.DiurnalAmp > 0.9 {
		cfg.DiurnalAmp = 0.9
	}
	l := &KVLoad{cfg: cfg}
	for t := 0; t < cfg.Tenants; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(t)*0x6a09e667f3bcc909))
		// Tenants lean read-heavy / write-heavy around the base mix.
		pct := cfg.ReadPercent + 15*(t%3-1)
		if pct < 0 {
			pct = 0
		}
		if pct > 100 {
			pct = 100
		}
		l.tenants = append(l.tenants, tenantState{
			rng:     rng,
			zipf:    rand.NewZipf(rng, cfg.ZipfS, 1, cfg.Keys-1),
			readPct: pct,
			rotate:  (cfg.Keys / uint64(cfg.Tenants)) * uint64(t),
		})
	}
	return l
}

// Tenants returns the tenant count.
func (l *KVLoad) Tenants() int { return len(l.tenants) }

// Next draws tenant t's next request: its arrival time (now + an
// exponential gap shaped by the diurnal curve at `now`), whether it is
// a read, and the key. The draw order per tenant is fixed, so the whole
// arrival sequence is reproducible from the config alone.
func (l *KVLoad) Next(t int, now sim.Cycle) (at sim.Cycle, read bool, key uint64) {
	ts := &l.tenants[t]
	gap := l.cfg.MeanGap * ts.rng.ExpFloat64() / l.rate(now)
	if gap < 1 {
		gap = 1
	}
	if gap > 1e12 {
		gap = 1e12 // clamp pathological exponential draws
	}
	read = ts.rng.Intn(100) < ts.readPct
	key = (ts.zipf.Uint64() + ts.rotate) % l.cfg.Keys
	if l.cfg.RecentBias > 0 {
		if read {
			if ts.nrecent > 0 && ts.rng.Intn(100) < l.cfg.RecentBias {
				key = ts.recent[ts.rng.Intn(ts.nrecent)]
			}
		} else {
			ts.recent[ts.rpos] = key
			ts.rpos = (ts.rpos + 1) % len(ts.recent)
			if ts.nrecent < len(ts.recent) {
				ts.nrecent++
			}
		}
	}
	return now + sim.Cycle(gap), read, key
}

// rate is the diurnal arrival-rate multiplier at time t (>= 1-amp > 0).
func (l *KVLoad) rate(t sim.Cycle) float64 {
	if l.cfg.DiurnalAmp == 0 || l.cfg.DiurnalPeriod <= 0 {
		return 1
	}
	return 1 + l.cfg.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(l.cfg.DiurnalPeriod))
}
