package workload

import (
	"fmt"
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// SweepWL is the large-transaction workload behind Fig. 14: each
// transaction writes a fixed number of distinct words, scattered across a
// private region, so the write set can be set to 1–16× the log buffer
// capacity and the overflow path is exercised deterministically.
type SweepWL struct {
	TxShape
	words   int // distinct words written per transaction
	lines   int // region size in cachelines
	regions []mem.Addr
}

// NewSweep builds a write-set sweep workload writing `words` distinct
// words per transaction over a region of `lines` cachelines per core.
func NewSweep(words, lines int) *SweepWL {
	if lines < words {
		lines = words
	}
	return &SweepWL{words: words, lines: lines}
}

// Name implements Workload.
func (w *SweepWL) Name() string { return fmt.Sprintf("Sweep%d", w.words) }

// Words returns the per-transaction write-set size in words.
func (w *SweepWL) Words() int { return w.words }

// Setup implements Workload.
func (w *SweepWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.regions = w.regions[:0]
	for c := 0; c < cores; c++ {
		base := heap.AllocLines(c, w.lines)
		for l := 0; l < w.lines; l++ {
			direct.Store(base+mem.Addr(l*mem.LineSize), mem.Word(l))
		}
		w.regions = append(w.regions, base)
	}
}

// Program implements Workload: each transaction touches w.words distinct
// words, one per distinct cacheline, in a random permutation window.
func (w *SweepWL) Program(core, txns int) sim.Program {
	base := w.regions[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			start := ctx.Rand.Intn(w.lines)
			ctx.TxBegin()
			for k := 0; k < w.words; k++ {
				line := (start + k) % w.lines
				wordIdx := ctx.Rand.Intn(mem.WordsPerLine)
				addr := base + mem.Addr(line*mem.LineSize+wordIdx*mem.WordSize)
				ctx.Store(addr, mem.Word(i*w.words+k)+1)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload as a hand-written state machine; the store
// addresses are control-flow-independent, so no program frame is needed.
// Rand-draw order matches Program exactly: the window start before
// TxBegin, then one word index per store.
func (w *SweepWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return &sweepStream{base: w.regions[core], words: w.words, lines: w.lines, txns: txns, rng: rng}
}

const (
	sweepPhaseBegin = iota
	sweepPhaseStore
	sweepPhaseEnd
)

type sweepStream struct {
	base  mem.Addr
	words int
	lines int
	txns  int
	rng   *rand.Rand

	i, k  int // transaction index, store index within it
	start int // window start for the current transaction
	phase int
	done  bool
}

func (s *sweepStream) Next() (sim.Op, bool) {
	if s.done || s.i >= s.txns {
		return sim.Op{}, false
	}
	switch s.phase {
	case sweepPhaseBegin:
		s.start = s.rng.Intn(s.lines)
		return sim.Op{Kind: sim.OpTxBegin}, true
	case sweepPhaseStore:
		line := (s.start + s.k) % s.lines
		wordIdx := s.rng.Intn(mem.WordsPerLine)
		addr := s.base + mem.Addr(line*mem.LineSize+wordIdx*mem.WordSize)
		return sim.Op{Kind: sim.OpStore, Addr: addr, Data: mem.Word(s.i*s.words+s.k) + 1}, true
	default:
		return sim.Op{Kind: sim.OpTxEnd}, true
	}
}

func (s *sweepStream) Deliver(r sim.Result) {
	if r.Latency < 0 {
		s.done = true
		return
	}
	switch s.phase {
	case sweepPhaseBegin:
		s.k, s.phase = 0, sweepPhaseStore
	case sweepPhaseStore:
		if s.k++; s.k == s.words {
			s.phase = sweepPhaseEnd
		}
	default:
		s.i++
		s.phase = sweepPhaseBegin
	}
}
