package workload

import (
	"fmt"
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// SweepWL is the large-transaction workload behind Fig. 14: each
// transaction writes a fixed number of distinct words, scattered across a
// private region, so the write set can be set to 1–16× the log buffer
// capacity and the overflow path is exercised deterministically.
type SweepWL struct {
	TxShape
	words   int // distinct words written per transaction
	lines   int // region size in cachelines
	regions []mem.Addr
}

// NewSweep builds a write-set sweep workload writing `words` distinct
// words per transaction over a region of `lines` cachelines per core.
func NewSweep(words, lines int) *SweepWL {
	if lines < words {
		lines = words
	}
	return &SweepWL{words: words, lines: lines}
}

// Name implements Workload.
func (w *SweepWL) Name() string { return fmt.Sprintf("Sweep%d", w.words) }

// Words returns the per-transaction write-set size in words.
func (w *SweepWL) Words() int { return w.words }

// Setup implements Workload.
func (w *SweepWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.regions = w.regions[:0]
	for c := 0; c < cores; c++ {
		base := heap.AllocLines(c, w.lines)
		for l := 0; l < w.lines; l++ {
			direct.Store(base+mem.Addr(l*mem.LineSize), mem.Word(l))
		}
		w.regions = append(w.regions, base)
	}
}

// Program implements Workload: each transaction touches w.words distinct
// words, one per distinct cacheline, in a random permutation window.
func (w *SweepWL) Program(core, txns int) sim.Program {
	base := w.regions[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			start := ctx.Rand.Intn(w.lines)
			ctx.TxBegin()
			for k := 0; k < w.words; k++ {
				line := (start + k) % w.lines
				wordIdx := ctx.Rand.Intn(mem.WordsPerLine)
				addr := base + mem.Addr(line*mem.LineSize+wordIdx*mem.WordSize)
				ctx.Store(addr, mem.Word(i*w.words+k)+1)
			}
			ctx.TxEnd()
		}
	}
}
