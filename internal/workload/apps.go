package workload

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// YCSBWL is the YCSB key-value workload from Whisper, configured like
// MorLog (§VI-A): a read/update mix over a persistent hash table, 20 %
// reads and 80 % updates by default, 64 B items.
type YCSBWL struct {
	TxShape
	name     string
	buckets  int
	keys     int
	readPct  int
	tables   []*pmds.HashTable
	keysByCo [][]mem.Word
}

// NewYCSB builds the YCSB workload: keys records preloaded into a
// buckets-bucket table per core, readPct percent point reads.
func NewYCSB(buckets, keys, readPct int) *YCSBWL {
	return &YCSBWL{name: "YCSB", buckets: buckets, keys: keys, readPct: readPct}
}

// Named returns the workload under a distinct registry name (the
// YCSB-A/B/C mixes).
func (w *YCSBWL) Named(name string) *YCSBWL {
	w.name = name
	return w
}

// Name implements Workload.
func (w *YCSBWL) Name() string { return w.name }

// Setup implements Workload.
func (w *YCSBWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	w.keysByCo = w.keysByCo[:0]
	for c := 0; c < cores; c++ {
		h := pmds.NewHashTable(heap, c, w.buckets)
		ks := make([]mem.Word, 0, w.keys)
		for i := 0; i < w.keys; i++ {
			k := mem.Word(rng.Int63n(1<<40)) + 1
			if h.Put(direct, k, mem.Word(i)) {
				ks = append(ks, k)
			}
		}
		w.tables = append(w.tables, h)
		w.keysByCo = append(w.keysByCo, ks)
	}
}

// Program implements Workload.
func (w *YCSBWL) Program(core, txns int) sim.Program {
	h := w.tables[core]
	ks := w.keysByCo[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := ks[ctx.Rand.Intn(len(ks))]
				if ctx.Rand.Intn(100) < w.readPct {
					h.Get(ctx, k)
				} else {
					h.UpdateValue(ctx, k, mem.Word(i))
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *YCSBWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// TATPWL models the telecom benchmark's dominant transactions (Fig. 4):
// a subscriber table of 64 B rows; 80 % reads (GET_SUBSCRIBER_DATA) and
// 20 % location updates writing two words (UPDATE_LOCATION) — the very
// small OLTP write sets the paper's Fig. 4 highlights.
type TATPWL struct {
	TxShape
	subscribers int
	tables      []mem.Addr
}

// NewTATP builds the TATP workload with the given subscribers per core.
func NewTATP(subscribers int) *TATPWL { return &TATPWL{subscribers: subscribers} }

// Name implements Workload.
func (w *TATPWL) Name() string { return "TATP" }

// Setup implements Workload.
func (w *TATPWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	for c := 0; c < cores; c++ {
		base := heap.AllocLines(c, w.subscribers)
		for s := 0; s < w.subscribers; s++ {
			row := base + mem.Addr(s*mem.LineSize)
			direct.Store(row, mem.Word(s)+1)                // s_id
			direct.Store(row+8, mem.Word(rng.Int63()))      // sub_nbr
			direct.Store(row+16, 0)                         // bit/hex flags
			direct.Store(row+24, mem.Word(rng.Intn(1<<16))) // vlr_location
		}
		w.tables = append(w.tables, base)
	}
}

// Program implements Workload.
func (w *TATPWL) Program(core, txns int) sim.Program {
	base := w.tables[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				row := base + mem.Addr(ctx.Rand.Intn(w.subscribers)*mem.LineSize)
				if ctx.Rand.Intn(100) < 80 {
					// GET_SUBSCRIBER_DATA: read the row.
					for f := 0; f < 4; f++ {
						ctx.Load(row + mem.Addr(f*8))
					}
				} else {
					// UPDATE_LOCATION: read s_id, write vlr_location + flags.
					ctx.Load(row)
					ctx.Store(row+24, mem.Word(ctx.Rand.Intn(1<<16)))
					ctx.Store(row+16, mem.Word(i)&0xFF)
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *TATPWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// BankWL models the banking benchmark (Fig. 4): random transfers between
// two accounts — two balance reads, two balance writes and an audit-log
// append per transaction.
type BankWL struct {
	TxShape
	accounts int
	tables   []mem.Addr
	auditPos []mem.Addr
}

// NewBank builds the Bank workload with the given accounts per core.
func NewBank(accounts int) *BankWL { return &BankWL{accounts: accounts} }

// Name implements Workload.
func (w *BankWL) Name() string { return "Bank" }

// Setup implements Workload.
func (w *BankWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	w.auditPos = w.auditPos[:0]
	for c := 0; c < cores; c++ {
		base := heap.Alloc(c, w.accounts*mem.WordSize, mem.LineSize)
		for a := 0; a < w.accounts; a++ {
			direct.Store(base+mem.Addr(a*8), 1000)
		}
		w.tables = append(w.tables, base)
		w.auditPos = append(w.auditPos, heap.AllocLines(c, 4096))
	}
}

// Program implements Workload.
func (w *BankWL) Program(core, txns int) sim.Program {
	base := w.tables[core]
	audit := w.auditPos[core]
	auditLen := mem.Addr(4096 * mem.LineSize)
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				from := mem.Addr(ctx.Rand.Intn(w.accounts) * 8)
				to := mem.Addr(ctx.Rand.Intn(w.accounts) * 8)
				amt := mem.Word(ctx.Rand.Intn(100)) + 1
				bf := ctx.Load(base + from)
				bt := ctx.Load(base + to)
				ctx.Store(base+from, bf-amt)
				ctx.Store(base+to, bt+amt)
				slot := audit + (mem.Addr(i*w.OpsPerTx()+j)*16)%auditLen
				ctx.Store(slot, mem.Word(from)<<32|mem.Word(to))
				ctx.Store(slot+8, amt)
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *BankWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}
