package workload

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
)

// BPtreeWL drives the FAST&FAIR-style B+-tree: random inserts with an
// occasional short range scan, the access pattern of a PM index serving
// an OLTP secondary index.
type BPtreeWL struct {
	TxShape
	keyRange int
	preload  int
	trees    []*pmds.BPTree
}

// NewBPtree builds the B+-tree workload.
func NewBPtree(keyRange, preload int) *BPtreeWL {
	return &BPtreeWL{keyRange: keyRange, preload: preload}
}

// Name implements Workload.
func (w *BPtreeWL) Name() string { return "BPtree" }

// Setup implements Workload.
func (w *BPtreeWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.trees = w.trees[:0]
	for c := 0; c < cores; c++ {
		t := pmds.NewBPTree(direct, heap, c)
		for i := 0; i < w.preload; i++ {
			k := mem.Word(rng.Intn(w.keyRange)) + 1
			t.Insert(direct, k, k*2)
		}
		w.trees = append(w.trees, t)
	}
}

// Program implements Workload.
func (w *BPtreeWL) Program(core, txns int) sim.Program {
	t := w.trees[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Intn(w.keyRange)) + 1
				switch p := ctx.Rand.Intn(100); {
				case p < 70:
					t.Insert(ctx, k, k*2)
				case p < 85:
					t.Delete(ctx, k)
				default:
					t.Scan(ctx, k, 8, func(mem.Word, mem.Word) {})
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *BPtreeWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}

// LevelHashWL drives the two-level write-optimized hash with churn.
type LevelHashWL struct {
	TxShape
	topBuckets int
	keySpan    int64
	preload    int
	tables     []*pmds.LevelHash
}

// NewLevelHash builds the level-hashing workload.
func NewLevelHash(topBuckets, preload int, keySpan int64) *LevelHashWL {
	return &LevelHashWL{topBuckets: topBuckets, preload: preload, keySpan: keySpan}
}

// Name implements Workload.
func (w *LevelHashWL) Name() string { return "LevelHash" }

// Setup implements Workload.
func (w *LevelHashWL) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	w.tables = w.tables[:0]
	for c := 0; c < cores; c++ {
		h := pmds.NewLevelHash(heap, c, w.topBuckets)
		for i := 0; i < w.preload; i++ {
			h.Insert(direct, mem.Word(rng.Int63n(w.keySpan))+1, mem.Word(i))
		}
		w.tables = append(w.tables, h)
	}
}

// Program implements Workload: insert/delete churn keeps the load steady
// below the movement ceiling so inserts stay one-movement-bounded.
func (w *LevelHashWL) Program(core, txns int) sim.Program {
	h := w.tables[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < w.OpsPerTx(); j++ {
				k := mem.Word(ctx.Rand.Int63n(w.keySpan)) + 1
				switch p := ctx.Rand.Intn(100); {
				case p < 45:
					h.Insert(ctx, k, mem.Word(i))
				case p < 80:
					h.Delete(ctx, k)
				default:
					h.Get(ctx, k)
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements Workload on the coroutine transport.
func (w *LevelHashWL) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return coro(core, rng, w.Program(core, txns))
}
