package pm

import (
	"math/bits"

	"silo/internal/mem"
)

// This file holds the device's flattened hot structures: open-addressed
// address tables over dense entry storage, replacing the Go maps that
// dominated the device's profile. Both tables use multiplicative
// (Fibonacci) hashing and linear probing; entries carry their data
// inline, so the lookup that used to be a map access plus a pointer
// chase is one probe into a contiguous slice.

// fibMul is 2^64 / phi, the classic multiplicative-hash constant.
const fibMul = 0x9E3779B97F4A7C15

// byteMask expands an 8-bit per-byte mask into the 64-bit word mask with
// 0xFF at every selected byte lane — the DCW merge operates on whole
// words under this mask instead of byte at a time.
var byteMask [256]uint64

func init() {
	for m := 0; m < 256; m++ {
		var w uint64
		for b := 0; b < 8; b++ {
			if m&(1<<b) != 0 {
				w |= 0xFF << (8 * b)
			}
		}
		byteMask[m] = w
	}
}

// nonzeroBytes returns how many of x's 8 byte lanes are nonzero — the
// changed-byte count of a masked XOR diff.
func nonzeroBytes(x uint64) int {
	x |= x >> 4
	x |= x >> 2
	x |= x >> 1
	x &= 0x0101010101010101
	return bits.OnesCount64(x)
}

// mediaEntry is one 64 B media line with its wear counter inline: media
// contents and the endurance histogram always grow together (wear is
// only incremented on a media write), so one table serves both.
type mediaEntry struct {
	line mem.Addr
	wear int64
	data [mem.LineSize]byte
}

// mediaSlot is one index slot: the line tag is duplicated here so a probe
// resolves without a dependent load into the entry storage.
type mediaSlot struct {
	line mem.Addr
	ref  int32 // entry index + 1; 0 = empty
}

// mediaTable indexes mediaEntry storage by line address. Lines are never
// removed, so probing needs no deletion handling. Entry pointers are
// invalidated by the next getOrInsert (the dense slice may grow); callers
// must not hold one across inserts.
type mediaTable struct {
	slots   []mediaSlot
	shift   uint // 64 - log2(len(slots))
	entries []mediaEntry
}

func newMediaTable() *mediaTable {
	return &mediaTable{slots: make([]mediaSlot, 1024), shift: 64 - 10}
}

func (t *mediaTable) home(line mem.Addr) int {
	return int((uint64(line) * fibMul) >> t.shift)
}

// get returns the entry for line, or nil.
func (t *mediaTable) get(line mem.Addr) *mediaEntry {
	mask := len(t.slots) - 1
	for i := t.home(line); ; i = (i + 1) & mask {
		s := t.slots[i]
		if s.ref == 0 {
			return nil
		}
		if s.line == line {
			return &t.entries[s.ref-1]
		}
	}
}

// getOrInsert returns the entry for line, creating a zeroed one if absent.
func (t *mediaTable) getOrInsert(line mem.Addr) *mediaEntry {
	mask := len(t.slots) - 1
	i := t.home(line)
	for t.slots[i].ref != 0 {
		if t.slots[i].line == line {
			return &t.entries[t.slots[i].ref-1]
		}
		i = (i + 1) & mask
	}
	if 4*len(t.entries) >= 3*len(t.slots) {
		t.grow()
		mask = len(t.slots) - 1
		i = t.home(line)
		for t.slots[i].ref != 0 {
			i = (i + 1) & mask
		}
	}
	t.entries = append(t.entries, mediaEntry{line: line})
	t.slots[i] = mediaSlot{line: line, ref: int32(len(t.entries))}
	return &t.entries[len(t.entries)-1]
}

func (t *mediaTable) grow() {
	t.shift--
	t.slots = make([]mediaSlot, 2*len(t.slots))
	mask := len(t.slots) - 1
	for idx := range t.entries {
		line := t.entries[idx].line
		i := t.home(line)
		for t.slots[i].ref != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = mediaSlot{line: line, ref: int32(idx + 1)}
	}
}

// reset empties the table for an unrelated new run, keeping the slot
// array and entry storage at their grown capacity. A reset table is
// observationally identical to a fresh one — every lookup misses, every
// insert starts from zeroed entry contents, and iteration (always over
// the dense entries in insertion order) sees the same sequence — only
// the grow/rehash/realloc churn of repopulating from the 1024-slot seed
// size is gone, which is the dominant per-campaign allocation cost of
// the torture fleet.
func (t *mediaTable) reset() {
	clear(t.slots)
	t.entries = t.entries[:0]
}

// memFootprint approximates the table's retained bytes, so a recycler
// can drop a table that one outsized campaign ballooned.
func (t *mediaTable) memFootprint() int {
	return cap(t.slots)*16 + cap(t.entries)*(16+mem.LineSize)
}

// bufLine is one on-PM buffer line in the fixed pool: contents plus a
// one-bit-per-byte dirty bitmap (the per-byte bool slice it replaces was
// 8x the footprint and byte-at-a-time to scan).
type bufLine struct {
	base  mem.Addr
	lru   int64
	data  []byte
	dirty []uint64
}

// isDirty reports byte off's dirty bit.
func (l *bufLine) isDirty(off int) bool {
	return l.dirty[off>>6]>>(off&63)&1 != 0
}

// markDirty sets the dirty bits for [off, off+n).
func (l *bufLine) markDirty(off, n int) {
	for b := off; b < off+n; {
		bit := b & 63
		span := 64 - bit
		if rem := off + n - b; span > rem {
			span = rem
		}
		m := ^uint64(0)
		if span < 64 {
			m = (1<<span - 1) << bit
		}
		l.dirty[b>>6] |= m
		b += span
	}
}

// bufTable is the on-PM buffer: a fixed pool of capacity+1 line slots
// (bufMerge inserts before evicting, so the pool briefly overshoots by
// one) behind an open-addressed index with backward-shift deletion.
// Slots are recycled through a freelist; their byte storage is allocated
// once and reused, so steady-state buffer churn allocates nothing. Live
// lines are threaded on an intrusive recency list (head = least recently
// touched) so LRU eviction is O(1) instead of a pool scan; list order
// equals ascending lru because every touch is a move-to-tail.
type bufTable struct {
	slots []int32 // pool index + 1; 0 = empty
	mask  int
	pool  []bufLine
	used  []bool
	free  []int32
	n     int // live lines

	prev, next []int32 // recency list links by pool index; -1 = none
	head, tail int32
}

func newBufTable(lines, lineSize int) *bufTable {
	poolN := lines + 1
	capSlots := 8
	for capSlots < 4*poolN {
		capSlots <<= 1
	}
	t := &bufTable{
		slots: make([]int32, capSlots),
		mask:  capSlots - 1,
		pool:  make([]bufLine, poolN),
		used:  make([]bool, poolN),
		prev:  make([]int32, poolN),
		next:  make([]int32, poolN),
		head:  -1,
		tail:  -1,
	}
	words := (lineSize + 63) / 64
	for i := range t.pool {
		t.pool[i].data = make([]byte, lineSize)
		t.pool[i].dirty = make([]uint64, words)
		t.free = append(t.free, int32(i))
	}
	return t
}

// reset returns the table to its just-constructed state — empty index,
// full freelist in construction order, no recency links — keeping the
// pool's byte storage. Only valid when the geometry (lines, line size)
// is unchanged; a different geometry needs newBufTable.
func (t *bufTable) reset() {
	clear(t.slots)
	t.free = t.free[:0]
	for i := range t.pool {
		t.used[i] = false
		t.free = append(t.free, int32(i))
	}
	t.n = 0
	t.head, t.tail = -1, -1
}

// unlink removes pool index idx from the recency list.
func (t *bufTable) unlink(idx int32) {
	p, n := t.prev[idx], t.next[idx]
	if p >= 0 {
		t.next[p] = n
	} else {
		t.head = n
	}
	if n >= 0 {
		t.prev[n] = p
	} else {
		t.tail = p
	}
}

// touch moves pool index idx to the recency-list tail (most recent).
func (t *bufTable) touch(idx int32) {
	if t.tail == idx {
		return
	}
	t.unlink(idx)
	t.prev[idx], t.next[idx] = t.tail, -1
	if t.tail >= 0 {
		t.next[t.tail] = idx
	} else {
		t.head = idx
	}
	t.tail = idx
}

func (t *bufTable) home(base mem.Addr) int {
	return int((uint64(base)*fibMul)>>32) & t.mask
}

// get returns the line for base, or nil.
func (t *bufTable) get(base mem.Addr) *bufLine {
	for i := t.home(base); ; i = (i + 1) & t.mask {
		s := t.slots[i]
		if s == 0 {
			return nil
		}
		if l := &t.pool[s-1]; l.base == base {
			return l
		}
	}
}

// getOrInsert returns the line for base and its pool index, taking a pool
// slot (dirty bits cleared; stale data bytes under clean bits are never
// read) when absent. The caller touches idx to record recency.
func (t *bufTable) getOrInsert(base mem.Addr) (l *bufLine, idx int32, inserted bool) {
	i := t.home(base)
	for t.slots[i] != 0 {
		if idx = t.slots[i] - 1; t.pool[idx].base == base {
			return &t.pool[idx], idx, false
		}
		i = (i + 1) & t.mask
	}
	idx = t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.slots[i] = idx + 1
	t.used[idx] = true
	t.n++
	l = &t.pool[idx]
	l.base = base
	clear(l.dirty)
	t.prev[idx], t.next[idx] = t.tail, -1
	if t.tail >= 0 {
		t.next[t.tail] = idx
	} else {
		t.head = idx
	}
	t.tail = idx
	return l, idx, true
}

// del removes base's line, returning its slot to the pool. Backward-shift
// deletion keeps probe chains tombstone-free.
func (t *bufTable) del(base mem.Addr) {
	i := t.home(base)
	for {
		s := t.slots[i]
		if s == 0 {
			return
		}
		if t.pool[s-1].base == base {
			break
		}
		i = (i + 1) & t.mask
	}
	idx := t.slots[i] - 1
	t.used[idx] = false
	t.free = append(t.free, idx)
	t.n--
	t.unlink(idx)
	j := i
	for {
		t.slots[i] = 0
		for {
			j = (j + 1) & t.mask
			if t.slots[j] == 0 {
				return
			}
			// The entry at j may fill the hole at i unless its home
			// position lies cyclically inside (i, j].
			k := t.home(t.pool[t.slots[j]-1].base)
			if (j-k)&t.mask >= (j-i)&t.mask {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}
