package pm

import (
	"bytes"
	"testing"
	"testing/quick"

	"silo/internal/mem"
	"silo/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BufLines = 4 // small buffer so evictions happen in tests
	return cfg
}

func TestWriteReadRoundtrip(t *testing.T) {
	d := New(testConfig())
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	d.Write(0, 0x1000, data)
	// Reading while the write still occupies the channel pays interference.
	got, lat := d.Read(0, 0x1000, 8)
	if !bytes.Equal(got, data) {
		t.Errorf("read back %v, want %v", got, data)
	}
	if lat <= d.Config().ReadLatency {
		t.Errorf("contended read latency = %d, want > %d", lat, d.Config().ReadLatency)
	}
	// Long after the queue drained, the read costs the base latency.
	if _, lat := d.Read(1_000_000, 0x1000, 8); lat != d.Config().ReadLatency {
		t.Errorf("idle read latency = %d, want %d", lat, d.Config().ReadLatency)
	}
}

func TestPopulateBypassesAccounting(t *testing.T) {
	d := New(testConfig())
	d.Populate(0x2000, make([]byte, 1024))
	s := d.Stats()
	if s.WPQWrites != 0 || s.MediaWrites != 0 {
		t.Errorf("Populate must not count traffic: %+v", s)
	}
}

func TestPeekPokeWord(t *testing.T) {
	d := New(testConfig())
	d.PokeWord(0x3008, 0xDEADBEEFCAFE)
	if got := d.PeekWord(0x3008); got != 0xDEADBEEFCAFE {
		t.Errorf("PeekWord = %#x", uint64(got))
	}
	// Unwritten memory reads as zero.
	if got := d.PeekWord(0x9999998); got != 0 {
		t.Errorf("unwritten word = %#x, want 0", uint64(got))
	}
}

func TestPokeWordCoherentWithBufferedWrite(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 0x4000, []byte{9, 9, 9, 9, 9, 9, 9, 9}) // lands in on-PM buffer
	d.PokeWord(0x4000, 0x0102030405060708)             // recovery-style write
	if got := d.PeekWord(0x4000); got != 0x0102030405060708 {
		t.Errorf("PokeWord shadowed by stale buffer: %#x", uint64(got))
	}
}

// Fig. 9 case 1: writes with the same buffer-line address and overlapping
// bytes coalesce; the later write wins.
func TestCoalescingOverlap(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 16, []byte{1, 1, 1, 1, 1, 1, 1, 1}) // W1 @16
	d.Write(0, 24, []byte{2, 2, 2, 2, 2, 2, 2, 2}) // W2 @24
	d.Write(0, 20, []byte{3, 3, 3, 3, 3, 3, 3, 3}) // W3 @20 overlaps both
	got := d.Peek(16, 16)
	want := []byte{1, 1, 1, 1, 3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2}
	if !bytes.Equal(got, want) {
		t.Errorf("coalesced bytes = %v, want %v", got, want)
	}
	d.DrainAll()
	if s := d.Stats(); s.MediaWrites != 1 {
		t.Errorf("case-1 coalescing: %d media writes, want 1", s.MediaWrites)
	}
}

// Fig. 9 case 2: same line, disjoint bytes — one media write.
func TestCoalescingSameLine(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 400, []byte{4, 4, 4, 4, 4, 4, 4, 4})
	d.Write(0, 408, []byte{5, 5, 5, 5, 5, 5, 5, 5})
	d.DrainAll()
	if s := d.Stats(); s.MediaWrites != 1 {
		t.Errorf("case-2 coalescing: %d media writes, want 1", s.MediaWrites)
	}
}

// Fig. 9 case 3: words share the buffer with full cachelines.
func TestCoalescingWordWithCacheline(t *testing.T) {
	d := New(testConfig())
	line := make([]byte, mem.LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	d.Write(0, 512, line)                              // cacheline at 512
	d.Write(0, 512+64, []byte{7, 7, 7, 7, 7, 7, 7, 7}) // word in same 256B buffer line
	d.DrainAll()
	// Two 64 B chunks changed -> two media writes, but only one buffer line.
	if s := d.Stats(); s.MediaWrites != 2 {
		t.Errorf("media writes = %d, want 2", s.MediaWrites)
	}
}

func TestDCWSuppressesUnchangedWrites(t *testing.T) {
	d := New(testConfig())
	data := []byte{8, 8, 8, 8, 8, 8, 8, 8}
	d.Write(0, 0x5000, data)
	d.DrainAll()
	before := d.Stats().MediaWrites
	// Writing identical bytes again must not reach the media.
	d.Write(0, 0x5000, data)
	d.DrainAll()
	if got := d.Stats().MediaWrites; got != before {
		t.Errorf("DCW failed: media writes %d -> %d", before, got)
	}
	// Changing a single byte does reach it, costing exactly 1 byte.
	data[3] = 42
	mb := d.Stats().MediaBytes
	d.Write(0, 0x5000, data)
	d.DrainAll()
	if got := d.Stats().MediaWrites; got != before+1 {
		t.Errorf("changed write: media writes %d, want %d", got, before+1)
	}
	if got := d.Stats().MediaBytes; got != mb+1 {
		t.Errorf("changed write: media bytes %d, want %d", got, mb+1)
	}
}

func TestDCWDisabledCountsFullChunks(t *testing.T) {
	cfg := testConfig()
	cfg.DCW = false
	d := New(cfg)
	data := []byte{8, 8, 8, 8, 8, 8, 8, 8}
	d.Write(0, 0x5000, data)
	d.DrainAll()
	d.Write(0, 0x5000, data) // identical, but DCW off
	d.DrainAll()
	if got := d.Stats().MediaWrites; got != 2 {
		t.Errorf("DCW-off media writes = %d, want 2", got)
	}
	if got := d.Stats().MediaBytes; got != 2*mem.LineSize {
		t.Errorf("DCW-off media bytes = %d, want %d", got, 2*mem.LineSize)
	}
}

func TestCoalescingDisabledWritesThrough(t *testing.T) {
	cfg := testConfig()
	cfg.Coalescing = false
	d := New(cfg)
	d.Write(0, 400, []byte{4, 4, 4, 4, 4, 4, 4, 4})
	d.Write(0, 408, []byte{5, 5, 5, 5, 5, 5, 5, 5})
	if got := d.Stats().MediaWrites; got != 2 {
		t.Errorf("no-coalescing media writes = %d, want 2", got)
	}
	if got := d.Peek(400, 8); !bytes.Equal(got, []byte{4, 4, 4, 4, 4, 4, 4, 4}) {
		t.Errorf("write-through content wrong: %v", got)
	}
}

func TestWriteSpanningBufferLines(t *testing.T) {
	d := New(testConfig())
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	// 256B-line boundary at 256: write 224..288 spans two buffer lines.
	d.Write(0, 224, data)
	if got := d.Peek(224, 64); !bytes.Equal(got, data) {
		t.Errorf("spanning write readback wrong")
	}
}

func TestBufferEvictionKeepsContents(t *testing.T) {
	cfg := testConfig() // 4 buffer lines
	d := New(cfg)
	// Write 8 distinct buffer lines: 4 must evict to media.
	for i := 0; i < 8; i++ {
		addr := mem.Addr(i * cfg.BufLineSize)
		d.Write(0, addr, []byte{byte(i + 1), 0, 0, 0, 0, 0, 0, 0})
	}
	for i := 0; i < 8; i++ {
		addr := mem.Addr(i * cfg.BufLineSize)
		if got := d.Peek(addr, 1)[0]; got != byte(i+1) {
			t.Errorf("line %d lost after eviction: %d", i, got)
		}
	}
	if s := d.Stats(); s.MediaWrites < 4 {
		t.Errorf("expected at least 4 media writes from evictions, got %d", s.MediaWrites)
	}
}

func TestWPQAcceptanceBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.WPQEntries = 2
	cfg.Banks = 1
	d := New(cfg)
	// service = 6 + 8 = 14 cycles per 8B write.
	d.Write(0, 0, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	d.Write(0, 8, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	accept, _ := d.Write(0, 16, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	if accept != 14 {
		t.Errorf("backpressured acceptance = %d, want 14", accept)
	}
}

func TestBanksDivideService(t *testing.T) {
	mk := func(banks int) simCycle {
		cfg := testConfig()
		cfg.Banks = banks
		d := New(cfg)
		_, f := d.Write(0, 0, make([]byte, 64))
		return simCycle(f)
	}
	if f1, f4 := mk(1), mk(4); f4 >= f1 {
		t.Errorf("banked service %d not faster than unbanked %d", f4, f1)
	}
}

type simCycle int64

func TestEraseRemovesDataAndFlushesBuffer(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 0x6000, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	before := d.Stats().MediaWrites
	d.Erase(0x6000, 8)
	// The buffered write still reached the media (accounting preserved)...
	if got := d.Stats().MediaWrites; got != before+1 {
		t.Errorf("erase dropped accounting: media writes %d, want %d", got, before+1)
	}
	// ...but the contents are gone everywhere.
	if got := d.PeekWord(0x6000); got != 0 {
		t.Errorf("erased word = %#x, want 0", uint64(got))
	}
}

func TestZeroLengthWrite(t *testing.T) {
	d := New(testConfig())
	a, f := d.Write(123, 0x7000, nil)
	if a != 123 || f != 123 {
		t.Errorf("zero-length write: accept=%d finish=%d", a, f)
	}
	if d.Stats().WPQWrites != 0 {
		t.Error("zero-length write counted")
	}
}

// Property: Peek always returns the bytes of the latest Write/Populate,
// regardless of coalescing and evictions.
func TestDeviceContentProperty(t *testing.T) {
	f := func(ops []struct {
		Addr uint16
		Val  uint8
		Pop  bool
	}) bool {
		d := New(testConfig())
		shadow := make(map[mem.Addr]byte)
		for _, op := range ops {
			a := mem.Addr(op.Addr)
			if op.Pop {
				d.Populate(a, []byte{op.Val})
			} else {
				d.Write(0, a, []byte{op.Val})
			}
			shadow[a] = op.Val
		}
		for a, v := range shadow {
			if d.Peek(a, 1)[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeviceString(t *testing.T) {
	d := New(testConfig())
	if d.String() == "" {
		t.Error("String() empty")
	}
}

func TestChannelsInterleave(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 2
	cfg.Banks = 1
	d := New(cfg)
	if d.Channels() != 2 {
		t.Fatal("channel count")
	}
	// Two writes to different buffer lines land on different channels and
	// drain in parallel: both finish at their own service time.
	_, f1 := d.Write(0, 0, make([]byte, 64))                         // channel 0
	_, f2 := d.Write(0, mem.Addr(cfg.BufLineSize), make([]byte, 64)) // channel 1
	if f1 != f2 {
		t.Errorf("parallel channels should finish together: %d vs %d", f1, f2)
	}
	// Same buffer line -> same channel -> serialized.
	_, f3 := d.Write(0, 8, make([]byte, 64))
	if f3 <= f1 {
		t.Errorf("same-channel write not serialized: %d <= %d", f3, f1)
	}
}

func TestChannelsPreserveContents(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 4
	d := New(cfg)
	for i := 0; i < 64; i++ {
		d.Write(sim.Cycle(i), mem.Addr(i*104), []byte{byte(i + 1)})
	}
	for i := 0; i < 64; i++ {
		if got := d.Peek(mem.Addr(i*104), 1)[0]; got != byte(i+1) {
			t.Fatalf("byte %d lost across channels: %d", i, got)
		}
	}
}

func TestChannelsClampedToOne(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 0
	if d := New(cfg); d.Channels() != 1 {
		t.Error("zero channels not clamped")
	}
}

// TestPopulateOverridesBufferedWrite is the regression test for a
// shadowing bug the property test surfaced: a Populate (setup or
// battery-powered crash flush) following a buffered Write to the same
// bytes must win in the durable view.
func TestPopulateOverridesBufferedWrite(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 0x77a8, []byte{0x37})
	d.Populate(0x77a8, []byte{0x31})
	if got := d.Peek(0x77a8, 1)[0]; got != 0x31 {
		t.Fatalf("stale buffered byte shadowed Populate: %#x", got)
	}
	// And the value survives a buffer drain.
	d.DrainAll()
	if got := d.Peek(0x77a8, 1)[0]; got != 0x31 {
		t.Fatalf("drain resurrected the stale byte: %#x", got)
	}
}

func TestCrashAllowanceUnarmed(t *testing.T) {
	d := New(testConfig())
	if got := d.CrashAllowance(100, false); got != 100 {
		t.Errorf("unarmed allowance = %d, want 100", got)
	}
}

func TestCrashAllowanceUnlimitedBudget(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(0, false, false) // 0 = correctly-provisioned battery
	if got := d.CrashAllowance(1 << 20, false); got != 1<<20 {
		t.Errorf("unlimited allowance = %d", got)
	}
}

func TestCrashAllowanceBudgetExhausts(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(20, false, false)
	if got := d.CrashAllowance(18, false); got != 18 {
		t.Fatalf("first record allowance = %d, want 18", got)
	}
	// 2 bytes remain; without tearing a partial record is dropped whole.
	if got := d.CrashAllowance(18, false); got != 0 {
		t.Errorf("post-budget allowance = %d, want 0", got)
	}
}

func TestCrashAllowanceTearsAtWords(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(20, true, false)
	// 20 bytes for a 30-byte record: torn down to word granularity.
	if got := d.CrashAllowance(30, false); got != 16 {
		t.Errorf("torn allowance = %d, want 16 (20 &^ 7)", got)
	}
}

func TestCrashAllowanceCriticalBypassesBudget(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(8, false, false)
	// Critical records (commit tuples, undo logs) are within the battery's
	// Table IV sizing: they flush in full and do not drain the budget.
	if got := d.CrashAllowance(100, true); got != 100 {
		t.Fatalf("critical allowance = %d, want 100", got)
	}
	if got := d.CrashAllowance(8, false); got != 8 {
		t.Errorf("budget drained by critical record: allowance = %d", got)
	}
}

func TestCrashAllowanceStrictChargesCritical(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(8, false, true) // battery failed below spec
	if got := d.CrashAllowance(100, true); got != 0 {
		t.Errorf("strict critical allowance = %d, want 0", got)
	}
}

func TestClearCrashEnergy(t *testing.T) {
	d := New(testConfig())
	d.SetCrashEnergy(1, false, true)
	d.ClearCrashEnergy()
	// Recovery-time writes must not be limited by the crash battery.
	if got := d.CrashAllowance(100, false); got != 100 {
		t.Errorf("post-clear allowance = %d, want 100", got)
	}
}
