// Package pm models the persistent-memory device of the simulated machine:
// a phase-change-memory DIMM behind the memory controller's write pending
// queue (WPQ), with an internal on-PM buffer and bit-level write reduction.
//
// Three properties matter for the Silo reproduction and are modeled
// faithfully:
//
//   - The WPQ sits in the ADR persistence domain: a write is durable the
//     moment it is *accepted* into the queue, and acceptance can stall when
//     the queue is full, which is how heavy-write designs lose throughput.
//
//   - The on-PM buffer (256 B lines by default) coalesces incoming writes
//     — overlapping words, adjacent words, and 8 B new-data words sharing a
//     line with evicted 64 B cachelines (Fig. 9 cases 1–3) — before they
//     reach the physical media.
//
//   - Data-comparison-write (DCW) suppresses media writes whose bits did
//     not change, so a cacheline evicted after Silo has already in-place
//     updated the same words costs no extra media wear (§III-D).
//
// Because both the WPQ and the on-PM buffer are persistent domains, the
// device applies data eagerly and tracks timing separately: the byte
// contents held by a Device always represent the durable state, which is
// exactly what a crash preserves.
package pm

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// Config parameterizes the device; see DefaultConfig.
type Config struct {
	Layout mem.Layout

	ReadLatency  sim.Cycle // PM read latency (cycles)
	WriteLatency sim.Cycle // PM media write latency (cycles); informational

	WPQEntries     int       // write pending queue slots (ADR domain), per channel
	ServiceBase    sim.Cycle // fixed cycles to drain one WPQ entry
	ServicePerByte sim.Cycle // additional drain cycles per byte
	Banks          int       // parallel PM banks the drain fans out over
	Channels       int       // independent memory controllers / WPQs (§III-D, "Multiple MCs"); requests interleave by on-PM-buffer line address

	BufLineSize int // on-PM buffer line size in bytes (S in §III-F)
	BufLines    int // on-PM buffer capacity in lines

	Coalescing bool // enable on-PM buffer write coalescing
	DCW        bool // enable data-comparison-write media reduction
}

// DefaultConfig mirrors Table II: 50/150 ns read/write at 2 GHz, a
// 64-entry WPQ, and a 256 B on-PM buffer line size.
func DefaultConfig() Config {
	return Config{
		Layout:         mem.DefaultLayout(),
		ReadLatency:    100,
		WriteLatency:   300,
		WPQEntries:     64,
		ServiceBase:    6,
		ServicePerByte: 1,
		Banks:          4,
		Channels:       1,
		BufLineSize:    256,
		BufLines:       64,
		Coalescing:     true,
		DCW:            true,
	}
}

// Stats counts device activity for one run.
type Stats struct {
	WPQWrites   int64 // requests accepted into the WPQ
	WPQBytes    int64
	MediaWrites int64 // 64 B-chunk write requests reaching the physical media
	MediaBytes  int64 // bytes actually programmed (post DCW)
	Reads       int64
}

// Device is the simulated PM DIMM plus the controller-side WPQs (one per
// channel). The durable media (64 B lines, with the per-line wear
// counter inline) and the on-PM buffer live in the flattened
// open-addressed tables of table.go.
type Device struct {
	cfg   Config
	media *mediaTable
	buf   *bufTable
	wpq   []*sim.ServiceQueue
	tick  int64 // LRU clock for the on-PM buffer
	stats Stats

	energy crashEnergy

	// tel receives typed probe events; now is the latest request arrival,
	// which timestamps the buffer/media events the internal paths emit
	// (apply and flushBufLine have no cycle parameter of their own).
	tel *telemetry.Recorder
	now sim.Cycle
}

// SetTelemetry attaches the probe-event recorder (nil disables probes).
func (d *Device) SetTelemetry(r *telemetry.Recorder) { d.tel = r }

// crashEnergy is the battery/ADR budget model for the selective crash
// flush (§III-G): a power failure leaves a bounded number of bytes the
// platform can still push into the persistence domain. The budget is
// armed by SetCrashEnergy at crash time and consumed by CrashAllowance
// as the design's crash flush streams records out.
type crashEnergy struct {
	armed     bool
	unlimited bool
	remaining int
	tearWords bool
	strict    bool
}

// SetCrashEnergy arms the crash-flush energy budget: at most budgetBytes
// of flush traffic survive the power failure (budgetBytes <= 0 models a
// correctly-provisioned battery — unlimited). With tearWords, a record
// that only partially fits is torn at 8-byte-word granularity (a prefix
// of whole words survives); otherwise a partial record is dropped
// entirely. With strict, even critical records (commit ID tuples, undo
// logs — the set the paper's Table IV battery is explicitly sized for)
// draw from the budget; non-strict mode lets them bypass it, modeling
// the guaranteed reserve a real battery dedicates to the must-flush set.
func (d *Device) SetCrashEnergy(budgetBytes int, tearWords, strict bool) {
	d.energy = crashEnergy{
		armed:     true,
		unlimited: budgetBytes <= 0,
		remaining: budgetBytes,
		tearWords: tearWords,
		strict:    strict,
	}
}

// ClearCrashEnergy disarms the budget — power is back; recovery writes
// are not battery-bounded.
func (d *Device) ClearCrashEnergy() { d.energy = crashEnergy{} }

// CrashEnergyRemaining reports the bytes left in an armed, bounded crash
// budget; bounded is false when no finite budget is armed (either power
// is on or the battery is modeled as correctly provisioned).
func (d *Device) CrashEnergyRemaining() (remaining int, bounded bool) {
	if !d.energy.armed || d.energy.unlimited {
		return 0, false
	}
	return d.energy.remaining, true
}

// CrashAllowance consumes budget for an n-byte crash-flush write and
// returns how many of its leading bytes survive: n (fits), 0 (dropped),
// or a word-rounded prefix length (torn). critical marks records the
// battery reserve guarantees (see SetCrashEnergy).
func (d *Device) CrashAllowance(n int, critical bool) int {
	e := &d.energy
	if !e.armed || e.unlimited || (critical && !e.strict) {
		return n
	}
	m := n
	if m > e.remaining {
		m = e.remaining
	}
	e.remaining -= m
	if m < n {
		if !e.tearWords {
			m = 0
		} else {
			m &^= mem.WordSize - 1
		}
	}
	d.tel.CrashEnergy(d.now, n, m, critical)
	return m
}

// New creates a Device from cfg.
func New(cfg Config) *Device {
	if cfg.BufLineSize < mem.LineSize {
		cfg.BufLineSize = mem.LineSize
	}
	if cfg.BufLines < 1 {
		cfg.BufLines = 1
	}
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	d := &Device{
		cfg:   cfg,
		media: newMediaTable(),
		buf:   newBufTable(cfg.BufLines, cfg.BufLineSize),
	}
	for i := 0; i < cfg.Channels; i++ {
		d.wpq = append(d.wpq, sim.NewServiceQueue(cfg.WPQEntries))
	}
	return d
}

// Recycle re-purposes a released device for a new, unrelated run as if
// freshly constructed by New(cfg): all durable contents, wear counters,
// statistics, queue timing, energy budget, and telemetry are discarded.
// Only storage capacity survives — the media table keeps its grown slot
// array and entry storage, and the on-PM buffer keeps its byte pool when
// the geometry matches — so repopulating a working set costs no
// grow/rehash/realloc churn. A recycled device is observationally
// identical to a fresh one; the fleet's fresh-vs-reused equivalence test
// holds this line. (Contrast PowerCycle, which deliberately *preserves*
// media contents, wear, and statistics across a reboot of the same
// simulated system.)
func (d *Device) Recycle(cfg Config) {
	if cfg.BufLineSize < mem.LineSize {
		cfg.BufLineSize = mem.LineSize
	}
	if cfg.BufLines < 1 {
		cfg.BufLines = 1
	}
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	sameBuf := d.cfg.BufLines == cfg.BufLines && d.cfg.BufLineSize == cfg.BufLineSize
	d.cfg = cfg
	d.media.reset()
	if sameBuf {
		d.buf.reset()
	} else {
		d.buf = newBufTable(cfg.BufLines, cfg.BufLineSize)
	}
	// Queues are recreated rather than reset: ServiceQueue.Reset keeps the
	// cumulative accepted counter (a power cycle's contract), and a ring is
	// a few hundred bytes — not worth a special full-reset path.
	d.wpq = d.wpq[:0]
	for i := 0; i < cfg.Channels; i++ {
		d.wpq = append(d.wpq, sim.NewServiceQueue(cfg.WPQEntries))
	}
	d.tick = 0
	d.stats = Stats{}
	d.energy = crashEnergy{}
	d.tel = nil
	d.now = 0
}

// MemFootprint approximates the device's retained table bytes; recyclers
// use it to drop a device that one outsized campaign ballooned.
func (d *Device) MemFootprint() int { return d.media.memFootprint() }

// channelIdx returns the index of the WPQ serving addr: channels
// interleave at the on-PM buffer line granularity, so a transaction's
// coalesced words stay on one controller (the paper's per-MC log
// controller invariant).
func (d *Device) channelIdx(addr mem.Addr) int {
	if len(d.wpq) == 1 {
		return 0
	}
	return int(uint64(addr) / uint64(d.cfg.BufLineSize) % uint64(len(d.wpq)))
}

func (d *Device) channel(addr mem.Addr) *sim.ServiceQueue {
	return d.wpq[d.channelIdx(addr)]
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// WPQ exposes channel i's write pending queue (used by designs and tests
// that inspect queue state; the ADR domain is the union of all channels).
func (d *Device) WPQ(i int) *sim.ServiceQueue { return d.wpq[i] }

// Channels returns the number of memory-controller channels.
func (d *Device) Channels() int { return len(d.wpq) }

// Populate writes data directly into the media with no timing or traffic
// accounting (workload setup, battery-powered crash flushes). Bytes of the
// range still sitting dirty in the on-PM buffer are overwritten there too,
// so the durable view (buffer over media) always reflects the populate.
func (d *Device) Populate(addr mem.Addr, data []byte) {
	for i := 0; i < len(data); {
		line := (addr + mem.Addr(i)).Line()
		off := (addr + mem.Addr(i)).LineOffset()
		n := copy(d.mediaLine(line)[off:], data[i:])
		i += n
	}
	if !d.cfg.Coalescing || d.buf.n == 0 {
		return
	}
	bls := mem.Addr(d.cfg.BufLineSize)
	first := addr &^ (bls - 1)
	last := (addr + mem.Addr(len(data)) - 1) &^ (bls - 1)
	for base := first; base <= last; base += bls {
		bl := d.buf.get(base)
		if bl == nil {
			continue
		}
		lo, hi := addr, addr+mem.Addr(len(data))
		if lo < base {
			lo = base
		}
		if hi > base+bls {
			hi = base + bls
		}
		for a := lo; a < hi; a++ {
			if off := int(a - base); bl.isDirty(off) {
				bl.data[off] = data[a-addr]
			}
		}
	}
}

func (d *Device) mediaLine(line mem.Addr) *[mem.LineSize]byte {
	return &d.media.getOrInsert(line).data
}

// Write submits one write request of len(data) bytes at addr, arriving at
// the memory controller at time `arrival`. It returns the time the request
// is accepted into the WPQ (the durability point under ADR) and the time
// it has fully drained. Contents are applied eagerly (see package comment).
func (d *Device) Write(arrival sim.Cycle, addr mem.Addr, data []byte) (accept, finish sim.Cycle) {
	if len(data) == 0 {
		return arrival, arrival
	}
	service := d.cfg.ServiceBase + d.cfg.ServicePerByte*sim.Cycle(len(data))
	if d.cfg.Banks > 1 {
		// Bank-level parallelism (NVMain-style): the single drain server
		// approximates Banks parallel channels.
		service = (service + sim.Cycle(d.cfg.Banks) - 1) / sim.Cycle(d.cfg.Banks)
	}
	ch := d.channelIdx(addr)
	q := d.wpq[ch]
	accept, finish = q.Accept(arrival, service)
	d.stats.WPQWrites++
	d.stats.WPQBytes += int64(len(data))
	if accept > d.now {
		d.now = accept
	}
	d.tel.WPQWrite(ch, accept, q.Occupancy(accept), accept-arrival, len(data))
	d.apply(addr, data)
	return accept, finish
}

// apply routes the bytes through the on-PM buffer (splitting at buffer-line
// boundaries) or, with coalescing disabled, straight to the media.
func (d *Device) apply(addr mem.Addr, data []byte) {
	if !d.cfg.Coalescing {
		d.writeMedia(addr, data)
		return
	}
	bls := mem.Addr(d.cfg.BufLineSize)
	for len(data) > 0 {
		base := addr &^ (bls - 1)
		off := int(addr - base)
		n := d.cfg.BufLineSize - off
		if n > len(data) {
			n = len(data)
		}
		d.bufMerge(base, off, data[:n])
		addr += mem.Addr(n)
		data = data[n:]
	}
}

func (d *Device) bufMerge(base mem.Addr, off int, data []byte) {
	bl, idx, inserted := d.buf.getOrInsert(base)
	if inserted {
		d.tel.PMBufOpen(d.now, base, len(data))
	} else {
		d.tel.PMBufMerge(d.now, base, len(data))
	}
	copy(bl.data[off:], data)
	bl.markDirty(off, len(data))
	d.tick++
	bl.lru = d.tick
	d.buf.touch(idx)
	if inserted && d.buf.n > d.cfg.BufLines {
		d.evictLRU(base)
	}
}

// evictLRU flushes the least-recently-touched buffer line other than
// keep: the recency-list head, or its successor when the head is keep
// (the line just merged into).
func (d *Device) evictLRU(keep mem.Addr) {
	v := d.buf.head
	if v >= 0 && d.buf.pool[v].base == keep {
		v = d.buf.next[v]
	}
	if v >= 0 {
		d.flushBufLine(&d.buf.pool[v])
	}
}

// flushBufLine applies a buffer line's dirty bytes to the media, counting
// one media write request per 64 B chunk that actually changes (DCW), or
// per dirty chunk when DCW is disabled. The byte compare-and-merge runs
// a word at a time: the chunk's dirty bits select byte lanes via
// byteMask, and one masked XOR per word finds the changed bytes.
func (d *Device) flushBufLine(bl *bufLine) {
	d.buf.del(bl.base)
	programmed, suppressed, requests := 0, 0, 0
	for chunk := 0; chunk < d.cfg.BufLineSize; chunk += mem.LineSize {
		dirtyBits := bl.dirty[chunk>>6] // mem.LineSize == one bitmap word
		if dirtyBits == 0 {
			continue
		}
		me := d.media.getOrInsert(bl.base + mem.Addr(chunk))
		changed, dirty := 0, 0
		for w := 0; w < mem.LineSize; w += mem.WordSize {
			dm := uint8(dirtyBits >> w) // bit offset == byte offset
			if dm == 0 {
				continue
			}
			dirty += bits.OnesCount8(dm)
			m := byteMask[dm]
			oldW := binary.LittleEndian.Uint64(me.data[w:])
			newW := binary.LittleEndian.Uint64(bl.data[chunk+w:])
			diff := (oldW ^ newW) & m
			if diff == 0 {
				continue
			}
			changed += nonzeroBytes(diff)
			binary.LittleEndian.PutUint64(me.data[w:], (oldW&^m)|(newW&m))
		}
		if d.cfg.DCW {
			suppressed += dirty - changed
			if changed > 0 {
				d.stats.MediaWrites++
				d.stats.MediaBytes += int64(changed)
				me.wear++
				programmed += changed
				requests++
			}
		} else {
			d.stats.MediaWrites++
			d.stats.MediaBytes += mem.LineSize
			me.wear++
			programmed += mem.LineSize
			requests++
		}
	}
	d.tel.PMBufWriteback(d.now, bl.base, programmed, suppressed, requests)
}

// writeMedia bypasses the buffer (coalescing disabled); DCW still applies.
func (d *Device) writeMedia(addr mem.Addr, data []byte) {
	for len(data) > 0 {
		line := addr.Line()
		off := addr.LineOffset()
		n := mem.LineSize - off
		if n > len(data) {
			n = len(data)
		}
		me := d.media.getOrInsert(line)
		changed := 0
		for i := 0; i < n; i++ {
			if me.data[off+i] != data[i] {
				changed++
				me.data[off+i] = data[i]
			}
		}
		if d.cfg.DCW {
			if changed > 0 {
				d.stats.MediaWrites++
				d.stats.MediaBytes += int64(changed)
				me.wear++
			}
		} else {
			d.stats.MediaWrites++
			d.stats.MediaBytes += int64(n)
			me.wear++
		}
		addr += mem.Addr(n)
		data = data[n:]
	}
}

// Read returns n bytes of durable state starting at addr (on-PM buffer
// contents shadow the media) and the read latency. Reads have priority
// over the write drain (FRFCFS), but still queue behind the writes already
// occupying the channel: each pending WPQ entry on the target channel adds
// a small interference penalty.
func (d *Device) Read(arrival sim.Cycle, addr mem.Addr, n int) ([]byte, sim.Cycle) {
	out := make([]byte, n)
	lat := d.ReadInto(arrival, addr, out)
	return out, lat
}

// ReadInto is Read without the allocation: the caller supplies the
// destination (the cache fill path passes the line buffer directly).
func (d *Device) ReadInto(arrival sim.Cycle, addr mem.Addr, out []byte) sim.Cycle {
	d.stats.Reads++
	if arrival > d.now {
		d.now = arrival
	}
	lat := d.cfg.ReadLatency + readInterferencePerEntry*sim.Cycle(d.channel(addr).Occupancy(arrival))
	d.PeekInto(addr, out)
	return lat
}

// readInterferencePerEntry is the extra read latency per write already
// queued on the channel (bank conflicts + bus turnaround).
const readInterferencePerEntry sim.Cycle = 2

// Peek returns durable bytes with no timing or accounting; recovery and
// test verification use it.
func (d *Device) Peek(addr mem.Addr, n int) []byte {
	out := make([]byte, n)
	d.PeekInto(addr, out)
	return out
}

// PeekInto fills out with durable bytes starting at addr: the media
// contents, overlaid with any dirty on-PM buffer bytes shadowing them.
func (d *Device) PeekInto(addr mem.Addr, out []byte) {
	for i := 0; i < len(out); {
		a := addr + mem.Addr(i)
		off := a.LineOffset()
		n := mem.LineSize - off
		if rem := len(out) - i; n > rem {
			n = rem
		}
		seg := out[i : i+n]
		if me := d.media.get(a.Line()); me != nil {
			copy(seg, me.data[off:off+n])
		} else {
			clear(seg)
		}
		i += n
	}
	if !d.cfg.Coalescing || d.buf.n == 0 {
		return
	}
	bls := mem.Addr(d.cfg.BufLineSize)
	first := addr &^ (bls - 1)
	last := (addr + mem.Addr(len(out)) - 1) &^ (bls - 1)
	for base := first; base <= last; base += bls {
		bl := d.buf.get(base)
		if bl == nil {
			continue
		}
		lo, hi := addr, addr+mem.Addr(len(out))
		if lo < base {
			lo = base
		}
		if hi > base+bls {
			hi = base + bls
		}
		for a := lo; a < hi; a++ {
			if off := int(a - base); bl.isDirty(off) {
				out[a-addr] = bl.data[off]
			}
		}
	}
}

// PeekWord returns the durable 8-byte word at addr.
func (d *Device) PeekWord(addr mem.Addr) mem.Word {
	// Direct word path: one media probe plus a masked buffer overlay —
	// the commit-durability audit peeks every committed word, so the
	// general byte loop of PeekInto is too slow here. A word is always
	// inside one media line and one buffer line (both are 64 B-aligned
	// and a multiple of the word size), and its 8 dirty bits sit inside
	// one bitmap word.
	addr = addr.Word()
	var w uint64
	if me := d.media.get(addr.Line()); me != nil {
		w = binary.LittleEndian.Uint64(me.data[addr.LineOffset():])
	}
	if !d.cfg.Coalescing || d.buf.n == 0 {
		return mem.Word(w)
	}
	base := addr &^ (mem.Addr(d.cfg.BufLineSize) - 1)
	if bl := d.buf.get(base); bl != nil {
		off := int(addr - base)
		if dm := uint8(bl.dirty[off>>6] >> (off & 63)); dm != 0 {
			m := byteMask[dm]
			w = (w &^ m) | (binary.LittleEndian.Uint64(bl.data[off:]) & m)
		}
	}
	return mem.Word(w)
}

// PokeWord writes a word durably with no timing (recovery and workload
// setup use it; that traffic is not part of the evaluated run). Like
// Populate it keeps the on-PM buffer coherent — dirty buffer bytes
// shadowing the word are overwritten too — so recovery writes are never
// shadowed by stale pre-crash buffer contents. The direct word path
// matters: workload setup pokes every word of its dataset, so the
// general byte loop of Populate was the fleet's hottest setup cost.
func (d *Device) PokeWord(addr mem.Addr, w mem.Word) {
	addr = addr.Word()
	me := d.media.getOrInsert(addr.Line())
	binary.LittleEndian.PutUint64(me.data[addr.LineOffset():], uint64(w))
	if !d.cfg.Coalescing || d.buf.n == 0 {
		return
	}
	base := addr &^ (mem.Addr(d.cfg.BufLineSize) - 1)
	if bl := d.buf.get(base); bl != nil {
		off := int(addr - base)
		if dm := uint8(bl.dirty[off>>6] >> (off & 63)); dm != 0 {
			m := byteMask[dm]
			old := binary.LittleEndian.Uint64(bl.data[off:])
			binary.LittleEndian.PutUint64(bl.data[off:], (old&^m)|(uint64(w)&m))
		}
	}
}

// Erase zeroes [addr, addr+n) with no timing accounting — log-region
// truncation, which is a pointer update in real hardware. Buffer lines
// overlapping the range are first drained to the media (their writes were
// real and count normally), so a later recovery scan can neither see stale
// records shadowed in the buffer nor lose traffic accounting.
func (d *Device) Erase(addr mem.Addr, n int) {
	if d.cfg.Coalescing {
		bls := mem.Addr(d.cfg.BufLineSize)
		first := addr &^ (bls - 1)
		last := (addr + mem.Addr(n) - 1) &^ (bls - 1)
		for base := first; base <= last; base += bls {
			if bl := d.buf.get(base); bl != nil {
				d.flushBufLine(bl)
			}
		}
	}
	d.Populate(addr, make([]byte, n))
}

// DrainAll flushes every on-PM buffer line to the media in address
// order, finalizing the media-write accounting at the end of a run.
func (d *Device) DrainAll() {
	for d.buf.n > 0 {
		var next *bufLine
		for i := range d.buf.pool {
			if !d.buf.used[i] {
				continue
			}
			if bl := &d.buf.pool[i]; next == nil || bl.base < next.base {
				next = bl
			}
		}
		d.flushBufLine(next)
	}
}

// PowerCycle prepares the device for a post-crash machine incarnation
// that restarts its simulated clock at zero: buffered lines drain to the
// media (the on-PM buffer rides the same stored energy as the WPQ ADR
// drain), WPQ timing state clears so finish times from the previous
// life cannot delay new entries, any armed crash-energy budget is
// disarmed, and the telemetry recorder detaches (the next incarnation
// attaches its own). Media contents, wear, and cumulative statistics
// survive — it is the same persistent device.
func (d *Device) PowerCycle() {
	d.DrainAll()
	for _, q := range d.wpq {
		q.Reset()
	}
	d.energy = crashEnergy{}
	d.tel = nil
}

// Wear describes the media write distribution across 64 B lines.
type Wear struct {
	LinesTouched int64
	MaxWrites    int64    // writes to the hottest line
	MeanWrites   float64  // mean writes over touched lines
	HottestLine  mem.Addr // address of the hottest line
}

// WearStats summarizes how evenly the media writes spread — the endurance
// hotspot view behind the paper's lifetime argument: a line written 100x
// more often than average dies 100x sooner (pre wear-leveling).
func (d *Device) WearStats() Wear {
	var w Wear
	var total int64
	for i := range d.media.entries {
		e := &d.media.entries[i]
		if e.wear == 0 {
			continue
		}
		total += e.wear
		w.LinesTouched++
		if e.wear > w.MaxWrites {
			w.MaxWrites = e.wear
			w.HottestLine = e.line
		}
	}
	if w.LinesTouched > 0 {
		w.MeanWrites = float64(total) / float64(w.LinesTouched)
	}
	return w
}

// String summarizes the device for debugging.
func (d *Device) String() string {
	var accepted int64
	for _, q := range d.wpq {
		accepted += q.Accepted()
	}
	return fmt.Sprintf("pm.Device{lines=%d bufLines=%d channels=%d wpqAccepted=%d mediaWrites=%d}",
		len(d.media.entries), d.buf.n, len(d.wpq), accepted, d.stats.MediaWrites)
}
