package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringIncludesModuleAndToolchain(t *testing.T) {
	s := String("silo-test")
	if !strings.HasPrefix(s, "silo-test ") {
		t.Errorf("missing tool name: %q", s)
	}
	// Under `go test` the module path and Go version are always known.
	if !strings.Contains(s, "silo") {
		t.Errorf("missing module path: %q", s)
	}
	if !strings.Contains(s, "go1") {
		t.Errorf("missing go version: %q", s)
	}
}

func TestStringRendersVCSFields(t *testing.T) {
	old := read
	defer func() { read = old }()
	read = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			GoVersion: "go1.24.0",
			Main:      debug.Module{Path: "silo", Version: "(devel)"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	s := String("silo-x")
	for _, want := range []string{"silo-x silo (devel) go1.24.0", "rev=0123456789ab", "dirty=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestStringWithoutBuildInfo(t *testing.T) {
	old := read
	defer func() { read = old }()
	read = func() (*debug.BuildInfo, bool) { return nil, false }
	if s := String("silo-y"); s != "silo-y (build info unavailable)" {
		t.Errorf("String() = %q", s)
	}
}

func TestHandleIsANoOpWhenUnset(t *testing.T) {
	f := false
	Handle("silo-z", &f) // must not exit
	Handle("silo-z", nil)
}
