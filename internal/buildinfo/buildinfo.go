// Package buildinfo renders the build identity — module path and
// version, VCS revision and dirty flag, Go toolchain — for the shared
// -version flag every cmd/* binary exposes, so bug reports and fleet
// checkpoints can record exactly which build produced them.
package buildinfo

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
)

// read is swapped out by tests.
var read = debug.ReadBuildInfo

// String renders one line of build identity for the given tool name:
//
//	silo-sim silo (devel) go1.24.0 rev=1234abcd dirty=true
//
// Fields missing from the build metadata (e.g. a non-VCS build) are
// omitted rather than invented.
func String(tool string) string {
	bi, ok := read()
	if !ok {
		return tool + " (build info unavailable)"
	}
	parts := []string{tool, bi.Main.Path}
	if bi.Main.Version != "" {
		parts = append(parts, bi.Main.Version)
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, "rev="+rev)
	}
	if dirty != "" {
		parts = append(parts, "dirty="+dirty)
	}
	return strings.Join(parts, " ")
}

// Flag registers the shared -version flag on the default flag set. Call
// before flag.Parse, then pass the result to Handle after.
func Flag() *bool {
	return flag.Bool("version", false, "print build information and exit")
}

// Handle prints the build identity and exits 0 when the -version flag
// was given; otherwise it returns immediately. tool is the binary name.
func Handle(tool string, show *bool) {
	if show == nil || !*show {
		return
	}
	fmt.Println(String(tool))
	os.Exit(0)
}
