// Package pmheap provides a simple persistent-memory allocator for the
// simulated data region: per-arena bump allocation, with one arena per
// core so threads never contend and the workload partitioning assumed by
// the paper (§III-A: isolation is software-provided) holds by
// construction.
//
// Allocator metadata lives on the Go side: a real PM allocator persists
// its metadata too, but allocator-metadata traffic is common to every
// design under test and does not change the comparisons.
package pmheap

import (
	"fmt"

	"silo/internal/mem"
)

// Heap carves the PM data region into equal per-arena slices. Freed
// blocks go to per-arena, per-size free lists (LIFO), so delete-heavy
// structures reuse memory instead of leaking the arena.
type Heap struct {
	arenas int
	base   []mem.Addr
	next   []mem.Addr
	limit  []mem.Addr
	free   []map[int][]mem.Addr // arena -> rounded size -> free blocks
}

// New splits layout's data region into n arenas. The first 4 KB of the
// region is left unused so address 0 never escapes as a valid pointer
// (data structures use 0 as nil).
func New(layout mem.Layout, n int) *Heap {
	if n < 1 {
		n = 1
	}
	h := &Heap{arenas: n}
	per := (layout.DataSize - 4096) / uint64(n)
	per &^= mem.LineSize - 1
	for i := 0; i < n; i++ {
		base := layout.DataBase + 4096 + mem.Addr(uint64(i)*per)
		h.base = append(h.base, base)
		h.next = append(h.next, base)
		h.limit = append(h.limit, base+mem.Addr(per))
		h.free = append(h.free, make(map[int][]mem.Addr))
	}
	return h
}

// roundSize normalizes a (size, align) request so frees and allocs meet in
// the same free list: size rounded up to the alignment.
func roundSize(size, align int) (int, int) {
	if align < mem.WordSize {
		align = mem.WordSize
	}
	size = (size + align - 1) &^ (align - 1)
	return size, align
}

// Alloc returns size bytes from arena, aligned to align (a power of two,
// at least 8), reusing a freed block of the same rounded size when one is
// available. It panics when the arena is exhausted — simulation workloads
// are sized well below arena capacity.
func (h *Heap) Alloc(arena, size, align int) mem.Addr {
	size, align = roundSize(size, align)
	if list := h.free[arena][size]; len(list) > 0 {
		a := list[len(list)-1]
		h.free[arena][size] = list[:len(list)-1]
		return a
	}
	a := (h.next[arena] + mem.Addr(align-1)) &^ mem.Addr(align-1)
	if a+mem.Addr(size) > h.limit[arena] {
		panic(fmt.Sprintf("pmheap: arena %d exhausted", arena))
	}
	h.next[arena] = a + mem.Addr(size)
	return a
}

// Free returns a block previously allocated with Alloc(arena, size, align)
// to its arena's free list. The caller is responsible for not using the
// block afterwards; the simulated bytes are not zeroed (matching PM
// allocators, where stale contents persist until overwritten).
func (h *Heap) Free(arena int, addr mem.Addr, size, align int) {
	size, _ = roundSize(size, align)
	h.free[arena][size] = append(h.free[arena][size], addr)
}

// FreeLines returns an n-cacheline block allocated with AllocLines.
func (h *Heap) FreeLines(arena int, addr mem.Addr, n int) {
	h.Free(arena, addr, n*mem.LineSize, mem.LineSize)
}

// AllocLines allocates n cachelines, line-aligned.
func (h *Heap) AllocLines(arena, n int) mem.Addr {
	return h.Alloc(arena, n*mem.LineSize, mem.LineSize)
}

// Used returns the bytes allocated from arena so far.
func (h *Heap) Used(arena int) uint64 {
	return uint64(h.next[arena] - h.base[arena])
}

// Arenas returns the arena count.
func (h *Heap) Arenas() int { return h.arenas }
