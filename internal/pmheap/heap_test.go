package pmheap

import (
	"testing"

	"silo/internal/mem"
)

func TestAllocAlignment(t *testing.T) {
	h := New(mem.DefaultLayout(), 2)
	a := h.Alloc(0, 10, 8)
	if !a.IsWordAligned() {
		t.Errorf("alloc %v not word-aligned", a)
	}
	b := h.Alloc(0, 1, 64)
	if !b.IsLineAligned() {
		t.Errorf("alloc %v not line-aligned", b)
	}
	if b <= a {
		t.Error("bump allocator went backwards")
	}
	c := h.AllocLines(0, 2)
	if !c.IsLineAligned() {
		t.Error("AllocLines not line-aligned")
	}
}

func TestAllocNeverReturnsZero(t *testing.T) {
	h := New(mem.DefaultLayout(), 1)
	if a := h.Alloc(0, 8, 8); a == 0 {
		t.Error("address 0 escaped the allocator (reserved as nil)")
	}
}

func TestArenasDisjoint(t *testing.T) {
	h := New(mem.DefaultLayout(), 4)
	if h.Arenas() != 4 {
		t.Fatal("arena count")
	}
	var ranges [][2]mem.Addr
	for a := 0; a < 4; a++ {
		lo := h.Alloc(a, 64, 64)
		for i := 0; i < 100; i++ {
			h.Alloc(a, 128, 8)
		}
		hi := h.Alloc(a, 64, 64)
		ranges = append(ranges, [2]mem.Addr{lo, hi})
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if ranges[i][1] >= ranges[j][0] && ranges[j][1] >= ranges[i][0] {
				t.Errorf("arenas %d and %d overlap: %v %v", i, j, ranges[i], ranges[j])
			}
		}
	}
}

func TestAllocInDataRegion(t *testing.T) {
	layout := mem.DefaultLayout()
	h := New(layout, 8)
	for a := 0; a < 8; a++ {
		addr := h.Alloc(a, 4096, 64)
		if !layout.InData(addr) || !layout.InData(addr+4095) {
			t.Errorf("arena %d allocation escaped the data region", a)
		}
	}
}

func TestUsedTracking(t *testing.T) {
	h := New(mem.DefaultLayout(), 1)
	if h.Used(0) != 0 {
		t.Error("fresh arena has usage")
	}
	h.Alloc(0, 100, 8)
	if got := h.Used(0); got < 100 {
		t.Errorf("used = %d, want >= 100", got)
	}
}

func TestExhaustionPanics(t *testing.T) {
	layout := mem.Layout{DataBase: 0, DataSize: 8192 + 4096, LogBase: 1 << 40, LogSize: 1 << 20}
	h := New(layout, 1)
	defer func() {
		if recover() == nil {
			t.Error("exhausted arena did not panic")
		}
	}()
	for i := 0; i < 100; i++ {
		h.Alloc(0, 1024, 8)
	}
}

func TestZeroArenasClamped(t *testing.T) {
	h := New(mem.DefaultLayout(), 0)
	if h.Arenas() != 1 {
		t.Errorf("arenas = %d, want 1", h.Arenas())
	}
}

func TestFreeListReuse(t *testing.T) {
	h := New(mem.DefaultLayout(), 1)
	a := h.AllocLines(0, 1)
	h.FreeLines(0, a, 1)
	b := h.AllocLines(0, 1)
	if b != a {
		t.Errorf("freed line block not reused: %v vs %v", b, a)
	}
	// Different size classes do not cross.
	c := h.Alloc(0, 24, 8)
	h.Free(0, c, 24, 8)
	if d := h.Alloc(0, 64, 64); d == c {
		t.Error("64B alloc reused a 24B block")
	}
	if e := h.Alloc(0, 24, 8); e != c {
		t.Errorf("24B alloc did not reuse the freed block: %v vs %v", e, c)
	}
}

func TestFreeListBoundsUsage(t *testing.T) {
	// Allocate/free in a loop: usage must not grow without bound.
	h := New(mem.DefaultLayout(), 1)
	h.Alloc(0, 64, 64)
	before := h.Used(0)
	for i := 0; i < 10000; i++ {
		a := h.AllocLines(0, 2)
		h.FreeLines(0, a, 2)
	}
	if grew := h.Used(0) - before; grew > 256 {
		t.Errorf("alloc/free loop leaked %d bytes", grew)
	}
}

func TestRoundSizeMeets(t *testing.T) {
	// A free with the same (size, align) must land in the list the next
	// alloc consults, even when size is not align-multiple.
	h := New(mem.DefaultLayout(), 1)
	a := h.Alloc(0, 26, 8) // rounds to 32
	h.Free(0, a, 26, 8)
	if b := h.Alloc(0, 32, 8); b != a {
		t.Errorf("rounded size classes disagree: %v vs %v", b, a)
	}
}
