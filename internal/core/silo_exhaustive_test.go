package core

import (
	"fmt"
	"testing"

	"silo/internal/cache"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/recovery"
	"silo/internal/sim"
)

// TestSiloProtocolExhaustive model-checks the Silo protocol at small
// scale: it enumerates EVERY sequence (up to a depth) over an op alphabet
// of stores to two words, a mid-transaction cacheline eviction, and
// commit — then crashes at the end of each sequence, runs recovery, and
// checks atomic durability against a golden model. Unlike the randomized
// crash tests, this covers all interleavings of merge, flush-bit,
// committed-pending and recovery interactions in its (small) universe.
func TestSiloProtocolExhaustive(t *testing.T) {
	const depth = 6
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}

	type opKind int
	const (
		opStoreA1 opKind = iota // A = 1
		opStoreA2               // A = 2
		opStoreB1               // B = 1
		opEvictA                // the cacheline holding A is evicted
		opCommit                // Tx_end; the next store opens a new tx
		opCount
	)
	wordA := mem.Addr(0x10000)
	wordB := mem.Addr(0x10040) // different cacheline

	// Use a tiny buffer so the enumeration also reaches overflow.
	run := func(seq []opKind) error {
		dev := pm.New(pm.DefaultConfig())
		small := cache.HierarchyConfig{
			L1: cache.Config{Name: "L1", Size: 512, Ways: 2, Latency: 4},
			L2: cache.Config{Name: "L2", Size: 1024, Ways: 2, Latency: 12},
			L3: cache.Config{Name: "L3", Size: 2048, Ways: 2, Latency: 28},
		}
		var s *Silo
		fill := func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
			var line [mem.LineSize]byte
			copy(line[:], dev.Peek(la, mem.LineSize))
			return line, 100
		}
		wb := func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
			s.CachelineEvicted(now, la, data)
		}
		env := &logging.Env{
			PM:            dev,
			Cache:         cache.NewHierarchy(1, small, fill, wb),
			Region:        logging.NewRegionWriter(dev, 1),
			Cores:         1,
			LogBufEntries: 2, // overflow reachable within the depth
			PersistPath:   60,
		}
		s = New(env, Options{})

		// Golden model.
		committed := map[mem.Addr]mem.Word{wordA: 0, wordB: 0}
		pending := map[mem.Addr]mem.Word{}
		inTx := false
		now := sim.Cycle(1)

		ensureTx := func() {
			if !inTx {
				s.TxBegin(0, now)
				inTx = true
				now++
			}
		}
		store := func(a mem.Addr, v mem.Word) {
			ensureTx()
			old, _ := env.Cache.Store(0, a, v, now)
			s.Store(0, a, old, v, now)
			pending[a] = v
			now++
		}
		for _, op := range seq {
			switch op {
			case opStoreA1:
				store(wordA, 1)
			case opStoreA2:
				store(wordA, 2)
			case opStoreB1:
				store(wordB, 1)
			case opEvictA:
				if data, dirty := env.Cache.CleanLine(0, wordA); dirty {
					s.CachelineEvicted(now, wordA.Line(), data)
				}
				now++
			case opCommit:
				if inTx {
					s.TxEnd(0, now)
					inTx = false
					for a, v := range pending {
						committed[a] = v
						delete(pending, a)
					}
					now++
				}
			}
		}
		// Power failure, volatile loss, recovery.
		s.Crash(now)
		env.Cache.InvalidateAll()
		recovery.Recover(dev, env.Region)
		for a, want := range committed {
			if got := dev.PeekWord(a); got != want {
				return fmt.Errorf("word %v = %d, want %d (seq %v)", a, got, want, seq)
			}
		}
		return nil
	}

	// Enumerate all sequences of length exactly `depth` (every prefix is
	// itself covered by some other sequence's crash point because the
	// crash happens after the whole sequence — shorter behaviours are
	// reached via trailing no-op commits).
	seq := make([]opKind, depth)
	var walk func(i int) error
	count := 0
	walk = func(i int) error {
		if i == depth {
			count++
			return run(seq)
		}
		for op := opKind(0); op < opCount; op++ {
			seq[i] = op
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		t.Fatal(err)
	}
	t.Logf("exhaustively verified %d op sequences", count)
}
