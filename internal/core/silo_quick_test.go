package core

import (
	"testing"
	"testing/quick"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
)

// TestSiloTransactionProperty drives one transaction with an arbitrary
// store sequence and checks the §III invariants against a model:
//
//  1. Every word the transaction changed ends up in PM with its final
//     value after commit (durability via IPU or overflow).
//  2. For every word still in the buffer at commit, the entry holds the
//     *oldest* old value and the *newest* new value (merge semantics).
//  3. Overflowed undo records in the log region carry flush-bit 1 and the
//     oldest pre-overflow value for their word.
func TestSiloTransactionProperty(t *testing.T) {
	type storeOp struct {
		Slot uint8 // word index into a 64-word arena
		Val  uint16
	}
	f := func(ops []storeOp) bool {
		env, dev := newEnv(1)
		s := New(env, Options{})
		base := mem.Addr(0x40000)

		// Model: the old value each *live buffer entry* must carry (reset
		// when a word is re-logged after its entry overflowed out), and
		// the last stored value per word.
		entryOld := map[mem.Addr]mem.Word{}
		last := map[mem.Addr]mem.Word{}

		s.TxBegin(0, 0)
		now := sim.Cycle(1)
		for _, op := range ops {
			addr := base + mem.Addr(op.Slot%64)*mem.WordSize
			old := last[addr]
			v := mem.Word(op.Val) + 1 // never store the initial 0: ignorance is tested separately
			if v != old && s.cores[0].buf.Match(addr) < 0 {
				// This store creates a fresh entry (first log, or re-log
				// after the previous entry was evicted by an overflow).
				entryOld[addr] = old
			}
			s.Store(0, addr, old, v, now)
			last[addr] = v
			now++
		}
		s.TxEnd(0, now)

		// (1) durability: every changed word visible in PM.
		for addr, v := range last {
			if dev.PeekWord(addr) != v {
				return false
			}
		}
		// (2) merge semantics for live entries.
		for _, e := range s.cores[0].buf.Entries() {
			if e.Old != entryOld[e.Addr] || e.New != last[e.Addr] {
				return false
			}
		}
		// (3) overflow records: flush-bit 1 undo with a value the word
		// held at some point no later than its first logged old value.
		for _, im := range env.Region.Scan(0) {
			if im.Kind != logging.ImageUndo || !im.FlushBit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSiloCrashProperty: at an arbitrary cut point inside a transaction,
// crash-flush + the log region must contain exactly one undo record per
// distinct stored word (merged), carrying the word's pre-transaction
// value — what recovery needs for atomicity and nothing else.
func TestSiloCrashProperty(t *testing.T) {
	f := func(slots []uint8) bool {
		env, _ := newEnv(1)
		s := New(env, Options{})
		base := mem.Addr(0x80000)
		pre := map[mem.Addr]mem.Word{}
		cur := map[mem.Addr]mem.Word{}

		s.TxBegin(0, 0)
		now := sim.Cycle(1)
		for i, slot := range slots {
			addr := base + mem.Addr(slot%32)*mem.WordSize
			old := cur[addr]
			v := mem.Word(i) + 100
			s.Store(0, addr, old, v, now)
			if _, seen := pre[addr]; !seen {
				pre[addr] = old
			}
			cur[addr] = v
			now++
		}
		s.Crash(now)

		undoSeen := map[mem.Addr]mem.Word{}
		for _, im := range env.Region.Scan(0) {
			if im.Kind != logging.ImageUndo {
				return false // uncommitted crash must flush only undo
			}
			if _, dup := undoSeen[im.Addr]; !dup {
				undoSeen[im.Addr] = im.Data
			}
		}
		// The FIRST record per word (scan order) must carry the
		// pre-transaction value; and every stored word must be covered.
		for addr, want := range pre {
			got, ok := undoSeen[addr]
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLogBufferMergeModelProperty checks Buffer.Append against a map
// model under arbitrary interleavings of distinct and repeated words.
func TestLogBufferMergeModelProperty(t *testing.T) {
	f := func(slots []uint8, vals []uint16) bool {
		n := len(slots)
		if len(vals) < n {
			n = len(vals)
		}
		buf := logging.NewBuffer(1 << 16) // effectively unbounded
		type ov struct{ old, new mem.Word }
		model := map[mem.Addr]ov{}
		var order []mem.Addr
		for i := 0; i < n; i++ {
			addr := mem.Addr(slots[i]) * mem.WordSize
			v := mem.Word(vals[i])
			prev, seen := model[addr]
			old := prev.new
			if !seen {
				old = mem.Word(slots[i]) // arbitrary initial value
				order = append(order, addr)
				model[addr] = ov{old: old, new: v}
			} else {
				model[addr] = ov{old: prev.old, new: v}
			}
			buf.Append(logging.Entry{Addr: addr, Old: old, New: v})
		}
		if buf.Len() != len(model) {
			return false
		}
		for i, e := range buf.Entries() {
			if e.Addr != order[i] { // FIFO order of first appearance
				return false
			}
			m := model[e.Addr]
			if e.Old != m.old || e.New != m.new {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
