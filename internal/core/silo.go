// Package core implements Silo, the paper's contribution: a speculative
// hardware logging design that keeps a transaction's undo+redo logs in a
// small battery-backed on-chip log buffer and — in the common failure-free
// case — uses the *new data* recorded in those logs to in-place update the
// PM data region after commit ("Log as Data", §III). Logs reach the PM log
// region only on log-buffer overflow (batched undo eviction, §III-F) or at
// a crash (selective flushing, §III-G).
package core

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
	"slices"
)

// Options tunes Silo; the zero value gives the paper's configuration.
// The Disable* switches exist for the ablation benchmarks.
type Options struct {
	// AckCycles is the on-chip round trip between log generator and log
	// controller at Tx_end ("several cycles", §III-D). Default 6.
	AckCycles sim.Cycle
	// DisableMerge turns off log merging (§III-C ablation).
	DisableMerge bool
	// DisableIgnore turns off log ignorance (§III-C ablation).
	DisableIgnore bool
	// SingleEntryOverflow evicts one entry at a time instead of the
	// batched N = ⌊S/18⌋ eviction (§III-F ablation).
	SingleEntryOverflow bool

	// DebugSkipFlushBit deliberately skips setting flush-bits on
	// cacheline eviction — a seeded §III-D bug the audit layer must
	// catch (it causes no data corruption, only protocol violation:
	// the post-commit flush redundantly rewrites the same values).
	DebugSkipFlushBit bool
	// DebugRedoBeforeCommit deliberately inverts the §III-G crash-flush
	// order, streaming redo records before the commit ID tuple — a
	// seeded bug the audit layer must catch at the crash flush itself
	// (golden-shadow only sees it if the tuple then happens to tear).
	DebugRedoBeforeCommit bool
}

type coreState struct {
	buf  *logging.Buffer
	txid uint16
	inTx bool

	// Committed-but-not-yet-deallocated window (§III-D): the new data
	// have been handed to the WPQ; the buffer frees once accepted.
	pending     bool
	flushDoneAt sim.Cycle
	overflowed  bool // current tx spilled undo logs to the log region

	// Per-transaction accounting for Fig. 13.
	txTotal int64 // entries the log generator produced this tx
}

// Silo is the design. One instance serves all cores; state is per core,
// mirroring the per-core log buffers and the per-MC log controller.
type Silo struct {
	env    *logging.Env
	opts   Options
	cores  []coreState
	batchN int // overflow batch size N = ⌊S/18⌋

	created, ignored, merged int64
	overflows, flushBitSets  int64
	crashFlushedImages       int64

	tel *telemetry.Recorder

	// Fig. 13 accumulators.
	txCount      int64
	sumTotal     int64
	sumRemaining int64
	maxRemaining int

	// Commit-path scratch, reused across transactions so the post-commit
	// flush allocates nothing in steady state (the engine is single-
	// threaded, so one set serves all cores).
	runScratch []wordKV
	runs       []wordRun
	runBytes   []byte
}

var _ logging.Design = (*Silo)(nil)

// New builds Silo over env.
func New(env *logging.Env, opts Options) *Silo {
	if opts.AckCycles == 0 {
		opts.AckCycles = 6
	}
	s := &Silo{
		env:    env,
		opts:   opts,
		batchN: env.PM.Config().BufLineSize / logging.UndoBytes,
	}
	if s.batchN < 1 {
		s.batchN = 1
	}
	entries := env.LogBufEntries
	if entries <= 0 {
		entries = logging.DefaultBufferEntries
	}
	for i := 0; i < env.Cores; i++ {
		s.cores = append(s.cores, coreState{buf: logging.NewBuffer(entries)})
	}
	return s
}

// Factory returns a design factory with fixed options.
func Factory(opts Options) logging.Factory {
	return func(env *logging.Env) logging.Design { return New(env, opts) }
}

// Name implements logging.Design.
func (s *Silo) Name() string { return "Silo" }

// SetTelemetry implements telemetry.Instrumented: the machine attaches
// its recorder after the design factory has run.
func (s *Silo) SetTelemetry(r *telemetry.Recorder) { s.tel = r }

// BatchN returns the overflow batch size (exported for tests: 14 entries
// for a 256 B on-PM-buffer line).
func (s *Silo) BatchN() int { return s.batchN }

// TxBegin deallocates a committed predecessor's buffer (waiting out the
// tail of its background flush if it has not been accepted yet — normally
// already past) and opens a new transaction.
func (s *Silo) TxBegin(core int, now sim.Cycle) sim.Cycle {
	st := &s.cores[core]
	var stall sim.Cycle
	if st.pending {
		if st.flushDoneAt > now {
			stall = st.flushDoneAt - now
		}
		s.dealloc(core, now)
	}
	st.inTx = true
	st.txid++
	st.txTotal = 0
	st.overflowed = false
	return stall
}

// dealloc frees the buffer after the background flush and truncates the
// thread's log area if the committed transaction had overflowed (§III-F:
// "the overflowed logs are deleted after commit if no crash occurs").
func (s *Silo) dealloc(core int, now sim.Cycle) {
	st := &s.cores[core]
	if n := st.buf.Len(); n > 0 {
		s.tel.FlushBitClear(core, now, n)
	}
	st.buf.Reset()
	s.tel.LogBufOcc(core, now, 0, st.buf.Cap())
	st.pending = false
	if st.overflowed {
		s.env.Region.Truncate(core)
		st.overflowed = false
	}
}

// Store runs the log generator (§III-B): capture old+new, apply log
// ignorance and merging, and append to the log buffer, evicting a batch of
// undo logs on overflow. The CPU store never stalls on any of this — the
// log path bypasses the caches and runs in parallel with execution.
func (s *Silo) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	st := &s.cores[core]
	if !st.inTx {
		return 0 // non-transactional store: no logging required
	}
	s.created++
	st.txTotal++
	if !s.opts.DisableIgnore && old == new {
		s.ignored++ // log ignorance: the write does not change the word
		return 0
	}
	e := logging.Entry{TID: uint8(core), TxID: st.txid, Addr: addr.Word(), Old: old, New: new}
	if !s.opts.DisableMerge && st.buf.Match(e.Addr) >= 0 {
		st.buf.Append(e) // merges: keeps oldest old, takes newest new
		s.merged++
		return 0
	}
	if st.buf.Full() {
		s.overflow(core, now)
	}
	st.buf.Push(e)
	s.tel.LogBufOcc(core, now, st.buf.Len(), st.buf.Cap())
	return 0
}

// overflow evicts the oldest undo logs to the PM log region in a batch
// (§III-F). For each evicted entry: if its flush-bit is 0, the flush-bit
// is set and the new data word is written to the data region to preserve
// durability; if 1, the cacheline already carried the data to PM and the
// new data is discarded. The batch write and subsequent appends proceed in
// parallel, so the core does not stall.
func (s *Silo) overflow(core int, now sim.Cycle) {
	st := &s.cores[core]
	n := s.batchN
	if s.opts.SingleEntryOverflow {
		n = 1
	}
	evicted := st.buf.EvictOldest(n)
	images := make([]logging.Image, 0, len(evicted))
	for _, e := range evicted {
		if !e.FlushBit {
			var b [mem.WordSize]byte
			putWord(b[:], e.New)
			s.env.PM.Write(now, e.Addr, b[:])
		}
		e.FlushBit = true // overflowed undo logs carry flush-bit 1 (§III-G)
		images = append(images, e.UndoImage())
	}
	s.env.Region.Append(now, core, images)
	st.overflowed = true
	s.overflows++
	s.tel.LogOverflow(core, now, len(evicted))
	s.tel.LogBufOcc(core, now, st.buf.Len(), st.buf.Cap())
}

// TxEnd implements the commit protocol of §III-D: the log generator
// notifies the log controller, which ACKs and concurrently starts flushing
// the new data in the logs to the data region. The core resumes after the
// ACK — a few cycles — because the new data are already persistent inside
// the battery-backed buffer; nothing orders commit behind PM writes.
func (s *Silo) TxEnd(core int, now sim.Cycle) sim.Cycle {
	st := &s.cores[core]
	st.inTx = false

	remaining := st.buf.Len()
	s.txCount++
	s.sumTotal += st.txTotal
	s.sumRemaining += int64(remaining)
	if remaining > s.maxRemaining {
		s.maxRemaining = remaining
	}

	flushDone := now
	for _, run := range s.contiguousRuns(st.buf.Entries()) {
		accept, _ := s.env.PM.Write(now, run.addr, run.bytes)
		if accept > flushDone {
			flushDone = accept
		}
	}
	st.pending = true
	st.flushDoneAt = flushDone
	return s.opts.AckCycles + s.env.LogBufLatency/8 // buffer read is pipelined off the critical path
}

type wordRun struct {
	addr  mem.Addr
	bytes []byte
}

// wordKV is one flush-bit-0 log word during run building; idx is the
// entry's buffer position, so newest-in-append-order wins the dedupe.
type wordKV struct {
	addr mem.Addr
	val  mem.Word
	idx  int
}

// contiguousRuns gathers the new-data words still owed to the data region
// (flush-bit 0) into maximal contiguous word runs, so words that share a
// cacheline leave the memory controller as one combined write burst. The
// entries are unique per word (merging); the merge-disabled ablation can
// produce duplicates, which dedupe keeping the newest value in append
// order. Scratch storage (including the byte arena backing the runs) is
// reused across commits; the result is valid until the next call.
func (s *Silo) contiguousRuns(entries []logging.Entry) []wordRun {
	kvs := s.runScratch[:0]
	for i, e := range entries {
		if !e.FlushBit {
			kvs = append(kvs, wordKV{addr: e.Addr, val: e.New, idx: i})
		}
	}
	slices.SortFunc(kvs, func(a, b wordKV) int {
		if a.addr != b.addr {
			return int(a.addr) - int(b.addr)
		}
		return a.idx - b.idx
	})
	s.runScratch = kvs
	// Reserve the arena up front so it never reallocates mid-loop (run
	// byte slices alias it).
	if cap(s.runBytes) < len(kvs)*mem.WordSize {
		s.runBytes = make([]byte, 0, len(kvs)*mem.WordSize)
	}
	runs, arena := s.runs[:0], s.runBytes[:0]
	for i, kv := range kvs {
		if i+1 < len(kvs) && kvs[i+1].addr == kv.addr {
			continue // duplicate word: a newer append follows
		}
		n := len(runs)
		if n > 0 && runs[n-1].addr+mem.Addr(len(runs[n-1].bytes)) == kv.addr &&
			runs[n-1].addr.Line() == kv.addr.Line() {
			arena = appendWord(arena, kv.val)
			runs[n-1].bytes = runs[n-1].bytes[:len(runs[n-1].bytes)+mem.WordSize]
			continue
		}
		start := len(arena)
		arena = appendWord(arena, kv.val)
		runs = append(runs, wordRun{addr: kv.addr, bytes: arena[start:len(arena)]})
	}
	s.runs, s.runBytes = runs, arena
	return runs
}

// appendWord appends v's little-endian bytes to b.
func appendWord(b []byte, v mem.Word) []byte {
	var w [mem.WordSize]byte
	putWord(w[:], v)
	return append(b, w[:]...)
}

// CachelineEvicted routes a dirty LLC eviction to the PM data region and
// sets the flush-bit on any in-flight logs covering the line (§III-D), so
// their new data is not redundantly flushed after commit.
func (s *Silo) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	s.env.PM.Write(now, la, data[:])
	if s.opts.DebugSkipFlushBit {
		return
	}
	for c := range s.cores {
		st := &s.cores[c]
		if !st.inTx {
			continue
		}
		set := 0
		st.buf.MatchLine(la, func(e *logging.Entry) {
			if !e.FlushBit {
				e.FlushBit = true
				s.flushBitSets++
				set++
			}
		})
		if set > 0 {
			s.tel.FlushBitSet(c, now, la, set)
		}
	}
}

// Crash performs the selective log flushing of §III-G under battery power:
// undo logs for transactions that had not committed (atomicity), redo logs
// plus an ID tuple for committed transactions whose in-place updates were
// still pending (durability). Flush-bit-1 entries contribute no redo —
// their data already reached PM via cacheline eviction.
//
// The flush order is robustness-critical under a bounded energy budget:
// the commit ID tuple goes out *first*, because recovery's checked scan
// stops at the first torn record — a tuple behind a torn redo suffix
// would be invisible, and the transaction's overflowed flush-bit-1 undo
// logs would wrongly revoke committed data. The tuple and all undo logs
// are the must-flush set the battery reserve guarantees (critical); the
// redo stream may tear, which recovery tolerates because WPQ-accepted
// in-place updates are already durable under ADR.
func (s *Silo) Crash(now sim.Cycle) {
	for c := range s.cores {
		st := &s.cores[c]
		switch {
		case st.inTx:
			images := make([]logging.Image, 0, st.buf.Len())
			for _, e := range st.buf.Entries() {
				images = append(images, e.UndoImage())
			}
			s.env.Region.AppendAtCrashCritical(c, images)
			s.crashFlushedImages += int64(len(images))
		case st.pending:
			var images []logging.Image
			for _, e := range st.buf.Entries() {
				if !e.FlushBit {
					images = append(images, e.RedoImage())
				}
			}
			tuple := []logging.Image{logging.CommitImage(uint8(c), st.txid)}
			if s.opts.DebugRedoBeforeCommit {
				s.env.Region.AppendAtCrash(c, images)
				s.env.Region.AppendAtCrashCritical(c, tuple)
			} else {
				s.env.Region.AppendAtCrashCritical(c, tuple)
				s.env.Region.AppendAtCrash(c, images)
			}
			s.crashFlushedImages += int64(len(images)) + 1
		}
	}
}

// LogBuffer exposes core's log buffer for the audit layer (read-only
// discipline: auditors inspect, never mutate).
func (s *Silo) LogBuffer(core int) *logging.Buffer { return s.cores[core].buf }

// InTx reports whether core has an open transaction (audit layer).
func (s *Silo) InTx(core int) bool { return s.cores[core].inTx }

// MergeEnabled reports whether comparator merging is active (§III-C).
func (s *Silo) MergeEnabled() bool { return !s.opts.DisableMerge }

// CollectStats implements logging.Design.
func (s *Silo) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += s.created
	r.LogEntriesIgnored += s.ignored
	r.LogEntriesMerged += s.merged
	r.LogEntriesFlushed += s.env.Region.ImagesWritten
	r.LogOverflows += s.overflows
	r.FlushBitSets += s.flushBitSets
}

// LogReduction reports the Fig. 13 quantities: average log entries
// produced per transaction, average entries remaining in the buffer at
// commit, and the maximum remaining (which sizes the buffer).
func (s *Silo) LogReduction() (avgTotal, avgRemaining float64, maxRemaining int) {
	if s.txCount == 0 {
		return 0, 0, 0
	}
	return float64(s.sumTotal) / float64(s.txCount),
		float64(s.sumRemaining) / float64(s.txCount),
		s.maxRemaining
}

func putWord(b []byte, w mem.Word) {
	for i := 0; i < mem.WordSize; i++ {
		b[i] = byte(w >> (8 * i))
	}
}
