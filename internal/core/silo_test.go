package core

import (
	"testing"

	"silo/internal/cache"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/stats"
)

// newEnv builds a real device + region + cache environment for driving
// the design directly, without the full machine.
func newEnv(cores int) (*logging.Env, *pm.Device) {
	dev := pm.New(pm.DefaultConfig())
	fill := func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
		var line [mem.LineSize]byte
		copy(line[:], dev.Peek(la, mem.LineSize))
		return line, 100
	}
	wb := func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
		dev.Write(now, la, data[:])
	}
	env := &logging.Env{
		PM:            dev,
		Cache:         cache.NewHierarchy(cores, cache.DefaultHierarchyConfig(), fill, wb),
		Region:        logging.NewRegionWriter(dev, cores),
		Cores:         cores,
		LogBufEntries: logging.DefaultBufferEntries,
		LogBufLatency: 8,
		PersistPath:   60,
	}
	return env, dev
}

func newSilo(t *testing.T, opts Options) (*Silo, *pm.Device) {
	t.Helper()
	env, dev := newEnv(1)
	return New(env, opts), dev
}

func TestBatchN(t *testing.T) {
	s, _ := newSilo(t, Options{})
	if s.BatchN() != 14 {
		t.Errorf("BatchN = %d; paper: ⌊256/18⌋ = 14", s.BatchN())
	}
}

func TestLogIgnorance(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 5, 5, 1) // unchanged word: ignored
	s.Store(0, 0x108, 5, 6, 2) // changed: logged
	if s.cores[0].buf.Len() != 1 {
		t.Errorf("buffer has %d entries, want 1", s.cores[0].buf.Len())
	}
	if s.ignored != 1 || s.created != 2 {
		t.Errorf("ignored/created = %d/%d, want 1/2", s.ignored, s.created)
	}
}

func TestLogIgnoranceDisabled(t *testing.T) {
	s, _ := newSilo(t, Options{DisableIgnore: true})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 5, 5, 1)
	if s.cores[0].buf.Len() != 1 {
		t.Error("ignored a write despite DisableIgnore")
	}
}

func TestLogMerging(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 10, 11, 1)
	s.Store(0, 0x100, 11, 12, 2)
	buf := s.cores[0].buf
	if buf.Len() != 1 {
		t.Fatalf("merge failed: %d entries", buf.Len())
	}
	e := buf.Entries()[0]
	if e.Old != 10 || e.New != 12 {
		t.Errorf("merged old/new = %d/%d, want 10/12 (oldest old, newest new)", e.Old, e.New)
	}
	if s.merged != 1 {
		t.Errorf("merged counter = %d", s.merged)
	}
}

func TestLogMergingDisabled(t *testing.T) {
	s, _ := newSilo(t, Options{DisableMerge: true})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 10, 11, 1)
	s.Store(0, 0x100, 11, 12, 2)
	if s.cores[0].buf.Len() != 2 {
		t.Errorf("DisableMerge: %d entries, want 2", s.cores[0].buf.Len())
	}
}

func TestNonTransactionalStoreNotLogged(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.Store(0, 0x100, 1, 2, 0)
	if s.created != 0 || s.cores[0].buf.Len() != 0 {
		t.Error("non-transactional store was logged")
	}
}

func TestStoreNeverStalls(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	for i := 0; i < 100; i++ { // includes overflows
		if lat := s.Store(0, mem.Addr(0x1000+i*8), 0, mem.Word(i+1), sim.Cycle(i)); lat != 0 {
			t.Fatalf("store %d stalled %d cycles; the log path is off the critical path", i, lat)
		}
	}
}

func TestOverflowBatchedEviction(t *testing.T) {
	s, dev := newSilo(t, Options{})
	s.TxBegin(0, 0)
	// Fill the 20-entry buffer with distinct words, then one more.
	for i := 0; i <= logging.DefaultBufferEntries; i++ {
		s.Store(0, mem.Addr(0x1000+i*8), 0, mem.Word(i+1), sim.Cycle(i))
	}
	if s.overflows != 1 {
		t.Fatalf("overflows = %d, want 1", s.overflows)
	}
	// 14 evicted + 1 appended after.
	if got := s.cores[0].buf.Len(); got != logging.DefaultBufferEntries-s.BatchN()+1 {
		t.Errorf("buffer len after overflow = %d", got)
	}
	// The evicted undo logs are in the log region with flush-bit 1.
	records := s.env.Region.Scan(0)
	if len(records) != s.BatchN() {
		t.Fatalf("log region has %d records, want %d", len(records), s.BatchN())
	}
	for i, im := range records {
		if im.Kind != logging.ImageUndo || !im.FlushBit {
			t.Errorf("record %d: kind=%v flush=%v, want undo/flush-bit 1", i, im.Kind, im.FlushBit)
		}
	}
	// Durability: the evicted entries' new data reached the data region.
	for i := 0; i < s.BatchN(); i++ {
		if got := dev.PeekWord(mem.Addr(0x1000 + i*8)); got != mem.Word(i+1) {
			t.Errorf("overflowed word %d not installed: %d", i, got)
		}
	}
}

func TestOverflowSingleEntryAblation(t *testing.T) {
	s, _ := newSilo(t, Options{SingleEntryOverflow: true})
	s.TxBegin(0, 0)
	for i := 0; i <= logging.DefaultBufferEntries; i++ {
		s.Store(0, mem.Addr(0x1000+i*8), 0, mem.Word(i+1), sim.Cycle(i))
	}
	if got := s.cores[0].buf.Len(); got != logging.DefaultBufferEntries {
		t.Errorf("single-entry overflow: buffer len %d, want full", got)
	}
	if len(s.env.Region.Scan(0)) != 1 {
		t.Error("single-entry overflow should write exactly one record")
	}
}

func TestTxEndInPlaceUpdates(t *testing.T) {
	s, dev := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x2000, 0, 77, 1)
	s.Store(0, 0x2008, 0, 88, 2)
	lat := s.TxEnd(0, 10)
	if lat < 6 || lat > 20 {
		t.Errorf("commit latency = %d; should be a few cycles (on-chip ACK)", lat)
	}
	if got := dev.PeekWord(0x2000); got != 77 {
		t.Errorf("IPU missed word: %d", got)
	}
	if got := dev.PeekWord(0x2008); got != 88 {
		t.Errorf("IPU missed word: %d", got)
	}
	// No log-region traffic in the failure-free case.
	if len(s.env.Region.Scan(0)) != 0 {
		t.Error("failure-free commit wrote the log region")
	}
	if !s.cores[0].pending {
		t.Error("buffer should be committed-pending until dealloc")
	}
}

func TestFlushBitSuppressesIPU(t *testing.T) {
	s, dev := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x3000, 0, 5, 1)
	s.Store(0, 0x3040, 0, 6, 2) // different line
	// The line holding 0x3000 is evicted mid-transaction.
	var line [mem.LineSize]byte
	line[0] = 5
	s.CachelineEvicted(3, 0x3000, line)
	if s.flushBitSets != 1 {
		t.Fatalf("flushBitSets = %d, want 1", s.flushBitSets)
	}
	wpq := dev.Stats().WPQWrites // 1 (the eviction)
	s.TxEnd(0, 10)
	// Only the un-evicted word is flushed: exactly one more WPQ write.
	if got := dev.Stats().WPQWrites; got != wpq+1 {
		t.Errorf("TxEnd issued %d writes, want 1 (flush-bit suppression)", got-wpq)
	}
	if got := dev.PeekWord(0x3040); got != 6 {
		t.Errorf("unevicted word not installed: %d", got)
	}
}

func TestDeallocOnNextTxBegin(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x4000, 0, 1, 1)
	s.TxEnd(0, 10)
	if !s.cores[0].pending {
		t.Fatal("not pending after commit")
	}
	stall := s.TxBegin(0, 1_000_000) // long after the flush finished
	if stall != 0 {
		t.Errorf("late TxBegin stalled %d cycles", stall)
	}
	if s.cores[0].pending || s.cores[0].buf.Len() != 0 {
		t.Error("buffer not deallocated")
	}
}

func TestDeallocWaitsForPendingFlush(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x4000, 0, 1, 1)
	s.TxEnd(0, 10)
	done := s.cores[0].flushDoneAt
	if done <= 10 {
		t.Skip("flush accepted instantly; nothing to wait for")
	}
	if stall := s.TxBegin(0, 10); stall != done-10 {
		t.Errorf("TxBegin stall = %d, want %d", stall, done-10)
	}
}

func TestOverflowTruncatedAfterCommit(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	for i := 0; i <= logging.DefaultBufferEntries; i++ {
		s.Store(0, mem.Addr(0x5000+i*8), 0, mem.Word(i+1), sim.Cycle(i))
	}
	s.TxEnd(0, 100)
	if len(s.env.Region.Scan(0)) == 0 {
		t.Fatal("overflowed logs should still be in the region while pending")
	}
	s.TxBegin(0, 1_000_000) // dealloc
	if len(s.env.Region.Scan(0)) != 0 {
		t.Error("overflowed logs not truncated after commit (§III-F)")
	}
}

func TestCrashUncommittedFlushesUndo(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x6000, 1, 2, 1)
	s.Store(0, 0x6008, 3, 4, 2)
	s.Crash(5)
	records := s.env.Region.Scan(0)
	if len(records) != 2 {
		t.Fatalf("crash flushed %d records, want 2 undo", len(records))
	}
	for _, im := range records {
		if im.Kind != logging.ImageUndo {
			t.Errorf("crash record kind %v, want undo (uncommitted tx)", im.Kind)
		}
	}
	if records[0].Data != 1 || records[1].Data != 3 {
		t.Errorf("undo old data wrong: %d, %d", records[0].Data, records[1].Data)
	}
}

func TestCrashPendingFlushesRedoAndIDTuple(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x7000, 1, 2, 1)
	s.TxEnd(0, 10)
	s.Crash(11) // while committed-pending
	records := s.env.Region.Scan(0)
	if len(records) != 2 {
		t.Fatalf("crash flushed %d records, want ID tuple + redo", len(records))
	}
	// The ID tuple must precede the redo stream: the checked recovery
	// scan stops at the first torn record, so if a bounded crash-flush
	// budget tears the (tolerable) redo suffix, the tuple still lands —
	// a tuple *behind* the tear would let flush-bit-1 undo logs revoke
	// committed data.
	if records[0].Kind != logging.ImageCommit {
		t.Errorf("missing ID tuple: %+v", records[0])
	}
	if records[1].Kind != logging.ImageRedo || records[1].Data != 2 {
		t.Errorf("redo record wrong: %+v", records[1])
	}
}

func TestCrashIdleFlushesNothing(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x8000, 1, 2, 1)
	s.TxEnd(0, 10)
	s.TxBegin(0, 1_000_000)
	s.TxEnd(0, 1_000_001) // empty tx commits instantly
	s.TxBegin(0, 2_000_000)
	s.TxEnd(0, 2_000_001)
	s.Crash(3_000_000)
	// Last tx was empty: pending with no entries -> only an ID tuple.
	for _, im := range s.env.Region.Scan(0) {
		if im.Kind != logging.ImageCommit {
			t.Errorf("idle crash flushed %v", im.Kind)
		}
	}
}

func TestEvictionGoesToDataRegion(t *testing.T) {
	s, dev := newSilo(t, Options{})
	var line [mem.LineSize]byte
	line[8] = 42
	s.CachelineEvicted(0, 0x9000, line)
	if got := dev.Peek(0x9008, 1)[0]; got != 42 {
		t.Errorf("eviction not written to data region: %d", got)
	}
}

func TestLogReductionStats(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 0, 1, 1) // kept
	s.Store(0, 0x100, 1, 2, 2) // merged
	s.Store(0, 0x108, 3, 3, 3) // ignored
	s.TxEnd(0, 10)
	total, remaining, maxRem := s.LogReduction()
	if total != 3 || remaining != 1 || maxRem != 1 {
		t.Errorf("LogReduction = %v/%v/%v, want 3/1/1", total, remaining, maxRem)
	}
}

func TestCollectStats(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	s.Store(0, 0x100, 0, 1, 1)
	s.Store(0, 0x100, 1, 2, 2)
	s.Store(0, 0x108, 3, 3, 3)
	var r stats.Run
	s.CollectStats(&r)
	if r.LogEntriesCreated != 3 || r.LogEntriesMerged != 1 || r.LogEntriesIgnored != 1 {
		t.Errorf("stats wrong: %+v", r)
	}
	if s.Name() != "Silo" {
		t.Error("name")
	}
}

func TestTxIDAdvances(t *testing.T) {
	s, _ := newSilo(t, Options{})
	s.TxBegin(0, 0)
	id1 := s.cores[0].txid
	s.TxEnd(0, 1)
	s.TxBegin(0, 2)
	if s.cores[0].txid != id1+1 {
		t.Error("txid did not advance")
	}
}

func TestMultiCoreIndependentBuffers(t *testing.T) {
	env, _ := newEnv(2)
	s := New(env, Options{})
	s.TxBegin(0, 0)
	s.TxBegin(1, 0)
	s.Store(0, 0x100, 0, 1, 1)
	s.Store(1, 0x100000, 0, 2, 1)
	if s.cores[0].buf.Len() != 1 || s.cores[1].buf.Len() != 1 {
		t.Error("per-core buffers not independent")
	}
	// An eviction covering core 1's logged line sets only its flush bit.
	var line [mem.LineSize]byte
	line[0] = 2
	s.CachelineEvicted(2, 0x100000, line)
	if s.cores[0].buf.Entry(0).FlushBit {
		t.Error("core 0's log flagged by core 1's eviction")
	}
	if !s.cores[1].buf.Entry(0).FlushBit {
		t.Error("core 1's log not flagged")
	}
}

// TestLogAreaBoundedUnderOverflowChurn: overflow logs are truncated at
// dealloc, so the thread log area must never grow without bound even when
// every transaction overflows.
func TestLogAreaBoundedUnderOverflowChurn(t *testing.T) {
	s, _ := newSilo(t, Options{})
	var maxUsed uint64
	for tx := 0; tx < 200; tx++ {
		s.TxBegin(0, sim.Cycle(tx*1000))
		for i := 0; i < 3*logging.DefaultBufferEntries; i++ {
			addr := mem.Addr(0x100000 + i*8)
			s.Store(0, addr, mem.Word(tx), mem.Word(tx+1), sim.Cycle(tx*1000+i))
		}
		s.TxEnd(0, sim.Cycle(tx*1000+900))
		if u := s.env.Region.Used(0); u > maxUsed {
			maxUsed = u
		}
	}
	// One transaction spills at most (3*cap) undo records of 18 B.
	if limit := uint64(3*logging.DefaultBufferEntries*logging.UndoBytes) + 64; maxUsed > limit {
		t.Errorf("log area grew to %d bytes, want <= %d (per-tx truncation)", maxUsed, limit)
	}
}
