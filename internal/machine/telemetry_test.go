package machine

import (
	"testing"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

func benchMachine(tel *telemetry.Recorder) *Machine {
	return New(Config{
		Cores:        1,
		PM:           pm.DefaultConfig(),
		Cache:        cache.DefaultHierarchyConfig(),
		Design:       core.Factory(core.Options{}),
		DisableAudit: true,
		Telemetry:    tel,
	})
}

// nullSink counts events and discards them — the cheapest enabled sink,
// isolating the recorder's own fan-out cost in the benchmarks below.
type nullSink struct{ n int64 }

func (s *nullSink) Event(telemetry.Event) { s.n++ }

// steadyStores returns a closure performing one steady-state in-tx store:
// after warm-up the address hits L1 and its log entry merges in place, so
// the op exercises every probe site without touching a slow path.
func steadyStores(m *Machine) func() {
	now := sim.Cycle(0)
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, now)
	return func() {
		now += 10
		m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x4000, Data: mem.Word(now)}, now)
	}
}

// With audit off and no recorder attached, every probe site must cost one
// nil-check: the steady-state store path performs zero allocations. This
// is the regression gate for the "telemetry is free when disabled" claim.
func TestExecDisabledTelemetryZeroAlloc(t *testing.T) {
	m := benchMachine(nil)
	store := steadyStores(m)
	for i := 0; i < 64; i++ {
		store() // warm caches, log buffer, golden-shadow maps
	}
	if allocs := testing.AllocsPerRun(200, store); allocs != 0 {
		t.Fatalf("steady-state store path allocates %v per op with telemetry disabled, want 0", allocs)
	}
}

func BenchmarkExecStoreTelemetryOff(b *testing.B) {
	m := benchMachine(nil)
	store := steadyStores(m)
	for i := 0; i < 64; i++ {
		store()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store()
	}
}

func BenchmarkExecStoreTelemetryOn(b *testing.B) {
	sink := &nullSink{}
	m := benchMachine(telemetry.NewRecorder(sink))
	store := steadyStores(m)
	for i := 0; i < 64; i++ {
		store()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store()
	}
}
