package machine

import (
	"testing"

	"silo/internal/mem"
	"silo/internal/sim"
)

// storeStream is a native OpStream issuing one TxBegin and then in-tx
// stores to a single hot address forever — the engine-level analogue of
// steadyStores, driving Engine.Step through its scheduler fast path.
type storeStream struct {
	begun bool
	n     mem.Word
}

func (s *storeStream) Next() (sim.Op, bool) {
	if !s.begun {
		s.begun = true
		return sim.Op{Kind: sim.OpTxBegin}, true
	}
	s.n++
	return sim.Op{Kind: sim.OpStore, Addr: 0x4000, Data: s.n}, true
}

func (s *storeStream) Deliver(sim.Result) {}

// The cooperative scheduler's whole point is that the per-op path does no
// channel operations and no allocations: with telemetry disabled, a
// steady-state Engine.Step must allocate nothing. This is the engine-level
// sibling of TestExecDisabledTelemetryZeroAlloc.
func TestEngineStepZeroAlloc(t *testing.T) {
	m := benchMachine(nil)
	eng := m.Engine(1)
	eng.Bind([]sim.OpStream{&storeStream{}})
	for i := 0; i < 64; i++ {
		eng.Step() // warm caches, log buffer, shadow tables
	}
	if allocs := testing.AllocsPerRun(200, func() { eng.Step() }); allocs != 0 {
		t.Fatalf("steady-state Engine.Step allocates %v per op with telemetry disabled, want 0", allocs)
	}
}

func BenchmarkEngineStep(b *testing.B) {
	m := benchMachine(nil)
	eng := m.Engine(1)
	eng.Bind([]sim.OpStream{&storeStream{}})
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
