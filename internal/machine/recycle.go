package machine

import (
	"sync"

	"silo/internal/pm"
)

// Recycler pools the heavy per-machine structures — the PM device's
// media/buffer tables, the golden-shadow table, and the per-core pending
// write tables — across machine lifetimes, so a fleet worker running
// thousands of short campaigns stops paying the table-regrowth and GC
// cost of building each machine from scratch. (Cache line/tag arrays are
// already pooled globally by package cache.)
//
// A recycled part is reset to a state observationally identical to a
// freshly constructed one; only storage capacity survives. The
// fresh-vs-reused equivalence test in the harness holds that line for
// full runs: identical run records and telemetry streams.
//
// A Recycler is safe for concurrent use — a mutex guards the pools,
// which keeps the fleet correct even when a wall-clock watchdog abandons
// a wedged campaign goroutine that later releases its machine — but it
// is designed for one recycler per fleet worker, where the lock is
// always uncontended.
type Recycler struct {
	mu      sync.Mutex
	devices []*pm.Device
	shadows []*shadowTable
	writes  []*txWrites
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{} }

// Caps keep one outsized campaign from pinning unbounded memory: a part
// whose retained footprint exceeds the cap is dropped to the GC on
// release, and pool depth is bounded for cluster campaigns that release
// many machines at once.
const (
	recycleMaxPartBytes = 32 << 20
	recycleMaxPool      = 64
)

func (r *Recycler) device(cfg pm.Config) *pm.Device {
	r.mu.Lock()
	var d *pm.Device
	if n := len(r.devices); n > 0 {
		d = r.devices[n-1]
		r.devices = r.devices[:n-1]
	}
	r.mu.Unlock()
	if d == nil {
		return pm.New(cfg)
	}
	d.Recycle(cfg)
	return d
}

func (r *Recycler) putDevice(d *pm.Device) {
	if d.MemFootprint() > recycleMaxPartBytes {
		return
	}
	r.mu.Lock()
	if len(r.devices) < recycleMaxPool {
		r.devices = append(r.devices, d)
	}
	r.mu.Unlock()
}

func (r *Recycler) shadow() *shadowTable {
	r.mu.Lock()
	var t *shadowTable
	if n := len(r.shadows); n > 0 {
		t = r.shadows[n-1]
		r.shadows = r.shadows[:n-1]
	}
	r.mu.Unlock()
	if t == nil {
		return newShadowTable()
	}
	t.reset()
	return t
}

func (r *Recycler) putShadow(t *shadowTable) {
	if t.memFootprint() > recycleMaxPartBytes {
		return
	}
	r.mu.Lock()
	if len(r.shadows) < recycleMaxPool {
		r.shadows = append(r.shadows, t)
	}
	r.mu.Unlock()
}

func (r *Recycler) txWrites() *txWrites {
	r.mu.Lock()
	var t *txWrites
	if n := len(r.writes); n > 0 {
		t = r.writes[n-1]
		r.writes = r.writes[:n-1]
	}
	r.mu.Unlock()
	if t == nil {
		return newTxWrites()
	}
	t.reset()
	return t
}

func (r *Recycler) putTxWrites(t *txWrites) {
	r.mu.Lock()
	if len(r.writes) < recycleMaxPool {
		r.writes = append(r.writes, t)
	}
	r.mu.Unlock()
}
