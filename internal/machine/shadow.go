package machine

import "silo/internal/mem"

// This file holds the machine's flattened golden-shadow structures. The
// shadow model is on the per-store hot path (baseline capture, pending
// tracking, commit promotion), so the Go maps it used to live in showed
// up as a steady slice of the whole-simulation profile. Both structures
// are open-addressed tables with multiplicative hashing, entries stored
// densely so iteration is cheap and deterministic (insertion order).

// shadowFibMul is 2^64 / phi, the multiplicative-hash constant.
const shadowFibMul = 0x9E3779B97F4A7C15

const (
	shadowHasCommitted = 1 << iota
	shadowHasBaseline
	shadowUnsafe
)

// shadowEntry is one word's golden durability record: the last committed
// value, the pre-first-write baseline, and the tainted-by-unsafe-store
// flag — the three maps the machine kept per address, merged so the
// store path probes once.
type shadowEntry struct {
	addr      mem.Addr
	committed mem.Word
	baseline  mem.Word
	flags     uint8
}

// shadowTable indexes shadowEntry storage by word address. Entries are
// never removed. Entry pointers are invalidated by the next getOrInsert.
type shadowTable struct {
	slots   []int32 // entry index + 1; 0 = empty
	shift   uint
	entries []shadowEntry
}

func newShadowTable() *shadowTable {
	return &shadowTable{slots: make([]int32, 1024), shift: 64 - 10}
}

func (t *shadowTable) home(addr mem.Addr) int {
	return int((uint64(addr) * shadowFibMul) >> t.shift)
}

// get returns the entry for addr, or nil.
func (t *shadowTable) get(addr mem.Addr) *shadowEntry {
	mask := len(t.slots) - 1
	for i := t.home(addr); ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == 0 {
			return nil
		}
		if e := &t.entries[s-1]; e.addr == addr {
			return e
		}
	}
}

// getOrInsert returns the entry for addr, creating a zeroed one if absent.
func (t *shadowTable) getOrInsert(addr mem.Addr) *shadowEntry {
	mask := len(t.slots) - 1
	i := t.home(addr)
	for t.slots[i] != 0 {
		if e := &t.entries[t.slots[i]-1]; e.addr == addr {
			return e
		}
		i = (i + 1) & mask
	}
	if 4*len(t.entries) >= 3*len(t.slots) {
		t.grow()
		mask = len(t.slots) - 1
		i = t.home(addr)
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
	}
	t.entries = append(t.entries, shadowEntry{addr: addr})
	t.slots[i] = int32(len(t.entries))
	return &t.entries[len(t.entries)-1]
}

func (t *shadowTable) grow() {
	t.shift--
	t.slots = make([]int32, 2*len(t.slots))
	mask := len(t.slots) - 1
	for idx := range t.entries {
		i := t.home(t.entries[idx].addr)
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = int32(idx + 1)
	}
}

// reset empties the table for an unrelated new run, keeping the grown
// slot array and entry storage. Observationally identical to a fresh
// table: lookups miss, inserts start from zeroed entries, and iteration
// (dense entries, insertion order) is capacity-blind.
func (t *shadowTable) reset() {
	clear(t.slots)
	t.entries = t.entries[:0]
}

// memFootprint approximates retained bytes for the recycler's size cap.
func (t *shadowTable) memFootprint() int {
	return cap(t.slots)*4 + cap(t.entries)*32
}

// txKV is one pending (uncommitted) write: word address and newest value.
type txKV struct {
	addr mem.Addr
	val  mem.Word
}

// txWrites tracks one core's writes inside the current transaction —
// the per-core pending map, flattened. reset is O(writes touched), not
// O(table), so the per-transaction clear costs nothing when idle.
type txWrites struct {
	slots   []int32 // entry index + 1; 0 = empty
	mask    int
	entries []txKV
	touched []int32 // slot indices in use, for reset
}

func newTxWrites() *txWrites {
	return &txWrites{slots: make([]int32, 64), mask: 63}
}

func (t *txWrites) home(addr mem.Addr) int {
	return int((uint64(addr)*shadowFibMul)>>32) & t.mask
}

// put records addr := val, overwriting any earlier write of addr in this
// transaction.
func (t *txWrites) put(addr mem.Addr, val mem.Word) {
	i := t.home(addr)
	for t.slots[i] != 0 {
		if e := &t.entries[t.slots[i]-1]; e.addr == addr {
			e.val = val
			return
		}
		i = (i + 1) & t.mask
	}
	if 4*len(t.entries) >= 3*len(t.slots) {
		t.grow()
		i = t.home(addr)
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
	}
	t.entries = append(t.entries, txKV{addr: addr, val: val})
	t.slots[i] = int32(len(t.entries))
	t.touched = append(t.touched, int32(i))
}

// get returns the pending value of addr, if written this transaction.
func (t *txWrites) get(addr mem.Addr) (mem.Word, bool) {
	i := t.home(addr)
	for t.slots[i] != 0 {
		if e := &t.entries[t.slots[i]-1]; e.addr == addr {
			return e.val, true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// len returns the number of distinct words written this transaction.
func (t *txWrites) len() int { return len(t.entries) }

// reset clears the table for the next transaction, zeroing only the
// slots this transaction used.
func (t *txWrites) reset() {
	for _, i := range t.touched {
		t.slots[i] = 0
	}
	t.entries = t.entries[:0]
	t.touched = t.touched[:0]
}

func (t *txWrites) grow() {
	t.mask = 2*t.mask + 1
	t.slots = make([]int32, t.mask+1)
	t.touched = t.touched[:0]
	for idx := range t.entries {
		i := t.home(t.entries[idx].addr)
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = int32(idx + 1)
		t.touched = append(t.touched, int32(i))
	}
}
