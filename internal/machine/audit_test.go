package machine

import (
	"testing"

	"silo/internal/audit"
	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
)

// tinyCacheConfig overflows after 8 distinct lines, so LLC evictions hit
// words whose log entries are still buffered (buffer capacity is 20).
func tinyCacheConfig() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1: cache.Config{Name: "L1", Size: 128, Ways: 2, Latency: 4},
		L2: cache.Config{Name: "L2", Size: 256, Ways: 2, Latency: 12},
		L3: cache.Config{Name: "L3", Size: 512, Ways: 2, Latency: 28},
	}
}

func tinyCacheMachine(opts core.Options, disableAudit bool) *Machine {
	return New(Config{
		Cores:        1,
		PM:           pm.DefaultConfig(),
		Cache:        tinyCacheConfig(),
		Design:       core.Factory(opts),
		DisableAudit: disableAudit,
	})
}

// storeLines opens a transaction and stores n distinct cachelines, which
// on the tiny hierarchy forces mid-transaction LLC evictions.
func storeLines(m *Machine, n int) {
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, 0)
	for i := 0; i < n; i++ {
		m.Exec(0, sim.Op{Kind: sim.OpStore,
			Addr: mem.Addr(0x1000 + i*mem.LineSize), Data: mem.Word(i) + 1}, sim.Cycle(1+i*10))
	}
}

// auditViolation runs fn and returns the *audit.Violation it panics
// with, or nil if it returns normally.
func auditViolation(t *testing.T, fn func()) (v *audit.Violation) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if v, ok = r.(*audit.Violation); !ok {
				t.Fatalf("panicked with %T: %v", r, r)
			}
		}
	}()
	fn()
	return nil
}

// A seeded flush-bit bug — evictions no longer mark buffered entries —
// must be caught by the named flush-bit invariant at the eviction that
// breaks the state machine, not hundreds of ops later.
func TestAuditorCatchesSkippedFlushBit(t *testing.T) {
	m := tinyCacheMachine(core.Options{DebugSkipFlushBit: true}, false)
	v := auditViolation(t, func() { storeLines(m, 16) })
	if v == nil {
		t.Fatal("seeded flush-bit bug not caught")
	}
	if v.Invariant != audit.InvFlushBit {
		t.Fatalf("caught by %q, want %q", v.Invariant, audit.InvFlushBit)
	}
	if len(v.Trail) == 0 {
		t.Error("violation carries no event trail")
	}
}

// Control: the same pressure without the seeded bug is clean, and the
// auditor demonstrably ran (a mutation test against a dormant auditor
// would be vacuous).
func TestAuditorCleanOnCorrectEvictions(t *testing.T) {
	m := tinyCacheMachine(core.Options{}, false)
	if v := auditViolation(t, func() {
		storeLines(m, 16)
		m.Exec(0, sim.Op{Kind: sim.OpTxEnd}, 1000)
	}); v != nil {
		t.Fatalf("clean run violated %s: %s", v.Invariant, v.Message)
	}
	if m.Auditor().Checks() == 0 {
		t.Fatal("auditor performed no checks")
	}
}

// The golden-shadow diff cannot see the flush-bit bug on a crash-free
// run — commit re-flushes the same values, so the data region ends up
// correct. Only the runtime invariant distinguishes the broken state
// machine; this pins down why the auditor exists.
func TestGoldenShadowMissesSkippedFlushBit(t *testing.T) {
	m := tinyCacheMachine(core.Options{DebugSkipFlushBit: true}, true)
	storeLines(m, 16)
	m.Exec(0, sim.Op{Kind: sim.OpTxEnd}, 1000)
	for _, a := range m.WrittenWords() {
		want, ok := m.GoldenCommitted(a)
		if !ok {
			continue
		}
		if got := m.Device().PeekWord(a); got != want {
			t.Fatalf("golden shadow caught the flush-bit bug at %v (%#x != %#x); "+
				"the mutation test premise is broken", a, uint64(got), uint64(want))
		}
	}
}

// Post-commit durability: a committed word that silently vanishes from
// every durable domain must fail the reconstructibility invariant at the
// crash, even though commit-time checks had passed.
func TestAuditorCatchesLostCommittedWord(t *testing.T) {
	m := New(Config{
		Cores:  1,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: core.Factory(core.Options{}),
	})
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, 0)
	m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x5000, Data: 7}, 1)
	m.Exec(0, sim.Op{Kind: sim.OpTxEnd}, 2)
	// Next Tx_begin deallocates the committed transaction's log state;
	// the word's only copy is now the in-place update.
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, 3)
	m.Device().PokeWord(0x5000, 99) // simulate losing the durable copy
	v := auditViolation(t, func() { m.InjectCrash(4) })
	if v == nil {
		t.Fatal("lost committed word not caught at crash")
	}
	if v.Invariant != audit.InvReconstructible {
		t.Fatalf("caught by %q, want %q", v.Invariant, audit.InvReconstructible)
	}
}
