// Package machine assembles the simulated system: the cache hierarchy, the
// PM device behind the memory controller, and a pluggable logging design.
// It implements sim.Executor, maintains the golden committed-state shadow
// used to verify crash recovery, and provides crash injection.
package machine

import (
	"math/rand"

	"silo/internal/audit"
	"silo/internal/cache"
	"silo/internal/fault"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
	"silo/internal/trace"
)

// Config assembles a machine.
type Config struct {
	Cores       int
	PM          pm.Config
	Cache       cache.HierarchyConfig
	Design      logging.Factory
	LogBuf      int       // per-core log buffer entries (0 → default 20)
	LogLat      sim.Cycle // log buffer access latency (0 → 8)
	MCReadL     sim.Cycle // fill latency when LAD's MC buffer hits (0 → 40)
	PersistPath sim.Cycle // core→ADR-domain path for synchronous persists (0 → 60)

	// CrashAtOp injects a crash when the op counter reaches this value
	// (0 disables). Shorthand for a Fault plan with TriggerOp.
	CrashAtOp int64

	// Fault, when non-nil, is the full crash schedule: trigger (op,
	// cycle, commit window, overflow eviction), crash-flush energy
	// budget, and media faults. Takes precedence over CrashAtOp.
	Fault *fault.Plan

	// Trace, when non-nil, records every executed operation.
	Trace *trace.Writer

	// MaxCycles arms the engine's sim-cycle watchdog: a run whose clock
	// reaches this budget is crashed and unwound (0 disables). The
	// torture fleet uses it to kill livelocked campaigns.
	MaxCycles sim.Cycle

	// DisableAudit turns off the runtime invariant layer (benchmarks;
	// the auditor costs host wall-clock, never simulated cycles).
	DisableAudit bool

	// AuditTrail overrides the auditor's event-ring capacity (0 keeps
	// the default; see audit.TrailSize).
	AuditTrail int

	// Telemetry, when non-nil, receives typed probe events from every
	// layer of the machine (see internal/telemetry). The enabled audit
	// layer is grafted onto it as an extra sink, so violation trails are
	// built from the same stream. Probes never alter simulated timing or
	// stats.Run results.
	Telemetry *telemetry.Recorder

	// Device, when non-nil, is an existing PM device to assemble the
	// machine over instead of a fresh one — the post-crash reboot path:
	// media contents and wear survive the power cycle while caches and
	// logging hardware come up cold. Callers should Device.PowerCycle()
	// first so stale queue timing from the previous incarnation cannot
	// leak into the new clock. PM (the config) is ignored when set.
	Device *pm.Device

	// Recycle, when non-nil, sources the machine's heavy structures (PM
	// device tables, golden-shadow table, pending-write tables) from the
	// pool and returns them on Release — the fleet's cross-campaign
	// reset-in-place reuse. A reused machine is observationally identical
	// to a fresh one. A Device passed in explicitly is never recycled; it
	// belongs to the caller's reboot chain.
	Recycle *Recycler
}

// Machine is the simulated system for one run.
type Machine struct {
	cfg    Config
	dev    *pm.Device
	hier   *cache.Hierarchy
	region *logging.RegionWriter
	design logging.Design
	engine *sim.Engine

	ownsDev bool // device built here (not a caller's reboot device)

	aud       *audit.Auditor
	bufDesign audit.BufferedDesign // non-nil when design is buffer-based (Silo)
	tel       *telemetry.Recorder  // cfg.Telemetry plus the auditor sink; nil when both are off
	ticker    logging.Ticker       // non-nil when the design wants per-op ticks
	mcReader  logging.MCReader     // non-nil when the design buffers lines at the MC

	inTx    []bool
	pending []*txWrites  // per-core uncommitted writes (golden)
	shadow  *shadowTable // golden committed/baseline/unsafe state per word

	plan          *fault.Plan
	crashPending  bool  // event trigger matched; crash at the next op
	regionAppends int64 // run-time log appends observed (overflow trigger)

	opCount     int64
	commits     int64
	loads       int64
	storesTotal int64
	txStoreAcc  int64 // stores inside committed transactions

	storeStall  int64 // design-induced stall cycles on the store path
	commitStall int64 // design-induced stall cycles at Tx_end

	txBeganAt  []sim.Cycle     // per-core Tx_begin timestamps
	commitHist stats.Histogram // commit-stall distribution
	txHist     stats.Histogram // whole-transaction latency distribution
}

// New builds the machine. Call Engine() to obtain the sim engine.
func New(cfg Config) *Machine {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.LogBuf == 0 {
		cfg.LogBuf = logging.DefaultBufferEntries
	}
	if cfg.LogLat == 0 {
		cfg.LogLat = 8
	}
	if cfg.MCReadL == 0 {
		cfg.MCReadL = 40
	}
	if cfg.PersistPath == 0 {
		cfg.PersistPath = 60
	}
	dev := cfg.Device
	ownsDev := dev == nil
	if dev == nil {
		if cfg.Recycle != nil {
			dev = cfg.Recycle.device(cfg.PM)
		} else {
			dev = pm.New(cfg.PM)
		}
	}
	m := &Machine{
		cfg:     cfg,
		dev:     dev,
		ownsDev: ownsDev,
		inTx:    make([]bool, cfg.Cores),
	}
	if cfg.Recycle != nil {
		m.shadow = cfg.Recycle.shadow()
		for i := 0; i < cfg.Cores; i++ {
			m.pending = append(m.pending, cfg.Recycle.txWrites())
		}
	} else {
		m.shadow = newShadowTable()
		for i := 0; i < cfg.Cores; i++ {
			m.pending = append(m.pending, newTxWrites())
		}
	}
	m.txBeganAt = make([]sim.Cycle, cfg.Cores)
	m.hier = cache.NewHierarchy(cfg.Cores, cfg.Cache, m.fill, m.writeback)
	m.region = logging.NewRegionWriter(m.dev, cfg.Cores)
	env := &logging.Env{
		PM:            m.dev,
		Cache:         m.hier,
		Region:        m.region,
		Cores:         cfg.Cores,
		LogBufEntries: cfg.LogBuf,
		LogBufLatency: cfg.LogLat,
		PersistPath:   cfg.PersistPath,
	}
	m.design = cfg.Design(env)
	if t, ok := m.design.(logging.Ticker); ok {
		m.ticker = t
	}
	if r, ok := m.design.(logging.MCReader); ok {
		m.mcReader = r
	}
	var auditOpts []audit.Option
	if cfg.AuditTrail > 0 {
		auditOpts = append(auditOpts, audit.TrailSize(cfg.AuditTrail))
	}
	m.aud = audit.New(!cfg.DisableAudit, auditOpts...)
	if bd, ok := m.design.(audit.BufferedDesign); ok {
		m.bufDesign = bd
	}
	if m.aud.Enabled() {
		m.region.OnCrashAppend = m.aud.ObserveCrashAppend
	}
	// One recorder feeds external sinks and the audit trail alike; when
	// both are off it stays nil and every probe is a single branch.
	m.tel = cfg.Telemetry
	if m.aud.Enabled() {
		m.tel = m.tel.With(m.aud)
	}
	if m.tel != nil {
		m.hier.SetTelemetry(m.tel)
		m.dev.SetTelemetry(m.tel)
		m.region.Tel = m.tel
		if ins, ok := m.design.(telemetry.Instrumented); ok {
			ins.SetTelemetry(m.tel)
		}
	}
	m.plan = cfg.Fault
	if m.plan == nil && cfg.CrashAtOp > 0 {
		m.plan = &fault.Plan{Trigger: fault.TriggerOp, AtOp: cfg.CrashAtOp}
	}
	if m.plan != nil && m.plan.Trigger == fault.TriggerOverflow {
		m.region.OnAppend = func(tid, images int) {
			m.regionAppends++
			if m.regionAppends >= m.plan.AfterAppends {
				m.crashPending = true
			}
		}
	}
	return m
}

// Engine returns (building on first use) the sim engine for this machine.
func (m *Machine) Engine(seed int64) *sim.Engine {
	if m.engine == nil {
		m.engine = sim.NewEngine(m, m.cfg.Cores, seed)
		if m.plan != nil && m.plan.Trigger == fault.TriggerCycle {
			m.engine.ScheduleCrash(m.plan.AtCycle, m.InjectCrash)
		}
		if m.cfg.MaxCycles > 0 {
			m.engine.SetWatchdog(m.cfg.MaxCycles)
		}
	}
	return m.engine
}

// Auditor exposes the runtime invariant layer (trail inspection after a
// violation, overhead accounting).
func (m *Machine) Auditor() *audit.Auditor { return m.aud }

// Telemetry exposes the machine's probe-event recorder (nil when neither
// telemetry nor the audit layer is enabled).
func (m *Machine) Telemetry() *telemetry.Recorder { return m.tel }

// WatchdogFired reports whether the sim-cycle watchdog killed the run.
func (m *Machine) WatchdogFired() bool { return m.engine != nil && m.engine.WatchdogFired() }

// Device exposes the PM device (tests and recovery verification).
func (m *Machine) Device() *pm.Device { return m.dev }

// Hierarchy exposes the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Region exposes the log-region writer.
func (m *Machine) Region() *logging.RegionWriter { return m.region }

// Design exposes the logging design under test.
func (m *Machine) Design() logging.Design { return m.design }

// Commits returns the number of committed transactions so far.
func (m *Machine) Commits() int64 { return m.commits }

// Crashed reports whether a crash was injected.
func (m *Machine) Crashed() bool { return m.engine != nil && m.engine.Crashed() }

// Release returns the machine's pooled resources for reuse by the next
// machine: always the cache hierarchy's line and tag arrays, and — when
// the machine was built with a Recycler — the PM device tables, the
// golden-shadow table, and the pending-write tables too (reset in place,
// not reallocated). The machine must not be used afterwards. Callers
// that drop a machine without Release just fall back to the garbage
// collector.
func (m *Machine) Release() {
	m.hier.Release()
	r := m.cfg.Recycle
	if r == nil {
		return
	}
	m.cfg.Recycle = nil // idempotent: a second Release must not double-pool
	if m.ownsDev {
		r.putDevice(m.dev)
	}
	r.putShadow(m.shadow)
	for _, w := range m.pending {
		r.putTxWrites(w)
	}
}

// Now returns the simulated wall clock.
func (m *Machine) Now() sim.Cycle {
	if m.engine == nil {
		return 0
	}
	return m.engine.Now()
}

func (m *Machine) fill(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
	if m.mcReader != nil {
		if data, hit := m.mcReader.MCBuffered(la); hit {
			return data, m.cfg.MCReadL
		}
	}
	var line [mem.LineSize]byte
	lat := m.dev.ReadInto(now, la, line[:])
	return line, lat
}

func (m *Machine) writeback(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	m.design.CachelineEvicted(now, la, data)
	// §III-D: the eviction just carried this line's data to PM, so every
	// in-flight log entry covering it must now have its flush-bit set.
	if m.bufDesign != nil && m.aud.Enabled() {
		for c := 0; c < m.cfg.Cores; c++ {
			if m.bufDesign.InTx(c) {
				m.aud.CheckFlushBits(c, m.bufDesign.LogBuffer(c), la)
			}
		}
	}
}

// Exec implements sim.Executor.
func (m *Machine) Exec(core int, op sim.Op, now sim.Cycle) sim.Result {
	m.opCount++
	if m.shouldCrash() && m.engine != nil && !m.engine.Crashed() {
		m.InjectCrash(now)
		return sim.Result{Latency: -1}
	}
	if m.cfg.Trace != nil {
		m.cfg.Trace.Op(core, op)
	}
	if m.ticker != nil {
		m.ticker.Tick(now)
	}
	switch op.Kind {
	case sim.OpLoad:
		m.loads++
		w, lat := m.hier.Load(core, op.Addr, now)
		return sim.Result{Latency: lat, Value: w}
	case sim.OpStore:
		m.storesTotal++
		old, lat := m.hier.Store(core, op.Addr, op.Data, now)
		extra := m.design.Store(core, op.Addr, old, op.Data, now+lat)
		m.storeStall += int64(extra)
		if m.bufDesign != nil && m.inTx[core] {
			m.aud.CheckLogBuffer(core, m.bufDesign.LogBuffer(core), m.bufDesign.MergeEnabled(), op.Addr)
		}
		if m.inTx[core] {
			if e := m.shadow.getOrInsert(op.Addr); e.flags&shadowHasBaseline == 0 {
				e.baseline = old
				e.flags |= shadowHasBaseline
			}
			m.pending[core].put(op.Addr, op.Data)
		} else {
			m.shadow.getOrInsert(op.Addr).flags |= shadowUnsafe
		}
		return sim.Result{Latency: lat + extra}
	case sim.OpTxBegin:
		m.inTx[core] = true
		m.txBeganAt[core] = now
		m.pending[core].reset()
		m.tel.TxBegin(core, now, m.commits)
		return sim.Result{Latency: 1 + m.design.TxBegin(core, now)}
	case sim.OpTxEnd:
		extra := m.design.TxEnd(core, now)
		m.commitStall += int64(extra)
		m.commitHist.Observe(int64(extra))
		txLat := now + extra - m.txBeganAt[core]
		m.txHist.Observe(int64(txLat))
		m.inTx[core] = false
		m.commits++
		m.txStoreAcc += int64(m.pending[core].len())
		// The probe precedes the audit checks so a violation there is
		// stamped with this commit's cycle and sees it in the trail.
		m.tel.TxCommit(core, now+extra, extra, m.pending[core].len(), txLat)
		if reg := m.tel.Metrics(); reg != nil {
			reg.Histogram("commit-stall-cycles").Observe(int64(extra))
			reg.Histogram("tx-latency-cycles").Observe(int64(txLat))
			reg.Counter("commits").Inc()
		}
		if m.aud.Enabled() {
			if m.bufDesign != nil {
				// Log-as-Data: when Tx_end returns, every word of the
				// transaction is already durable (WPQ-accepted in-place
				// update or cacheline eviction). Words also written
				// outside transactions are unverifiable and skipped.
				for _, kv := range m.pending[core].entries {
					if e := m.shadow.get(kv.addr); e == nil || e.flags&shadowUnsafe == 0 {
						m.aud.CheckCommitDurability(core, kv.addr, kv.val, m.dev.PeekWord(kv.addr))
					}
				}
			}
			for ch := 0; ch < m.dev.Channels(); ch++ {
				q := m.dev.WPQ(ch)
				m.aud.CheckWPQ(ch, q.Occupancy(now), q.Capacity())
			}
		}
		for _, kv := range m.pending[core].entries {
			e := m.shadow.getOrInsert(kv.addr)
			e.committed = kv.val
			e.flags |= shadowHasCommitted
		}
		m.pending[core].reset()
		if m.plan != nil && m.plan.Trigger == fault.TriggerCommit && m.commits >= m.plan.AfterCommits {
			// Crash at the next operation: inside the commit window, with
			// the committed transaction's in-place updates still in flight.
			m.crashPending = true
		}
		return sim.Result{Latency: 1 + extra}
	case sim.OpCompute:
		return sim.Result{Latency: op.Cycles}
	}
	return sim.Result{Latency: 1}
}

// shouldCrash evaluates the fault plan's op-count and event triggers.
// The cycle trigger lives in the engine (ScheduleCrash), which sees
// every scheduling point rather than only this machine's op entries.
func (m *Machine) shouldCrash() bool {
	if m.crashPending {
		return true
	}
	p := m.plan
	return p != nil && p.Trigger == fault.TriggerOp && p.AtOp > 0 && m.opCount >= p.AtOp
}

// InjectCrash models a power failure at time now: the design performs its
// battery-backed flush (§III-G for Silo) under the plan's energy budget,
// the volatile caches vanish — unless the platform battery-backs them
// (eADR/BBB designs), in which case every dirty line is flushed to PM
// first — and the engine unwinds every core. The PM device (media + ADR
// domains) survives untouched, except for the plan's optional bit-flip
// media faults against the log region.
func (m *Machine) InjectCrash(now sim.Cycle) {
	auditing := m.aud.Enabled()
	persistor, _ := m.design.(logging.CachePersistor)
	persistCaches := persistor != nil && persistor.PersistCachesAtCrash()

	// Snapshot the durable data region before the crash sequence runs:
	// power failures must conserve it exactly. Platforms that battery-back
	// the caches may additionally overwrite a word with a value some core
	// had stored (the dirty-line flush); nothing else is legal.
	var before map[mem.Addr]mem.Word
	var allowed map[mem.Addr][]mem.Word
	m.tel.Crash(now, m.commits, m.opCount)
	if auditing {
		m.aud.BeginCrashFlush()
		before = make(map[mem.Addr]mem.Word)
		for _, a := range m.WrittenWords() {
			before[a] = m.dev.PeekWord(a)
		}
		if persistCaches {
			allowed = make(map[mem.Addr][]mem.Word, len(before))
			for a := range before {
				if e := m.shadow.get(a); e != nil {
					if e.flags&shadowHasBaseline != 0 {
						allowed[a] = append(allowed[a], e.baseline)
					}
					if e.flags&shadowHasCommitted != 0 {
						allowed[a] = append(allowed[a], e.committed)
					}
				}
				for c := range m.pending {
					if v, ok := m.pending[c].get(a); ok {
						allowed[a] = append(allowed[a], v)
					}
				}
			}
		}
	}

	if m.plan != nil {
		m.dev.SetCrashEnergy(m.plan.FlushBudget, m.plan.TearWords, m.plan.StrictBudget)
	}
	m.design.Crash(now)
	if persistCaches {
		m.hier.ForceWriteBackAll(now)
	}
	m.hier.InvalidateAll()

	if auditing {
		if rem, bounded := m.dev.CrashEnergyRemaining(); bounded {
			m.aud.CheckEnergyLedger(rem)
		}
		if m.bufDesign != nil {
			// Table IV sizes the battery reserve for a full buffer of
			// undo logs plus one commit ID tuple, sealed.
			budget := int64(m.cfg.LogBuf)*int64(logging.UndoBytes+logging.SealBytes) +
				int64(logging.CommitBytes+logging.SealBytes)
			for c := 0; c < m.cfg.Cores; c++ {
				m.aud.CheckCriticalBudget(c, budget)
			}
		}
		for a, b := range before {
			m.aud.CheckConservation(a, b, m.dev.PeekWord(a), allowed[a])
		}
	}

	if m.plan != nil {
		if m.plan.BitFlips > 0 {
			rng := rand.New(rand.NewSource(m.plan.Seed ^ 0x0b17f115))
			fault.FlipLogBits(m.dev, m.region, rng, m.plan.BitFlips)
		}
		// Power is gone; the budget must not throttle recovery's writes.
		m.dev.ClearCrashEnergy()
	}

	// Post-commit durability: every committed word must be reconstructible
	// from what is durable right now — the data region overlaid with the
	// writes a recovery pass would resolve from the log region. Skipped
	// under beyond-spec faults that may legally lose committed work
	// (strict battery budgets, log media bit flips).
	if auditing && (m.plan == nil || (!m.plan.StrictBudget && m.plan.BitFlips == 0)) {
		resolved := recovery.Resolved(m.region)
		for _, a := range m.WrittenWords() {
			want, ok := m.GoldenCommitted(a)
			if !ok {
				continue
			}
			got, has := resolved[a]
			if !has {
				got = m.dev.PeekWord(a)
			}
			m.aud.CheckReconstructible(a, want, got)
		}
	}

	if m.engine != nil {
		m.engine.Crash()
	}
}

// GoldenCommitted returns the expected durable value of addr after
// recovery: the last committed value, or the pre-first-write baseline.
// ok is false for words the verifier must skip (never written in a
// transaction, or tainted by non-transactional stores).
func (m *Machine) GoldenCommitted(addr mem.Addr) (mem.Word, bool) {
	e := m.shadow.get(addr)
	if e == nil || e.flags&shadowUnsafe != 0 {
		return 0, false
	}
	if e.flags&shadowHasCommitted != 0 {
		return e.committed, true
	}
	if e.flags&shadowHasBaseline != 0 {
		return e.baseline, true
	}
	return 0, false
}

// WrittenWords returns every word address that participated in any
// transaction (committed or not), for recovery verification sweeps.
func (m *Machine) WrittenWords() []mem.Addr {
	out := make([]mem.Addr, 0, len(m.shadow.entries))
	for i := range m.shadow.entries {
		if e := &m.shadow.entries[i]; e.flags&(shadowHasBaseline|shadowUnsafe) == shadowHasBaseline {
			out = append(out, e.addr)
		}
	}
	return out
}

// CommitHist returns the distribution of commit-time stalls.
func (m *Machine) CommitHist() *stats.Histogram { return &m.commitHist }

// TxHist returns the distribution of whole-transaction latencies.
func (m *Machine) TxHist() *stats.Histogram { return &m.txHist }

// CollectStats drains every component's counters into one run record.
// It finalizes media accounting by draining the on-PM buffer.
func (m *Machine) CollectStats(design, workload string) stats.Run {
	m.dev.DrainAll()
	ds := m.dev.Stats()
	r := stats.Run{
		Design:       design,
		Workload:     workload,
		Cores:        m.cfg.Cores,
		Transactions: m.commits,
		Loads:        m.loads,
		Stores:       m.storesTotal,
		MediaWrites:  ds.MediaWrites,
		MediaBytes:   ds.MediaBytes,
		WPQWrites:    ds.WPQWrites,
		WPQBytes:     ds.WPQBytes,
		PMReads:      ds.Reads,
		Writebacks:   m.hier.Writebacks,

		StoreStallCycles:  m.storeStall,
		CommitStallCycles: m.commitStall,
	}
	if m.engine != nil {
		r.Cycles = int64(m.engine.Now())
	}
	for i := 0; i < m.cfg.Cores; i++ {
		r.L1Hits += m.hier.L1(i).Hits
		r.L1Misses += m.hier.L1(i).Misses
		r.L2Hits += m.hier.L2(i).Hits
		r.L2Misses += m.hier.L2(i).Misses
	}
	r.L3Hits = m.hier.L3().Hits
	r.L3Misses = m.hier.L3().Misses
	m.design.CollectStats(&r)
	return r
}
