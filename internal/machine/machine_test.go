package machine

import (
	"testing"

	"silo/internal/baseline"
	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
)

func newMachine(cores int, factory logging.Factory) *Machine {
	return New(Config{
		Cores:  cores,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: factory,
	})
}

func TestExecLoadStore(t *testing.T) {
	m := newMachine(1, core.Factory(core.Options{}))
	m.Device().PokeWord(0x1000, 7)
	r := m.Exec(0, sim.Op{Kind: sim.OpLoad, Addr: 0x1000}, 0)
	if r.Value != 7 {
		t.Errorf("load = %d, want 7", r.Value)
	}
	if r.Latency <= 0 {
		t.Error("load had no latency")
	}
	m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x1000, Data: 8}, 10)
	r = m.Exec(0, sim.Op{Kind: sim.OpLoad, Addr: 0x1000}, 20)
	if r.Value != 8 {
		t.Errorf("load after store = %d", r.Value)
	}
}

func TestExecComputeLatency(t *testing.T) {
	m := newMachine(1, core.Factory(core.Options{}))
	r := m.Exec(0, sim.Op{Kind: sim.OpCompute, Cycles: 123}, 0)
	if r.Latency != 123 {
		t.Errorf("compute latency = %d", r.Latency)
	}
}

func TestGoldenShadowCommit(t *testing.T) {
	m := newMachine(1, core.Factory(core.Options{}))
	m.Device().PokeWord(0x2000, 5)
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, 0)
	m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x2000, Data: 6}, 1)
	// Before commit: golden value is the baseline (pre-tx) value.
	if v, ok := m.GoldenCommitted(0x2000); !ok || v != 5 {
		t.Errorf("pre-commit golden = %d/%v, want 5", v, ok)
	}
	m.Exec(0, sim.Op{Kind: sim.OpTxEnd}, 2)
	if v, ok := m.GoldenCommitted(0x2000); !ok || v != 6 {
		t.Errorf("post-commit golden = %d/%v, want 6", v, ok)
	}
	if m.Commits() != 1 {
		t.Errorf("commits = %d", m.Commits())
	}
	if len(m.WrittenWords()) != 1 {
		t.Errorf("written words = %v", m.WrittenWords())
	}
}

func TestNonTxStoresExcludedFromVerification(t *testing.T) {
	m := newMachine(1, core.Factory(core.Options{}))
	m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x3000, Data: 1}, 0)
	if _, ok := m.GoldenCommitted(0x3000); ok {
		t.Error("non-transactional store entered the golden shadow")
	}
	if len(m.WrittenWords()) != 0 {
		t.Error("non-transactional word listed for verification")
	}
}

func TestCrashAtOpStopsEngine(t *testing.T) {
	m := New(Config{
		Cores:     1,
		PM:        pm.DefaultConfig(),
		Cache:     cache.DefaultHierarchyConfig(),
		Design:    core.Factory(core.Options{}),
		CrashAtOp: 10,
	})
	eng := m.Engine(1)
	executed := 0
	eng.Run([]sim.Program{func(ctx *sim.Ctx) {
		for i := 0; i < 1000; i++ {
			ctx.Store(mem.Addr(0x100+i*8), mem.Word(i))
			executed++
		}
	}})
	if !eng.Crashed() {
		t.Fatal("engine did not crash")
	}
	if executed >= 1000 {
		t.Error("program ran to completion despite crash")
	}
	// Caches must be empty (volatile loss).
	if _, ok := m.Hierarchy().PeekWord(0, 0x100); ok {
		t.Error("cache contents survived the crash")
	}
}

func TestCollectStatsGathersEverything(t *testing.T) {
	m := newMachine(1, baseline.NewBase)
	eng := m.Engine(1)
	eng.Run([]sim.Program{func(ctx *sim.Ctx) {
		for i := 0; i < 20; i++ {
			ctx.TxBegin()
			ctx.Store(mem.Addr(0x100+i*64), mem.Word(i))
			ctx.TxEnd()
		}
	}})
	r := m.CollectStats("Base", "unit")
	if r.Design != "Base" || r.Workload != "unit" || r.Cores != 1 {
		t.Errorf("labels: %+v", r)
	}
	if r.Transactions != 20 || r.Stores != 20 {
		t.Errorf("tx/stores = %d/%d", r.Transactions, r.Stores)
	}
	if r.Cycles <= 0 || r.WPQWrites == 0 || r.MediaWrites == 0 {
		t.Errorf("traffic counters empty: %+v", r)
	}
	if r.LogEntriesCreated != 20 {
		t.Errorf("design stats not collected: %d", r.LogEntriesCreated)
	}
	if r.L1Hits+r.L1Misses == 0 {
		t.Error("cache stats not collected")
	}
}

func TestMCReaderFillPath(t *testing.T) {
	// A line buffered in LAD's MC must satisfy cache fills.
	m := newMachine(1, baseline.NewLAD)
	lad := m.Design().(*baseline.LAD)
	m.Exec(0, sim.Op{Kind: sim.OpTxBegin}, 0)
	m.Exec(0, sim.Op{Kind: sim.OpStore, Addr: 0x4000, Data: 9}, 1)
	var line [mem.LineSize]byte
	line[0] = 9
	lad.CachelineEvicted(2, 0x4000, line)
	m.Hierarchy().InvalidateAll() // force the next load to fill
	r := m.Exec(0, sim.Op{Kind: sim.OpLoad, Addr: 0x4000}, 3)
	if r.Value != 9 {
		t.Errorf("fill from MC buffer = %d, want 9", r.Value)
	}
}

func TestCrashedNowAndHistograms(t *testing.T) {
	m := newMachine(1, core.Factory(core.Options{}))
	if m.Crashed() || m.Now() != 0 {
		t.Error("fresh machine reports crashed/nonzero time")
	}
	eng := m.Engine(1)
	eng.Run([]sim.Program{func(ctx *sim.Ctx) {
		for i := 0; i < 30; i++ {
			ctx.TxBegin()
			ctx.Store(mem.Addr(0x100+i*8), mem.Word(i))
			ctx.TxEnd()
		}
	}})
	if m.Crashed() {
		t.Error("clean run reports crashed")
	}
	if m.Now() <= 0 {
		t.Error("Now not advanced")
	}
	if m.CommitHist().Count() != 30 || m.TxHist().Count() != 30 {
		t.Errorf("histograms observed %d/%d commits", m.CommitHist().Count(), m.TxHist().Count())
	}
	if m.TxHist().Mean() <= 0 {
		t.Error("transaction latency mean is zero")
	}
	if m.Region() == nil {
		t.Error("region accessor")
	}
}

func TestWritebackRoutesThroughDesign(t *testing.T) {
	// Overflow the tiny hierarchy so LLC evictions occur and reach PM via
	// the design's CachelineEvicted.
	m := New(Config{
		Cores: 1,
		PM:    pm.DefaultConfig(),
		Cache: cache.HierarchyConfig{
			L1: cache.Config{Name: "L1", Size: 512, Ways: 2, Latency: 4},
			L2: cache.Config{Name: "L2", Size: 1024, Ways: 2, Latency: 12},
			L3: cache.Config{Name: "L3", Size: 2048, Ways: 2, Latency: 28},
		},
		Design: core.Factory(core.Options{}),
	})
	eng := m.Engine(1)
	eng.Run([]sim.Program{func(ctx *sim.Ctx) {
		ctx.TxBegin()
		for i := 0; i < 200; i++ {
			ctx.Store(mem.Addr(0x1000+i*mem.LineSize), mem.Word(i)+1)
		}
		ctx.TxEnd()
	}})
	if m.Hierarchy().Writebacks == 0 {
		t.Fatal("no LLC writebacks despite cache overflow")
	}
	// Evicted data must be durable in PM.
	if got := m.Device().PeekWord(0x1000); got != 1 {
		t.Errorf("evicted word = %d", got)
	}
}
