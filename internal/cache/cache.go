// Package cache implements the simulated CPU cache hierarchy: private
// set-associative L1D and L2 caches per core and a shared L3, all
// write-back/write-allocate with LRU replacement, holding real data bytes.
//
// Holding real bytes matters for this reproduction: the caches are the
// *volatile* domain that a crash erases, dirty-line evictions race with
// Silo's in-place updates (the flush-bit logic of §III-D), and the log
// generator captures the old word straight from L1D on every store.
package cache

import (
	"encoding/binary"
	"sync"

	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// Config sizes one cache level.
type Config struct {
	Name    string
	Size    int // bytes
	Ways    int
	Latency sim.Cycle
}

// HierarchyConfig sizes all three levels; defaults follow Table II.
type HierarchyConfig struct {
	L1, L2, L3 Config
}

// DefaultHierarchyConfig returns Table II's hierarchy: 32 KB 8-way L1D
// (4 cycles), 256 KB 8-way L2 (12 cycles), 8 MB 16-way shared L3 (28
// cycles), all with 64 B lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 4},
		L2: Config{Name: "L2", Size: 256 << 10, Ways: 8, Latency: 12},
		L3: Config{Name: "L3", Size: 8 << 20, Ways: 16, Latency: 28},
	}
}

type line struct {
	addr  mem.Addr // line-aligned tag
	lru   int64
	data  [mem.LineSize]byte // held inline: no per-fill allocation
	dirty bool
}

// invalidTag marks an empty way in the tag array. It is not line-aligned,
// so no real line address can collide with it.
const invalidTag = ^mem.Addr(0)

// Cache is one set-associative level. Tags live in their own dense array
// (mirroring arr) so the per-access way scan reads one contiguous run of
// words instead of striding across the full line records. The tag array
// is also the sole validity record — a line record is only read when its
// tag matches — so construction and whole-cache invalidation touch 8
// bytes per line, not the 88-byte record (the torture fleet builds
// thousands of short-lived machines and crashes them constantly; zeroing
// the multi-megabyte L3 record array per campaign dominated its profile).
type Cache struct {
	cfg     Config
	sets    int
	setMask int // sets-1 when sets is a power of two (the usual case), else -1
	ways    int
	arr     []line     // sets*ways, row-major by set; stale unless tag valid
	tags    []mem.Addr // arr[i].addr, or invalidTag for an empty way
	pooled  *cacheArrays
	tick    int64

	Hits, Misses int64
}

// cacheArrays bundles one level's line records and tag array so they
// recycle together. Because validity lives solely in the tag array,
// recycled records may carry stale contents — they are unreachable until
// an insert overwrites them — so reuse needs no clearing beyond the tags.
type cacheArrays struct {
	arr  []line
	tags []mem.Addr
}

// arrPools recycles cacheArrays by line count. Short-lived machines (the
// torture fleet builds thousands per sweep) otherwise spend more time
// zeroing fresh multi-megabyte L3 record arrays than simulating.
var arrPools sync.Map // line count -> *sync.Pool

func getArrays(n int) *cacheArrays {
	p, ok := arrPools.Load(n)
	if !ok {
		p, _ = arrPools.LoadOrStore(n, &sync.Pool{New: func() any {
			return &cacheArrays{arr: make([]line, n), tags: make([]mem.Addr, n)}
		}})
	}
	a := p.(*sync.Pool).Get().(*cacheArrays)
	fillInvalid(a.tags)
	return a
}

// fillInvalid resets a tag array to all-empty. The doubling copy runs at
// memmove speed, which matters at the L3's 128 k tags.
func fillInvalid(tags []mem.Addr) {
	if len(tags) == 0 {
		return
	}
	tags[0] = invalidTag
	for n := 1; n < len(tags); n *= 2 {
		copy(tags[n:], tags[:n])
	}
}

// NewCache builds a cache from cfg.
func NewCache(cfg Config) *Cache {
	sets := cfg.Size / (mem.LineSize * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	mask := -1
	if sets&(sets-1) == 0 {
		mask = sets - 1
	}
	a := getArrays(sets * cfg.Ways)
	return &Cache{cfg: cfg, sets: sets, setMask: mask, ways: cfg.Ways,
		arr: a.arr, tags: a.tags, pooled: a}
}

// Release returns the cache's arrays to the pool. The cache must not be
// used afterwards.
func (c *Cache) Release() {
	if c.pooled == nil {
		return
	}
	if p, ok := arrPools.Load(len(c.pooled.arr)); ok {
		p.(*sync.Pool).Put(c.pooled)
	}
	c.pooled, c.arr, c.tags = nil, nil, nil
}

func (c *Cache) setBase(addr mem.Addr) int {
	idx := uint64(addr >> mem.LineShift)
	if c.setMask >= 0 {
		return (int(idx) & c.setMask) * c.ways
	}
	return int(idx%uint64(c.sets)) * c.ways
}

// lookup returns the way holding addr's line, or nil.
func (c *Cache) lookup(addr mem.Addr) *line {
	la := addr.Line()
	base := c.setBase(la)
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == la {
			return &c.arr[base+i]
		}
	}
	return nil
}

// Evicted describes a line pushed out of a cache level.
type Evicted struct {
	Addr  mem.Addr
	Data  [mem.LineSize]byte
	Dirty bool
}

// insert places data for la, returning the resident line and the victim
// if a valid line was displaced.
func (c *Cache) insert(la mem.Addr, data *[mem.LineSize]byte, dirty bool) (*line, Evicted, bool) {
	base := c.setBase(la)
	set := c.arr[base : base+c.ways]
	tags := c.tags[base : base+c.ways]
	vi := 0
	for i := range tags {
		if tags[i] == invalidTag {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim := &set[vi]
	var ev Evicted
	had := tags[vi] != invalidTag
	if had {
		ev = Evicted{Addr: victim.addr, Data: victim.data, Dirty: victim.dirty}
	}
	c.tick++
	victim.addr, victim.lru, victim.data, victim.dirty = la, c.tick, *data, dirty
	tags[vi] = la
	return victim, ev, had
}

// remove invalidates la, returning its contents.
func (c *Cache) remove(la mem.Addr) (Evicted, bool) {
	base := c.setBase(la)
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == la {
			l := &c.arr[base+i]
			ev := Evicted{Addr: l.addr, Data: l.data, Dirty: l.dirty}
			tags[i] = invalidTag // record left stale; never read while invalid
			return ev, true
		}
	}
	return Evicted{}, false
}

// FillFn reads a line's bytes from memory at time now, returning data and
// latency (which may include interference from queued writes).
type FillFn func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle)

// WritebackFn delivers a dirty line evicted from the LLC to the memory
// controller at time now.
type WritebackFn func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte)

// Hierarchy is the full 3-level cache system for all cores.
type Hierarchy struct {
	cfg       HierarchyConfig
	l1, l2    []*Cache
	l3        *Cache
	fill      FillFn
	writeback WritebackFn
	tel       *telemetry.Recorder

	Writebacks int64 // dirty LLC evictions
}

// SetTelemetry attaches the probe-event recorder (nil disables probes).
func (h *Hierarchy) SetTelemetry(r *telemetry.Recorder) { h.tel = r }

// NewHierarchy builds per-core L1/L2 and a shared L3.
func NewHierarchy(cores int, cfg HierarchyConfig, fill FillFn, writeback WritebackFn) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l3: NewCache(cfg.L3), fill: fill, writeback: writeback}
	for i := 0; i < cores; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1))
		h.l2 = append(h.l2, NewCache(cfg.L2))
	}
	return h
}

// L1 returns core i's L1D (stats access).
func (h *Hierarchy) L1(i int) *Cache { return h.l1[i] }

// L2 returns core i's L2.
func (h *Hierarchy) L2(i int) *Cache { return h.l2[i] }

// L3 returns the shared LLC.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// access brings addr's line into core's L1 and returns a pointer to the
// resident line plus the access latency.
func (h *Hierarchy) access(core int, addr mem.Addr, now sim.Cycle) (*line, sim.Cycle) {
	l1, l2 := h.l1[core], h.l2[core]
	if l := l1.lookup(addr); l != nil {
		l1.Hits++
		l1.tick++
		l.lru = l1.tick
		return l, h.cfg.L1.Latency
	}
	l1.Misses++
	la := addr.Line()

	var data [mem.LineSize]byte
	var dirty bool
	lat := h.cfg.L1.Latency + h.cfg.L2.Latency
	if l := l2.lookup(la); l != nil {
		l2.Hits++
		data, dirty = l.data, l.dirty
		l2.remove(la) // promote exclusively into L1
	} else {
		l2.Misses++
		lat += h.cfg.L3.Latency
		if l := h.l3.lookup(la); l != nil {
			h.l3.Hits++
			data, dirty = l.data, l.dirty
			h.l3.remove(la)
		} else {
			h.l3.Misses++
			var fillLat sim.Cycle
			data, fillLat = h.fill(la, now)
			lat += fillLat
		}
	}
	res, ev, had := l1.insert(la, &data, dirty)
	if had {
		h.demote(1, core, ev, now)
		// A same-set demotion chain cannot displace la from L1: the only
		// L1 write after insert is the demote's recursion into L2/L3.
	}
	return res, lat
}

// demote pushes an evicted line down one level (L1→L2→L3→MC). Clean lines
// are demoted too (victim caching); dirty LLC victims leave the hierarchy
// through the writeback callback.
func (h *Hierarchy) demote(fromLevel int, core int, ev Evicted, now sim.Cycle) {
	switch fromLevel {
	case 1:
		_, ev2, had := h.l2[core].insert(ev.Addr, &ev.Data, ev.Dirty)
		if had {
			h.demote(2, core, ev2, now)
		}
	case 2:
		_, ev3, had := h.l3.insert(ev.Addr, &ev.Data, ev.Dirty)
		if had {
			h.demote(3, core, ev3, now)
		}
	case 3:
		if ev.Dirty {
			h.Writebacks++
			h.tel.LLCEvict(now, ev.Addr)
			h.writeback(now, ev.Addr, ev.Data)
		}
	}
}

// Load reads the word at addr through core's caches.
func (h *Hierarchy) Load(core int, addr mem.Addr, now sim.Cycle) (mem.Word, sim.Cycle) {
	l, lat := h.access(core, addr, now)
	return wordAt(&l.data, addr), lat
}

// Store writes the word at addr through core's caches (write-allocate)
// and returns the word's previous value — the log generator's "old data",
// read during tag matching at no extra latency (§III-B).
func (h *Hierarchy) Store(core int, addr mem.Addr, v mem.Word, now sim.Cycle) (old mem.Word, lat sim.Cycle) {
	l, lat := h.access(core, addr, now)
	old = wordAt(&l.data, addr)
	putWordAt(&l.data, addr, v)
	l.dirty = true
	return old, lat
}

// PeekWord returns addr's word if cached anywhere for core, with no side
// effects (no LRU update, no timing).
func (h *Hierarchy) PeekWord(core int, addr mem.Addr) (mem.Word, bool) {
	for lvl := 0; lvl < 3; lvl++ {
		if l := h.level(lvl, core).lookup(addr); l != nil {
			return wordAt(&l.data, addr), true
		}
	}
	return 0, false
}

// level returns core's cache at L1/L2/L3 (0/1/2) — the iteration order of
// the whole-hierarchy probes, without building a slice per call.
func (h *Hierarchy) level(lvl, core int) *Cache {
	switch lvl {
	case 0:
		return h.l1[core]
	case 1:
		return h.l2[core]
	default:
		return h.l3
	}
}

// CleanLine implements clwb semantics for one line: if the line is dirty
// in any level reachable by core, its current contents are returned and
// every cached copy is marked clean (the caller writes it to PM). The
// line stays cached.
func (h *Hierarchy) CleanLine(core int, la mem.Addr) ([mem.LineSize]byte, bool) {
	la = la.Line()
	var data [mem.LineSize]byte
	found, wasDirty := false, false
	for lvl := 0; lvl < 3; lvl++ {
		if l := h.level(lvl, core).lookup(la); l != nil {
			if !found {
				data = l.data
				found = true
			}
			if l.dirty {
				wasDirty = true
				l.dirty = false
			}
		}
	}
	return data, found && wasDirty
}

// DirtyLine reports whether la is dirty in any level for core, returning
// its contents if so (LAD's commit-time flush uses this).
func (h *Hierarchy) DirtyLine(core int, la mem.Addr) ([mem.LineSize]byte, bool) {
	la = la.Line()
	for lvl := 0; lvl < 3; lvl++ {
		if l := h.level(lvl, core).lookup(la); l != nil && l.dirty {
			return l.data, true
		}
	}
	return [mem.LineSize]byte{}, false
}

// ForceWriteBackAll writes every dirty line in the whole hierarchy back to
// the memory controller and marks it clean (FWB's periodic force
// write-back). It returns the number of lines written back.
func (h *Hierarchy) ForceWriteBackAll(now sim.Cycle) int {
	n := 0
	flush := func(c *Cache) {
		for i := range c.arr {
			l := &c.arr[i]
			if c.tags[i] != invalidTag && l.dirty {
				h.Writebacks++
				h.writeback(now, l.addr, l.data)
				l.dirty = false
				n++
			}
		}
	}
	for i := range h.l1 {
		flush(h.l1[i])
		flush(h.l2[i])
	}
	flush(h.l3)
	return n
}

// InvalidateAll drops every line — the volatile caches at a crash.
// Only the tag arrays are reset; the stale line records are unreachable
// once their tags are invalid.
func (h *Hierarchy) InvalidateAll() {
	for i := range h.l1 {
		fillInvalid(h.l1[i].tags)
		fillInvalid(h.l2[i].tags)
	}
	fillInvalid(h.l3.tags)
}

// Release returns every level's arrays to the pool for the next machine.
// The hierarchy must not be used afterwards.
func (h *Hierarchy) Release() {
	for i := range h.l1 {
		h.l1[i].Release()
		h.l2[i].Release()
	}
	h.l3.Release()
}

func wordAt(d *[mem.LineSize]byte, addr mem.Addr) mem.Word {
	o := addr.Word().LineOffset()
	return mem.Word(binary.LittleEndian.Uint64(d[o : o+8]))
}

func putWordAt(d *[mem.LineSize]byte, addr mem.Addr, w mem.Word) {
	o := addr.Word().LineOffset()
	binary.LittleEndian.PutUint64(d[o:o+8], uint64(w))
}
