// Package cache implements the simulated CPU cache hierarchy: private
// set-associative L1D and L2 caches per core and a shared L3, all
// write-back/write-allocate with LRU replacement, holding real data bytes.
//
// Holding real bytes matters for this reproduction: the caches are the
// *volatile* domain that a crash erases, dirty-line evictions race with
// Silo's in-place updates (the flush-bit logic of §III-D), and the log
// generator captures the old word straight from L1D on every store.
package cache

import (
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// Config sizes one cache level.
type Config struct {
	Name    string
	Size    int // bytes
	Ways    int
	Latency sim.Cycle
}

// HierarchyConfig sizes all three levels; defaults follow Table II.
type HierarchyConfig struct {
	L1, L2, L3 Config
}

// DefaultHierarchyConfig returns Table II's hierarchy: 32 KB 8-way L1D
// (4 cycles), 256 KB 8-way L2 (12 cycles), 8 MB 16-way shared L3 (28
// cycles), all with 64 B lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 4},
		L2: Config{Name: "L2", Size: 256 << 10, Ways: 8, Latency: 12},
		L3: Config{Name: "L3", Size: 8 << 20, Ways: 16, Latency: 28},
	}
}

type line struct {
	addr  mem.Addr // line-aligned tag; valid when data != nil
	data  *[mem.LineSize]byte
	dirty bool
	lru   int64
}

// Cache is one set-associative level.
type Cache struct {
	cfg  Config
	sets int
	ways int
	arr  []line // sets*ways, row-major by set
	tick int64

	Hits, Misses int64
}

// NewCache builds a cache from cfg.
func NewCache(cfg Config) *Cache {
	sets := cfg.Size / (mem.LineSize * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	return &Cache{cfg: cfg, sets: sets, ways: cfg.Ways, arr: make([]line, sets*cfg.Ways)}
}

func (c *Cache) set(addr mem.Addr) []line {
	s := int(uint64(addr>>mem.LineShift) % uint64(c.sets))
	return c.arr[s*c.ways : (s+1)*c.ways]
}

// lookup returns the way holding addr's line, or nil.
func (c *Cache) lookup(addr mem.Addr) *line {
	la := addr.Line()
	set := c.set(la)
	for i := range set {
		if set[i].data != nil && set[i].addr == la {
			return &set[i]
		}
	}
	return nil
}

// Evicted describes a line pushed out of a cache level.
type Evicted struct {
	Addr  mem.Addr
	Data  [mem.LineSize]byte
	Dirty bool
}

// insert places data for la, returning the victim if a valid line was
// displaced.
func (c *Cache) insert(la mem.Addr, data *[mem.LineSize]byte, dirty bool) (Evicted, bool) {
	set := c.set(la)
	victim := &set[0]
	for i := range set {
		if set[i].data == nil {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	var ev Evicted
	had := victim.data != nil
	if had {
		ev = Evicted{Addr: victim.addr, Data: *victim.data, Dirty: victim.dirty}
	}
	c.tick++
	d := new([mem.LineSize]byte)
	*d = *data
	*victim = line{addr: la, data: d, dirty: dirty, lru: c.tick}
	return ev, had
}

// remove invalidates la, returning its contents.
func (c *Cache) remove(la mem.Addr) (Evicted, bool) {
	if l := c.lookup(la); l != nil {
		ev := Evicted{Addr: l.addr, Data: *l.data, Dirty: l.dirty}
		*l = line{}
		return ev, true
	}
	return Evicted{}, false
}

// FillFn reads a line's bytes from memory at time now, returning data and
// latency (which may include interference from queued writes).
type FillFn func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle)

// WritebackFn delivers a dirty line evicted from the LLC to the memory
// controller at time now.
type WritebackFn func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte)

// Hierarchy is the full 3-level cache system for all cores.
type Hierarchy struct {
	cfg       HierarchyConfig
	l1, l2    []*Cache
	l3        *Cache
	fill      FillFn
	writeback WritebackFn
	tel       *telemetry.Recorder

	Writebacks int64 // dirty LLC evictions
}

// SetTelemetry attaches the probe-event recorder (nil disables probes).
func (h *Hierarchy) SetTelemetry(r *telemetry.Recorder) { h.tel = r }

// NewHierarchy builds per-core L1/L2 and a shared L3.
func NewHierarchy(cores int, cfg HierarchyConfig, fill FillFn, writeback WritebackFn) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l3: NewCache(cfg.L3), fill: fill, writeback: writeback}
	for i := 0; i < cores; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1))
		h.l2 = append(h.l2, NewCache(cfg.L2))
	}
	return h
}

// L1 returns core i's L1D (stats access).
func (h *Hierarchy) L1(i int) *Cache { return h.l1[i] }

// L2 returns core i's L2.
func (h *Hierarchy) L2(i int) *Cache { return h.l2[i] }

// L3 returns the shared LLC.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// access brings addr's line into core's L1 and returns a pointer to the
// resident line plus the access latency.
func (h *Hierarchy) access(core int, addr mem.Addr, now sim.Cycle) (*line, sim.Cycle) {
	l1, l2 := h.l1[core], h.l2[core]
	if l := l1.lookup(addr); l != nil {
		l1.Hits++
		l1.tick++
		l.lru = l1.tick
		return l, h.cfg.L1.Latency
	}
	l1.Misses++
	la := addr.Line()

	var data [mem.LineSize]byte
	var dirty bool
	lat := h.cfg.L1.Latency + h.cfg.L2.Latency
	if l := l2.lookup(la); l != nil {
		l2.Hits++
		data, dirty = *l.data, l.dirty
		l2.remove(la) // promote exclusively into L1
	} else {
		l2.Misses++
		lat += h.cfg.L3.Latency
		if l := h.l3.lookup(la); l != nil {
			h.l3.Hits++
			data, dirty = *l.data, l.dirty
			h.l3.remove(la)
		} else {
			h.l3.Misses++
			var fillLat sim.Cycle
			data, fillLat = h.fill(la, now)
			lat += fillLat
		}
	}
	ev, had := l1.insert(la, &data, dirty)
	if had {
		h.demote(1, core, ev, now)
	}
	return l1.lookup(la), lat
}

// demote pushes an evicted line down one level (L1→L2→L3→MC). Clean lines
// are demoted too (victim caching); dirty LLC victims leave the hierarchy
// through the writeback callback.
func (h *Hierarchy) demote(fromLevel int, core int, ev Evicted, now sim.Cycle) {
	switch fromLevel {
	case 1:
		ev2, had := h.l2[core].insert(ev.Addr, &ev.Data, ev.Dirty)
		if had {
			h.demote(2, core, ev2, now)
		}
	case 2:
		ev3, had := h.l3.insert(ev.Addr, &ev.Data, ev.Dirty)
		if had {
			h.demote(3, core, ev3, now)
		}
	case 3:
		if ev.Dirty {
			h.Writebacks++
			h.tel.LLCEvict(now, ev.Addr)
			h.writeback(now, ev.Addr, ev.Data)
		}
	}
}

// Load reads the word at addr through core's caches.
func (h *Hierarchy) Load(core int, addr mem.Addr, now sim.Cycle) (mem.Word, sim.Cycle) {
	l, lat := h.access(core, addr, now)
	return wordAt(l.data, addr), lat
}

// Store writes the word at addr through core's caches (write-allocate)
// and returns the word's previous value — the log generator's "old data",
// read during tag matching at no extra latency (§III-B).
func (h *Hierarchy) Store(core int, addr mem.Addr, v mem.Word, now sim.Cycle) (old mem.Word, lat sim.Cycle) {
	l, lat := h.access(core, addr, now)
	old = wordAt(l.data, addr)
	putWordAt(l.data, addr, v)
	l.dirty = true
	return old, lat
}

// PeekWord returns addr's word if cached anywhere for core, with no side
// effects (no LRU update, no timing).
func (h *Hierarchy) PeekWord(core int, addr mem.Addr) (mem.Word, bool) {
	for _, c := range []*Cache{h.l1[core], h.l2[core], h.l3} {
		if l := c.lookup(addr); l != nil {
			return wordAt(l.data, addr), true
		}
	}
	return 0, false
}

// CleanLine implements clwb semantics for one line: if the line is dirty
// in any level reachable by core, its current contents are returned and
// every cached copy is marked clean (the caller writes it to PM). The
// line stays cached.
func (h *Hierarchy) CleanLine(core int, la mem.Addr) ([mem.LineSize]byte, bool) {
	la = la.Line()
	var data [mem.LineSize]byte
	found, wasDirty := false, false
	for _, c := range []*Cache{h.l1[core], h.l2[core], h.l3} {
		if l := c.lookup(la); l != nil {
			if !found {
				data = *l.data
				found = true
			}
			if l.dirty {
				wasDirty = true
				l.dirty = false
			}
		}
	}
	return data, found && wasDirty
}

// DirtyLine reports whether la is dirty in any level for core, returning
// its contents if so (LAD's commit-time flush uses this).
func (h *Hierarchy) DirtyLine(core int, la mem.Addr) ([mem.LineSize]byte, bool) {
	la = la.Line()
	for _, c := range []*Cache{h.l1[core], h.l2[core], h.l3} {
		if l := c.lookup(la); l != nil && l.dirty {
			return *l.data, true
		}
	}
	return [mem.LineSize]byte{}, false
}

// ForceWriteBackAll writes every dirty line in the whole hierarchy back to
// the memory controller and marks it clean (FWB's periodic force
// write-back). It returns the number of lines written back.
func (h *Hierarchy) ForceWriteBackAll(now sim.Cycle) int {
	n := 0
	flush := func(c *Cache) {
		for i := range c.arr {
			l := &c.arr[i]
			if l.data != nil && l.dirty {
				h.Writebacks++
				h.writeback(now, l.addr, *l.data)
				l.dirty = false
				n++
			}
		}
	}
	for i := range h.l1 {
		flush(h.l1[i])
		flush(h.l2[i])
	}
	flush(h.l3)
	return n
}

// InvalidateAll drops every line — the volatile caches at a crash.
func (h *Hierarchy) InvalidateAll() {
	clear := func(c *Cache) {
		for i := range c.arr {
			c.arr[i] = line{}
		}
	}
	for i := range h.l1 {
		clear(h.l1[i])
		clear(h.l2[i])
	}
	clear(h.l3)
}

func wordAt(d *[mem.LineSize]byte, addr mem.Addr) mem.Word {
	o := addr.Word().LineOffset()
	var w mem.Word
	for i := 7; i >= 0; i-- {
		w = w<<8 | mem.Word(d[o+i])
	}
	return w
}

func putWordAt(d *[mem.LineSize]byte, addr mem.Addr, w mem.Word) {
	o := addr.Word().LineOffset()
	for i := 0; i < 8; i++ {
		d[o+i] = byte(w >> (8 * i))
	}
}
