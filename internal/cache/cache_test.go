package cache

import (
	"math/rand"
	"testing"

	"silo/internal/mem"
	"silo/internal/sim"
)

// testBackend is a word-addressable backing store standing in for PM.
type testBackend struct {
	words      map[mem.Addr]mem.Word
	fills      int
	writebacks []Evicted
}

func newBackend() *testBackend {
	return &testBackend{words: make(map[mem.Addr]mem.Word)}
}

func (b *testBackend) fill(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
	b.fills++
	var line [mem.LineSize]byte
	for w := 0; w < mem.WordsPerLine; w++ {
		v := b.words[la+mem.Addr(w*mem.WordSize)]
		for i := 0; i < 8; i++ {
			line[w*8+i] = byte(v >> (8 * i))
		}
	}
	return line, 100
}

func (b *testBackend) writeback(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	b.writebacks = append(b.writebacks, Evicted{Addr: la, Data: data, Dirty: true})
	for w := 0; w < mem.WordsPerLine; w++ {
		var v mem.Word
		for i := 7; i >= 0; i-- {
			v = v<<8 | mem.Word(data[w*8+i])
		}
		b.words[la+mem.Addr(w*mem.WordSize)] = v
	}
}

func smallConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{Name: "L1", Size: 1 << 10, Ways: 2, Latency: 4},   // 8 sets
		L2: Config{Name: "L2", Size: 4 << 10, Ways: 2, Latency: 12},  // 32 sets
		L3: Config{Name: "L3", Size: 16 << 10, Ways: 4, Latency: 28}, // 64 sets
	}
}

func newSmall(b *testBackend, cores int) *Hierarchy {
	return NewHierarchy(cores, smallConfig(), b.fill, b.writeback)
}

func TestLoadMissThenHit(t *testing.T) {
	b := newBackend()
	b.words[0x1000] = 42
	h := newSmall(b, 1)
	v, lat := h.Load(0, 0x1000, 0)
	if v != 42 {
		t.Errorf("load = %d, want 42", v)
	}
	wantMiss := sim.Cycle(4 + 12 + 28 + 100)
	if lat != wantMiss {
		t.Errorf("miss latency = %d, want %d", lat, wantMiss)
	}
	v, lat = h.Load(0, 0x1000, 10)
	if v != 42 || lat != 4 {
		t.Errorf("hit: v=%d lat=%d, want 42/4", v, lat)
	}
	if b.fills != 1 {
		t.Errorf("fills = %d, want 1", b.fills)
	}
}

func TestStoreReturnsOldValue(t *testing.T) {
	b := newBackend()
	b.words[0x2000] = 7
	h := newSmall(b, 1)
	old, _ := h.Store(0, 0x2000, 8, 0)
	if old != 7 {
		t.Errorf("old = %d, want 7", old)
	}
	old, _ = h.Store(0, 0x2000, 9, 1)
	if old != 8 {
		t.Errorf("old after store = %d, want 8", old)
	}
	if v, _ := h.Load(0, 0x2000, 2); v != 9 {
		t.Errorf("load after stores = %d, want 9", v)
	}
}

func TestWordsWithinLineIndependent(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	for w := 0; w < mem.WordsPerLine; w++ {
		h.Store(0, mem.Addr(w*8), mem.Word(w+1), 0)
	}
	for w := 0; w < mem.WordsPerLine; w++ {
		if v, _ := h.Load(0, mem.Addr(w*8), 1); v != mem.Word(w+1) {
			t.Errorf("word %d = %d, want %d", w, v, w+1)
		}
	}
}

func TestDirtyEvictionReachesWriteback(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	h.Store(0, 0, 99, 0)
	// Touch enough distinct lines mapping everywhere to force line 0 out
	// of every level (total capacity 21 KB; touch 64 KB).
	for i := 1; i < 1024; i++ {
		h.Load(0, mem.Addr(i*mem.LineSize), sim.Cycle(i))
	}
	if b.words[0] != 99 {
		t.Fatalf("dirty line never written back: %d writebacks", len(b.writebacks))
	}
	// The line was dropped; a reload must see the written-back value.
	if v, _ := h.Load(0, 0, 99999); v != 99 {
		t.Errorf("reload after eviction = %d, want 99", v)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	for i := 0; i < 1024; i++ {
		h.Load(0, mem.Addr(i*mem.LineSize), sim.Cycle(i))
	}
	if len(b.writebacks) != 0 {
		t.Errorf("clean evictions produced %d writebacks", len(b.writebacks))
	}
}

func TestCleanLine(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	h.Store(0, 0x3000, 5, 0)
	data, dirty := h.CleanLine(0, 0x3000)
	if !dirty {
		t.Fatal("line should have been dirty")
	}
	if data[0] != 5 {
		t.Errorf("CleanLine data[0] = %d, want 5", data[0])
	}
	// Second clean: still cached but no longer dirty.
	if _, dirty := h.CleanLine(0, 0x3000); dirty {
		t.Error("line dirty after CleanLine")
	}
	// Still readable at L1 hit latency.
	if v, lat := h.Load(0, 0x3000, 1); v != 5 || lat != 4 {
		t.Errorf("after clean: v=%d lat=%d", v, lat)
	}
}

func TestDirtyLine(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	if _, dirty := h.DirtyLine(0, 0x4000); dirty {
		t.Error("uncached line reported dirty")
	}
	h.Load(0, 0x4000, 0)
	if _, dirty := h.DirtyLine(0, 0x4000); dirty {
		t.Error("clean line reported dirty")
	}
	h.Store(0, 0x4000, 1, 1)
	if data, dirty := h.DirtyLine(0, 0x4000); !dirty || data[0] != 1 {
		t.Error("dirty line not found")
	}
}

func TestPeekWordNoSideEffects(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	if _, ok := h.PeekWord(0, 0x5000); ok {
		t.Error("peek found uncached word")
	}
	h.Store(0, 0x5000, 77, 0)
	v, ok := h.PeekWord(0, 0x5000)
	if !ok || v != 77 {
		t.Errorf("peek = %d/%v, want 77/true", v, ok)
	}
	if b.fills != 1 {
		t.Errorf("peek caused fills: %d", b.fills)
	}
}

func TestForceWriteBackAll(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 2)
	h.Store(0, 0x100, 1, 0)
	h.Store(1, 0x10000, 2, 0)
	n := h.ForceWriteBackAll(10)
	if n != 2 {
		t.Errorf("force wrote back %d lines, want 2", n)
	}
	if b.words[0x100] != 1 || b.words[0x10000] != 2 {
		t.Error("force write-back lost data")
	}
	// Everything clean now; a second pass writes nothing.
	if n := h.ForceWriteBackAll(20); n != 0 {
		t.Errorf("second force wrote back %d lines", n)
	}
}

func TestInvalidateAll(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	h.Store(0, 0x600, 9, 0)
	h.InvalidateAll()
	if _, ok := h.PeekWord(0, 0x600); ok {
		t.Error("word survived InvalidateAll")
	}
	// Dirty data was volatile: the reload sees the backing store's value.
	if v, _ := h.Load(0, 0x600, 1); v != 0 {
		t.Errorf("lost write visible after invalidate: %d", v)
	}
	if len(b.writebacks) != 0 {
		t.Error("InvalidateAll must not write back (crash semantics)")
	}
}

func TestPerCorePrivacy(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 2)
	h.Store(0, 0x700, 3, 0)
	// Core 1's L1/L2 don't have it; it must fill from the backing store
	// (the simulator runs share-nothing workloads, so no coherence).
	if _, ok := h.PeekWord(1, 0x700); ok {
		t.Skip("line visible via shared L3 — acceptable")
	}
}

func TestHitCounters(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	h.Load(0, 0, 0)
	h.Load(0, 0, 1)
	h.Load(0, 8, 2) // same line
	if h.L1(0).Misses != 1 || h.L1(0).Hits != 2 {
		t.Errorf("L1 hits/misses = %d/%d, want 2/1", h.L1(0).Hits, h.L1(0).Misses)
	}
	if h.L3().Misses != 1 {
		t.Errorf("L3 misses = %d, want 1", h.L3().Misses)
	}
}

func TestL2VictimCaching(t *testing.T) {
	b := newBackend()
	h := newSmall(b, 1)
	// Fill one L1 set (2 ways, 8 sets, so stride 8 lines = 512B).
	h.Load(0, 0, 0)
	h.Load(0, 512, 1)
	h.Load(0, 1024, 2) // evicts line 0 from L1 into L2
	fills := b.fills
	_, lat := h.Load(0, 0, 3) // must hit L2, not refill
	if b.fills != fills {
		if lat == 0 {
			t.Error("impossible")
		}
		t.Errorf("L2 victim miss: refilled from memory")
	}
	if lat != 4+12 {
		t.Errorf("L2 hit latency = %d, want 16", lat)
	}
}

// Property-style test: random loads and stores against a shadow map; the
// hierarchy must always return the latest value, and after a full force
// write-back the backing store must agree with the shadow.
func TestHierarchyMatchesShadowModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := newBackend()
	h := newSmall(b, 2)
	shadow := [2]map[mem.Addr]mem.Word{
		make(map[mem.Addr]mem.Word), make(map[mem.Addr]mem.Word),
	}
	var now sim.Cycle
	for i := 0; i < 20000; i++ {
		core := rng.Intn(2)
		// Per-core disjoint address spaces (share-nothing).
		addr := mem.Addr(core*1<<20 + rng.Intn(4096)*8)
		now++
		if rng.Intn(2) == 0 {
			v := mem.Word(rng.Int63())
			old, _ := h.Store(core, addr, v, now)
			if want, ok := shadow[core][addr]; ok && old != want {
				t.Fatalf("op %d: store old = %#x, shadow %#x", i, uint64(old), uint64(want))
			}
			shadow[core][addr] = v
		} else {
			v, _ := h.Load(core, addr, now)
			if want := shadow[core][addr]; v != want {
				t.Fatalf("op %d: load = %#x, shadow %#x", i, uint64(v), uint64(want))
			}
		}
	}
	h.ForceWriteBackAll(now)
	for core := range shadow {
		for a, want := range shadow[core] {
			if b.words[a] != want {
				t.Fatalf("backing store %v = %#x, shadow %#x", a, uint64(b.words[a]), uint64(want))
			}
		}
	}
}

func TestNewCacheClampsTinyGeometry(t *testing.T) {
	c := NewCache(Config{Name: "tiny", Size: 32, Ways: 4, Latency: 1})
	if c.sets < 1 {
		t.Error("sets not clamped")
	}
	// Still usable as a 1-set cache inside a hierarchy.
	b := newBackend()
	h := NewHierarchy(1, HierarchyConfig{
		L1: Config{Name: "L1", Size: 64, Ways: 1, Latency: 1},
		L2: Config{Name: "L2", Size: 128, Ways: 1, Latency: 2},
		L3: Config{Name: "L3", Size: 256, Ways: 1, Latency: 3},
	}, b.fill, b.writeback)
	h.Store(0, 0, 1, 0)
	h.Store(0, 64, 2, 1) // evicts through the 1-line levels
	h.Store(0, 128, 3, 2)
	h.Store(0, 192, 4, 3)
	if v, _ := h.Load(0, 0, 4); v != 1 {
		t.Errorf("value lost in tiny hierarchy: %d", v)
	}
}
