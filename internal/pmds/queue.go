package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// Queue is the Queue micro-benchmark structure: a persistent ring buffer
// of 64 B elements with head/tail index words. Transactions enqueue and
// dequeue random elements (Table III). Ring slots are reused, giving the
// low spatial locality the paper calls out when comparing Silo and LAD on
// Queue (§VI-C).
type Queue struct {
	meta mem.Addr // word0 = head, word1 = tail (indices, monotonically increasing)
	ring mem.Addr
	cap  int
}

// NewQueue allocates a ring of capacity 64 B slots.
func NewQueue(acc Accessor, heap *pmheap.Heap, arena, capacity int) *Queue {
	q := &Queue{
		meta: heap.AllocLines(arena, 1),
		ring: heap.AllocLines(arena, capacity),
		cap:  capacity,
	}
	acc.Store(word(q.meta, 0), 0)
	acc.Store(word(q.meta, 1), 0)
	return q
}

func (q *Queue) slot(i mem.Word, w int) mem.Addr {
	return word(q.ring+mem.Addr(int(uint64(i)%uint64(q.cap))*mem.LineSize), w)
}

// Len returns the number of queued elements.
func (q *Queue) Len(acc Accessor) int {
	h := acc.Load(word(q.meta, 0))
	t := acc.Load(word(q.meta, 1))
	return int(t - h)
}

// Enqueue appends a 64 B element whose first word is v; it reports false
// when the ring is full.
func (q *Queue) Enqueue(acc Accessor, v mem.Word) bool {
	h := acc.Load(word(q.meta, 0))
	t := acc.Load(word(q.meta, 1))
	if int(t-h) >= q.cap {
		return false
	}
	acc.Store(q.slot(t, 0), v)
	acc.Store(q.slot(t, 1), v^0xA5A5)
	acc.Store(word(q.meta, 1), t+1)
	return true
}

// Dequeue removes the oldest element, reporting its payload word.
func (q *Queue) Dequeue(acc Accessor) (mem.Word, bool) {
	h := acc.Load(word(q.meta, 0))
	t := acc.Load(word(q.meta, 1))
	if h == t {
		return 0, false
	}
	v := acc.Load(q.slot(h, 0))
	acc.Store(q.slot(h, 0), 0) // clear the slot (tombstone write)
	acc.Store(word(q.meta, 0), h+1)
	return v, true
}
