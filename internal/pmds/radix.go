package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// RadixTree is the Rtree workload from PMDK (Fig. 4): a fixed-stride
// radix tree over fixed-width keys, 4 bits per level. Each node is 16
// child pointers (two cachelines); the final level's slots hold values
// tagged with the presence bit.
type RadixTree struct {
	rootPtr mem.Addr
	heap    *pmheap.Heap
	arena   int
	levels  int // number of 4-bit digits in a key
}

const radixFanout = 16

// radixPresent tags an occupied value slot at the last level.
const radixPresent mem.Word = 1 << 63

// NewRadixTree allocates an empty tree over keys of keyBits bits
// (rounded up to a multiple of 4).
func NewRadixTree(acc Accessor, heap *pmheap.Heap, arena, keyBits int) *RadixTree {
	levels := (keyBits + 3) / 4
	if levels < 1 {
		levels = 1
	}
	t := &RadixTree{
		rootPtr: heap.Alloc(arena, mem.WordSize, mem.WordSize),
		heap:    heap,
		arena:   arena,
		levels:  levels,
	}
	acc.Store(t.rootPtr, mem.Word(t.newNode(acc)))
	return t
}

func (t *RadixTree) newNode(acc Accessor) mem.Addr {
	n := t.heap.Alloc(t.arena, radixFanout*mem.WordSize, mem.LineSize)
	for i := 0; i < radixFanout; i++ {
		acc.Store(word(n, i), 0)
	}
	return n
}

func (t *RadixTree) digit(key mem.Word, level int) int {
	shift := uint(4 * (t.levels - 1 - level))
	return int(key>>shift) & 0xF
}

// Insert maps key → val, creating interior nodes as needed.
func (t *RadixTree) Insert(acc Accessor, key, val mem.Word) {
	n := mem.Addr(acc.Load(t.rootPtr))
	for level := 0; level < t.levels-1; level++ {
		slot := word(n, t.digit(key, level))
		c := mem.Addr(acc.Load(slot))
		if c == 0 {
			c = t.newNode(acc)
			acc.Store(slot, mem.Word(c))
		}
		n = c
	}
	acc.Store(word(n, t.digit(key, t.levels-1)), val|radixPresent)
}

// Get returns the value for key.
func (t *RadixTree) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	n := mem.Addr(acc.Load(t.rootPtr))
	for level := 0; level < t.levels-1; level++ {
		c := mem.Addr(acc.Load(word(n, t.digit(key, level))))
		if c == 0 {
			return 0, false
		}
		n = c
	}
	v := acc.Load(word(n, t.digit(key, t.levels-1)))
	if v&radixPresent == 0 {
		return 0, false
	}
	return v &^ radixPresent, true
}
