package pmds

import (
	"math/rand"
	"sort"
	"testing"

	"silo/internal/mem"
)

func TestBPTreeInsertGetUpdate(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	if _, ok := bt.Get(acc, 5); ok {
		t.Error("empty tree found a key")
	}
	for i := 1; i <= 50; i++ {
		bt.Insert(acc, mem.Word(i*7), mem.Word(i))
	}
	for i := 1; i <= 50; i++ {
		v, ok := bt.Get(acc, mem.Word(i*7))
		if !ok || v != mem.Word(i) {
			t.Fatalf("key %d: %d/%v", i*7, v, ok)
		}
	}
	bt.Insert(acc, 7, 999)
	if v, _ := bt.Get(acc, 7); v != 999 {
		t.Error("update failed")
	}
	if _, ok := bt.Get(acc, 8); ok {
		t.Error("phantom key")
	}
}

func TestBPTreeSplitsDeepTree(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	// Sequential inserts force repeated leaf and internal splits.
	const n = 5000
	for i := 1; i <= n; i++ {
		bt.Insert(acc, mem.Word(i), mem.Word(i*2))
	}
	for _, k := range []mem.Word{1, 2, n / 2, n - 1, n} {
		v, ok := bt.Get(acc, k)
		if !ok || v != k*2 {
			t.Fatalf("key %d after deep splits: %d/%v", k, v, ok)
		}
	}
	// The root must no longer be a leaf.
	root := mem.Addr(acc.Load(bt.rootPtr))
	if bt.isLeaf(acc, root) {
		t.Error("tree never grew past one leaf")
	}
}

func TestBPTreeScanSortedChain(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	rng := rand.New(rand.NewSource(12))
	model := map[mem.Word]mem.Word{}
	for i := 0; i < 3000; i++ {
		k := mem.Word(rng.Intn(10000)) + 1
		bt.Insert(acc, k, k+1)
		model[k] = k + 1
	}
	var got []mem.Word
	bt.Scan(acc, 0, 1<<30, func(k, v mem.Word) {
		if v != model[k] {
			t.Fatalf("scan value for %d: %d want %d", k, v, model[k])
		}
		got = append(got, k)
	})
	if len(got) != len(model) {
		t.Fatalf("scan visited %d keys, model %d", len(got), len(model))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("leaf chain not sorted")
	}
}

func TestBPTreeScanRange(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	for i := 1; i <= 100; i++ {
		bt.Insert(acc, mem.Word(i*10), mem.Word(i))
	}
	var got []mem.Word
	n := bt.Scan(acc, 305, 5, func(k, v mem.Word) { got = append(got, k) })
	want := []mem.Word{310, 320, 330, 340, 350}
	if n != 5 || len(got) != 5 {
		t.Fatalf("scan returned %d keys", n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBPTreeDeleteLazy(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	for i := 1; i <= 200; i++ {
		bt.Insert(acc, mem.Word(i), mem.Word(i))
	}
	for i := 1; i <= 200; i += 2 {
		if !bt.Delete(acc, mem.Word(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Delete(acc, 1) {
		t.Error("double delete succeeded")
	}
	for i := 1; i <= 200; i++ {
		_, ok := bt.Get(acc, mem.Word(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
}

func TestBPTreeChurnAgainstModel(t *testing.T) {
	acc := newAcc()
	bt := NewBPTree(acc, newHeap(), 0)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		k := mem.Word(rng.Intn(2000)) + 1
		switch rng.Intn(4) {
		case 0, 1:
			v := mem.Word(i)
			bt.Insert(acc, k, v)
			model[k] = v
		case 2:
			got := bt.Delete(acc, k)
			_, want := model[k]
			if got != want {
				t.Fatalf("op %d: delete(%d) = %v, model %v", i, k, got, want)
			}
			delete(model, k)
		case 3:
			v, ok := bt.Get(acc, k)
			want, wok := model[k]
			if ok != wok || (ok && v != want) {
				t.Fatalf("op %d: get(%d) = %d/%v, model %d/%v", i, k, v, ok, want, wok)
			}
		}
	}
	// Final scan agrees with the model and is sorted.
	count := 0
	last := mem.Word(0)
	bt.Scan(acc, 0, 1<<30, func(k, v mem.Word) {
		if k <= last {
			t.Fatal("scan order violated")
		}
		last = k
		if model[k] != v {
			t.Fatalf("final scan: key %d = %d want %d", k, v, model[k])
		}
		count++
	})
	if count != len(model) {
		t.Fatalf("final scan saw %d keys, model %d", count, len(model))
	}
}
