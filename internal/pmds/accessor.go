// Package pmds implements the persistent data structures behind the
// paper's benchmarks (Table III and Fig. 4): array, B-tree, hash table,
// queue, red-black tree, radix tree (PMDK Rtree) and crit-bit trie (PMDK
// Ctrie). Every structure keeps all of its state in simulated persistent
// memory and issues each word access through an Accessor, so the same
// operation code runs both during untimed setup (direct device access)
// and inside simulated transactions (through a core's sim context).
package pmds

import "silo/internal/mem"

// Accessor is the word-granularity memory interface the data structures
// use. *sim.Ctx satisfies it (timed, through the caches) and so does the
// direct device accessor used for setup.
type Accessor interface {
	Load(addr mem.Addr) mem.Word
	Store(addr mem.Addr, v mem.Word)
}

// word returns the address of field i (0-based word index) of the record
// at base.
func word(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*mem.WordSize)
}
