package pmds

import (
	"math/rand"
	"sort"
	"testing"

	"silo/internal/mem"
	"silo/internal/pmheap"
)

// mapAccessor is a plain in-memory accessor for structure tests.
type mapAccessor struct {
	words  map[mem.Addr]mem.Word
	loads  int
	stores int
}

func newAcc() *mapAccessor { return &mapAccessor{words: make(map[mem.Addr]mem.Word)} }

func (a *mapAccessor) Load(addr mem.Addr) mem.Word {
	a.loads++
	return a.words[addr]
}

func (a *mapAccessor) Store(addr mem.Addr, v mem.Word) {
	a.stores++
	a.words[addr] = v
}

func newHeap() *pmheap.Heap { return pmheap.New(mem.DefaultLayout(), 2) }

// --- Array ---

func TestArraySwap(t *testing.T) {
	acc := newAcc()
	a := NewArray(acc, newHeap(), 0, 16)
	if a.Len() != 16 {
		t.Fatal("len")
	}
	if a.Get(acc, 3) != 4 || a.Get(acc, 7) != 8 {
		t.Fatal("init payloads wrong")
	}
	a.Swap(acc, 3, 7)
	if a.Get(acc, 3) != 8 || a.Get(acc, 7) != 4 {
		t.Error("swap failed")
	}
	a.Swap(acc, 3, 7)
	if a.Get(acc, 3) != 4 || a.Get(acc, 7) != 8 {
		t.Error("swap not involutive")
	}
}

func TestArraySwapSelf(t *testing.T) {
	acc := newAcc()
	a := NewArray(acc, newHeap(), 0, 4)
	a.Swap(acc, 2, 2)
	if a.Get(acc, 2) != 3 {
		t.Error("self-swap corrupted element")
	}
}

func TestArraySparsePayload(t *testing.T) {
	// Most words of an element are zero, so a swap's stores mostly write
	// unchanged values — the basis of the Fig. 13 Array ignorance rate.
	acc := newAcc()
	a := NewArray(acc, newHeap(), 0, 8)
	acc.stores = 0
	a.Swap(acc, 0, 1)
	if acc.stores != 2*ElemWords {
		t.Fatalf("swap stores = %d, want %d", acc.stores, 2*ElemWords)
	}
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	acc := newAcc()
	q := NewQueue(acc, newHeap(), 0, 8)
	for i := 1; i <= 5; i++ {
		if !q.Enqueue(acc, mem.Word(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Len(acc) != 5 {
		t.Fatalf("len = %d", q.Len(acc))
	}
	for i := 1; i <= 5; i++ {
		v, ok := q.Dequeue(acc)
		if !ok || v != mem.Word(i) {
			t.Fatalf("dequeue %d: got %d/%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(acc); ok {
		t.Error("dequeue from empty queue succeeded")
	}
}

func TestQueueFullAndWraparound(t *testing.T) {
	acc := newAcc()
	q := NewQueue(acc, newHeap(), 0, 4)
	for i := 0; i < 4; i++ {
		q.Enqueue(acc, mem.Word(i))
	}
	if q.Enqueue(acc, 99) {
		t.Error("enqueue into full queue succeeded")
	}
	// Drain two, add two: ring indices wrap.
	q.Dequeue(acc)
	q.Dequeue(acc)
	q.Enqueue(acc, 100)
	q.Enqueue(acc, 101)
	want := []mem.Word{2, 3, 100, 101}
	for _, w := range want {
		if v, _ := q.Dequeue(acc); v != w {
			t.Fatalf("wraparound order: got %d want %d", v, w)
		}
	}
}

func TestQueueRandomAgainstModel(t *testing.T) {
	acc := newAcc()
	q := NewQueue(acc, newHeap(), 0, 32)
	var model []mem.Word
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 {
			v := mem.Word(rng.Int63())
			if q.Enqueue(acc, v) {
				model = append(model, v)
			} else if len(model) < 32 {
				t.Fatal("enqueue failed while model not full")
			}
		} else {
			v, ok := q.Dequeue(acc)
			if ok != (len(model) > 0) {
				t.Fatal("dequeue availability mismatch")
			}
			if ok {
				if v != model[0] {
					t.Fatalf("dequeue = %d, model %d", v, model[0])
				}
				model = model[1:]
			}
		}
	}
}

// --- HashTable ---

func TestHashPutGetUpdate(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 64)
	if !h.Put(acc, 42, 100) {
		t.Fatal("put failed")
	}
	v, ok := h.Get(acc, 42)
	if !ok || v != 101 { // payload word 1 = val+1
		t.Fatalf("get = %d/%v", v, ok)
	}
	if !h.UpdateValue(acc, 42, 200) {
		t.Fatal("update failed")
	}
	if v, _ := h.Get(acc, 42); v != 201 {
		t.Errorf("after update: %d", v)
	}
	if _, ok := h.Get(acc, 999); ok {
		t.Error("found missing key")
	}
	if h.UpdateValue(acc, 999, 1) {
		t.Error("updated missing key")
	}
}

func TestHashCollisionsProbe(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 16)
	keys := []mem.Word{}
	for i := 1; i <= 12; i++ { // 75% load: collisions guaranteed
		k := mem.Word(i * 977)
		if !h.Put(acc, k, mem.Word(i)) {
			t.Fatalf("put %d failed", i)
		}
		keys = append(keys, k)
	}
	for i, k := range keys {
		if v, ok := h.Get(acc, k); !ok || v != mem.Word(i+1)+1 {
			t.Fatalf("key %d: %d/%v", k, v, ok)
		}
	}
}

func TestHashFull(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 4)
	for i := 1; i <= 4; i++ {
		h.Put(acc, mem.Word(i), 0)
	}
	if h.Put(acc, 1000, 0) {
		t.Error("put into full table succeeded")
	}
}

func TestHashRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two bucket count accepted")
		}
	}()
	NewHashTable(newHeap(), 0, 100)
}

func TestHashZeroKeyPanics(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 4)
	defer func() {
		if recover() == nil {
			t.Error("key 0 accepted")
		}
	}()
	h.Put(acc, 0, 1)
}

// --- BTree ---

func TestBTreeInsertContains(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	keys := []mem.Word{50, 30, 70, 10, 40, 60, 80, 20, 90, 35, 45, 55}
	for _, k := range keys {
		bt.Insert(acc, k)
	}
	for _, k := range keys {
		if !bt.Contains(acc, k) {
			t.Errorf("key %d missing", k)
		}
	}
	for _, k := range []mem.Word{1, 33, 100} {
		if bt.Contains(acc, k) {
			t.Errorf("phantom key %d", k)
		}
	}
}

func TestBTreeDuplicates(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	for i := 0; i < 10; i++ {
		bt.Insert(acc, 5)
	}
	n := 0
	bt.Walk(acc, func(mem.Word) { n++ })
	if n != 1 {
		t.Errorf("duplicate inserts produced %d keys", n)
	}
}

func TestBTreeSortedWalkRandom(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	rng := rand.New(rand.NewSource(3))
	seen := map[mem.Word]bool{}
	for i := 0; i < 3000; i++ {
		k := mem.Word(rng.Intn(10000)) + 1
		bt.Insert(acc, k)
		seen[k] = true
	}
	var got []mem.Word
	bt.Walk(acc, func(k mem.Word) { got = append(got, k) })
	if len(got) != len(seen) {
		t.Fatalf("walk found %d keys, inserted %d distinct", len(got), len(seen))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("walk not sorted")
	}
	for _, k := range got {
		if !seen[k] {
			t.Fatalf("walk invented key %d", k)
		}
	}
}

func TestBTreeBalancedDepth(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	for i := 1; i <= 4096; i++ { // sequential worst case for naive BSTs
		bt.Insert(acc, mem.Word(i))
	}
	d := bt.Depth(acc)
	// A 2-3-4 tree with n keys has depth <= log2(n+1).
	if d > 12 {
		t.Errorf("depth %d too large for 4096 keys", d)
	}
	if !bt.Contains(acc, 1) || !bt.Contains(acc, 4096) {
		t.Error("lost boundary keys")
	}
}

// --- RBTree ---

func TestRBTreeInsertGet(t *testing.T) {
	acc := newAcc()
	rb := NewRBTree(acc, newHeap(), 0)
	keys := []mem.Word{10, 5, 15, 3, 8, 12, 20, 1, 4}
	for _, k := range keys {
		rb.Insert(acc, k, k*2)
	}
	for _, k := range keys {
		v, ok := rb.Get(acc, k)
		if !ok || v != k*2 {
			t.Errorf("key %d: %d/%v", k, v, ok)
		}
	}
	if _, ok := rb.Get(acc, 999); ok {
		t.Error("phantom key")
	}
	rb.Insert(acc, 10, 77) // update
	if v, _ := rb.Get(acc, 10); v != 77 {
		t.Error("update failed")
	}
}

func TestRBTreeInvariantsRandom(t *testing.T) {
	acc := newAcc()
	rb := NewRBTree(acc, newHeap(), 0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		k := mem.Word(rng.Intn(5000)) + 1
		rb.Insert(acc, k, k)
		if i%97 == 0 {
			if _, err := rb.CheckInvariants(acc); err != "" {
				t.Fatalf("after %d inserts: %s", i+1, err)
			}
		}
	}
	bh, err := rb.CheckInvariants(acc)
	if err != "" {
		t.Fatal(err)
	}
	if bh < 5 {
		t.Errorf("black height %d suspiciously small for ~2000 keys", bh)
	}
}

func TestRBTreeInvariantsSequential(t *testing.T) {
	acc := newAcc()
	rb := NewRBTree(acc, newHeap(), 0)
	for i := 1; i <= 1000; i++ {
		rb.Insert(acc, mem.Word(i), mem.Word(i))
	}
	if _, err := rb.CheckInvariants(acc); err != "" {
		t.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		if _, ok := rb.Get(acc, mem.Word(i)); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
}

// --- RadixTree ---

func TestRadixInsertGet(t *testing.T) {
	acc := newAcc()
	rt := NewRadixTree(acc, newHeap(), 0, 20)
	rt.Insert(acc, 0xABCDE, 7)
	v, ok := rt.Get(acc, 0xABCDE)
	if !ok || v != 7 {
		t.Fatalf("get = %d/%v", v, ok)
	}
	if _, ok := rt.Get(acc, 0xABCDF); ok {
		t.Error("phantom key")
	}
	rt.Insert(acc, 0xABCDE, 9)
	if v, _ := rt.Get(acc, 0xABCDE); v != 9 {
		t.Error("update failed")
	}
	// Key 0 and max key both work.
	rt.Insert(acc, 0, 1)
	rt.Insert(acc, (1<<20)-1, 2)
	if v, ok := rt.Get(acc, 0); !ok || v != 1 {
		t.Error("key 0 broken")
	}
	if v, ok := rt.Get(acc, (1<<20)-1); !ok || v != 2 {
		t.Error("max key broken")
	}
}

func TestRadixRandomAgainstModel(t *testing.T) {
	acc := newAcc()
	rt := NewRadixTree(acc, newHeap(), 0, 16)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := mem.Word(rng.Intn(1 << 16))
		v := mem.Word(rng.Int63n(1 << 40))
		rt.Insert(acc, k, v)
		model[k] = v
	}
	for k, want := range model {
		got, ok := rt.Get(acc, k)
		if !ok || got != want {
			t.Fatalf("key %#x: %d/%v, want %d", uint64(k), got, ok, want)
		}
	}
}

// --- CritBitTrie ---

func TestCritBitInsertGet(t *testing.T) {
	acc := newAcc()
	cb := NewCritBitTrie(acc, newHeap(), 0)
	if _, ok := cb.Get(acc, 5); ok {
		t.Error("empty trie found a key")
	}
	keys := []mem.Word{5, 1, 9, 8, 1 << 60, 7, 6}
	for i, k := range keys {
		cb.Insert(acc, k, mem.Word(i))
	}
	for i, k := range keys {
		v, ok := cb.Get(acc, k)
		if !ok || v != mem.Word(i) {
			t.Fatalf("key %d: %d/%v", k, v, ok)
		}
	}
	if _, ok := cb.Get(acc, 1234567); ok {
		t.Error("phantom key")
	}
	cb.Insert(acc, 5, 99)
	if v, _ := cb.Get(acc, 5); v != 99 {
		t.Error("update failed")
	}
}

func TestCritBitRandomAgainstModel(t *testing.T) {
	acc := newAcc()
	cb := NewCritBitTrie(acc, newHeap(), 0)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		k := mem.Word(rng.Int63n(1 << 48))
		v := mem.Word(i)
		cb.Insert(acc, k, v)
		model[k] = v
	}
	for k, want := range model {
		got, ok := cb.Get(acc, k)
		if !ok || got != want {
			t.Fatalf("key %#x: got %d/%v want %d", uint64(k), got, ok, want)
		}
	}
	// Missing keys stay missing.
	for i := 0; i < 500; i++ {
		k := mem.Word(rng.Int63n(1<<48)) | 1<<50
		if _, ok := cb.Get(acc, k); ok {
			t.Fatalf("phantom high key %#x", uint64(k))
		}
	}
}
