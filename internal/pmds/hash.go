package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// HashTable is the Hash micro-benchmark structure (and the YCSB store): an
// open-addressing hash table of 64 B buckets. Bucket layout: word0 = key
// (0 = empty), words1..7 = value payload. Random keys give the scattered
// write pattern that makes Hash the largest post-reduction write set in
// Fig. 13.
type HashTable struct {
	base mem.Addr
	mask uint64 // buckets-1; buckets is a power of two
}

// HashValueWords is the number of payload words per bucket.
const HashValueWords = mem.WordsPerLine - 1

// NewHashTable allocates a table with the given power-of-two bucket count.
func NewHashTable(heap *pmheap.Heap, arena, buckets int) *HashTable {
	if buckets&(buckets-1) != 0 || buckets == 0 {
		panic("pmds: bucket count must be a power of two")
	}
	return &HashTable{base: heap.AllocLines(arena, buckets), mask: uint64(buckets - 1)}
}

func (h *HashTable) bucket(i uint64, w int) mem.Addr {
	return word(h.base+mem.Addr((i&h.mask)*mem.LineSize), w)
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Put inserts or updates key with a value derived from val, writing the
// full bucket payload. Tombstones left by Delete are reused. It reports
// false when the probe sequence finds no slot within the table (full).
func (h *HashTable) Put(acc Accessor, key mem.Word, val mem.Word) bool {
	if key == 0 || key == hashTombstone {
		panic("pmds: key is reserved")
	}
	i := mix64(uint64(key))
	target := uint64(0)
	haveTarget := false
	for probe := uint64(0); probe <= h.mask; probe++ {
		k := acc.Load(h.bucket(i+probe, 0))
		if k == key {
			target, haveTarget = i+probe, true
			break
		}
		if k == hashTombstone {
			if !haveTarget {
				target, haveTarget = i+probe, true
			}
			continue // the key may still live past this tombstone
		}
		if k == 0 {
			if !haveTarget {
				target, haveTarget = i+probe, true
			}
			break
		}
	}
	if !haveTarget {
		return false
	}
	if acc.Load(h.bucket(target, 0)) != key {
		acc.Store(h.bucket(target, 0), key)
	}
	for w := 1; w < mem.WordsPerLine; w++ {
		acc.Store(h.bucket(target, w), val+mem.Word(w))
	}
	return true
}

// UpdateValue overwrites only the payload of an existing key (the YCSB
// update path); it reports whether the key was found.
func (h *HashTable) UpdateValue(acc Accessor, key mem.Word, val mem.Word) bool {
	i := mix64(uint64(key))
	for probe := uint64(0); probe <= h.mask; probe++ {
		k := acc.Load(h.bucket(i+probe, 0))
		if k == 0 {
			return false
		}
		if k != key {
			continue
		}
		for w := 1; w < mem.WordsPerLine; w++ {
			acc.Store(h.bucket(i+probe, w), val+mem.Word(w))
		}
		return true
	}
	return false
}

// Get returns the first payload word for key.
func (h *HashTable) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	i := mix64(uint64(key))
	for probe := uint64(0); probe <= h.mask; probe++ {
		k := acc.Load(h.bucket(i+probe, 0))
		if k == 0 {
			return 0, false
		}
		if k == key {
			return acc.Load(h.bucket(i+probe, 1)), true
		}
	}
	return 0, false
}
