package pmds

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/sim"
)

// This file unrolls the BTree insert transaction loop into an explicit
// state machine implementing sim.OpStream, so the hottest first-party
// workload runs on the engine with no coroutine at all: each Next is a
// handful of branches, each Deliver a field store. The machine mirrors
// Insert/splitChild/insertNonFull operation for operation — every Load
// and Store below corresponds to one Accessor call in btree.go, in the
// same order, so the op sequence (and therefore every simulated result)
// is bit-identical to running BTree.Insert through a transport. Keep the
// two in sync when changing either.

// btreeInsertStream states. Each state either emits exactly one op (its
// successor state consumes the delivered value) or computes and falls
// through. st* names follow the control flow of btree.go: stRs* is the
// root split in Insert, stSc* is splitChild, the rest is insertNonFull.
const (
	btTx = iota
	btOp
	btRoot
	btRootMeta
	btRs1
	btRs2
	btRs3
	btRs4
	btInfMeta
	btScan
	btScanCmp
	btEq
	btLeafOrDesc
	btLeafShift
	btLeafShiftStore
	btLeafKey
	btLeafMeta
	btInsertDone
	btChild
	btChildMeta
	btPostSplit
	btPostEq
	btPostGt
	btDescend
	btSc0
	btSc1
	btSc2
	btSc3
	btSc4
	btSc5
	btSc6
	btSc7
	btSc8
	btSc9
	btSc10
	btSc11
	btSc12
	btSc13
	btSc14
	btSc15
	btSc16
	btSc17
	btSc18
	btSc19
	btSc20
)

type btreeInsertStream struct {
	t        *BTree
	rng      *rand.Rand
	keyRange int
	opsPerTx int
	txLeft   int

	pc   int
	val  mem.Word // last delivered load value
	done bool

	// Registers mirroring the locals of Insert/insertNonFull.
	key  mem.Word
	opJ  int
	root mem.Addr
	n    mem.Addr
	c    mem.Addr
	meta mem.Word
	cnt  int
	i    int

	// Registers mirroring the locals of splitChild (plus sp, Insert's
	// new root). sci is splitChild's i parameter; ret is the state to
	// resume when splitChild returns.
	sp     mem.Addr
	x      mem.Addr
	y, z   mem.Addr
	ymeta  mem.Word
	xmeta  mem.Word
	leaf   bool
	median mem.Word
	xn     int
	j      int
	sci    int
	ret    int
}

// InsertStream returns the workload transaction loop
//
//	for txns { TxBegin; opsPerTx × Insert(rand key in [1, keyRange]); TxEnd }
//
// as a native OpStream over this tree.
func (t *BTree) InsertStream(rng *rand.Rand, txns, opsPerTx, keyRange int) sim.OpStream {
	return &btreeInsertStream{t: t, rng: rng, keyRange: keyRange, opsPerTx: opsPerTx, txLeft: txns}
}

func load(a mem.Addr) (sim.Op, bool) {
	return sim.Op{Kind: sim.OpLoad, Addr: a}, true
}

func store(a mem.Addr, v mem.Word) (sim.Op, bool) {
	return sim.Op{Kind: sim.OpStore, Addr: a, Data: v}, true
}

// Next implements sim.OpStream.
func (s *btreeInsertStream) Next() (sim.Op, bool) {
	if s.done {
		return sim.Op{}, false
	}
	t := s.t
	for {
		switch s.pc {

		// --- transaction loop ---
		case btTx:
			if s.txLeft == 0 {
				s.done = true
				return sim.Op{}, false
			}
			s.opJ = 0
			s.pc = btOp
			return sim.Op{Kind: sim.OpTxBegin}, true
		case btOp:
			if s.opJ == s.opsPerTx {
				s.txLeft--
				s.pc = btTx
				return sim.Op{Kind: sim.OpTxEnd}, true
			}
			s.key = mem.Word(s.rng.Intn(s.keyRange)) + 1
			s.pc = btRoot
			return load(t.rootPtr)

		// --- Insert: root fetch and preemptive root split ---
		case btRoot:
			s.root = mem.Addr(s.val)
			s.pc = btRootMeta
			return load(word(s.root, 0))
		case btRootMeta:
			if btN(s.val) == btMaxKeys {
				s.sp = t.heap.AllocLines(t.arena, 1)
				s.pc = btRs1
				return store(word(s.sp, 0), 0) // newNode(leaf=false)
			}
			s.n = s.root
			s.pc = btInfMeta
			return load(word(s.n, 0))
		case btRs1:
			s.pc = btRs2
			return store(word(s.sp, 4), mem.Word(s.root))
		case btRs2:
			s.x, s.sci, s.ret = s.sp, 0, btRs3
			s.pc = btSc0
		case btRs3:
			s.pc = btRs4
			return store(t.rootPtr, mem.Word(s.sp))
		case btRs4:
			s.n = s.sp
			s.pc = btInfMeta
			return load(word(s.n, 0))

		// --- insertNonFull descent ---
		case btInfMeta:
			s.meta = s.val
			s.cnt = btN(s.meta)
			s.i = 0
			s.pc = btScan
		case btScan:
			if s.i < s.cnt {
				s.pc = btScanCmp
				return load(word(s.n, 1+s.i))
			}
			s.pc = btLeafOrDesc
		case btScanCmp:
			if s.key > s.val {
				s.i++
				s.pc = btScan
				continue
			}
			s.pc = btEq
			return load(word(s.n, 1+s.i)) // the equality re-read
		case btEq:
			if s.key == s.val {
				s.pc = btInsertDone // duplicate
				continue
			}
			s.pc = btLeafOrDesc
		case btLeafOrDesc:
			if btLeaf(s.meta) {
				s.j = s.cnt
				s.pc = btLeafShift
				continue
			}
			s.pc = btChild
			return load(word(s.n, 4+s.i))
		case btLeafShift:
			if s.j > s.i {
				s.pc = btLeafShiftStore
				return load(word(s.n, 1+s.j-1))
			}
			s.pc = btLeafKey
		case btLeafShiftStore:
			s.pc = btLeafShift
			s.j--
			return store(word(s.n, 1+s.j+1), s.val)
		case btLeafKey:
			s.pc = btLeafMeta
			return store(word(s.n, 1+s.i), s.key)
		case btLeafMeta:
			s.pc = btInsertDone
			return store(word(s.n, 0), btMeta(true, s.cnt+1))
		case btInsertDone:
			s.opJ++
			s.pc = btOp
		case btChild:
			s.c = mem.Addr(s.val)
			s.pc = btChildMeta
			return load(word(s.c, 0))
		case btChildMeta:
			if btN(s.val) == btMaxKeys {
				s.x, s.sci, s.ret = s.n, s.i, btPostSplit
				s.pc = btSc0
				continue
			}
			s.n = s.c
			s.pc = btInfMeta
			return load(word(s.n, 0))
		case btPostSplit:
			s.pc = btPostEq
			return load(word(s.n, 1+s.i))
		case btPostEq:
			if s.key == s.val {
				s.pc = btInsertDone // key was the hoisted median
				continue
			}
			s.pc = btPostGt
			return load(word(s.n, 1+s.i)) // the key > re-read
		case btPostGt:
			if s.key > s.val {
				s.i++
			}
			s.pc = btDescend
			return load(word(s.n, 4+s.i))
		case btDescend:
			s.n = mem.Addr(s.val)
			s.pc = btInfMeta
			return load(word(s.n, 0))

		// --- splitChild(x, sci) ---
		case btSc0:
			s.pc = btSc1
			return load(word(s.x, 4+s.sci))
		case btSc1:
			s.y = mem.Addr(s.val)
			s.pc = btSc2
			return load(word(s.y, 0))
		case btSc2:
			s.ymeta = s.val
			s.leaf = btLeaf(s.ymeta)
			s.z = t.heap.AllocLines(t.arena, 1)
			var m0 mem.Word
			if s.leaf {
				m0 = 1
			}
			s.pc = btSc3
			return store(word(s.z, 0), m0) // newNode(leaf)
		case btSc3:
			s.pc = btSc4
			return load(word(s.y, 1+2))
		case btSc4:
			s.pc = btSc5
			return store(word(s.z, 1), s.val)
		case btSc5:
			if !s.leaf {
				s.pc = btSc6
				return load(word(s.y, 4+2))
			}
			s.pc = btSc9
		case btSc6:
			s.pc = btSc7
			return store(word(s.z, 4), s.val)
		case btSc7:
			s.pc = btSc8
			return load(word(s.y, 4+3))
		case btSc8:
			s.pc = btSc9
			return store(word(s.z, 5), s.val)
		case btSc9:
			s.pc = btSc10
			return store(word(s.z, 0), btMeta(s.leaf, 1))
		case btSc10:
			s.pc = btSc11
			return load(word(s.y, 1+1))
		case btSc11:
			s.median = s.val
			s.pc = btSc12
			return store(word(s.y, 0), btMeta(s.leaf, 1))
		case btSc12:
			s.pc = btSc13
			return load(word(s.x, 0))
		case btSc13:
			s.xmeta = s.val
			s.xn = btN(s.xmeta)
			s.j = s.xn
			s.pc = btSc14
		case btSc14:
			if s.j > s.sci {
				s.pc = btSc15
				return load(word(s.x, 1+s.j-1))
			}
			s.j = s.xn + 1
			s.pc = btSc16
		case btSc15:
			s.pc = btSc14
			s.j--
			return store(word(s.x, 1+s.j+1), s.val)
		case btSc16:
			if s.j > s.sci+1 {
				s.pc = btSc17
				return load(word(s.x, 4+s.j-1))
			}
			s.pc = btSc18
		case btSc17:
			s.pc = btSc16
			s.j--
			return store(word(s.x, 4+s.j+1), s.val)
		case btSc18:
			s.pc = btSc19
			return store(word(s.x, 1+s.sci), s.median)
		case btSc19:
			s.pc = btSc20
			return store(word(s.x, 4+s.sci+1), mem.Word(s.z))
		case btSc20:
			s.pc = s.ret
			return store(word(s.x, 0), btMeta(btLeaf(s.xmeta), s.xn+1))
		}
	}
}

// Deliver implements sim.OpStream. The crash sentinel ends the stream.
func (s *btreeInsertStream) Deliver(r sim.Result) {
	if r.Latency < 0 {
		s.done = true
		return
	}
	s.val = r.Value
}
