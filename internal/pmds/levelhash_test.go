package pmds

import (
	"math/rand"
	"testing"

	"silo/internal/mem"
)

func TestLevelHashBasics(t *testing.T) {
	acc := newAcc()
	lh := NewLevelHash(newHeap(), 0, 64)
	if _, ok := lh.Get(acc, 5); ok {
		t.Error("empty table found a key")
	}
	if !lh.Insert(acc, 5, 50) {
		t.Fatal("insert failed")
	}
	if v, ok := lh.Get(acc, 5); !ok || v != 50 {
		t.Fatalf("get = %d/%v", v, ok)
	}
	if !lh.Insert(acc, 5, 51) { // update in place
		t.Fatal("update failed")
	}
	if v, _ := lh.Get(acc, 5); v != 51 {
		t.Error("update value wrong")
	}
	if !lh.Delete(acc, 5) {
		t.Fatal("delete failed")
	}
	if _, ok := lh.Get(acc, 5); ok {
		t.Error("key survived delete")
	}
	if lh.Delete(acc, 5) {
		t.Error("double delete succeeded")
	}
}

func TestLevelHashRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	NewLevelHash(newHeap(), 0, 48)
}

func TestLevelHashZeroKeyPanics(t *testing.T) {
	acc := newAcc()
	lh := NewLevelHash(newHeap(), 0, 8)
	defer func() {
		if recover() == nil {
			t.Error("key 0 accepted")
		}
	}()
	lh.Insert(acc, 0, 1)
}

func TestLevelHashHighLoadWithMovement(t *testing.T) {
	// 64 top + 32 bottom buckets × 4 slots = 384 slots. The single-movement
	// scheme should comfortably place 60 % load.
	acc := newAcc()
	lh := NewLevelHash(newHeap(), 0, 64)
	rng := rand.New(rand.NewSource(14))
	inserted := map[mem.Word]mem.Word{}
	for len(inserted) < 230 {
		k := mem.Word(rng.Int63n(1<<40)) + 1
		if _, dup := inserted[k]; dup {
			continue
		}
		v := mem.Word(len(inserted))
		if !lh.Insert(acc, k, v) {
			t.Fatalf("insert failed at load %d/384", len(inserted))
		}
		inserted[k] = v
	}
	for k, v := range inserted {
		got, ok := lh.Get(acc, k)
		if !ok || got != v {
			t.Fatalf("key %#x: %d/%v want %d", uint64(k), got, ok, v)
		}
	}
}

func TestLevelHashFullReturnsFalse(t *testing.T) {
	acc := newAcc()
	lh := NewLevelHash(newHeap(), 0, 4) // 4+2 buckets × 4 = 24 slots
	rng := rand.New(rand.NewSource(15))
	placed := 0
	for i := 0; i < 200; i++ {
		if lh.Insert(acc, mem.Word(rng.Int63n(1<<40))+1, 1) {
			placed++
		}
	}
	if placed >= 200 {
		t.Error("tiny table never filled; resize path unreachable")
	}
	if placed < 12 {
		t.Errorf("placed only %d of 24 slots before giving up", placed)
	}
}

func TestLevelHashChurnAgainstModel(t *testing.T) {
	acc := newAcc()
	lh := NewLevelHash(newHeap(), 0, 128)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 12000; i++ {
		k := mem.Word(rng.Intn(300)) + 1
		switch rng.Intn(3) {
		case 0:
			if lh.Insert(acc, k, mem.Word(i)) {
				model[k] = mem.Word(i)
			}
		case 1:
			got := lh.Delete(acc, k)
			_, want := model[k]
			if got != want {
				t.Fatalf("op %d: delete(%d) = %v, model %v", i, k, got, want)
			}
			delete(model, k)
		case 2:
			v, ok := lh.Get(acc, k)
			want, wok := model[k]
			if ok != wok || (ok && v != want) {
				t.Fatalf("op %d: get(%d) = %d/%v, model %d/%v", i, k, v, ok, want, wok)
			}
		}
	}
}
