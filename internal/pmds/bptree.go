package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// BPTree is a B+-tree in the mold of the persistent indexes the paper's
// related work discusses (NVTree, FAST&FAIR): sorted keys inside
// multi-cacheline nodes updated by in-place shifts, values only in leaves,
// and leaves chained by sibling pointers for range scans. Deletion is
// leaf-local (lazy): keys are removed without rebalancing, as FAST&FAIR
// does, trading occupancy for simpler failure-atomic writes.
//
// Node layout (4 cachelines = 32 words):
//
//	w0      meta: bit0 leaf flag, bits 8.. key count
//	w1..w15 keys (sorted)
//	w16..w30 children (internal) or values (leaf)
//	w31     right sibling (leaf only)
type BPTree struct {
	rootPtr mem.Addr
	heap    *pmheap.Heap
	arena   int
}

const (
	bpMaxKeys   = 15
	bpNodeLines = 4
	bpKey0      = 1
	bpVal0      = 16
	bpSibling   = 31
)

// NewBPTree allocates an empty tree (a single empty leaf).
func NewBPTree(acc Accessor, heap *pmheap.Heap, arena int) *BPTree {
	t := &BPTree{rootPtr: heap.Alloc(arena, mem.WordSize, mem.WordSize), heap: heap, arena: arena}
	leaf := t.newNode(acc, true)
	acc.Store(t.rootPtr, mem.Word(leaf))
	return t
}

func (t *BPTree) newNode(acc Accessor, leaf bool) mem.Addr {
	n := t.heap.AllocLines(t.arena, bpNodeLines)
	acc.Store(word(n, 0), btMeta(leaf, 0))
	acc.Store(word(n, bpSibling), 0)
	return n
}

func (t *BPTree) count(acc Accessor, n mem.Addr) int { return btN(acc.Load(word(n, 0))) }
func (t *BPTree) isLeaf(acc Accessor, n mem.Addr) bool {
	return btLeaf(acc.Load(word(n, 0)))
}
func (t *BPTree) key(acc Accessor, n mem.Addr, i int) mem.Word {
	return acc.Load(word(n, bpKey0+i))
}
func (t *BPTree) val(acc Accessor, n mem.Addr, i int) mem.Word {
	return acc.Load(word(n, bpVal0+i))
}

// findLeaf descends to the leaf covering key, recording the path.
func (t *BPTree) findLeaf(acc Accessor, key mem.Word) (leaf mem.Addr, path []mem.Addr) {
	n := mem.Addr(acc.Load(t.rootPtr))
	for !t.isLeaf(acc, n) {
		path = append(path, n)
		cnt := t.count(acc, n)
		i := 0
		for i < cnt && key >= t.key(acc, n, i) {
			i++
		}
		n = mem.Addr(t.val(acc, n, i))
	}
	return n, path
}

// Get returns the value stored for key.
func (t *BPTree) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	leaf, _ := t.findLeaf(acc, key)
	cnt := t.count(acc, leaf)
	for i := 0; i < cnt; i++ {
		if t.key(acc, leaf, i) == key {
			return t.val(acc, leaf, i), true
		}
	}
	return 0, false
}

// Insert maps key → val, splitting nodes as needed.
func (t *BPTree) Insert(acc Accessor, key, val mem.Word) {
	leaf, path := t.findLeaf(acc, key)
	cnt := t.count(acc, leaf)
	// Update in place if present.
	for i := 0; i < cnt; i++ {
		if t.key(acc, leaf, i) == key {
			acc.Store(word(leaf, bpVal0+i), val)
			return
		}
	}
	if cnt < bpMaxKeys {
		t.insertAt(acc, leaf, key, val, cnt)
		return
	}
	// Split the leaf: right half moves to a new sibling.
	right := t.newNode(acc, true)
	half := (bpMaxKeys + 1) / 2
	moved := 0
	for i := half; i < bpMaxKeys; i++ {
		acc.Store(word(right, bpKey0+moved), t.key(acc, leaf, i))
		acc.Store(word(right, bpVal0+moved), t.val(acc, leaf, i))
		moved++
	}
	acc.Store(word(right, 0), btMeta(true, moved))
	acc.Store(word(right, bpSibling), acc.Load(word(leaf, bpSibling)))
	acc.Store(word(leaf, 0), btMeta(true, half))
	acc.Store(word(leaf, bpSibling), mem.Word(right))
	sep := t.key(acc, right, 0)
	if key >= sep {
		t.insertAt(acc, right, key, val, t.count(acc, right))
	} else {
		t.insertAt(acc, leaf, key, val, t.count(acc, leaf))
	}
	t.insertParent(acc, path, leaf, sep, right)
}

// insertAt shifts the sorted arrays right and places (key, val); cnt is
// the current count (< bpMaxKeys) — the FAST&FAIR-style in-place shift.
func (t *BPTree) insertAt(acc Accessor, n mem.Addr, key, val mem.Word, cnt int) {
	i := cnt
	for i > 0 && t.key(acc, n, i-1) > key {
		acc.Store(word(n, bpKey0+i), t.key(acc, n, i-1))
		acc.Store(word(n, bpVal0+i), t.val(acc, n, i-1))
		i--
	}
	acc.Store(word(n, bpKey0+i), key)
	acc.Store(word(n, bpVal0+i), val)
	acc.Store(word(n, 0), btMeta(t.isLeaf(acc, n), cnt+1))
}

// insertParent links a freshly split right node under the parent chain,
// splitting internal nodes upward as needed.
func (t *BPTree) insertParent(acc Accessor, path []mem.Addr, left mem.Addr, sep mem.Word, right mem.Addr) {
	if len(path) == 0 {
		// New root.
		root := t.newNode(acc, false)
		acc.Store(word(root, bpKey0), sep)
		acc.Store(word(root, bpVal0), mem.Word(left))
		acc.Store(word(root, bpVal0+1), mem.Word(right))
		acc.Store(word(root, 0), btMeta(false, 1))
		acc.Store(t.rootPtr, mem.Word(root))
		return
	}
	parent := path[len(path)-1]
	cnt := t.count(acc, parent)
	if cnt < bpMaxKeys {
		// Shift keys and children right of the slot.
		i := cnt
		for i > 0 && t.key(acc, parent, i-1) > sep {
			acc.Store(word(parent, bpKey0+i), t.key(acc, parent, i-1))
			acc.Store(word(parent, bpVal0+i+1), t.val(acc, parent, i))
			i--
		}
		acc.Store(word(parent, bpKey0+i), sep)
		acc.Store(word(parent, bpVal0+i+1), mem.Word(right))
		acc.Store(word(parent, 0), btMeta(false, cnt+1))
		return
	}
	// Split the internal parent: middle key moves up.
	newRight := t.newNode(acc, false)
	// Gather cnt+1 keys and cnt+2 children conceptually; do it via a
	// temporary in-memory copy (the simulator's accessor makes each word
	// access explicit anyway).
	keys := make([]mem.Word, 0, bpMaxKeys+1)
	kids := make([]mem.Word, 0, bpMaxKeys+2)
	kids = append(kids, t.val(acc, parent, 0))
	inserted := false
	for i := 0; i < cnt; i++ {
		k := t.key(acc, parent, i)
		if !inserted && sep < k {
			keys = append(keys, sep)
			kids = append(kids, mem.Word(right))
			inserted = true
		}
		keys = append(keys, k)
		kids = append(kids, t.val(acc, parent, i+1))
	}
	if !inserted {
		keys = append(keys, sep)
		kids = append(kids, mem.Word(right))
	}
	mid := len(keys) / 2
	up := keys[mid]
	// Left keeps keys[0:mid], children[0:mid+1].
	for i := 0; i < mid; i++ {
		acc.Store(word(parent, bpKey0+i), keys[i])
	}
	for i := 0; i <= mid; i++ {
		acc.Store(word(parent, bpVal0+i), kids[i])
	}
	acc.Store(word(parent, 0), btMeta(false, mid))
	// Right takes keys[mid+1:], children[mid+1:].
	rn := 0
	for i := mid + 1; i < len(keys); i++ {
		acc.Store(word(newRight, bpKey0+rn), keys[i])
		rn++
	}
	for i := mid + 1; i < len(kids); i++ {
		acc.Store(word(newRight, bpVal0+(i-mid-1)), kids[i])
	}
	acc.Store(word(newRight, 0), btMeta(false, rn))
	t.insertParent(acc, path[:len(path)-1], parent, up, newRight)
}

// Delete removes key from its leaf (lazy: no rebalancing, as in
// FAST&FAIR). It reports whether the key was present.
func (t *BPTree) Delete(acc Accessor, key mem.Word) bool {
	leaf, _ := t.findLeaf(acc, key)
	cnt := t.count(acc, leaf)
	for i := 0; i < cnt; i++ {
		if t.key(acc, leaf, i) != key {
			continue
		}
		for j := i; j < cnt-1; j++ {
			acc.Store(word(leaf, bpKey0+j), t.key(acc, leaf, j+1))
			acc.Store(word(leaf, bpVal0+j), t.val(acc, leaf, j+1))
		}
		acc.Store(word(leaf, 0), btMeta(true, cnt-1))
		return true
	}
	return false
}

// Scan walks up to n entries with key >= from, in key order, using the
// leaf sibling chain, and calls fn for each. It returns how many entries
// it visited.
func (t *BPTree) Scan(acc Accessor, from mem.Word, n int, fn func(key, val mem.Word)) int {
	leaf, _ := t.findLeaf(acc, from)
	seen := 0
	for leaf != 0 && seen < n {
		cnt := t.count(acc, leaf)
		for i := 0; i < cnt && seen < n; i++ {
			k := t.key(acc, leaf, i)
			if k < from {
				continue
			}
			fn(k, t.val(acc, leaf, i))
			seen++
		}
		leaf = mem.Addr(acc.Load(word(leaf, bpSibling)))
	}
	return seen
}
