package pmds

import "silo/internal/mem"

// This file adds deletion to the persistent structures. The paper's
// benchmarks only insert (Table III), but a structure library without
// delete is not adoptable; the mixed workloads built on these paths also
// widen the crash-recovery test surface.

// Delete removes key from the hash table using tombstones (open
// addressing cannot simply clear a slot without breaking probe chains).
// It reports whether the key was present.
func (h *HashTable) Delete(acc Accessor, key mem.Word) bool {
	i := mix64(uint64(key))
	for probe := uint64(0); probe <= h.mask; probe++ {
		k := acc.Load(h.bucket(i+probe, 0))
		if k == 0 {
			return false
		}
		if k != key {
			continue
		}
		acc.Store(h.bucket(i+probe, 0), hashTombstone)
		return true
	}
	return false
}

// hashTombstone marks a deleted bucket: probes continue past it, inserts
// may reuse it.
const hashTombstone mem.Word = ^mem.Word(0)

// Delete removes key from the radix tree by clearing the value slot
// (interior nodes are retained — the PMDK Rtree likewise defers interior
// reclamation). It reports whether the key was present.
func (t *RadixTree) Delete(acc Accessor, key mem.Word) bool {
	n := mem.Addr(acc.Load(t.rootPtr))
	for level := 0; level < t.levels-1; level++ {
		c := mem.Addr(acc.Load(word(n, t.digit(key, level))))
		if c == 0 {
			return false
		}
		n = c
	}
	slot := word(n, t.digit(key, t.levels-1))
	if acc.Load(slot)&radixPresent == 0 {
		return false
	}
	acc.Store(slot, 0)
	return true
}

// Delete removes key from the crit-bit trie, collapsing the internal node
// that pointed at the removed leaf. It reports whether the key was present.
func (t *CritBitTrie) Delete(acc Accessor, key mem.Word) bool {
	p := acc.Load(t.rootPtr)
	if p == 0 {
		return false
	}
	if isLeaf(p) {
		if acc.Load(word(nodeAddr(p), 0)) != key {
			return false
		}
		acc.Store(t.rootPtr, 0)
		t.heap.Free(t.arena, nodeAddr(p), 2*mem.WordSize, mem.WordSize)
		return true
	}
	// Walk remembering the grandparent slot and the parent node.
	gpSlot := t.rootPtr
	parent := nodeAddr(p)
	var sideSlot, otherSlot mem.Addr
	for {
		cb := int(acc.Load(word(parent, 0)))
		if bitOf(key, cb) == 0 {
			sideSlot, otherSlot = word(parent, 1), word(parent, 2)
		} else {
			sideSlot, otherSlot = word(parent, 2), word(parent, 1)
		}
		q := acc.Load(sideSlot)
		if isLeaf(q) {
			if acc.Load(word(nodeAddr(q), 0)) != key {
				return false
			}
			// Replace the parent with the surviving sibling subtree; both
			// the removed leaf and the collapsed internal node are dead.
			acc.Store(gpSlot, acc.Load(otherSlot))
			t.heap.Free(t.arena, nodeAddr(q), 2*mem.WordSize, mem.WordSize)
			t.heap.Free(t.arena, parent, 3*mem.WordSize, mem.WordSize)
			return true
		}
		gpSlot = sideSlot
		parent = nodeAddr(q)
	}
}

// Delete removes key from the red-black tree, rebalancing as needed. It
// reports whether the key was present. The implementation is the classic
// CLRS RB-DELETE adapted to a 0-as-nil encoding: the fixup tracks the
// "current" node's parent explicitly because nil carries no parent field.
func (t *RBTree) Delete(acc Accessor, key mem.Word) bool {
	z := t.root(acc)
	for z != 0 {
		k := t.get(acc, z, rbKey)
		if key == k {
			break
		}
		if key < k {
			z = mem.Addr(t.get(acc, z, rbLeft))
		} else {
			z = mem.Addr(t.get(acc, z, rbRight))
		}
	}
	if z == 0 {
		return false
	}

	y := z
	yColor := t.get(acc, y, rbColor)
	var x, xParent mem.Addr
	switch {
	case t.get(acc, z, rbLeft) == 0:
		x = mem.Addr(t.get(acc, z, rbRight))
		xParent = mem.Addr(t.get(acc, z, rbParent))
		t.transplant(acc, z, x)
	case t.get(acc, z, rbRight) == 0:
		x = mem.Addr(t.get(acc, z, rbLeft))
		xParent = mem.Addr(t.get(acc, z, rbParent))
		t.transplant(acc, z, x)
	default:
		// y = minimum of z's right subtree replaces z.
		y = mem.Addr(t.get(acc, z, rbRight))
		for l := mem.Addr(t.get(acc, y, rbLeft)); l != 0; l = mem.Addr(t.get(acc, y, rbLeft)) {
			y = l
		}
		yColor = t.get(acc, y, rbColor)
		x = mem.Addr(t.get(acc, y, rbRight))
		if mem.Addr(t.get(acc, y, rbParent)) == z {
			xParent = y
		} else {
			xParent = mem.Addr(t.get(acc, y, rbParent))
			t.transplant(acc, y, x)
			r := mem.Addr(t.get(acc, z, rbRight))
			t.set(acc, y, rbRight, mem.Word(r))
			t.set(acc, r, rbParent, mem.Word(y))
		}
		t.transplant(acc, z, y)
		l := mem.Addr(t.get(acc, z, rbLeft))
		t.set(acc, y, rbLeft, mem.Word(l))
		if l != 0 {
			t.set(acc, l, rbParent, mem.Word(y))
		}
		t.set(acc, y, rbColor, t.get(acc, z, rbColor))
	}
	if yColor != rbRed {
		t.deleteFixup(acc, x, xParent)
	}
	t.heap.FreeLines(t.arena, z, 1) // z is fully unlinked in every case
	return true
}

// transplant replaces subtree u with subtree v in u's parent.
func (t *RBTree) transplant(acc Accessor, u, v mem.Addr) {
	p := mem.Addr(t.get(acc, u, rbParent))
	switch {
	case p == 0:
		acc.Store(t.rootPtr, mem.Word(v))
	case u == mem.Addr(t.get(acc, p, rbLeft)):
		t.set(acc, p, rbLeft, mem.Word(v))
	default:
		t.set(acc, p, rbRight, mem.Word(v))
	}
	if v != 0 {
		t.set(acc, v, rbParent, mem.Word(p))
	}
}

// deleteFixup restores the red-black properties after removing a black
// node; x may be 0 (nil is black), so its parent travels alongside.
func (t *RBTree) deleteFixup(acc Accessor, x, xParent mem.Addr) {
	for x != mem.Addr(acc.Load(t.rootPtr)) && t.get(acc, x, rbColor) != rbRed {
		if xParent == 0 {
			break
		}
		if x == mem.Addr(t.get(acc, xParent, rbLeft)) {
			w := mem.Addr(t.get(acc, xParent, rbRight))
			if t.get(acc, w, rbColor) == rbRed {
				t.set(acc, w, rbColor, 0)
				t.set(acc, xParent, rbColor, rbRed)
				t.rotateLeft(acc, xParent)
				w = mem.Addr(t.get(acc, xParent, rbRight))
			}
			wl := mem.Addr(t.get(acc, w, rbLeft))
			wr := mem.Addr(t.get(acc, w, rbRight))
			if t.get(acc, wl, rbColor) != rbRed && t.get(acc, wr, rbColor) != rbRed {
				t.set(acc, w, rbColor, rbRed)
				x = xParent
				xParent = mem.Addr(t.get(acc, x, rbParent))
				continue
			}
			if t.get(acc, wr, rbColor) != rbRed {
				t.set(acc, wl, rbColor, 0)
				t.set(acc, w, rbColor, rbRed)
				t.rotateRight(acc, w)
				w = mem.Addr(t.get(acc, xParent, rbRight))
				wr = mem.Addr(t.get(acc, w, rbRight))
			}
			t.set(acc, w, rbColor, t.get(acc, xParent, rbColor))
			t.set(acc, xParent, rbColor, 0)
			t.set(acc, wr, rbColor, 0)
			t.rotateLeft(acc, xParent)
			x = mem.Addr(acc.Load(t.rootPtr))
			xParent = 0
		} else {
			w := mem.Addr(t.get(acc, xParent, rbLeft))
			if t.get(acc, w, rbColor) == rbRed {
				t.set(acc, w, rbColor, 0)
				t.set(acc, xParent, rbColor, rbRed)
				t.rotateRight(acc, xParent)
				w = mem.Addr(t.get(acc, xParent, rbLeft))
			}
			wl := mem.Addr(t.get(acc, w, rbLeft))
			wr := mem.Addr(t.get(acc, w, rbRight))
			if t.get(acc, wl, rbColor) != rbRed && t.get(acc, wr, rbColor) != rbRed {
				t.set(acc, w, rbColor, rbRed)
				x = xParent
				xParent = mem.Addr(t.get(acc, x, rbParent))
				continue
			}
			if t.get(acc, wl, rbColor) != rbRed {
				t.set(acc, wr, rbColor, 0)
				t.set(acc, w, rbColor, rbRed)
				t.rotateLeft(acc, w)
				w = mem.Addr(t.get(acc, xParent, rbLeft))
				wl = mem.Addr(t.get(acc, w, rbLeft))
			}
			t.set(acc, w, rbColor, t.get(acc, xParent, rbColor))
			t.set(acc, xParent, rbColor, 0)
			t.set(acc, wl, rbColor, 0)
			t.rotateRight(acc, xParent)
			x = mem.Addr(acc.Load(t.rootPtr))
			xParent = 0
		}
	}
	if x != 0 {
		t.set(acc, x, rbColor, 0)
	}
}
