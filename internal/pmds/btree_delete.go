package pmds

import "silo/internal/mem"

// Delete removes key from the B-tree, rebalancing by borrow/merge so every
// non-root node keeps at least t-1 = 1 key (CLRS B-TREE-DELETE for minimum
// degree t = 2). It reports whether the key was present. The descent
// preemptively tops up any child it is about to enter, so no backtracking
// is needed.
func (t *BTree) Delete(acc Accessor, key mem.Word) bool {
	root := mem.Addr(acc.Load(t.rootPtr))
	found := t.deleteFrom(acc, root, key)
	// A root left with zero keys and one child shrinks the tree.
	meta := acc.Load(word(root, 0))
	if btN(meta) == 0 && !btLeaf(meta) {
		acc.Store(t.rootPtr, mem.Word(t.child(acc, root, 0)))
		t.heap.FreeLines(t.arena, root, 1)
	}
	return found
}

func (t *BTree) setKey(acc Accessor, n mem.Addr, i int, k mem.Word) {
	acc.Store(word(n, 1+i), k)
}

func (t *BTree) setChild(acc Accessor, n mem.Addr, i int, c mem.Addr) {
	acc.Store(word(n, 4+i), mem.Word(c))
}

func (t *BTree) setCount(acc Accessor, n mem.Addr, count int) {
	acc.Store(word(n, 0), btMeta(btLeaf(acc.Load(word(n, 0))), count))
}

// deleteFrom removes key from the subtree rooted at n; n always has at
// least t keys on entry (except the root).
func (t *BTree) deleteFrom(acc Accessor, n mem.Addr, key mem.Word) bool {
	meta := acc.Load(word(n, 0))
	cnt := btN(meta)
	i := 0
	for i < cnt && key > t.key(acc, n, i) {
		i++
	}
	leaf := btLeaf(meta)

	if i < cnt && key == t.key(acc, n, i) {
		if leaf {
			// Case 1: remove from a leaf.
			for j := i; j < cnt-1; j++ {
				t.setKey(acc, n, j, t.key(acc, n, j+1))
			}
			t.setCount(acc, n, cnt-1)
			return true
		}
		// Case 2: key in an internal node.
		y := t.child(acc, n, i)
		z := t.child(acc, n, i+1)
		switch {
		case btN(acc.Load(word(y, 0))) >= 2:
			// 2a: replace with the predecessor from the left child.
			pred := t.maxKey(acc, y)
			t.setKey(acc, n, i, pred)
			t.deleteFrom(acc, y, pred)
		case btN(acc.Load(word(z, 0))) >= 2:
			// 2b: replace with the successor from the right child.
			succ := t.minKey(acc, z)
			t.setKey(acc, n, i, succ)
			t.deleteFrom(acc, z, succ)
		default:
			// 2c: merge y, key, z and recurse into the merged node.
			t.mergeChildren(acc, n, i)
			t.deleteFrom(acc, y, key)
		}
		return true
	}
	if leaf {
		return false // not present
	}
	// Case 3: descend into child i, topping it up to >= t keys first.
	c := t.child(acc, n, i)
	if btN(acc.Load(word(c, 0))) < 2 {
		c = t.fixChild(acc, n, i)
	}
	return t.deleteFrom(acc, c, key)
}

// maxKey returns the largest key in the subtree at n.
func (t *BTree) maxKey(acc Accessor, n mem.Addr) mem.Word {
	for {
		meta := acc.Load(word(n, 0))
		cnt := btN(meta)
		if btLeaf(meta) {
			return t.key(acc, n, cnt-1)
		}
		n = t.child(acc, n, cnt)
	}
}

// minKey returns the smallest key in the subtree at n.
func (t *BTree) minKey(acc Accessor, n mem.Addr) mem.Word {
	for {
		meta := acc.Load(word(n, 0))
		if btLeaf(meta) {
			return t.key(acc, n, 0)
		}
		n = t.child(acc, n, 0)
	}
}

// mergeChildren folds x.keys[i] and child i+1 into child i (both children
// have exactly 1 key), leaving child i with 3 keys.
func (t *BTree) mergeChildren(acc Accessor, x mem.Addr, i int) {
	y := t.child(acc, x, i)
	z := t.child(acc, x, i+1)
	yMeta := acc.Load(word(y, 0))
	yLeaf := btLeaf(yMeta)

	t.setKey(acc, y, 1, t.key(acc, x, i))
	t.setKey(acc, y, 2, t.key(acc, z, 0))
	if !yLeaf {
		t.setChild(acc, y, 2, t.child(acc, z, 0))
		t.setChild(acc, y, 3, t.child(acc, z, 1))
	}
	acc.Store(word(y, 0), btMeta(yLeaf, 3))

	t.heap.FreeLines(t.arena, z, 1) // z's contents moved into y

	// Remove key i and child i+1 from x.
	xCnt := btN(acc.Load(word(x, 0)))
	for j := i; j < xCnt-1; j++ {
		t.setKey(acc, x, j, t.key(acc, x, j+1))
	}
	for j := i + 1; j < xCnt; j++ {
		t.setChild(acc, x, j, t.child(acc, x, j+1))
	}
	t.setCount(acc, x, xCnt-1)
}

// fixChild tops up x's 1-key child i by borrowing from a sibling or
// merging, returning the node the descent should continue into.
func (t *BTree) fixChild(acc Accessor, x mem.Addr, i int) mem.Addr {
	c := t.child(acc, x, i)
	cMeta := acc.Load(word(c, 0))
	cLeaf := btLeaf(cMeta)
	xCnt := btN(acc.Load(word(x, 0)))

	if i > 0 {
		left := t.child(acc, x, i-1)
		if ln := btN(acc.Load(word(left, 0))); ln >= 2 {
			// Borrow from the left sibling through x.
			t.setKey(acc, c, 1, t.key(acc, c, 0))
			if !cLeaf {
				t.setChild(acc, c, 2, t.child(acc, c, 1))
				t.setChild(acc, c, 1, t.child(acc, c, 0))
				t.setChild(acc, c, 0, t.child(acc, left, ln))
			}
			t.setKey(acc, c, 0, t.key(acc, x, i-1))
			acc.Store(word(c, 0), btMeta(cLeaf, 2))
			t.setKey(acc, x, i-1, t.key(acc, left, ln-1))
			t.setCount(acc, left, ln-1)
			return c
		}
	}
	if i < xCnt {
		right := t.child(acc, x, i+1)
		if rn := btN(acc.Load(word(right, 0))); rn >= 2 {
			// Borrow from the right sibling through x.
			t.setKey(acc, c, 1, t.key(acc, x, i))
			if !cLeaf {
				t.setChild(acc, c, 2, t.child(acc, right, 0))
			}
			acc.Store(word(c, 0), btMeta(cLeaf, 2))
			t.setKey(acc, x, i, t.key(acc, right, 0))
			for j := 0; j < rn-1; j++ {
				t.setKey(acc, right, j, t.key(acc, right, j+1))
			}
			if !cLeaf {
				for j := 0; j <= rn-1; j++ {
					t.setChild(acc, right, j, t.child(acc, right, j+1))
				}
			}
			t.setCount(acc, right, rn-1)
			return c
		}
	}
	// Merge with a sibling (both have 1 key).
	if i < xCnt {
		t.mergeChildren(acc, x, i)
		return c
	}
	t.mergeChildren(acc, x, i-1)
	return t.child(acc, x, i-1)
}
