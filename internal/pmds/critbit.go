package pmds

import (
	"math/bits"

	"silo/internal/mem"
	"silo/internal/pmheap"
)

// CritBitTrie is the Ctrie workload from PMDK (Fig. 4): a crit-bit tree
// over 64-bit keys. Internal nodes hold the critical bit index and two
// children; leaves hold key and value. Child pointers tag leaves with
// their low bit (all allocations are 8-byte aligned, so bit 0 is free).
//
// Internal node: w0 = crit-bit index, w1 = left (bit 0), w2 = right.
// Leaf: w0 = key, w1 = value.
type CritBitTrie struct {
	rootPtr mem.Addr
	heap    *pmheap.Heap
	arena   int
}

const cbLeafTag mem.Word = 1

// NewCritBitTrie allocates an empty trie.
func NewCritBitTrie(acc Accessor, heap *pmheap.Heap, arena int) *CritBitTrie {
	t := &CritBitTrie{rootPtr: heap.Alloc(arena, mem.WordSize, mem.WordSize), heap: heap, arena: arena}
	acc.Store(t.rootPtr, 0)
	return t
}

func (t *CritBitTrie) newLeaf(acc Accessor, key, val mem.Word) mem.Word {
	n := t.heap.Alloc(t.arena, 2*mem.WordSize, mem.WordSize)
	acc.Store(word(n, 0), key)
	acc.Store(word(n, 1), val)
	return mem.Word(n) | cbLeafTag
}

func isLeaf(p mem.Word) bool       { return p&cbLeafTag != 0 }
func nodeAddr(p mem.Word) mem.Addr { return mem.Addr(p &^ cbLeafTag) }

// critBit returns the index (63 = MSB) of the highest bit where a and b
// differ; a must differ from b.
func critBit(a, b mem.Word) int {
	return 63 - bits.LeadingZeros64(uint64(a^b))
}

func bitOf(key mem.Word, idx int) int {
	return int(key>>uint(idx)) & 1
}

// Get returns the value stored for key.
func (t *CritBitTrie) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	p := acc.Load(t.rootPtr)
	if p == 0 {
		return 0, false
	}
	for !isLeaf(p) {
		n := nodeAddr(p)
		cb := int(acc.Load(word(n, 0)))
		if bitOf(key, cb) == 0 {
			p = acc.Load(word(n, 1))
		} else {
			p = acc.Load(word(n, 2))
		}
	}
	l := nodeAddr(p)
	if acc.Load(word(l, 0)) == key {
		return acc.Load(word(l, 1)), true
	}
	return 0, false
}

// Insert maps key → val.
func (t *CritBitTrie) Insert(acc Accessor, key, val mem.Word) {
	p := acc.Load(t.rootPtr)
	if p == 0 {
		acc.Store(t.rootPtr, t.newLeaf(acc, key, val))
		return
	}
	// Walk to the closest leaf.
	q := p
	for !isLeaf(q) {
		n := nodeAddr(q)
		cb := int(acc.Load(word(n, 0)))
		if bitOf(key, cb) == 0 {
			q = acc.Load(word(n, 1))
		} else {
			q = acc.Load(word(n, 2))
		}
	}
	leafKey := acc.Load(word(nodeAddr(q), 0))
	if leafKey == key {
		acc.Store(word(nodeAddr(q), 1), val)
		return
	}
	newBit := critBit(key, leafKey)

	// Re-walk from the root to the insertion point: the first edge whose
	// node tests a bit lower than newBit (or a leaf).
	slot := t.rootPtr
	p = acc.Load(slot)
	for !isLeaf(p) {
		n := nodeAddr(p)
		cb := int(acc.Load(word(n, 0)))
		if cb < newBit {
			break
		}
		if bitOf(key, cb) == 0 {
			slot = word(n, 1)
		} else {
			slot = word(n, 2)
		}
		p = acc.Load(slot)
	}

	in := t.heap.Alloc(t.arena, 3*mem.WordSize, mem.WordSize)
	acc.Store(word(in, 0), mem.Word(newBit))
	leaf := t.newLeaf(acc, key, val)
	if bitOf(key, newBit) == 0 {
		acc.Store(word(in, 1), leaf)
		acc.Store(word(in, 2), p)
	} else {
		acc.Store(word(in, 1), p)
		acc.Store(word(in, 2), leaf)
	}
	acc.Store(slot, mem.Word(in))
}
