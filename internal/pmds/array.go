package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// Array is the Array micro-benchmark structure: a persistent array of
// 64 B elements whose transactions randomly swap two elements (Table III).
// Each element's first word holds its payload and the remaining seven
// words are sparse, so a swap stores 16 words of which most do not change
// value — the pattern behind the 90.4 % log-ignorance rate on Array
// reported in §VI-D.
type Array struct {
	base mem.Addr
	n    int
}

// ElemWords is the number of words per array element (64 B elements).
const ElemWords = mem.WordsPerLine

// NewArray allocates and initializes an n-element array in arena.
func NewArray(acc Accessor, heap *pmheap.Heap, arena, n int) *Array {
	a := &Array{base: heap.AllocLines(arena, n), n: n}
	for i := 0; i < n; i++ {
		acc.Store(a.elem(i, 0), mem.Word(i)+1)
		// Remaining words stay zero: sparse payload.
	}
	return a
}

func (a *Array) elem(i, w int) mem.Addr {
	return word(a.base+mem.Addr(i*mem.LineSize), w)
}

// Elem returns the address of word w of element i — exported so native
// op streams (which schedule loads and stores themselves instead of
// running Swap's control flow) address the same layout.
func (a *Array) Elem(i, w int) mem.Addr { return a.elem(i, w) }

// Len returns the element count.
func (a *Array) Len() int { return a.n }

// Swap exchanges elements i and j, copying all eight words of each — the
// benchmark's full-element swap.
func (a *Array) Swap(acc Accessor, i, j int) {
	var ei, ej [ElemWords]mem.Word
	for w := 0; w < ElemWords; w++ {
		ei[w] = acc.Load(a.elem(i, w))
		ej[w] = acc.Load(a.elem(j, w))
	}
	for w := 0; w < ElemWords; w++ {
		acc.Store(a.elem(i, w), ej[w])
		acc.Store(a.elem(j, w), ei[w])
	}
}

// Get returns element i's payload word.
func (a *Array) Get(acc Accessor, i int) mem.Word {
	return acc.Load(a.elem(i, 0))
}
