package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// RBTree is the RBtree micro-benchmark structure: a classic red-black
// tree with parent pointers, each node one 64 B cacheline. Insertions
// trigger recolorings and rotations whose scattered parent/child pointer
// writes give the benchmark its write profile.
//
// Node layout:
//
//	w0 key, w1 value, w2 left, w3 right, w4 parent, w5 color (1 = red)
//
// Address 0 acts as the nil sentinel and is black by definition.
type RBTree struct {
	rootPtr mem.Addr
	heap    *pmheap.Heap
	arena   int
}

const (
	rbKey = iota
	rbVal
	rbLeft
	rbRight
	rbParent
	rbColor
)

const rbRed mem.Word = 1

// NewRBTree allocates an empty tree in arena.
func NewRBTree(acc Accessor, heap *pmheap.Heap, arena int) *RBTree {
	t := &RBTree{rootPtr: heap.Alloc(arena, mem.WordSize, mem.WordSize), heap: heap, arena: arena}
	acc.Store(t.rootPtr, 0)
	return t
}

func (t *RBTree) get(acc Accessor, n mem.Addr, f int) mem.Word {
	if n == 0 {
		if f == rbColor {
			return 0 // nil is black
		}
		return 0
	}
	return acc.Load(word(n, f))
}

func (t *RBTree) set(acc Accessor, n mem.Addr, f int, v mem.Word) {
	acc.Store(word(n, f), v)
}

func (t *RBTree) root(acc Accessor) mem.Addr { return mem.Addr(acc.Load(t.rootPtr)) }

// Get returns the value stored for key.
func (t *RBTree) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	n := t.root(acc)
	for n != 0 {
		k := t.get(acc, n, rbKey)
		switch {
		case key == k:
			return t.get(acc, n, rbVal), true
		case key < k:
			n = mem.Addr(t.get(acc, n, rbLeft))
		default:
			n = mem.Addr(t.get(acc, n, rbRight))
		}
	}
	return 0, false
}

// Insert adds or updates key → val.
func (t *RBTree) Insert(acc Accessor, key, val mem.Word) {
	var parent mem.Addr
	n := t.root(acc)
	for n != 0 {
		k := t.get(acc, n, rbKey)
		if key == k {
			t.set(acc, n, rbVal, val)
			return
		}
		parent = n
		if key < k {
			n = mem.Addr(t.get(acc, n, rbLeft))
		} else {
			n = mem.Addr(t.get(acc, n, rbRight))
		}
	}
	z := t.heap.AllocLines(t.arena, 1)
	t.set(acc, z, rbKey, key)
	t.set(acc, z, rbVal, val)
	t.set(acc, z, rbLeft, 0)
	t.set(acc, z, rbRight, 0)
	t.set(acc, z, rbParent, mem.Word(parent))
	t.set(acc, z, rbColor, rbRed)
	if parent == 0 {
		acc.Store(t.rootPtr, mem.Word(z))
	} else if key < t.get(acc, parent, rbKey) {
		t.set(acc, parent, rbLeft, mem.Word(z))
	} else {
		t.set(acc, parent, rbRight, mem.Word(z))
	}
	t.fixInsert(acc, z)
}

func (t *RBTree) fixInsert(acc Accessor, z mem.Addr) {
	for {
		p := mem.Addr(t.get(acc, z, rbParent))
		if p == 0 || t.get(acc, p, rbColor) != rbRed {
			break
		}
		g := mem.Addr(t.get(acc, p, rbParent))
		if p == mem.Addr(t.get(acc, g, rbLeft)) {
			u := mem.Addr(t.get(acc, g, rbRight))
			if t.get(acc, u, rbColor) == rbRed {
				t.set(acc, p, rbColor, 0)
				t.set(acc, u, rbColor, 0)
				t.set(acc, g, rbColor, rbRed)
				z = g
				continue
			}
			if z == mem.Addr(t.get(acc, p, rbRight)) {
				z = p
				t.rotateLeft(acc, z)
				p = mem.Addr(t.get(acc, z, rbParent))
				g = mem.Addr(t.get(acc, p, rbParent))
			}
			t.set(acc, p, rbColor, 0)
			t.set(acc, g, rbColor, rbRed)
			t.rotateRight(acc, g)
		} else {
			u := mem.Addr(t.get(acc, g, rbLeft))
			if t.get(acc, u, rbColor) == rbRed {
				t.set(acc, p, rbColor, 0)
				t.set(acc, u, rbColor, 0)
				t.set(acc, g, rbColor, rbRed)
				z = g
				continue
			}
			if z == mem.Addr(t.get(acc, p, rbLeft)) {
				z = p
				t.rotateRight(acc, z)
				p = mem.Addr(t.get(acc, z, rbParent))
				g = mem.Addr(t.get(acc, p, rbParent))
			}
			t.set(acc, p, rbColor, 0)
			t.set(acc, g, rbColor, rbRed)
			t.rotateLeft(acc, g)
		}
	}
	root := t.root(acc)
	if t.get(acc, root, rbColor) == rbRed {
		t.set(acc, root, rbColor, 0)
	}
}

func (t *RBTree) rotateLeft(acc Accessor, x mem.Addr) {
	y := mem.Addr(t.get(acc, x, rbRight))
	yl := mem.Addr(t.get(acc, y, rbLeft))
	t.set(acc, x, rbRight, mem.Word(yl))
	if yl != 0 {
		t.set(acc, yl, rbParent, mem.Word(x))
	}
	p := mem.Addr(t.get(acc, x, rbParent))
	t.set(acc, y, rbParent, mem.Word(p))
	switch {
	case p == 0:
		acc.Store(t.rootPtr, mem.Word(y))
	case x == mem.Addr(t.get(acc, p, rbLeft)):
		t.set(acc, p, rbLeft, mem.Word(y))
	default:
		t.set(acc, p, rbRight, mem.Word(y))
	}
	t.set(acc, y, rbLeft, mem.Word(x))
	t.set(acc, x, rbParent, mem.Word(y))
}

func (t *RBTree) rotateRight(acc Accessor, x mem.Addr) {
	y := mem.Addr(t.get(acc, x, rbLeft))
	yr := mem.Addr(t.get(acc, y, rbRight))
	t.set(acc, x, rbLeft, mem.Word(yr))
	if yr != 0 {
		t.set(acc, yr, rbParent, mem.Word(x))
	}
	p := mem.Addr(t.get(acc, x, rbParent))
	t.set(acc, y, rbParent, mem.Word(p))
	switch {
	case p == 0:
		acc.Store(t.rootPtr, mem.Word(y))
	case x == mem.Addr(t.get(acc, p, rbLeft)):
		t.set(acc, p, rbLeft, mem.Word(y))
	default:
		t.set(acc, p, rbRight, mem.Word(y))
	}
	t.set(acc, y, rbRight, mem.Word(x))
	t.set(acc, x, rbParent, mem.Word(y))
}

// CheckInvariants verifies the red-black properties, returning the black
// height or an error description (tests).
func (t *RBTree) CheckInvariants(acc Accessor) (blackHeight int, err string) {
	root := t.root(acc)
	if root == 0 {
		return 0, ""
	}
	if t.get(acc, root, rbColor) == rbRed {
		return 0, "root is red"
	}
	return t.check(acc, root, 0, ^mem.Word(0))
}

func (t *RBTree) check(acc Accessor, n mem.Addr, lo, hi mem.Word) (int, string) {
	if n == 0 {
		return 1, ""
	}
	k := t.get(acc, n, rbKey)
	if k < lo || k > hi {
		return 0, "BST order violated"
	}
	red := t.get(acc, n, rbColor) == rbRed
	l := mem.Addr(t.get(acc, n, rbLeft))
	r := mem.Addr(t.get(acc, n, rbRight))
	if red {
		if t.get(acc, l, rbColor) == rbRed || t.get(acc, r, rbColor) == rbRed {
			return 0, "red node with red child"
		}
	}
	var hiL, loR mem.Word
	if k > 0 {
		hiL = k - 1
	}
	loR = k + 1
	bl, e := t.check(acc, l, lo, hiL)
	if e != "" {
		return 0, e
	}
	br, e := t.check(acc, r, loR, hi)
	if e != "" {
		return 0, e
	}
	if bl != br {
		return 0, "black height mismatch"
	}
	if !red {
		bl++
	}
	return bl, ""
}
