package pmds

import (
	"math/rand"
	"sort"
	"testing"

	"silo/internal/mem"
)

// --- HashTable.Delete ---

func TestHashDeleteBasic(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 64)
	h.Put(acc, 42, 1)
	if !h.Delete(acc, 42) {
		t.Fatal("delete of present key failed")
	}
	if _, ok := h.Get(acc, 42); ok {
		t.Error("key readable after delete")
	}
	if h.Delete(acc, 42) {
		t.Error("double delete succeeded")
	}
	if h.Delete(acc, 999) {
		t.Error("delete of absent key succeeded")
	}
}

func TestHashDeletePreservesProbeChains(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 8)
	// Force a probe chain: insert several keys into a tiny table, delete
	// one in the middle, the rest must remain reachable.
	keys := []mem.Word{11, 22, 33, 44, 55}
	for _, k := range keys {
		if !h.Put(acc, k, k) {
			t.Fatalf("put %d", k)
		}
	}
	h.Delete(acc, keys[2])
	for _, k := range []mem.Word{11, 22, 44, 55} {
		if _, ok := h.Get(acc, k); !ok {
			t.Errorf("key %d lost after unrelated delete", k)
		}
	}
	// The tombstone is reusable.
	if !h.Put(acc, 66, 6) {
		t.Error("tombstone slot not reusable")
	}
	if _, ok := h.Get(acc, 66); !ok {
		t.Error("reinserted key missing")
	}
}

func TestHashChurnAgainstModel(t *testing.T) {
	acc := newAcc()
	h := NewHashTable(newHeap(), 0, 256)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 8000; i++ {
		k := mem.Word(rng.Intn(300)) + 1
		switch rng.Intn(3) {
		case 0:
			if h.Put(acc, k, mem.Word(i)) {
				model[k] = mem.Word(i)
			}
		case 1:
			if got := h.Delete(acc, k); got != (model[k] != 0 || hasKey(model, k)) {
				t.Fatalf("op %d: delete(%d) = %v, model disagrees", i, k, got)
			}
			delete(model, k)
		case 2:
			v, ok := h.Get(acc, k)
			want, wok := model[k]
			if ok != wok || (ok && v != want+1) {
				t.Fatalf("op %d: get(%d) = %d/%v, model %d/%v", i, k, v, ok, want, wok)
			}
		}
	}
}

func hasKey(m map[mem.Word]mem.Word, k mem.Word) bool {
	_, ok := m[k]
	return ok
}

// --- RadixTree.Delete ---

func TestRadixDelete(t *testing.T) {
	acc := newAcc()
	rt := NewRadixTree(acc, newHeap(), 0, 16)
	rt.Insert(acc, 100, 1)
	rt.Insert(acc, 200, 2)
	if !rt.Delete(acc, 100) {
		t.Fatal("delete failed")
	}
	if _, ok := rt.Get(acc, 100); ok {
		t.Error("key readable after delete")
	}
	if v, ok := rt.Get(acc, 200); !ok || v != 2 {
		t.Error("sibling key lost")
	}
	if rt.Delete(acc, 100) || rt.Delete(acc, 12345) {
		t.Error("delete of absent key succeeded")
	}
	rt.Insert(acc, 100, 9) // reinsert over the cleared slot
	if v, _ := rt.Get(acc, 100); v != 9 {
		t.Error("reinsert failed")
	}
}

// --- CritBitTrie.Delete ---

func TestCritBitDelete(t *testing.T) {
	acc := newAcc()
	cb := NewCritBitTrie(acc, newHeap(), 0)
	if cb.Delete(acc, 1) {
		t.Error("delete from empty trie succeeded")
	}
	cb.Insert(acc, 5, 50)
	if !cb.Delete(acc, 5) {
		t.Fatal("single-leaf delete failed")
	}
	if _, ok := cb.Get(acc, 5); ok {
		t.Error("key survived delete")
	}
	// Rebuild and delete interior leaves.
	keys := []mem.Word{1, 2, 3, 8, 16, 5, 7}
	for _, k := range keys {
		cb.Insert(acc, k, k*10)
	}
	if !cb.Delete(acc, 3) || !cb.Delete(acc, 16) {
		t.Fatal("delete failed")
	}
	for _, k := range []mem.Word{1, 2, 8, 5, 7} {
		if v, ok := cb.Get(acc, k); !ok || v != k*10 {
			t.Errorf("key %d lost after deletes", k)
		}
	}
	for _, k := range []mem.Word{3, 16} {
		if _, ok := cb.Get(acc, k); ok {
			t.Errorf("deleted key %d still present", k)
		}
	}
}

func TestCritBitChurnAgainstModel(t *testing.T) {
	acc := newAcc()
	cb := NewCritBitTrie(acc, newHeap(), 0)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6000; i++ {
		k := mem.Word(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0:
			cb.Insert(acc, k, mem.Word(i))
			model[k] = mem.Word(i)
		case 1:
			got := cb.Delete(acc, k)
			if got != hasKey(model, k) {
				t.Fatalf("op %d: delete(%d) = %v", i, k, got)
			}
			delete(model, k)
		case 2:
			v, ok := cb.Get(acc, k)
			want, wok := model[k]
			if ok != wok || (ok && v != want) {
				t.Fatalf("op %d: get(%d) = %d/%v want %d/%v", i, k, v, ok, want, wok)
			}
		}
	}
}

// --- RBTree.Delete ---

func TestRBTreeDeleteBasic(t *testing.T) {
	acc := newAcc()
	rb := NewRBTree(acc, newHeap(), 0)
	for _, k := range []mem.Word{10, 5, 15, 3, 8, 12, 20} {
		rb.Insert(acc, k, k)
	}
	if rb.Delete(acc, 999) {
		t.Error("delete of absent key succeeded")
	}
	for _, k := range []mem.Word{5, 10, 20, 3, 15, 8, 12} {
		if !rb.Delete(acc, k) {
			t.Fatalf("delete %d failed", k)
		}
		if _, ok := rb.Get(acc, k); ok {
			t.Fatalf("key %d survived delete", k)
		}
		if _, err := rb.CheckInvariants(acc); err != "" {
			t.Fatalf("after deleting %d: %s", k, err)
		}
	}
	if rb.root(acc) != 0 {
		t.Error("tree not empty after deleting everything")
	}
}

func TestRBTreeChurnInvariants(t *testing.T) {
	acc := newAcc()
	rb := NewRBTree(acc, newHeap(), 0)
	model := map[mem.Word]mem.Word{}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6000; i++ {
		k := mem.Word(rng.Intn(400)) + 1
		switch rng.Intn(3) {
		case 0:
			rb.Insert(acc, k, mem.Word(i))
			model[k] = mem.Word(i)
		case 1:
			got := rb.Delete(acc, k)
			if got != hasKey(model, k) {
				t.Fatalf("op %d: delete(%d) = %v, model %v", i, k, got, hasKey(model, k))
			}
			delete(model, k)
		case 2:
			v, ok := rb.Get(acc, k)
			want, wok := model[k]
			if ok != wok || (ok && v != want) {
				t.Fatalf("op %d: get(%d) mismatch", i, k)
			}
		}
		if i%211 == 0 {
			if _, err := rb.CheckInvariants(acc); err != "" {
				t.Fatalf("op %d: %s", i, err)
			}
		}
	}
	if _, err := rb.CheckInvariants(acc); err != "" {
		t.Fatal(err)
	}
	for k, want := range model {
		if v, ok := rb.Get(acc, k); !ok || v != want {
			t.Fatalf("final state: key %d = %d/%v want %d", k, v, ok, want)
		}
	}
}

// --- BTree.Delete ---

func TestBTreeDeleteBasic(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	keys := []mem.Word{50, 30, 70, 10, 40, 60, 80, 20, 90, 35, 45, 55, 65}
	for _, k := range keys {
		bt.Insert(acc, k)
	}
	if bt.Delete(acc, 999) {
		t.Error("delete of absent key succeeded")
	}
	for _, k := range keys {
		if !bt.Delete(acc, k) {
			t.Fatalf("delete %d failed", k)
		}
		if bt.Contains(acc, k) {
			t.Fatalf("key %d survived delete", k)
		}
	}
	n := 0
	bt.Walk(acc, func(mem.Word) { n++ })
	if n != 0 {
		t.Errorf("%d keys remain after deleting everything", n)
	}
}

func TestBTreeChurnAgainstModel(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	model := map[mem.Word]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8000; i++ {
		k := mem.Word(rng.Intn(500)) + 1
		switch rng.Intn(3) {
		case 0:
			bt.Insert(acc, k)
			model[k] = true
		case 1:
			got := bt.Delete(acc, k)
			if got != model[k] {
				t.Fatalf("op %d: delete(%d) = %v, model %v", i, k, got, model[k])
			}
			delete(model, k)
		case 2:
			if bt.Contains(acc, k) != model[k] {
				t.Fatalf("op %d: contains(%d) mismatch", i, k)
			}
		}
		if i%499 == 0 {
			assertBTreeSorted(t, bt, acc, model)
		}
	}
	assertBTreeSorted(t, bt, acc, model)
}

func assertBTreeSorted(t *testing.T, bt *BTree, acc Accessor, model map[mem.Word]bool) {
	t.Helper()
	var got []mem.Word
	bt.Walk(acc, func(k mem.Word) { got = append(got, k) })
	if len(got) != len(model) {
		t.Fatalf("tree has %d keys, model %d", len(got), len(model))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("walk not sorted after deletes")
	}
	for _, k := range got {
		if !model[k] {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestBTreeDeleteShrinksRoot(t *testing.T) {
	acc := newAcc()
	bt := NewBTree(acc, newHeap(), 0)
	for i := 1; i <= 64; i++ {
		bt.Insert(acc, mem.Word(i))
	}
	deep := bt.Depth(acc)
	for i := 1; i <= 60; i++ {
		bt.Delete(acc, mem.Word(i))
	}
	if d := bt.Depth(acc); d >= deep {
		t.Errorf("depth %d did not shrink from %d after mass deletion", d, deep)
	}
	for i := 61; i <= 64; i++ {
		if !bt.Contains(acc, mem.Word(i)) {
			t.Errorf("survivor %d missing", i)
		}
	}
}
