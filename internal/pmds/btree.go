package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// BTree is the Btree micro-benchmark structure: a 2-3-4 B-tree (CLRS
// minimum degree t = 2) whose every node occupies exactly one 64 B
// cacheline: word0 holds leaf flag and key count, words1..3 the keys and
// words4..7 the child pointers. Transactions randomly insert keys
// (Table III).
//
// Node layout:
//
//	w0: meta — bit0 leaf flag, bits 8.. key count
//	w1..w3: keys (ascending)
//	w4..w7: children (internal nodes only)
type BTree struct {
	rootPtr mem.Addr // PM word holding the root node address
	heap    *pmheap.Heap
	arena   int
}

const btMaxKeys = 3

// NewBTree allocates an empty tree in arena.
func NewBTree(acc Accessor, heap *pmheap.Heap, arena int) *BTree {
	t := &BTree{rootPtr: heap.Alloc(arena, mem.WordSize, mem.WordSize), heap: heap, arena: arena}
	root := t.newNode(acc, true)
	acc.Store(t.rootPtr, mem.Word(root))
	return t
}

func (t *BTree) newNode(acc Accessor, leaf bool) mem.Addr {
	n := t.heap.AllocLines(t.arena, 1)
	meta := mem.Word(0)
	if leaf {
		meta = 1
	}
	acc.Store(word(n, 0), meta)
	return n
}

func btLeaf(meta mem.Word) bool { return meta&1 != 0 }
func btN(meta mem.Word) int     { return int(meta >> 8) }
func btMeta(leaf bool, n int) mem.Word {
	m := mem.Word(n) << 8
	if leaf {
		m |= 1
	}
	return m
}

func (t *BTree) key(acc Accessor, n mem.Addr, i int) mem.Word {
	return acc.Load(word(n, 1+i))
}
func (t *BTree) child(acc Accessor, n mem.Addr, i int) mem.Addr {
	return mem.Addr(acc.Load(word(n, 4+i)))
}

// Contains reports whether key is in the tree.
func (t *BTree) Contains(acc Accessor, key mem.Word) bool {
	n := mem.Addr(acc.Load(t.rootPtr))
	for {
		meta := acc.Load(word(n, 0))
		cnt := btN(meta)
		i := 0
		for i < cnt && key > t.key(acc, n, i) {
			i++
		}
		if i < cnt && key == t.key(acc, n, i) {
			return true
		}
		if btLeaf(meta) {
			return false
		}
		n = t.child(acc, n, i)
	}
}

// Insert adds key (a set: duplicate inserts are no-ops). It uses
// preemptive splitting, so every node on the descent has room.
func (t *BTree) Insert(acc Accessor, key mem.Word) {
	root := mem.Addr(acc.Load(t.rootPtr))
	if btN(acc.Load(word(root, 0))) == btMaxKeys {
		s := t.newNode(acc, false)
		acc.Store(word(s, 4), mem.Word(root))
		t.splitChild(acc, s, 0)
		acc.Store(t.rootPtr, mem.Word(s))
		root = s
	}
	t.insertNonFull(acc, root, key)
}

// splitChild splits x's full child i into two nodes, hoisting the median
// key into x.
func (t *BTree) splitChild(acc Accessor, x mem.Addr, i int) {
	y := t.child(acc, x, i)
	ymeta := acc.Load(word(y, 0))
	leaf := btLeaf(ymeta)

	z := t.newNode(acc, leaf)
	// z takes y's last key (index 2).
	acc.Store(word(z, 1), t.key(acc, y, 2))
	if !leaf {
		acc.Store(word(z, 4), mem.Word(t.child(acc, y, 2)))
		acc.Store(word(z, 5), mem.Word(t.child(acc, y, 3)))
	}
	acc.Store(word(z, 0), btMeta(leaf, 1))
	median := t.key(acc, y, 1)
	acc.Store(word(y, 0), btMeta(leaf, 1))

	// Shift x's keys/children right of slot i and link z.
	xmeta := acc.Load(word(x, 0))
	xn := btN(xmeta)
	for j := xn; j > i; j-- {
		acc.Store(word(x, 1+j), t.key(acc, x, j-1))
	}
	for j := xn + 1; j > i+1; j-- {
		acc.Store(word(x, 4+j), mem.Word(t.child(acc, x, j-1)))
	}
	acc.Store(word(x, 1+i), median)
	acc.Store(word(x, 4+i+1), mem.Word(z))
	acc.Store(word(x, 0), btMeta(btLeaf(xmeta), xn+1))
}

func (t *BTree) insertNonFull(acc Accessor, n mem.Addr, key mem.Word) {
	for {
		meta := acc.Load(word(n, 0))
		cnt := btN(meta)
		i := 0
		for i < cnt && key > t.key(acc, n, i) {
			i++
		}
		if i < cnt && key == t.key(acc, n, i) {
			return // duplicate
		}
		if btLeaf(meta) {
			for j := cnt; j > i; j-- {
				acc.Store(word(n, 1+j), t.key(acc, n, j-1))
			}
			acc.Store(word(n, 1+i), key)
			acc.Store(word(n, 0), btMeta(true, cnt+1))
			return
		}
		c := t.child(acc, n, i)
		if btN(acc.Load(word(c, 0))) == btMaxKeys {
			t.splitChild(acc, n, i)
			if key == t.key(acc, n, i) {
				return
			}
			if key > t.key(acc, n, i) {
				i++
			}
			c = t.child(acc, n, i)
		}
		n = c
	}
}

// Depth returns the tree height (root = 1), for tests.
func (t *BTree) Depth(acc Accessor) int {
	n := mem.Addr(acc.Load(t.rootPtr))
	d := 1
	for !btLeaf(acc.Load(word(n, 0))) {
		n = t.child(acc, n, 0)
		d++
	}
	return d
}

// Walk calls fn for every key in ascending order, for tests.
func (t *BTree) Walk(acc Accessor, fn func(key mem.Word)) {
	t.walk(acc, mem.Addr(acc.Load(t.rootPtr)), fn)
}

func (t *BTree) walk(acc Accessor, n mem.Addr, fn func(mem.Word)) {
	meta := acc.Load(word(n, 0))
	cnt := btN(meta)
	leaf := btLeaf(meta)
	for i := 0; i < cnt; i++ {
		if !leaf {
			t.walk(acc, t.child(acc, n, i), fn)
		}
		fn(t.key(acc, n, i))
	}
	if !leaf {
		t.walk(acc, t.child(acc, n, cnt), fn)
	}
}
