package pmds

import (
	"silo/internal/mem"
	"silo/internal/pmheap"
)

// LevelHash is the write-optimized persistent hash of Zuo et al.
// (OSDI'18), which the paper's related work cites: two levels of
// 4-slot buckets where each key hashes to two candidate top-level buckets;
// every pair of top buckets shares one bottom bucket as overflow, and an
// insert may move at most one existing item to its alternate location —
// bounding the writes per insert, the property that matters on PM.
//
// Bucket layout: one 64 B cacheline, 4 slots × (key, value); key 0 means
// empty.
type LevelHash struct {
	top    mem.Addr // topBuckets cachelines
	bottom mem.Addr // topBuckets/2 cachelines
	nTop   uint64
}

const lhSlots = 4

// NewLevelHash allocates a table with topBuckets top-level buckets
// (a power of two, >= 4).
func NewLevelHash(heap *pmheap.Heap, arena, topBuckets int) *LevelHash {
	if topBuckets < 4 || topBuckets&(topBuckets-1) != 0 {
		panic("pmds: top bucket count must be a power of two >= 4")
	}
	return &LevelHash{
		top:    heap.AllocLines(arena, topBuckets),
		bottom: heap.AllocLines(arena, topBuckets/2),
		nTop:   uint64(topBuckets),
	}
}

func (h *LevelHash) slot(base mem.Addr, bucket uint64, s int) mem.Addr {
	return base + mem.Addr(bucket*mem.LineSize) + mem.Addr(s*2*mem.WordSize)
}

// hash positions: two independent top-level candidates.
func (h *LevelHash) pos(key mem.Word) (uint64, uint64) {
	h1 := mix64(uint64(key)) % h.nTop
	h2 := mix64(uint64(key)^0x9E3779B97F4A7C15) % h.nTop
	if h2 == h1 {
		h2 = (h1 + 1) % h.nTop
	}
	return h1, h2
}

// lookup scans one bucket for key, returning the slot address.
func (h *LevelHash) lookup(acc Accessor, base mem.Addr, bucket uint64, key mem.Word) (mem.Addr, bool) {
	for s := 0; s < lhSlots; s++ {
		a := h.slot(base, bucket, s)
		if acc.Load(a) == key {
			return a, true
		}
	}
	return 0, false
}

// Get returns the value for key.
func (h *LevelHash) Get(acc Accessor, key mem.Word) (mem.Word, bool) {
	if key == 0 {
		panic("pmds: key 0 is reserved")
	}
	b1, b2 := h.pos(key)
	for _, c := range []struct {
		base   mem.Addr
		bucket uint64
	}{{h.top, b1}, {h.top, b2}, {h.bottom, b1 / 2}, {h.bottom, b2 / 2}} {
		if a, ok := h.lookup(acc, c.base, c.bucket, key); ok {
			return acc.Load(a + mem.WordSize), true
		}
	}
	return 0, false
}

// put tries to claim an empty slot in one bucket.
func (h *LevelHash) put(acc Accessor, base mem.Addr, bucket uint64, key, val mem.Word) bool {
	for s := 0; s < lhSlots; s++ {
		a := h.slot(base, bucket, s)
		if acc.Load(a) == 0 {
			acc.Store(a+mem.WordSize, val)
			acc.Store(a, key) // key last: slot becomes visible atomically
			return true
		}
	}
	return false
}

// Insert maps key → val. It tries, in order: update in place; an empty
// slot in either top candidate; the shared bottom buckets; then a single
// movement (relocate one resident of a top candidate to its alternate
// bucket). It reports false when the table needs a resize (not modeled).
func (h *LevelHash) Insert(acc Accessor, key, val mem.Word) bool {
	if key == 0 {
		panic("pmds: key 0 is reserved")
	}
	b1, b2 := h.pos(key)
	// Update in place.
	for _, c := range []struct {
		base   mem.Addr
		bucket uint64
	}{{h.top, b1}, {h.top, b2}, {h.bottom, b1 / 2}, {h.bottom, b2 / 2}} {
		if a, ok := h.lookup(acc, c.base, c.bucket, key); ok {
			acc.Store(a+mem.WordSize, val)
			return true
		}
	}
	// Empty slots, cheapest first.
	if h.put(acc, h.top, b1, key, val) || h.put(acc, h.top, b2, key, val) {
		return true
	}
	if h.put(acc, h.bottom, b1/2, key, val) || h.put(acc, h.bottom, b2/2, key, val) {
		return true
	}
	// One movement: evict a resident of a top candidate to its alternate
	// top bucket if that has room.
	for _, bucket := range []uint64{b1, b2} {
		for s := 0; s < lhSlots; s++ {
			a := h.slot(h.top, bucket, s)
			rk := acc.Load(a)
			r1, r2 := h.pos(rk)
			alt := r1
			if alt == bucket {
				alt = r2
			}
			if alt == bucket {
				continue
			}
			if h.put(acc, h.top, alt, rk, acc.Load(a+mem.WordSize)) {
				acc.Store(a+mem.WordSize, val)
				acc.Store(a, key)
				return true
			}
		}
	}
	return false // caller would resize
}

// Delete removes key, reporting whether it was present.
func (h *LevelHash) Delete(acc Accessor, key mem.Word) bool {
	if key == 0 {
		panic("pmds: key 0 is reserved")
	}
	b1, b2 := h.pos(key)
	for _, c := range []struct {
		base   mem.Addr
		bucket uint64
	}{{h.top, b1}, {h.top, b2}, {h.bottom, b1 / 2}, {h.bottom, b2 / 2}} {
		if a, ok := h.lookup(acc, c.base, c.bucket, key); ok {
			acc.Store(a, 0) // clearing the key frees the slot atomically
			return true
		}
	}
	return false
}
