package telemetry

import "sync"

// LiveSink is a bounded, drop-counting Sink for live consumers — the
// bridge between the engine goroutine and silo-serve's SSE streams.
//
// Event appends into a fixed-size ring under a mutex and returns: it
// never blocks on a consumer, never allocates after construction, and
// holds at most Capacity events. Subscribers read at their own pace
// through cursors; when the producer laps a cursor the overrun events
// are *dropped for that subscriber* and counted — slow consumers lose
// data loudly instead of stalling the simulation.
//
// A LiveSink observes the probe stream without touching simulated state,
// so a run with a LiveSink attached produces byte-identical stats.Run
// results to a detached run (see TestLiveSinkDoesNotPerturbRun).
type LiveSink struct {
	mu     sync.Mutex
	buf    []Event
	seq    uint64 // events ever written; next write lands at buf[seq%cap]
	closed bool
	subs   map[*LiveSub]struct{}
	drops  uint64 // total events dropped across all subscribers
}

// DefaultLiveCapacity is the ring size when NewLiveSink is given 0.
const DefaultLiveCapacity = 8192

// NewLiveSink builds a live sink with the given ring capacity
// (0 → DefaultLiveCapacity, minimum 16).
func NewLiveSink(capacity int) *LiveSink {
	if capacity <= 0 {
		capacity = DefaultLiveCapacity
	}
	if capacity < 16 {
		capacity = 16
	}
	return &LiveSink{
		buf:  make([]Event, capacity),
		subs: make(map[*LiveSub]struct{}),
	}
}

// Event implements Sink. It is called on the engine goroutine and must
// stay cheap: one mutex round trip, one ring-slot copy, one non-blocking
// wakeup per subscriber.
func (s *LiveSink) Event(e Event) {
	s.mu.Lock()
	s.buf[s.seq%uint64(len(s.buf))] = e
	s.seq++
	for sub := range s.subs {
		select {
		case sub.ready <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// Close marks the stream finished and wakes every subscriber. Events
// already in the ring stay readable; further Event calls are still safe
// (crash paths may emit after the server decided the run is over) and
// remain visible to subscribers that have not drained yet.
func (s *LiveSink) Close() {
	s.mu.Lock()
	s.closed = true
	for sub := range s.subs {
		select {
		case sub.ready <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// Drops returns the total number of events dropped across all
// subscribers so far (a subscriber that unsubscribes keeps its
// contribution).
func (s *LiveSink) Drops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Seq returns the total number of events written so far.
func (s *LiveSink) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Subscribe registers a new reader positioned at the oldest event still
// in the ring (or live tail for an empty ring). Call LiveSub.Cancel when
// done.
func (s *LiveSink) Subscribe() *LiveSub {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub := &LiveSub{sink: s, next: 0, ready: make(chan struct{}, 1)}
	if n := uint64(len(s.buf)); s.seq > n {
		sub.next = s.seq - n
	}
	s.subs[sub] = struct{}{}
	if s.seq > sub.next || s.closed {
		sub.ready <- struct{}{}
	}
	return sub
}

// LiveSub is one subscriber's cursor into a LiveSink.
type LiveSub struct {
	sink  *LiveSink
	next  uint64
	drops uint64
	ready chan struct{}
}

// Poll copies pending events into out and advances the cursor. It
// returns the number of events copied, how many events this call had to
// skip because the producer lapped the cursor, and whether the stream
// can still produce more (false only once the sink is closed *and* the
// cursor has drained it). It never blocks.
func (sub *LiveSub) Poll(out []Event) (n int, dropped uint64, open bool) {
	s := sub.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	capacity := uint64(len(s.buf))
	if s.seq > capacity && sub.next < s.seq-capacity {
		dropped = s.seq - capacity - sub.next
		sub.next = s.seq - capacity
		sub.drops += dropped
		s.drops += dropped
	}
	for n < len(out) && sub.next < s.seq {
		out[n] = s.buf[sub.next%capacity]
		sub.next++
		n++
	}
	open = !s.closed || sub.next < s.seq
	return n, dropped, open
}

// Ready returns a channel that receives (capacity 1, never closed) when
// new events may be available or the sink closes. The loop is
// Poll-then-wait: drain with Poll, block on Ready, Poll again — the
// buffered token makes the wakeup race-free.
func (sub *LiveSub) Ready() <-chan struct{} { return sub.ready }

// Drops returns the events this subscriber has skipped so far.
func (sub *LiveSub) Drops() uint64 {
	s := sub.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	return sub.drops
}

// Cancel unregisters the subscriber.
func (sub *LiveSub) Cancel() {
	s := sub.sink
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}
