package telemetry

import (
	"sync"
	"testing"
)

func TestLiveSinkDeliversInOrder(t *testing.T) {
	s := NewLiveSink(64)
	sub := s.Subscribe()
	defer sub.Cancel()

	for i := 0; i < 10; i++ {
		s.Event(Event{Cycle: 1, Kind: KTxCommit, A: int64(i)})
	}
	out := make([]Event, 32)
	n, dropped, open := sub.Poll(out)
	if n != 10 || dropped != 0 || !open {
		t.Fatalf("Poll = (%d, %d, %v), want (10, 0, true)", n, dropped, open)
	}
	for i := 0; i < 10; i++ {
		if out[i].A != int64(i) {
			t.Fatalf("out[%d].A = %d, want %d", i, out[i].A, i)
		}
	}
	// No new events: Poll is empty but the stream stays open.
	if n, _, open := sub.Poll(out); n != 0 || !open {
		t.Fatalf("idle Poll = (%d, open=%v), want (0, true)", n, open)
	}
	s.Close()
	if _, _, open := sub.Poll(out); open {
		t.Fatal("stream still open after Close and full drain")
	}
}

func TestLiveSinkLapDropsAreCounted(t *testing.T) {
	s := NewLiveSink(16)
	sub := s.Subscribe()
	defer sub.Cancel()

	// Write 40 events into a 16-slot ring: the cursor is lapped and only
	// the newest 16 survive; 24 must be reported dropped.
	for i := 0; i < 40; i++ {
		s.Event(Event{Kind: KWPQWrite, A: int64(i)})
	}
	out := make([]Event, 64)
	n, dropped, _ := sub.Poll(out)
	if n != 16 || dropped != 24 {
		t.Fatalf("Poll = (%d, %d), want (16, 24)", n, dropped)
	}
	if out[0].A != 24 || out[15].A != 39 {
		t.Fatalf("survivors = [%d..%d], want [24..39]", out[0].A, out[15].A)
	}
	if sub.Drops() != 24 || s.Drops() != 24 {
		t.Fatalf("drop counters = (sub %d, sink %d), want (24, 24)", sub.Drops(), s.Drops())
	}
}

func TestLiveSinkLateSubscriberStartsAtOldestRetained(t *testing.T) {
	s := NewLiveSink(16)
	for i := 0; i < 30; i++ {
		s.Event(Event{A: int64(i)})
	}
	sub := s.Subscribe()
	defer sub.Cancel()
	out := make([]Event, 64)
	n, dropped, _ := sub.Poll(out)
	// Joining late is not a drop: the subscriber starts at the oldest
	// event the ring still holds.
	if n != 16 || dropped != 0 {
		t.Fatalf("Poll = (%d, %d), want (16, 0)", n, dropped)
	}
	if out[0].A != 14 {
		t.Fatalf("oldest retained = %d, want 14", out[0].A)
	}
}

func TestLiveSinkReadyWakesBlockedReader(t *testing.T) {
	s := NewLiveSink(16)
	sub := s.Subscribe()
	defer sub.Cancel()

	got := make(chan int64, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]Event, 4)
		for {
			if n, _, open := sub.Poll(out); n > 0 {
				got <- out[0].A
				return
			} else if !open {
				got <- -1
				return
			}
			<-sub.Ready()
		}
	}()
	s.Event(Event{A: 77})
	wg.Wait()
	if v := <-got; v != 77 {
		t.Fatalf("woken reader saw %d, want 77", v)
	}
}

func TestLiveSinkCloseWakesIdleReader(t *testing.T) {
	s := NewLiveSink(16)
	sub := s.Subscribe()
	defer sub.Cancel()
	done := make(chan bool, 1)
	go func() {
		out := make([]Event, 4)
		for {
			n, _, open := sub.Poll(out)
			if !open {
				done <- true
				return
			}
			if n == 0 {
				<-sub.Ready()
			}
		}
	}()
	s.Close()
	if !<-done {
		t.Fatal("reader did not observe close")
	}
}

func TestLiveSinkEventAfterCloseStaysReadable(t *testing.T) {
	s := NewLiveSink(16)
	sub := s.Subscribe()
	defer sub.Cancel()
	s.Close()
	s.Event(Event{Kind: KCrash, A: 9}) // crash paths may emit after Close
	out := make([]Event, 4)
	n, _, open := sub.Poll(out)
	if n != 1 || out[0].A != 9 {
		t.Fatalf("post-close event: n=%d", n)
	}
	if open {
		t.Fatal("stream open after close and drain")
	}
	if s.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", s.Seq())
	}
}

func TestLiveSinkCapacityFloors(t *testing.T) {
	if got := len(NewLiveSink(0).buf); got != DefaultLiveCapacity {
		t.Errorf("capacity(0) = %d, want %d", got, DefaultLiveCapacity)
	}
	if got := len(NewLiveSink(3).buf); got != 16 {
		t.Errorf("capacity(3) = %d, want 16", got)
	}
}

// BenchmarkLiveSinkEvent measures the per-event cost the engine pays
// with a LiveSink attached (no subscriber / one idle subscriber) — the
// serve-overhead numbers quoted in EXPERIMENTS.md.
func BenchmarkLiveSinkEvent(b *testing.B) {
	b.Run("no-subscriber", func(b *testing.B) {
		s := NewLiveSink(8192)
		e := Event{Cycle: 1, Kind: KWPQWrite, A: 3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Event(e)
		}
	})
	b.Run("idle-subscriber", func(b *testing.B) {
		s := NewLiveSink(8192)
		sub := s.Subscribe()
		defer sub.Cancel()
		e := Event{Cycle: 1, Kind: KWPQWrite, A: 3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Event(e)
		}
	})
}
