package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"silo/internal/sim"
)

// Synthetic thread IDs for shared-resource tracks. Cores occupy tids
// 0..N-1; WPQ channel c occupies TIDWPQBase+c.
const (
	TIDLLC      = 1000
	TIDPM       = 1001
	TIDLog      = 1002
	TIDRecovery = 1003
	TIDWPQBase  = 1100
	// Cluster tracks: the router gets one instant track; node n's queue
	// depth and availability transitions ride TIDNodeBase+n.
	TIDRouter   = 1200
	TIDNodeBase = 1300
)

// cyclesToMicros converts simulated cycles to trace microseconds at the
// machine's 2 GHz clock (1 cycle = 0.5 ns = 0.0005 µs). The conversion is
// monotone, so per-track timestamp ordering survives it.
func cyclesToMicros(c sim.Cycle) float64 { return float64(c) * 0.0005 }

// ChromeTrace is a streaming Sink that writes Chrome trace-event JSON
// (the array format), loadable in Perfetto and chrome://tracing. Layout:
//
//   - one duration track per core carrying B/E transaction slices,
//   - instant tracks for the LLC, PM device, log hardware and recovery,
//   - counter tracks for per-channel WPQ depth and per-core log-buffer
//     occupancy (plus crash-energy draw).
//
// Events stream straight to the writer, so traces of arbitrarily long
// runs hold no per-event memory. Close flushes, ends any transaction
// slices left open by a crash, and terminates the JSON array.
type ChromeTrace struct {
	w     *bufio.Writer
	first bool // next event is the first array element
	err   error

	named   map[int]bool      // tids whose thread_name metadata is out
	openTx  map[int]bool      // cores with an open B slice
	lastTS  map[int]sim.Cycle // per-tid last emitted cycle (monotonicity clamp)
	process string
}

// NewChromeTrace starts a trace stream on w. The caller keeps ownership
// of any underlying file; Close flushes the sink only.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	t := &ChromeTrace{
		w:       bufio.NewWriterSize(w, 1<<16),
		first:   true,
		named:   make(map[int]bool),
		openTx:  make(map[int]bool),
		lastTS:  make(map[int]sim.Cycle),
		process: "silo",
	}
	t.raw(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"silo machine"}}`)
	return t
}

func (t *ChromeTrace) raw(json string) {
	if t.err != nil {
		return
	}
	if t.first {
		_, t.err = t.w.WriteString("[\n")
		t.first = false
	} else {
		_, t.err = t.w.WriteString(",\n")
	}
	if t.err == nil {
		_, t.err = t.w.WriteString(json)
	}
}

// ensureTrack emits thread_name metadata once per tid.
func (t *ChromeTrace) ensureTrack(tid int, name string) {
	if t.named[tid] {
		return
	}
	t.named[tid] = true
	t.raw(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name))
	// sort_index keeps core tracks on top, then channels, then shared.
	t.raw(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tid, tid))
}

// ts clamps the event cycle to be nondecreasing per tid. Component
// streams are already ordered (engine contract); the clamp guards the
// file-format invariant against any cross-component interleaving.
func (t *ChromeTrace) ts(tid int, c sim.Cycle) float64 {
	if last := t.lastTS[tid]; c < last {
		c = last
	}
	t.lastTS[tid] = c
	return cyclesToMicros(c)
}

func (t *ChromeTrace) slice(ph string, tid int, c sim.Cycle, name string, args string) {
	if args == "" {
		t.raw(fmt.Sprintf(`{"ph":%q,"pid":1,"tid":%d,"ts":%.4f,"name":%q,"cat":"silo"}`,
			ph, tid, t.ts(tid, c), name))
		return
	}
	t.raw(fmt.Sprintf(`{"ph":%q,"pid":1,"tid":%d,"ts":%.4f,"name":%q,"cat":"silo","args":{%s}}`,
		ph, tid, t.ts(tid, c), name, args))
}

func (t *ChromeTrace) instant(tid int, c sim.Cycle, name string, args string) {
	if args == "" {
		t.raw(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%.4f,"name":%q,"cat":"silo","s":"t"}`,
			tid, t.ts(tid, c), name))
		return
	}
	t.raw(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%.4f,"name":%q,"cat":"silo","s":"t","args":{%s}}`,
		tid, t.ts(tid, c), name, args))
}

// counter emits a "C" event. Counter tracks are keyed by name, so they
// ride on pid 1 with a stable per-series name.
func (t *ChromeTrace) counter(tid int, c sim.Cycle, name string, series string, v int64) {
	t.raw(fmt.Sprintf(`{"ph":"C","pid":1,"tid":%d,"ts":%.4f,"name":%q,"cat":"silo","args":{%q:%d}}`,
		tid, t.ts(tid, c), name, series, v))
}

// Event implements Sink.
func (t *ChromeTrace) Event(e Event) {
	if t.err != nil {
		return
	}
	switch e.Kind {
	case KTxBegin:
		tid := int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("core %d", tid))
		if t.openTx[tid] { // defensive: close a dangling slice first
			t.slice("E", tid, e.Cycle, "tx", "")
		}
		t.openTx[tid] = true
		t.slice("B", tid, e.Cycle, "tx", fmt.Sprintf(`"commits":%d`, e.A))
	case KTxCommit:
		tid := int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("core %d", tid))
		if !t.openTx[tid] {
			// Commit without a recorded begin (sink attached mid-run):
			// render as an instant so the track still shows it.
			t.instant(tid, e.Cycle, "tx-commit",
				fmt.Sprintf(`"stall":%d,"words":%d`, e.A, e.B))
			break
		}
		t.openTx[tid] = false
		t.slice("E", tid, e.Cycle, "tx",
			fmt.Sprintf(`"stall":%d,"words":%d,"txlat":%d`, e.A, e.B, e.C))
	case KCrash:
		t.ensureTrack(TIDPM, "pm device")
		t.instant(TIDPM, e.Cycle, "CRASH", fmt.Sprintf(`"commits":%d,"ops":%d`, e.A, e.B))
	case KLLCEvict:
		t.ensureTrack(TIDLLC, "llc")
		t.instant(TIDLLC, e.Cycle, "evict", fmt.Sprintf(`"line":"%#x"`, uint64(e.Addr)))
	case KFlushBitSet:
		t.ensureTrack(TIDLLC, "llc")
		t.instant(TIDLLC, e.Cycle, "flush-bit-set",
			fmt.Sprintf(`"core":%d,"line":"%#x","entries":%d`, e.Core, uint64(e.Addr), e.A))
	case KFlushBitClear:
		t.ensureTrack(TIDLLC, "llc")
		t.instant(TIDLLC, e.Cycle, "flush-bit-clear",
			fmt.Sprintf(`"core":%d,"entries":%d`, e.Core, e.A))
	case KWPQWrite:
		tid := TIDWPQBase + int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("wpq ch%d", e.Core))
		t.counter(tid, e.Cycle, fmt.Sprintf("wpq-depth ch%d", e.Core), "depth", e.A)
		if e.B > 0 {
			t.instant(tid, e.Cycle, "wpq-stall", fmt.Sprintf(`"cycles":%d`, e.B))
		}
	case KPMBufOpen:
		t.ensureTrack(TIDPM, "pm device")
		t.instant(TIDPM, e.Cycle, "buf-open",
			fmt.Sprintf(`"base":"%#x","bytes":%d`, uint64(e.Addr), e.A))
	case KPMBufMerge:
		t.ensureTrack(TIDPM, "pm device")
		t.instant(TIDPM, e.Cycle, "buf-merge",
			fmt.Sprintf(`"base":"%#x","bytes":%d`, uint64(e.Addr), e.A))
	case KPMBufWriteback:
		t.ensureTrack(TIDPM, "pm device")
		t.instant(TIDPM, e.Cycle, "buf-writeback",
			fmt.Sprintf(`"base":"%#x","programmed":%d,"dcw_suppressed":%d,"reqs":%d`,
				uint64(e.Addr), e.A, e.B, e.C))
	case KCrashEnergy:
		t.ensureTrack(TIDPM, "pm device")
		t.counter(TIDPM, e.Cycle, "crash-energy draw", "bytes", e.B)
	case KLogBufOcc:
		tid := int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("core %d", tid))
		t.counter(tid, e.Cycle, fmt.Sprintf("logbuf-occupancy core%d", e.Core), "entries", e.A)
	case KLogOverflow:
		t.ensureTrack(TIDLog, "log hw")
		t.instant(TIDLog, e.Cycle, "overflow",
			fmt.Sprintf(`"core":%d,"evicted":%d`, e.Core, e.A))
	case KLogSeal:
		t.ensureTrack(TIDLog, "log hw")
		t.instant(TIDLog, e.Cycle, "seal",
			fmt.Sprintf(`"tid":%d,"records":%d,"bytes":%d`, e.Core, e.A, e.B))
	case KLogCrashFlush:
		t.ensureTrack(TIDLog, "log hw")
		t.instant(TIDLog, e.Cycle, "crash-flush",
			fmt.Sprintf(`"tid":%d,"records":%d,"critical":%d`, e.Core, e.A, e.B))
	case KRecoveryScan:
		t.ensureTrack(TIDRecovery, "recovery")
		t.instant(TIDRecovery, e.Cycle, "scan",
			fmt.Sprintf(`"tid":%d,"records":%d,"quarantined":%d`, e.Core, e.A, e.B))
	case KRecoveryApply:
		t.ensureTrack(TIDRecovery, "recovery")
		t.instant(TIDRecovery, e.Cycle, "apply",
			fmt.Sprintf(`"redo":%d,"undo":%d,"discarded":%d`, e.A, e.B, e.C))
	case KRoute:
		t.ensureTrack(TIDRouter, "cluster router")
		if e.C != 0 {
			t.instant(TIDRouter, e.Cycle, "fast-fail",
				fmt.Sprintf(`"node":%d,"key":%d,"attempt":%d`, e.Core, e.A, e.B))
		} else if e.B > 1 {
			t.instant(TIDRouter, e.Cycle, "retry-route",
				fmt.Sprintf(`"node":%d,"key":%d,"attempt":%d`, e.Core, e.A, e.B))
		}
	case KNodeQueue:
		tid := TIDNodeBase + int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("node %d", e.Core))
		t.counter(tid, e.Cycle, fmt.Sprintf("queue-depth node%d", e.Core), "depth", e.A)
		if e.C != 0 {
			t.instant(tid, e.Cycle, "shed", fmt.Sprintf(`"depth":%d,"cap":%d`, e.A, e.B))
		}
	case KNodeState:
		tid := TIDNodeBase + int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("node %d", e.Core))
		t.instant(tid, e.Cycle, "node-"+nodeStateName(e.A),
			fmt.Sprintf(`"crash":%d`, e.B))
	case KReplLag:
		tid := TIDNodeBase + int(e.Core)
		t.ensureTrack(tid, fmt.Sprintf("node %d", e.Core))
		t.counter(tid, e.Cycle, fmt.Sprintf("repl-lag node%d", e.Core), "cycles", e.A)
	case KNote:
		t.ensureTrack(TIDPM, "pm device")
		t.instant(TIDPM, e.Cycle, "note", fmt.Sprintf(`"text":%s`, quoteJSON(e.Note)))
	}
}

// Close ends open transaction slices (a crash leaves them open), flushes
// buffered output and terminates the JSON array.
func (t *ChromeTrace) Close() error {
	for tid, open := range t.openTx {
		if open {
			t.slice("E", tid, t.lastTS[tid], "tx", `"truncated":"crash"`)
			t.openTx[tid] = false
		}
	}
	if t.first { // no events at all: still emit a valid empty array
		if _, err := t.w.WriteString("[\n"); err != nil && t.err == nil {
			t.err = err
		}
	}
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// quoteJSON escapes a string for direct embedding in the hand-built
// JSON stream (the audit trail's notes can contain anything).
func quoteJSON(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
