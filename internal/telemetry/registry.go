package telemetry

import (
	"sort"
	"sync"

	"silo/internal/stats"
)

// Counter is a monotonically increasing metric. The nil *Counter is
// inert, so registry lookups on a disabled recorder cost nothing.
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time level with a retained high-water mark.
// The nil *Gauge is inert.
type Gauge struct {
	v, max int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the most recent level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 for a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Registry names and owns metric instruments. Instruments are created on
// first lookup; lookups on a nil registry return nil instruments whose
// methods are all no-ops, which keeps instrumented code unconditional.
//
// The registry itself is mutex-guarded (the torture fleet runs machines
// on many goroutines); individual instruments are not, matching the
// engine's one-goroutine-at-a-time execution model within one machine.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*stats.Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency recorder, creating it on first
// use. stats.Histogram methods are nil-receiver-safe, so the nil result
// from a nil registry observes into the void.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &stats.Histogram{}
		r.histograms[name] = h
	}
	return h
}

// MetricValue is one named reading in a registry snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge", "histogram"
	Value int64   `json:"value"`
	Max   int64   `json:"max,omitempty"`  // gauges: high-water; histograms: max sample
	P50   float64 `json:"p50,omitempty"`  // histograms only
	P99   float64 `json:"p99,omitempty"`  // histograms only
	Mean  float64 `json:"mean,omitempty"` // histograms only
}

// Snapshot returns every instrument's current reading, sorted by metric
// name (then kind, for the pathological case of one name used as two
// kinds). The ordering is deterministic so downstream expositions —
// silo-sim's metrics dump, silo-serve's /metrics endpoint — are
// byte-stable across identical runs. Nil registries snapshot empty.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricValue{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricValue{Name: name, Kind: "gauge", Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.histograms {
		out = append(out, MetricValue{
			Name: name, Kind: "histogram",
			Value: h.Count(), Max: h.Max(),
			P50: float64(h.Percentile(50)), P99: float64(h.Percentile(99)), Mean: h.Mean(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
