// Package telemetry is the cycle-accurate observability layer of the
// simulator: a typed, cycle-timestamped probe-event stream plus a metrics
// registry (counters, gauges, histogram-backed latency recorders).
//
// Every architectural layer — core transaction lifecycle, cache hierarchy,
// memory controller, PM device, logging hardware, recovery — emits typed
// probe events through a *Recorder. A nil Recorder is the disabled state:
// every probe method nil-checks its receiver and returns, so the hot path
// costs one predictable branch and zero allocations when telemetry is off.
//
// Probes never alter simulated timing or run statistics: a run with
// telemetry enabled produces byte-identical stats.Run results. Sinks pay
// host wall-clock only.
package telemetry

import (
	"fmt"

	"silo/internal/mem"
	"silo/internal/sim"
)

// Kind enumerates the probe-event types. The payload fields A/B/C of an
// Event are kind-specific; see the constants below.
type Kind uint8

const (
	// KNote is a free-form annotation (Note carries the text). The audit
	// layer uses it for check-site context and violation markers.
	KNote Kind = iota

	// KTxBegin marks Tx_begin on a core. A = transactions committed so far.
	KTxBegin
	// KTxCommit marks Tx_end returning on a core. A = commit stall cycles,
	// B = words written by the transaction, C = whole-transaction latency.
	KTxCommit
	// KCrash marks a power-failure injection. A = committed transactions,
	// B = operations executed.
	KCrash

	// KLLCEvict marks a dirty line leaving the LLC toward the memory
	// controller. Addr = line address. Core = evicting core (-1 shared).
	KLLCEvict
	// KFlushBitSet marks flush-bits set on in-flight log entries after a
	// cacheline eviction (§III-D). Addr = line, A = entries flagged.
	KFlushBitSet
	// KFlushBitClear marks log-buffer deallocation releasing entries at
	// Tx_begin. A = entries released.
	KFlushBitClear

	// KWPQWrite marks one write request accepted into a memory
	// controller's write pending queue. Core = channel, A = queue depth at
	// acceptance, B = stall cycles (acceptance - arrival), C = bytes.
	KWPQWrite

	// KPMBufOpen marks a new on-PM buffer line opened. Addr = line base,
	// A = bytes written.
	KPMBufOpen
	// KPMBufMerge marks a write coalesced into an existing on-PM buffer
	// line (Fig. 9). Addr = line base, A = bytes merged.
	KPMBufMerge
	// KPMBufWriteback marks an on-PM buffer line draining to the media.
	// Addr = line base, A = bytes programmed, B = bytes DCW-suppressed,
	// C = media write requests issued.
	KPMBufWriteback
	// KCrashEnergy marks one crash-flush write drawing on the battery
	// budget. A = bytes requested, B = bytes allowed, C = 1 if critical.
	KCrashEnergy

	// KLogBufOcc samples a core's log-buffer occupancy after it changed.
	// A = occupancy, B = capacity.
	KLogBufOcc
	// KLogOverflow marks a batched overflow eviction (§III-F). Core =
	// thread, A = entries evicted.
	KLogOverflow
	// KLogSeal marks sealed records appended to the PM log region. Core =
	// thread, A = records, B = bytes.
	KLogSeal
	// KLogCrashFlush marks a battery-powered crash-flush append (§III-G).
	// Core = thread, A = records, B = 1 if critical.
	KLogCrashFlush

	// KRecoveryScan reports one thread's checked log scan. Core = thread,
	// A = well-formed records, B = quarantined records.
	KRecoveryScan
	// KRecoveryApply reports a recovery pass's replay totals. A = redo
	// applied, B = undo applied, C = records discarded.
	KRecoveryApply

	// KRoute marks a cluster router decision. Core = target node,
	// A = key hash low bits, B = attempt number, C = 1 when the router
	// fast-failed because the node was marked down.
	KRoute
	// KNodeQueue samples a cluster node's request-queue depth after it
	// changed. Core = node, A = depth, B = capacity, C = 1 when the
	// triggering request was shed (queue full).
	KNodeQueue
	// KNodeState marks a cluster node availability transition. Core =
	// node, A = state (0 up, 1 down, 2 recovering), B = crash ordinal.
	KNodeState
	// KReplLag samples a replica's replication apply: Core = replica
	// node, A = commit-to-apply lag in cycles, B = replication messages
	// still queued behind it.
	KReplLag

	numKinds
)

var kindNames = [numKinds]string{
	KNote:           "note",
	KTxBegin:        "tx-begin",
	KTxCommit:       "tx-commit",
	KCrash:          "crash",
	KLLCEvict:       "llc-evict",
	KFlushBitSet:    "flush-bit-set",
	KFlushBitClear:  "flush-bit-clear",
	KWPQWrite:       "wpq-write",
	KPMBufOpen:      "pmbuf-open",
	KPMBufMerge:     "pmbuf-merge",
	KPMBufWriteback: "pmbuf-writeback",
	KCrashEnergy:    "crash-energy",
	KLogBufOcc:      "logbuf-occ",
	KLogOverflow:    "log-overflow",
	KLogSeal:        "log-seal",
	KLogCrashFlush:  "log-crash-flush",
	KRecoveryScan:   "recovery-scan",
	KRecoveryApply:  "recovery-apply",
	KRoute:          "route",
	KNodeQueue:      "node-queue",
	KNodeState:      "node-state",
	KReplLag:        "repl-lag",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one typed probe event. It is a fixed-size value: emitting one
// allocates nothing, and a ring of Events (the audit trail) recycles
// storage. Note is non-empty only for KNote.
type Event struct {
	Cycle sim.Cycle
	Kind  Kind
	Core  int16 // core / thread / channel, -1 when not applicable
	Addr  mem.Addr
	A     int64 // kind-specific payload; see the Kind constants
	B     int64
	C     int64
	Note  string
}

// String renders the event for human-readable trails and logs.
func (e Event) String() string {
	switch e.Kind {
	case KNote:
		return e.Note
	case KTxBegin:
		return fmt.Sprintf("tx-begin: core=%d commits=%d now=%d", e.Core, e.A, e.Cycle)
	case KTxCommit:
		return fmt.Sprintf("tx-commit: core=%d stall=%d words=%d txlat=%d now=%d", e.Core, e.A, e.B, e.C, e.Cycle)
	case KCrash:
		return fmt.Sprintf("inject-crash: now=%d commits=%d ops=%d", e.Cycle, e.A, e.B)
	case KLLCEvict:
		return fmt.Sprintf("llc-evict: line=%v now=%d", e.Addr, e.Cycle)
	case KFlushBitSet:
		return fmt.Sprintf("flush-bit-set: core=%d line=%v entries=%d now=%d", e.Core, e.Addr, e.A, e.Cycle)
	case KFlushBitClear:
		return fmt.Sprintf("flush-bit-clear: core=%d entries=%d now=%d", e.Core, e.A, e.Cycle)
	case KWPQWrite:
		return fmt.Sprintf("wpq-write: ch=%d depth=%d stall=%d bytes=%d now=%d", e.Core, e.A, e.B, e.C, e.Cycle)
	case KPMBufOpen:
		return fmt.Sprintf("pmbuf-open: base=%v bytes=%d now=%d", e.Addr, e.A, e.Cycle)
	case KPMBufMerge:
		return fmt.Sprintf("pmbuf-merge: base=%v bytes=%d now=%d", e.Addr, e.A, e.Cycle)
	case KPMBufWriteback:
		return fmt.Sprintf("pmbuf-writeback: base=%v programmed=%d suppressed=%d reqs=%d now=%d", e.Addr, e.A, e.B, e.C, e.Cycle)
	case KCrashEnergy:
		return fmt.Sprintf("crash-energy: requested=%d allowed=%d critical=%d now=%d", e.A, e.B, e.C, e.Cycle)
	case KLogBufOcc:
		return fmt.Sprintf("logbuf-occ: core=%d occ=%d/%d now=%d", e.Core, e.A, e.B, e.Cycle)
	case KLogOverflow:
		return fmt.Sprintf("log-overflow: core=%d evicted=%d now=%d", e.Core, e.A, e.Cycle)
	case KLogSeal:
		return fmt.Sprintf("log-seal: tid=%d records=%d bytes=%d now=%d", e.Core, e.A, e.B, e.Cycle)
	case KLogCrashFlush:
		return fmt.Sprintf("crash-append: tid=%d critical=%v records=%d", e.Core, e.B != 0, e.A)
	case KRecoveryScan:
		return fmt.Sprintf("recovery-scan: tid=%d records=%d quarantined=%d", e.Core, e.A, e.B)
	case KRecoveryApply:
		return fmt.Sprintf("recovery-apply: redo=%d undo=%d discarded=%d", e.A, e.B, e.C)
	case KRoute:
		return fmt.Sprintf("route: node=%d key=%d attempt=%d fastfail=%d now=%d", e.Core, e.A, e.B, e.C, e.Cycle)
	case KNodeQueue:
		return fmt.Sprintf("node-queue: node=%d depth=%d/%d shed=%d now=%d", e.Core, e.A, e.B, e.C, e.Cycle)
	case KNodeState:
		return fmt.Sprintf("node-state: node=%d state=%s crash=%d now=%d", e.Core, nodeStateName(e.A), e.B, e.Cycle)
	case KReplLag:
		return fmt.Sprintf("repl-lag: node=%d lag=%d queued=%d now=%d", e.Core, e.A, e.B, e.Cycle)
	}
	return fmt.Sprintf("%s: core=%d addr=%v a=%d b=%d c=%d now=%d", e.Kind, e.Core, e.Addr, e.A, e.B, e.C, e.Cycle)
}

// Sink consumes the probe-event stream. Sinks are invoked synchronously
// on the engine goroutine, in nondecreasing event time per component, and
// must not mutate the event.
type Sink interface {
	Event(e Event)
}

// Recorder fans probe events out to its sinks and owns the metrics
// registry. The nil *Recorder is the disabled state: every method is a
// nil-check away from a return, so instrumented hot paths need no guards.
type Recorder struct {
	sinks []Sink
	reg   *Registry
}

// NewRecorder builds a recorder over the given sinks (nil sinks are
// dropped) with a fresh metrics registry.
func NewRecorder(sinks ...Sink) *Recorder {
	r := &Recorder{reg: NewRegistry()}
	for _, s := range sinks {
		if s != nil {
			r.sinks = append(r.sinks, s)
		}
	}
	return r
}

// With returns a recorder that additionally feeds s. It is nil-safe: a
// nil receiver yields a fresh recorder over s alone, which is how the
// machine grafts the audit trail onto whatever the caller configured.
func (r *Recorder) With(s Sink) *Recorder {
	if s == nil {
		return r
	}
	if r == nil {
		return NewRecorder(s)
	}
	out := &Recorder{reg: r.reg, sinks: make([]Sink, 0, len(r.sinks)+1)}
	out.sinks = append(out.sinks, r.sinks...)
	out.sinks = append(out.sinks, s)
	return out
}

// Enabled reports whether any sink is attached.
func (r *Recorder) Enabled() bool { return r != nil && len(r.sinks) > 0 }

// Metrics returns the recorder's registry (nil for a nil recorder; the
// registry's accessors are nil-safe and hand out inert instruments).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit fans one event out to every sink.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	for _, s := range r.sinks {
		s.Event(e)
	}
}

// Notef emits a formatted KNote annotation.
func (r *Recorder) Notef(now sim.Cycle, format string, args ...any) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KNote, Core: -1, Note: fmt.Sprintf(format, args...)})
}

// Typed probe helpers. Each is a thin constructor over Emit so call sites
// stay greppable and the payload conventions live in one file.

// TxBegin probes Tx_begin on a core.
func (r *Recorder) TxBegin(core int, now sim.Cycle, commits int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KTxBegin, Core: int16(core), A: commits})
}

// TxCommit probes Tx_end returning on a core.
func (r *Recorder) TxCommit(core int, now sim.Cycle, stall sim.Cycle, words int, txLat sim.Cycle) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KTxCommit, Core: int16(core), A: int64(stall), B: int64(words), C: int64(txLat)})
}

// Crash probes a power-failure injection.
func (r *Recorder) Crash(now sim.Cycle, commits, ops int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KCrash, Core: -1, A: commits, B: ops})
}

// LLCEvict probes a dirty line leaving the LLC.
func (r *Recorder) LLCEvict(now sim.Cycle, la mem.Addr) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KLLCEvict, Core: -1, Addr: la})
}

// FlushBitSet probes flush-bits set on a core's in-flight log entries.
func (r *Recorder) FlushBitSet(core int, now sim.Cycle, la mem.Addr, entries int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KFlushBitSet, Core: int16(core), Addr: la, A: int64(entries)})
}

// FlushBitClear probes log-buffer deallocation at Tx_begin.
func (r *Recorder) FlushBitClear(core int, now sim.Cycle, entries int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KFlushBitClear, Core: int16(core), A: int64(entries)})
}

// WPQWrite probes one write accepted into a WPQ channel.
func (r *Recorder) WPQWrite(channel int, accept sim.Cycle, depth int, stall sim.Cycle, bytes int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: accept, Kind: KWPQWrite, Core: int16(channel), A: int64(depth), B: int64(stall), C: int64(bytes)})
}

// PMBufOpen probes a fresh on-PM buffer line.
func (r *Recorder) PMBufOpen(now sim.Cycle, base mem.Addr, bytes int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KPMBufOpen, Core: -1, Addr: base, A: int64(bytes)})
}

// PMBufMerge probes a coalesced on-PM buffer write.
func (r *Recorder) PMBufMerge(now sim.Cycle, base mem.Addr, bytes int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KPMBufMerge, Core: -1, Addr: base, A: int64(bytes)})
}

// PMBufWriteback probes an on-PM buffer line draining to the media.
func (r *Recorder) PMBufWriteback(now sim.Cycle, base mem.Addr, programmed, suppressed, requests int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KPMBufWriteback, Core: -1, Addr: base,
		A: int64(programmed), B: int64(suppressed), C: int64(requests)})
}

// CrashEnergy probes one crash-flush write drawing on the battery budget.
func (r *Recorder) CrashEnergy(now sim.Cycle, requested, allowed int, critical bool) {
	if r == nil {
		return
	}
	c := int64(0)
	if critical {
		c = 1
	}
	r.Emit(Event{Cycle: now, Kind: KCrashEnergy, Core: -1, A: int64(requested), B: int64(allowed), C: c})
}

// LogBufOcc samples a core's log-buffer occupancy after a change.
func (r *Recorder) LogBufOcc(core int, now sim.Cycle, occ, capacity int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KLogBufOcc, Core: int16(core), A: int64(occ), B: int64(capacity)})
}

// LogOverflow probes a batched overflow eviction.
func (r *Recorder) LogOverflow(core int, now sim.Cycle, evicted int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KLogOverflow, Core: int16(core), A: int64(evicted)})
}

// LogSeal probes sealed records appended to the PM log region.
func (r *Recorder) LogSeal(tid int, now sim.Cycle, records, bytes int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KLogSeal, Core: int16(tid), A: int64(records), B: int64(bytes)})
}

// LogCrashFlush probes a battery-powered crash-flush append.
func (r *Recorder) LogCrashFlush(tid int, now sim.Cycle, records int, critical bool) {
	if r == nil {
		return
	}
	b := int64(0)
	if critical {
		b = 1
	}
	r.Emit(Event{Cycle: now, Kind: KLogCrashFlush, Core: int16(tid), A: int64(records), B: b})
}

// RecoveryScan probes one thread's checked log scan.
func (r *Recorder) RecoveryScan(tid int, now sim.Cycle, records, quarantined int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KRecoveryScan, Core: int16(tid), A: int64(records), B: int64(quarantined)})
}

// RecoveryApply probes a recovery pass's replay totals.
func (r *Recorder) RecoveryApply(now sim.Cycle, redo, undo, discarded int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KRecoveryApply, Core: -1, A: int64(redo), B: int64(undo), C: int64(discarded)})
}

// Cluster node availability states carried by KNodeState.A.
const (
	NodeUp         = 0
	NodeDown       = 1
	NodeRecovering = 2
)

func nodeStateName(a int64) string {
	switch a {
	case NodeUp:
		return "up"
	case NodeDown:
		return "down"
	case NodeRecovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", a)
}

// Route probes a cluster router decision for one request attempt.
func (r *Recorder) Route(node int, now sim.Cycle, key uint64, attempt int, fastFail bool) {
	if r == nil {
		return
	}
	c := int64(0)
	if fastFail {
		c = 1
	}
	r.Emit(Event{Cycle: now, Kind: KRoute, Core: int16(node), A: int64(key & 0x7fffffff), B: int64(attempt), C: c})
}

// NodeQueue samples a cluster node's request-queue depth after a change.
func (r *Recorder) NodeQueue(node int, now sim.Cycle, depth, capacity int, shed bool) {
	if r == nil {
		return
	}
	c := int64(0)
	if shed {
		c = 1
	}
	r.Emit(Event{Cycle: now, Kind: KNodeQueue, Core: int16(node), A: int64(depth), B: int64(capacity), C: c})
}

// NodeState probes a cluster node availability transition.
func (r *Recorder) NodeState(node int, now sim.Cycle, state int, crashOrdinal int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KNodeState, Core: int16(node), A: int64(state), B: int64(crashOrdinal)})
}

// ReplLag probes one replication apply landing on a replica: the lag
// from the primary commit to the durable apply, and the queue behind it.
func (r *Recorder) ReplLag(node int, now sim.Cycle, lag int64, queued int) {
	if r == nil {
		return
	}
	r.Emit(Event{Cycle: now, Kind: KReplLag, Core: int16(node), A: lag, B: int64(queued)})
}

// Instrumented is implemented by components that accept a recorder after
// construction (logging designs, notably, are built behind a Factory that
// predates the machine's recorder).
type Instrumented interface {
	SetTelemetry(*Recorder)
}
