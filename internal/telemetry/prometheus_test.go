package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"commits":             "commits",
		"commit-stall-cycles": "commit_stall_cycles",
		"wpq.depth":           "wpq_depth",
		"9lives":              "_9lives",
		"a:b_c":               "a:b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	snaps := []LabeledSnapshot{
		{Metrics: []MetricValue{
			{Name: "serve_runs_started", Kind: "counter", Value: 2},
		}},
		{
			Labels: []Label{{Name: "run", Value: "1"}, {Name: "design", Value: `Si"lo`}},
			Metrics: []MetricValue{
				{Name: "commits", Kind: "counter", Value: 4000},
				{Name: "wpq-depth", Kind: "gauge", Value: 3, Max: 9},
				{Name: "commit-stall", Kind: "histogram", Value: 10, Max: 7, P50: 2, P99: 6.5, Mean: 2.25},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "silo_", snaps); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE silo_commits counter\n",
		`silo_commits{run="1",design="Si\"lo"} 4000` + "\n",
		"# TYPE silo_wpq_depth gauge\n",
		"# TYPE silo_wpq_depth_max gauge\n",
		`silo_wpq_depth_max{run="1",design="Si\"lo"} 9` + "\n",
		"# TYPE silo_commit_stall_count counter\n",
		"# TYPE silo_commit_stall_p99 gauge\n",
		`silo_commit_stall_p99{run="1",design="Si\"lo"} 6.5` + "\n",
		`silo_commit_stall_mean{run="1",design="Si\"lo"} 2.25` + "\n",
		"silo_serve_runs_started 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exactly one # TYPE line per family.
	if n := strings.Count(out, "# TYPE silo_commits "); n != 1 {
		t.Errorf("silo_commits TYPE lines = %d, want 1", n)
	}
}

// TestSnapshotExpositionByteStable is the determinism gate: two
// registries fed the same readings in different insertion orders must
// snapshot into the same sequence and render byte-identical exposition
// text.
func TestSnapshotExpositionByteStable(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			switch name {
			case "commits":
				r.Counter("commits").Add(42)
			case "media-bytes":
				r.Counter("media-bytes").Add(9000)
			case "wpq-depth":
				r.Gauge("wpq-depth").Set(7)
			case "stall":
				r.Histogram("stall").Observe(5)
			}
		}
		return r
	}
	a := build([]string{"commits", "media-bytes", "wpq-depth", "stall"})
	b := build([]string{"stall", "wpq-depth", "media-bytes", "commits"})

	snapA, snapB := a.Snapshot(), b.Snapshot()
	if len(snapA) != len(snapB) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(snapA), len(snapB))
	}
	for i := range snapA {
		if snapA[i] != snapB[i] {
			t.Fatalf("snapshot[%d] differs: %+v vs %+v", i, snapA[i], snapB[i])
		}
	}
	// Name-sorted regardless of insertion order.
	for i := 1; i < len(snapA); i++ {
		if snapA[i-1].Name > snapA[i].Name {
			t.Fatalf("snapshot not name-sorted: %q after %q", snapA[i].Name, snapA[i-1].Name)
		}
	}

	var bufA, bufB bytes.Buffer
	labels := []Label{{Name: "run", Value: "7"}}
	if err := WriteMetrics(&bufA, "silo_", []LabeledSnapshot{{Labels: labels, Metrics: snapA}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&bufB, "silo_", []LabeledSnapshot{{Labels: labels, Metrics: snapB}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("exposition not byte-stable:\n--- A ---\n%s--- B ---\n%s", bufA.String(), bufB.String())
	}
}
