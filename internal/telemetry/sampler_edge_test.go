package telemetry

import (
	"strings"
	"testing"

	"silo/internal/sim"
)

// Satellite coverage: IntervalSampler edge cases — zero-length runs,
// events exactly on window boundaries, and crash truncation mid-window.

func TestIntervalSamplerZeroLengthRun(t *testing.T) {
	s := NewIntervalSampler(100)
	if ws := s.Windows(); len(ws) != 0 {
		t.Fatalf("empty sampler has %d windows: %+v", len(ws), ws)
	}
	// The table still renders (header only).
	if tbl := s.Table(); !strings.Contains(tbl, "window(cycles)") {
		t.Fatalf("empty table lacks header:\n%s", tbl)
	}
}

func TestIntervalSamplerWidthFloor(t *testing.T) {
	s := NewIntervalSampler(0) // clamps to 1
	r := NewRecorder(s)
	r.TxCommit(0, 0, 1, 1, 8)
	r.TxCommit(0, 1, 1, 1, 8)
	ws := s.Windows()
	if len(ws) != 2 || ws[0].End != 1 {
		t.Fatalf("width-0 sampler windows = %+v", ws)
	}
}

func TestIntervalSamplerBoundaryEventOpensNextWindow(t *testing.T) {
	s := NewIntervalSampler(100)
	r := NewRecorder(s)
	r.TxCommit(0, 99, 1, 1, 8)  // last cycle of window 0
	r.TxCommit(0, 100, 1, 1, 8) // exactly on the boundary: window 1
	r.TxCommit(0, 200, 1, 1, 8) // exactly on the next boundary: window 2
	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d: %+v", len(ws), ws)
	}
	for i, want := range []struct{ start, end, commits int64 }{
		{0, 100, 1}, {100, 200, 1}, {200, 300, 1},
	} {
		w := ws[i]
		if int64(w.Start) != want.start || int64(w.End) != want.end || w.Commits != want.commits {
			t.Errorf("w%d = [%d,%d) commits=%d, want [%d,%d) commits=%d",
				i, w.Start, w.End, w.Commits, want.start, want.end, want.commits)
		}
	}
}

func TestIntervalSamplerFirstEventMidWindowAligns(t *testing.T) {
	// A run whose first probe lands mid-window must still produce an
	// aligned grid: [200,300), not [250,350).
	s := NewIntervalSampler(100)
	r := NewRecorder(s)
	r.TxCommit(0, 250, 1, 1, 8)
	ws := s.Windows()
	if len(ws) != 1 || ws[0].Start != 200 || ws[0].End != 300 {
		t.Fatalf("windows = %+v, want one [200,300) window", ws)
	}
}

func TestIntervalSamplerCrashTruncationMidWindow(t *testing.T) {
	// A crash mid-window truncates the series: the in-progress tail is
	// still reported (partial data is data), with everything after the
	// crash absent rather than zero-filled to the horizon.
	s := NewIntervalSampler(100)
	r := NewRecorder(s)
	for c := int64(0); c < 250; c += 10 {
		r.TxCommit(0, sim.Cycle(c), 1, 1, 8)
	}
	r.Crash(249, 25, 25) // plug pulled at cycle 249
	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d: %+v", len(ws), ws)
	}
	tail := ws[2]
	if tail.Start != 200 || tail.End != 300 {
		t.Fatalf("tail window = [%d,%d), want [200,300)", tail.Start, tail.End)
	}
	if tail.Commits != 5 {
		t.Fatalf("tail commits = %d, want 5 (truncated at crash)", tail.Commits)
	}
	if ws[0].Commits != 10 || ws[1].Commits != 10 {
		t.Fatalf("full windows = %d, %d commits, want 10, 10", ws[0].Commits, ws[1].Commits)
	}
}

// Satellite coverage: ValidateChromeTrace error paths beyond the
// basics — truncated arrays, malformed events, missing pid/tid — and
// the success-path stats.

func TestValidateChromeTraceMoreErrorPaths(t *testing.T) {
	cases := map[string]string{
		"empty input":       ``,
		"not JSON":          `hello`,
		"truncated array":   `[{"ph":"i","pid":1,"tid":0,"ts":1,"name":"x"}`,
		"malformed event":   `[{"ph":]`,
		"missing pid":       `[{"ph":"i","tid":0,"ts":1,"name":"x"}]`,
		"missing tid":       `[{"ph":"i","pid":1,"ts":1,"name":"x"}]`,
		"nested unbalanced": `[{"ph":"B","pid":1,"tid":0,"ts":1,"name":"a"},{"ph":"B","pid":1,"tid":0,"ts":2,"name":"b"},{"ph":"E","pid":1,"tid":0,"ts":3,"name":"b"}]`,
		"non-monotone same track": `[{"ph":"B","pid":1,"tid":2,"ts":10,"name":"tx"},` +
			`{"ph":"E","pid":1,"tid":2,"ts":9,"name":"tx"}]`,
	}
	for name, in := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateChromeTraceStats(t *testing.T) {
	in := `[
		{"ph":"M","pid":1,"tid":0,"name":"process_name"},
		{"ph":"B","pid":1,"tid":0,"ts":1,"name":"tx"},
		{"ph":"E","pid":1,"tid":0,"ts":2,"name":"tx"},
		{"ph":"C","pid":1,"tid":9,"ts":1,"name":"wpq","args":{"depth":3}},
		{"ph":"C","pid":1,"tid":9,"ts":2,"name":"wpq","args":{"depth":4}},
		{"ph":"i","pid":1,"tid":1,"ts":5,"name":"crash"}
	]`
	st, err := ValidateChromeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if st.Events != 6 || st.Counters != 1 || st.Tracks != 3 {
		t.Fatalf("stats = %+v, want 6 events, 1 counter, 3 tracks", st)
	}
	if st.ByPhase["C"] != 2 || st.ByPhase["M"] != 1 {
		t.Fatalf("ByPhase = %+v", st.ByPhase)
	}
}
