package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceStats summarizes a validated Chrome trace.
type TraceStats struct {
	Events   int
	Tracks   int            // distinct tids seen on non-metadata events
	Counters int            // distinct counter-series names
	ByPhase  map[string]int // event count per ph
}

// traceEvent mirrors the subset of the Chrome trace-event schema the
// validator cares about.
type traceEvent struct {
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *float64        `json:"ts"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args"`
}

var validPhases = map[string]bool{
	"B": true, "E": true, "X": true, "i": true, "I": true,
	"C": true, "M": true, "b": true, "e": true, "n": true,
}

// ValidateChromeTrace checks that r holds a well-formed Chrome
// trace-event JSON array with (a) only known phase codes, (b) per-track
// nondecreasing timestamps for duration/instant events, (c) per-series
// nondecreasing timestamps for counter events, and (d) balanced B/E
// nesting per track (slices still open at EOF are reported as an error —
// the writer closes them on crash). Returns summary stats on success.
func ValidateChromeTrace(r io.Reader) (TraceStats, error) {
	st := TraceStats{ByPhase: make(map[string]int)}
	dec := json.NewDecoder(r)

	tok, err := dec.Token()
	if err != nil {
		return st, fmt.Errorf("trace: reading opening token: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return st, fmt.Errorf("trace: expected a JSON array, got %v", tok)
	}

	lastTS := make(map[int]float64)        // per tid (B/E/X/i)
	lastCounterTS := make(map[string]float64) // per counter-series name
	openSlices := make(map[int]int)        // per tid B/E nesting depth
	tracks := make(map[int]bool)
	counters := make(map[string]bool)

	for dec.More() {
		var e traceEvent
		if err := dec.Decode(&e); err != nil {
			return st, fmt.Errorf("trace: event %d: %w", st.Events, err)
		}
		st.Events++
		st.ByPhase[e.Ph]++
		if !validPhases[e.Ph] {
			return st, fmt.Errorf("trace: event %d (%q): unknown phase %q", st.Events-1, e.Name, e.Ph)
		}
		if e.Ph == "M" {
			continue // metadata: no ts/ordering requirements
		}
		if e.Ts == nil {
			return st, fmt.Errorf("trace: event %d (%q, ph=%s): missing ts", st.Events-1, e.Name, e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			return st, fmt.Errorf("trace: event %d (%q): missing pid/tid", st.Events-1, e.Name)
		}
		tid, ts := *e.Tid, *e.Ts
		tracks[tid] = true
		switch e.Ph {
		case "C":
			counters[e.Name] = true
			if last, ok := lastCounterTS[e.Name]; ok && ts < last {
				return st, fmt.Errorf("trace: counter %q: ts %.4f < previous %.4f", e.Name, ts, last)
			}
			lastCounterTS[e.Name] = ts
		default:
			if last, ok := lastTS[tid]; ok && ts < last {
				return st, fmt.Errorf("trace: track %d: event %q ts %.4f < previous %.4f", tid, e.Name, ts, last)
			}
			lastTS[tid] = ts
			switch e.Ph {
			case "B":
				openSlices[tid]++
			case "E":
				openSlices[tid]--
				if openSlices[tid] < 0 {
					return st, fmt.Errorf("trace: track %d: E without matching B at ts %.4f", tid, ts)
				}
			}
		}
	}
	if tok, err = dec.Token(); err != nil {
		return st, fmt.Errorf("trace: reading closing token: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != ']' {
		return st, fmt.Errorf("trace: expected array close, got %v", tok)
	}
	for tid, n := range openSlices {
		if n != 0 {
			return st, fmt.Errorf("trace: track %d: %d slice(s) still open at end of trace", tid, n)
		}
	}
	st.Tracks = len(tracks)
	st.Counters = len(counters)
	return st, nil
}
