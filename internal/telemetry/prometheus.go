package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one Prometheus label pair attached to a snapshot's samples.
type Label struct {
	Name  string
	Value string
}

// LabeledSnapshot pairs one registry snapshot with the labels that
// identify its origin (a run id, design, workload, ...). silo-serve's
// /metrics endpoint exposes one per run plus the server's own registry.
type LabeledSnapshot struct {
	Labels  []Label
	Metrics []MetricValue
}

// promSample is one exposition line before rendering.
type promSample struct {
	labels string
	value  string
}

// promFamily collects the samples of one metric family so the exposition
// emits exactly one # TYPE line per family, as the text format requires.
type promFamily struct {
	typ     string // "counter" or "gauge"
	samples []promSample
}

// promName sanitizes a registry metric name into the Prometheus metric
// name charset: runs of characters outside [a-zA-Z0-9_:] become '_'
// ("commit-stall-cycles" → "commit_stall_cycles").
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as `{a="x",b="y"}` with values escaped
// per the text format ("" for an empty set). Label order is preserved,
// so identical inputs render identical bytes.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		fmt.Fprintf(&b, `%s="%s"`, promName(l.Name), v)
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// WriteMetrics renders labeled registry snapshots in the Prometheus text
// exposition format (version 0.0.4). Every metric name is prefixed with
// prefix (conventionally "silo_"); gauges additionally expose their
// high-water mark as <name>_max, and histograms expand to _count, _max,
// _p50, _p99 and _mean series. Families are emitted sorted by metric
// name and samples in input order, so two identical snapshot sets
// produce byte-identical output.
func WriteMetrics(w io.Writer, prefix string, snaps []LabeledSnapshot) error {
	fams := make(map[string]*promFamily)
	add := func(name, typ string, labels []Label, value string) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		f.samples = append(f.samples, promSample{labels: promLabels(labels), value: value})
	}
	for _, snap := range snaps {
		for _, m := range snap.Metrics {
			name := prefix + promName(m.Name)
			switch m.Kind {
			case "counter":
				add(name, "counter", snap.Labels, fmt.Sprintf("%d", m.Value))
			case "gauge":
				add(name, "gauge", snap.Labels, fmt.Sprintf("%d", m.Value))
				add(name+"_max", "gauge", snap.Labels, fmt.Sprintf("%d", m.Max))
			case "histogram":
				add(name+"_count", "counter", snap.Labels, fmt.Sprintf("%d", m.Value))
				add(name+"_max", "gauge", snap.Labels, fmt.Sprintf("%d", m.Max))
				add(name+"_p50", "gauge", snap.Labels, promFloat(m.P50))
				add(name+"_p99", "gauge", snap.Labels, promFloat(m.P99))
				add(name+"_mean", "gauge", snap.Labels, promFloat(m.Mean))
			}
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}
