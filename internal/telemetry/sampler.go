package telemetry

import (
	"fmt"
	"strings"

	"silo/internal/sim"
)

// Window is one interval of the sampler's time series: event counts and
// high-water marks folded over [Start, End) cycles.
type Window struct {
	Start sim.Cycle `json:"start"`
	End   sim.Cycle `json:"end"`

	Commits       int64 `json:"commits"`
	CommitStall   int64 `json:"commit_stall_cycles"`
	LLCEvicts     int64 `json:"llc_evicts"`
	Overflows     int64 `json:"overflows"`
	SealRecords   int64 `json:"seal_records"`
	WPQWrites     int64 `json:"wpq_writes"`
	WPQStall      int64 `json:"wpq_stall_cycles"`
	WPQPeakDepth  int64 `json:"wpq_peak_depth"`
	LogBufPeak    int64 `json:"logbuf_peak"`
	MediaBytes    int64 `json:"media_bytes"`
	DCWSuppressed int64 `json:"dcw_suppressed_bytes"`
}

// IntervalSampler is a Sink that folds the probe stream into fixed-width
// per-window time series — the input for silo-report's timeline section.
// Windows are closed lazily as event time advances; Windows() returns
// the completed series including the in-progress tail.
type IntervalSampler struct {
	width sim.Cycle
	done  []Window
	cur   Window
	open  bool
}

// NewIntervalSampler samples at the given window width in cycles
// (minimum 1).
func NewIntervalSampler(width sim.Cycle) *IntervalSampler {
	if width < 1 {
		width = 1
	}
	return &IntervalSampler{width: width}
}

// advance closes completed windows so that cur covers the window
// containing cycle c. Empty gap windows are materialized so the series
// has no holes (a flat-line region is information).
func (s *IntervalSampler) advance(c sim.Cycle) {
	if !s.open {
		start := c - c%s.width
		s.cur = Window{Start: start, End: start + s.width}
		s.open = true
		return
	}
	for c >= s.cur.End {
		s.done = append(s.done, s.cur)
		s.cur = Window{Start: s.cur.End, End: s.cur.End + s.width}
	}
}

// Event implements Sink.
func (s *IntervalSampler) Event(e Event) {
	s.advance(e.Cycle)
	w := &s.cur
	switch e.Kind {
	case KTxCommit:
		w.Commits++
		w.CommitStall += e.A
	case KLLCEvict:
		w.LLCEvicts++
	case KLogOverflow:
		w.Overflows++
	case KLogSeal:
		w.SealRecords += e.A
	case KWPQWrite:
		w.WPQWrites++
		w.WPQStall += e.B
		if e.A > w.WPQPeakDepth {
			w.WPQPeakDepth = e.A
		}
	case KLogBufOcc:
		if e.A > w.LogBufPeak {
			w.LogBufPeak = e.A
		}
	case KPMBufWriteback:
		w.MediaBytes += e.A
		w.DCWSuppressed += e.B
	}
}

// Windows returns the completed series plus the in-progress tail.
func (s *IntervalSampler) Windows() []Window {
	out := make([]Window, 0, len(s.done)+1)
	out = append(out, s.done...)
	if s.open {
		out = append(out, s.cur)
	}
	return out
}

// Table renders the series as an aligned text table (one row per
// window), suitable for terminals and Markdown code blocks.
func (s *IntervalSampler) Table() string {
	ws := s.Windows()
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %10s %8s %8s %9s %10s %8s %8s %10s %8s\n",
		"window(cycles)", "commits", "stall", "evicts", "ovfl", "seals",
		"wpq-wr", "wpq-st", "wpq-pk", "media-B", "dcw-B")
	for _, w := range ws {
		fmt.Fprintf(&b, "%-22s %8d %10d %8d %8d %9d %10d %8d %8d %10d %8d\n",
			fmt.Sprintf("[%d,%d)", w.Start, w.End),
			w.Commits, w.CommitStall, w.LLCEvicts, w.Overflows, w.SealRecords,
			w.WPQWrites, w.WPQStall, w.WPQPeakDepth, w.MediaBytes, w.DCWSuppressed)
	}
	return b.String()
}
