package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// ringSink retains every event, for assertions.
type ringSink struct{ events []Event }

func (r *ringSink) Event(e Event) { r.events = append(r.events, e) }

func TestNilRecorderIsInertAndAllocFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if r.Metrics() != nil {
		t.Error("nil recorder has a registry")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.TxBegin(0, 10, 1)
		r.TxCommit(0, 20, 5, 3, 10)
		r.WPQWrite(1, 30, 4, 2, 64)
		r.LogBufOcc(0, 40, 7, 20)
		r.LLCEvict(50, 0x1000)
		r.PMBufWriteback(60, 0x2000, 64, 12, 8)
		r.Metrics().Counter("x").Inc()
		r.Metrics().Gauge("y").Set(9)
		r.Metrics().Histogram("z").Observe(3)
	})
	if allocs != 0 {
		t.Errorf("disabled probe path allocates %.1f per run, want 0", allocs)
	}
}

func TestWithGraftsSinkOntoNilRecorder(t *testing.T) {
	sink := &ringSink{}
	var base *Recorder
	r := base.With(sink)
	if !r.Enabled() {
		t.Fatal("grafted recorder not enabled")
	}
	r.TxBegin(2, 100, 0)
	if len(sink.events) != 1 || sink.events[0].Kind != KTxBegin || sink.events[0].Core != 2 {
		t.Fatalf("events = %+v", sink.events)
	}
	// With on a live recorder fans out to both sinks and keeps the registry.
	sink2 := &ringSink{}
	r2 := r.With(sink2)
	if r2.Metrics() != r.Metrics() {
		t.Error("With lost the registry")
	}
	r2.Crash(200, 3, 40)
	if len(sink.events) != 2 || len(sink2.events) != 1 {
		t.Errorf("fan-out: sink=%d sink2=%d", len(sink.events), len(sink2.events))
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("commits").Add(3)
	reg.Counter("commits").Inc()
	g := reg.Gauge("depth")
	g.Set(5)
	g.Set(2)
	reg.Histogram("lat").Observe(100)
	reg.Histogram("lat").Observe(10)

	if v := reg.Counter("commits").Value(); v != 4 {
		t.Errorf("counter = %d", v)
	}
	if g.Value() != 2 || g.Max() != 5 {
		t.Errorf("gauge = %d max %d", g.Value(), g.Max())
	}
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries: %+v", len(snap), snap)
	}
	var hist *MetricValue
	for i := range snap {
		if snap[i].Kind == "histogram" {
			hist = &snap[i]
		}
	}
	if hist == nil || hist.Value != 2 || hist.Max != 100 {
		t.Errorf("histogram snapshot = %+v", hist)
	}
	// Nil registry lookups are inert.
	var nilReg *Registry
	nilReg.Counter("a").Inc()
	nilReg.Gauge("b").Set(1)
	nilReg.Histogram("c").Observe(1)
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot non-nil")
	}
}

func TestEventStringRendering(t *testing.T) {
	e := Event{Cycle: 42, Kind: KNote, Note: "hello world"}
	if e.String() != "hello world" {
		t.Errorf("KNote renders %q", e.String())
	}
	c := Event{Cycle: 7, Kind: KCrash, A: 3, B: 99}
	if got := c.String(); got != "inject-crash: now=7 commits=3 ops=99" {
		t.Errorf("KCrash renders %q", got)
	}
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		s := Event{Kind: k, Note: "n"}.String()
		if s == "" {
			t.Errorf("kind %v renders empty", k)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	r := NewRecorder(ct)

	r.TxBegin(0, 100, 0)
	r.LogBufOcc(0, 150, 3, 20)
	r.WPQWrite(0, 180, 2, 5, 64)
	r.LLCEvict(200, 0x4000)
	r.TxCommit(0, 300, 12, 4, 200)
	r.TxBegin(1, 310, 0)
	r.PMBufOpen(320, 0x8000, 8)
	r.PMBufWriteback(400, 0x8000, 56, 8, 7)
	r.Crash(500, 1, 10) // core 1's tx left open: Close must end it
	if err := ct.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, buf.String())
	}
	if st.Events == 0 || st.Tracks < 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Counters < 2 {
		t.Errorf("want wpq-depth and logbuf-occupancy counter series, got %d: %+v", st.Counters, st)
	}
	if st.ByPhase["B"] != st.ByPhase["E"] {
		t.Errorf("unbalanced slices after Close: %+v", st.ByPhase)
	}
	for _, want := range []string{`"wpq-depth ch0"`, `"logbuf-occupancy core0"`, `"CRASH"`, `"thread_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace lacks %s", want)
		}
	}
}

func TestChromeTraceEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	if err := ct.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, buf.String())
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not an array":    `{"ph":"i"}`,
		"unknown phase":   `[{"ph":"Q","pid":1,"tid":0,"ts":1,"name":"x"}]`,
		"missing ts":      `[{"ph":"i","pid":1,"tid":0,"name":"x"}]`,
		"backwards track": `[{"ph":"i","pid":1,"tid":0,"ts":5,"name":"x"},{"ph":"i","pid":1,"tid":0,"ts":4,"name":"y"}]`,
		"unmatched E":     `[{"ph":"E","pid":1,"tid":0,"ts":1,"name":"tx"}]`,
		"open B at EOF":   `[{"ph":"B","pid":1,"tid":0,"ts":1,"name":"tx"}]`,
		"backwards counter": `[{"ph":"C","pid":1,"tid":0,"ts":5,"name":"d","args":{"v":1}},` +
			`{"ph":"C","pid":1,"tid":0,"ts":4,"name":"d","args":{"v":2}}]`,
	}
	for name, in := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Different tracks may interleave arbitrarily in global order.
	ok := `[{"ph":"i","pid":1,"tid":0,"ts":5,"name":"x"},{"ph":"i","pid":1,"tid":1,"ts":4,"name":"y"}]`
	if _, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("cross-track interleave rejected: %v", err)
	}
}

func TestIntervalSamplerFoldsWindows(t *testing.T) {
	s := NewIntervalSampler(100)
	r := NewRecorder(s)
	r.TxCommit(0, 10, 5, 3, 50)
	r.TxCommit(1, 90, 7, 2, 60)
	r.WPQWrite(0, 95, 9, 3, 64)
	// window 2 ([200,300)): gap window [100,200) must materialize empty
	r.LLCEvict(250, 0x1000)
	r.PMBufWriteback(260, 0x1000, 40, 24, 5)

	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d: %+v", len(ws), ws)
	}
	w0 := ws[0]
	if w0.Commits != 2 || w0.CommitStall != 12 || w0.WPQWrites != 1 || w0.WPQPeakDepth != 9 {
		t.Errorf("w0 = %+v", w0)
	}
	if ws[1].Commits != 0 || ws[1].LLCEvicts != 0 {
		t.Errorf("gap window not empty: %+v", ws[1])
	}
	if ws[2].LLCEvicts != 1 || ws[2].MediaBytes != 40 || ws[2].DCWSuppressed != 24 {
		t.Errorf("w2 = %+v", ws[2])
	}
	tbl := s.Table()
	if !strings.Contains(tbl, "[0,100)") || !strings.Contains(tbl, "[200,300)") {
		t.Errorf("table lacks window labels:\n%s", tbl)
	}
}
