package sim

import (
	"testing"

	"silo/internal/mem"
)

// recordingExec logs every op with its core and time, and answers loads
// from a word map.
type recordingExec struct {
	ops   []execRecord
	words map[mem.Addr]mem.Word
	lat   Cycle
}

type execRecord struct {
	core int
	op   Op
	now  Cycle
}

func (e *recordingExec) Exec(core int, op Op, now Cycle) Result {
	e.ops = append(e.ops, execRecord{core, op, now})
	switch op.Kind {
	case OpStore:
		if e.words == nil {
			e.words = make(map[mem.Addr]mem.Word)
		}
		e.words[op.Addr] = op.Data
	case OpLoad:
		return Result{Latency: e.lat, Value: e.words[op.Addr]}
	case OpCompute:
		return Result{Latency: op.Cycles}
	}
	return Result{Latency: e.lat}
}

func TestEngineSingleCore(t *testing.T) {
	exec := &recordingExec{lat: 5}
	e := NewEngine(exec, 1, 1)
	end := e.Run([]Program{func(ctx *Ctx) {
		ctx.TxBegin()
		ctx.Store(64, 7)
		if got := ctx.Load(64); got != 7 {
			t.Errorf("load returned %d, want 7", got)
		}
		ctx.TxEnd()
		ctx.Compute(100)
	}})
	if len(exec.ops) != 5 {
		t.Fatalf("executed %d ops, want 5", len(exec.ops))
	}
	// 4 ops at 5 cycles + compute 100.
	if end != 120 {
		t.Errorf("final time = %d, want 120", end)
	}
	if e.Ops(OpStore) != 1 || e.Ops(OpLoad) != 1 || e.Ops(OpCompute) != 1 {
		t.Errorf("op counters wrong: %d stores %d loads", e.Ops(OpStore), e.Ops(OpLoad))
	}
}

func TestEngineMinTimeInterleaving(t *testing.T) {
	// Core 0 issues slow ops, core 1 fast ops; the engine must execute
	// ops in nondecreasing time order.
	exec := &recordingExec{}
	e := NewEngine(exec, 2, 1)
	mk := func(n int, c Cycle) Program {
		return func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Compute(c)
			}
		}
	}
	e.Run([]Program{mk(3, 100), mk(30, 7)})
	var last Cycle
	for i, r := range exec.ops {
		if r.now < last {
			t.Fatalf("op %d executed at %d after time %d", i, r.now, last)
		}
		last = r.now
	}
	if got := e.CoreTime(0); got != 300 {
		t.Errorf("core 0 time = %d, want 300", got)
	}
	if got := e.CoreTime(1); got != 210 {
		t.Errorf("core 1 time = %d, want 210", got)
	}
	if e.Now() != 300 {
		t.Errorf("Now() = %d, want 300", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []execRecord {
		exec := &recordingExec{lat: 3}
		e := NewEngine(exec, 4, 99)
		progs := make([]Program, 4)
		for i := range progs {
			progs[i] = func(ctx *Ctx) {
				for k := 0; k < 50; k++ {
					a := mem.Addr(ctx.Rand.Intn(1024)) * 8
					ctx.Store(a, mem.Word(k))
					ctx.Load(a)
					ctx.Compute(Cycle(ctx.Rand.Intn(20)))
				}
			}
		}
		e.Run(progs)
		return exec.ops
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different op counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEnginePerCoreRandIndependent(t *testing.T) {
	exec := &recordingExec{}
	e := NewEngine(exec, 2, 5)
	got := make([][]int, 2)
	var progs []Program
	for i := 0; i < 2; i++ {
		progs = append(progs, func(ctx *Ctx) {
			for k := 0; k < 10; k++ {
				got[ctx.Core()] = append(got[ctx.Core()], ctx.Rand.Intn(1000))
			}
			ctx.Compute(1)
		})
	}
	e.Run(progs)
	same := true
	for i := range got[0] {
		if got[0][i] != got[1][i] {
			same = false
		}
	}
	if same {
		t.Error("cores received identical random streams")
	}
}

type crashAtExec struct {
	n      int64
	at     int64
	engine *Engine
}

func (c *crashAtExec) Exec(core int, op Op, now Cycle) Result {
	c.n++
	if c.n == c.at {
		c.engine.Crash()
	}
	return Result{Latency: 1}
}

func TestEngineCrashUnwindsAllCores(t *testing.T) {
	exec := &crashAtExec{at: 37}
	e := NewEngine(exec, 4, 1)
	exec.engine = e
	finished := make([]bool, 4)
	progs := make([]Program, 4)
	for i := range progs {
		progs[i] = func(ctx *Ctx) {
			for k := 0; k < 1000; k++ {
				ctx.Compute(1)
			}
			finished[ctx.Core()] = true
		}
	}
	e.Run(progs) // must terminate despite programs wanting 4000 ops
	if !e.Crashed() {
		t.Fatal("engine not marked crashed")
	}
	for i, f := range finished {
		if f {
			t.Errorf("core %d finished normally despite crash", i)
		}
	}
	if exec.n > 40 {
		t.Errorf("ops after crash: executed %d, crash at 37", exec.n)
	}
}

func TestEngineEmptyPrograms(t *testing.T) {
	e := NewEngine(&recordingExec{}, 2, 1)
	if end := e.Run([]Program{func(*Ctx) {}, func(*Ctx) {}}); end != 0 {
		t.Errorf("empty programs advanced time to %d", end)
	}
}

func TestEngineNegativeLatencyDoesNotAdvance(t *testing.T) {
	// An executor returning -1 (crash sentinel) must unwind the program
	// without moving its clock.
	exec := &negExec{}
	e := NewEngine(exec, 1, 1)
	exec.e = e
	e.Run([]Program{func(ctx *Ctx) {
		ctx.Compute(10)
		ctx.Compute(10) // this op gets the -1 reply
		t.Error("program continued past crash reply")
	}})
	if e.CoreTime(0) != 10 {
		t.Errorf("core time = %d, want 10", e.CoreTime(0))
	}
}

type negExec struct {
	n int
	e *Engine
}

func (x *negExec) Exec(core int, op Op, now Cycle) Result {
	x.n++
	if x.n == 2 {
		x.e.Crash()
		return Result{Latency: -1}
	}
	return Result{Latency: op.Cycles}
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpLoad: "load", OpStore: "store", OpTxBegin: "tx_begin",
		OpTxEnd: "tx_end", OpCompute: "compute", OpKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestEngineMismatchedProgramsPanics(t *testing.T) {
	e := NewEngine(&recordingExec{}, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched program count did not panic")
		}
	}()
	e.Run([]Program{func(*Ctx) {}})
}

func TestComputeZeroIsNoOp(t *testing.T) {
	exec := &recordingExec{}
	e := NewEngine(exec, 1, 1)
	e.Run([]Program{func(ctx *Ctx) {
		ctx.Compute(0)
		ctx.Compute(-5)
		ctx.Compute(3)
	}})
	if len(exec.ops) != 1 {
		t.Errorf("zero/negative compute reached the executor: %d ops", len(exec.ops))
	}
	if e.Now() != 3 {
		t.Errorf("time = %d", e.Now())
	}
}

func TestEngineZeroCoresClamped(t *testing.T) {
	e := NewEngine(&recordingExec{}, 0, 1)
	if end := e.Run([]Program{func(*Ctx) {}}); end != 0 {
		t.Error("clamped single-core engine misbehaved")
	}
}

func TestEngineScheduleCrash(t *testing.T) {
	exec := &recordingExec{}
	e := NewEngine(exec, 2, 1)
	var fired []Cycle
	e.ScheduleCrash(50, func(now Cycle) { fired = append(fired, now) })
	progs := make([]Program, 2)
	for i := range progs {
		progs[i] = func(ctx *Ctx) {
			for k := 0; k < 1000; k++ {
				ctx.Compute(7)
			}
		}
	}
	e.Run(progs)
	if !e.Crashed() {
		t.Fatal("engine not crashed")
	}
	if len(fired) != 1 {
		t.Fatalf("inject called %d times, want 1", len(fired))
	}
	if fired[0] < 50 || fired[0] > 50+7 {
		t.Errorf("crash at cycle %d, want first scheduling point >= 50", fired[0])
	}
	// The op holding the crash never executed; time stopped at the crash.
	for _, r := range exec.ops {
		if r.now >= fired[0] {
			t.Errorf("op executed at %d, at/after the crash point %d", r.now, fired[0])
		}
	}
}

func TestEngineScheduleCrashInjectMayCrashItself(t *testing.T) {
	// An inject hook that calls Crash() directly (as the machine does)
	// must not crash twice or deadlock.
	e := NewEngine(&recordingExec{}, 1, 1)
	n := 0
	e.ScheduleCrash(10, func(now Cycle) { n++; e.Crash() })
	e.Run([]Program{func(ctx *Ctx) {
		for k := 0; k < 100; k++ {
			ctx.Compute(5)
		}
	}})
	if n != 1 || !e.Crashed() {
		t.Errorf("inject ran %d times, crashed=%v", n, e.Crashed())
	}
}
