package sim

import (
	"iter"
	"math/rand"
)

// NewProgramStream runs a legacy Program as a pull-based OpStream on a
// runtime coroutine (iter.Pull): the program's control flow is suspended
// when it needs a result and resumed when the engine delivers it. Unlike
// the goroutine shim, the handoff is a direct coroutine switch — no
// channel operations, no scheduler round trip, and no heap allocations
// per op — which is what makes control-flow-heavy workloads (tree
// descents, chain walks) as cheap to drive as hand-written state
// machines. This is the native port path for every workload whose op
// sequence is data-dependent.
//
// Only loads actually suspend: a program can observe nothing from a
// store, Tx marker, or compute op (Ctx discards those Results), so issue
// queues them and control returns to the program immediately; the engine
// drains the queue — in program order, one scheduling decision per op —
// before the next coroutine switch. The op sequence and every rand draw
// are identical to a suspend-per-op transport; only the point where a
// crash unwinds the program frame moves later, which is unobservable
// because an unwinding program has no further effects.
func NewProgramStream(core int, rng *rand.Rand, p Program) OpStream {
	s := &coroStream{}
	ctx := &Ctx{core: core, issue: s.issue, Rand: rng}
	s.next, s.stop = iter.Pull(func(yield func(Op) bool) {
		s.yield = yield
		defer func() {
			if r := recover(); r != nil && r != ErrCrashed { //nolint:errorlint
				panic(r)
			}
		}()
		p(ctx)
	})
	return s
}

type coroStream struct {
	next  func() (Op, bool)
	stop  func()
	yield func(Op) bool
	res   Result

	queue      []Op // non-load ops issued since the last suspension
	head       int
	pending    Op // load yielded while queued ops were still undelivered
	hasPending bool
	done       bool
}

// issue hands op to the engine. Loads suspend the program and return the
// delivered result; everything else is queued and returns immediately
// (the program cannot observe those results). A false yield means the
// engine stopped pulling (Stop); a negative latency is the crash
// sentinel. Both unwind the program through ErrCrashed, which the
// coroutine body recovers.
func (s *coroStream) issue(op Op) Result {
	if s.done {
		panic(ErrCrashed)
	}
	if op.Kind != OpLoad {
		s.queue = append(s.queue, op)
		return Result{}
	}
	if !s.yield(op) {
		panic(ErrCrashed)
	}
	if s.res.Latency < 0 {
		panic(ErrCrashed)
	}
	return s.res
}

// Next implements OpStream: queued ops drain first (program order), then
// the program resumes until its next operation or completion.
func (s *coroStream) Next() (Op, bool) {
	for {
		if s.head < len(s.queue) {
			op := s.queue[s.head]
			s.head++
			return op, true
		}
		s.queue, s.head = s.queue[:0], 0
		if s.hasPending {
			s.hasPending = false
			return s.pending, true
		}
		if s.done {
			return Op{}, false
		}
		op, ok := s.next()
		if !ok {
			// The program returned; ops it issued after its last load
			// are still in the queue — loop to drain them.
			s.done = true
			continue
		}
		if len(s.queue) > 0 {
			// Ops queued before this load must execute first.
			s.pending, s.hasPending = op, true
			continue
		}
		return op, true
	}
}

// Deliver implements OpStream. Load results are picked up by issue when
// the program resumes; results of queued ops carry no information. The
// crash sentinel releases the suspended frame and ends the stream.
func (s *coroStream) Deliver(r Result) {
	if r.Latency < 0 {
		s.queue, s.head, s.hasPending = s.queue[:0], 0, false
		s.done = true
		s.stop() // unwind the frame wherever it is suspended
		return
	}
	s.res = r
}

// Stop releases a still-suspended program frame (abnormal engine unwind).
func (s *coroStream) Stop() { s.stop() }

// NewGoroutineStream is the legacy compatibility shim: the program runs
// on its own goroutine and each operation crosses an unbuffered channel
// to the engine and a buffered channel back. It exists for callers not
// yet ported to streams and as the reference transport the
// determinism-equivalence tests compare the coroutine path against; new
// code should use NewProgramStream.
func NewGoroutineStream(core int, rng *rand.Rand, p Program) OpStream {
	s := &goroutineStream{ops: make(chan Op), res: make(chan Result, 1)}
	ctx := &Ctx{core: core, issue: s.issue, Rand: rng}
	go func() {
		defer func() {
			if r := recover(); r != nil && r != ErrCrashed { //nolint:errorlint
				panic(r)
			}
			close(s.ops)
		}()
		p(ctx)
	}()
	return s
}

type goroutineStream struct {
	ops chan Op
	res chan Result
}

func (s *goroutineStream) issue(op Op) Result {
	s.ops <- op
	r := <-s.res
	if r.Latency < 0 {
		panic(ErrCrashed)
	}
	return r
}

func (s *goroutineStream) Next() (Op, bool) {
	op, ok := <-s.ops
	return op, ok
}

func (s *goroutineStream) Deliver(r Result) { s.res <- r }

// OpsStream is a native OpStream over a fixed operation sequence (trace
// replay, generated schedules): a cursor over a slice, with no goroutine,
// coroutine, or per-op allocation at all.
type OpsStream struct {
	ops []Op
	i   int
}

// NewOpsStream returns a stream replaying ops in order.
func NewOpsStream(ops []Op) *OpsStream { return &OpsStream{ops: ops} }

// Next implements OpStream.
func (s *OpsStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// Deliver implements OpStream: results carry no data dependence for a
// fixed sequence, except the crash sentinel, which ends the stream.
func (s *OpsStream) Deliver(r Result) {
	if r.Latency < 0 {
		s.i = len(s.ops)
	}
}
