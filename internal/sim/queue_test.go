package sim

import (
	"testing"
	"testing/quick"
)

func TestServiceQueueUnloaded(t *testing.T) {
	q := NewServiceQueue(4)
	a, f := q.Accept(100, 10)
	if a != 100 {
		t.Errorf("unloaded acceptance should be immediate: got %d", a)
	}
	if f != 110 {
		t.Errorf("finish = %d, want 110", f)
	}
}

func TestServiceQueueSerialDrain(t *testing.T) {
	q := NewServiceQueue(16)
	// Three simultaneous arrivals drain back to back.
	var finishes []Cycle
	for i := 0; i < 3; i++ {
		_, f := q.Accept(0, 10)
		finishes = append(finishes, f)
	}
	want := []Cycle{10, 20, 30}
	for i := range want {
		if finishes[i] != want[i] {
			t.Errorf("finish[%d] = %d, want %d", i, finishes[i], want[i])
		}
	}
}

func TestServiceQueueBackpressure(t *testing.T) {
	q := NewServiceQueue(2)
	q.Accept(0, 100) // finishes 100
	q.Accept(0, 100) // finishes 200
	// Queue full: third entry can only be accepted when the first drains.
	a, f := q.Accept(0, 100)
	if a != 100 {
		t.Errorf("acceptance under backpressure = %d, want 100", a)
	}
	if f != 300 {
		t.Errorf("finish = %d, want 300", f)
	}
}

func TestServiceQueueIdleGap(t *testing.T) {
	q := NewServiceQueue(4)
	q.Accept(0, 10)
	a, f := q.Accept(1000, 10)
	if a != 1000 || f != 1010 {
		t.Errorf("idle-gap entry: accept=%d finish=%d, want 1000/1010", a, f)
	}
}

func TestServiceQueueOccupancy(t *testing.T) {
	q := NewServiceQueue(8)
	q.Accept(0, 100)
	q.Accept(0, 100)
	if got := q.Occupancy(50); got != 2 {
		t.Errorf("occupancy(50) = %d, want 2", got)
	}
	if got := q.Occupancy(150); got != 1 {
		t.Errorf("occupancy(150) = %d, want 1", got)
	}
	if got := q.Occupancy(500); got != 0 {
		t.Errorf("occupancy(500) = %d, want 0", got)
	}
}

func TestServiceQueueDrainedBy(t *testing.T) {
	q := NewServiceQueue(4)
	q.Accept(0, 10) // drains at 10
	q.Accept(5, 10) // server busy until 10, drains at 20
	if got := q.DrainedBy(); got != 20 {
		t.Errorf("DrainedBy = %d, want 20", got)
	}
	if q.Accepted() != 2 {
		t.Errorf("Accepted = %d, want 2", q.Accepted())
	}
}

func TestServiceQueueMinCapacity(t *testing.T) {
	q := NewServiceQueue(0)
	if q.Capacity() != 1 {
		t.Errorf("capacity clamped to %d, want 1", q.Capacity())
	}
	a1, _ := q.Accept(0, 50)
	a2, _ := q.Accept(0, 50)
	if a1 != 0 || a2 != 50 {
		t.Errorf("single-slot queue: accepts %d,%d want 0,50", a1, a2)
	}
}

// Properties: with monotone arrivals, acceptance and finish times are
// monotone, acceptance never precedes arrival, and finish covers service.
func TestServiceQueueProperties(t *testing.T) {
	f := func(capRaw uint8, gaps []uint16, services []uint16) bool {
		q := NewServiceQueue(int(capRaw%16) + 1)
		n := len(gaps)
		if len(services) < n {
			n = len(services)
		}
		var now, lastAccept, lastFinish Cycle
		for i := 0; i < n; i++ {
			now += Cycle(gaps[i] % 500)
			s := Cycle(services[i]%100) + 1
			a, fin := q.Accept(now, s)
			if a < now || a < lastAccept {
				return false
			}
			if fin < a+s || fin < lastFinish {
				return false
			}
			lastAccept, lastFinish = a, fin
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
