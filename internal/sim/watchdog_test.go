package sim

import (
	"testing"
	"time"
)

type spinExec struct{}

func (spinExec) Exec(core int, op Op, now Cycle) Result { return Result{Latency: 1} }

// A program that never terminates must be crashed and unwound once the
// sim clock reaches the watchdog budget, instead of hanging the host.
func TestWatchdogKillsLivelockedProgram(t *testing.T) {
	e := NewEngine(spinExec{}, 1, 1)
	e.SetWatchdog(10_000)
	done := make(chan struct{})
	go func() {
		e.Run([]Program{func(ctx *Ctx) {
			for {
				ctx.Compute(1)
			}
		}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog did not unwind the livelocked program")
	}
	if !e.WatchdogFired() {
		t.Error("WatchdogFired not reported")
	}
	if !e.Crashed() {
		t.Error("watchdog kill did not mark the engine crashed")
	}
}

// A program that finishes under budget must not trip the watchdog.
func TestWatchdogQuietOnNormalCompletion(t *testing.T) {
	e := NewEngine(spinExec{}, 1, 1)
	e.SetWatchdog(10_000)
	e.Run([]Program{func(ctx *Ctx) { ctx.Compute(100) }})
	if e.WatchdogFired() || e.Crashed() {
		t.Error("watchdog fired on a run that finished under budget")
	}
}
