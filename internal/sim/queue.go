package sim

// ServiceQueue models a bounded FIFO queue drained by a single server —
// the shape of the memory controller's write pending queue (WPQ): entries
// are accepted when a slot is free and drain one at a time, each occupying
// the server for its service time.
//
// Because the engine issues operations in nondecreasing global time,
// arrivals are monotone and the classic recurrences apply:
//
//	accept_i = max(arrival_i, finish_{i-capacity})
//	finish_i = max(accept_i, finish_{i-1}) + service_i
//
// Acceptance time is what a core waits for when a design requires a
// *synchronous* persist (the entry is durable once inside the ADR-protected
// queue); finish time is when the entry has drained to the device.
type ServiceQueue struct {
	capacity int
	ring     []Cycle // finish times of the last `capacity` entries
	head     int     // ring index of finish_{i-capacity}
	last     Cycle   // finish_{i-1}
	accepted int64
	// BusyUntil is the largest finish time handed out; Drain barriers use it.
	busyUntil Cycle
}

// NewServiceQueue returns a queue with the given slot capacity.
func NewServiceQueue(capacity int) *ServiceQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &ServiceQueue{capacity: capacity, ring: make([]Cycle, capacity)}
}

// Accept enqueues one entry arriving at `arrival` needing `service` cycles
// of drain time. It returns when the entry is accepted (slot free; durable
// under ADR) and when it finishes draining.
func (q *ServiceQueue) Accept(arrival Cycle, service Cycle) (accept, finish Cycle) {
	accept = arrival
	if oldest := q.ring[q.head]; oldest > accept {
		accept = oldest // wait for a slot
	}
	finish = accept
	if q.last > finish {
		finish = q.last
	}
	finish += service
	q.ring[q.head] = finish
	q.head = (q.head + 1) % q.capacity
	q.last = finish
	if finish > q.busyUntil {
		q.busyUntil = finish
	}
	q.accepted++
	return accept, finish
}

// Reset clears the queue's timing state — a power cycle. Whatever was
// draining is gone (ADR drains and battery flushes are modeled by the
// crash path, not here), and the next machine incarnation restarts its
// clock at zero, so stale finish times from the previous life must not
// delay new entries. The accepted counter survives: it feeds cumulative
// device statistics.
func (q *ServiceQueue) Reset() {
	for i := range q.ring {
		q.ring[i] = 0
	}
	q.head = 0
	q.last = 0
	q.busyUntil = 0
}

// Occupancy returns how many entries are still draining at time t.
func (q *ServiceQueue) Occupancy(t Cycle) int {
	n := 0
	for _, f := range q.ring {
		if f > t {
			n++
		}
	}
	return n
}

// DrainedBy returns the time by which everything accepted so far has
// drained (a full-queue barrier, e.g. for a crash-time ADR flush).
func (q *ServiceQueue) DrainedBy() Cycle { return q.busyUntil }

// Accepted returns the total number of entries accepted.
func (q *ServiceQueue) Accepted() int64 { return q.accepted }

// Capacity returns the slot capacity.
func (q *ServiceQueue) Capacity() int { return q.capacity }
