// Package sim provides the discrete-event simulation engine underneath the
// Silo reproduction: deterministic multi-core scheduling at memory-operation
// granularity, a cycle clock, and shared-resource service queues.
//
// The engine is a single-goroutine cooperative scheduler: each simulated
// core exposes its workload as a pull-based OpStream, and the engine
// repeatedly executes the next operation of the core with the smallest
// local time, so runs are deterministic for a given seed and shared-queue
// contention is causal: reservations on shared resources are made in
// nondecreasing global time. The steady-state path performs zero channel
// operations and zero heap allocations per op.
//
// Workloads written as plain Go functions (a Program issuing operations
// through a Ctx) run on one of two transports: NewProgramStream suspends
// the function on a runtime coroutine (iter.Pull) — the fast path — while
// Engine.Run keeps the legacy goroutine-per-program channel handoff alive
// as a compatibility shim for callers not yet ported (and as the reference
// scheduler for determinism-equivalence tests).
package sim

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"silo/internal/mem"
)

// Cycle is a point in simulated time, measured in CPU cycles (2 GHz in the
// default configuration, so 1 cycle = 0.5 ns).
type Cycle int64

// OpKind enumerates the operations a core can issue.
type OpKind uint8

const (
	// OpLoad reads one 8-byte word.
	OpLoad OpKind = iota
	// OpStore writes one 8-byte word.
	OpStore
	// OpTxBegin marks the beginning of a durable transaction (Tx_begin).
	OpTxBegin
	// OpTxEnd marks transaction commit (Tx_end).
	OpTxEnd
	// OpCompute consumes a fixed number of cycles without touching memory.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpTxBegin:
		return "tx_begin"
	case OpTxEnd:
		return "tx_end"
	case OpCompute:
		return "compute"
	}
	return "unknown"
}

// Op is one operation issued by a core.
type Op struct {
	Kind   OpKind
	Addr   mem.Addr // word-aligned for loads/stores
	Data   mem.Word // store payload
	Cycles Cycle    // compute duration
}

// Result is the executor's reply to one operation.
type Result struct {
	Latency Cycle    // cycles the core is stalled by this op
	Value   mem.Word // loaded value (OpLoad only)
}

// Executor executes operations against the simulated machine (caches,
// logging hardware, memory controller, PM). It is called with operations
// in nondecreasing `now` order across all cores.
type Executor interface {
	Exec(core int, op Op, now Cycle) Result
}

// ErrCrashed is the panic value used to unwind core programs when the
// engine injects a crash; the transports recover it internally.
var ErrCrashed = errors.New("sim: machine crashed")

// Program is the body of one core's workload. It must issue all memory
// traffic through ctx and return when its share of work is done.
type Program func(ctx *Ctx)

// OpStream is one core's workload as a pull-based operation stream — the
// interface the cooperative engine drives directly.
//
// The engine alternates Next and Deliver: Next returns the core's next
// operation (false when the stream is exhausted), the engine executes it,
// and Deliver hands back the result before the next Next. A Result with
// negative Latency is the crash sentinel: the machine lost power, the
// operation did not execute, and the stream must return false from every
// subsequent Next call.
type OpStream interface {
	Next() (Op, bool)
	Deliver(Result)
}

// Ctx is the interface a Program uses to talk to the engine. It is bound
// to one core and must only be used from that Program's control flow.
type Ctx struct {
	core  int
	issue func(Op) Result
	// Rand is a per-core deterministic random source (seed + core id).
	Rand *rand.Rand
}

// CoreRand returns core i's deterministic random source for an engine
// seed — the single definition both transports and native streams share,
// so every scheduler produces identical random sequences.
func CoreRand(seed int64, core int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(core)*1_000_003))
}

// Core returns the core index this context is bound to.
func (c *Ctx) Core() int { return c.core }

// Load reads the 8-byte word at addr (word-aligned).
func (c *Ctx) Load(addr mem.Addr) mem.Word {
	return c.issue(Op{Kind: OpLoad, Addr: addr.Word()}).Value
}

// Store writes the 8-byte word at addr (word-aligned).
func (c *Ctx) Store(addr mem.Addr, v mem.Word) {
	c.issue(Op{Kind: OpStore, Addr: addr.Word(), Data: v})
}

// TxBegin starts a durable transaction on this core.
func (c *Ctx) TxBegin() { c.issue(Op{Kind: OpTxBegin}) }

// TxEnd commits the current transaction; it returns when the design's
// commit protocol (ordering constraints included) has completed.
func (c *Ctx) TxEnd() { c.issue(Op{Kind: OpTxEnd}) }

// Compute advances this core's clock by n cycles of pure computation.
func (c *Ctx) Compute(n Cycle) {
	if n > 0 {
		c.issue(Op{Kind: OpCompute, Cycles: n})
	}
}

// slot is the engine's per-core scheduling state: the fetched-but-not-yet
// executed operation, if any.
type slot struct {
	op   Op
	ok   bool
	done bool
}

// Engine drives the per-core op streams against the executor.
type Engine struct {
	exec  Executor
	cores int
	seed  int64

	crashed atomic.Bool
	// special is true when any per-op slow-path check is armed (crash
	// happened, watchdog set, or crash scheduled); Step's fast path skips
	// all three checks while it is false.
	special bool

	// Cycle-granular crash injection (ScheduleCrash).
	crashAt     Cycle
	crashInject func(now Cycle)

	// Sim-cycle watchdog (SetWatchdog).
	watchdog      Cycle
	watchdogFired bool

	// Cooperative scheduler state (Bind/Step).
	streams []OpStream
	slots   []slot
	live    int

	// Stats populated by the run.
	coreTime  []Cycle
	opsByKind [5]int64
}

// NewEngine creates an engine over exec with the given core count. Seed
// drives the per-core random sources handed to programs.
func NewEngine(exec Executor, cores int, seed int64) *Engine {
	if cores < 1 {
		cores = 1
	}
	return &Engine{exec: exec, cores: cores, seed: seed, coreTime: make([]Cycle, cores)}
}

// Seed returns the engine seed (native stream builders derive per-core
// random sources from it via CoreRand).
func (e *Engine) Seed() int64 { return e.seed }

// Crash flags the machine as crashed; every stream receives the crash
// sentinel at its next operation and the run ends. Safe to call from the
// executor (which runs on the engine goroutine) or from a stop-condition
// callback.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.special = true
}

// ScheduleCrash arranges a power failure at the first scheduling point
// whose core-local time is at or after cycle c — between operations of
// the op stream, not quantized to op *counts*, so the same wall-clock
// instant hits different designs inside different operations. inject is
// called exactly once with the crash time (typically Machine.InjectCrash,
// which performs the battery flush and calls Crash); the engine then
// unwinds every core.
func (e *Engine) ScheduleCrash(c Cycle, inject func(now Cycle)) {
	e.crashAt = c
	e.crashInject = inject
	e.special = true
}

// SetWatchdog arms a sim-cycle budget: when any core's local clock
// reaches c the engine crashes the machine and unwinds every program, so
// a livelocked campaign (a commit protocol that never acks, a queue that
// never drains) terminates deterministically instead of spinning its
// host forever. Zero disables the watchdog.
func (e *Engine) SetWatchdog(c Cycle) {
	e.watchdog = c
	e.special = c > 0 || e.crashInject != nil || e.crashed.Load()
}

// WatchdogFired reports whether the sim-cycle watchdog terminated the
// run.
func (e *Engine) WatchdogFired() bool { return e.watchdogFired }

// Crashed reports whether a crash has been injected.
func (e *Engine) Crashed() bool { return e.crashed.Load() }

// Now returns the maximum core-local time observed so far — the "wall
// clock" of the simulation.
func (e *Engine) Now() Cycle {
	var max Cycle
	for _, t := range e.coreTime {
		if t > max {
			max = t
		}
	}
	return max
}

// CoreTime returns core i's local clock.
func (e *Engine) CoreTime(i int) Cycle { return e.coreTime[i] }

// Ops returns the number of operations of kind k executed.
func (e *Engine) Ops(k OpKind) int64 { return e.opsByKind[k] }

// Bind arms the cooperative scheduler with one stream per core and
// prefetches each stream's first operation. Streams run when Step is
// called; most callers use RunStreams instead.
func (e *Engine) Bind(streams []OpStream) {
	if len(streams) != e.cores {
		panic("sim: len(streams) must equal core count")
	}
	e.streams = streams
	e.slots = make([]slot, e.cores)
	e.live = e.cores
	for i := range e.slots {
		e.fetch(i)
	}
}

// fetch pulls core i's next operation into its slot, retiring the stream
// when it is exhausted.
func (e *Engine) fetch(i int) {
	op, more := e.streams[i].Next()
	if !more {
		e.slots[i].done = true
		e.live--
		return
	}
	e.slots[i].op, e.slots[i].ok = op, true
}

// Step makes one scheduling decision: it picks the live core with the
// smallest local time and executes (or crash-unwinds) that one fetched
// operation, then refetches that core's next op — every slot always
// holds a pending op (prefetched by Bind), so the min-time choice stays
// well defined with one stream pull per step. It returns false when
// every stream is exhausted. The steady-state path performs no channel
// operations and no heap allocations.
func (e *Engine) Step() bool {
	if e.live <= 0 {
		return false
	}
	// Pick the live core with the smallest local time.
	slots, coreTime := e.slots, e.coreTime
	best := -1
	var bt Cycle
	for i := range slots {
		if !slots[i].ok {
			continue
		}
		if best == -1 || coreTime[i] < bt {
			best, bt = i, coreTime[i]
		}
	}
	if best == -1 {
		return false
	}
	s := &slots[best]
	s.ok = false

	// Slow path: a crash happened, is scheduled, or a watchdog is armed.
	// All three arming points set e.special, so the common op pays one
	// branch here.
	if e.special {
		if e.crashed.Load() {
			e.streams[best].Deliver(Result{Latency: -1})
			e.fetch(best)
			return true
		}
		if e.watchdog > 0 && bt >= e.watchdog {
			e.watchdogFired = true
			e.Crash()
			e.streams[best].Deliver(Result{Latency: -1})
			e.fetch(best)
			return true
		}
		if e.crashInject != nil && bt >= e.crashAt {
			inject := e.crashInject
			e.crashInject = nil
			inject(bt)
			if !e.crashed.Load() {
				e.Crash()
			}
			e.streams[best].Deliver(Result{Latency: -1})
			e.fetch(best)
			return true
		}
	}
	res := e.exec.Exec(best, s.op, bt)
	if res.Latency < 0 {
		// Executor-injected crash: unwind without advancing time.
		e.streams[best].Deliver(res)
		e.fetch(best)
		return true
	}
	e.opsByKind[s.op.Kind]++
	coreTime[best] = bt + res.Latency
	e.streams[best].Deliver(res)
	e.fetch(best)
	return true
}

// stopper is implemented by streams that need explicit teardown when the
// engine unwinds without draining them (a panic escaping the executor,
// e.g. an audit violation): coroutine transports resume-and-release their
// suspended frame.
type stopper interface{ Stop() }

// Finish tears down any still-suspended streams. External drivers of
// Bind/Step (harness.ControlledRun) must call it when they stop stepping
// before every stream is exhausted — normal exhaustion needs no teardown,
// but an abnormal unwind (an audit-violation panic, an early stop) leaves
// coroutine transports suspended. RunStreams calls it internally.
func (e *Engine) Finish() { e.release() }

// release tears down still-suspended streams after an abnormal unwind.
func (e *Engine) release() {
	for i, s := range e.streams {
		if st, ok := s.(stopper); ok && !e.slots[i].done {
			st.Stop()
		}
	}
}

// RunStreams executes one OpStream per core to completion (or until a
// crash) on the cooperative scheduler and returns the final simulated
// time. It may be called once per Engine.
func (e *Engine) RunStreams(streams []OpStream) Cycle {
	e.Bind(streams)
	defer e.release()
	for e.Step() {
	}
	return e.Now()
}

// Run executes one Program per core through the legacy goroutine
// compatibility shim (one goroutine and a channel handoff per program)
// and returns the final simulated time. Scheduling decisions are made by
// the same cooperative loop as RunStreams, so the two paths are
// op-for-op equivalent; new code should build streams (NewProgramStream
// or a native OpStream) and call RunStreams directly.
func (e *Engine) Run(programs []Program) Cycle {
	streams := make([]OpStream, len(programs))
	for i, p := range programs {
		streams[i] = NewGoroutineStream(i, CoreRand(e.seed, i), p)
	}
	return e.RunStreams(streams)
}
