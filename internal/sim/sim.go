// Package sim provides the discrete-event simulation engine underneath the
// Silo reproduction: deterministic multi-core scheduling at memory-operation
// granularity, a cycle clock, and shared-resource service queues.
//
// Each simulated core runs its workload as a goroutine (a Program) that
// issues operations through a Ctx. The engine serializes all operations,
// always advancing the core with the smallest local time, so runs are
// deterministic for a given seed and shared-queue contention is causal:
// reservations on shared resources are made in nondecreasing global time.
package sim

import (
	"errors"
	"math/rand"
	"sync"

	"silo/internal/mem"
)

// Cycle is a point in simulated time, measured in CPU cycles (2 GHz in the
// default configuration, so 1 cycle = 0.5 ns).
type Cycle int64

// OpKind enumerates the operations a core can issue.
type OpKind uint8

const (
	// OpLoad reads one 8-byte word.
	OpLoad OpKind = iota
	// OpStore writes one 8-byte word.
	OpStore
	// OpTxBegin marks the beginning of a durable transaction (Tx_begin).
	OpTxBegin
	// OpTxEnd marks transaction commit (Tx_end).
	OpTxEnd
	// OpCompute consumes a fixed number of cycles without touching memory.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpTxBegin:
		return "tx_begin"
	case OpTxEnd:
		return "tx_end"
	case OpCompute:
		return "compute"
	}
	return "unknown"
}

// Op is one operation issued by a core.
type Op struct {
	Kind   OpKind
	Addr   mem.Addr // word-aligned for loads/stores
	Data   mem.Word // store payload
	Cycles Cycle    // compute duration
}

// Result is the executor's reply to one operation.
type Result struct {
	Latency Cycle    // cycles the core is stalled by this op
	Value   mem.Word // loaded value (OpLoad only)
}

// Executor executes operations against the simulated machine (caches,
// logging hardware, memory controller, PM). It is called with operations
// in nondecreasing `now` order across all cores.
type Executor interface {
	Exec(core int, op Op, now Cycle) Result
}

// ErrCrashed is the panic value used to unwind core programs when the
// engine injects a crash; the engine recovers it internally.
var ErrCrashed = errors.New("sim: machine crashed")

// Program is the body of one core's workload. It must issue all memory
// traffic through ctx and return when its share of work is done.
type Program func(ctx *Ctx)

type request struct {
	op   Op
	resp chan Result
}

// Ctx is the interface a Program uses to talk to the engine. It is bound
// to one core and must only be used from that Program's goroutine.
type Ctx struct {
	core int
	eng  *Engine
	req  chan request
	resp chan Result
	// Rand is a per-core deterministic random source (seed + core id).
	Rand *rand.Rand
}

// Core returns the core index this context is bound to.
func (c *Ctx) Core() int { return c.core }

func (c *Ctx) issue(op Op) Result {
	c.req <- request{op: op, resp: c.resp}
	r := <-c.resp
	if r.Latency < 0 { // crash sentinel
		panic(ErrCrashed)
	}
	return r
}

// Load reads the 8-byte word at addr (word-aligned).
func (c *Ctx) Load(addr mem.Addr) mem.Word {
	return c.issue(Op{Kind: OpLoad, Addr: addr.Word()}).Value
}

// Store writes the 8-byte word at addr (word-aligned).
func (c *Ctx) Store(addr mem.Addr, v mem.Word) {
	c.issue(Op{Kind: OpStore, Addr: addr.Word(), Data: v})
}

// TxBegin starts a durable transaction on this core.
func (c *Ctx) TxBegin() { c.issue(Op{Kind: OpTxBegin}) }

// TxEnd commits the current transaction; it returns when the design's
// commit protocol (ordering constraints included) has completed.
func (c *Ctx) TxEnd() { c.issue(Op{Kind: OpTxEnd}) }

// Compute advances this core's clock by n cycles of pure computation.
func (c *Ctx) Compute(n Cycle) {
	if n > 0 {
		c.issue(Op{Kind: OpCompute, Cycles: n})
	}
}

// Engine coordinates the per-core program goroutines and the executor.
type Engine struct {
	exec  Executor
	cores int
	seed  int64

	mu      sync.Mutex
	crashed bool

	// Cycle-granular crash injection (ScheduleCrash).
	crashAt     Cycle
	crashInject func(now Cycle)

	// Sim-cycle watchdog (SetWatchdog).
	watchdog      Cycle
	watchdogFired bool

	// Stats populated by Run.
	coreTime  []Cycle
	opsByKind [5]int64
}

// NewEngine creates an engine over exec with the given core count. Seed
// drives the per-core random sources handed to programs.
func NewEngine(exec Executor, cores int, seed int64) *Engine {
	if cores < 1 {
		cores = 1
	}
	return &Engine{exec: exec, cores: cores, seed: seed, coreTime: make([]Cycle, cores)}
}

// Crash flags the machine as crashed; every program unwinds at its next
// operation and Run returns. Safe to call from the executor (which runs on
// the engine goroutine) or from a stop-condition callback.
func (e *Engine) Crash() {
	e.mu.Lock()
	e.crashed = true
	e.mu.Unlock()
}

// ScheduleCrash arranges a power failure at the first scheduling point
// whose core-local time is at or after cycle c — between operations of
// the op stream, not quantized to op *counts*, so the same wall-clock
// instant hits different designs inside different operations. inject is
// called exactly once with the crash time (typically Machine.InjectCrash,
// which performs the battery flush and calls Crash); the engine then
// unwinds every core.
func (e *Engine) ScheduleCrash(c Cycle, inject func(now Cycle)) {
	e.crashAt = c
	e.crashInject = inject
}

// SetWatchdog arms a sim-cycle budget: when any core's local clock
// reaches c the engine crashes the machine and unwinds every program, so
// a livelocked campaign (a commit protocol that never acks, a queue that
// never drains) terminates deterministically instead of spinning its
// host forever. Zero disables the watchdog.
func (e *Engine) SetWatchdog(c Cycle) { e.watchdog = c }

// WatchdogFired reports whether the sim-cycle watchdog terminated the
// run.
func (e *Engine) WatchdogFired() bool { return e.watchdogFired }

// Crashed reports whether a crash has been injected.
func (e *Engine) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Now returns the maximum core-local time observed so far — the "wall
// clock" of the simulation.
func (e *Engine) Now() Cycle {
	var max Cycle
	for _, t := range e.coreTime {
		if t > max {
			max = t
		}
	}
	return max
}

// CoreTime returns core i's local clock.
func (e *Engine) CoreTime(i int) Cycle { return e.coreTime[i] }

// Ops returns the number of operations of kind k executed.
func (e *Engine) Ops(k OpKind) int64 { return e.opsByKind[k] }

// Run executes one Program per core to completion (or until a crash) and
// returns the final simulated time. It may be called once per Engine.
func (e *Engine) Run(programs []Program) Cycle {
	if len(programs) != e.cores {
		panic("sim: len(programs) must equal core count")
	}
	type slot struct {
		pending *request
		done    bool
	}
	slots := make([]slot, e.cores)
	reqCh := make([]chan request, e.cores)
	doneCh := make(chan int, e.cores)

	for i := 0; i < e.cores; i++ {
		reqCh[i] = make(chan request)
		ctx := &Ctx{
			core: i,
			eng:  e,
			req:  reqCh[i],
			resp: make(chan Result, 1),
			Rand: rand.New(rand.NewSource(e.seed + int64(i)*1_000_003)),
		}
		go func(i int, p Program, ctx *Ctx) {
			defer func() {
				if r := recover(); r != nil && r != ErrCrashed { //nolint:errorlint
					panic(r)
				}
				doneCh <- i
			}()
			p(ctx)
		}(i, programs[i], ctx)
	}

	live := e.cores
	for live > 0 {
		// Gather a pending request (or completion) from every live core,
		// so the min-time choice below is well defined. A done signal can
		// arrive for any core while we wait on core i's channel.
		for i := 0; i < e.cores; i++ {
			for !slots[i].done && slots[i].pending == nil {
				select {
				case r := <-reqCh[i]:
					slots[i].pending = &r
				case c := <-doneCh:
					slots[c].done = true
					live--
				}
			}
		}
		if live == 0 {
			break
		}
		// Pick the live core with the smallest local time.
		best := -1
		for i := range slots {
			if slots[i].pending == nil {
				continue
			}
			if best == -1 || e.coreTime[i] < e.coreTime[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		req := slots[best].pending
		slots[best].pending = nil

		if e.Crashed() {
			req.resp <- Result{Latency: -1}
			continue
		}
		if e.watchdog > 0 && e.coreTime[best] >= e.watchdog {
			e.watchdogFired = true
			e.Crash()
			req.resp <- Result{Latency: -1}
			continue
		}
		if e.crashInject != nil && e.coreTime[best] >= e.crashAt {
			inject := e.crashInject
			e.crashInject = nil
			inject(e.coreTime[best])
			if !e.Crashed() {
				e.Crash()
			}
			req.resp <- Result{Latency: -1}
			continue
		}
		res := e.exec.Exec(best, req.op, e.coreTime[best])
		if res.Latency < 0 {
			// Executor-injected crash: unwind without advancing time.
			req.resp <- res
			continue
		}
		e.opsByKind[req.op.Kind]++
		e.coreTime[best] += res.Latency
		req.resp <- res
	}
	return e.Now()
}
