package recovery

import (
	"testing"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
)

func newDev() (*pm.Device, *logging.RegionWriter) {
	dev := pm.New(pm.DefaultConfig())
	return dev, logging.NewRegionWriter(dev, 4)
}

func TestRecoverEmptyLog(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x100, 5)
	rep := Recover(dev, region)
	if rep.TotalRecords != 0 || rep.RedoApplied != 0 || rep.UndoApplied != 0 {
		t.Errorf("empty log produced work: %+v", rep)
	}
	if dev.PeekWord(0x100) != 5 {
		t.Error("recovery touched data with no logs")
	}
}

func TestRecoverCommittedRedoReplay(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x100, 1) // stale: the IPU never ran
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 2},
		logging.CommitImage(0, 7),
	})
	rep := Recover(dev, region)
	if rep.CommittedTx != 1 || rep.RedoApplied != 1 {
		t.Errorf("report: %+v", rep)
	}
	if got := dev.PeekWord(0x100); got != 2 {
		t.Errorf("redo not replayed: %d", got)
	}
}

func TestRecoverUncommittedUndoRevoke(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x200, 9) // partial update reached PM
	region.AppendAtCrash(1, []logging.Image{
		{Kind: logging.ImageUndo, TID: 1, TxID: 3, Addr: 0x200, Data: 4},
	})
	rep := Recover(dev, region)
	if rep.UndoApplied != 1 {
		t.Errorf("report: %+v", rep)
	}
	if got := dev.PeekWord(0x200); got != 4 {
		t.Errorf("undo not revoked: %d", got)
	}
}

func TestRecoverUndoReverseOrder(t *testing.T) {
	// Two undo records for the same word (merge-disabled shape): the
	// revoke must end at the OLDEST value.
	dev, region := newDev()
	dev.PokeWord(0x300, 30)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageUndo, TID: 0, TxID: 1, Addr: 0x300, Data: 10}, // oldest
		{Kind: logging.ImageUndo, TID: 0, TxID: 1, Addr: 0x300, Data: 20},
	})
	Recover(dev, region)
	if got := dev.PeekWord(0x300); got != 10 {
		t.Errorf("reverse revoke broken: %d, want 10", got)
	}
}

func TestRecoverOverflowedUndoOfCommittedDiscarded(t *testing.T) {
	// §III-G: overflowed undo logs carry flush-bit 1; if their transaction
	// committed they must be discarded, not replayed.
	dev, region := newDev()
	dev.PokeWord(0x400, 2) // the new value, already durable
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageUndo, FlushBit: true, TID: 0, TxID: 5, Addr: 0x400, Data: 1},
		logging.CommitImage(0, 5),
	})
	rep := Recover(dev, region)
	if rep.Discarded != 1 {
		t.Errorf("discarded = %d, want 1", rep.Discarded)
	}
	if got := dev.PeekWord(0x400); got != 2 {
		t.Errorf("committed data reverted by overflowed undo: %d", got)
	}
}

func TestRecoverOrphanRedoIgnored(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x500, 1)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 9, Addr: 0x500, Data: 99},
	})
	rep := Recover(dev, region)
	if rep.Discarded != 1 || dev.PeekWord(0x500) != 1 {
		t.Errorf("orphan redo applied: %+v", rep)
	}
}

func TestRecoverUndoRedoRecordBothPaths(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x600, 5)
	dev.PokeWord(0x700, 50)
	region.AppendAtCrash(0, []logging.Image{
		// Committed: replay new value.
		{Kind: logging.ImageUndoRedo, TID: 0, TxID: 1, Addr: 0x600, Data: 4, Data2: 6},
		logging.CommitImage(0, 1),
		// Uncommitted: revoke to old value.
		{Kind: logging.ImageUndoRedo, TID: 0, TxID: 2, Addr: 0x700, Data: 40, Data2: 60},
	})
	rep := Recover(dev, region)
	if rep.RedoApplied != 1 || rep.UndoApplied != 1 {
		t.Errorf("report: %+v", rep)
	}
	if dev.PeekWord(0x600) != 6 {
		t.Error("committed undo+redo not replayed")
	}
	if dev.PeekWord(0x700) != 40 {
		t.Error("uncommitted undo+redo not revoked")
	}
}

func TestRecoverCommittedThenUncommittedSameWord(t *testing.T) {
	// tx1 committed wrote 2 (redo present); tx2 uncommitted wrote 3 with
	// old data 2. Final value must be 2 regardless of apply order.
	dev, region := newDev()
	dev.PokeWord(0x800, 3)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 1, Addr: 0x800, Data: 2},
		logging.CommitImage(0, 1),
		{Kind: logging.ImageUndo, TID: 0, TxID: 2, Addr: 0x800, Data: 2},
	})
	Recover(dev, region)
	if got := dev.PeekWord(0x800); got != 2 {
		t.Errorf("cross-transaction word = %d, want 2", got)
	}
}

func TestRecoverThreadsIndependent(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x900, 1)
	dev.PokeWord(0xA00, 1)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 1, Addr: 0x900, Data: 2},
		logging.CommitImage(0, 1),
	})
	region.AppendAtCrash(1, []logging.Image{
		// Same txid on another thread, uncommitted.
		{Kind: logging.ImageUndo, TID: 1, TxID: 1, Addr: 0xA00, Data: 0},
	})
	Recover(dev, region)
	if dev.PeekWord(0x900) != 2 {
		t.Error("thread 0 redo lost")
	}
	if dev.PeekWord(0xA00) != 0 {
		t.Error("thread 1 undo confused with thread 0's commit (ID tuple is (tid,txid))")
	}
}

func TestVerifyWord(t *testing.T) {
	dev, _ := newDev()
	dev.PokeWord(0xB00, 7)
	if got, ok := VerifyWord(dev, 0xB00, 7); !ok || got != 7 {
		t.Errorf("verify rejected correct word (got=%d ok=%v)", got, ok)
	}
	if got, ok := VerifyWord(dev, 0xB00, 8); ok || got != 7 {
		t.Error("verify accepted wrong word")
	}
}

// TestFig10Scenario walks the paper's worked example (Fig. 10): thread 1
// commits Tx1 and Tx3 (Tx3 still pending its in-place updates at the
// crash); thread 2's Tx2 is in flight with one cacheline already evicted
// to PM. After the crash flush and recovery, Tx1/Tx3's updates are
// durable and Tx2's partial updates are revoked.
func TestFig10Scenario(t *testing.T) {
	dev := pm.New(pm.DefaultConfig())
	fill := func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
		var line [mem.LineSize]byte
		copy(line[:], dev.Peek(la, mem.LineSize))
		return line, 100
	}
	wb := func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) { dev.Write(now, la, data[:]) }
	env := &logging.Env{
		PM:            dev,
		Cache:         cache.NewHierarchy(2, cache.DefaultHierarchyConfig(), fill, wb),
		Region:        logging.NewRegionWriter(dev, 2),
		Cores:         2,
		LogBufEntries: logging.DefaultBufferEntries,
		PersistPath:   60,
	}
	s := core.New(env, core.Options{})

	// Data A–H at distinct lines; initial values i0 = 10*i.
	addr := func(i int) mem.Addr { return mem.Addr(0x10000 + i*mem.LineSize) }
	for i := 0; i < 8; i++ {
		dev.PokeWord(addr(i), mem.Word(10*i))
	}
	A, B, C, D, E, F, G, H := addr(0), addr(1), addr(2), addr(3), addr(4), addr(5), addr(6), addr(7)

	// T1 Tx1: A=A1(1), B=B1(11).
	s.TxBegin(0, 0)
	s.Store(0, A, 0, 1, 1)
	s.Store(0, B, 10, 11, 2)
	s.TxEnd(0, 3)
	// T2 Tx2 begins: D=D1(31), E=E1(41), F=F1(51), E=E2(42), G=G1(61), H=H1(71).
	s.TxBegin(1, 0)
	s.Store(1, D, 30, 31, 1)
	s.Store(1, E, 40, 41, 2)
	s.Store(1, F, 50, 51, 3)
	s.Store(1, E, 41, 42, 4) // merged: E keeps old 40, new 42
	// The cacheline holding D1 is evicted to PM (partial update lands).
	var dline [mem.LineSize]byte
	putWord(dline[:8], 31)
	s.CachelineEvicted(5, D, dline)
	s.Store(1, G, 60, 61, 6)
	s.Store(1, H, 70, 71, 7)
	// T1 Tx3: A=A2(2), C=C1(21); commits, IPU still pending at the crash.
	s.TxBegin(0, 10)
	s.Store(0, A, 1, 2, 11)
	s.Store(0, C, 20, 21, 12)
	s.TxEnd(0, 13)

	// Power failure: selective flush + volatile loss + recovery.
	s.Crash(14)
	env.Cache.InvalidateAll()
	rep := Recover(dev, env.Region)

	if rep.CommittedTx != 1 {
		t.Errorf("committed tx found = %d, want 1 (Tx3's ID tuple)", rep.CommittedTx)
	}
	want := map[string]struct {
		a mem.Addr
		v mem.Word
	}{
		"A": {A, 2},  // Tx3 replayed
		"B": {B, 11}, // Tx1 durable
		"C": {C, 21}, // Tx3 replayed
		"D": {D, 30}, // Tx2 revoked (evicted line rolled back)
		"E": {E, 40}, // Tx2 revoked to oldest value
		"F": {F, 50},
		"G": {G, 60},
		"H": {H, 70},
	}
	for name, w := range want {
		if got := dev.PeekWord(w.a); got != w.v {
			t.Errorf("%s = %d, want %d", name, got, w.v)
		}
	}
}

func putWord(b []byte, w mem.Word) {
	for i := 0; i < 8; i++ {
		b[i] = byte(w >> (8 * i))
	}
}

// TestRecoveryIdempotent: recovery after a crash *during recovery* is the
// same as recovering once — applying the log twice converges to the same
// data-region state.
func TestRecoveryIdempotent(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x100, 1)
	dev.PokeWord(0x200, 9)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 2},
		logging.CommitImage(0, 7),
		{Kind: logging.ImageUndo, TID: 0, TxID: 8, Addr: 0x200, Data: 4},
	})
	first := Recover(dev, region)
	v1, v2 := dev.PeekWord(0x100), dev.PeekWord(0x200)
	second := Recover(dev, region)
	if dev.PeekWord(0x100) != v1 || dev.PeekWord(0x200) != v2 {
		t.Error("second recovery changed the data region")
	}
	if first.TotalRecords != second.TotalRecords {
		t.Error("record counts differ between passes")
	}
}

// TestTornCommitTupleQuarantined is the central robustness guarantee:
// when the crash-flush battery dies mid-way through the commit ID
// tuple, the torn record fails its CRC, is quarantined, and the
// transaction is treated as UNCOMMITTED — its redo records are
// discarded, never silently replayed against a half-durable commit.
func TestTornCommitTupleQuarantined(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x100, 1) // pre-transaction value

	// Battery: one full sealed redo record (18+3 B) plus 8 bytes — the
	// 13 B sealed commit tuple that follows tears at word granularity.
	sealedRedo := logging.UndoBytes + logging.SealBytes
	dev.SetCrashEnergy(sealedRedo+8, true, true)
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 2},
	})
	region.AppendAtCrashCritical(0, []logging.Image{logging.CommitImage(0, 7)})
	dev.ClearCrashEnergy()

	rep := Recover(dev, region)
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (the torn tuple)", rep.Quarantined)
	}
	if rep.CommittedTx != 0 {
		t.Errorf("committed tx = %d, want 0: a torn tuple is no tuple", rep.CommittedTx)
	}
	if rep.RedoApplied != 0 || rep.Discarded == 0 {
		t.Errorf("orphan redo handling wrong: %+v", rep)
	}
	if got := dev.PeekWord(0x100); got != 1 {
		t.Errorf("data = %d, want pre-transaction 1 (redo must not replay)", got)
	}
}

// TestTornRedoSuffixKeepsCommit: Silo's crash flush writes the commit
// tuple BEFORE the pending redo records, so a torn suffix only ever
// costs redundant redo — the committed transaction survives.
func TestTornRedoSuffixKeepsCommit(t *testing.T) {
	dev, region := newDev()
	dev.PokeWord(0x100, 2) // IPU already durable (eager-apply PM)

	sealedCommit := logging.CommitBytes + logging.SealBytes
	dev.SetCrashEnergy(sealedCommit+8, true, false)
	region.AppendAtCrashCritical(0, []logging.Image{logging.CommitImage(0, 7)})
	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 2},
	})
	dev.ClearCrashEnergy()

	rep := Recover(dev, region)
	if rep.CommittedTx != 1 {
		t.Errorf("committed tx = %d, want 1 (tuple flushed before redo)", rep.CommittedTx)
	}
	if got := dev.PeekWord(0x100); got != 2 {
		t.Errorf("committed data lost: %d", got)
	}
}

// TestMidRecoveryCrashConverges: recovery itself can lose power. A
// bounded pass reports Complete=false; restarting from scratch with a
// bigger battery converges to exactly the one-shot result, because
// recovery never mutates the log.
func TestMidRecoveryCrashConverges(t *testing.T) {
	build := func() (*pm.Device, *logging.RegionWriter) {
		dev, region := newDev()
		dev.PokeWord(0x100, 1)
		dev.PokeWord(0x200, 9)
		dev.PokeWord(0x300, 9)
		region.AppendAtCrash(0, []logging.Image{
			{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 2},
			logging.CommitImage(0, 7),
			{Kind: logging.ImageUndo, TID: 0, TxID: 8, Addr: 0x200, Data: 4},
			{Kind: logging.ImageUndo, TID: 0, TxID: 8, Addr: 0x300, Data: 5},
		})
		return dev, region
	}

	// Reference: one uninterrupted pass.
	refDev, refRegion := build()
	refRep := Recover(refDev, refRegion)
	if !refRep.Complete {
		t.Fatal("unbounded recovery reported incomplete")
	}

	// Crash-ridden: one applied word per attempt, doubling.
	dev, region := build()
	limit, restarts := 1, 0
	var rep Report
	for {
		rep = RecoverOpts(dev, region, Options{MaxWrites: limit})
		if rep.Complete {
			break
		}
		if rep.AppliedWrites > limit {
			t.Fatalf("pass applied %d words past its budget %d", rep.AppliedWrites, limit)
		}
		restarts++
		limit *= 2
	}
	if restarts == 0 {
		t.Fatal("MaxWrites=1 never interrupted a 3-write recovery")
	}
	for _, a := range []mem.Addr{0x100, 0x200, 0x300} {
		if got, want := dev.PeekWord(a), refDev.PeekWord(a); got != want {
			t.Errorf("word %#x = %d after re-crashed recovery, one-shot got %d", uint64(a), got, want)
		}
	}
	if rep.CommittedTx != refRep.CommittedTx || rep.UndoApplied != refRep.UndoApplied {
		t.Errorf("final pass report %+v differs from one-shot %+v", rep, refRep)
	}
}
