// Package recovery implements the post-crash procedure of §III-G: scan the
// distributed PM log region, identify committed transactions by their ID
// tuples, replay the redo logs of committed transactions whose in-place
// updates had not finished, and revoke the partial updates of uncommitted
// transactions using their undo logs.
//
// The same procedure recovers the baseline designs' logs (full undo+redo
// records with or without commit markers), which lets the test suite
// verify atomic durability for every evaluated scheme, not just Silo.
//
// The scan is checked: every record carries a CRC and sequence number
// (see logging.Seal), and a torn or corrupt record is quarantined — the
// scan stops there, and in particular a torn commit ID tuple leaves its
// transaction *uncommitted*, the safe default (its undo logs revoke the
// partial updates instead of a half-parsed tuple replaying garbage).
package recovery

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// Report summarizes one recovery pass.
type Report struct {
	CommittedTx  int // transactions found committed via ID tuples
	RedoApplied  int // redo records replayed
	UndoApplied  int // undo records revoked
	Discarded    int // flush-bit-1 records of committed transactions
	Quarantined  int // torn/corrupt records the checked scan refused
	TotalRecords int

	// AppliedWrites counts data-region words written by this pass;
	// Complete is false when Options.MaxWrites stopped the pass early
	// (a simulated crash during recovery).
	AppliedWrites int
	Complete      bool
}

// Options tunes a recovery pass.
type Options struct {
	// MaxWrites stops the pass after this many applied words — a power
	// failure during recovery itself (0 = run to completion). Recovery
	// never mutates the log region, so a subsequent pass converges.
	MaxWrites int

	// Telemetry receives per-thread scan and replay probe events
	// (nil disables probes); Now stamps them (recovery runs outside the
	// crashed run's clock, so the caller supplies the crash cycle).
	Telemetry *telemetry.Recorder
	Now       sim.Cycle
}

type txKey struct {
	tid  uint8
	txid uint16
}

// Recover runs the recovery procedure over every thread's log area and
// applies the resulting writes directly to the PM data region (recovery
// I/O is not part of the evaluated run's traffic).
func Recover(dev *pm.Device, region *logging.RegionWriter) Report {
	return RecoverOpts(dev, region, Options{})
}

// RecoverOpts is Recover with fault-injection options.
func RecoverOpts(dev *pm.Device, region *logging.RegionWriter, opt Options) Report {
	rep := Report{Complete: true}
	write := func(addr mem.Addr, w mem.Word) bool {
		if opt.MaxWrites > 0 && rep.AppliedWrites >= opt.MaxWrites {
			rep.Complete = false
			return false
		}
		dev.PokeWord(addr, w)
		rep.AppliedWrites++
		return true
	}
	scans := region.ScanAllChecked()
	for t, sr := range scans {
		opt.Telemetry.RecoveryScan(t, opt.Now, len(sr.Images), sr.Quarantined)
	}
	walk(scans, &rep, write)
	opt.Telemetry.RecoveryApply(opt.Now, rep.RedoApplied, rep.UndoApplied, rep.Discarded)
	return rep
}

// Resolved runs the recovery procedure *symbolically*: the writes a full
// pass would apply, as a map, without touching the device. The audit
// layer uses it at crash time to prove every committed word is
// reconstructible from the durable domains (durable data overlaid with
// the resolved log writes) before recovery itself ever runs.
func Resolved(region *logging.RegionWriter) map[mem.Addr]mem.Word {
	var rep Report
	m := make(map[mem.Addr]mem.Word)
	walk(region.ScanAllChecked(), &rep, func(a mem.Addr, w mem.Word) bool {
		m[a] = w
		return true
	})
	return m
}

// walk is the recovery procedure over an already-scanned log region,
// with the data-region writes abstracted behind apply; apply returning
// false aborts the walk immediately (a power failure mid-recovery). The
// counters in rep reflect exactly the work performed up to that point.
func walk(all []logging.ScanResult, rep *Report, apply func(mem.Addr, mem.Word) bool) {
	// Pass 1: the ID tuples name the committed transactions (§III-G).
	committed := make(map[txKey]bool)
	for _, sr := range all {
		rep.Quarantined += sr.Quarantined
		for _, im := range sr.Images {
			rep.TotalRecords++
			if im.Kind == logging.ImageCommit {
				committed[txKey{im.TID, im.TxID}] = true
				rep.CommittedTx++
			}
		}
	}

	// Pass 2, per thread: replay committed redo in append order, then
	// revoke uncommitted undo in reverse append order. Threads write
	// disjoint words (isolation is software-provided, §III-A), so the
	// per-thread ordering is the only one that matters.
	for _, sr := range all {
		var undo []logging.Image
		for _, im := range sr.Images {
			if im.Kind == logging.ImageCommit {
				continue
			}
			k := txKey{im.TID, im.TxID}
			if committed[k] {
				if im.FlushBit {
					// Overflowed undo log of a committed transaction:
					// the data already reached PM; discard (§III-G).
					rep.Discarded++
					continue
				}
				switch im.Kind {
				case logging.ImageRedo:
					if !apply(im.Addr, im.Data) {
						return
					}
					rep.RedoApplied++
				case logging.ImageUndoRedo:
					if !apply(im.Addr, im.Data2) {
						return
					}
					rep.RedoApplied++
				case logging.ImageUndo:
					// An undo record of a committed transaction without
					// its flush-bit set: its data is already durable
					// (it was evicted or in-place updated); discard.
					rep.Discarded++
				}
				continue
			}
			// Uncommitted: collect the old data for reverse revoke.
			switch im.Kind {
			case logging.ImageUndo, logging.ImageUndoRedo:
				undo = append(undo, im)
			case logging.ImageRedo:
				// A redo record without a commit tuple can only appear
				// if the crash flush was itself interrupted; ignoring it
				// is safe (the transaction is treated as aborted).
				rep.Discarded++
			}
		}
		for i := len(undo) - 1; i >= 0; i-- {
			if !apply(undo[i].Addr, undo[i].Data) {
				return
			}
			rep.UndoApplied++
		}
	}
}

// VerifyWord checks one word of the recovered data region against an
// expected value. got is the durable value actually read; ok reports
// whether it matches want.
func VerifyWord(dev *pm.Device, addr mem.Addr, want mem.Word) (got mem.Word, ok bool) {
	got = dev.PeekWord(addr)
	return got, got == want
}
