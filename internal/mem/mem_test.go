package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		in   Addr
		line Addr
		off  int
		word Addr
		wIdx int
	}{
		{0, 0, 0, 0, 0},
		{1, 0, 1, 0, 0},
		{63, 0, 63, 56, 7},
		{64, 64, 0, 64, 0},
		{0x1000 + 17, 0x1000, 17, 0x1000 + 16, 2},
		{0xFFFFFFFFFFF8, 0xFFFFFFFFFFC0, 56, 0xFFFFFFFFFFF8, 7},
	}
	for _, c := range cases {
		if got := c.in.Line(); got != c.line {
			t.Errorf("%v.Line() = %v, want %v", c.in, got, c.line)
		}
		if got := c.in.LineOffset(); got != c.off {
			t.Errorf("%v.LineOffset() = %d, want %d", c.in, got, c.off)
		}
		if got := c.in.Word(); got != c.word {
			t.Errorf("%v.Word() = %v, want %v", c.in, got, c.word)
		}
		if got := c.in.WordIndex(); got != c.wIdx {
			t.Errorf("%v.WordIndex() = %d, want %d", c.in, got, c.wIdx)
		}
	}
}

func TestAddrAlignment(t *testing.T) {
	if !Addr(0).IsWordAligned() || !Addr(0).IsLineAligned() {
		t.Error("0 must be word- and line-aligned")
	}
	if Addr(4).IsWordAligned() {
		t.Error("4 is not word-aligned")
	}
	if !Addr(8).IsWordAligned() {
		t.Error("8 is word-aligned")
	}
	if Addr(8).IsLineAligned() {
		t.Error("8 is not line-aligned")
	}
	if !Addr(128).IsLineAligned() {
		t.Error("128 is line-aligned")
	}
}

func TestAddrProperties(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		// A line address is line-aligned and contains the original.
		l := addr.Line()
		if !l.IsLineAligned() || addr < l || addr >= l+LineSize {
			return false
		}
		// Word/offset decomposition reassembles the address.
		return addr.Word()+Addr(int(addr)&(WordSize-1)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultLayout(t *testing.T) {
	l := DefaultLayout()
	if l.DataSize+l.LogSize != 16<<30 {
		t.Fatalf("layout does not cover 16 GB: data=%d log=%d", l.DataSize, l.LogSize)
	}
	if l.InLog(l.DataBase) {
		t.Error("data base must not be in log region")
	}
	if !l.InData(l.DataBase) {
		t.Error("data base must be in data region")
	}
	if !l.InLog(l.LogBase) {
		t.Error("log base must be in log region")
	}
	if l.InData(l.LogBase) {
		t.Error("log base must not be in data region")
	}
	if l.InData(l.LogBase+Addr(l.LogSize)) || l.InLog(l.LogBase+Addr(l.LogSize)) {
		t.Error("one past the end is in neither region")
	}
}

func TestThreadLogAreasDisjoint(t *testing.T) {
	l := DefaultLayout()
	for _, n := range []int{1, 2, 4, 8, 16} {
		var prevEnd Addr
		for tid := 0; tid < n; tid++ {
			base, size := l.ThreadLogArea(tid, n)
			if size == 0 {
				t.Fatalf("n=%d tid=%d: zero-size area", n, tid)
			}
			if !base.IsLineAligned() {
				t.Errorf("n=%d tid=%d: area base %v not line-aligned", n, tid, base)
			}
			if tid > 0 && base < prevEnd {
				t.Errorf("n=%d tid=%d: area overlaps previous", n, tid)
			}
			if !l.InLog(base) || !l.InLog(base+Addr(size-1)) {
				t.Errorf("n=%d tid=%d: area escapes log region", n, tid)
			}
			prevEnd = base + Addr(size)
		}
	}
}

func TestThreadLogAreaZeroThreads(t *testing.T) {
	l := DefaultLayout()
	base, size := l.ThreadLogArea(0, 0)
	if size == 0 || !l.InLog(base) {
		t.Error("nthreads<=0 must fall back to a single full area")
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0xABC).String(); got != "0x000000000abc" {
		t.Errorf("Addr.String() = %q", got)
	}
}
