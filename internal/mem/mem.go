// Package mem defines the basic memory geometry shared by every component
// of the simulated machine: 64-bit physical addresses, 8-byte words and
// 64-byte cachelines, plus the split of the persistent-memory physical
// address space into a data region and a log region.
//
// All simulator components (caches, memory controller, PM device, logging
// hardware) agree on these constants, mirroring the configuration in
// Table II of the paper (64 B lines, 64-bit CPU, 16 GB PM).
package mem

import "fmt"

const (
	// WordSize is the granularity of a CPU store and of the log data
	// fields in a Silo log entry (Fig. 6): one 64-bit word.
	WordSize = 8

	// LineSize is the cacheline size used throughout the hierarchy.
	LineSize = 64

	// WordsPerLine is the number of words in one cacheline.
	WordsPerLine = LineSize / WordSize

	// LineShift is log2(LineSize).
	LineShift = 6

	// WordShift is log2(WordSize).
	WordShift = 3
)

// Addr is a 64-bit physical address. Only the low 48 bits are meaningful,
// matching the 48-bit addr field of the log entry (Fig. 6).
type Addr uint64

// AddrMask48 masks an address down to the 48 bits stored in log entries.
const AddrMask48 = (Addr(1) << 48) - 1

// Line returns the address of the cacheline containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Word returns the address of the word containing a.
func (a Addr) Word() Addr { return a &^ (WordSize - 1) }

// LineOffset returns the byte offset of a within its cacheline.
func (a Addr) LineOffset() int { return int(a & (LineSize - 1)) }

// WordIndex returns the index of the word containing a within its line.
func (a Addr) WordIndex() int { return int(a&(LineSize-1)) >> WordShift }

// IsWordAligned reports whether a is 8-byte aligned.
func (a Addr) IsWordAligned() bool { return a&(WordSize-1) == 0 }

// IsLineAligned reports whether a is 64-byte aligned.
func (a Addr) IsLineAligned() bool { return a&(LineSize-1) == 0 }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// Word is the value of one 8-byte memory word.
type Word uint64

// Layout describes the physical address map of the PM device. The data
// region holds application data; the log region holds the per-thread
// distributed log areas (§III-B, "Log Region"). The two regions never
// overlap, so the recovery code can tell log writes from data writes.
type Layout struct {
	DataBase Addr // first byte of the data region
	DataSize uint64
	LogBase  Addr // first byte of the log region
	LogSize  uint64
}

// DefaultLayout mirrors the paper's 16 GB PM: we reserve the top 256 MB
// as the log region. The simulated media is sparse, so the nominal sizes
// cost nothing until touched.
func DefaultLayout() Layout {
	const total = 16 << 30
	const logSize = 256 << 20
	return Layout{
		DataBase: 0,
		DataSize: total - logSize,
		LogBase:  Addr(total - logSize),
		LogSize:  logSize,
	}
}

// InData reports whether a falls inside the data region.
func (l Layout) InData(a Addr) bool {
	return a >= l.DataBase && uint64(a-l.DataBase) < l.DataSize
}

// InLog reports whether a falls inside the log region.
func (l Layout) InLog(a Addr) bool {
	return a >= l.LogBase && uint64(a-l.LogBase) < l.LogSize
}

// ThreadLogArea returns the base address and size of thread tid's private
// log area. Silo uses a distributed log scheme in which each thread owns
// a contiguous area to avoid cross-thread contention on log writes.
func (l Layout) ThreadLogArea(tid, nthreads int) (Addr, uint64) {
	if nthreads <= 0 {
		nthreads = 1
	}
	per := l.LogSize / uint64(nthreads)
	per &^= LineSize - 1 // keep areas line-aligned
	return l.LogBase + Addr(uint64(tid)*per), per
}
