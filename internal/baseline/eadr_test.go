package baseline

import (
	"testing"

	"silo/internal/logging"
)

func TestEADRSWLogsThroughCache(t *testing.T) {
	env, dev := newEnv(1)
	e := NewEADRSW(env).(*EADRSW)
	e.TxBegin(0, 0)
	stall := e.Store(0, 0x1000, 1, 2, 10)
	if stall < SWLogInsOverhead {
		t.Errorf("store stall = %d; composing the record costs instructions", stall)
	}
	// No PM traffic yet: the record lives in the cache.
	if dev.Stats().WPQWrites != 0 {
		t.Error("eADR log write reached PM before any eviction")
	}
	// The record is parseable from the cached log area.
	base, _ := env.PM.Config().Layout.ThreadLogArea(0, 1)
	if v, ok := env.Cache.PeekWord(0, base); !ok || v == 0 {
		t.Error("log record not in cache")
	}
}

func TestEADRSWNoPersistAtCommit(t *testing.T) {
	env, dev := newEnv(1)
	e := NewEADRSW(env).(*EADRSW)
	e.TxBegin(0, 0)
	e.Store(0, 0x1000, 1, 2, 10)
	stall := e.TxEnd(0, 20)
	if stall > 3*env.PersistPath/2 {
		t.Errorf("commit stall = %d; eADR needs no flushes/fences", stall)
	}
	if dev.Stats().WPQWrites != 0 {
		t.Error("commit forced PM writes under eADR")
	}
}

func TestEADRSWRecoverableAfterCacheFlush(t *testing.T) {
	env, _ := newEnv(1)
	e := NewEADRSW(env).(*EADRSW)
	e.TxBegin(0, 0)
	e.Store(0, 0x1000, 1, 2, 10)
	e.TxEnd(0, 20)
	e.TxBegin(0, 30)
	e.Store(0, 0x2000, 3, 4, 40) // uncommitted
	// eADR battery: all dirty cache contents flush at the crash.
	env.Cache.ForceWriteBackAll(50)
	recs := env.Region.Scan(0)
	if len(recs) != 3 {
		t.Fatalf("scanned %d records, want 3 (record, commit, record)", len(recs))
	}
	if recs[0].Kind != logging.ImageUndoRedo || recs[0].Data2 != 2 {
		t.Errorf("first record wrong: %+v", recs[0])
	}
	if recs[1].Kind != logging.ImageCommit {
		t.Errorf("commit marker wrong: %+v", recs[1])
	}
	if recs[2].Kind != logging.ImageUndoRedo || recs[2].Data != 3 {
		t.Errorf("uncommitted record wrong: %+v", recs[2])
	}
	if !e.PersistCachesAtCrash() {
		t.Error("eADR must persist caches at crash")
	}
}

func TestEADRSWCachePollution(t *testing.T) {
	env, _ := newEnv(1)
	e := NewEADRSW(env).(*EADRSW)
	e.TxBegin(0, 0)
	before := env.Cache.L1(0).Hits + env.Cache.L1(0).Misses
	e.Store(0, 0x1000, 1, 2, 10)
	after := env.Cache.L1(0).Hits + env.Cache.L1(0).Misses
	// Composing a 26 B record costs at least 4 extra L1 accesses.
	if after-before < 4 {
		t.Errorf("log composition touched L1 only %d times", after-before)
	}
}
