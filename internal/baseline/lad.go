package baseline

import (
	"sort"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

const (
	// LADMCCapacity is the number of cachelines the memory controller's
	// ADR domain can buffer for uncommitted transactions (the 64-entry
	// queue of Table II).
	LADMCCapacity = 64
	// LADFlushPerLine is the L1→L2→L3→MC path cost, per line, of the
	// Prepare-phase flush that LAD's commit must wait for.
	LADFlushPerLine sim.Cycle = 40
	// LADCommitMsg is the Commit-phase message cost.
	LADCommitMsg sim.Cycle = 4
)

type ladLine struct {
	data  [mem.LineSize]byte
	owner int
}

// LAD models distributed logless atomic durability (Gupta et al.,
// MICRO'19) with the proactive flushing scheme enabled (§VI-A): no logs
// are ever written. Updated cachelines are buffered in the memory
// controller (an ADR persistence domain) until their transaction commits;
// commit runs in two phases — Prepare flushes the transaction's remaining
// dirty L1 lines down to the MC (the CPU stalls for the whole walk), and
// Commit releases the buffered lines to the PM data region with a simple
// message. If the MC buffer overflows, LAD falls back to a slow mode that
// reads the old data from PM to produce an undo log before releasing a
// line early.
type LAD struct {
	env   *logging.Env
	inTx  []bool
	txid  []uint16
	txSet []map[mem.Addr]struct{} // lines written by the in-flight tx
	mcBuf map[mem.Addr]ladLine

	buffered, released int64
	overflows          int64
	slowModeReads      int64
}

var _ logging.Design = (*LAD)(nil)
var _ logging.MCReader = (*LAD)(nil)

// NewLAD builds the LAD design.
func NewLAD(env *logging.Env) logging.Design {
	l := &LAD{
		env:   env,
		inTx:  make([]bool, env.Cores),
		txid:  make([]uint16, env.Cores),
		mcBuf: make(map[mem.Addr]ladLine),
	}
	for i := 0; i < env.Cores; i++ {
		l.txSet = append(l.txSet, make(map[mem.Addr]struct{}))
	}
	return l
}

// Name implements logging.Design.
func (l *LAD) Name() string { return "LAD" }

// TxBegin implements logging.Design.
func (l *LAD) TxBegin(core int, now sim.Cycle) sim.Cycle {
	l.inTx[core] = true
	l.txid[core]++
	return 0
}

// Store only tracks the transaction's write set; data stays in the caches.
func (l *LAD) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !l.inTx[core] {
		return 0
	}
	l.txSet[core][addr.Line()] = struct{}{}
	return 0
}

// CachelineEvicted intercepts evictions of uncommitted lines into the MC
// buffer; anything else drains straight to the PM data region.
func (l *LAD) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	owner := -1
	for c := range l.txSet {
		if !l.inTx[c] {
			continue
		}
		if _, ok := l.txSet[c][la]; ok {
			owner = c
			break
		}
	}
	if owner < 0 {
		l.env.PM.Write(now, la, data[:])
		return
	}
	if len(l.mcBuf) >= LADMCCapacity {
		l.slowMode(now, la, data, owner)
		return
	}
	l.mcBuf[la] = ladLine{data: data, owner: owner}
	l.buffered++
}

// slowMode handles MC-buffer overflow: read the line's old contents from
// PM, write an undo log, then let the line through to the data region.
func (l *LAD) slowMode(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte, owner int) {
	l.overflows++
	old, _ := l.env.PM.Read(now, la, mem.LineSize)
	l.slowModeReads++
	images := make([]logging.Image, 0, mem.WordsPerLine)
	for w := 0; w < mem.WordsPerLine; w++ {
		images = append(images, logging.Image{
			Kind: logging.ImageUndo, TID: uint8(owner), TxID: l.txid[owner],
			Addr: la + mem.Addr(w*mem.WordSize), Data: wordFrom(old[w*mem.WordSize:]),
		})
	}
	l.env.Region.Append(now, owner, images)
	l.env.PM.Write(now, la, data[:])
}

// TxEnd runs Prepare (flush remaining dirty tx lines to the MC, stalling
// LADFlushPerLine per line) and Commit (release buffered lines to PM).
func (l *LAD) TxEnd(core int, now sim.Cycle) sim.Cycle {
	l.inTx[core] = false
	var stall sim.Cycle = LADCommitMsg
	t := now
	// Deterministic order: simulated hardware walks a FIFO of dirty
	// lines, not a Go map.
	for _, la := range sortedAddrs(l.txSet[core]) {
		if data, dirty := l.env.Cache.CleanLine(core, la); dirty {
			stall += LADFlushPerLine
			t += LADFlushPerLine
			l.mcBuf[la] = ladLine{data: data, owner: core}
			l.buffered++
		}
	}
	// Commit: the buffered lines are already durable in the MC's ADR
	// domain; releasing them to PM happens in the background.
	var release []mem.Addr
	for la, bl := range l.mcBuf {
		if bl.owner == core {
			release = append(release, la)
		}
	}
	sort.Slice(release, func(i, j int) bool { return release[i] < release[j] })
	for _, la := range release {
		bl := l.mcBuf[la]
		l.env.PM.Write(t, la, bl.data[:])
		delete(l.mcBuf, la)
		l.released++
	}
	for la := range l.txSet[core] {
		delete(l.txSet[core], la)
	}
	l.env.Region.Truncate(core)
	return stall
}

// MCBuffered lets cache fills observe lines parked in the MC buffer.
func (l *LAD) MCBuffered(la mem.Addr) ([mem.LineSize]byte, bool) {
	if bl, ok := l.mcBuf[la.Line()]; ok {
		return bl.data, true
	}
	return [mem.LineSize]byte{}, false
}

// Crash drops buffered lines of uncommitted transactions (they were never
// written to PM, preserving atomicity); committed data already drained.
func (l *LAD) Crash(now sim.Cycle) {
	for la := range l.mcBuf {
		delete(l.mcBuf, la)
	}
}

// CollectStats implements logging.Design.
func (l *LAD) CollectStats(r *stats.Run) {
	r.LogOverflows += l.overflows
	r.PMReads += l.slowModeReads
}

// sortedAddrs returns a set's addresses in ascending order, so map-backed
// write sets iterate deterministically (the hardware they model is a FIFO
// or CAM, not a hash map).
func sortedAddrs(set map[mem.Addr]struct{}) []mem.Addr {
	out := make([]mem.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func wordFrom(b []byte) mem.Word {
	var w mem.Word
	for i := 7; i >= 0; i-- {
		w = w<<8 | mem.Word(b[i])
	}
	return w
}
