package baseline

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// EADRSW models software undo+redo logging on an eADR platform (§II-C):
// the whole cache hierarchy is battery-backed, so the clwb/sfence pairs of
// Fig. 1a disappear — but the log entries are still composed with ordinary
// stores, in an append-only stream with ever-fresh addresses. Those writes
// pollute the caches: they consume L1 sets, evict application data and
// defeat locality, which is exactly the first cost the paper charges
// against "just use eADR" (the second being the battery, Table IV).
//
// At a crash the caches are persistent: everything dirty is flushed by the
// big battery, so both the log stream and the data survive, and recovery
// replays committed transactions / revokes uncommitted ones from the log
// exactly as it would from a PM-resident log.
type EADRSW struct {
	env     *logging.Env
	inTx    []bool
	txid    []uint16
	logHead []mem.Addr // per-core append cursor inside the thread log area
	logSeq  []uint8    // per-core record sequence number (on-media seal)
	logs    int64
}

var _ logging.Design = (*EADRSW)(nil)
var _ logging.CachePersistor = (*EADRSW)(nil)

// NewEADRSW builds the eADR software-logging design.
func NewEADRSW(env *logging.Env) logging.Design {
	e := &EADRSW{
		env:    env,
		inTx:   make([]bool, env.Cores),
		txid:   make([]uint16, env.Cores),
		logSeq: make([]uint8, env.Cores),
	}
	for i := 0; i < env.Cores; i++ {
		base, _ := env.PM.Config().Layout.ThreadLogArea(i, env.Cores)
		e.logHead = append(e.logHead, base)
	}
	return e
}

// Name implements logging.Design.
func (e *EADRSW) Name() string { return "eADR-SW" }

// PersistCachesAtCrash implements logging.CachePersistor: eADR's battery
// flushes the entire dirty cache contents to PM on power failure.
func (e *EADRSW) PersistCachesAtCrash() bool { return true }

// TxBegin implements logging.Design.
func (e *EADRSW) TxBegin(core int, now sim.Cycle) sim.Cycle {
	e.inTx[core] = true
	e.txid[core]++
	return 0
}

// Store composes a 26 B undo+redo record with ordinary cached stores at a
// fresh append address — cache-polluting writes, but no persist
// instructions: the caches are the persistence domain.
func (e *EADRSW) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !e.inTx[core] {
		return 0
	}
	im := logging.Image{
		Kind: logging.ImageUndoRedo, TID: uint8(core), TxID: e.txid[core],
		Addr: addr.Word(), Data: old, Data2: new,
	}
	var buf [logging.MaxSealedBytes]byte
	n := im.Seal(buf[:], e.logSeq[core])
	e.logSeq[core]++
	stall := SWLogInsOverhead + e.appendCached(core, buf[:n], now)
	e.logs++
	return stall
}

// TxEnd appends the commit marker — a single cached record, no fences.
func (e *EADRSW) TxEnd(core int, now sim.Cycle) sim.Cycle {
	e.inTx[core] = false
	var buf [logging.CommitBytes + logging.SealBytes]byte
	n := logging.CommitImage(uint8(core), e.txid[core]).Seal(buf[:], e.logSeq[core])
	e.logSeq[core]++
	return e.appendCached(core, buf[:n], now)
}

// appendCached writes b at the core's log cursor through the caches, one
// word at a time (read-modify-write at record boundaries, the way a
// software memcpy into the log behaves), and advances the cursor.
func (e *EADRSW) appendCached(core int, b []byte, now sim.Cycle) sim.Cycle {
	addr := e.logHead[core]
	e.logHead[core] += mem.Addr(len(b))
	var stall sim.Cycle
	for len(b) > 0 {
		w := addr.Word()
		off := int(addr - w)
		n := mem.WordSize - off
		if n > len(b) {
			n = len(b)
		}
		var wb [mem.WordSize]byte
		putWordBytes(wb[:], e.currentWord(core, w))
		copy(wb[off:off+n], b[:n])
		_, lat := e.env.Cache.Store(core, w, wordFrom(wb[:]), now+stall)
		stall += lat
		addr += mem.Addr(n)
		b = b[n:]
	}
	return stall
}

// currentWord reads the word's present value without timing: from this
// core's caches if resident (log areas are core-private), else from PM.
func (e *EADRSW) currentWord(core int, w mem.Addr) mem.Word {
	if v, ok := e.env.Cache.PeekWord(core, w); ok {
		return v
	}
	return e.env.PM.PeekWord(w)
}

// CachelineEvicted writes dirty evictions (application data or cached log
// lines) to PM.
func (e *EADRSW) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	e.env.PM.Write(now, la, data[:])
}

// Crash needs no selective flush: the machine persists the caches
// wholesale (PersistCachesAtCrash), which covers logs and data alike.
func (e *EADRSW) Crash(now sim.Cycle) {}

// CollectStats implements logging.Design.
func (e *EADRSW) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += e.logs
}

func putWordBytes(b []byte, w mem.Word) {
	for i := 0; i < mem.WordSize; i++ {
		b[i] = byte(w >> (8 * i))
	}
}
