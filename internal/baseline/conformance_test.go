package baseline

import (
	"testing"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// TestDesignConformance drives every baseline through a uniform life
// cycle — transactions, stores, evictions, an empty commit, a crash, and
// stats collection — asserting the Design-contract invariants that hold
// for all of them.
func TestDesignConformance(t *testing.T) {
	factories := map[string]logging.Factory{
		"Base":    NewBase,
		"FWB":     NewFWB,
		"MorLog":  NewMorLog,
		"LAD":     NewLAD,
		"SWLog":   NewSWLog,
		"eADR-SW": NewEADRSW,
		"UndoHW":  NewUndoHW,
		"RedoHW":  NewRedoHW,
	}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			env, dev := newEnv(2)
			d := factory(env)
			if d.Name() != name {
				t.Errorf("name = %q", d.Name())
			}

			// Two cores interleave transactions.
			if lat := d.TxBegin(0, 0); lat < 0 {
				t.Error("negative TxBegin latency")
			}
			d.TxBegin(1, 0)
			var now int64 = 10
			for i := 0; i < 5; i++ {
				for core := 0; core < 2; core++ {
					addr := mem.Addr(0x10000 + core*0x10000 + i*8)
					env.Cache.Store(core, addr, mem.Word(i+1), cyc(now))
					if lat := d.Store(core, addr, 0, mem.Word(i+1), cyc(now)); lat < 0 {
						t.Fatal("negative store latency")
					}
					now += 20
				}
			}
			// A dirty eviction mid-transaction must never error and the
			// line's data must stay reachable (PM or an MC buffer).
			var line [mem.LineSize]byte
			line[0] = 1
			d.CachelineEvicted(cyc(now), 0x10000, line)
			visible := dev.Peek(0x10000, 1)[0] == 1
			if r, ok := d.(logging.MCReader); ok && !visible {
				if data, hit := r.MCBuffered(0x10000); hit && data[0] == 1 {
					visible = true
				}
			}
			if !visible {
				t.Error("evicted line vanished (neither PM nor MC buffer)")
			}

			if lat := d.TxEnd(0, cyc(now)); lat < 0 {
				t.Error("negative commit latency")
			}
			// An empty transaction commits without error.
			d.TxBegin(0, cyc(now+100))
			if lat := d.TxEnd(0, cyc(now+101)); lat < 0 {
				t.Error("empty tx commit failed")
			}
			// Crash with core 1 still in flight: must not panic, and a
			// second crash call must be harmless (idempotent battery path).
			d.Crash(cyc(now + 200))
			d.Crash(cyc(now + 201))

			var r stats.Run
			d.CollectStats(&r)
			if r.LogEntriesCreated < 0 {
				t.Error("negative counters")
			}
		})
	}
}

func cyc(n int64) sim.Cycle { return sim.Cycle(n) }
