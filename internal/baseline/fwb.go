package baseline

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// FWBInterval is the force write-back period from §VI-A: 3,000,000 cycles.
const FWBInterval sim.Cycle = 3_000_000

// FWB models "Steal but no force" (Ogleari et al., HPCA'18): hardware
// undo+redo logging where every store's log entry is forced to the PM log
// region before the corresponding data can leave the caches, and a
// hardware walker force-writes-back all dirty cachelines every FWBInterval
// cycles so logs can be pruned. Commit waits for all of the transaction's
// log writes to be durable; the per-store log write itself is off the
// critical path (the log unit runs in the background).
type FWB struct {
	env        *logging.Env
	inTx       []bool
	txid       []uint16
	lastAccept []sim.Cycle // latest log-write acceptance per core
	nextFWB    sim.Cycle
	logs       int64
	forcedWBs  int64
}

var _ logging.Design = (*FWB)(nil)
var _ logging.Ticker = (*FWB)(nil)

// NewFWB builds the FWB design.
func NewFWB(env *logging.Env) logging.Design {
	return &FWB{
		env:        env,
		inTx:       make([]bool, env.Cores),
		txid:       make([]uint16, env.Cores),
		lastAccept: make([]sim.Cycle, env.Cores),
		nextFWB:    FWBInterval,
	}
}

// Name implements logging.Design.
func (f *FWB) Name() string { return "FWB" }

// TxBegin implements logging.Design.
func (f *FWB) TxBegin(core int, now sim.Cycle) sim.Cycle {
	f.inTx[core] = true
	f.txid[core]++
	f.lastAccept[core] = 0
	return 0
}

// Store emits one undo+redo log entry per write to the PM log region in
// the background; the store does not stall, but commit must wait for the
// acceptance of every one of these writes.
func (f *FWB) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !f.inTx[core] {
		return 0
	}
	im := logging.Image{
		Kind: logging.ImageUndoRedo, TID: uint8(core), TxID: f.txid[core],
		Addr: addr.Word(), Data: old, Data2: new,
	}
	// The log is forced to the ADR domain before the data may leave the
	// caches: the store stalls for the on-chip persist path (and any WPQ
	// backpressure), FWB's per-write ordering constraint.
	t := now + f.env.PersistPath
	accept := f.env.Region.Append(t, core, []logging.Image{im})
	if accept < t {
		accept = t
	}
	if accept > f.lastAccept[core] {
		f.lastAccept[core] = accept
	}
	f.logs++
	return accept - now
}

// TxEnd persists a commit record and stalls until it and the transaction's
// last log write were accepted into the ADR domain — the undo+redo
// durability rule of Fig. 3. Logs are pruned later, once the force
// write-back has made the data durable.
func (f *FWB) TxEnd(core int, now sim.Cycle) sim.Cycle {
	f.inTx[core] = false
	accept := f.env.Region.Append(now, core, []logging.Image{logging.CommitImage(uint8(core), f.txid[core])})
	if f.lastAccept[core] > accept {
		accept = f.lastAccept[core]
	}
	if accept > now {
		return accept - now
	}
	return 0
}

// Tick runs the periodic force write-back; afterwards every idle thread's
// logs describe only durable data and can be pruned.
func (f *FWB) Tick(now sim.Cycle) {
	if now < f.nextFWB {
		return
	}
	f.nextFWB = now + FWBInterval
	f.forcedWBs += int64(f.env.Cache.ForceWriteBackAll(now))
	for c := range f.inTx {
		if !f.inTx[c] {
			f.env.Region.Truncate(c)
		}
	}
}

// CachelineEvicted writes dirty evictions (natural or forced) to the data
// region; the per-store log force guarantees the log already landed.
func (f *FWB) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	f.env.PM.Write(now, la, data[:])
}

// Crash has nothing extra to save: logs are persisted per store.
func (f *FWB) Crash(now sim.Cycle) {}

// CollectStats implements logging.Design.
func (f *FWB) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += f.logs
	r.LogEntriesFlushed += f.logs
}
