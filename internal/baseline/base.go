// Package baseline implements the four hardware atomic-durability schemes
// the paper evaluates against Silo (§VI-A): Base, FWB, MorLog and LAD.
// Each follows the traditional "Log as Backup" methodology (or, for LAD,
// logless MC buffering), so together they span the design space of Fig. 2.
package baseline

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// Base is the paper's baseline: for every transactional store it
// synchronously persists an undo+redo log entry to the PM log region and
// then flushes the updated cacheline to the data region. Every ordering
// constraint of Fig. 3 lands on the critical path, and every store costs
// a log write plus a full line write — the highest traffic and the lowest
// throughput of the evaluated designs.
type Base struct {
	env   *logging.Env
	inTx  []bool
	txid  []uint16
	logs  int64
	lines int64
}

var _ logging.Design = (*Base)(nil)

// NewBase builds the Base design.
func NewBase(env *logging.Env) logging.Design {
	return &Base{env: env, inTx: make([]bool, env.Cores), txid: make([]uint16, env.Cores)}
}

// Name implements logging.Design.
func (b *Base) Name() string { return "Base" }

// TxBegin implements logging.Design.
func (b *Base) TxBegin(core int, now sim.Cycle) sim.Cycle {
	b.inTx[core] = true
	b.txid[core]++
	return 0
}

// Store persists the log entry, then the cacheline, stalling the core for
// both WPQ acceptances (log strictly before data).
func (b *Base) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !b.inTx[core] {
		return 0
	}
	im := logging.Image{
		Kind: logging.ImageUndoRedo, TID: uint8(core), TxID: b.txid[core],
		Addr: addr.Word(), Data: old, Data2: new,
	}
	// Synchronous log persist: the store waits for the entry to traverse
	// the on-chip path into the ADR domain, plus any WPQ backpressure.
	t := now + b.env.PersistPath
	if accept := b.env.Region.Append(t, core, []logging.Image{im}); accept > t {
		t = accept
	}
	b.logs++

	// clwb the updated line after the log is durable: a second synchronous
	// persist, strictly ordered behind the log.
	if data, dirty := b.env.Cache.CleanLine(core, addr.Line()); dirty {
		t += b.env.PersistPath
		if accept, _ := b.env.PM.Write(t, addr.Line(), data[:]); accept > t {
			t = accept
		}
		b.lines++
	}
	return t - now
}

// TxEnd is free: everything was persisted store by store.
func (b *Base) TxEnd(core int, now sim.Cycle) sim.Cycle {
	b.inTx[core] = false
	b.env.Region.Truncate(core)
	return 0
}

// CachelineEvicted writes natural dirty evictions to the data region.
func (b *Base) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	b.env.PM.Write(now, la, data[:])
}

// Crash has nothing volatile to save: logs and data are already in PM.
func (b *Base) Crash(now sim.Cycle) {}

// CollectStats implements logging.Design.
func (b *Base) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += b.logs
	r.LogEntriesFlushed += b.logs
}
