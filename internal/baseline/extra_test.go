package baseline

import (
	"testing"

	"silo/internal/logging"
	"silo/internal/mem"
)

// --- SWLog ---

func TestSWLogStoreOnCriticalPath(t *testing.T) {
	env, _ := newEnv(1)
	s := NewSWLog(env).(*SWLog)
	s.TxBegin(0, 0)
	stall := s.Store(0, 0x1000, 1, 2, 10)
	if stall < SWLogInsOverhead+env.PersistPath {
		t.Errorf("store stall = %d, want >= %d (software clwb+sfence)",
			stall, SWLogInsOverhead+env.PersistPath)
	}
	recs := env.Region.Scan(0)
	if len(recs) != 1 || recs[0].Kind != logging.ImageUndoRedo {
		t.Fatalf("log: %+v", recs)
	}
}

func TestSWLogCommitFlushesWriteSet(t *testing.T) {
	env, dev := newEnv(1)
	s := NewSWLog(env).(*SWLog)
	s.TxBegin(0, 0)
	env.Cache.Store(0, 0x1000, 7, 0)
	env.Cache.Store(0, 0x1040, 8, 1)
	s.Store(0, 0x1000, 0, 7, 10)
	s.Store(0, 0x1040, 0, 8, 11)
	stall := s.TxEnd(0, 500)
	if stall < 3*env.PersistPath { // 2 lines + commit record
		t.Errorf("commit stall = %d, want >= %d", stall, 3*env.PersistPath)
	}
	if dev.PeekWord(0x1000) != 7 || dev.PeekWord(0x1040) != 8 {
		t.Error("write set not flushed at commit")
	}
	recs := env.Region.Scan(0)
	if recs[len(recs)-1].Kind != logging.ImageCommit {
		t.Error("missing commit record")
	}
}

// --- UndoHW ---

func TestUndoHWStoreBackground(t *testing.T) {
	env, _ := newEnv(1)
	u := NewUndoHW(env).(*UndoHW)
	u.TxBegin(0, 0)
	if stall := u.Store(0, 0x2000, 5, 6, 10); stall != 0 {
		t.Errorf("undo store stalled %d (hardware logging is background)", stall)
	}
	recs := env.Region.Scan(0)
	if len(recs) != 1 || recs[0].Kind != logging.ImageUndo || recs[0].Data != 5 {
		t.Fatalf("undo record wrong: %+v", recs)
	}
}

func TestUndoHWCommitWaitsForData(t *testing.T) {
	env, dev := newEnv(1)
	u := NewUndoHW(env).(*UndoHW)
	u.TxBegin(0, 0)
	env.Cache.Store(0, 0x2000, 9, 0)
	u.Store(0, 0x2000, 0, 9, 10)
	stall := u.TxEnd(0, 100)
	if stall < env.PersistPath {
		t.Errorf("commit stall = %d; undo logging must persist data before commit", stall)
	}
	if dev.PeekWord(0x2000) != 9 {
		t.Error("data not persisted at commit")
	}
	if len(env.Region.Scan(0)) != 0 {
		t.Error("undo logs not truncated after commit")
	}
}

// --- RedoHW ---

func TestRedoHWStoreBackgroundAndStaging(t *testing.T) {
	env, dev := newEnv(1)
	r := NewRedoHW(env).(*RedoHW)
	r.TxBegin(0, 0)
	if stall := r.Store(0, 0x3000, 1, 2, 10); stall != 0 {
		t.Errorf("redo store stalled %d", stall)
	}
	var line [mem.LineSize]byte
	line[0] = 2
	r.CachelineEvicted(11, 0x3000, line)
	if dev.Peek(0x3000, 1)[0] != 0 {
		t.Error("in-place update before logs persisted (redo ordering violated)")
	}
	if data, ok := r.MCBuffered(0x3000); !ok || data[0] != 2 {
		t.Error("staged line not readable")
	}
}

func TestRedoHWCommitReleasesStaged(t *testing.T) {
	env, dev := newEnv(1)
	r := NewRedoHW(env).(*RedoHW)
	r.TxBegin(0, 0)
	r.Store(0, 0x3000, 1, 2, 10)
	var line [mem.LineSize]byte
	line[0] = 2
	r.CachelineEvicted(11, 0x3000, line)
	stall := r.TxEnd(0, 100)
	if stall < env.PersistPath {
		t.Errorf("commit stall = %d; must wait for redo logs", stall)
	}
	if dev.Peek(0x3000, 1)[0] != 2 {
		t.Error("staged line not released at commit")
	}
	if _, ok := r.MCBuffered(0x3000); ok {
		t.Error("line still staged after commit")
	}
	recs := env.Region.Scan(0)
	if recs[len(recs)-1].Kind != logging.ImageCommit {
		t.Error("missing commit record")
	}
}

func TestRedoHWCrashDropsStaged(t *testing.T) {
	env, dev := newEnv(1)
	r := NewRedoHW(env).(*RedoHW)
	r.TxBegin(0, 0)
	r.Store(0, 0x3000, 1, 2, 10)
	var line [mem.LineSize]byte
	line[0] = 2
	r.CachelineEvicted(11, 0x3000, line)
	r.Crash(12)
	if dev.Peek(0x3000, 1)[0] != 0 {
		t.Error("uncommitted staged line reached PM")
	}
	if _, ok := r.MCBuffered(0x3000); ok {
		t.Error("staging buffer survived crash")
	}
}

func TestRedoHWNonTxEvictionPassesThrough(t *testing.T) {
	env, dev := newEnv(1)
	r := NewRedoHW(env).(*RedoHW)
	var line [mem.LineSize]byte
	line[0] = 5
	r.CachelineEvicted(1, 0x4000, line)
	if dev.Peek(0x4000, 1)[0] != 5 {
		t.Error("non-transactional eviction blocked")
	}
}

func TestExtraDesignNames(t *testing.T) {
	env, _ := newEnv(1)
	for _, d := range []logging.Design{NewSWLog(env), NewUndoHW(env), NewRedoHW(env)} {
		if d.Name() == "" {
			t.Error("empty design name")
		}
	}
}
