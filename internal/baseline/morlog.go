package baseline

import (
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// MorLogBufEntries is the per-core on-chip log staging capacity we grant
// MorLog (its persist buffer plus L1-resident logs).
const MorLogBufEntries = 64

// MorLog models morphable logging (Wei et al., ISCA'20): undo+redo log
// entries are staged on chip, and same-word updates are morphed so only
// the oldest old data and the newest new data survive — eliminating the
// intermediate redo data that FWB writes per store. At commit, the staged
// (merged) entries are flushed to the PM log region one entry at a time,
// and the transaction stalls until all of them are durable (the paper's
// §II-D: MorLog "waits for flushing all logs in the L1 cache and log
// buffers to PM before commit"). Data reaches the PM data region through
// natural cacheline evictions.
type MorLog struct {
	env  *logging.Env
	bufs []*logging.Buffer
	inTx []bool
	txid []uint16

	logs, merged, spilled int64
}

var _ logging.Design = (*MorLog)(nil)

// NewMorLog builds the MorLog design.
func NewMorLog(env *logging.Env) logging.Design {
	m := &MorLog{
		env:  env,
		inTx: make([]bool, env.Cores),
		txid: make([]uint16, env.Cores),
	}
	for i := 0; i < env.Cores; i++ {
		m.bufs = append(m.bufs, logging.NewBuffer(MorLogBufEntries))
	}
	return m
}

// Name implements logging.Design.
func (m *MorLog) Name() string { return "MorLog" }

// TxBegin implements logging.Design.
func (m *MorLog) TxBegin(core int, now sim.Cycle) sim.Cycle {
	m.inTx[core] = true
	m.txid[core]++
	return 0
}

// Store stages the entry on chip, morphing same-word updates.
func (m *MorLog) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !m.inTx[core] {
		return 0
	}
	m.logs++
	buf := m.bufs[core]
	e := logging.Entry{TID: uint8(core), TxID: m.txid[core], Addr: addr.Word(), Old: old, New: new}
	if buf.Match(e.Addr) >= 0 {
		buf.Append(e)
		m.merged++
		return 0
	}
	if buf.Full() {
		// Staging overflow: spill the oldest entry to the log region in
		// the background to make room.
		m.flushEntries(core, now, buf.EvictOldest(1), false)
		m.spilled++
	}
	buf.Append(e)
	return 0
}

// flushEntries pushes staged entries to the PM log region. When sync is
// true the entries drain serially into MorLog's ADR persist buffer (the
// commit-time durability wait) — a short on-chip hop per entry, because
// the persist buffer, not the WPQ, is the durability point; the PM write
// itself continues in the background. Spills during execution go in the
// background entirely.
func (m *MorLog) flushEntries(core int, now sim.Cycle, entries []logging.Entry, sync bool) sim.Cycle {
	t := now
	for _, e := range entries {
		im := logging.Image{
			Kind: logging.ImageUndoRedo, TID: e.TID, TxID: e.TxID,
			Addr: e.Addr, Data: e.Old, Data2: e.New,
		}
		if sync {
			t += m.env.PersistPath / 4 // log buffer → ADR persist buffer
		}
		m.env.Region.Append(t, core, []logging.Image{im})
	}
	return t
}

// TxEnd flushes the staged (merged) log entries and a commit record to the
// PM log region and stalls until the last one is accepted — MorLog's
// durability wait ("waits for flushing all logs ... before commit").
func (m *MorLog) TxEnd(core int, now sim.Cycle) sim.Cycle {
	m.inTx[core] = false
	buf := m.bufs[core]
	last := m.flushEntries(core, now, buf.Entries(), true)
	buf.Reset()
	cr := m.env.Region.Append(last, core, []logging.Image{logging.CommitImage(uint8(core), m.txid[core])})
	if cr > last {
		last = cr
	}
	// Logs live until the data they cover is durable; when the area fills
	// up, force the covered data back and prune (background GC in the real
	// design). Rare: only multi-million-transaction runs reach this.
	if m.env.Region.Used(core) > m.env.Region.AreaSize(core)/2 {
		m.env.Cache.ForceWriteBackAll(now)
		m.env.Region.Truncate(core)
	}
	if last > now {
		return last - now
	}
	return 0
}

// CachelineEvicted writes dirty evictions to the data region. An eviction
// during a transaction is safe because the undo half of the staged entry
// is flushed at commit before the logs are pruned; we do not model the
// eager-undo corner case separately.
func (m *MorLog) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	m.env.PM.Write(now, la, data[:])
}

// Crash flushes the staged entries of in-flight transactions through
// MorLog's ADR persist buffer so recovery can revoke their partial
// updates. The records carry undo halves recovery cannot be correct
// without (evicted lines of the in-flight transaction), so they belong
// to the battery's guaranteed must-flush set (critical).
func (m *MorLog) Crash(now sim.Cycle) {
	for c := range m.bufs {
		if !m.inTx[c] {
			continue
		}
		images := make([]logging.Image, 0, m.bufs[c].Len())
		for _, e := range m.bufs[c].Entries() {
			images = append(images, logging.Image{
				Kind: logging.ImageUndoRedo, TID: e.TID, TxID: e.TxID,
				Addr: e.Addr, Data: e.Old, Data2: e.New,
			})
		}
		m.env.Region.AppendAtCrashCritical(c, images)
	}
}

// CollectStats implements logging.Design.
func (m *MorLog) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += m.logs
	r.LogEntriesMerged += m.merged
	r.LogEntriesFlushed += m.logs - m.merged
	r.LogOverflows += m.spilled
}
