package baseline

import (
	"sort"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/stats"
)

// This file implements the three schemes the paper uses to motivate
// hardware logging (§II-B, Fig. 1a) and to explain the ordering
// constraints of the two pure logging disciplines (§II-D, Fig. 3):
//
//   - SWLog:  software undo+redo write-ahead logging — clwb+sfence on the
//     critical path of every store, plus a commit-time flush of every
//     dirty line. The paper reports software logging costs up to 70 % of
//     throughput (§II-B); this design reproduces that regime.
//   - UndoHW: hardware undo logging (ATOM-shaped). Logs persist in the
//     background, but commit must wait until *all updated data* is
//     persisted (Fig. 3, "Undo").
//   - RedoHW: hardware redo logging (ReDU-shaped). In-place updates are
//     blocked until the redo logs persist: evicted transactional lines
//     are held in a volatile staging buffer and released at commit, which
//     waits only for the logs (Fig. 3, "Redo").
//
// They are not part of the paper's Fig. 11/12 grid (FWB already subsumes
// software and single-discipline loggings there, §VI-A), but they power
// the ordering-constraint experiment and broaden the recovery test matrix.

// SWLogInsOverhead approximates the instruction overhead of composing a
// log entry in software (address computation, stores, clwb issue).
const SWLogInsOverhead sim.Cycle = 12

// SWLog is software undo+redo write-ahead logging.
type SWLog struct {
	env   *logging.Env
	inTx  []bool
	txid  []uint16
	txSet []map[mem.Addr]struct{}
	logs  int64
}

var _ logging.Design = (*SWLog)(nil)

// NewSWLog builds the software logging design.
func NewSWLog(env *logging.Env) logging.Design {
	s := &SWLog{
		env:  env,
		inTx: make([]bool, env.Cores),
		txid: make([]uint16, env.Cores),
	}
	for i := 0; i < env.Cores; i++ {
		s.txSet = append(s.txSet, make(map[mem.Addr]struct{}))
	}
	return s
}

// Name implements logging.Design.
func (s *SWLog) Name() string { return "SWLog" }

// TxBegin implements logging.Design.
func (s *SWLog) TxBegin(core int, now sim.Cycle) sim.Cycle {
	s.inTx[core] = true
	s.txid[core]++
	return 0
}

// Store composes the log entry in software and persists it with
// clwb+sfence before the program may continue — everything on the
// critical path (Fig. 1a).
func (s *SWLog) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !s.inTx[core] {
		return 0
	}
	s.txSet[core][addr.Line()] = struct{}{}
	im := logging.Image{
		Kind: logging.ImageUndoRedo, TID: uint8(core), TxID: s.txid[core],
		Addr: addr.Word(), Data: old, Data2: new,
	}
	t := now + SWLogInsOverhead + s.env.PersistPath
	if accept := s.env.Region.Append(t, core, []logging.Image{im}); accept > t {
		t = accept
	}
	s.logs++
	return t - now
}

// TxEnd flushes every dirty line of the write set with clwb and fences —
// the sfence-delimited epilogue of Fig. 1a — then persists the commit
// record.
func (s *SWLog) TxEnd(core int, now sim.Cycle) sim.Cycle {
	s.inTx[core] = false
	t := now
	for _, la := range sortedAddrs(s.txSet[core]) {
		if data, dirty := s.env.Cache.CleanLine(core, la); dirty {
			t += s.env.PersistPath
			if accept, _ := s.env.PM.Write(t, la, data[:]); accept > t {
				t = accept
			}
		}
		delete(s.txSet[core], la)
	}
	t += s.env.PersistPath
	if accept := s.env.Region.Append(t, core, []logging.Image{logging.CommitImage(uint8(core), s.txid[core])}); accept > t {
		t = accept
	}
	return t - now
}

// CachelineEvicted writes dirty evictions to the data region; their log
// entries were persisted synchronously at store time.
func (s *SWLog) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	s.env.PM.Write(now, la, data[:])
}

// Crash needs no action: logs and commit records are already durable.
func (s *SWLog) Crash(now sim.Cycle) {}

// CollectStats implements logging.Design.
func (s *SWLog) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += s.logs
	r.LogEntriesFlushed += s.logs
}

// UndoHW is hardware undo logging in the shape of ATOM: the undo log is
// written to PM in the background before the data may leave the caches,
// and commit stalls until all updated data has been persisted.
type UndoHW struct {
	env   *logging.Env
	inTx  []bool
	txid  []uint16
	txSet []map[mem.Addr]struct{}
	logs  int64
}

var _ logging.Design = (*UndoHW)(nil)

// NewUndoHW builds the hardware undo design.
func NewUndoHW(env *logging.Env) logging.Design {
	u := &UndoHW{
		env:  env,
		inTx: make([]bool, env.Cores),
		txid: make([]uint16, env.Cores),
	}
	for i := 0; i < env.Cores; i++ {
		u.txSet = append(u.txSet, make(map[mem.Addr]struct{}))
	}
	return u
}

// Name implements logging.Design.
func (u *UndoHW) Name() string { return "UndoHW" }

// TxBegin implements logging.Design.
func (u *UndoHW) TxBegin(core int, now sim.Cycle) sim.Cycle {
	u.inTx[core] = true
	u.txid[core]++
	return 0
}

// Store writes an undo record in the background (hardware log unit); the
// store itself does not stall.
func (u *UndoHW) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !u.inTx[core] {
		return 0
	}
	u.txSet[core][addr.Line()] = struct{}{}
	u.env.Region.Append(now, core, []logging.Image{{
		Kind: logging.ImageUndo, TID: uint8(core), TxID: u.txid[core],
		Addr: addr.Word(), Data: old,
	}})
	u.logs++
	return 0
}

// TxEnd waits for *all updated data* to persist (Fig. 3, Undo): every
// dirty line of the write set is flushed down the persist path, and only
// then may the transaction commit and its logs be truncated.
func (u *UndoHW) TxEnd(core int, now sim.Cycle) sim.Cycle {
	u.inTx[core] = false
	t := now
	for _, la := range sortedAddrs(u.txSet[core]) {
		if data, dirty := u.env.Cache.CleanLine(core, la); dirty {
			t += u.env.PersistPath
			if accept, _ := u.env.PM.Write(t, la, data[:]); accept > t {
				t = accept
			}
		}
		delete(u.txSet[core], la)
	}
	// All data durable: the undo logs are dead and can be truncated
	// atomically with the commit point.
	u.env.Region.Truncate(core)
	return t - now
}

// CachelineEvicted writes dirty evictions to the data region (their undo
// logs were issued at store time, strictly earlier).
func (u *UndoHW) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	u.env.PM.Write(now, la, data[:])
}

// Crash needs no action: undo logs of the in-flight transaction are in PM.
func (u *UndoHW) Crash(now sim.Cycle) {}

// CollectStats implements logging.Design.
func (u *UndoHW) CollectStats(r *stats.Run) {
	r.LogEntriesCreated += u.logs
	r.LogEntriesFlushed += u.logs
}

// RedoHW is hardware redo logging in the shape of ReDU: redo records are
// written in the background, in-place updates are forbidden until the
// logs persist, so evicted transactional lines park in a volatile staging
// buffer and drain at commit. Commit waits only for the logs.
type RedoHW struct {
	env        *logging.Env
	inTx       []bool
	txid       []uint16
	txSet      []map[mem.Addr]struct{}
	lastAccept []sim.Cycle
	staged     map[mem.Addr]stagedLine
	logs       int64
}

type stagedLine struct {
	data  [mem.LineSize]byte
	owner int
}

var _ logging.Design = (*RedoHW)(nil)
var _ logging.MCReader = (*RedoHW)(nil)

// NewRedoHW builds the hardware redo design.
func NewRedoHW(env *logging.Env) logging.Design {
	r := &RedoHW{
		env:        env,
		inTx:       make([]bool, env.Cores),
		txid:       make([]uint16, env.Cores),
		lastAccept: make([]sim.Cycle, env.Cores),
		staged:     make(map[mem.Addr]stagedLine),
	}
	for i := 0; i < env.Cores; i++ {
		r.txSet = append(r.txSet, make(map[mem.Addr]struct{}))
	}
	return r
}

// Name implements logging.Design.
func (r *RedoHW) Name() string { return "RedoHW" }

// TxBegin implements logging.Design.
func (r *RedoHW) TxBegin(core int, now sim.Cycle) sim.Cycle {
	r.inTx[core] = true
	r.txid[core]++
	r.lastAccept[core] = 0
	return 0
}

// Store writes a redo record in the background and tracks the write set.
func (r *RedoHW) Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle {
	if !r.inTx[core] {
		return 0
	}
	r.txSet[core][addr.Line()] = struct{}{}
	accept := r.env.Region.Append(now, core, []logging.Image{{
		Kind: logging.ImageRedo, TID: uint8(core), TxID: r.txid[core],
		Addr: addr.Word(), Data: new,
	}})
	if accept > r.lastAccept[core] {
		r.lastAccept[core] = accept
	}
	r.logs++
	return 0
}

// CachelineEvicted parks uncommitted transactional lines in the staging
// buffer (in-place updates are forbidden before the logs persist);
// everything else passes through.
func (r *RedoHW) CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
	for c := range r.txSet {
		if !r.inTx[c] {
			continue
		}
		if _, ok := r.txSet[c][la]; ok {
			r.staged[la] = stagedLine{data: data, owner: c}
			return
		}
	}
	r.env.PM.Write(now, la, data[:])
}

// MCBuffered lets cache fills observe staged lines.
func (r *RedoHW) MCBuffered(la mem.Addr) ([mem.LineSize]byte, bool) {
	if sl, ok := r.staged[la.Line()]; ok {
		return sl.data, true
	}
	return [mem.LineSize]byte{}, false
}

// TxEnd waits for the redo logs and the commit record to persist (Fig. 3,
// Redo), then releases the staged lines; the cached remainder drains
// through natural evictions, now permitted.
func (r *RedoHW) TxEnd(core int, now sim.Cycle) sim.Cycle {
	r.inTx[core] = false
	t := now + r.env.PersistPath
	if r.lastAccept[core] > t {
		t = r.lastAccept[core]
	}
	if accept := r.env.Region.Append(t, core, []logging.Image{logging.CommitImage(uint8(core), r.txid[core])}); accept > t {
		t = accept
	}
	var release []mem.Addr
	for la, sl := range r.staged {
		if sl.owner == core {
			release = append(release, la)
		}
	}
	sort.Slice(release, func(i, j int) bool { return release[i] < release[j] })
	for _, la := range release {
		sl := r.staged[la]
		r.env.PM.Write(t, la, sl.data[:])
		delete(r.staged, la)
	}
	for la := range r.txSet[core] {
		delete(r.txSet[core], la)
	}
	// Redo logs live until the covered data is durable; GC when the area
	// fills (same policy as MorLog — only multi-million-transaction runs
	// reach this).
	if r.env.Region.Used(core) > r.env.Region.AreaSize(core)/2 {
		r.env.Cache.ForceWriteBackAll(t)
		r.env.Region.Truncate(core)
	}
	return t - now
}

// Crash drops the volatile staging buffer; committed transactions are
// recovered from their redo logs, uncommitted ones never touched PM.
func (r *RedoHW) Crash(now sim.Cycle) {
	for la := range r.staged {
		delete(r.staged, la)
	}
}

// CollectStats implements logging.Design.
func (r *RedoHW) CollectStats(run *stats.Run) {
	run.LogEntriesCreated += r.logs
	run.LogEntriesFlushed += r.logs
}
