package baseline

import (
	"testing"

	"silo/internal/cache"
	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/stats"
)

func newEnv(cores int) (*logging.Env, *pm.Device) {
	dev := pm.New(pm.DefaultConfig())
	fill := func(la mem.Addr, now sim.Cycle) ([mem.LineSize]byte, sim.Cycle) {
		var line [mem.LineSize]byte
		copy(line[:], dev.Peek(la, mem.LineSize))
		return line, 100
	}
	wb := func(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte) {
		dev.Write(now, la, data[:])
	}
	env := &logging.Env{
		PM:            dev,
		Cache:         cache.NewHierarchy(cores, cache.DefaultHierarchyConfig(), fill, wb),
		Region:        logging.NewRegionWriter(dev, cores),
		Cores:         cores,
		LogBufEntries: logging.DefaultBufferEntries,
		LogBufLatency: 8,
		PersistPath:   60,
	}
	return env, dev
}

// --- Base ---

func TestBaseStoreSynchronousPersists(t *testing.T) {
	env, dev := newEnv(1)
	b := NewBase(env).(*Base)
	b.TxBegin(0, 0)
	env.Cache.Store(0, 0x1000, 7, 0) // dirty the line
	stall := b.Store(0, 0x1000, 0, 7, 10)
	if stall < 2*env.PersistPath {
		t.Errorf("store stall = %d, want >= %d (log + clwb persists)", stall, 2*env.PersistPath)
	}
	// Log record is a full undo+redo image.
	recs := env.Region.Scan(0)
	if len(recs) != 1 || recs[0].Kind != logging.ImageUndoRedo {
		t.Fatalf("log region: %+v", recs)
	}
	// Data line reached PM.
	if got := dev.PeekWord(0x1000); got != 7 {
		t.Errorf("cacheline not flushed: %d", got)
	}
	// Line now clean: a second identical store flushes again only after
	// re-dirtying.
	if _, dirty := env.Cache.DirtyLine(0, 0x1000); dirty {
		t.Error("line still dirty after clwb")
	}
}

func TestBaseTxEndTruncates(t *testing.T) {
	env, _ := newEnv(1)
	b := NewBase(env).(*Base)
	b.TxBegin(0, 0)
	env.Cache.Store(0, 0x1000, 7, 0)
	b.Store(0, 0x1000, 0, 7, 10)
	if lat := b.TxEnd(0, 100); lat != 0 {
		t.Errorf("Base commit stall = %d, want 0 (all persisted per store)", lat)
	}
	if len(env.Region.Scan(0)) != 0 {
		t.Error("logs not truncated at commit")
	}
}

func TestBaseNonTxStoreFree(t *testing.T) {
	env, _ := newEnv(1)
	b := NewBase(env).(*Base)
	if stall := b.Store(0, 0x1000, 0, 7, 10); stall != 0 {
		t.Errorf("non-tx store stalled %d", stall)
	}
}

// --- FWB ---

func TestFWBStoreForcesLog(t *testing.T) {
	env, _ := newEnv(1)
	f := NewFWB(env).(*FWB)
	f.TxBegin(0, 0)
	stall := f.Store(0, 0x2000, 1, 2, 10)
	if stall < env.PersistPath {
		t.Errorf("store stall = %d, want >= persist path (log before data)", stall)
	}
	recs := env.Region.Scan(0)
	if len(recs) != 1 || recs[0].Kind != logging.ImageUndoRedo || recs[0].Data != 1 || recs[0].Data2 != 2 {
		t.Fatalf("log record wrong: %+v", recs)
	}
}

func TestFWBTxEndWritesCommitRecord(t *testing.T) {
	env, _ := newEnv(1)
	f := NewFWB(env).(*FWB)
	f.TxBegin(0, 0)
	f.Store(0, 0x2000, 1, 2, 10)
	f.TxEnd(0, 200)
	recs := env.Region.Scan(0)
	if len(recs) != 2 || recs[1].Kind != logging.ImageCommit {
		t.Fatalf("missing commit record: %+v", recs)
	}
}

func TestFWBTickForcesWriteBackAndPrunes(t *testing.T) {
	env, dev := newEnv(1)
	f := NewFWB(env).(*FWB)
	f.TxBegin(0, 0)
	env.Cache.Store(0, 0x2000, 9, 0)
	f.Store(0, 0x2000, 0, 9, 10)
	f.TxEnd(0, 100)
	f.Tick(200) // before the interval: nothing
	if got := dev.PeekWord(0x2000); got != 0 {
		t.Fatalf("data flushed before FWB interval")
	}
	f.Tick(FWBInterval + 1)
	if got := dev.PeekWord(0x2000); got != 9 {
		t.Errorf("force write-back missed dirty line: %d", got)
	}
	if len(env.Region.Scan(0)) != 0 {
		t.Error("idle thread's logs not pruned after FWB")
	}
}

func TestFWBTickKeepsInFlightLogs(t *testing.T) {
	env, _ := newEnv(1)
	f := NewFWB(env).(*FWB)
	f.TxBegin(0, 0)
	f.Store(0, 0x2000, 1, 2, 10)
	f.Tick(FWBInterval + 1)
	if len(env.Region.Scan(0)) == 0 {
		t.Error("in-flight transaction's logs were pruned")
	}
}

// --- MorLog ---

func TestMorLogMergesOnChip(t *testing.T) {
	env, _ := newEnv(1)
	m := NewMorLog(env).(*MorLog)
	m.TxBegin(0, 0)
	m.Store(0, 0x3000, 1, 2, 1)
	m.Store(0, 0x3000, 2, 3, 2)
	if m.bufs[0].Len() != 1 {
		t.Fatalf("morphing failed: %d staged entries", m.bufs[0].Len())
	}
	if len(env.Region.Scan(0)) != 0 {
		t.Error("logs written before commit")
	}
	m.TxEnd(0, 10)
	recs := env.Region.Scan(0)
	// One merged undo+redo record + commit record.
	if len(recs) != 2 {
		t.Fatalf("flushed %d records, want 2", len(recs))
	}
	if recs[0].Data != 1 || recs[0].Data2 != 3 {
		t.Errorf("morphed record old/new = %d/%d, want 1/3", recs[0].Data, recs[0].Data2)
	}
}

func TestMorLogCommitStallScalesWithEntries(t *testing.T) {
	env, _ := newEnv(1)
	m := NewMorLog(env).(*MorLog)
	m.TxBegin(0, 0)
	for i := 0; i < 5; i++ {
		m.Store(0, mem.Addr(0x3000+i*8), 0, mem.Word(i+1), 1)
	}
	stall := m.TxEnd(0, 100)
	// One ADR-persist-buffer hop per staged entry (plus the commit record).
	if stall < 5*(env.PersistPath/4) {
		t.Errorf("commit stall = %d, want >= %d (per-entry drain)", stall, 5*(env.PersistPath/4))
	}
}

func TestMorLogSpillOnOverflow(t *testing.T) {
	env, _ := newEnv(1)
	m := NewMorLog(env).(*MorLog)
	m.TxBegin(0, 0)
	for i := 0; i <= MorLogBufEntries; i++ {
		m.Store(0, mem.Addr(0x4000+i*8), 0, mem.Word(i+1), 1)
	}
	if m.spilled != 1 {
		t.Errorf("spilled = %d, want 1", m.spilled)
	}
	if len(env.Region.Scan(0)) != 1 {
		t.Error("spilled entry not in log region")
	}
}

func TestMorLogCrashFlushesStaged(t *testing.T) {
	env, _ := newEnv(1)
	m := NewMorLog(env).(*MorLog)
	m.TxBegin(0, 0)
	m.Store(0, 0x3000, 1, 2, 1)
	m.Crash(5)
	recs := env.Region.Scan(0)
	if len(recs) != 1 || recs[0].Kind != logging.ImageUndoRedo {
		t.Fatalf("crash flush wrong: %+v", recs)
	}
}

// --- LAD ---

func TestLADBuffersUncommittedEvictions(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	l.TxBegin(0, 0)
	l.Store(0, 0x5000, 0, 1, 1)
	var line [mem.LineSize]byte
	line[0] = 1
	l.CachelineEvicted(2, 0x5000, line)
	// Not in PM (atomicity), but visible through the MC buffer.
	if got := dev.PeekWord(0x5000); got != 0 {
		t.Errorf("uncommitted eviction reached PM: %d", got)
	}
	data, ok := l.MCBuffered(0x5000)
	if !ok || data[0] != 1 {
		t.Error("MC buffer miss")
	}
}

func TestLADCommitReleasesBufferedLines(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	l.TxBegin(0, 0)
	l.Store(0, 0x5000, 0, 1, 1)
	var line [mem.LineSize]byte
	line[0] = 1
	l.CachelineEvicted(2, 0x5000, line)
	l.TxEnd(0, 10)
	if got := dev.Peek(0x5000, 1)[0]; got != 1 {
		t.Errorf("committed line not released to PM: %d", got)
	}
	if _, ok := l.MCBuffered(0x5000); ok {
		t.Error("line still buffered after commit")
	}
}

func TestLADCommitFlushesDirtyLines(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	l.TxBegin(0, 0)
	env.Cache.Store(0, 0x6000, 42, 0)
	env.Cache.Store(0, 0x6040, 43, 1)
	l.Store(0, 0x6000, 0, 42, 1)
	l.Store(0, 0x6040, 0, 43, 2)
	stall := l.TxEnd(0, 10)
	if want := 2*LADFlushPerLine + LADCommitMsg; stall != want {
		t.Errorf("Prepare stall = %d, want %d", stall, want)
	}
	if dev.PeekWord(0x6000) != 42 || dev.PeekWord(0x6040) != 43 {
		t.Error("Prepare-flushed lines not released to PM")
	}
}

func TestLADCrashDropsUncommitted(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	l.TxBegin(0, 0)
	l.Store(0, 0x7000, 0, 1, 1)
	var line [mem.LineSize]byte
	line[0] = 1
	l.CachelineEvicted(2, 0x7000, line)
	l.Crash(3)
	if got := dev.Peek(0x7000, 1)[0]; got != 0 {
		t.Errorf("uncommitted data survived crash: %d", got)
	}
	if _, ok := l.MCBuffered(0x7000); ok {
		t.Error("MC buffer survived crash")
	}
}

func TestLADSlowModeOnOverflow(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	l.TxBegin(0, 0)
	var line [mem.LineSize]byte
	for i := 0; i <= LADMCCapacity; i++ {
		la := mem.Addr(0x10000 + i*mem.LineSize)
		l.Store(0, la, 0, 1, 1)
		line[0] = byte(i + 1)
		l.CachelineEvicted(2, la, line)
	}
	if l.overflows != 1 {
		t.Fatalf("overflows = %d, want 1", l.overflows)
	}
	if l.slowModeReads != 1 {
		t.Errorf("slow mode must read old data from PM")
	}
	// The overflowed line went through to PM with an undo log.
	last := mem.Addr(0x10000 + LADMCCapacity*mem.LineSize)
	if got := dev.Peek(last, 1)[0]; got != byte(LADMCCapacity+1) {
		t.Errorf("overflowed line not in PM: %d", got)
	}
	if len(env.Region.Scan(0)) != mem.WordsPerLine {
		t.Errorf("undo log for overflowed line missing: %d records", len(env.Region.Scan(0)))
	}
}

func TestLADCommittedEvictionPassesThrough(t *testing.T) {
	env, dev := newEnv(1)
	l := NewLAD(env).(*LAD)
	var line [mem.LineSize]byte
	line[0] = 9
	l.CachelineEvicted(1, 0x8000, line) // no tx owns it
	if got := dev.Peek(0x8000, 1)[0]; got != 9 {
		t.Errorf("non-transactional eviction blocked: %d", got)
	}
}

// --- shared ---

func TestNamesAndStats(t *testing.T) {
	env, _ := newEnv(1)
	designs := []logging.Design{NewBase(env), NewFWB(env), NewMorLog(env), NewLAD(env)}
	want := []string{"Base", "FWB", "MorLog", "LAD"}
	for i, d := range designs {
		if d.Name() != want[i] {
			t.Errorf("name = %q, want %q", d.Name(), want[i])
		}
		var r stats.Run
		d.CollectStats(&r) // must not panic on fresh design
		d.Crash(0)         // ditto
	}
}
