// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into a command-line tool. Every binary in cmd/ shares this so
// the flags behave identically across silo-sim, silo-bench and
// silo-torture, and so the flush-on-exit discipline lives in one place:
// os.Exit skips deferred calls, so fatal-error paths must call Stop
// explicitly before exiting.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile destinations for one tool.
type Flags struct {
	tool     string
	cpu, mem *string
	cpuFile  *os.File
}

// Register adds -cpuprofile and -memprofile to the default flag set.
// Call before flag.Parse; tool names the binary in error messages.
func Register(tool string) *Flags {
	return &Flags{
		tool: tool,
		cpu:  flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem:  flag.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// Start begins CPU profiling if -cpuprofile was given. Call after
// flag.Parse.
func (f *Flags) Start() error {
	if f == nil || *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop flushes the CPU profile (if running) and writes the allocation
// profile (if requested). Idempotent, and safe on a nil receiver, so
// both the normal return and every fatal path can call it.
func (f *Flags) Stop() {
	if f == nil {
		return
	}
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: cpuprofile: %v\n", f.tool, err)
		}
		f.cpuFile = nil
	}
	if *f.mem != "" {
		file, err := os.Create(*f.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", f.tool, err)
			return
		}
		runtime.GC() // settle live heap so the profile reflects retained memory
		if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
			fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", f.tool, err)
		}
		if err := file.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", f.tool, err)
		}
		*f.mem = ""
	}
}
