package explore

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"silo/internal/harness"
)

func testGrid() Grid {
	g := Grid{
		Workloads: []string{"Array", "Hash"},
		LogBuf:    []int{10, 20},
		BufLine:   []int{64, 256},
		WPQ:       []int{16},
		Txns:      8,
		Seed:      3,
	}
	if err := g.Normalize(); err != nil {
		panic(err)
	}
	return g
}

// Every index must decode to a unique point, and the mapping must be a
// pure function of the grid (resume and sharding depend on it).
func TestGridPointDecode(t *testing.T) {
	g := testGrid()
	if got, want := g.Size(), 8; got != want {
		t.Fatalf("grid size = %d, want %d", got, want)
	}
	seen := map[Point]int{}
	for i := 0; i < g.Size(); i++ {
		p := g.Point(i)
		if prev, dup := seen[p]; dup {
			t.Fatalf("points %d and %d decode identically: %+v", prev, i, p)
		}
		seen[p] = i
		if p2 := g.Point(i); p2 != p {
			t.Fatalf("point %d not stable: %+v vs %+v", i, p, p2)
		}
		c := g.Campaign(i)
		if c.Index != i || c.Spec.Design != p.Design || c.Spec.Workload != p.Workload ||
			c.Spec.LogBufEntries != p.LogBuf || c.Spec.Cores != p.Cores {
			t.Fatalf("campaign %d does not match its point: %+v vs %+v", i, c.Spec, p)
		}
	}
}

func TestParseCacheGeom(t *testing.T) {
	g, err := ParseCacheGeom("32/256/8192")
	if err != nil || g != (CacheGeom{32, 256, 8192}) {
		t.Fatalf("ParseCacheGeom = %+v, %v", g, err)
	}
	for _, bad := range []string{"", "32", "32/256", "a/b/c", "32/0/8192", "32/256/8192/1"} {
		if _, err := ParseCacheGeom(bad); err == nil {
			t.Errorf("ParseCacheGeom(%q) accepted", bad)
		}
	}
}

// Explorer metrics must survive the record round-trip (JSON and
// outcome reconstruction) — resume aggregates depend on it.
func TestExploreMetricsRoundTrip(t *testing.T) {
	g := testGrid()
	out := g.RunPoint(g.Campaign(3))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Explore == nil || out.Explore.Throughput <= 0 {
		t.Fatalf("point measurement missing: %+v", out.Explore)
	}
	rec := harness.OutcomeRecord(out)
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back harness.Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	o2, err := back.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if o2.Explore == nil || *o2.Explore != *out.Explore {
		t.Fatalf("metrics lost in round-trip:\nwant %+v\ngot  %+v", out.Explore, o2.Explore)
	}
}

func metricRec(idx int, thr float64, media int64, uj float64) harness.Record {
	return harness.Record{
		Index: idx, Design: "Silo", Workload: "Array", Cores: 2,
		Explore: &harness.ExploreMetrics{Throughput: thr, MediaWrites: media, EnergyMicroJ: uj},
	}
}

func TestFrontier(t *testing.T) {
	recs := []harness.Record{
		metricRec(0, 10, 100, 5),  // dominated by 1 (worse on all axes)
		metricRec(1, 20, 50, 4),   // frontier
		metricRec(2, 30, 80, 4),   // frontier: fastest
		metricRec(3, 5, 40, 3),    // frontier: cheapest writes+energy
		metricRec(4, 20, 50, 4.5), // dominated by 1 (same but more energy)
		{Index: 5, Err: "boom", Explore: &harness.ExploreMetrics{Throughput: 99}}, // errored: ignored
		{Index: 6}, // no metrics: ignored
	}
	front := Frontier(recs)
	want := []int{2, 1, 3} // descending throughput
	if len(front) != len(want) {
		t.Fatalf("frontier = %d points, want %d: %+v", len(front), len(want), front)
	}
	for i, r := range front {
		if r.Index != want[i] {
			t.Fatalf("frontier[%d] = point %d, want %d", i, r.Index, want[i])
		}
	}
}

// A sharded sweep, merged, must be indistinguishable from a
// straight-through single-store sweep: byte-identical summaries and
// byte-identical Pareto reports. This is the satellite contract behind
// silo-report -merge.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	runSweep := func(sink harness.RecordSink) harness.TortureResult {
		t.Helper()
		res, err := harness.Torture(harness.TortureConfig{
			Seed: g.Seed, Campaigns: g.Size(), Parallel: 2,
			Make: g.Campaign, Run: g.RunPoint, Sink: sink,
			OnSinkError: func(err error) { t.Errorf("sink: %v", err) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	single := filepath.Join(dir, "single.srs")
	s1, err := harness.OpenCheckpointSink(single)
	if err != nil {
		t.Fatal(err)
	}
	runSweep(s1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(dir, "grid.srs")
	s2, err := OpenShardedSink(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	runSweep(s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.srs")
	n, err := harness.MergeStores(merged, ShardPaths(base, 3))
	if err != nil {
		t.Fatal(err)
	}
	if n != g.Size() {
		t.Fatalf("merge wrote %d records, want %d", n, g.Size())
	}

	sum1, err := harness.SummarizeStore(single)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := harness.SummarizeStore(merged)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sum1.String()+sum1.Table().String(), sum2.String()+sum2.Table().String(); a != b {
		t.Errorf("merged summary diverges from single-store run:\n%s\nvs\n%s", b, a)
	}

	report := func(path string) string {
		t.Helper()
		recs, err := harness.LoadRecords(path)
		if err != nil {
			t.Fatal(err)
		}
		flat := make([]harness.Record, 0, len(recs))
		for _, r := range recs {
			flat = append(flat, r)
		}
		return Report(flat)
	}
	if a, b := report(single), report(merged); a != b {
		t.Errorf("merged Pareto report diverges from single-store run:\n%s\nvs\n%s", b, a)
	}

	// Resume from the shards: every point is already measured, so the
	// fleet re-executes nothing and aggregates identically.
	recs, err := LoadShards(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != g.Size() {
		t.Fatalf("LoadShards = %d records, want %d", len(recs), g.Size())
	}
	res, err := harness.Torture(harness.TortureConfig{
		Seed: g.Seed, Campaigns: g.Size(), Parallel: 2,
		Make: g.Campaign, Resume: recs,
		Run: func(c harness.Campaign) harness.CampaignOutcome {
			t.Errorf("resume re-ran already-measured point %d", c.Index)
			return harness.CampaignOutcome{Campaign: c}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || !res.Ok() {
		t.Fatalf("resumed sweep lost its aggregates:\n%s", res.Summary())
	}
}
