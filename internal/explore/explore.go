// Package explore sweeps the Table II design space: a grid over the
// hardware knobs the paper fixes (Silo log-buffer entries, on-PM buffer
// line size, WPQ depth, cache geometry, core count) crossed with
// designs and workloads, executed as a resumable fleet on the pooled
// torture harness, checkpointed to sharded binary result stores, and
// reduced to a Pareto frontier over throughput, media writes, and
// crash-flush energy.
//
// Every grid point is a pure function of its index, so an interrupted
// sweep resumes from its shards without re-running finished points, and
// the frontier report is byte-identical however the sweep was
// partitioned, parallelized, or interrupted.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/energy"
	"silo/internal/harness"
	"silo/internal/pm"
)

// CacheGeom is one cache-hierarchy point, in KB per level.
type CacheGeom struct {
	L1KB, L2KB, L3KB int
}

func (g CacheGeom) String() string {
	return fmt.Sprintf("%d/%d/%d", g.L1KB, g.L2KB, g.L3KB)
}

// ParseCacheGeom parses "L1KB/L2KB/L3KB" (e.g. "32/256/8192").
func ParseCacheGeom(s string) (CacheGeom, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return CacheGeom{}, fmt.Errorf("explore: cache geometry %q: want L1KB/L2KB/L3KB", s)
	}
	var g CacheGeom
	for i, dst := range []*int{&g.L1KB, &g.L2KB, &g.L3KB} {
		n, err := strconv.Atoi(strings.TrimSpace(parts[i]))
		if err != nil || n <= 0 {
			return CacheGeom{}, fmt.Errorf("explore: cache geometry %q: bad level size %q", s, parts[i])
		}
		*dst = n
	}
	return g, nil
}

// Grid is the sweep specification: one value list per Table II knob.
// Empty lists take the paper's defaults, so the zero Grid is the single
// Table II configuration.
type Grid struct {
	Designs   []string
	Workloads []string
	Cores     []int
	LogBuf    []int // Silo log-buffer entries per core
	BufLine   []int // on-PM buffer line size (bytes)
	WPQ       []int // WPQ depth per channel
	Caches    []CacheGeom

	Txns int   // transactions per point (0 → 48)
	Seed int64 // base seed; point i runs with Seed + i*1_000_003
}

// Normalize fills defaulted axes in place and validates the rest.
func (g *Grid) Normalize() error {
	if len(g.Designs) == 0 {
		g.Designs = []string{"Silo"}
	}
	if len(g.Workloads) == 0 {
		g.Workloads = []string{"Array", "Hash", "TPCC"}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{2}
	}
	if len(g.LogBuf) == 0 {
		g.LogBuf = []int{20}
	}
	if len(g.BufLine) == 0 {
		g.BufLine = []int{256}
	}
	if len(g.WPQ) == 0 {
		g.WPQ = []int{64}
	}
	if len(g.Caches) == 0 {
		g.Caches = []CacheGeom{{L1KB: 32, L2KB: 256, L3KB: 8192}}
	}
	if g.Txns <= 0 {
		g.Txns = 48
	}
	for _, d := range g.Designs {
		if _, err := harness.DesignFactory(d, core.Options{}); err != nil {
			return err
		}
	}
	for _, w := range g.Workloads {
		if _, err := harness.GetWorkload(w); err != nil {
			return err
		}
	}
	for _, n := range append(append(append([]int{}, g.Cores...), g.LogBuf...), append(g.BufLine, g.WPQ...)...) {
		if n <= 0 {
			return fmt.Errorf("explore: grid axis value %d must be positive", n)
		}
	}
	return nil
}

// Size returns the number of grid points.
func (g Grid) Size() int {
	return len(g.Designs) * len(g.Workloads) * len(g.Cores) *
		len(g.LogBuf) * len(g.BufLine) * len(g.WPQ) * len(g.Caches)
}

// Point is one fully-resolved grid coordinate.
type Point struct {
	Design   string
	Workload string
	Cores    int
	LogBuf   int
	BufLine  int
	WPQ      int
	Cache    CacheGeom
}

// Point decodes index i mixed-radix, designs varying fastest. The
// mapping is the explorer's determinism anchor: index → point → spec is
// pure, so resume, sharding, and repro all agree on what point i is.
func (g Grid) Point(i int) Point {
	var p Point
	p.Design, i = g.Designs[i%len(g.Designs)], i/len(g.Designs)
	p.Workload, i = g.Workloads[i%len(g.Workloads)], i/len(g.Workloads)
	p.Cores, i = g.Cores[i%len(g.Cores)], i/len(g.Cores)
	p.LogBuf, i = g.LogBuf[i%len(g.LogBuf)], i/len(g.LogBuf)
	p.BufLine, i = g.BufLine[i%len(g.BufLine)], i/len(g.BufLine)
	p.WPQ, i = g.WPQ[i%len(g.WPQ)], i/len(g.WPQ)
	p.Cache = g.Caches[i%len(g.Caches)]
	return p
}

// Campaign maps grid point i onto a fleet campaign. Plugged into
// TortureConfig.Make, it turns the torture fleet's seeded crash storm
// into a deterministic grid walk; the fleet's pooling, retry, resume,
// and checkpoint machinery apply unchanged.
func (g Grid) Campaign(i int) harness.Campaign {
	p := g.Point(i)
	spec := harness.Spec{
		Design:        p.Design,
		Workload:      p.Workload,
		Cores:         p.Cores,
		Txns:          g.Txns,
		Seed:          g.Seed + int64(i)*1_000_003,
		LogBufEntries: p.LogBuf,
		// Perf sweep: points are measured, not crash-verified, so the
		// invariant auditor's overhead buys nothing here.
		DisableAudit: true,
		PMMod: func(c *pm.Config) {
			c.BufLineSize = p.BufLine
			c.WPQEntries = p.WPQ
		},
		CacheMod: func(c *cache.HierarchyConfig) {
			c.L1.Size = p.Cache.L1KB << 10
			c.L2.Size = p.Cache.L2KB << 10
			c.L3.Size = p.Cache.L3KB << 10
		},
	}
	return harness.Campaign{Index: i, Spec: spec}
}

// RunPoint executes grid point c to completion (no crash injection) and
// measures the three Pareto axes. Plugged into TortureConfig.Run.
func (g Grid) RunPoint(c harness.Campaign) harness.CampaignOutcome {
	p := g.Point(c.Index)
	run, err := harness.Run(c.Spec)
	if err != nil {
		return harness.CampaignOutcome{Campaign: c, Err: err}
	}
	return harness.CampaignOutcome{
		Campaign: c,
		Commits:  run.Transactions,
		Explore: &harness.ExploreMetrics{
			LogBufEntries: p.LogBuf,
			BufLineSize:   p.BufLine,
			WPQEntries:    p.WPQ,
			L1KB:          p.Cache.L1KB,
			L2KB:          p.Cache.L2KB,
			L3KB:          p.Cache.L3KB,

			Throughput:   run.Throughput(),
			MediaWrites:  run.MediaWrites,
			MediaBytes:   run.MediaBytes,
			EnergyMicroJ: energy.SiloDomain(p.Cores, p.LogBuf).FlushEnergyMicroJ(),
		},
	}
}

// dominates reports whether a is at least as good as b on every axis
// and strictly better on one (throughput up, media writes down, energy
// down).
func dominates(a, b *harness.ExploreMetrics) bool {
	if a.Throughput < b.Throughput || a.MediaWrites > b.MediaWrites || a.EnergyMicroJ > b.EnergyMicroJ {
		return false
	}
	return a.Throughput > b.Throughput || a.MediaWrites < b.MediaWrites || a.EnergyMicroJ < b.EnergyMicroJ
}

// Frontier returns the Pareto-optimal records (throughput vs media
// writes vs crash-flush energy), sorted by descending throughput with
// the campaign index as the deterministic tiebreak. Records without
// explorer metrics (errors, foreign stores) are ignored.
func Frontier(recs []harness.Record) []harness.Record {
	pts := make([]harness.Record, 0, len(recs))
	for _, r := range recs {
		if r.Explore != nil && r.Err == "" {
			pts = append(pts, r)
		}
	}
	out := make([]harness.Record, 0, len(pts))
	for i, r := range pts {
		dominated := false
		for j, o := range pts {
			if i != j && dominates(o.Explore, r.Explore) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Explore.Throughput != b.Explore.Throughput {
			return a.Explore.Throughput > b.Explore.Throughput
		}
		return a.Index < b.Index
	})
	return out
}

// Report renders the frontier as a text table (silo-report -pareto).
func Report(recs []harness.Record) string {
	front := Frontier(recs)
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto frontier: %d of %d points (maximize tx/Mcyc; minimize media writes, crash-flush energy)\n",
		len(front), len(recs))
	fmt.Fprintf(&b, "%8s  %-8s %-8s %5s %6s %7s %5s %14s  %9s %12s %10s\n",
		"point", "design", "workload", "cores", "logbuf", "bufline", "wpq", "cache(KB)", "tx/Mcyc", "mediaWrites", "energy(uJ)")
	for _, r := range front {
		e := r.Explore
		geom := CacheGeom{L1KB: e.L1KB, L2KB: e.L2KB, L3KB: e.L3KB}
		fmt.Fprintf(&b, "%8d  %-8s %-8s %5d %6d %7d %5d %14s  %9.3f %12d %10.2f\n",
			r.Index, r.Design, r.Workload, r.Cores, e.LogBufEntries, e.BufLineSize, e.WPQEntries,
			geom.String(), e.Throughput, e.MediaWrites, e.EnergyMicroJ)
	}
	return b.String()
}
