package explore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silo/internal/harness"
)

// ShardPaths names the N store shards behind a base path:
// grid.srs → grid-0.srs … grid-(N-1).srs.
func ShardPaths(base string, n int) []string {
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s-%d%s", stem, i, ext)
	}
	return paths
}

// ShardedSink fans the fleet's checkpoint stream out over N result
// stores, routing record index i to shard i%N — a deterministic
// partition, so any two sweeps of the same grid shard identically and
// silo-report -merge can fold the shards back into one store. Write is
// already serialized by the fleet, so the shards need no locking.
type ShardedSink struct {
	shards []*harness.CheckpointSink
}

// OpenShardedSink opens N store shards for the sweep at base.
func OpenShardedSink(base string, n int) (*ShardedSink, error) {
	s := &ShardedSink{}
	for _, p := range ShardPaths(base, n) {
		sink, err := harness.OpenCheckpointSink(p)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards = append(s.shards, sink)
	}
	return s, nil
}

func (s *ShardedSink) shard(index int) *harness.CheckpointSink {
	return s.shards[index%len(s.shards)]
}

// Encode marshals the record once (any shard encodes identically).
func (s *ShardedSink) Encode(r harness.Record) ([]byte, error) {
	return s.shard(r.Index).Encode(r)
}

// Write appends the encoded record to its index's shard.
func (s *ShardedSink) Write(r harness.Record, enc []byte) error {
	return s.shard(r.Index).Write(r, enc)
}

// Seed pre-populates the shards with resumed records in index order, so
// each sealed shard is complete even though the fleet will not re-emit
// its resumed campaigns.
func (s *ShardedSink) Seed(recs map[int]harness.Record) error {
	idxs := make([]int, 0, len(recs))
	for i := range recs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		enc, err := s.Encode(recs[i])
		if err != nil {
			return err
		}
		if err := s.Write(recs[i], enc); err != nil {
			return err
		}
	}
	return nil
}

// Close seals every shard, returning the first error.
func (s *ShardedSink) Close() error {
	var first error
	for _, sink := range s.shards {
		if err := sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LoadShards reads every shard of an interrupted or completed sweep
// for resume, with the same artifact tolerance as LoadRecords (sealed
// stores, unsealed temp segments). Shards a killed sweep never created
// simply contribute nothing.
func LoadShards(base string, n int) (map[int]harness.Record, error) {
	out := make(map[int]harness.Record)
	for _, p := range ShardPaths(base, n) {
		recs, err := harness.LoadRecords(p)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for i, r := range recs {
			out[i] = r
		}
	}
	return out, nil
}
