package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the trace parser: it must never panic,
// and everything it accepts must survive a write-read roundtrip.
func FuzzRead(f *testing.F) {
	f.Add("B 0\nS 0 100 7\nL 0 100\nE 0\nC 0 10\n")
	f.Add("# comment\n\nB 1\n")
	f.Add("S 0 zz 7\n")
	f.Add("X\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected: fine
		}
		// Accepted traces re-serialize and re-parse to the same streams.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for core, ops := range tr.PerCore {
			for _, op := range ops {
				w.Op(core, op)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v", err)
		}
		if tr.Ops() != tr2.Ops() || tr.Transactions() != tr2.Transactions() {
			t.Fatalf("roundtrip changed the trace: %d/%d ops, %d/%d txns",
				tr.Ops(), tr2.Ops(), tr.Transactions(), tr2.Transactions())
		}
	})
}
