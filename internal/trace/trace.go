// Package trace records and replays memory-operation traces of simulated
// runs. A trace captures each core's exact operation stream (transaction
// boundaries, loads, stores with data, compute gaps), which makes runs
// portable artifacts: the same trace can be replayed under every logging
// design, pinning the instruction streams while only the design varies —
// the methodology gem5 checkpoint traces serve in the original evaluation.
//
// The format is line-oriented text, one operation per line:
//
//	B <core>                    Tx_begin
//	E <core>                    Tx_end
//	L <core> <addr-hex>         load word
//	S <core> <addr-hex> <data-hex>  store word
//	C <core> <cycles>           compute
//
// Lines beginning with '#' are comments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"silo/internal/mem"
	"silo/internal/sim"
)

// Writer serializes operations as they execute. It is safe for use from
// the machine's Exec hook (single-threaded by construction).
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Op records one operation for a core.
func (t *Writer) Op(core int, op sim.Op) {
	if t.err != nil {
		return
	}
	switch op.Kind {
	case sim.OpTxBegin:
		_, t.err = fmt.Fprintf(t.w, "B %d\n", core)
	case sim.OpTxEnd:
		_, t.err = fmt.Fprintf(t.w, "E %d\n", core)
	case sim.OpLoad:
		_, t.err = fmt.Fprintf(t.w, "L %d %x\n", core, uint64(op.Addr))
	case sim.OpStore:
		_, t.err = fmt.Fprintf(t.w, "S %d %x %x\n", core, uint64(op.Addr), uint64(op.Data))
	case sim.OpCompute:
		_, t.err = fmt.Fprintf(t.w, "C %d %d\n", core, op.Cycles)
	}
	t.n++
}

// Flush drains buffered output and returns the first error encountered.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Ops returns the number of operations recorded.
func (t *Writer) Ops() int64 { return t.n }

// Trace is a parsed trace: per-core operation streams.
type Trace struct {
	PerCore [][]sim.Op
}

// Cores returns the number of cores with operations.
func (t *Trace) Cores() int { return len(t.PerCore) }

// Ops returns the total operation count.
func (t *Trace) Ops() int {
	n := 0
	for _, ops := range t.PerCore {
		n += len(ops)
	}
	return n
}

// Transactions returns committed-transaction counts per core (Tx_end
// records).
func (t *Trace) Transactions() int {
	n := 0
	for _, ops := range t.PerCore {
		for _, op := range ops {
			if op.Kind == sim.OpTxEnd {
				n++
			}
		}
	}
	return n
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: too few fields", lineNo)
		}
		core, err := strconv.Atoi(fields[1])
		if err != nil || core < 0 || core > 1<<16 {
			return nil, fmt.Errorf("trace: line %d: bad core %q", lineNo, fields[1])
		}
		for core >= len(t.PerCore) {
			t.PerCore = append(t.PerCore, nil)
		}
		var op sim.Op
		switch fields[0] {
		case "B", "E":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: %s takes only a core", lineNo, fields[0])
			}
			if fields[0] == "B" {
				op.Kind = sim.OpTxBegin
			} else {
				op.Kind = sim.OpTxEnd
			}
		case "L":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: load needs addr", lineNo)
			}
			a, err := strconv.ParseUint(fields[2], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad addr: %v", lineNo, err)
			}
			op = sim.Op{Kind: sim.OpLoad, Addr: mem.Addr(a)}
		case "S":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: store needs addr and data", lineNo)
			}
			a, err := strconv.ParseUint(fields[2], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad addr: %v", lineNo, err)
			}
			v, err := strconv.ParseUint(fields[3], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad data: %v", lineNo, err)
			}
			op = sim.Op{Kind: sim.OpStore, Addr: mem.Addr(a), Data: mem.Word(v)}
		case "C":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: compute needs cycles", lineNo)
			}
			c, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("trace: line %d: bad cycles", lineNo)
			}
			op = sim.Op{Kind: sim.OpCompute, Cycles: sim.Cycle(c)}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineNo, fields[0])
		}
		t.PerCore[core] = append(t.PerCore[core], op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// Stream returns a native OpStream replaying core's operation stream —
// a slice cursor with no program frame at all.
func (t *Trace) Stream(core int) sim.OpStream {
	if core < len(t.PerCore) {
		return sim.NewOpsStream(t.PerCore[core])
	}
	return sim.NewOpsStream(nil)
}

// Program returns a sim.Program replaying core's operation stream.
func (t *Trace) Program(core int) sim.Program {
	var ops []sim.Op
	if core < len(t.PerCore) {
		ops = t.PerCore[core]
	}
	return func(ctx *sim.Ctx) {
		for _, op := range ops {
			switch op.Kind {
			case sim.OpTxBegin:
				ctx.TxBegin()
			case sim.OpTxEnd:
				ctx.TxEnd()
			case sim.OpLoad:
				ctx.Load(op.Addr)
			case sim.OpStore:
				ctx.Store(op.Addr, op.Data)
			case sim.OpCompute:
				ctx.Compute(op.Cycles)
			}
		}
	}
}
