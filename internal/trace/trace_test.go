package trace

import (
	"bytes"
	"strings"
	"testing"

	"silo/internal/sim"
)

func TestWriterReaderRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ops := []struct {
		core int
		op   sim.Op
	}{
		{0, sim.Op{Kind: sim.OpTxBegin}},
		{0, sim.Op{Kind: sim.OpStore, Addr: 0x1000, Data: 0xABCD}},
		{1, sim.Op{Kind: sim.OpLoad, Addr: 0x2008}},
		{0, sim.Op{Kind: sim.OpTxEnd}},
		{1, sim.Op{Kind: sim.OpCompute, Cycles: 77}},
	}
	for _, o := range ops {
		w.Op(o.core, o.op)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Ops() != int64(len(ops)) {
		t.Errorf("Ops = %d", w.Ops())
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cores() != 2 {
		t.Fatalf("cores = %d", tr.Cores())
	}
	if tr.Ops() != len(ops) {
		t.Fatalf("ops = %d", tr.Ops())
	}
	if tr.Transactions() != 1 {
		t.Errorf("transactions = %d", tr.Transactions())
	}
	c0 := tr.PerCore[0]
	if len(c0) != 3 || c0[1].Kind != sim.OpStore || c0[1].Addr != 0x1000 || c0[1].Data != 0xABCD {
		t.Errorf("core 0 stream wrong: %+v", c0)
	}
	c1 := tr.PerCore[1]
	if len(c1) != 2 || c1[0].Addr != 0x2008 || c1[1].Cycles != 77 {
		t.Errorf("core 1 stream wrong: %+v", c1)
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nB 0\nE 0\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops() != 2 {
		t.Errorf("ops = %d", tr.Ops())
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"X 0",       // unknown record
		"B",         // missing core
		"B x",       // bad core
		"L 0",       // load without addr
		"L 0 zz",    // bad addr
		"S 0 10",    // store without data
		"S 0 10 zz", // bad data
		"C 0 -5",    // negative cycles
		"C 0 q",     // bad cycles
		"C 0",       // compute without cycles
		"B 0 extra", // too many fields
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed line %q", in)
		}
	}
}

func TestProgramReplays(t *testing.T) {
	in := "B 0\nS 0 100 7\nL 0 100\nE 0\nC 0 10\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	exec := &countingExec{}
	eng := sim.NewEngine(exec, 1, 1)
	eng.Run([]sim.Program{tr.Program(0)})
	if exec.n != 5 {
		t.Errorf("replayed %d ops, want 5", exec.n)
	}
	// A missing core replays as an empty program.
	eng2 := sim.NewEngine(&countingExec{}, 1, 1)
	eng2.Run([]sim.Program{tr.Program(5)})
}

type countingExec struct{ n int }

func (e *countingExec) Exec(core int, op sim.Op, now sim.Cycle) sim.Result {
	e.n++
	return sim.Result{Latency: 1}
}
