package resultstore

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// DefaultChunkBytes is the pending-record buffer size that triggers a
// chunk flush. One flush is one write syscall, so the fleet's write
// path amortizes to well under a syscall per record; a hard kill loses
// at most one unflushed chunk, which Recover detects and resume
// re-runs.
const DefaultChunkBytes = 64 << 10

// Writer streams campaign records into <path>.tmp and publishes the
// sealed store at path by atomic rename. It is strictly single-writer
// and append-only: records accumulate in CRC-sealed chunks, index rows
// are kept in memory, and Seal writes names + index + footer, rewrites
// the finalized header, fsyncs, and renames. Abandoning a Writer (or
// dying) leaves only the temp segment, whose sealed chunk prefix
// Recover extracts byte-exactly.
type Writer struct {
	path   string
	tmp    *os.File
	off    uint64 // file offset of the next chunk
	buf    []byte // pending records area of the open chunk
	rows   []Row
	rowIDs [][4]uint16 // interned (design, workload, invariant, mode) per row
	latest map[int64]int
	names  map[string]uint16
	list   []string

	chunkBytes int
	payloadCRC uint32 // running CRC over the payload section bytes
	sealed     bool
	err        error // sticky I/O failure
}

// NewWriter creates the temp segment for a store at path, truncating
// any prior temp segment (read it with Recover first if resuming).
func NewWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(placeholderHeader()); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		path:       path,
		tmp:        f,
		off:        headerSize,
		latest:     make(map[int64]int),
		names:      make(map[string]uint16),
		chunkBytes: DefaultChunkBytes,
	}
	w.intern("") // id 0 is always the empty string
	return w, nil
}

// SetChunkBytes overrides the flush threshold (testing small chunks).
func (w *Writer) SetChunkBytes(n int) {
	if n > 0 {
		w.chunkBytes = n
	}
}

// TempPath returns the segment the writer streams into before Seal.
func (w *Writer) TempPath() string { return w.path + ".tmp" }

func (w *Writer) intern(s string) uint16 {
	if id, ok := w.names[s]; ok {
		return id
	}
	if len(w.list) > 0xFFFF {
		// The table is full; alias to the reserved empty string rather
		// than corrupting ids. Unreachable for design/workload/mode
		// vocabularies, which are a handful of strings.
		return 0
	}
	id := uint16(len(w.list))
	w.names[s] = id
	w.list = append(w.list, s)
	return id
}

// Append adds one record: its fixed index row plus the variable-length
// payload (conventionally the record's JSON encoding). The writer
// assigns the payload location and CRC; any location fields on row are
// ignored. Appends are buffered; see Flush.
func (w *Writer) Append(row Row, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.sealed {
		return fmt.Errorf("resultstore: append to sealed store %s", w.path)
	}
	row.payloadOff = w.off + chunkHdrSize + uint64(len(w.buf)) + 4
	row.payloadLen = uint32(len(payload))
	row.payloadCRC = crc32.ChecksumIEEE(payload)
	row.traceOff, row.traceLen, row.traceCRC = 0, 0, 0
	w.buf = le.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = append(w.buf, payload...)
	ids := [4]uint16{w.intern(row.Design), w.intern(row.Workload), w.intern(row.Invariant), w.intern(row.Mode)}
	w.latest[row.Index] = len(w.rows)
	w.rows = append(w.rows, row)
	w.rowIDs = append(w.rowIDs, ids)
	if len(w.buf) >= w.chunkBytes {
		return w.Flush()
	}
	return nil
}

// Flush seals the pending records into one chunk and writes it out.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	hdr := make([]byte, chunkHdrSize)
	le.PutUint32(hdr[0:], chunkMagic)
	le.PutUint32(hdr[4:], uint32(w.pendingCount()))
	le.PutUint32(hdr[8:], uint32(len(w.buf)))
	le.PutUint32(hdr[12:], crc32.ChecksumIEEE(w.buf))
	if err := w.write(hdr); err != nil {
		return err
	}
	if err := w.write(w.buf); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// pendingCount walks the buffered frames; chunk counts are small, so
// re-deriving beats carrying extra state.
func (w *Writer) pendingCount() int {
	n, b := 0, w.buf
	for len(b) >= 4 {
		l := int(le.Uint32(b))
		if 4+l > len(b) {
			break // unreachable: frames are writer-built
		}
		b = b[4+l:]
		n++
	}
	return n
}

func (w *Writer) write(b []byte) error {
	if _, err := w.tmp.Write(b); err != nil {
		w.err = err
		return err
	}
	w.payloadCRC = crc32.Update(w.payloadCRC, crc32.IEEETable, b)
	w.off += uint64(len(b))
	return nil
}

// AttachTrace compresses blob (flate) and attaches it to the latest
// appended row for the campaign index. Traces ride the payload stream
// as their own sealed chunks; they are debug artifacts, so Recover
// skips them and an interrupted writer only ever loses traces, never
// records.
func (w *Writer) AttachTrace(index int64, blob []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.sealed {
		return fmt.Errorf("resultstore: attach trace to sealed store %s", w.path)
	}
	pos, ok := w.latest[index]
	if !ok {
		return fmt.Errorf("resultstore: no record for campaign %d to attach a trace to", index)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := fw.Write(blob); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	hdr := make([]byte, traceHdrSize)
	le.PutUint32(hdr[0:], traceMagic)
	le.PutUint64(hdr[8:], uint64(index))
	le.PutUint32(hdr[16:], uint32(comp.Len()))
	le.PutUint32(hdr[20:], crc32.ChecksumIEEE(comp.Bytes()))
	off := w.off + traceHdrSize
	if err := w.write(hdr); err != nil {
		return err
	}
	if err := w.write(comp.Bytes()); err != nil {
		return err
	}
	w.rows[pos].traceOff = off
	w.rows[pos].traceLen = uint32(comp.Len())
	w.rows[pos].traceCRC = crc32.ChecksumIEEE(comp.Bytes())
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int { return len(w.rows) }

// Seal publishes the store: flush the open chunk, append names, index
// and footer, rewrite the finalized header, fsync, and atomically
// rename the temp segment to the final path. After Seal the writer is
// closed; further appends fail.
func (w *Writer) Seal() error {
	if w.sealed {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var h header
	h.count = uint64(len(w.rows))
	h.payloadOff = headerSize
	h.payloadLen = w.off - headerSize
	h.payloadCRC = w.payloadCRC

	h.namesOff = w.off
	names := encodeNames(w.list)
	h.namesLen = uint64(len(names))
	if _, err := w.tmp.Write(names); err != nil {
		w.err = err
		return err
	}

	h.indexOff = h.namesOff + h.namesLen
	h.indexLen = uint64(len(w.rows)) * RowSize
	rows := make([]byte, h.indexLen)
	for i := range w.rows {
		ids := w.rowIDs[i]
		encodeRow(rows[i*RowSize:], &w.rows[i], ids[0], ids[1], ids[2], ids[3])
	}
	if _, err := w.tmp.Write(rows); err != nil {
		w.err = err
		return err
	}

	f := footer{
		fileLen:  h.indexOff + h.indexLen + footerSize,
		count:    h.count,
		indexCRC: crc32.ChecksumIEEE(rows),
	}
	if _, err := w.tmp.Write(f.encode()); err != nil {
		w.err = err
		return err
	}
	if _, err := w.tmp.WriteAt(h.encode(), 0); err != nil {
		w.err = err
		return err
	}
	if err := w.tmp.Sync(); err != nil {
		w.err = err
		return err
	}
	if err := w.tmp.Close(); err != nil {
		w.err = err
		return err
	}
	if err := os.Rename(w.TempPath(), w.path); err != nil {
		w.err = err
		return err
	}
	syncDir(w.path)
	w.sealed = true
	return nil
}

// Abort discards the temp segment without publishing anything.
func (w *Writer) Abort() error {
	if w.sealed {
		return nil
	}
	w.sealed = true
	w.tmp.Close()
	return os.Remove(w.TempPath())
}

// syncDir fsyncs the directory so the rename itself is durable;
// best-effort (some filesystems refuse directory fsync).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
