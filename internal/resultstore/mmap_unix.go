//go:build unix

package resultstore

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A zero-length mapping is illegal,
// so empty files fall back to an empty slice (Open then rejects it as
// too short to hold the header).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
