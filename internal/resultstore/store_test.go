package resultstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testRow builds a distinctive row+payload pair for campaign i.
func testRow(i int) (Row, []byte) {
	r := Row{
		Index:       int64(i),
		Seed:        int64(1000 + i),
		Commits:     int64(10 * i),
		Torn:        int64(i % 3),
		Dropped:     int64(i % 2),
		Restarts:    uint32(i % 4),
		Design:      []string{"Silo", "UndoLog", "RedoLog"}[i%3],
		Workload:    []string{"Btree", "Hash"}[i%2],
		Attempts:    uint16(1 + i%2),
		MidRun:      i%2 == 0,
		Complete:    true,
		Kind:        KindOK,
		RedoApplied: uint32(i),
	}
	if i%7 == 3 {
		r.Kind = KindMismatch
		r.Mismatches = 2
		r.Invariant = "golden-shadow"
	}
	if i%11 == 5 {
		r.Kind = KindInfra
		r.Infra = true
	}
	if i%5 == 4 {
		r.HasAvail = true
		r.Replicas = 3
		r.Mode = "sync"
		r.Windows = uint32(i % 6)
		r.DetectSum = int64(i) * 17
		r.WidthMax = int64(i) * 29
		r.AckedLost = 0
	}
	return r, []byte(fmt.Sprintf(`{"index":%d,"design":%q,"blob":"campaign %d payload"}`, i, r.Design, i))
}

// buildStore seals a store with n campaigns (plus any traces) and
// returns its path.
func buildStore(t *testing.T, n int, chunkBytes int, traces map[int][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if chunkBytes > 0 {
		w.SetChunkBytes(chunkBytes)
	}
	for i := 0; i < n; i++ {
		r, p := testRow(i)
		if err := w.Append(r, p); err != nil {
			t.Fatal(err)
		}
		if blob, ok := traces[i]; ok {
			if err := w.AttachTrace(int64(i), blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	const n = 100
	path := buildStore(t, n, 512, nil) // small chunks → many chunk boundaries
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp segment survived Seal: %v", err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != n {
		t.Fatalf("Count = %d, want %d", st.Count(), n)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for i := 0; i < n; i++ {
		want, wantPayload := testRow(i)
		got := st.Row(i)
		// Location fields are writer-assigned; compare the semantic fields.
		got.payloadOff, got.payloadLen, got.payloadCRC = 0, 0, 0
		got.traceOff, got.traceLen, got.traceCRC = 0, 0, 0
		if got != want {
			t.Fatalf("row %d:\n got %+v\nwant %+v", i, got, want)
		}
		p, err := st.Payload(i)
		if err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if !bytes.Equal(p, wantPayload) {
			t.Fatalf("payload %d = %q, want %q", i, p, wantPayload)
		}
	}
}

func TestFilterScan(t *testing.T) {
	const n = 60
	path := buildStore(t, n, 0, nil)
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	count := func(f Filter) (c int) {
		st.Scan(f, func(_ int, _ Row) bool { c++; return true })
		return
	}
	// Recompute expectations straight from the generator.
	var wantSilo, wantHash, wantFailed int
	for i := 0; i < n; i++ {
		r, _ := testRow(i)
		if r.Design == "Silo" {
			wantSilo++
		}
		if r.Workload == "Hash" {
			wantHash++
		}
		if r.Failed() {
			wantFailed++
		}
	}
	if got := count(Filter{}); got != n {
		t.Errorf("empty filter matched %d, want %d", got, n)
	}
	if got := count(Filter{Design: "Silo"}); got != wantSilo {
		t.Errorf("Design=Silo matched %d, want %d", got, wantSilo)
	}
	if got := count(Filter{Workload: "Hash"}); got != wantHash {
		t.Errorf("Workload=Hash matched %d, want %d", got, wantHash)
	}
	if got := count(Filter{FailedOnly: true}); got != wantFailed {
		t.Errorf("FailedOnly matched %d, want %d", got, wantFailed)
	}
	if got := count(Filter{Design: "NoSuchDesign"}); got != 0 {
		t.Errorf("bogus design matched %d, want 0", got)
	}
	// Early stop.
	visits := 0
	st.Scan(Filter{}, func(_ int, _ Row) bool { visits++; return visits < 5 })
	if visits != 5 {
		t.Errorf("scan visited %d rows after stop, want 5", visits)
	}
}

func TestTraces(t *testing.T) {
	blob := bytes.Repeat([]byte(`{"traceEvents":[]} `), 200)
	path := buildStore(t, 10, 0, map[int][]byte{3: blob, 7: []byte("tiny")})
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		got, err := st.Trace(i)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		switch i {
		case 3:
			if !bytes.Equal(got, blob) {
				t.Fatalf("trace 3 round-trip mismatch (%d vs %d bytes)", len(got), len(blob))
			}
			if !st.Row(i).HasTrace() {
				t.Fatal("row 3 does not report HasTrace")
			}
		case 7:
			if string(got) != "tiny" {
				t.Fatalf("trace 7 = %q", got)
			}
		default:
			if got != nil || st.Row(i).HasTrace() {
				t.Fatalf("row %d unexpectedly has a trace", i)
			}
		}
	}
	// Payloads must be unaffected by interleaved trace chunks.
	for i := 0; i < 10; i++ {
		_, want := testRow(i)
		p, err := st.Payload(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, want) {
			t.Fatalf("payload %d corrupted by trace interleave", i)
		}
	}
}

func TestEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 0 {
		t.Fatalf("Count = %d, want 0", st.Count())
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsUnsealedSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	r, p := testRow(0)
	if err := w.Append(r, p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// The writer dies here: no Seal. The temp segment must be ErrCorrupt
	// to Open but recoverable.
	if _, err := Open(w.TempPath()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(unsealed) = %v, want ErrCorrupt", err)
	}
	payloads, err := Recover(w.TempPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || !bytes.Equal(payloads[0], p) {
		t.Fatalf("Recover = %d payloads, want the 1 appended byte-exactly", len(payloads))
	}
}

func TestRecoverSealedPrefixByteExact(t *testing.T) {
	// Many small chunks, writer killed after the last flush: every
	// flushed record must come back byte-exactly, in order.
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChunkBytes(256)
	var want [][]byte
	for i := 0; i < 40; i++ {
		r, p := testRow(i)
		if err := w.Append(r, p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(w.TempPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d not byte-exact", i)
		}
	}
	w.Abort()
}

func TestRecoverOnSealedStoreStopsAtNames(t *testing.T) {
	// Recover over a *sealed* file must still return exactly the records
	// (it stops scanning at the names section).
	path := buildStore(t, 15, 300, nil)
	got, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("recovered %d payloads from sealed store, want 15", len(got))
	}
}

func TestRecoverSkipsTraces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		r, p := testRow(i)
		if err := w.Append(r, p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
		if err := w.AttachTrace(int64(i), bytes.Repeat([]byte("t"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(w.TempPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d payloads, want %d (traces must be skipped, not returned)", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d not byte-exact across trace chunks", i)
		}
	}
	w.Abort()
}

func TestAppendAfterSealFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	r, p := testRow(0)
	if err := w.Append(r, p); err == nil {
		t.Fatal("Append after Seal succeeded")
	}
	if err := w.AttachTrace(0, p); err == nil {
		t.Fatal("AttachTrace after Seal succeeded")
	}
	if err := w.Seal(); err != nil {
		t.Fatalf("second Seal should be a no-op, got %v", err)
	}
}

func TestAbortRemovesTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	r, p := testRow(0)
	if err := w.Append(r, p); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(w.TempPath()); !os.IsNotExist(err) {
		t.Fatalf("temp segment survived Abort: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("Abort published a store: %v", err)
	}
}

func TestDuplicateIndexLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := testRow(0)
	if err := w.Append(r, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(r, []byte("second")); err != nil {
		t.Fatal(err)
	}
	// AttachTrace targets the latest row for the index.
	if err := w.AttachTrace(0, []byte("trace")); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (duplicates preserved)", st.Count())
	}
	if st.Row(0).HasTrace() {
		t.Fatal("trace attached to the superseded row")
	}
	if !st.Row(1).HasTrace() {
		t.Fatal("trace missing from the latest row")
	}
	tr, err := st.Trace(1)
	if err != nil || string(tr) != "trace" {
		t.Fatalf("Trace(1) = %q, %v", tr, err)
	}
}
