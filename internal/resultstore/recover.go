package resultstore

import (
	"fmt"
	"hash/crc32"
	"os"
)

// Recover extracts the sealed chunk prefix of an unsealed or damaged
// segment — the artifact a killed writer leaves at <path>.tmp — and
// returns every intact record payload in append order, byte-exactly as
// written. Scanning stops at the first torn or unsealed tail (the only
// thing a crashed append can produce), which is interruption, not an
// error; a file that is not an SRS1 segment at all is ErrCorrupt.
// Trace chunks are skipped: losing debug blobs to a crash is fine,
// losing records is not.
func Recover(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return recoverBytes(data)
}

func recoverBytes(data []byte) ([][]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, data[0:4], Magic)
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, Version)
	}
	var payloads [][]byte
	off := headerSize
	for off+4 <= len(data) {
		switch le.Uint32(data[off:]) {
		case chunkMagic:
			if off+chunkHdrSize > len(data) {
				return payloads, nil // torn chunk header
			}
			areaLen := int(le.Uint32(data[off+8:]))
			crc := le.Uint32(data[off+12:])
			start, end := off+chunkHdrSize, off+chunkHdrSize+areaLen
			if areaLen < 0 || end < start || end > len(data) {
				return payloads, nil // torn chunk body
			}
			area := data[start:end]
			if crc32.ChecksumIEEE(area) != crc {
				return payloads, nil // torn or bit-flipped chunk
			}
			recs, ok := splitFrames(area)
			if !ok {
				// A CRC-valid chunk with inconsistent framing is not a
				// torn write — the writer never produces it.
				return payloads, fmt.Errorf("%w: chunk at %d: CRC valid but frames inconsistent", ErrCorrupt, off)
			}
			payloads = append(payloads, recs...)
			off = end
		case traceMagic:
			if off+traceHdrSize > len(data) {
				return payloads, nil
			}
			compLen := int(le.Uint32(data[off+16:]))
			crc := le.Uint32(data[off+20:])
			start, end := off+traceHdrSize, off+traceHdrSize+compLen
			if compLen < 0 || end < start || end > len(data) {
				return payloads, nil
			}
			if crc32.ChecksumIEEE(data[start:end]) != crc {
				return payloads, nil
			}
			off = end
		default:
			// Names section of a sealed file, a torn tail, or garbage:
			// either way the record stream ends here.
			return payloads, nil
		}
	}
	return payloads, nil
}

// splitFrames parses a chunk's records area: u32 length-prefixed
// payloads, copied out so callers outlive the scan buffer.
func splitFrames(area []byte) ([][]byte, bool) {
	var recs [][]byte
	for len(area) > 0 {
		if len(area) < 4 {
			return nil, false
		}
		n := int(le.Uint32(area))
		area = area[4:]
		if n < 0 || n > len(area) {
			return nil, false
		}
		recs = append(recs, append([]byte(nil), area[:n]...))
		area = area[n:]
	}
	return recs, true
}
