package resultstore

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Store is a sealed SRS1 file opened read-only via mmap. Opening
// validates the header, footer, section geometry, names table and
// index CRC — everything needed to trust the index — in O(index)
// time; payload bytes are only read (and CRC-checked per record) when
// a caller actually asks for them, so filtering a million-campaign
// store never touches a payload.
type Store struct {
	data    []byte
	unmap   func() error
	hdr     header
	names   []string
	rowsRaw []byte
}

// Open maps the store at path and validates its seals. Any structural
// problem — truncation, bad magic, bad CRC, an unsealed temp segment —
// returns an error wrapping ErrCorrupt.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	data, unmap, err := mmapFile(f, st.Size())
	// The mapping outlives the descriptor either way.
	f.Close()
	if err != nil {
		return nil, err
	}
	s, err := openBytes(data)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.unmap = unmap
	return s, nil
}

// openBytes validates an in-memory image (shared by Open and the
// fuzzer, which must exercise exactly the production checks).
func openBytes(data []byte) (*Store, error) {
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d bytes cannot hold header and footer", ErrCorrupt, len(data))
	}
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	ftr, err := parseFooter(data[len(data)-footerSize:])
	if err != nil {
		return nil, err
	}
	if ftr.fileLen != uint64(len(data)) {
		return nil, fmt.Errorf("%w: footer says %d bytes, file has %d", ErrCorrupt, ftr.fileLen, len(data))
	}
	if ftr.count != h.count {
		return nil, fmt.Errorf("%w: footer count %d != header count %d", ErrCorrupt, ftr.count, h.count)
	}
	// Section geometry must tile the file exactly.
	if h.payloadOff != headerSize ||
		h.namesOff != h.payloadOff+h.payloadLen ||
		h.indexOff != h.namesOff+h.namesLen ||
		h.indexOff+h.indexLen+footerSize != uint64(len(data)) {
		return nil, fmt.Errorf("%w: section offsets do not tile the file", ErrCorrupt)
	}
	// Derive from indexLen (already bounded by the file size) rather
	// than multiplying the untrusted count, which could overflow.
	if h.indexLen%RowSize != 0 || h.indexLen/RowSize != h.count {
		return nil, fmt.Errorf("%w: index length %d != %d rows × %d", ErrCorrupt, h.indexLen, h.count, RowSize)
	}
	names, err := decodeNames(data[h.namesOff : h.namesOff+h.namesLen])
	if err != nil {
		return nil, err
	}
	rows := data[h.indexOff : h.indexOff+h.indexLen]
	if got := crc32.ChecksumIEEE(rows); got != ftr.indexCRC {
		return nil, fmt.Errorf("%w: index CRC %#x != %#x", ErrCorrupt, got, ftr.indexCRC)
	}
	return &Store{data: data, hdr: h, names: names, rowsRaw: rows}, nil
}

// Close unmaps the store.
func (s *Store) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.data, s.rowsRaw = nil, nil
	return u()
}

// Count returns the number of records (index rows) in the store.
func (s *Store) Count() int { return int(s.hdr.count) }

func (s *Store) name(id uint16) string {
	if int(id) < len(s.names) {
		return s.names[id]
	}
	return fmt.Sprintf("name#%d", id) // ids are writer-interned; out of range means a hostile edit survived the CRCs
}

// Row decodes index row i. Panics on out-of-range i, like a slice.
func (s *Store) Row(i int) Row {
	r, d, w, inv, m := decodeRow(s.rowsRaw[i*RowSize:])
	r.Design = s.name(d)
	r.Workload = s.name(w)
	r.Invariant = s.name(inv)
	r.Mode = s.name(m)
	return r
}

// Payload returns record i's payload bytes after verifying the
// per-record CRC. The slice aliases the mapping: treat it as
// read-only and do not retain it past Close.
func (s *Store) Payload(i int) ([]byte, error) {
	r, _, _, _, _ := decodeRow(s.rowsRaw[i*RowSize:])
	return s.section(r.payloadOff, r.payloadLen, r.payloadCRC, "payload", i)
}

// Trace returns record i's decompressed trace blob, or nil when none
// is attached.
func (s *Store) Trace(i int) ([]byte, error) {
	r, _, _, _, _ := decodeRow(s.rowsRaw[i*RowSize:])
	if r.traceLen == 0 {
		return nil, nil
	}
	comp, err := s.section(r.traceOff, r.traceLen, r.traceCRC, "trace", i)
	if err != nil {
		return nil, err
	}
	blob, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		return nil, fmt.Errorf("%w: record %d trace: %v", ErrCorrupt, i, err)
	}
	return blob, nil
}

func (s *Store) section(off uint64, n, crc uint32, what string, i int) ([]byte, error) {
	end := off + uint64(n)
	if off < headerSize || end > s.hdr.payloadOff+s.hdr.payloadLen || end < off {
		return nil, fmt.Errorf("%w: record %d %s [%d,%d) escapes the payload section", ErrCorrupt, i, what, off, end)
	}
	b := s.data[off:end]
	if got := crc32.ChecksumIEEE(b); got != crc {
		return nil, fmt.Errorf("%w: record %d %s CRC %#x != %#x", ErrCorrupt, i, what, got, crc)
	}
	return b, nil
}

// Verify re-checks the whole payload section against the header CRC —
// the expensive full-file integrity pass Open deliberately skips.
func (s *Store) Verify() error {
	b := s.data[s.hdr.payloadOff : s.hdr.payloadOff+s.hdr.payloadLen]
	if got := crc32.ChecksumIEEE(b); got != s.hdr.payloadCRC {
		return fmt.Errorf("%w: payload section CRC %#x != %#x", ErrCorrupt, got, s.hdr.payloadCRC)
	}
	return nil
}

// Filter selects index rows without touching payloads. Zero values
// match everything.
type Filter struct {
	Design     string // exact design name
	Workload   string // exact workload name
	FailedOnly bool   // only rows with a durability failure on record
}

// Match reports whether the row passes the filter.
func (f Filter) Match(r Row) bool {
	if f.Design != "" && r.Design != f.Design {
		return false
	}
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.FailedOnly && !r.Failed() {
		return false
	}
	return true
}

// Scan visits matching rows in append order until fn returns false.
// This is the scan-fast path: a linear walk over the dense index, no
// payload reads, no allocation beyond the decoded row.
func (s *Store) Scan(f Filter, fn func(i int, r Row) bool) {
	for i := 0; i < s.Count(); i++ {
		r := s.Row(i)
		if !f.Match(r) {
			continue
		}
		if !fn(i, r) {
			return
		}
	}
}
