// Package resultstore implements SRS1, an mmap-friendly binary on-disk
// format for fleet campaign results: a dense fixed-size index row per
// campaign for scan-fast filtering plus a variable-length payload
// section holding the full records (and optional compressed trace
// blobs). It is the binary successor to the JSONL checkpoint stream —
// "query one million campaign results" becomes an index scan over a
// memory-mapped file instead of a million JSON parses.
//
// On-disk layout (all integers little-endian):
//
//	header (96 B) | payload section | names section | index section | footer (32 B)
//
// The payload section is a sequence of CRC-sealed chunks streamed by a
// single writer into a temporary segment (<path>.tmp); the names, index
// and finalized header are written at Seal, and the store is published
// by an atomic rename. An interrupted writer therefore leaves either a
// valid sealed store or a temp segment whose sealed chunk prefix is
// recoverable byte-exactly (Recover); anything else — bad magic, bad
// length, bad CRC — is a detectable ErrCorrupt, never a silent
// misread. See DESIGN.md §8 for the normative spec.
package resultstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt is wrapped by every corruption-detection failure: bad
// magic, impossible lengths, CRC mismatches, and unsealed segments.
var ErrCorrupt = errors.New("resultstore: corrupt store")

const (
	// Magic opens every SRS1 file, sealed or not.
	Magic   = "SRS1"
	Version = 1

	headerSize  = 96
	footerSize  = 32
	footerMagic = "SRS1SEAL"

	// RowSize is the fixed index-row width. Readers reject stores whose
	// header disagrees: a future version that grows the row bumps both
	// Version and RowSize, and old readers fail loudly instead of
	// misparsing.
	RowSize = 208

	chunkMagic   = 0x4B4E4843 // "CHNK" — a sealed batch of records
	traceMagic   = 0x45435254 // "TRCE" — one compressed trace blob
	chunkHdrSize = 16         // magic u32, count u32, areaLen u32, areaCRC u32
	traceHdrSize = 24         // magic u32, pad u32, index i64, compLen u32, compCRC u32
)

// Kind classifies a campaign outcome in the index, mirroring the
// JSONL reporting logic: Infra wins over everything (no durability
// verdict), then a run error, then golden-shadow mismatches.
type Kind uint8

const (
	KindOK       Kind = iota // verified clean
	KindMismatch             // post-recovery golden-shadow mismatches
	KindError                // the campaign errored (incl. audit violations)
	KindInfra                // watchdog/host failure; no durability verdict
)

func (k Kind) String() string {
	switch k {
	case KindOK:
		return "ok"
	case KindMismatch:
		return "mismatch"
	case KindError:
		return "error"
	case KindInfra:
		return "infra"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Row flags.
const (
	flagMidRun   = 1 << 0
	flagPanicked = 1 << 1
	flagTimedOut = 1 << 2
	flagInfra    = 1 << 3
	flagHasAvail = 1 << 4
	flagComplete = 1 << 5 // recovery pass ran to completion
)

// Row is one campaign's fixed-size index entry: everything a filter or
// aggregate needs without touching the variable-length payload. String
// fields are interned in the store's names table.
type Row struct {
	Index   int64
	Seed    int64
	Commits int64
	Torn    int64
	Dropped int64

	Restarts   uint32
	Mismatches uint32 // count only; the strings live in the payload

	Design    string
	Workload  string
	Invariant string // audit invariant that fired ("" = none)

	Attempts uint16
	Kind     Kind
	MidRun   bool
	Panicked bool
	TimedOut bool
	Infra    bool
	Complete bool

	// Recovery-report counters.
	CommittedTx   uint32
	RedoApplied   uint32
	UndoApplied   uint32
	Discarded     uint32
	Quarantined   uint32
	TotalRecords  uint32
	AppliedWrites uint32

	// Phase-split availability window fields (cluster campaigns).
	HasAvail   bool
	Replicas   uint16
	Mode       string // "sync"/"async"; "" for R=1
	Windows    uint32
	Strikes    uint32
	DetectSum  int64
	PromoteSum int64
	ResyncSum  int64
	WidthSum   int64
	WidthMax   int64
	OwnerSum   int64
	OwnerMax   int64
	AckedLost  int64

	// Payload/trace locations, assigned by the writer.
	payloadOff uint64
	payloadLen uint32
	payloadCRC uint32
	traceOff   uint64
	traceLen   uint32
	traceCRC   uint32
}

// Failed reports whether the row records a durability verdict against
// the design (a run error or golden-shadow mismatches). Infra rows are
// not failures — they carry no verdict at all.
func (r Row) Failed() bool { return r.Kind == KindMismatch || r.Kind == KindError }

// HasTrace reports whether a compressed trace blob is attached.
func (r Row) HasTrace() bool { return r.traceLen > 0 }

// PayloadLen returns the size of the row's payload record in bytes.
func (r Row) PayloadLen() int { return int(r.payloadLen) }

var le = binary.LittleEndian

// encodeRow writes r into dst[:RowSize]. Names are pre-interned ids.
func encodeRow(dst []byte, r *Row, designID, workloadID, invariantID, modeID uint16) {
	_ = dst[RowSize-1]
	le.PutUint64(dst[0:], uint64(r.Index))
	le.PutUint64(dst[8:], uint64(r.Seed))
	le.PutUint64(dst[16:], uint64(r.Commits))
	le.PutUint64(dst[24:], uint64(r.Torn))
	le.PutUint64(dst[32:], uint64(r.Dropped))
	le.PutUint32(dst[40:], r.Restarts)
	le.PutUint32(dst[44:], r.Mismatches)
	le.PutUint16(dst[48:], designID)
	le.PutUint16(dst[50:], workloadID)
	le.PutUint16(dst[52:], invariantID)
	le.PutUint16(dst[54:], r.Attempts)
	dst[56] = uint8(r.Kind)
	var flags uint8
	if r.MidRun {
		flags |= flagMidRun
	}
	if r.Panicked {
		flags |= flagPanicked
	}
	if r.TimedOut {
		flags |= flagTimedOut
	}
	if r.Infra {
		flags |= flagInfra
	}
	if r.HasAvail {
		flags |= flagHasAvail
	}
	if r.Complete {
		flags |= flagComplete
	}
	dst[57] = flags
	le.PutUint16(dst[58:], r.Replicas)
	le.PutUint16(dst[60:], modeID)
	le.PutUint16(dst[62:], 0) // reserved
	le.PutUint32(dst[64:], r.CommittedTx)
	le.PutUint32(dst[68:], r.RedoApplied)
	le.PutUint32(dst[72:], r.UndoApplied)
	le.PutUint32(dst[76:], r.Discarded)
	le.PutUint32(dst[80:], r.Quarantined)
	le.PutUint32(dst[84:], r.TotalRecords)
	le.PutUint32(dst[88:], r.AppliedWrites)
	le.PutUint32(dst[92:], r.Windows)
	le.PutUint32(dst[96:], r.Strikes)
	le.PutUint32(dst[100:], 0) // reserved
	le.PutUint64(dst[104:], uint64(r.DetectSum))
	le.PutUint64(dst[112:], uint64(r.PromoteSum))
	le.PutUint64(dst[120:], uint64(r.ResyncSum))
	le.PutUint64(dst[128:], uint64(r.WidthSum))
	le.PutUint64(dst[136:], uint64(r.WidthMax))
	le.PutUint64(dst[144:], uint64(r.OwnerSum))
	le.PutUint64(dst[152:], uint64(r.OwnerMax))
	le.PutUint64(dst[160:], uint64(r.AckedLost))
	le.PutUint64(dst[168:], r.payloadOff)
	le.PutUint32(dst[176:], r.payloadLen)
	le.PutUint32(dst[180:], r.payloadCRC)
	le.PutUint64(dst[184:], r.traceOff)
	le.PutUint32(dst[192:], r.traceLen)
	le.PutUint32(dst[196:], r.traceCRC)
	le.PutUint64(dst[200:], 0) // reserved
}

// decodeRow parses src[:RowSize]; name ids are resolved by the caller
// (the reader holds the names table).
func decodeRow(src []byte) (r Row, designID, workloadID, invariantID, modeID uint16) {
	_ = src[RowSize-1]
	r.Index = int64(le.Uint64(src[0:]))
	r.Seed = int64(le.Uint64(src[8:]))
	r.Commits = int64(le.Uint64(src[16:]))
	r.Torn = int64(le.Uint64(src[24:]))
	r.Dropped = int64(le.Uint64(src[32:]))
	r.Restarts = le.Uint32(src[40:])
	r.Mismatches = le.Uint32(src[44:])
	designID = le.Uint16(src[48:])
	workloadID = le.Uint16(src[50:])
	invariantID = le.Uint16(src[52:])
	r.Attempts = le.Uint16(src[54:])
	r.Kind = Kind(src[56])
	flags := src[57]
	r.MidRun = flags&flagMidRun != 0
	r.Panicked = flags&flagPanicked != 0
	r.TimedOut = flags&flagTimedOut != 0
	r.Infra = flags&flagInfra != 0
	r.HasAvail = flags&flagHasAvail != 0
	r.Complete = flags&flagComplete != 0
	r.Replicas = le.Uint16(src[58:])
	modeID = le.Uint16(src[60:])
	r.CommittedTx = le.Uint32(src[64:])
	r.RedoApplied = le.Uint32(src[68:])
	r.UndoApplied = le.Uint32(src[72:])
	r.Discarded = le.Uint32(src[76:])
	r.Quarantined = le.Uint32(src[80:])
	r.TotalRecords = le.Uint32(src[84:])
	r.AppliedWrites = le.Uint32(src[88:])
	r.Windows = le.Uint32(src[92:])
	r.Strikes = le.Uint32(src[96:])
	r.DetectSum = int64(le.Uint64(src[104:]))
	r.PromoteSum = int64(le.Uint64(src[112:]))
	r.ResyncSum = int64(le.Uint64(src[120:]))
	r.WidthSum = int64(le.Uint64(src[128:]))
	r.WidthMax = int64(le.Uint64(src[136:]))
	r.OwnerSum = int64(le.Uint64(src[144:]))
	r.OwnerMax = int64(le.Uint64(src[152:]))
	r.AckedLost = int64(le.Uint64(src[160:]))
	r.payloadOff = le.Uint64(src[168:])
	r.payloadLen = le.Uint32(src[176:])
	r.payloadCRC = le.Uint32(src[180:])
	r.traceOff = le.Uint64(src[184:])
	r.traceLen = le.Uint32(src[192:])
	r.traceCRC = le.Uint32(src[196:])
	return r, designID, workloadID, invariantID, modeID
}

// header is the finalized 96-byte file header.
type header struct {
	count      uint64
	payloadOff uint64
	payloadLen uint64
	namesOff   uint64
	namesLen   uint64
	indexOff   uint64
	indexLen   uint64
	payloadCRC uint32
}

func (h *header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b[0:4], Magic)
	le.PutUint32(b[4:], Version)
	le.PutUint32(b[8:], RowSize)
	le.PutUint32(b[12:], 0) // flags, reserved
	le.PutUint64(b[16:], h.count)
	le.PutUint64(b[24:], h.payloadOff)
	le.PutUint64(b[32:], h.payloadLen)
	le.PutUint64(b[40:], h.namesOff)
	le.PutUint64(b[48:], h.namesLen)
	le.PutUint64(b[56:], h.indexOff)
	le.PutUint64(b[64:], h.indexLen)
	le.PutUint32(b[72:], h.payloadCRC)
	// bytes 76..92 reserved (zero)
	le.PutUint32(b[92:], crc32.ChecksumIEEE(b[:92]))
	return b
}

// placeholderHeader is what the writer stamps on a fresh temp segment:
// valid magic/version/row-size so tools can identify the file, but a
// zero header CRC, which Open rejects — an unsealed segment is never a
// valid store.
func placeholderHeader() []byte {
	b := make([]byte, headerSize)
	copy(b[0:4], Magic)
	le.PutUint32(b[4:], Version)
	le.PutUint32(b[8:], RowSize)
	return b
}

// parseHeader validates the fixed header fields and CRC.
func parseHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(b), headerSize)
	}
	if string(b[0:4]) != Magic {
		return h, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, b[0:4], Magic)
	}
	if v := le.Uint32(b[4:]); v != Version {
		return h, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, Version)
	}
	if rs := le.Uint32(b[8:]); rs != RowSize {
		return h, fmt.Errorf("%w: row size %d (want %d)", ErrCorrupt, rs, RowSize)
	}
	want := le.Uint32(b[92:])
	if got := crc32.ChecksumIEEE(b[:92]); got != want {
		if want == 0 {
			return h, fmt.Errorf("%w: unsealed segment (placeholder header; the writer never sealed it)", ErrCorrupt)
		}
		return h, fmt.Errorf("%w: header CRC %#x != %#x", ErrCorrupt, got, want)
	}
	h.count = le.Uint64(b[16:])
	h.payloadOff = le.Uint64(b[24:])
	h.payloadLen = le.Uint64(b[32:])
	h.namesOff = le.Uint64(b[40:])
	h.namesLen = le.Uint64(b[48:])
	h.indexOff = le.Uint64(b[56:])
	h.indexLen = le.Uint64(b[64:])
	h.payloadCRC = le.Uint32(b[72:])
	return h, nil
}

// footer seals the file: its presence (with consistent lengths and
// CRCs) is what distinguishes a published store from a torn rename.
type footer struct {
	fileLen  uint64
	count    uint64
	indexCRC uint32
}

func (f *footer) encode() []byte {
	b := make([]byte, footerSize)
	copy(b[0:8], footerMagic)
	le.PutUint64(b[8:], f.fileLen)
	le.PutUint64(b[16:], f.count)
	le.PutUint32(b[24:], f.indexCRC)
	le.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return b
}

func parseFooter(b []byte) (footer, error) {
	var f footer
	if len(b) < footerSize {
		return f, fmt.Errorf("%w: missing footer", ErrCorrupt)
	}
	if string(b[0:8]) != footerMagic {
		return f, fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, b[0:8])
	}
	if want, got := le.Uint32(b[28:]), crc32.ChecksumIEEE(b[:28]); got != want {
		return f, fmt.Errorf("%w: footer CRC %#x != %#x", ErrCorrupt, got, want)
	}
	f.fileLen = le.Uint64(b[8:])
	f.count = le.Uint64(b[16:])
	f.indexCRC = le.Uint32(b[24:])
	return f, nil
}

// encodeNames serializes the interned string table:
// u32 count | { u16 len, bytes }* | u32 CRC.
func encodeNames(names []string) []byte {
	n := 8 // count + crc
	for _, s := range names {
		n += 2 + len(s)
	}
	b := make([]byte, 0, n)
	b = le.AppendUint32(b, uint32(len(names)))
	for _, s := range names {
		b = le.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	return le.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeNames(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: names section truncated (%d bytes)", ErrCorrupt, len(b))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if want, got := le.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: names CRC %#x != %#x", ErrCorrupt, got, want)
	}
	count := le.Uint32(body)
	body = body[4:]
	names := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(body) < 2 {
			return nil, fmt.Errorf("%w: names section truncated at entry %d", ErrCorrupt, i)
		}
		n := int(le.Uint16(body))
		body = body[2:]
		if len(body) < n {
			return nil, fmt.Errorf("%w: name %d overruns the section", ErrCorrupt, i)
		}
		names = append(names, string(body[:n]))
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the names table", ErrCorrupt, len(body))
	}
	return names, nil
}
