package resultstore

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedImage builds a small sealed store on disk and returns its
// bytes (corpus seed for the fuzzers).
func fuzzSeedImage(f *testing.F) []byte {
	f.Helper()
	dir, err := os.MkdirTemp("", "srsfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.srs")
	w, err := NewWriter(path)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r, p := testRow(i)
		if err := w.Append(r, p); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.AttachTrace(2, []byte("trace blob")); err != nil {
		f.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpenStore feeds arbitrary bytes through the exact validation
// path Open uses. The invariant: openBytes either rejects the input or
// yields a store whose every index row, payload and trace access is
// memory-safe — a hostile file may be unreadable, never a panic or a
// silent misread past the mapping.
func FuzzOpenStore(f *testing.F) {
	seed := fuzzSeedImage(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])         // torn rename
	f.Add(seed[:headerSize])          // header only
	f.Add(placeholderHeader())        // unsealed segment
	f.Add([]byte{})                   // empty
	f.Add([]byte("SRS1SEALSRS1SEAL")) // magic soup
	trunc := append([]byte(nil), seed...)
	trunc[100] ^= 0xFF // payload damage (lazily detected)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := openBytes(data)
		if err != nil {
			return
		}
		for i := 0; i < st.Count(); i++ {
			r := st.Row(i)
			_ = r.Failed()
			_, _ = st.Payload(i)
			_, _ = st.Trace(i)
		}
		st.Scan(Filter{FailedOnly: true}, func(int, Row) bool { return true })
		_ = st.Verify()
	})
}

// FuzzRecover asserts the crash-recovery scanner never panics and
// never fabricates records from arbitrary segment tails.
func FuzzRecover(f *testing.F) {
	seed := fuzzSeedImage(f)
	f.Add(seed)
	f.Add(seed[:headerSize+10])
	f.Add(placeholderHeader())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, err := recoverBytes(data)
		if err != nil {
			return
		}
		for _, p := range payloads {
			_ = len(p)
		}
	})
}
