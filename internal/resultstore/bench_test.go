package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// benchPayload is a representative fleet record encoding (~240 B, the
// observed median for a clean campaign).
func benchPayload(i int) []byte {
	return []byte(fmt.Sprintf(`{"index":%d,"design":"Silo","workload":"Btree","cores":4,"txns":400,"ops_per_tx":8,"seed":%d,"plan":"crash@1743/tear2","mid_run":true,"commits":398,"torn":1,"dropped":0,"restarts":1,"report":{"committed_tx":398,"redo_applied":12,"undo_applied":3,"discarded":1,"total_records":415,"applied_writes":3104,"complete":true},"attempts":1}`, i, 1000+i))
}

func benchRow(i int) Row {
	return Row{
		Index: int64(i), Seed: int64(1000 + i), Commits: 398, Torn: 1,
		Design: "Silo", Workload: "Btree", Attempts: 1,
		MidRun: true, Complete: true, Kind: KindOK,
	}
}

// BenchmarkStoreWrite measures the fleet-side append path (row encode,
// frame, CRC, chunked writes) per record, fsync excluded until Seal.
func BenchmarkStoreWrite(b *testing.B) {
	dir := b.TempDir()
	payload := benchPayload(1)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var w *Writer
	var err error
	for i := 0; i < b.N; i++ {
		if i%100_000 == 0 {
			if w != nil {
				b.StopTimer()
				w.Abort()
				b.StartTimer()
			}
			w, err = NewWriter(filepath.Join(dir, fmt.Sprintf("b%d.srs", i)))
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Append(benchRow(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Abort()
}

// benchStorePath lazily builds (once per test binary) a sealed store
// with n campaigns for the scan benchmarks.
func benchStorePath(b *testing.B, n int) string {
	b.Helper()
	path := filepath.Join(os.TempDir(), fmt.Sprintf("silo-bench-%d.srs", n))
	if _, err := os.Stat(path); err == nil {
		return path
	}
	w, err := NewWriter(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(benchRow(i), benchPayload(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkStoreScan measures a filtered index-only scan over a
// 100k-campaign store — the query path silo-report's -design /
// -failed-only flags take. One iteration = one full scan.
func BenchmarkStoreScan(b *testing.B) {
	path := benchStorePath(b, 100_000)
	st, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		st.Scan(Filter{Design: "Silo", FailedOnly: true}, func(int, Row) bool {
			matched++
			return true
		})
		if matched != 0 {
			b.Fatal("benchmark store has no failures; filter matched", matched)
		}
	}
}

// BenchmarkStoreOpen measures Open's validation cost on a
// 100k-campaign store (header+footer+names+index CRC; no payload
// reads).
func BenchmarkStoreOpen(b *testing.B) {
	path := benchStorePath(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		st.Close()
	}
}
