//go:build !unix

package resultstore

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the whole file; the
// API contract (read-only bytes, release via the returned func) is
// identical, just without the lazy paging.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
