package resultstore

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// sealedImage builds a sealed store (with one trace) and returns its
// raw bytes plus the parsed header for boundary arithmetic.
func sealedImage(t *testing.T) ([]byte, header) {
	t.Helper()
	path := buildStore(t, 25, 400, map[int][]byte{4: []byte("a trace blob")})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := parseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, h
}

// TestTruncationExhaustive asserts every proper prefix of a sealed
// store is rejected: a torn copy or a torn rename can never be
// silently misread as a smaller valid store.
func TestTruncationExhaustive(t *testing.T) {
	data, _ := sealedImage(t)
	for cut := 0; cut < len(data); cut++ {
		if _, err := openBytes(data[:cut]); err == nil {
			t.Fatalf("openBytes accepted a %d/%d-byte truncation", cut, len(data))
		}
	}
}

// TestTruncationBoundaries spot-checks the named section boundaries
// with ErrCorrupt specifically (the exhaustive test only demands *an*
// error).
func TestTruncationBoundaries(t *testing.T) {
	data, h := sealedImage(t)
	cuts := map[string]int{
		"empty":            0,
		"mid-header":       headerSize / 2,
		"header-only":      headerSize,
		"mid-payload":      int(h.payloadOff) + int(h.payloadLen)/2,
		"payload-boundary": int(h.namesOff),
		"mid-names":        int(h.namesOff) + int(h.namesLen)/2,
		"names-boundary":   int(h.indexOff),
		"mid-record-row":   int(h.indexOff) + RowSize/2,
		"index-boundary":   int(h.indexOff) + int(h.indexLen),
		"mid-footer":       len(data) - footerSize/2,
		"last-byte":        len(data) - 1,
	}
	for name, cut := range cuts {
		_, err := openBytes(data[:cut])
		if err == nil {
			t.Errorf("%s (cut %d): accepted", name, cut)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s (cut %d): error %v does not wrap ErrCorrupt", name, cut, err)
		}
	}
}

// TestBitFlipExhaustive flips every byte of a sealed store and asserts
// the damage is always detectable: either Open rejects the file, or —
// for the lazily-validated payload section — Verify and the per-record
// CRC catch it.
func TestBitFlipExhaustive(t *testing.T) {
	data, h := sealedImage(t)
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(mut, data)
		mut[i] ^= 0x40
		st, err := openBytes(mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", i, err)
			}
			continue
		}
		// Open tolerated the flip, so it must be inside the payload
		// section (whose bytes are validated lazily) — and Verify must
		// catch it.
		if uint64(i) < h.payloadOff || uint64(i) >= h.payloadOff+h.payloadLen {
			t.Fatalf("flip at %d (outside payload section) went undetected by Open", i)
		}
		if st.Verify() == nil {
			t.Fatalf("flip at %d: Verify passed on damaged payload section", i)
		}
	}
}

// TestBitFlipPayloadRecord flips a byte inside one record's payload
// and asserts exactly that record's read fails, with ErrCorrupt.
func TestBitFlipPayloadRecord(t *testing.T) {
	path := buildStore(t, 10, 0, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 3's payload via its row and damage one byte.
	r, _, _, _, _ := decodeRow(st.rowsRaw[3*RowSize:])
	data[r.payloadOff+uint64(r.payloadLen)/2] ^= 0x01
	st2, err := openBytes(data)
	if err != nil {
		t.Fatalf("lazy open rejected a payload-only flip: %v", err)
	}
	if _, err := st2.Payload(3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Payload(3) = %v, want ErrCorrupt", err)
	}
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if _, err := st2.Payload(i); err != nil {
			t.Fatalf("Payload(%d) collateral damage: %v", i, err)
		}
	}
}

// unsealedImage writes n records, one chunk each (chunk size 1 forces
// a flush per append), and returns the temp-segment bytes.
func unsealedImage(t *testing.T, n int) ([]byte, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.srs")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChunkBytes(1)
	var payloads [][]byte
	for i := 0; i < n; i++ {
		r, p := testRow(i)
		if err := w.Append(r, p); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
	}
	data, err := os.ReadFile(w.TempPath())
	if err != nil {
		t.Fatal(err)
	}
	w.Abort()
	return data, payloads
}

// chunkEnds scans an unsealed segment and returns the file offset just
// past each chunk.
func chunkEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := headerSize
	for off+chunkHdrSize <= len(data) && le.Uint32(data[off:]) == chunkMagic {
		off += chunkHdrSize + int(le.Uint32(data[off+8:]))
		ends = append(ends, off)
	}
	return ends
}

// TestRecoverTornTailMatrix truncates an interrupted segment at every
// byte and asserts Recover returns exactly the chunks that are wholly
// present — never an error, never a partial record, never a misread.
func TestRecoverTornTailMatrix(t *testing.T) {
	data, payloads := unsealedImage(t, 12)
	ends := chunkEnds(t, data)
	if len(ends) != 12 {
		t.Fatalf("expected 12 single-record chunks, scanned %d", len(ends))
	}
	sealedThrough := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for cut := headerSize; cut <= len(data); cut++ {
		got, err := recoverBytes(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := sealedThrough(cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: record %d not byte-exact", cut, i)
			}
		}
	}
}

// TestRecoverBitFlippedChunk damages one chunk and asserts recovery
// stops there, returning the intact prefix.
func TestRecoverBitFlippedChunk(t *testing.T) {
	data, payloads := unsealedImage(t, 12)
	ends := chunkEnds(t, data)
	// Flip a byte inside chunk 5's area (after its header).
	target := ends[4] + chunkHdrSize + 3
	data[target] ^= 0x80
	got, err := recoverBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("recovered %d records past a flipped chunk, want 5", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d not byte-exact", i)
		}
	}
}

// TestRecoverRejectsForeignFile asserts Recover is ErrCorrupt on
// not-an-SRS1-segment inputs rather than returning zero records.
func TestRecoverRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"jsonl": []byte(`{"index":0}` + "\n"),
		"short": []byte("SRS"),
		"zeros": make([]byte, 4096),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Recover = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestCraftedCountOverflow rebuilds the historic overflow attack: a
// header whose count*RowSize wraps to match indexLen must be rejected,
// not scanned past the mapping.
func TestCraftedCountOverflow(t *testing.T) {
	data, h := sealedImage(t)
	mut := append([]byte(nil), data...)
	// count' = count + 2^64/RowSize-ish so count'*RowSize wraps; easier:
	// pick count' = count + (1<<60) where (1<<60)*208 mod 2^64 == 0 is
	// false, so craft the exact wrap: count' such that count'*208 ≡
	// indexLen (mod 2^64). 208 = 16*13; 2^64/16 = 2^60, and 13 divides
	// into the odd part, so count' = count + 13<<60 wraps exactly.
	crafted := h.count + 13<<60
	le.PutUint64(mut[16:], crafted)
	// Re-seal the header CRC, and patch the footer count to match so
	// only the index-length consistency check can reject it.
	le.PutUint32(mut[92:], crc32.ChecksumIEEE(mut[:92]))
	foot := mut[len(mut)-footerSize:]
	le.PutUint64(foot[16:], crafted)
	le.PutUint32(foot[28:], crc32.ChecksumIEEE(foot[:28]))
	if crafted*RowSize != h.count*RowSize {
		t.Fatalf("test arithmetic wrong: %d", crafted*RowSize)
	}
	if _, err := openBytes(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("crafted count accepted: %v", err)
	}
}
