// Package serve is the live observability server behind cmd/silo-serve:
// it runs simulations and cluster scenarios on demand from HTTP
// requests, streams their telemetry over Server-Sent Events through a
// bounded telemetry.LiveSink, exposes Prometheus-format metrics, and
// supports on-demand ("pull the plug") crash injection with the recovery
// phases streamed back as events.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"silo/internal/cluster"
	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
)

// Run states. Terminal states are done, recovered, stopped and failed.
const (
	StateRunning   = "running"
	StateCrashed   = "crashed"   // crash injected; recovery replay in progress
	StateRecovered = "recovered" // crash + recovery complete (terminal)
	StateDone      = "done"      // completed without an injected crash (terminal)
	StateStopped   = "stopped"   // stopped on request, no crash semantics (terminal)
	StateFailed    = "failed"    // build error, infra failure, audit violation (terminal)
)

// Params is the request body of POST /api/runs. Zero fields take the
// preset's value (when Preset is set) and then the defaults below.
type Params struct {
	Preset string `json:"preset,omitempty"`
	Kind   string `json:"kind,omitempty"` // "sim" (default) or "cluster"

	Design   string `json:"design,omitempty"`   // default Silo
	Workload string `json:"workload,omitempty"` // default Btree (sim runs)
	Cores    int    `json:"cores,omitempty"`    // default 2
	Txns     int    `json:"txns,omitempty"`     // default 4000
	Seed     int64  `json:"seed,omitempty"`     // default 42

	// Table II knobs.
	OpsPerTx      int   `json:"ops_per_tx,omitempty"`
	LogBufEntries int   `json:"logbuf_entries,omitempty"`
	LogBufLatency int64 `json:"logbuf_latency,omitempty"`

	// FlushBudget bounds the battery energy (bytes) of an injected
	// crash's flush, the paper's §III-G budget; 0 = unbounded.
	FlushBudget int64 `json:"flush_budget,omitempty"`

	// Cluster runs.
	Nodes       int    `json:"nodes,omitempty"`    // default 4
	Requests    int    `json:"requests,omitempty"` // default 4000
	Replicas    int    `json:"replicas,omitempty"` // default 1
	Replication string `json:"replication,omitempty"`

	// CyclesPerSec throttles the simulation toward a wall-clock rate so
	// the dashboard charts move at human speed (0 = run flat out).
	CyclesPerSec int64 `json:"cycles_per_sec,omitempty"`

	// Buffer is the LiveSink ring capacity (0 = default).
	Buffer int `json:"buffer,omitempty"`
}

func (p *Params) defaults() {
	if p.Kind == "" {
		p.Kind = "sim"
	}
	if p.Design == "" {
		p.Design = "Silo"
	}
	if p.Workload == "" {
		p.Workload = "Btree"
	}
	if p.Cores == 0 {
		p.Cores = 2
	}
	if p.Txns == 0 {
		p.Txns = 4000
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Nodes == 0 {
		p.Nodes = 4
	}
	if p.Requests == 0 {
		p.Requests = 4000
	}
}

// WindowInfo is one crash window of a cluster run, phase-split.
type WindowInfo struct {
	Node          int   `json:"node"`
	WidthCycles   int64 `json:"width_cycles"`
	DetectCycles  int64 `json:"detect_cycles"`
	PromoteCycles int64 `json:"promote_cycles"`
	ResyncCycles  int64 `json:"resync_cycles"`
	Strikes       int   `json:"strikes"`
}

// ClusterSummary condenses a cluster.Result for the API.
type ClusterSummary struct {
	Generated   int64        `json:"generated"`
	Acked       int64        `json:"acked"`
	Failed      int64        `json:"failed"`
	Available   float64      `json:"available"`
	Crashes     int          `json:"crashes"`
	Promotions  int          `json:"promotions"`
	AckedLost   int64        `json:"acked_lost"`
	Windows     []WindowInfo `json:"windows,omitempty"`
	Divergences []string     `json:"divergences,omitempty"`
}

// RecoverySummary condenses a recovery.Report for the API.
type RecoverySummary struct {
	CommittedTx  int  `json:"committed_tx"`
	RedoApplied  int  `json:"redo_applied"`
	UndoApplied  int  `json:"undo_applied"`
	Discarded    int  `json:"discarded"`
	Quarantined  int  `json:"quarantined"`
	TotalRecords int  `json:"total_records"`
	Complete     bool `json:"complete"`
}

// Info is the JSON view of one run.
type Info struct {
	ID       int       `json:"id"`
	Kind     string    `json:"kind"`
	State    string    `json:"state"`
	Params   Params    `json:"params"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished,omitzero"`
	Error    string    `json:"error,omitempty"`

	Events  uint64 `json:"events"`  // telemetry events emitted so far
	Dropped uint64 `json:"dropped"` // events dropped across SSE subscribers

	Sim      *stats.Run       `json:"sim,omitempty"`
	Recovery *RecoverySummary `json:"recovery,omitempty"`
	Cluster  *ClusterSummary  `json:"cluster,omitempty"`
}

// Run is one hosted simulation.
type Run struct {
	id     int
	kind   string
	params Params
	sink   *telemetry.LiveSink

	mu       sync.Mutex
	state    string
	err      string
	started  time.Time
	finished time.Time
	metrics  []telemetry.MetricValue // final registry snapshot (terminal states)
	sim      *stats.Run
	recov    *RecoverySummary
	clust    *ClusterSummary

	crashFn func(node int) // non-nil while crash injection is possible
	stopFn  func()
}

// Sink exposes the run's live event ring for SSE subscribers.
func (r *Run) Sink() *telemetry.LiveSink { return r.sink }

// ID returns the run's id.
func (r *Run) ID() int { return r.id }

// State returns the current lifecycle state.
func (r *Run) State() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *Run) setState(s string) {
	r.mu.Lock()
	r.state = s
	r.mu.Unlock()
}

func (r *Run) finish(state, errMsg string, metrics []telemetry.MetricValue) {
	r.mu.Lock()
	r.state = state
	r.err = errMsg
	r.finished = time.Now()
	r.metrics = metrics
	r.crashFn = nil
	r.stopFn = nil
	r.mu.Unlock()
	r.sink.Close()
}

// Terminal reports whether the run reached a terminal state.
func (r *Run) Terminal() bool {
	switch r.State() {
	case StateDone, StateRecovered, StateStopped, StateFailed:
		return true
	}
	return false
}

// Crash requests an on-demand power failure: the whole machine for sim
// runs; for cluster runs node selects the victim (< 0 = lowest-numbered
// live node). It fails once the run is terminal.
func (r *Run) Crash(node int) error {
	r.mu.Lock()
	fn := r.crashFn
	r.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("run %d is %s; no crash target", r.id, r.State())
	}
	fn(node)
	return nil
}

// Stop requests a graceful unwind (sim runs only).
func (r *Run) Stop() error {
	r.mu.Lock()
	fn := r.stopFn
	r.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("run %d is %s; cannot stop", r.id, r.State())
	}
	fn()
	return nil
}

// Info snapshots the run for the API.
func (r *Run) Info() Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Info{
		ID: r.id, Kind: r.kind, State: r.state, Params: r.params,
		Started: r.started, Finished: r.finished, Error: r.err,
		Events: r.sink.Seq(), Dropped: r.sink.Drops(),
		Sim: r.sim, Recovery: r.recov, Cluster: r.clust,
	}
}

// MetricsSnapshot returns the run's final registry snapshot (nil until a
// terminal state).
func (r *Run) MetricsSnapshot() []telemetry.MetricValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// Manager owns the run table.
type Manager struct {
	mu      sync.Mutex
	runs    map[int]*Run
	nextID  int
	started int64
}

// NewManager returns an empty run table.
func NewManager() *Manager {
	return &Manager{runs: make(map[int]*Run), nextID: 1}
}

// Get returns a run by id.
func (m *Manager) Get(id int) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Runs returns every run sorted by id.
func (m *Manager) Runs() []*Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Run, 0, len(m.runs))
	for _, r := range m.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Started returns the number of runs ever started.
func (m *Manager) Started() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started
}

// pacer builds a Tick/pacer callback that sleeps the driving goroutine
// so simulated time advances at ~cyclesPerSec. Sleeps are capped so
// crash requests stay responsive.
func pacer(cyclesPerSec int64) func(now sim.Cycle) {
	start := time.Now()
	return func(now sim.Cycle) {
		target := time.Duration(float64(now) / float64(cyclesPerSec) * float64(time.Second))
		if d := target - time.Since(start); d > 0 {
			if d > 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			time.Sleep(d)
		}
	}
}

// Start resolves params (preset, defaults), builds the run, and launches
// it on its own goroutine.
func (m *Manager) Start(p Params) (*Run, error) {
	if p.Preset != "" {
		base, ok := Preset(p.Preset)
		if !ok {
			return nil, fmt.Errorf("unknown preset %q", p.Preset)
		}
		p = overlay(base.Params, p)
	}
	p.defaults()

	sink := telemetry.NewLiveSink(p.Buffer)
	rec := telemetry.NewRecorder(sink)
	run := &Run{kind: p.Kind, params: p, sink: sink, state: StateRunning, started: time.Now()}

	switch p.Kind {
	case "sim":
		spec := harness.Spec{
			Design:        p.Design,
			Workload:      p.Workload,
			Cores:         p.Cores,
			Txns:          p.Txns,
			Seed:          p.Seed,
			OpsPerTx:      p.OpsPerTx,
			LogBufEntries: p.LogBufEntries,
			LogBufLatency: sim.Cycle(p.LogBufLatency),
			Telemetry:     rec,
		}
		if p.FlushBudget > 0 {
			spec.Fault = &fault.Plan{Trigger: fault.TriggerNone, FlushBudget: int(p.FlushBudget)}
		}
		cr, err := harness.NewControlledRun(spec)
		if err != nil {
			return nil, err
		}
		if p.CyclesPerSec > 0 {
			cr.Tick = pacer(p.CyclesPerSec)
		}
		crashed := false
		run.crashFn = func(int) {
			run.mu.Lock()
			crashed = true
			run.mu.Unlock()
			cr.RequestCrash()
		}
		run.stopFn = cr.RequestStop
		m.add(run)
		go m.driveSim(run, cr, rec, &crashed)
	case "cluster":
		cfg := cluster.Config{
			Seed:     p.Seed,
			Design:   p.Design,
			Nodes:    p.Nodes,
			Requests: p.Requests,
			Replicas: p.Replicas,
		}
		if p.Replication != "" {
			mode, err := cluster.ParseReplicationMode(p.Replication)
			if err != nil {
				return nil, err
			}
			cfg.Replication = mode
		}
		cfg.Telemetry = rec
		cl, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		if p.CyclesPerSec > 0 {
			cl.SetPacer(pacer(p.CyclesPerSec))
		}
		crashed := false
		run.crashFn = func(node int) {
			run.mu.Lock()
			crashed = true
			run.mu.Unlock()
			cl.RequestCrash(node)
		}
		m.add(run)
		go m.driveCluster(run, cl, rec, &crashed)
	default:
		return nil, fmt.Errorf("unknown run kind %q (want sim or cluster)", p.Kind)
	}
	return run, nil
}

func (m *Manager) add(r *Run) {
	m.mu.Lock()
	r.id = m.nextID
	m.nextID++
	m.started++
	m.runs[r.id] = r
	m.mu.Unlock()
}

// driveSim executes a controlled single-machine run and, after an
// injected crash, replays recovery with telemetry attached so the scan
// and apply phases stream to subscribers.
func (m *Manager) driveSim(run *Run, cr *harness.ControlledRun, rec *telemetry.Recorder, crashed *bool) {
	res, err := cr.Execute()
	if err != nil {
		run.finish(StateFailed, err.Error(), rec.Metrics().Snapshot())
		return
	}
	run.mu.Lock()
	run.sim = &res
	wasCrashed := *crashed && cr.Machine().Crashed()
	wasStopped := !wasCrashed && cr.Machine().Crashed()
	run.mu.Unlock()

	if wasCrashed {
		run.setState(StateCrashed)
		mach := cr.Machine()
		rep := recovery.RecoverOpts(mach.Device(), mach.Region(), recovery.Options{
			Telemetry: rec,
			Now:       mach.Now(),
		})
		run.mu.Lock()
		run.recov = &RecoverySummary{
			CommittedTx: rep.CommittedTx, RedoApplied: rep.RedoApplied,
			UndoApplied: rep.UndoApplied, Discarded: rep.Discarded,
			Quarantined: rep.Quarantined, TotalRecords: rep.TotalRecords,
			Complete: rep.Complete,
		}
		run.mu.Unlock()
		run.finish(StateRecovered, "", rec.Metrics().Snapshot())
		return
	}
	if wasStopped {
		run.finish(StateStopped, "", rec.Metrics().Snapshot())
		return
	}
	run.finish(StateDone, "", rec.Metrics().Snapshot())
}

// driveCluster executes a cluster scenario; node crashes (scheduled or
// injected) stream their detect/promote/resync phases as node-state and
// recovery probe events.
func (m *Manager) driveCluster(run *Run, cl *cluster.Cluster, rec *telemetry.Recorder, crashed *bool) {
	res := cl.Drive()
	sum := &ClusterSummary{
		Generated: res.Generated, Acked: res.Acked, Failed: res.Failed,
		Available: res.Available(), Crashes: res.Crashes,
		Promotions: res.Promotions, AckedLost: res.AckedLost,
		Divergences: res.Divergences,
	}
	for _, w := range res.Windows {
		sum.Windows = append(sum.Windows, WindowInfo{
			Node:          w.Node,
			WidthCycles:   int64(w.Width()),
			DetectCycles:  int64(w.Detect()),
			PromoteCycles: int64(w.Promote()),
			ResyncCycles:  int64(w.Resync()),
			Strikes:       w.Strikes,
		})
	}
	run.mu.Lock()
	run.clust = sum
	wasCrashed := *crashed || res.Crashes > 0
	run.mu.Unlock()
	switch {
	case res.Err != nil:
		run.finish(StateFailed, res.Err.Error(), rec.Metrics().Snapshot())
	case len(res.Divergences) > 0:
		run.finish(StateFailed, fmt.Sprintf("%d divergence(s)", len(res.Divergences)), rec.Metrics().Snapshot())
	case wasCrashed:
		run.finish(StateRecovered, "", rec.Metrics().Snapshot())
	default:
		run.finish(StateDone, "", rec.Metrics().Snapshot())
	}
}

// overlay returns base with every non-zero field of over applied on top.
func overlay(base, over Params) Params {
	out := base
	out.Preset = over.Preset
	if over.Kind != "" {
		out.Kind = over.Kind
	}
	if over.Design != "" {
		out.Design = over.Design
	}
	if over.Workload != "" {
		out.Workload = over.Workload
	}
	if over.Cores != 0 {
		out.Cores = over.Cores
	}
	if over.Txns != 0 {
		out.Txns = over.Txns
	}
	if over.Seed != 0 {
		out.Seed = over.Seed
	}
	if over.OpsPerTx != 0 {
		out.OpsPerTx = over.OpsPerTx
	}
	if over.LogBufEntries != 0 {
		out.LogBufEntries = over.LogBufEntries
	}
	if over.LogBufLatency != 0 {
		out.LogBufLatency = over.LogBufLatency
	}
	if over.FlushBudget != 0 {
		out.FlushBudget = over.FlushBudget
	}
	if over.Nodes != 0 {
		out.Nodes = over.Nodes
	}
	if over.Requests != 0 {
		out.Requests = over.Requests
	}
	if over.Replicas != 0 {
		out.Replicas = over.Replicas
	}
	if over.Replication != "" {
		out.Replication = over.Replication
	}
	if over.CyclesPerSec != 0 {
		out.CyclesPerSec = over.CyclesPerSec
	}
	if over.Buffer != 0 {
		out.Buffer = over.Buffer
	}
	return out
}
