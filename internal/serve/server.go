package serve

import (
	"embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"silo/internal/telemetry"
)

//go:embed static
var staticFS embed.FS

// Server hosts the run manager behind an HTTP API plus the embedded
// dashboard.
//
//	GET  /                    dashboard
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition
//	GET  /api/presets         parameter presets
//	GET  /api/runs            all runs
//	POST /api/runs            start a run (Params JSON body)
//	GET  /api/runs/{id}       one run
//	GET  /api/runs/{id}/events  live telemetry over SSE
//	POST /api/runs/{id}/crash   pull the plug (body: {"node":n} for clusters)
//	POST /api/runs/{id}/stop    graceful stop (sim runs)
type Server struct {
	mgr        *Manager
	mux        *http.ServeMux
	sseClients atomic.Int64
}

// NewServer builds a server over a fresh run manager.
func NewServer() *Server {
	s := &Server{mgr: NewManager(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/presets", s.handlePresets)
	s.mux.HandleFunc("GET /api/runs", s.handleListRuns)
	s.mux.HandleFunc("POST /api/runs", s.handleStartRun)
	s.mux.HandleFunc("GET /api/runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("GET /api/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /api/runs/{id}/crash", s.handleCrash)
	s.mux.HandleFunc("POST /api/runs/{id}/stop", s.handleStop)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// Manager exposes the run table (tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	http.ServeFileFS(w, r, staticFS, "static/index.html")
}

func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Presets())
}

func (s *Server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.mgr.Runs()
	infos := make([]Info, 0, len(runs))
	for _, r := range runs {
		infos = append(infos, r.Info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleStartRun(w http.ResponseWriter, r *http.Request) {
	var p Params
	if r.Body != nil {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil && err.Error() != "EOF" {
			writeError(w, http.StatusBadRequest, "bad params: %v", err)
			return
		}
	}
	run, err := s.mgr.Start(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, run.Info())
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return nil, false
	}
	run, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return nil, false
	}
	return run, true
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	if run, ok := s.run(w, r); ok {
		writeJSON(w, http.StatusOK, run.Info())
	}
}

func (s *Server) handleCrash(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	var body struct {
		Node *int `json:"node"`
	}
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil && err.Error() != "EOF" {
			writeError(w, http.StatusBadRequest, "bad crash body: %v", err)
			return
		}
	}
	node := -1
	if body.Node != nil {
		node = *body.Node
	}
	if err := run.Crash(node); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Info())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	if err := run.Stop(); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Info())
}

// handleMetrics renders the Prometheus exposition: server-level series
// plus the final registry snapshot of every terminal run, labeled by
// run id, kind, design and workload. Output is byte-stable for a given
// set of finished runs (snapshots are name-sorted, runs id-sorted).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	runs := s.mgr.Runs()
	var active, dropped, events int64
	snaps := make([]telemetry.LabeledSnapshot, 0, len(runs)+1)
	server := []telemetry.MetricValue{
		{Name: "serve_runs_started", Kind: "counter", Value: s.mgr.Started()},
		{Name: "serve_sse_clients", Kind: "gauge", Value: s.sseClients.Load(), Max: s.sseClients.Load()},
	}
	for _, r := range runs {
		if !r.Terminal() {
			active++
		}
		dropped += int64(r.Sink().Drops())
		events += int64(r.Sink().Seq())
	}
	server = append(server,
		telemetry.MetricValue{Name: "serve_runs_active", Kind: "gauge", Value: active, Max: active},
		telemetry.MetricValue{Name: "serve_live_events", Kind: "counter", Value: events},
		telemetry.MetricValue{Name: "serve_live_dropped_events", Kind: "counter", Value: dropped},
	)
	snaps = append(snaps, telemetry.LabeledSnapshot{Metrics: server})
	for _, r := range runs {
		snap := r.MetricsSnapshot()
		if snap == nil {
			continue // still running; its registry is written by the engine
		}
		info := r.Info()
		labels := []telemetry.Label{
			{Name: "run", Value: strconv.Itoa(info.ID)},
			{Name: "kind", Value: info.Kind},
			{Name: "design", Value: info.Params.Design},
			{Name: "workload", Value: info.Params.Workload},
			{Name: "state", Value: info.State},
		}
		snaps = append(snaps, telemetry.LabeledSnapshot{Labels: labels, Metrics: snap})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WriteMetrics(w, "silo_", snaps)
}
