package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed frame off an SSE stream.
type sseEvent struct {
	name string
	data string
}

// readSSE parses frames from an event stream until the callback returns
// false or the stream ends.
func readSSE(r io.Reader, visit func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.name != "" || ev.data != "" {
				if !visit(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return sc.Err()
}

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// TestServeEndToEndSimCrashRecover is the PR's acceptance loop: start a
// run over HTTP, watch live telemetry arrive over SSE (transaction
// lifecycle, WPQ depth, log-buffer occupancy), pull the plug through the
// API, see the crash and the recovery phases stream back, and find the
// finished run reflected in /metrics.
func TestServeEndToEndSimCrashRecover(t *testing.T) {
	ts := startServer(t)

	// Paced slow enough that the crash lands mid-run (the full run is
	// ~280 k cycles, so 30 k cycles/s keeps it alive ~9 s; the crash
	// fires as soon as the first batches arrive, well before that).
	resp, created := postJSON(t, ts.URL+"/api/runs",
		`{"preset":"silo-queue-bounded-crash","cycles_per_sec":30000}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start: status %d: %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))

	sseResp, err := http.Get(fmt.Sprintf("%s/api/runs/%d/events", ts.URL, id))
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	kinds := map[string]int{}
	var finalState string
	crashSent := false
	deadline := time.AfterFunc(30*time.Second, func() { sseResp.Body.Close() })
	defer deadline.Stop()
	err = readSSE(sseResp.Body, func(ev sseEvent) bool {
		switch ev.name {
		case "batch":
			var events []wireEvent
			if err := json.Unmarshal([]byte(ev.data), &events); err != nil {
				t.Fatalf("batch decode: %v", err)
			}
			for _, e := range events {
				kinds[e.Kind]++
			}
			// Once live telemetry proves the run is underway, pull the plug.
			if !crashSent && kinds["tx-commit"] > 0 && kinds["wpq-write"] > 0 && kinds["logbuf-occ"] > 0 {
				crashSent = true
				r, body := postJSON(t, fmt.Sprintf("%s/api/runs/%d/crash", ts.URL, id), `{}`)
				if r.StatusCode != http.StatusAccepted {
					t.Fatalf("crash: status %d: %v", r.StatusCode, body)
				}
			}
		case "done":
			var info Info
			if err := json.Unmarshal([]byte(ev.data), &info); err != nil {
				t.Fatalf("done decode: %v", err)
			}
			finalState = info.State
			if info.Recovery == nil {
				t.Error("done Info lacks recovery summary")
			}
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	if !crashSent {
		t.Fatal("never saw enough live telemetry to send the crash")
	}
	for _, kind := range []string{"tx-begin", "tx-commit", "wpq-write", "logbuf-occ", "crash", "recovery-apply"} {
		if kinds[kind] == 0 {
			t.Errorf("SSE stream carried no %q events (saw %v)", kind, kinds)
		}
	}
	if finalState != StateRecovered {
		t.Fatalf("final state = %q, want %q", finalState, StateRecovered)
	}

	// The finished run shows up in the Prometheus exposition, labeled.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(mresp.Body)
	metrics := string(body)
	wantLabel := fmt.Sprintf(`run="%d"`, id)
	for _, want := range []string{
		"silo_serve_runs_started 1",
		"# TYPE silo_commits counter",
		wantLabel,
		`state="recovered"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServeClusterCrashFailover drives the cluster path: a replicated
// cluster run, a node crash through the API, failover, and a terminal
// recovered state with a measured outage window.
func TestServeClusterCrashFailover(t *testing.T) {
	ts := startServer(t)
	resp, created := postJSON(t, ts.URL+"/api/runs",
		`{"preset":"cluster-r3-sync","cycles_per_sec":400000}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start: status %d: %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))
	time.Sleep(300 * time.Millisecond) // let the cluster take some traffic
	if r, body := postJSON(t, fmt.Sprintf("%s/api/runs/%d/crash", ts.URL, id), `{"node":1}`); r.StatusCode != http.StatusAccepted {
		t.Fatalf("crash: status %d: %v", r.StatusCode, body)
	}

	var info Info
	for wait := 0; ; wait++ {
		getJSON(t, fmt.Sprintf("%s/api/runs/%d", ts.URL, id), &info)
		if info.State != StateRunning {
			break
		}
		if wait > 300 {
			t.Fatalf("cluster run never finished: %+v", info)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if info.State != StateRecovered {
		t.Fatalf("state = %q, want %q (%+v)", info.State, StateRecovered, info)
	}
	cl := info.Cluster
	if cl == nil {
		t.Fatal("no cluster summary")
	}
	if cl.Crashes != 1 || cl.Promotions < 1 {
		t.Errorf("crashes = %d, promotions = %d; want 1, ≥1", cl.Crashes, cl.Promotions)
	}
	if len(cl.Windows) == 0 || cl.Windows[0].WidthCycles <= 0 {
		t.Errorf("no outage window measured: %+v", cl.Windows)
	}
	if len(cl.Divergences) != 0 {
		t.Errorf("replica divergences: %v", cl.Divergences)
	}
}

// TestServeRunToCompletion: an unpaced run finishes on its own and the
// stream ends with a done state.
func TestServeRunToCompletion(t *testing.T) {
	ts := startServer(t)
	_, created := postJSON(t, ts.URL+"/api/runs", `{"preset":"silo-btree"}`)
	id := int(created["id"].(float64))
	var info Info
	for wait := 0; ; wait++ {
		getJSON(t, fmt.Sprintf("%s/api/runs/%d", ts.URL, id), &info)
		if info.State != StateRunning {
			break
		}
		if wait > 300 {
			t.Fatal("run never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if info.State != StateDone {
		t.Fatalf("state = %q, want %q", info.State, StateDone)
	}
	if info.Sim == nil || info.Sim.Transactions != 4000 {
		t.Fatalf("sim summary = %+v, want 4000 tx", info.Sim)
	}
	// Late subscriber still sees a done event immediately.
	sseResp, err := http.Get(fmt.Sprintf("%s/api/runs/%d/events", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sawDone := false
	_ = readSSE(sseResp.Body, func(ev sseEvent) bool {
		if ev.name == "done" {
			sawDone = true
			return false
		}
		return true
	})
	if !sawDone {
		t.Fatal("late subscriber never saw done")
	}
}

func TestServeAPIErrors(t *testing.T) {
	ts := startServer(t)

	if r, body := postJSON(t, ts.URL+"/api/runs", `{"preset":"no-such"}`); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown preset: status %d: %v", r.StatusCode, body)
	}
	if r, body := postJSON(t, ts.URL+"/api/runs", `{"bogus_field":1}`); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d: %v", r.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/api/runs/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: status %d", resp.StatusCode)
	}

	// Crashing an already-finished run conflicts.
	_, created := postJSON(t, ts.URL+"/api/runs", `{"preset":"silo-btree","txns":200}`)
	id := int(created["id"].(float64))
	var info Info
	for wait := 0; ; wait++ {
		getJSON(t, fmt.Sprintf("%s/api/runs/%d", ts.URL, id), &info)
		if info.State != StateRunning {
			break
		}
		if wait > 200 {
			t.Fatal("short run never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if r, body := postJSON(t, fmt.Sprintf("%s/api/runs/%d/crash", ts.URL, id), `{}`); r.StatusCode != http.StatusConflict {
		t.Errorf("crash after terminal: status %d: %v", r.StatusCode, body)
	}
}

func TestServeHealthzPresetsAndIndex(t *testing.T) {
	ts := startServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(b)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, b)
	}

	var presets []PresetInfo
	getJSON(t, ts.URL+"/api/presets", &presets)
	if len(presets) < 5 {
		t.Errorf("presets = %d, want several", len(presets))
	}
	seen := map[string]bool{}
	for _, p := range presets {
		seen[p.Params.Kind] = true
	}
	if !seen["sim"] || !seen["cluster"] {
		t.Errorf("presets missing a kind: %v", seen)
	}

	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "silo-serve") {
		t.Errorf("dashboard HTML lacks the title")
	}
	if !strings.Contains(string(b), "EventSource") {
		t.Errorf("dashboard lacks the SSE client")
	}
}
