package serve

// PresetInfo is one named parameter bundle the dashboard offers: a
// (design × workload × Table II knobs) point for sim runs, or a
// replicated-cluster scenario. Explicit request fields overlay the
// preset's values.
type PresetInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Params      Params `json:"params"`
}

// presets is ordered for the API and the dashboard dropdown.
var presets = []PresetInfo{
	{
		Name:        "silo-btree",
		Description: "Silo, B-tree inserts, 2 cores — the paper's headline design",
		Params:      Params{Kind: "sim", Design: "Silo", Workload: "Btree", Cores: 2, Txns: 4000},
	},
	{
		Name:        "base-btree",
		Description: "Base (no logging HW), B-tree inserts, 2 cores — A/B partner for silo-btree",
		Params:      Params{Kind: "sim", Design: "Base", Workload: "Btree", Cores: 2, Txns: 4000},
	},
	{
		Name:        "fwb-btree",
		Description: "FWB (flush-on-write-back), B-tree inserts, 2 cores",
		Params:      Params{Kind: "sim", Design: "FWB", Workload: "Btree", Cores: 2, Txns: 4000},
	},
	{
		Name:        "silo-tpcc-8c",
		Description: "Silo, TPC-C new-order, 8 cores — the Fig. 12 heavy point",
		Params:      Params{Kind: "sim", Design: "Silo", Workload: "TPCC", Cores: 8, Txns: 8000},
	},
	{
		Name:        "silo-hash-smallbuf",
		Description: "Silo with an 8-entry log buffer (Table II knob) — overflow pressure visible on the log-buffer chart",
		Params:      Params{Kind: "sim", Design: "Silo", Workload: "Hash", Cores: 4, Txns: 6000, LogBufEntries: 8},
	},
	{
		Name:        "silo-queue-bounded-crash",
		Description: "Silo, queue workload, 64-byte crash-flush energy budget — crash injection tears the in-flight tail",
		Params:      Params{Kind: "sim", Design: "Silo", Workload: "Queue", Cores: 2, Txns: 4000, FlushBudget: 64},
	},
	{
		Name:        "cluster-r1",
		Description: "4-node sharded cluster, no replication — a node crash is a visible outage window",
		Params:      Params{Kind: "cluster", Design: "Silo", Nodes: 4, Requests: 4000},
	},
	{
		Name:        "cluster-r3-sync",
		Description: "4-node cluster, R=3 synchronous replication — crashes fail over at detection+promotion",
		Params:      Params{Kind: "cluster", Design: "Silo", Nodes: 4, Requests: 4000, Replicas: 3, Replication: "sync"},
	},
	{
		Name:        "cluster-r3-async",
		Description: "R=3 bounded-async replication — acked-write losses are counted, never hidden",
		Params:      Params{Kind: "cluster", Design: "Silo", Nodes: 4, Requests: 4000, Replicas: 3, Replication: "async"},
	},
}

// Presets lists every preset in display order.
func Presets() []PresetInfo { return presets }

// Preset resolves a preset by name.
func Preset(name string) (PresetInfo, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return PresetInfo{}, false
}
