package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"silo/internal/telemetry"
)

// wireEvent is the JSON shape of one telemetry event on the SSE stream.
type wireEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Core  int    `json:"core"`
	Addr  uint64 `json:"addr,omitempty"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	C     int64  `json:"c"`
	Note  string `json:"note,omitempty"`
}

func toWire(e telemetry.Event) wireEvent {
	return wireEvent{
		Cycle: int64(e.Cycle), Kind: e.Kind.String(), Core: int(e.Core),
		Addr: uint64(e.Addr), A: e.A, B: e.B, C: e.C, Note: e.Note,
	}
}

// sseBatch is how many ring events one SSE frame carries at most.
const sseBatch = 512

// handleEvents streams a run's telemetry over Server-Sent Events:
//
//	event: run     — the run Info, sent first and on state changes
//	event: batch   — a JSON array of telemetry events
//	event: drops   — {"dropped":N} when this subscriber was lapped
//	event: done    — final Info; the stream then closes
//
// The subscriber reads from the run's LiveSink ring at its own pace;
// falling behind drops events (reported, never blocking the engine).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	s.sseClients.Add(1)
	defer s.sseClients.Add(-1)

	sub := run.Sink().Subscribe()
	defer sub.Cancel()

	send := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}

	lastState := run.State()
	send("run", run.Info())
	flusher.Flush()

	buf := make([]telemetry.Event, sseBatch)
	wire := make([]wireEvent, 0, sseBatch)
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()

	for {
		n, dropped, open := sub.Poll(buf)
		if dropped > 0 {
			send("drops", map[string]uint64{"dropped": dropped})
		}
		if n > 0 {
			wire = wire[:0]
			for _, e := range buf[:n] {
				wire = append(wire, toWire(e))
			}
			send("batch", wire)
		}
		if st := run.State(); st != lastState {
			lastState = st
			send("run", run.Info())
		}
		if n > 0 || dropped > 0 {
			flusher.Flush()
		}
		if !open {
			send("done", run.Info())
			flusher.Flush()
			return
		}
		if n == sseBatch {
			continue // ring still has a backlog; drain before waiting
		}
		select {
		case <-sub.Ready():
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
