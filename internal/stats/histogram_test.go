package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram not zero")
	}
	for _, v := range []int64{0, 1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("max = %d", h.Max())
	}
	want := float64(0+1+2+4+8+1000) / 6
	if h.Mean() != want {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Max() != 0 || h.Percentile(100) != 0 {
		t.Error("negative observation not clamped")
	}
}

func TestHistogramConstantSeries(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	if p := h.Percentile(50); p < 7 || p > 7 {
		t.Errorf("P50 of constant 7 = %d", p)
	}
	if p := h.Percentile(99); p != 7 {
		t.Errorf("P99 of constant 7 = %d (upper bound must clamp to max)", p)
	}
}

// TestHistogramPercentileBounds: the bucketed percentile is an upper bound
// within 2x of the exact percentile (power-of-two buckets).
func TestHistogramPercentileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var all []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 300)
		h.Observe(v)
		all = append(all, v)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := all[int(p/100*float64(len(all)))-1]
		got := h.Percentile(p)
		if got < exact {
			t.Errorf("P%.0f = %d below exact %d", p, got, exact)
		}
		if exact > 0 && got > 2*exact+1 {
			t.Errorf("P%.0f = %d more than 2x exact %d", p, got, exact)
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Int63n(1 << 20))
	}
	last := int64(-1)
	for p := 1.0; p <= 100; p++ {
		v := h.Percentile(p)
		if v < last {
			t.Fatalf("percentile not monotone at P%.0f: %d < %d", p, v, last)
		}
		last = v
	}
	if h.Percentile(200) != h.Percentile(100) {
		t.Error("out-of-range percentile not clamped")
	}
}
