package stats

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Sample", "Design", "A", "B")
	t.AddRow("Base", "1.000", "2.0")
	t.AddRow("Silo", "4.500", "0.5")
	return t
}

func TestBarChart(t *testing.T) {
	out := sampleTable().BarChart(40)
	if !strings.Contains(out, "Sample") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Silo") || !strings.Contains(out, "#") {
		t.Errorf("missing bars:\n%s", out)
	}
	// The largest value gets the longest bar.
	var maxLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.Count(l, "#") > strings.Count(maxLine, "#") {
			maxLine = l
		}
	}
	if !strings.Contains(maxLine, "4.5") {
		t.Errorf("longest bar is not the max value:\n%s", out)
	}
}

func TestBarChartNonNumeric(t *testing.T) {
	tb := NewTable("T", "K", "V")
	tb.AddRow("x", "not-a-number")
	if out := tb.BarChart(40); !strings.Contains(out, "no numeric data") {
		t.Errorf("non-numeric table rendered bars:\n%s", out)
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	tb := NewTable("T", "K", "V")
	tb.AddRow("big", "1000")
	tb.AddRow("small", "0.001")
	out := tb.BarChart(40)
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "small") && !strings.Contains(l, "#") {
			t.Error("nonzero value rendered with no bar")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "Design" || recs[2][1] != "4.500" {
		t.Errorf("csv = %v", recs)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Sample" || len(got.Rows) != 2 || got.Columns[2] != "B" {
		t.Errorf("json = %+v", got)
	}
}
