package stats

import "math/bits"

// Histogram is a power-of-two-bucketed latency histogram: bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). It is
// cheap enough to sit on the per-transaction commit path of a simulation.
// All methods tolerate a nil receiver (reads return zero, Observe drops
// the sample), so a disabled metrics registry can hand out nil histograms.
type Histogram struct {
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one value; negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func bucketOf(v int64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing it.
func (h *Histogram) Percentile(p float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	target := int64(p / 100 * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			hi := int64(1) << uint(i)
			if hi-1 > h.max {
				return h.max
			}
			return hi - 1
		}
	}
	return h.max
}
