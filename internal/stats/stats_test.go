package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{Cycles: 2_000_000, Transactions: 1000, Stores: 8000}
	if got := r.Throughput(); got != 500 {
		t.Errorf("throughput = %v, want 500", got)
	}
	if got := r.WriteBytesPerTx(); got != 64 {
		t.Errorf("bytes/tx = %v, want 64", got)
	}
	var zero Run
	if zero.Throughput() != 0 || zero.WriteBytesPerTx() != 0 {
		t.Error("zero run must not divide by zero")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 2)
	want := []float64{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("normalize[%d] = %v", i, got[i])
		}
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Error("zero base must yield zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("geomean(3,3,3) = %v", got)
	}
	// Non-positive entries are skipped; all-non-positive gives 0.
	if got := GeoMean([]float64{0, -1, 8, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean skipping nonpositive = %v, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Error("empty geomean")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "BB")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z", "dropped")
	tb.AddFloats("f", "%.1f", 1.25)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "1.2") {
		t.Errorf("missing cells:\n%s", out)
	}
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: every row has the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("row wider than header:\n%s", out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sorted keys = %v", got)
	}
}
