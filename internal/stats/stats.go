// Package stats provides the counters collected during a simulation run
// and small helpers for normalizing result series and rendering the
// fixed-width tables emitted by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Run aggregates everything a single simulation run produces. The harness
// combines Runs into the paper's figures.
type Run struct {
	Design   string
	Workload string
	Cores    int

	Cycles       int64 // simulated wall clock
	Transactions int64 // committed transactions
	Loads        int64
	Stores       int64

	// PM traffic.
	MediaWrites int64 // write requests reaching the PM physical media (post on-PM-buffer coalescing and DCW)
	MediaBytes  int64 // bytes actually programmed into the media
	WPQWrites   int64 // requests entering the memory controller WPQ
	WPQBytes    int64
	PMReads     int64

	// Logging behaviour.
	LogEntriesCreated int64 // entries the log generator produced
	LogEntriesIgnored int64 // suppressed by log ignorance (old == new)
	LogEntriesMerged  int64 // absorbed by on-chip merging
	LogEntriesFlushed int64 // written to the PM log region (overflow or crash)
	LogOverflows      int64 // overflow events
	FlushBitSets      int64 // logs whose new data was discarded due to cacheline eviction

	// Ordering-constraint breakdown (§II-D): cycles the cores spent
	// stalled in the design's hooks, beyond the plain cache accesses.
	StoreStallCycles  int64 // per-store persists (Base, FWB, SWLog)
	CommitStallCycles int64 // commit-time waits (all designs)

	// Cache behaviour.
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	L3Hits, L3Misses int64
	Writebacks       int64 // dirty lines evicted from the LLC to the MC
}

// Throughput returns committed transactions per million cycles.
func (r Run) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Transactions) / float64(r.Cycles) * 1e6
}

// WriteBytesPerTx returns average bytes written per transaction (workload
// write-set size, Fig. 4).
func (r Run) WriteBytesPerTx() float64 {
	if r.Transactions == 0 {
		return 0
	}
	return float64(r.Stores) * 8 / float64(r.Transactions)
}

// Normalize divides each value by base; base == 0 yields zeros.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// GeoMean returns the geometric mean of positive values (the paper's
// "Average" bars); non-positive entries are skipped.
func GeoMean(values []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table is a simple fixed-width text table, used by the harness to print
// each reproduced figure as rows/series.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond len(Columns) are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row with a string label followed by formatted floats.
func (t *Table) AddFloats(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map, for stable
// iteration in reports.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
