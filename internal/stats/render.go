package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file adds alternative renderings of Table: horizontal ASCII bar
// charts (the closest a terminal gets to the paper's figures), CSV and
// JSON — so silo-bench output can be eyeballed, spreadsheeted or plotted.

// BarChart renders the table's numeric cells as grouped horizontal bars,
// one group per row, one bar per numeric column, scaled to maxWidth
// characters against the table-wide maximum. Non-numeric cells are
// skipped. The first column is treated as the row label.
func (t *Table) BarChart(maxWidth int) string {
	if maxWidth < 8 {
		maxWidth = 8
	}
	max := 0.0
	type bar struct {
		label string
		col   string
		val   float64
	}
	var bars [][]bar
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		var group []bar
		for i := 1; i < len(row) && i < len(t.Columns); i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(row[i]), 64)
			if err != nil {
				continue
			}
			group = append(group, bar{label: row[0], col: t.Columns[i], val: v})
			if v > max {
				max = v
			}
		}
		if len(group) > 0 {
			bars = append(bars, group)
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	if max <= 0 || len(bars) == 0 {
		b.WriteString("(no numeric data)\n")
		return b.String()
	}
	labelW, colW := 0, 0
	for _, group := range bars {
		for _, bar := range group {
			if len(bar.label) > labelW {
				labelW = len(bar.label)
			}
			if len(bar.col) > colW {
				colW = len(bar.col)
			}
		}
	}
	for _, group := range bars {
		for i, bar := range group {
			label := bar.label
			if i > 0 {
				label = ""
			}
			n := int(bar.val / max * float64(maxWidth))
			if n < 1 && bar.val > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s %.3g\n",
				labelW, label, colW, bar.col, strings.Repeat("#", n), bar.val)
		}
	}
	return b.String()
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as a JSON object with title, columns and rows.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, t.Rows})
}
