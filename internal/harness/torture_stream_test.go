package harness

import (
	"bytes"
	"strings"
	"testing"
)

// A record must survive the JSONL roundtrip with enough fidelity that a
// resumed sweep aggregates it exactly as if the campaign had just run.
func TestRecordRoundtrip(t *testing.T) {
	cfg := TortureConfig{Seed: 11, Campaigns: 1, Txns: 8}
	out := RunCampaignContained(MakeCampaign(cfg, 0))
	if IsInfra(out.Err) {
		t.Fatalf("campaign infra-failed: %v", out.Err)
	}

	var buf bytes.Buffer
	if err := WriteRecord(&buf, OutcomeRecord(out)); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := recs[0]
	if !ok {
		t.Fatalf("record for index 0 missing: %v", recs)
	}
	back, err := rec.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if back.Campaign.Repro() != out.Campaign.Repro() {
		t.Errorf("repro changed:\n%s\n%s", back.Campaign.Repro(), out.Campaign.Repro())
	}
	if back.Commits != out.Commits || back.MidRun != out.MidRun ||
		back.Torn != out.Torn || back.Dropped != out.Dropped ||
		back.Report != out.Report {
		t.Errorf("counters changed:\n%+v\n%+v", back, out)
	}
	if len(back.Mismatches) != len(out.Mismatches) {
		t.Errorf("mismatches changed: %v vs %v", back.Mismatches, out.Mismatches)
	}
}

// The checkpoint reader must tolerate the torn tail of an interrupted
// stream, let later duplicates win (retried campaigns), and drop infra
// records so a resumed sweep re-executes them.
func TestReadRecordsSkipsTornTailAndInfra(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"index":0,"design":"Silo","workload":"Array","cores":1,"txns":4,"seed":1,"plan":"trigger=none","repro":"r0","report":{},"attempts":1,"commits":3}` + "\n")
	buf.WriteString(`{"index":0,"design":"Silo","workload":"Array","cores":1,"txns":4,"seed":1,"plan":"trigger=none","repro":"r0","report":{},"attempts":2,"commits":4}` + "\n")
	buf.WriteString(`{"index":5,"design":"Silo","workload":"Array","cores":1,"txns":4,"seed":1,"plan":"trigger=none","repro":"r5","report":{},"attempts":3,"err":"infra: watchdog","infra":true}` + "\n")
	buf.WriteString("\n")
	buf.WriteString(`{"index":7,"design":"Si`) // process died mid-write

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %v, want only index 0", recs)
	}
	if recs[0].Commits != 4 || recs[0].Attempts != 2 {
		t.Errorf("later duplicate did not win: %+v", recs[0])
	}
	if _, ok := recs[5]; ok {
		t.Error("infra record survived; resume would skip retrying it")
	}
}

// A sweep whose every campaign was resumed from records runs nothing and
// still renders a full summary.
func TestFleetFullyResumedSweep(t *testing.T) {
	base := TortureConfig{Seed: 9, Campaigns: 4, Txns: 8, Shrink: false}
	var buf bytes.Buffer
	cfg := base
	cfg.OnRecord = func(r Record) { // OnRecord calls are serialized
		if err := WriteRecord(&buf, r); err != nil {
			t.Error(err)
		}
	}
	full, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.Resume = recs
	cfg.Run = func(c Campaign) CampaignOutcome {
		t.Errorf("campaign %d re-executed despite full checkpoint", c.Index)
		return CampaignOutcome{Campaign: c}
	}
	resumed, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Summary() != resumed.Summary() {
		t.Errorf("fully-resumed summary differs:\n%s\nvs\n%s", full.Summary(), resumed.Summary())
	}
	if !strings.Contains(resumed.Summary(), "torture: 4 campaigns") {
		t.Errorf("summary malformed:\n%s", resumed.Summary())
	}
}
