// Package harness builds simulated systems, runs (design × workload ×
// cores) experiments, and regenerates every table and figure of the
// paper's evaluation section as text tables.
package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"silo/internal/baseline"
	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/fault"
	"silo/internal/logging"
	"silo/internal/machine"
	"silo/internal/pm"
	"silo/internal/pmheap"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
	"silo/internal/tpcc"
	"silo/internal/trace"
	"silo/internal/workload"
)

// DesignNames lists the evaluated designs in the paper's order (§VI-A).
func DesignNames() []string { return []string{"Base", "FWB", "MorLog", "LAD", "Silo"} }

// ExtendedDesignNames adds the motivational schemes of §II (software
// write-ahead logging and the pure undo/redo hardware disciplines of
// Fig. 3) to the evaluated set; they power the ordering-constraint
// experiment and widen the recovery test matrix.
func ExtendedDesignNames() []string {
	return []string{"SWLog", "eADR-SW", "UndoHW", "RedoHW", "Base", "FWB", "MorLog", "LAD", "Silo"}
}

// WorkloadNames lists the seven benchmarks of Figs. 11–13.
func WorkloadNames() []string {
	return []string{"Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"}
}

// Fig4Names lists the eleven write-size workloads of Fig. 4.
func Fig4Names() []string {
	return []string{"Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB",
		"Rtree", "Ctrie", "TATP", "Bank"}
}

// Spec describes one simulation run.
type Spec struct {
	Design   string
	Workload string
	Cores    int
	Txns     int // total transactions, split across cores
	Seed     int64

	OpsPerTx      int          // workload operations per transaction (0 → 1)
	LogBufEntries int          // Silo log buffer capacity (0 → 20)
	LogBufLatency sim.Cycle    // log buffer access latency (0 → 8)
	SiloOpts      core.Options // ablation switches for Silo
	PMMod         func(*pm.Config)
	CacheMod      func(*cache.HierarchyConfig) // cache-geometry knob (Table II explorer)
	CrashAtOp     int64

	// Recycle, when non-nil, sources the machine's heavy structures from
	// the pool and returns them on Release — the fleet's cross-campaign
	// reset-in-place reuse (see machine.Recycler).
	Recycle *machine.Recycler

	// Fault, when non-nil, is the full crash schedule (trigger, flush
	// energy budget, media faults); see internal/fault. Takes precedence
	// over CrashAtOp.
	Fault *fault.Plan

	// Trace, when non-nil, records every operation of the run.
	Trace *trace.Writer

	// MaxCycles arms the engine's sim-cycle watchdog (0 disables): a run
	// whose clock reaches the budget is crashed and unwound.
	MaxCycles sim.Cycle

	// DisableAudit turns off the runtime invariant layer (benchmarks).
	DisableAudit bool

	// AuditTrail overrides the auditor's event-ring capacity (0 keeps
	// the default).
	AuditTrail int

	// Telemetry, when non-nil, receives typed probe events from every
	// machine layer (see internal/telemetry): attach a ChromeTrace sink
	// for a Perfetto timeline or an IntervalSampler for windowed metrics.
	Telemetry *telemetry.Recorder

	// LegacyEngine drives the run through the goroutine-per-core channel
	// shim instead of native op streams. Both schedulers are op-for-op
	// equivalent (see TestSchedulerEquivalence); the flag exists for that
	// test and for measuring the old transport's overhead.
	LegacyEngine bool
}

// DesignFactory resolves a design name to its factory.
func DesignFactory(name string, opts core.Options) (logging.Factory, error) {
	switch name {
	case "Base":
		return baseline.NewBase, nil
	case "FWB":
		return baseline.NewFWB, nil
	case "MorLog":
		return baseline.NewMorLog, nil
	case "LAD":
		return baseline.NewLAD, nil
	case "SWLog":
		return baseline.NewSWLog, nil
	case "eADR-SW":
		return baseline.NewEADRSW, nil
	case "UndoHW":
		return baseline.NewUndoHW, nil
	case "RedoHW":
		return baseline.NewRedoHW, nil
	case "Silo":
		return core.Factory(opts), nil
	}
	return nil, fmt.Errorf("harness: unknown design %q (have %s)", name, strings.Join(DesignNames(), ", "))
}

// GetWorkload resolves a workload name, including the TPCC variants and
// SweepN write-set workloads.
func GetWorkload(name string) (workload.Workload, error) {
	switch {
	case name == "TPCC":
		return tpcc.New(false), nil
	case name == "TPCC-Mix":
		return tpcc.New(true), nil
	case strings.HasPrefix(name, "Sweep"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "Sweep"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("harness: bad sweep workload %q", name)
		}
		return workload.NewSweep(n, 4*n), nil
	}
	if w := workload.Registry(name); w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("harness: unknown workload %q", name)
}

// Build constructs the machine and workload for a spec and runs Setup.
// The engine is created but not started.
func Build(spec Spec) (*machine.Machine, workload.Workload, error) {
	factory, err := DesignFactory(spec.Design, spec.SiloOpts)
	if err != nil {
		return nil, nil, err
	}
	wl, err := GetWorkload(spec.Workload)
	if err != nil {
		return nil, nil, err
	}
	if spec.Cores < 1 {
		spec.Cores = 1
	}
	pmCfg := pm.DefaultConfig()
	if spec.PMMod != nil {
		spec.PMMod(&pmCfg)
	}
	cacheCfg := cache.DefaultHierarchyConfig()
	if spec.CacheMod != nil {
		spec.CacheMod(&cacheCfg)
	}
	m := machine.New(machine.Config{
		Cores:     spec.Cores,
		PM:        pmCfg,
		Cache:     cacheCfg,
		Design:    factory,
		LogBuf:    spec.LogBufEntries,
		LogLat:    spec.LogBufLatency,
		CrashAtOp: spec.CrashAtOp,
		Fault:     spec.Fault,
		Trace:     spec.Trace,

		MaxCycles:    spec.MaxCycles,
		DisableAudit: spec.DisableAudit,
		AuditTrail:   spec.AuditTrail,
		Telemetry:    spec.Telemetry,
		Recycle:      spec.Recycle,
	})
	if spec.OpsPerTx > 1 {
		wl.SetOpsPerTx(spec.OpsPerTx)
	}
	heap := pmheap.New(pmCfg.Layout, spec.Cores)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5170))
	wl.Setup(workload.Direct(m.Device()), heap, spec.Cores, rng)
	return m, wl, nil
}

// Run executes the spec to completion and returns the run record.
func Run(spec Spec) (stats.Run, error) {
	m, r, err := RunMachine(spec)
	if m != nil {
		m.Release() // the machine is private to this call; recycle its pools
	}
	return r, err
}

// RunMachine executes the spec and also returns the machine, for callers
// that inspect design internals (Fig. 13) or verify crash recovery.
func RunMachine(spec Spec) (*machine.Machine, stats.Run, error) {
	m, wl, err := Build(spec)
	if err != nil {
		return nil, stats.Run{}, err
	}
	if spec.Txns <= 0 {
		spec.Txns = 1000
	}
	cores := spec.Cores
	if cores < 1 {
		cores = 1
	}
	eng := m.Engine(spec.Seed)
	per := spec.Txns / cores
	if per < 1 {
		per = 1
	}
	if spec.LegacyEngine {
		programs := make([]sim.Program, cores)
		for c := 0; c < cores; c++ {
			programs[c] = wl.Program(c, per)
		}
		eng.Run(programs)
	} else {
		streams := make([]sim.OpStream, cores)
		for c := 0; c < cores; c++ {
			streams[c] = wl.Stream(c, per, sim.CoreRand(spec.Seed, c))
		}
		eng.RunStreams(streams)
	}
	return m, m.CollectStats(spec.Design, spec.Workload), nil
}

// ReplayRun re-executes a recorded trace under spec's design. The spec's
// workload and seed are used only for Setup, rebuilding the initial PM
// state the trace was recorded against; the operation streams come from
// the trace, pinning the instruction sequences across designs.
func ReplayRun(spec Spec, tr *trace.Trace) (stats.Run, error) {
	if spec.Cores < tr.Cores() {
		spec.Cores = tr.Cores()
	}
	m, _, err := Build(spec)
	if err != nil {
		return stats.Run{}, err
	}
	eng := m.Engine(spec.Seed)
	streams := make([]sim.OpStream, spec.Cores)
	for c := 0; c < spec.Cores; c++ {
		streams[c] = tr.Stream(c)
	}
	eng.RunStreams(streams)
	return m.CollectStats(spec.Design, spec.Workload+"(replay)"), nil
}
