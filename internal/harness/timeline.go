package harness

import (
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
)

// Timeline runs one spec with an interval sampler attached and returns
// the windowed time series alongside the run record — silo-report's
// per-window view of where commits, evictions, overflows and WPQ stalls
// landed inside the run.
func Timeline(spec Spec, window sim.Cycle) (*telemetry.IntervalSampler, stats.Run, error) {
	sampler := telemetry.NewIntervalSampler(window)
	spec.Telemetry = spec.Telemetry.With(sampler)
	r, err := Run(spec)
	if err != nil {
		return nil, stats.Run{}, err
	}
	return sampler, r, nil
}
