package harness

import (
	"bytes"
	"testing"
	"time"
)

// The infra-retry backoff must be a pure function of (seed, campaign,
// attempt): no wall clock, no shared RNG, so a resumed sweep retries on
// the identical schedule.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 50 * time.Millisecond
	for campaign := 0; campaign < 20; campaign++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := RetryDelay(99, campaign, attempt, base)
			b := RetryDelay(99, campaign, attempt, base)
			if a != b {
				t.Fatalf("RetryDelay(99,%d,%d) unstable: %v vs %v", campaign, attempt, a, b)
			}
			lo := base << attempt
			if a < lo || a > lo+base/2 {
				t.Fatalf("RetryDelay(99,%d,%d) = %v outside [%v, %v]", campaign, attempt, a, lo, lo+base/2)
			}
		}
	}
	if RetryDelay(99, 0, 3, 0) != 0 {
		t.Error("zero base must disable backoff entirely")
	}
	// Distinct campaigns must decorrelate (not retry in lockstep).
	same := 0
	for c := 0; c < 16; c++ {
		if RetryDelay(99, c, 1, base) == RetryDelay(99, c+1, 1, base) {
			same++
		}
	}
	if same == 16 {
		t.Error("jitter identical across all campaigns; burst retries would stampede")
	}
}

// interruptedSweep runs the sweep at Parallel=1 writing JSONL to buf,
// stopping after `after` records, then resumes from the partial stream
// and appends the rest to the same buffer.
func interruptedSweep(t *testing.T, base TortureConfig, after int) []byte {
	t.Helper()
	var buf bytes.Buffer
	stop := make(chan struct{})
	n := 0
	cfg := base
	cfg.Parallel = 1
	cfg.Stop = stop
	cfg.OnRecord = func(r Record) {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
		if n++; n == after {
			close(stop)
		}
	}
	first, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted || first.Skipped == 0 {
		t.Fatalf("sweep was not interrupted: skipped=%d", first.Skipped)
	}

	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != after {
		t.Fatalf("partial stream has %d records, want %d", len(recs), after)
	}
	cfg = base
	cfg.Parallel = 1
	cfg.Resume = recs
	cfg.OnRecord = func(r Record) {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted || resumed.Skipped != 0 {
		t.Fatalf("resumed sweep still interrupted: skipped=%d", resumed.Skipped)
	}
	return buf.Bytes()
}

// Two interrupted-and-resumed sweeps — and an uninterrupted baseline —
// must produce byte-identical JSONL checkpoint streams: sequential
// emission order, pure-function retry backoff, and no wall-clock state
// in any record.
func TestFleetInterruptedResumeByteIdenticalJSONL(t *testing.T) {
	base := TortureConfig{Seed: 21, Campaigns: 6, Txns: 8}

	var baseline bytes.Buffer
	cfg := base
	cfg.Parallel = 1
	cfg.OnRecord = func(r Record) {
		if err := WriteRecord(&baseline, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Torture(cfg); err != nil {
		t.Fatal(err)
	}

	a := interruptedSweep(t, base, 3)
	b := interruptedSweep(t, base, 3)
	if !bytes.Equal(a, b) {
		t.Errorf("two interrupted+resumed runs differ:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Equal(a, baseline.Bytes()) {
		t.Errorf("interrupted+resumed stream differs from uninterrupted baseline:\n%s\nvs\n%s",
			a, baseline.Bytes())
	}
	// Interrupting at a different point must still converge to the same
	// final stream.
	c := interruptedSweep(t, base, 5)
	if !bytes.Equal(c, baseline.Bytes()) {
		t.Errorf("different interruption point changed the final stream:\n%s\nvs\n%s",
			c, baseline.Bytes())
	}
}
