package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"silo/internal/recovery"
)

// storeSweepRun is a synthetic executor producing every record shape
// the store must carry: clean campaigns with aggregates, mid-run
// crashes, golden-shadow mismatches, run errors, exhausted infra, and
// cluster-style availability summaries.
func storeSweepRun(c Campaign) CampaignOutcome {
	out := CampaignOutcome{Campaign: c}
	switch c.Index % 8 {
	case 3:
		out.Mismatches = []string{fmt.Sprintf("addr %d want 1 got 2", c.Index)}
		out.Invariant = "golden-shadow"
	case 5:
		out.Err = fmt.Errorf("synthetic run error %d", c.Index)
	case 6:
		out.Err = InfraError{Err: errors.New("synthetic host wobble")}
		out.Infra = true
	default:
		out.MidRun = c.Index%2 == 0
		out.Commits = int64(100 + c.Index)
		out.Torn = int64(c.Index % 3)
		out.Dropped = int64(c.Index % 2)
		out.Restarts = c.Index % 2
		out.Report = recovery.Report{CommittedTx: 100 + c.Index, RedoApplied: c.Index, Complete: true}
		if c.Index%4 == 0 {
			out.Avail = &AvailSummary{
				Replicas: 3, Mode: "sync", Windows: 2, Strikes: 1,
				DetectSum: int64(c.Index) * 11, PromoteSum: 7, WidthSum: 31,
				WidthMax: 19, OwnerSum: 13, OwnerMax: 13,
			}
		}
	}
	return out
}

// sweepToPath runs the synthetic sweep with a CheckpointSink at path
// (format by extension) and returns the fleet's emitted records in
// completion order.
func sweepToPath(t *testing.T, path string, campaigns int) []Record {
	t.Helper()
	sink, err := OpenCheckpointSink(path)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var recs []Record
	cfg := fleetConfig(campaigns, storeSweepRun)
	cfg.Retries = -1 // synthetic infra failures are deterministic; don't retry
	cfg.Sink = sink
	cfg.OnSinkError = func(err error) { t.Error("sink error:", err) }
	cfg.OnRecord = func(r Record) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	}
	if _, err := Torture(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestStoreSweepSummaryByteIdentical runs the same synthetic sweep
// into a JSONL stream and a binary store and demands the rendered
// summaries agree byte for byte.
func TestStoreSweepSummaryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "sweep.jsonl")
	storePath := filepath.Join(dir, "sweep.srs")
	sweepToPath(t, jsonlPath, 24)
	sweepToPath(t, storePath, 24)

	js, err := SummarizeCheckpoint(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SummarizeCheckpoint(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if js.String() != ss.String() {
		t.Errorf("summaries differ:\n--- jsonl ---\n%s--- store ---\n%s", js.String(), ss.String())
	}
	if js.Table().String() != ss.Table().String() {
		t.Errorf("tables differ:\n--- jsonl ---\n%s--- store ---\n%s", js.Table().String(), ss.Table().String())
	}
}

// TestLoadRecordsStoreMatchesJSONL demands resume state is identical
// whichever format the checkpoint was written in.
func TestLoadRecordsStoreMatchesJSONL(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "sweep.jsonl")
	storePath := filepath.Join(dir, "sweep.srs")
	sweepToPath(t, jsonlPath, 20)
	sweepToPath(t, storePath, 20)

	fromJSONL, err := LoadRecords(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := LoadRecords(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSONL, fromStore) {
		t.Errorf("resume maps differ: jsonl %d records, store %d records", len(fromJSONL), len(fromStore))
	}
	// Infra campaigns (index%8 == 6) must be absent so the fleet
	// retries them.
	for idx := range fromStore {
		if idx%8 == 6 {
			t.Errorf("infra campaign %d survived into the resume map", idx)
		}
	}
}

// TestConvertJSONLByteIdenticalSummaries is the migration guarantee:
// converting a JSONL checkpoint to a store preserves the summary
// byte-exactly — records, duplicates, infra and order included.
func TestConvertJSONLByteIdenticalSummaries(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "sweep.jsonl")
	storePath := filepath.Join(dir, "converted.srs")
	sweepToPath(t, jsonlPath, 32)

	raw, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	n, tornTail, err := ConvertJSONL(bytes.NewReader(raw), storePath)
	if err != nil {
		t.Fatal(err)
	}
	if tornTail {
		t.Error("clean stream reported a torn tail")
	}
	if n != 32 {
		t.Errorf("converted %d records, want 32", n)
	}

	js, err := SummarizeCheckpoint(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SummarizeCheckpoint(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if js.String() != ss.String() {
		t.Errorf("converted summary differs:\n--- jsonl ---\n%s--- store ---\n%s", js.String(), ss.String())
	}
	if js.Table().String() != ss.Table().String() {
		t.Errorf("converted table differs")
	}
	// And the resume view agrees too.
	fromJSONL, err := LoadRecords(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := LoadRecords(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSONL, fromStore) {
		t.Error("converted resume map differs from the JSONL original")
	}
}

func TestConvertJSONLTornTailTolerated(t *testing.T) {
	body := validLine(0, "") + validLine(1, "") + `{"index":2,"design":"Si`
	out := filepath.Join(t.TempDir(), "out.srs")
	n, tornTail, err := ConvertJSONL(strings.NewReader(body), out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || !tornTail {
		t.Fatalf("n=%d tornTail=%v, want 2/true", n, tornTail)
	}
	s, err := SummarizeCheckpoint(out)
	if err != nil {
		t.Fatal(err)
	}
	if s.Campaigns != 2 || s.TornTail {
		t.Errorf("campaigns=%d torntail=%v, want 2/false (the store sealed complete)", s.Campaigns, s.TornTail)
	}
}

func TestConvertJSONLRejectsMidStreamCorruption(t *testing.T) {
	body := validLine(0, "") + "GARBAGE NOT JSON\n" + validLine(1, "")
	out := filepath.Join(t.TempDir(), "out.srs")
	if _, _, err := ConvertJSONL(strings.NewReader(body), out); err == nil {
		t.Fatal("mid-stream corruption must fail the conversion")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("failed conversion left a store behind")
	}
	if _, err := os.Stat(out + ".tmp"); !os.IsNotExist(err) {
		t.Error("failed conversion left a temp segment behind")
	}
}

func TestConvertJSONLRejectsEmptyStream(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.srs")
	if _, _, err := ConvertJSONL(strings.NewReader(""), out); err == nil {
		t.Fatal("empty stream must fail the conversion")
	}
}

// TestStoreInterruptedWriterResume is the crash-recovery round trip:
// a fleet killed mid-sweep leaves an unsealed temp segment; resume
// recovers its sealed prefix byte-exactly, re-runs the rest, and the
// final summary is byte-identical to an uninterrupted sweep's.
func TestStoreInterruptedWriterResume(t *testing.T) {
	dir := t.TempDir()
	const campaigns = 24

	// Uninterrupted reference.
	fullPath := filepath.Join(dir, "full.srs")
	sweepToPath(t, fullPath, campaigns)
	want, err := SummarizeCheckpoint(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: flush every 4 records, "kill" the fleet by
	// abandoning the sink after 10 records (never Close/Seal).
	intPath := filepath.Join(dir, "interrupted.srs")
	sink, err := OpenCheckpointSink(intPath)
	if err != nil {
		t.Fatal(err)
	}
	sink.flushEvery = 4
	var mu sync.Mutex
	written, killed := 0, false
	cfg := fleetConfig(campaigns, storeSweepRun)
	cfg.Retries = -1
	cfg.Parallel = 1 // deterministic completion order: indices 0,1,2,...
	cfg.Sink = sinkFunc{
		encode: sink.Encode,
		write: func(r Record, enc []byte) error {
			mu.Lock()
			defer mu.Unlock()
			if killed {
				return nil // the dead writer drops everything
			}
			if err := sink.Write(r, enc); err != nil {
				return err
			}
			if written++; written == 10 {
				killed = true
			}
			return nil
		},
	}
	if _, err := Torture(cfg); err != nil {
		t.Fatal(err)
	}
	// No Close: the run "died". Only the unsealed temp segment exists.
	if _, err := os.Stat(intPath); !os.IsNotExist(err) {
		t.Fatal("interrupted run published a sealed store")
	}

	recovered, err := LoadRecords(intPath)
	if err != nil {
		t.Fatal(err)
	}
	// 10 records written, flushed after 4 and 8: the sealed prefix holds
	// indices 0..7 (the open chunk with 8,9 died with the writer), and
	// resume drops the infra record (index 6) for retry → 7 recovered.
	if len(recovered) != 7 {
		t.Fatalf("recovered %d records, want 7: %v", len(recovered), recovered)
	}

	// Resume: seed the recovered records, run the remaining campaigns.
	sink2, err := OpenCheckpointSink(intPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Seed(recovered); err != nil {
		t.Fatal(err)
	}
	reran := 0
	cfg2 := fleetConfig(campaigns, func(c Campaign) CampaignOutcome {
		mu.Lock()
		reran++
		mu.Unlock()
		return storeSweepRun(c)
	})
	cfg2.Retries = -1
	cfg2.Resume = recovered
	cfg2.Sink = sink2
	cfg2.OnSinkError = func(err error) { t.Error("sink error:", err) }
	if _, err := Torture(cfg2); err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if reran != campaigns-len(recovered) {
		t.Errorf("resume re-ran %d campaigns, want %d", reran, campaigns-len(recovered))
	}

	got, err := SummarizeCheckpoint(intPath)
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("summaries differ after kill+resume:\n--- full ---\n%s--- resumed ---\n%s", want.String(), got.String())
	}
	if want.Table().String() != got.Table().String() {
		t.Error("design tables differ after kill+resume")
	}
}

// sinkFunc adapts closures to RecordSink for tests.
type sinkFunc struct {
	encode func(Record) ([]byte, error)
	write  func(Record, []byte) error
}

func (s sinkFunc) Encode(r Record) ([]byte, error)  { return s.encode(r) }
func (s sinkFunc) Write(r Record, enc []byte) error { return s.write(r, enc) }

// TestSummarizeUnsealedStoreTornTail points the summarizer at a store
// whose writer died before sealing: only the temp segment exists. The
// summary must come from the sealed prefix and flag the interruption,
// mirroring the JSONL torn-tail semantics.
func TestSummarizeUnsealedStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.srs")
	sink, err := OpenCheckpointSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.flushEvery = 1
	for i := 0; i < 6; i++ {
		r := Record{Index: i, Design: "Silo", Workload: "Array", Commits: 10, Attempts: 1}
		enc, err := sink.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Write(r, enc); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close: only sweep.srs.tmp exists.
	s, err := SummarizeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Campaigns != 6 || s.Commits != 60 {
		t.Errorf("campaigns=%d commits=%d, want 6/60", s.Campaigns, s.Commits)
	}
	if !s.TornTail {
		t.Error("interrupted writer not flagged as a torn tail")
	}
	if !strings.Contains(s.String(), "interrupted mid-write") {
		t.Errorf("summary hides the interruption:\n%s", s.String())
	}
}

// TestJSONLSinkMatchesWriteRecord pins the sink refactor: the
// two-phase sink writes byte-identical output to the old WriteRecord
// path.
func TestJSONLSinkMatchesWriteRecord(t *testing.T) {
	recs := sweepToPath(t, filepath.Join(t.TempDir(), "x.jsonl"), 8)
	var viaSink, viaWriteRecord bytes.Buffer
	sink := NewJSONLSink(&viaSink)
	for _, r := range recs {
		enc, err := sink.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Write(r, enc); err != nil {
			t.Fatal(err)
		}
		if err := WriteRecord(&viaWriteRecord, r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(viaSink.Bytes(), viaWriteRecord.Bytes()) {
		t.Error("sink output differs from WriteRecord")
	}
}

// TestIsStorePath pins extension dispatch.
func TestIsStorePath(t *testing.T) {
	for path, want := range map[string]bool{
		"sweep.srs":     true,
		"SWEEP.SRS":     true,
		"a/b/c.srs":     true,
		"sweep.jsonl":   false,
		"sweep.srs.tmp": false,
		"sweep":         false,
		"srs":           false,
	} {
		if got := IsStorePath(path); got != want {
			t.Errorf("IsStorePath(%q) = %v, want %v", path, got, want)
		}
	}
}
