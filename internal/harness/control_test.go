package harness

import (
	"testing"

	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// TestControlledRunMatchesRunMachine: with no crash or stop request,
// Execute walks the exact scheduling sequence of RunMachine — every run
// record field identical.
func TestControlledRunMatchesRunMachine(t *testing.T) {
	for _, design := range []string{"Silo", "Base", "FWB"} {
		spec := Spec{Design: design, Workload: "Btree", Cores: 2, Txns: 400, Seed: 7}
		_, want, err := RunMachine(spec)
		if err != nil {
			t.Fatalf("%s RunMachine: %v", design, err)
		}
		cr, err := NewControlledRun(spec)
		if err != nil {
			t.Fatalf("%s NewControlledRun: %v", design, err)
		}
		got, err := cr.Execute()
		if err != nil {
			t.Fatalf("%s Execute: %v", design, err)
		}
		if got != want {
			t.Errorf("%s: controlled run diverged:\n got %+v\nwant %+v", design, got, want)
		}
	}
}

// TestLiveSinkDoesNotPerturbRun is the acceptance gate: a run with a
// LiveSink-backed recorder attached (subscriber lagging, ring lapping)
// must produce a byte-identical run record to a fully detached run.
func TestLiveSinkDoesNotPerturbRun(t *testing.T) {
	spec := Spec{Design: "Silo", Workload: "Hash", Cores: 2, Txns: 500, Seed: 11}
	want, err := Run(spec)
	if err != nil {
		t.Fatalf("detached run: %v", err)
	}

	sink := telemetry.NewLiveSink(64) // tiny ring: guaranteed to lap
	spec.Telemetry = telemetry.NewRecorder(sink)
	sub := sink.Subscribe() // never polled until the end: maximally lagged
	defer sub.Cancel()
	got, err := Run(spec)
	sink.Close()
	if err != nil {
		t.Fatalf("attached run: %v", err)
	}
	if got != want {
		t.Errorf("LiveSink perturbed the run:\n got %+v\nwant %+v", got, want)
	}
	if sink.Seq() == 0 {
		t.Fatal("LiveSink saw no events")
	}
	buf := make([]telemetry.Event, 64)
	n, dropped, _ := sub.Poll(buf)
	if n == 0 || dropped == 0 {
		t.Fatalf("expected a lagged subscriber to recover a full ring with drops, got n=%d dropped=%d", n, dropped)
	}
}

// BenchmarkRunTelemetry quantifies the serve overhead quoted in
// EXPERIMENTS.md: a full run with telemetry detached, with a
// LiveSink-backed recorder attached, and attached with a subscriber
// that never drains (the worst case — every ring lap drops events, and
// the engine must still not block).
func BenchmarkRunTelemetry(b *testing.B) {
	spec := Spec{Design: "Silo", Workload: "Btree", Cores: 2, Txns: 1000, Seed: 42, DisableAudit: true}
	b.Run("detached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("livesink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := spec
			s.Telemetry = telemetry.NewRecorder(telemetry.NewLiveSink(0))
			if _, err := Run(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("livesink-slow-consumer", func(b *testing.B) {
		b.ReportAllocs()
		var drops, events uint64
		for i := 0; i < b.N; i++ {
			sink := telemetry.NewLiveSink(1024)
			sub := sink.Subscribe() // subscribed, never polled until the end
			s := spec
			s.Telemetry = telemetry.NewRecorder(sink)
			if _, err := Run(s); err != nil {
				b.Fatal(err)
			}
			buf := make([]telemetry.Event, 1024)
			_, d, _ := sub.Poll(buf)
			drops += d
			events += sink.Seq()
			sub.Cancel()
		}
		if b.N > 0 {
			b.ReportMetric(float64(drops)/float64(b.N), "dropped/run")
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
		}
	})
}

// TestControlledRunCrashAndRecover drives the serve crash path at the
// harness level: request a crash mid-run, then replay the log region and
// check recovery completes.
func TestControlledRunCrashAndRecover(t *testing.T) {
	spec := Spec{Design: "Silo", Workload: "Queue", Cores: 2, Txns: 2000, Seed: 3}
	cr, err := NewControlledRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Request the crash from the tick hook a little way in, standing in
	// for the serve manager's cross-goroutine RequestCrash.
	ticks := 0
	cr.TickOps = 16
	cr.Tick = func(_ sim.Cycle) {
		ticks++
		if ticks == 20 {
			cr.RequestCrash()
		}
	}
	res, err := cr.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	mach := cr.Machine()
	if !mach.Crashed() {
		t.Fatal("machine did not crash")
	}
	if res.Transactions >= int64(spec.Txns) {
		t.Fatalf("crash landed after completion: %d tx", res.Transactions)
	}
	rep := recovery.Recover(mach.Device(), mach.Region())
	if rep.RedoApplied+rep.UndoApplied+rep.CommittedTx == 0 && res.Transactions > 0 {
		t.Errorf("recovery saw nothing: %+v (run %+v)", rep, res)
	}
}

// TestControlledRunStopUnwinds: RequestStop ends the run early without
// crash-recovery semantics, like the sim-cycle watchdog.
func TestControlledRunStopUnwinds(t *testing.T) {
	spec := Spec{Design: "Silo", Workload: "Btree", Cores: 2, Txns: 5000, Seed: 5}
	cr, err := NewControlledRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	cr.RequestStop() // before the first step: unwinds almost immediately
	res, err := cr.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Transactions >= int64(spec.Txns) {
		t.Fatalf("stop did not shorten the run: %d tx", res.Transactions)
	}
}
