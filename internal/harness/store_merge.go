package harness

import (
	"fmt"
	"sort"

	"silo/internal/resultstore"
)

// MergeStores folds sealed result stores into one compacted store at
// dst: the latest record per campaign index wins (inputs in argument
// order, append order within each), rows and payloads are copied
// verbatim, embedded traces follow their records, and the output is
// written in ascending index order. The merge is a pure function of the
// inputs, so merging a sweep's shards yields a store whose summary is
// byte-identical to a straight-through single-store run of the same
// sweep. Returns the number of records written.
func MergeStores(dst string, srcs []string) (int, error) {
	type entry struct {
		row     resultstore.Row
		payload []byte
		trace   []byte
	}
	latest := make(map[int64]entry)
	for _, src := range srcs {
		st, err := resultstore.Open(src)
		if err != nil {
			return 0, fmt.Errorf("merge %s: %w", src, err)
		}
		for i := 0; i < st.Count(); i++ {
			row := st.Row(i)
			payload, err := st.Payload(i)
			if err != nil {
				st.Close()
				return 0, fmt.Errorf("merge %s record %d: %w", src, i, err)
			}
			e := entry{row: row, payload: append([]byte(nil), payload...)}
			if row.HasTrace() {
				if e.trace, err = st.Trace(i); err != nil {
					st.Close()
					return 0, fmt.Errorf("merge %s trace %d: %w", src, i, err)
				}
			}
			latest[row.Index] = e
		}
		st.Close()
	}
	idxs := make([]int64, 0, len(latest))
	for i := range latest {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })

	w, err := resultstore.NewWriter(dst)
	if err != nil {
		return 0, err
	}
	for _, i := range idxs {
		e := latest[i]
		if err := w.Append(e.row, e.payload); err != nil {
			return 0, fmt.Errorf("merge: writing record %d: %w", i, err)
		}
		if e.trace != nil {
			if err := w.AttachTrace(i, e.trace); err != nil {
				return 0, fmt.Errorf("merge: writing trace %d: %w", i, err)
			}
		}
	}
	if err := w.Seal(); err != nil {
		return 0, err
	}
	return len(idxs), nil
}
