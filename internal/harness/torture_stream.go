package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"silo/internal/fault"
	"silo/internal/recovery"
)

// Record is one campaign outcome in the fleet's JSONL checkpoint
// stream: self-contained (the campaign is reconstructible from it, so a
// resumed sweep re-derives nothing) and machine-readable for CI.
type Record struct {
	Index    int    `json:"index"`
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	Txns     int    `json:"txns"`
	OpsPerTx int    `json:"ops_per_tx,omitempty"`
	Seed     int64  `json:"seed"`
	Plan     string `json:"plan"`
	Repro    string `json:"repro"`

	MidRun   bool            `json:"mid_run"`
	Commits  int64           `json:"commits"`
	Torn     int64           `json:"torn"`
	Dropped  int64           `json:"dropped"`
	Restarts int             `json:"restarts"`
	Report   recovery.Report `json:"report"`
	Avail    *AvailSummary   `json:"avail,omitempty"`
	Explore  *ExploreMetrics `json:"explore,omitempty"`

	Mismatches []string `json:"mismatches,omitempty"`
	Err        string   `json:"err,omitempty"`
	Invariant  string   `json:"invariant,omitempty"`
	Trail      []string `json:"trail,omitempty"`
	Panicked   bool     `json:"panicked,omitempty"`
	TimedOut   bool     `json:"timed_out,omitempty"`
	Infra      bool     `json:"infra,omitempty"`
	Attempts   int      `json:"attempts"`
}

// OutcomeRecord converts an executed campaign's outcome to its record.
func OutcomeRecord(o CampaignOutcome) Record {
	r := Record{
		Index:    o.Campaign.Index,
		Design:   o.Campaign.Spec.Design,
		Workload: o.Campaign.Spec.Workload,
		Cores:    o.Campaign.Spec.Cores,
		Txns:     o.Campaign.Spec.Txns,
		OpsPerTx: o.Campaign.Spec.OpsPerTx,
		Seed:     o.Campaign.Spec.Seed,
		Plan:     o.Campaign.Plan.String(),
		Repro:    o.Campaign.Repro(),

		MidRun:   o.MidRun,
		Commits:  o.Commits,
		Torn:     o.Torn,
		Dropped:  o.Dropped,
		Restarts: o.Restarts,
		Report:   o.Report,
		Avail:    o.Avail,
		Explore:  o.Explore,

		Mismatches: o.Mismatches,
		Invariant:  o.Invariant,
		Trail:      o.Trail,
		Panicked:   o.Panicked,
		TimedOut:   o.TimedOut,
		Infra:      o.Infra,
		Attempts:   o.Attempts,
	}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	return r
}

// Outcome reconstructs the campaign outcome, including the campaign
// itself (spec + parsed plan), so a resumed sweep can aggregate and
// shrink it exactly as if it had just run.
func (r Record) Outcome() (CampaignOutcome, error) {
	plan, err := fault.ParsePlan(r.Plan)
	if err != nil {
		return CampaignOutcome{}, fmt.Errorf("plan %q: %w", r.Plan, err)
	}
	o := CampaignOutcome{
		Campaign: Campaign{
			Index: r.Index,
			Spec: Spec{
				Design:   r.Design,
				Workload: r.Workload,
				Cores:    r.Cores,
				Txns:     r.Txns,
				Seed:     r.Seed,
				OpsPerTx: r.OpsPerTx,
			},
			Plan: plan,
		},
		MidRun:   r.MidRun,
		Commits:  r.Commits,
		Torn:     r.Torn,
		Dropped:  r.Dropped,
		Restarts: r.Restarts,
		Report:   r.Report,
		Avail:    r.Avail,
		Explore:  r.Explore,

		Mismatches: r.Mismatches,
		Invariant:  r.Invariant,
		Trail:      r.Trail,
		Panicked:   r.Panicked,
		TimedOut:   r.TimedOut,
		Infra:      r.Infra,
		Attempts:   r.Attempts,
	}
	if r.Err != "" {
		o.Err = errors.New(r.Err)
	}
	return o, nil
}

// WriteRecord appends one record to w as a JSON line.
func WriteRecord(w io.Writer, r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecords parses a JSONL checkpoint stream into an index-keyed map.
// A torn final line — the process died mid-write — is skipped, not an
// error; a later record for the same index wins (retried campaigns).
// Infra-failed records are dropped so a resumed sweep retries them.
func ReadRecords(r io.Reader) (map[int]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	out := make(map[int]Record)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail of an interrupted stream
		}
		if rec.Infra {
			delete(out, rec.Index)
			continue
		}
		out[rec.Index] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
