package harness

import (
	"fmt"
	"sort"
	"strings"
)

// AvailSummary splits one replicated cluster campaign's unavailability
// into its phases. With replication, a key's crash window is no longer
// "until the owner recovers": it is detection (the router notices) plus
// promotion (the next replica takes over), while the owner's full
// outage — reboot, log replay, catch-up resync — happens in the
// background. The summary keeps both so reports can show the gap, and
// carries the acked-write losses async mode admits. All durations are
// simulated cycles (2 GHz: 2000 cycles = 1 µs).
type AvailSummary struct {
	Replicas int    `json:"replicas"`
	Mode     string `json:"mode,omitempty"` // "sync" / "async"; empty for R=1
	Windows  int    `json:"windows"`        // distinct crash windows
	Strikes  int    `json:"strikes"`        // node crashes (re-strikes merge into open windows)

	// Phase sums across windows, in cycles. Detect is down→detected,
	// Promote detected→promoted (replicated runs only), Resync the
	// rebooted node's catch-up span.
	DetectSum  int64 `json:"detect_sum"`
	PromoteSum int64 `json:"promote_sum"`
	ResyncSum  int64 `json:"resync_sum"`

	// Width is the client-visible unavailability per window (promotion
	// bound when a replica took over, full outage otherwise); Owner is
	// the crashed node's own outage regardless of failover.
	WidthSum int64 `json:"width_sum"`
	WidthMax int64 `json:"width_max"`
	OwnerSum int64 `json:"owner_sum"`
	OwnerMax int64 `json:"owner_max"`

	// AckedLost counts acked writes lost at a crash (bounded-async
	// exposure; always 0 for sync replication).
	AckedLost int64 `json:"acked_lost,omitempty"`
}

// Key buckets summaries that are comparable: same replica count and
// replication mode.
func (a *AvailSummary) Key() string {
	if a.Replicas <= 1 {
		return "r1"
	}
	return fmt.Sprintf("r%d/%s", a.Replicas, a.Mode)
}

// Merge folds b into a (same-Key summaries).
func (a *AvailSummary) Merge(b *AvailSummary) {
	a.Windows += b.Windows
	a.Strikes += b.Strikes
	a.DetectSum += b.DetectSum
	a.PromoteSum += b.PromoteSum
	a.ResyncSum += b.ResyncSum
	a.WidthSum += b.WidthSum
	a.OwnerSum += b.OwnerSum
	if b.WidthMax > a.WidthMax {
		a.WidthMax = b.WidthMax
	}
	if b.OwnerMax > a.OwnerMax {
		a.OwnerMax = b.OwnerMax
	}
	a.AckedLost += b.AckedLost
}

// String renders the summary as one report line (means in µs at the
// 2 GHz model clock).
func (a *AvailSummary) String() string {
	us := func(c int64) float64 { return float64(c) / 2000 }
	if a.Windows == 0 {
		return fmt.Sprintf("%s: no crash windows, acked-lost %d", a.Key(), a.AckedLost)
	}
	n := int64(a.Windows)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d windows (%d strikes), width mean %.1f max %.1f µs",
		a.Key(), a.Windows, a.Strikes, us(a.WidthSum/n), us(a.WidthMax))
	fmt.Fprintf(&b, "; detect mean %.1f", us(a.DetectSum/n))
	if a.Replicas > 1 {
		fmt.Fprintf(&b, ", promote mean %.1f, resync mean %.1f", us(a.PromoteSum/n), us(a.ResyncSum/n))
	}
	fmt.Fprintf(&b, "; owner outage mean %.1f max %.1f µs; acked-lost %d",
		us(a.OwnerSum/n), us(a.OwnerMax), a.AckedLost)
	return b.String()
}

// mergeAvail folds src into the by-Key map, cloning so callers keep
// ownership of src.
func mergeAvail(m map[string]*AvailSummary, src *AvailSummary) {
	if src == nil {
		return
	}
	if cur, ok := m[src.Key()]; ok {
		cur.Merge(src)
		return
	}
	cp := *src
	m[src.Key()] = &cp
}

// availLines renders a by-Key availability map in deterministic key
// order, one line per configuration, with the given indent.
func availLines(m map[string]*AvailSummary, indent string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(indent)
		b.WriteString(m[k].String())
		b.WriteByte('\n')
	}
	return b.String()
}
