package harness

import (
	"fmt"
	"testing"
)

// BenchmarkFleetThroughput measures end-to-end fleet throughput on real
// campaigns — full machine construction, crash schedule, recovery, and
// golden-shadow verification per campaign — across worker counts. sec/op
// is host time per campaign; the campaigns/min metric is what the
// ROADMAP's "million-campaign overnight run" target is quoted in.
//
// The sweep shape mirrors the default torture fleet (all designs ×
// {Array, Hash, TPCC}) so wins here are wins for `silo-torture` and
// `silo-explore` runs, not a synthetic microbenchmark.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			cfg := TortureConfig{
				Seed:      11,
				Campaigns: b.N,
				Txns:      16,
				Parallel:  workers,
			}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := Torture(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if !res.Ok() {
				b.Fatalf("fleet benchmark sweep failed:\n%s", res.Summary())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Minutes(), "campaigns/min")
		})
	}
}
