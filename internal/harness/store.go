package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silo/internal/resultstore"
)

// RecordSink is the fleet's two-phase checkpoint sink. Encode is
// called on the completing campaign's goroutine — concurrently, with
// no lock held — and must be pure; Write is called under the fleet's
// emit lock, strictly serialized, in completion order.
type RecordSink interface {
	Encode(Record) ([]byte, error)
	Write(Record, []byte) error
}

// NewJSONLSink streams records to w as JSON lines, marshaling outside
// the emit lock (w sees exactly the bytes WriteRecord would produce).
func NewJSONLSink(w io.Writer) RecordSink { return jsonlSink{w} }

type jsonlSink struct{ w io.Writer }

func (s jsonlSink) Encode(r Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s jsonlSink) Write(_ Record, enc []byte) error {
	_, err := s.w.Write(enc)
	return err
}

// IsStorePath reports whether path selects the binary result store
// (by .srs extension) rather than the JSONL stream.
func IsStorePath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".srs")
}

// RowFromRecord projects a record onto its fixed-size index row. The
// row carries everything filtering and aggregation need; full fidelity
// (mismatch strings, plan, trail, repro) stays in the JSON payload.
func RowFromRecord(r Record) resultstore.Row {
	row := resultstore.Row{
		Index:      int64(r.Index),
		Seed:       r.Seed,
		Commits:    r.Commits,
		Torn:       r.Torn,
		Dropped:    r.Dropped,
		Restarts:   uint32(r.Restarts),
		Mismatches: uint32(len(r.Mismatches)),
		Design:     r.Design,
		Workload:   r.Workload,
		Invariant:  r.Invariant,
		Attempts:   uint16(r.Attempts),
		MidRun:     r.MidRun,
		Panicked:   r.Panicked,
		TimedOut:   r.TimedOut,
		Infra:      r.Infra,
		Complete:   r.Report.Complete,

		CommittedTx:   uint32(r.Report.CommittedTx),
		RedoApplied:   uint32(r.Report.RedoApplied),
		UndoApplied:   uint32(r.Report.UndoApplied),
		Discarded:     uint32(r.Report.Discarded),
		Quarantined:   uint32(r.Report.Quarantined),
		TotalRecords:  uint32(r.Report.TotalRecords),
		AppliedWrites: uint32(r.Report.AppliedWrites),
	}
	switch {
	case r.Infra:
		row.Kind = resultstore.KindInfra
	case r.Err != "":
		row.Kind = resultstore.KindError
	case len(r.Mismatches) > 0:
		row.Kind = resultstore.KindMismatch
	default:
		row.Kind = resultstore.KindOK
	}
	if a := r.Avail; a != nil {
		row.HasAvail = true
		row.Replicas = uint16(a.Replicas)
		row.Mode = a.Mode
		row.Windows = uint32(a.Windows)
		row.Strikes = uint32(a.Strikes)
		row.DetectSum = a.DetectSum
		row.PromoteSum = a.PromoteSum
		row.ResyncSum = a.ResyncSum
		row.WidthSum = a.WidthSum
		row.WidthMax = a.WidthMax
		row.OwnerSum = a.OwnerSum
		row.OwnerMax = a.OwnerMax
		row.AckedLost = a.AckedLost
	}
	return row
}

// availFromRow reconstructs the availability summary an index row
// carries (nil when the record had none).
func availFromRow(r resultstore.Row) *AvailSummary {
	if !r.HasAvail {
		return nil
	}
	return &AvailSummary{
		Replicas:   int(r.Replicas),
		Mode:       r.Mode,
		Windows:    int(r.Windows),
		Strikes:    int(r.Strikes),
		DetectSum:  r.DetectSum,
		PromoteSum: r.PromoteSum,
		ResyncSum:  r.ResyncSum,
		WidthSum:   r.WidthSum,
		WidthMax:   r.WidthMax,
		OwnerSum:   r.OwnerSum,
		OwnerMax:   r.OwnerMax,
		AckedLost:  r.AckedLost,
	}
}

// CheckpointSink is the file-backed RecordSink behind -out: a JSONL
// appender or an SRS1 store writer, selected by extension. Store
// output streams into <path>.tmp and is published by Close (sealed
// footer + atomic rename); a killed fleet leaves the temp segment,
// whose sealed prefix LoadRecords recovers on resume.
type CheckpointSink struct {
	path  string
	file  *os.File            // JSONL mode
	store *resultstore.Writer // store mode

	// Store writes flush to disk every flushEvery records so a killed
	// fleet loses a bounded suffix, not its whole run: the byte
	// threshold inside the writer alone could buffer a small sweep
	// entirely. One flush is one write syscall, so the write path still
	// amortizes to ~1/64 of JSONL's syscall rate.
	written    int
	flushEvery int
}

// storeFlushEvery is the durability cadence for store sinks.
const storeFlushEvery = 64

// OpenCheckpointSink opens the checkpoint stream at path, selecting
// the format by extension (.srs → binary store, anything else →
// append-mode JSONL).
func OpenCheckpointSink(path string) (*CheckpointSink, error) {
	if IsStorePath(path) {
		w, err := resultstore.NewWriter(path)
		if err != nil {
			return nil, err
		}
		return &CheckpointSink{path: path, store: w, flushEvery: storeFlushEvery}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &CheckpointSink{path: path, file: f}, nil
}

// Encode marshals the record once, outside the emit lock; both
// formats use the same JSON bytes (the store appends them as the
// payload, so a store round-trips records byte-exactly).
func (s *CheckpointSink) Encode(r Record) ([]byte, error) {
	return json.Marshal(r)
}

// Write appends one encoded record (serialized by the fleet).
func (s *CheckpointSink) Write(r Record, enc []byte) error {
	if s.store != nil {
		if err := s.store.Append(RowFromRecord(r), enc); err != nil {
			return err
		}
		s.written++
		if s.flushEvery > 0 && s.written%s.flushEvery == 0 {
			return s.store.Flush()
		}
		return nil
	}
	_, err := s.file.Write(append(enc, '\n'))
	return err
}

// Seed pre-populates a store with resumed records in campaign order,
// so the sealed result is complete even though the fleet will not
// re-emit them. JSONL streams keep their history in the file itself,
// so seeding is a no-op there.
func (s *CheckpointSink) Seed(recs map[int]Record) error {
	if s.store == nil || len(recs) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(recs))
	for i := range recs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		enc, err := s.Encode(recs[i])
		if err != nil {
			return err
		}
		if err := s.Write(recs[i], enc); err != nil {
			return err
		}
	}
	return nil
}

// AttachTrace embeds a recorded Chrome trace into the store for the
// campaign (no-op for JSONL, where traces stay separate files).
func (s *CheckpointSink) AttachTrace(index int, blob []byte) error {
	if s.store == nil {
		return nil
	}
	return s.store.AttachTrace(int64(index), blob)
}

// Close publishes the stream: Seal+rename for a store, plain close
// for JSONL. Safe to call once.
func (s *CheckpointSink) Close() error {
	if s.store != nil {
		return s.store.Seal()
	}
	return s.file.Close()
}

// decodeStoreRecord parses one store payload back into a Record.
func decodeStoreRecord(payload []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("%w: payload is not a record: %v", resultstore.ErrCorrupt, err)
	}
	return rec, nil
}

// storeAllRecords reads every record of a sealed store in append
// order (duplicates preserved).
func storeAllRecords(st *resultstore.Store) ([]Record, error) {
	recs := make([]Record, 0, st.Count())
	for i := 0; i < st.Count(); i++ {
		p, err := st.Payload(i)
		if err != nil {
			return nil, err
		}
		rec, err := decodeStoreRecord(p)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// applyResumeSemantics folds records into the resume map with
// ReadRecords' rules: later records supersede earlier ones, and
// infra-failed records are dropped so the fleet retries them.
func applyResumeSemantics(out map[int]Record, recs []Record) {
	for _, rec := range recs {
		if rec.Infra {
			delete(out, rec.Index)
			continue
		}
		out[rec.Index] = rec
	}
}

// LoadRecords reads a checkpoint for resume, selecting the reader by
// extension. For stores it accepts every artifact an interrupted
// fleet can leave behind: a sealed store at path, an unsealed temp
// segment at path (pointed at directly), and a newer temp segment at
// path.tmp layered over the sealed store it was rewriting. The
// recovered records are byte-exactly what the writer sealed.
func LoadRecords(path string) (map[int]Record, error) {
	if !IsStorePath(path) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadRecords(f)
	}
	out := make(map[int]Record)
	found := false
	st, err := resultstore.Open(path)
	switch {
	case err == nil:
		recs, rerr := storeAllRecords(st)
		st.Close()
		if rerr != nil {
			return nil, fmt.Errorf("%s: %w", path, rerr)
		}
		applyResumeSemantics(out, recs)
		found = true
	case errors.Is(err, resultstore.ErrCorrupt):
		// Unsealed or damaged: recover the sealed chunk prefix.
		payloads, rerr := resultstore.Recover(path)
		if rerr != nil {
			return nil, fmt.Errorf("%s: %w", path, rerr)
		}
		if err := applyPayloads(out, payloads); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		found = true
	case !os.IsNotExist(err):
		return nil, err
	}
	// A temp segment is always newer than the sealed store it was
	// rewriting (resume seeds the old records first), so it layers on
	// top.
	if payloads, rerr := resultstore.Recover(path + ".tmp"); rerr == nil {
		if err := applyPayloads(out, payloads); err != nil {
			return nil, fmt.Errorf("%s.tmp: %w", path, err)
		}
		found = true
	} else if !os.IsNotExist(rerr) && !errors.Is(rerr, resultstore.ErrCorrupt) {
		return nil, fmt.Errorf("%s.tmp: %w", path, rerr)
	}
	if !found {
		return nil, fmt.Errorf("%s: no store and no recoverable temp segment: %w", path, os.ErrNotExist)
	}
	return out, nil
}

func applyPayloads(out map[int]Record, payloads [][]byte) error {
	for _, p := range payloads {
		rec, err := decodeStoreRecord(p)
		if err != nil {
			return err
		}
		if rec.Infra {
			delete(out, rec.Index)
			continue
		}
		out[rec.Index] = rec
	}
	return nil
}

// SummarizeCheckpoint summarizes a checkpoint at path for reporting,
// dispatching by extension: LoadCheckpoint for JSONL, SummarizeStore
// for SRS1 stores.
func SummarizeCheckpoint(path string) (*CheckpointSummary, error) {
	if !IsStorePath(path) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return LoadCheckpoint(f)
	}
	return SummarizeStore(path)
}

// SummarizeStore aggregates a store by scanning only its fixed-size
// index rows — no payload is deserialized except for the (rare)
// failed campaigns, whose mismatch strings and repro lines the report
// prints. This is the mmap fast path: a 100k-campaign summary is an
// index scan, not 100k JSON parses. An unsealed or damaged store is
// summarized from its recovered sealed prefix and flagged TornTail,
// mirroring the JSONL interrupted-writer semantics.
func SummarizeStore(path string) (*CheckpointSummary, error) {
	st, err := resultstore.Open(path)
	if err != nil {
		if errors.Is(err, resultstore.ErrCorrupt) {
			return summarizeRecovered(path, err)
		}
		if os.IsNotExist(err) {
			// A fleet killed before its first Seal leaves only the temp
			// segment; summarize its sealed prefix.
			if _, terr := os.Stat(path + ".tmp"); terr == nil {
				return summarizeRecovered(path+".tmp", err)
			}
		}
		return nil, err
	}
	defer st.Close()
	if st.Count() == 0 {
		return nil, errors.New("checkpoint: no records (empty store); was the sweep run with -out?")
	}
	s := &CheckpointSummary{Designs: make(map[string]int), Avail: make(map[string]*AvailSummary)}
	s.Records = st.Count()
	latest := make(map[int64]int)
	var order []int64
	for i := 0; i < st.Count(); i++ {
		idx := st.Row(i).Index
		if _, seen := latest[idx]; !seen {
			order = append(order, idx)
		}
		latest[idx] = i
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	s.Campaigns = len(order)
	for _, idx := range order {
		row := st.Row(latest[idx])
		s.Designs[row.Design]++
		if row.Infra {
			s.Infra++
			continue
		}
		if row.Failed() {
			p, err := st.Payload(latest[idx])
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			rec, err := decodeStoreRecord(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			s.Failures = append(s.Failures, rec)
			continue
		}
		if row.MidRun {
			s.MidRun++
		}
		s.Commits += row.Commits
		s.Torn += row.Torn
		s.Dropped += row.Dropped
		s.Restarts += int(row.Restarts)
		mergeAvail(s.Avail, availFromRow(row))
	}
	return s, nil
}

// summarizeRecovered summarizes the sealed prefix of an unsealed or
// damaged store the way LoadCheckpoint treats a torn JSONL tail.
func summarizeRecovered(path string, openErr error) (*CheckpointSummary, error) {
	payloads, err := resultstore.Recover(path)
	if err != nil {
		// openErr came from Open/Stat and already names the file.
		return nil, openErr
	}
	if len(payloads) == 0 {
		return nil, fmt.Errorf("%s: unsealed store with no recoverable records (writer died before the first chunk flush); re-run or resume the sweep", path)
	}
	recs := make([]Record, 0, len(payloads))
	for _, p := range payloads {
		rec, derr := decodeStoreRecord(p)
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", path, derr)
		}
		recs = append(recs, rec)
	}
	s := summarizeRecords(recs)
	s.TornTail = true
	return s, nil
}

// summarizeRecords aggregates in-memory records with LoadCheckpoint's
// exact rules (shared by the recovered-store path).
func summarizeRecords(recs []Record) *CheckpointSummary {
	s := &CheckpointSummary{Designs: make(map[string]int), Avail: make(map[string]*AvailSummary)}
	latest := make(map[int]Record)
	var order []int
	for _, rec := range recs {
		s.Records++
		if _, seen := latest[rec.Index]; !seen {
			order = append(order, rec.Index)
		}
		latest[rec.Index] = rec
	}
	sort.Ints(order)
	s.Campaigns = len(order)
	for _, idx := range order {
		rec := latest[idx]
		s.Designs[rec.Design]++
		if rec.Infra {
			s.Infra++
			continue
		}
		if rec.Err != "" || len(rec.Mismatches) > 0 {
			s.Failures = append(s.Failures, rec)
			continue
		}
		if rec.MidRun {
			s.MidRun++
		}
		s.Commits += rec.Commits
		s.Torn += rec.Torn
		s.Dropped += rec.Dropped
		s.Restarts += rec.Restarts
		mergeAvail(s.Avail, rec.Avail)
	}
	return s
}

// ConvertJSONL migrates a JSONL checkpoint stream into a sealed store
// at outPath, preserving the full record history — duplicates,
// infra records and order included — so summaries over either format
// are byte-identical. The parse is LoadCheckpoint-strict: corruption
// mid-stream fails the conversion, a torn final line (interrupted
// writer) is tolerated and reported. Returns the records written and
// whether a torn tail was dropped.
func ConvertJSONL(r io.Reader, outPath string) (records int, tornTail bool, err error) {
	if !IsStorePath(outPath) {
		return 0, false, fmt.Errorf("convert: output %q must be a .srs store", outPath)
	}
	w, err := resultstore.NewWriter(outPath)
	if err != nil {
		return 0, false, err
	}
	abort := func(e error) (int, bool, error) {
		w.Abort()
		return 0, false, e
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	lineNo, badLine := 0, 0
	var badErr error
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if badErr != nil {
			return abort(fmt.Errorf("convert: line %d: %w (corrupt record mid-stream; the file is damaged, not merely interrupted)", badLine, badErr))
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine, badErr = lineNo, err
			continue
		}
		// Re-marshal rather than copying the line: the store payload is
		// canonically json.Marshal(rec), which keeps store payloads
		// byte-identical whether written by a fleet or by conversion.
		enc, err := json.Marshal(rec)
		if err != nil {
			return abort(err)
		}
		if err := w.Append(RowFromRecord(rec), enc); err != nil {
			return abort(err)
		}
		records++
	}
	if err := sc.Err(); err != nil {
		return abort(fmt.Errorf("convert: reading stream: %w", err))
	}
	if records == 0 {
		if badErr != nil {
			return abort(errors.New("convert: stream holds only a torn partial record (writer died mid-first-write); re-run the sweep"))
		}
		return abort(errors.New("convert: no records (empty stream); was the sweep run with -out?"))
	}
	if err := w.Seal(); err != nil {
		return 0, false, err
	}
	return records, badErr != nil, nil
}
