package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"silo/internal/stats"
)

// CheckpointSummary aggregates a torture JSONL checkpoint stream for
// reporting: one sweep's worth of campaign records, deduplicated by
// campaign index (the latest record wins, matching resume semantics).
type CheckpointSummary struct {
	Records   int // JSON lines parsed (including superseded duplicates)
	Campaigns int // distinct campaign indices

	MidRun   int
	Commits  int64
	Torn     int64
	Dropped  int64
	Restarts int

	// Failures holds the campaigns whose latest record carries
	// mismatches or a non-infra error; Infra counts records that never
	// produced a durability verdict.
	Failures []Record
	Infra    int

	// Designs counts campaigns per design name.
	Designs map[string]int

	// Avail aggregates cluster availability breakdowns by replication
	// configuration ("r1", "r3/sync", ...); empty for machine sweeps
	// and for streams written before replication existed.
	Avail map[string]*AvailSummary

	// TornTail is set when the final line of the stream is an
	// unparseable partial record — the writing process died mid-write.
	// That is interruption, not corruption, so it does not fail the
	// load; anything unparseable *before* the last line does.
	TornTail bool
}

// LoadCheckpoint strictly parses a torture JSONL stream. Unlike
// ReadRecords (the resume path, which silently skips anything odd so an
// interrupted sweep can always continue), the reporting path must not
// quietly under-count: an empty stream and any corrupt record in the
// middle of the file are errors naming the line; only a torn final line
// — the signature of an interrupted writer — is tolerated, and flagged.
func LoadCheckpoint(r io.Reader) (*CheckpointSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	s := &CheckpointSummary{Designs: make(map[string]int), Avail: make(map[string]*AvailSummary)}
	latest := make(map[int]Record)
	var order []int
	lineNo := 0
	badLine := 0 // most recent unparseable line (candidate torn tail)
	var badErr error
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if badErr != nil {
			return nil, fmt.Errorf("checkpoint: line %d: %w (corrupt record mid-stream; the file is damaged, not merely interrupted)", badLine, badErr)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine, badErr = lineNo, err
			continue
		}
		s.Records++
		if _, seen := latest[rec.Index]; !seen {
			order = append(order, rec.Index)
		}
		latest[rec.Index] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: reading stream: %w", err)
	}
	s.TornTail = badErr != nil
	if s.Records == 0 {
		if s.TornTail {
			return nil, errors.New("checkpoint: stream holds only a torn partial record (writer died mid-first-write); re-run the sweep")
		}
		return nil, errors.New("checkpoint: no records (empty stream); was the sweep run with -out?")
	}
	sort.Ints(order)
	s.Campaigns = len(order)
	for _, idx := range order {
		rec := latest[idx]
		s.Designs[rec.Design]++
		if rec.Infra {
			s.Infra++
			continue
		}
		if rec.Err != "" || len(rec.Mismatches) > 0 {
			s.Failures = append(s.Failures, rec)
			continue
		}
		if rec.MidRun {
			s.MidRun++
		}
		s.Commits += rec.Commits
		s.Torn += rec.Torn
		s.Dropped += rec.Dropped
		s.Restarts += rec.Restarts
		mergeAvail(s.Avail, rec.Avail)
	}
	return s, nil
}

// Table renders the summary's per-design breakdown.
func (s *CheckpointSummary) Table() *stats.Table {
	t := stats.NewTable("campaigns by design", "design", "campaigns")
	names := make([]string, 0, len(s.Designs))
	for d := range s.Designs {
		names = append(names, d)
	}
	sort.Strings(names)
	for _, d := range names {
		t.AddRow(d, fmt.Sprintf("%d", s.Designs[d]))
	}
	return t
}

// String renders the summary as a short human-readable report.
func (s *CheckpointSummary) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "checkpoint: %d records, %d campaigns (%d superseded duplicates)\n",
		s.Records, s.Campaigns, s.Records-s.Campaigns)
	fmt.Fprintf(&b, "  %d crashed mid-run, %d tx committed, %d torn, %d dropped, %d re-crashes\n",
		s.MidRun, s.Commits, s.Torn, s.Dropped, s.Restarts)
	if len(s.Avail) > 0 {
		b.WriteString("  availability by replication config:\n")
		b.WriteString(availLines(s.Avail, "    "))
	}
	if s.Infra > 0 {
		fmt.Fprintf(&b, "  %d infra-failed (no durability verdict; a resumed sweep retries them)\n", s.Infra)
	}
	if s.TornTail {
		b.WriteString("  stream ends in a torn partial record: the sweep was interrupted mid-write (resume to finish)\n")
	}
	if len(s.Failures) == 0 {
		b.WriteString("  result: PASS (zero durability failures on record)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  result: FAIL (%d campaigns violated atomic durability)\n", len(s.Failures))
	for _, rec := range s.Failures {
		fmt.Fprintf(&b, "    campaign %d (%s on %s): ", rec.Index, rec.Design, rec.Workload)
		switch {
		case rec.Err != "":
			fmt.Fprintf(&b, "%s\n", rec.Err)
		default:
			fmt.Fprintf(&b, "%d mismatches\n", len(rec.Mismatches))
		}
		if rec.Repro != "" {
			fmt.Fprintf(&b, "      repro: %s\n", rec.Repro)
		}
	}
	return b.String()
}
