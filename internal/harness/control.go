package harness

import (
	"fmt"
	"sync/atomic"

	"silo/internal/machine"
	"silo/internal/sim"
	"silo/internal/stats"
)

// ControlledRun is a single-machine run driven step-by-step so an
// external controller — silo-serve's run manager — can inject a crash or
// stop the simulation mid-flight from another goroutine. RunMachine runs
// the engine loop to completion in one call; a ControlledRun owns the
// same Bind/Step loop but polls two atomic requests between scheduling
// decisions:
//
//   - RequestCrash injects a full power failure (machine.InjectCrash:
//     battery-backed flush under the fault plan's energy budget, cache
//     loss, audit conservation checks) at the next scheduling point.
//   - RequestStop unwinds the run without crash semantics, like the
//     sim-cycle watchdog.
//
// Execute runs on the caller's goroutine; only the two request methods
// and Machine's read-only accessors are safe from other goroutines while
// it runs. A run with neither request ever made executes the exact
// scheduling sequence of RunMachine.
type ControlledRun struct {
	spec    Spec
	mach    *machine.Machine
	eng     *sim.Engine
	streams []sim.OpStream

	crashReq atomic.Bool
	stopReq  atomic.Bool

	// Tick, when non-nil, is called with the simulated clock every
	// TickOps scheduling steps — silo-serve uses it to pace the
	// simulation near a wall-clock rate so the dashboard's charts move
	// at human speed. Tick runs on the Execute goroutine; it must not
	// touch simulated state.
	Tick    func(now sim.Cycle)
	TickOps int
}

// NewControlledRun builds the machine and workload for spec exactly like
// RunMachine, but leaves the engine unstarted.
func NewControlledRun(spec Spec) (*ControlledRun, error) {
	m, wl, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if spec.Txns <= 0 {
		spec.Txns = 1000
	}
	cores := spec.Cores
	if cores < 1 {
		cores = 1
	}
	eng := m.Engine(spec.Seed)
	per := spec.Txns / cores
	if per < 1 {
		per = 1
	}
	streams := make([]sim.OpStream, cores)
	for c := 0; c < cores; c++ {
		streams[c] = wl.Stream(c, per, sim.CoreRand(spec.Seed, c))
	}
	return &ControlledRun{spec: spec, mach: m, eng: eng, streams: streams, TickOps: 64}, nil
}

// Machine exposes the run's machine (telemetry recorder, device, region —
// for recovery replay after a crash).
func (c *ControlledRun) Machine() *machine.Machine { return c.mach }

// RequestCrash asks the run to inject a power failure at the next
// scheduling point. Safe from any goroutine; idempotent.
func (c *ControlledRun) RequestCrash() { c.crashReq.Store(true) }

// RequestStop asks the run to unwind without crash semantics. Safe from
// any goroutine; idempotent.
func (c *ControlledRun) RequestStop() { c.stopReq.Store(true) }

// Execute drives the run to completion (or crash/stop) and returns the
// run record. An audit-violation panic is recovered into an error so a
// server hosting many runs survives a violating one.
func (c *ControlledRun) Execute() (run stats.Run, err error) {
	eng := c.eng
	defer eng.Finish()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: run aborted: %v", r)
		}
	}()
	eng.Bind(c.streams)
	tickOps := c.TickOps
	if tickOps < 1 {
		tickOps = 64
	}
	for steps := 0; ; steps++ {
		if steps%tickOps == 0 {
			if c.crashReq.Swap(false) && !eng.Crashed() {
				c.mach.InjectCrash(eng.Now())
			}
			if c.stopReq.Load() && !eng.Crashed() {
				eng.Crash()
			}
			if c.Tick != nil {
				c.Tick(eng.Now())
			}
		}
		if !eng.Step() {
			break
		}
	}
	return c.mach.CollectStats(c.spec.Design, c.spec.Workload), nil
}
