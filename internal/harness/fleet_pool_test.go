package harness

import (
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// fleetStream runs a sweep and returns its summary plus the marshaled
// checkpoint record stream, exactly as a CheckpointSink would emit it.
func fleetStream(t *testing.T, cfg TortureConfig) (string, []string) {
	t.Helper()
	var stream []string
	cfg.OnRecord = func(r Record) {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal record %d: %v", r.Index, err)
		}
		stream = append(stream, string(b))
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatalf("torture (parallel=%d): %v", cfg.Parallel, err)
	}
	return res.Summary(), stream
}

// The reorder window must make the sweep's observable output a pure
// function of the config: any worker count yields byte-identical
// summaries AND byte-identical checkpoint record streams. This is the
// contract that lets a resumed or re-parallelized fleet be diffed
// against any other run of the same config.
func TestFleetByteIdenticalAcrossParallel(t *testing.T) {
	base := TortureConfig{Seed: 4, Campaigns: 24, Txns: 8, Parallel: 1}
	refSum, refStream := fleetStream(t, base)
	for _, par := range []int{4, 8} {
		cfg := base
		cfg.Parallel = par
		sum, stream := fleetStream(t, cfg)
		if sum != refSum {
			t.Errorf("parallel=%d summary diverges from parallel=1:\n%s\nvs\n%s", par, sum, refSum)
		}
		if len(stream) != len(refStream) {
			t.Fatalf("parallel=%d emitted %d records, parallel=1 emitted %d", par, len(stream), len(refStream))
		}
		for i := range stream {
			if stream[i] != refStream[i] {
				t.Fatalf("parallel=%d record %d diverges:\n%s\nvs\n%s", par, i, stream[i], refStream[i])
			}
		}
	}
}

// A corrupt resume record must abort the sweep immediately — dispatching
// stops at the bad index instead of burning the remaining campaign
// budget before reporting the error.
func TestFleetResumeFailFast(t *testing.T) {
	var executed atomic.Int64
	cfg := TortureConfig{
		Seed: 4, Campaigns: 500, Txns: 8, Parallel: 2,
		Run: func(c Campaign) CampaignOutcome {
			executed.Add(1)
			return CampaignOutcome{Campaign: c, Commits: 1}
		},
		Resume: map[int]Record{
			2: {Index: 2, Design: "Silo", Workload: "Array", Plan: "not-a-plan"},
		},
	}
	res, err := Torture(cfg)
	if err == nil {
		t.Fatalf("corrupt resume record did not fail the sweep: %+v", res)
	}
	if n := executed.Load(); n > 16 {
		t.Errorf("sweep ran %d campaigns after the corrupt record at index 2; want fail-fast (≤16)", n)
	}
}

// A 200k-campaign sweep must hold O(Parallel + window) state, not
// O(Campaigns): the old fleet retained every CampaignOutcome until the
// end (~hundreds of bytes each — tens of MB at this scale); the
// streaming aggregator retires outcomes as the window drains. Live heap
// growth is sampled mid-sweep, after 100k campaigns have completed.
func TestFleetMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-campaign sweep")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var once sync.Once
	var mid uint64
	cfg := TortureConfig{
		Seed: 4, Campaigns: 200_000, Txns: 8, Parallel: 4,
		Run: func(c Campaign) CampaignOutcome {
			if c.Index >= 100_000 {
				once.Do(func() {
					runtime.GC()
					var m runtime.MemStats
					runtime.ReadMemStats(&m)
					mid = m.HeapAlloc
				})
			}
			return CampaignOutcome{Campaign: c, Commits: 1}
		},
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("sweep failed:\n%s", res.Summary())
	}
	if res.Commits != 200_000 {
		t.Fatalf("aggregation lost campaigns: %d commits, want 200000", res.Commits)
	}
	if mid == 0 {
		t.Fatal("mid-sweep heap sample never taken")
	}
	const budget = 32 << 20
	if growth := int64(mid) - int64(before.HeapAlloc); growth > budget {
		t.Errorf("live heap grew %d bytes mid-sweep (100k campaigns in flight); want O(Parallel+window) ≤ %d", growth, budget)
	}
}
