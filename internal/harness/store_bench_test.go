package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"silo/internal/recovery"
)

// BenchmarkFleetEmit measures the fleet's record-emit path end to end
// with an instant executor, so the sink serialization (and the emit
// lock around it) dominates. The two-phase RecordSink moved the JSON
// marshal outside that lock; with 8 workers the serialized section is
// now just the buffered write.
func BenchmarkFleetEmit(b *testing.B) {
	for _, bc := range []struct {
		name string
		sink func(b *testing.B) RecordSink
	}{
		{"nosink", func(*testing.B) RecordSink { return nil }},
		{"jsonl", func(*testing.B) RecordSink { return NewJSONLSink(io.Discard) }},
		{"store", func(b *testing.B) RecordSink {
			sink, err := OpenCheckpointSink(filepath.Join(b.TempDir(), "bench.srs"))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { sink.Close() })
			return sink
		}},
		{"jsonl-locked", func(*testing.B) RecordSink {
			// The pre-refactor shape: marshal under the lock.
			return lockedMarshalSink{w: io.Discard}
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := fleetConfig(b.N, benchEmitRun)
			cfg.Parallel = 8
			if s := bc.sink(b); s != nil {
				cfg.Sink = s
				cfg.OnSinkError = func(err error) { b.Error(err) }
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := Torture(cfg); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func benchEmitRun(c Campaign) CampaignOutcome {
	return CampaignOutcome{
		Campaign: c, MidRun: true, Commits: 398, Torn: 1,
		Report: recovery.Report{CommittedTx: 398, RedoApplied: 12, Complete: true},
	}
}

// lockedMarshalSink mimics the old single-phase emit: Encode is a
// no-op, so the marshal runs inside Write — under the fleet's lock.
type lockedMarshalSink struct {
	w io.Writer
}

func (s lockedMarshalSink) Encode(Record) ([]byte, error) { return nil, nil }
func (s lockedMarshalSink) Write(r Record, _ []byte) error {
	enc, err := NewJSONLSink(s.w).Encode(r)
	if err != nil {
		return err
	}
	_, err = s.w.Write(enc)
	return err
}

// benchCheckpoint writes an n-record checkpoint in both formats once
// per benchmark binary and returns the two paths.
var benchCheckpoint = struct {
	once         sync.Once
	jsonl, store string
	err          error
}{}

func benchCheckpointPaths(b *testing.B, n int) (jsonl, store string) {
	b.Helper()
	benchCheckpoint.once.Do(func() {
		dir, err := os.MkdirTemp("", "silo-bench-ckpt")
		if err != nil {
			benchCheckpoint.err = err
			return
		}
		benchCheckpoint.jsonl = filepath.Join(dir, "sweep.jsonl")
		benchCheckpoint.store = filepath.Join(dir, "sweep.srs")
		js, err := OpenCheckpointSink(benchCheckpoint.jsonl)
		if err != nil {
			benchCheckpoint.err = err
			return
		}
		ss, err := OpenCheckpointSink(benchCheckpoint.store)
		if err != nil {
			benchCheckpoint.err = err
			return
		}
		for i := 0; i < n; i++ {
			r := Record{
				Index: i, Design: "Silo", Workload: "Btree", Cores: 4, Txns: 400,
				OpsPerTx: 8, Seed: int64(1000 + i), Plan: "crash@1743/tear2",
				Repro:  fmt.Sprintf("go run ./cmd/silo-torture -campaigns 1 -offset %d", i),
				MidRun: true, Commits: 398, Torn: 1, Restarts: 1, Attempts: 1,
				Report: recovery.Report{CommittedTx: 398, RedoApplied: 12, UndoApplied: 3, TotalRecords: 415, AppliedWrites: 3104, Complete: true},
			}
			for _, s := range []*CheckpointSink{js, ss} {
				enc, err := s.Encode(r)
				if err != nil {
					benchCheckpoint.err = err
					return
				}
				if err := s.Write(r, enc); err != nil {
					benchCheckpoint.err = err
					return
				}
			}
		}
		if err := js.Close(); err != nil {
			benchCheckpoint.err = err
		}
		if err := ss.Close(); err != nil {
			benchCheckpoint.err = err
		}
	})
	if benchCheckpoint.err != nil {
		b.Fatal(benchCheckpoint.err)
	}
	return benchCheckpoint.jsonl, benchCheckpoint.store
}

const benchCampaigns = 100_000

// BenchmarkSummarizeJSONL is the baseline: summarizing a 100k-campaign
// JSONL checkpoint parses every record.
func BenchmarkSummarizeJSONL(b *testing.B) {
	jsonl, _ := benchCheckpointPaths(b, benchCampaigns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := SummarizeCheckpoint(jsonl)
		if err != nil {
			b.Fatal(err)
		}
		if s.Campaigns != benchCampaigns {
			b.Fatal("bad summary")
		}
	}
}

// BenchmarkSummarizeStore is the acceptance path: the same summary
// from the store's mmap'd index alone.
func BenchmarkSummarizeStore(b *testing.B) {
	_, store := benchCheckpointPaths(b, benchCampaigns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := SummarizeCheckpoint(store)
		if err != nil {
			b.Fatal(err)
		}
		if s.Campaigns != benchCampaigns {
			b.Fatal("bad summary")
		}
	}
}
