package harness

// ExploreMetrics is the design-space explorer's per-point measurement:
// the resolved Table II knobs the point ran with, and the three Pareto
// axes (performance, media wear, crash-flush energy). It rides the
// checkpoint record's JSON payload — self-describing, so the binary
// store's fixed-size index rows are untouched — and survives the
// record → outcome round-trip, which is what lets an interrupted grid
// sweep resume without re-running finished points. See internal/explore.
type ExploreMetrics struct {
	LogBufEntries int `json:"logbuf"`  // Silo log-buffer entries per core
	BufLineSize   int `json:"bufline"` // on-PM buffer line size (bytes)
	WPQEntries    int `json:"wpq"`     // WPQ depth per channel
	L1KB          int `json:"l1_kb"`
	L2KB          int `json:"l2_kb"`
	L3KB          int `json:"l3_kb"`

	Throughput   float64 `json:"throughput"`   // committed tx per Mcycle (maximize)
	MediaWrites  int64   `json:"media_writes"` // media programs (minimize)
	MediaBytes   int64   `json:"media_bytes"`
	EnergyMicroJ float64 `json:"energy_uj"` // crash-flush energy domain (minimize)
}
