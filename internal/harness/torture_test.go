package harness

import (
	"bytes"
	"strings"
	"testing"

	"silo/internal/fault"
	"silo/internal/recovery"
)

func TestMakeCampaignDeterministic(t *testing.T) {
	cfg := TortureConfig{Seed: 9, Campaigns: 10}
	key := func(c Campaign) string {
		return c.Spec.Design + "/" + c.Spec.Workload + "/" + c.Plan.String()
	}
	for i := 0; i < 10; i++ {
		a, b := MakeCampaign(cfg, i), MakeCampaign(cfg, i)
		if key(a) != key(b) || a.Spec.Seed != b.Spec.Seed {
			t.Fatalf("campaign %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
	if key(MakeCampaign(cfg, 0)) == key(MakeCampaign(cfg, 1)) {
		t.Error("consecutive campaigns identical")
	}
}

func TestCampaignReproLine(t *testing.T) {
	c := MakeCampaign(TortureConfig{Seed: 3}, 7)
	r := c.Repro()
	for _, frag := range []string{"silo-torture", "-designs " + c.Spec.Design, "-plan"} {
		if !strings.Contains(r, frag) {
			t.Errorf("repro line missing %q: %s", frag, r)
		}
	}
	// The embedded plan must parse back to the same schedule.
	if _, err := fault.ParsePlan(c.Plan.String()); err != nil {
		t.Errorf("repro plan does not parse: %v", err)
	}
}

func TestRunCampaignDeterministic(t *testing.T) {
	c := MakeCampaign(TortureConfig{Seed: 21, Txns: 24}, 4)
	a, b := RunCampaign(c), RunCampaign(c)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Commits != b.Commits || a.MidRun != b.MidRun ||
		a.Report != b.Report || a.Torn != b.Torn || a.Dropped != b.Dropped {
		t.Errorf("campaign outcome not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestTortureSmoke: a small always-on sweep over every design and
// workload mix. Zero mismatches tolerated.
func TestTortureSmoke(t *testing.T) {
	res, err := Torture(TortureConfig{Seed: 2, Campaigns: 16, Txns: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("torture smoke failed:\n%s", res.Summary())
	}
	if res.Campaigns != 16 {
		t.Errorf("ran %d campaigns", res.Campaigns)
	}
}

// TestTortureAcceptance is the issue's acceptance bar: a 200-campaign
// sweep over {Base, FWB, MorLog, LAD, Silo} × {Array, Hash, TPCC} with
// crash triggers at op/cycle/commit-window/overflow granularity, torn
// crash flushes, and mid-recovery re-crashes — and ZERO post-recovery
// golden-shadow mismatches.
func TestTortureAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("200-campaign sweep")
	}
	res, err := Torture(TortureConfig{Seed: 1, Campaigns: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("atomic durability violated:\n%s", res.Summary())
	}
	// The sweep must actually exercise the adversarial machinery, not
	// pass vacuously.
	if res.MidRunCrashes == 0 {
		t.Error("no campaign crashed mid-run")
	}
	if res.Torn == 0 && res.Dropped == 0 {
		t.Error("no campaign tore or dropped a crash-flush record")
	}
	if res.Restarts == 0 {
		t.Error("no campaign re-crashed during recovery")
	}
	t.Logf("torture summary:\n%s", res.Summary())
}

// TestRecoveryIdempotentAllDesigns crashes every design (including the
// extended baselines) mid-run with an overflowing write set — Sweep40
// writes 40 distinct words per transaction, far past the 20-entry
// on-chip buffer — then proves recovery is idempotent: a second full
// pass changes no transactional word.
func TestRecoveryIdempotentAllDesigns(t *testing.T) {
	for _, d := range ExtendedDesignNames() {
		d := d
		t.Run(d, func(t *testing.T) {
			plan := fault.Plan{Trigger: fault.TriggerOp, AtOp: 700, Seed: 3}
			spec := Spec{Design: d, Workload: "Sweep40", Cores: 2, Txns: 30, Seed: 3, Fault: &plan}
			m, _, err := RunMachine(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Crashed() {
				m.InjectCrash(m.Now())
			}
			recovery.Recover(m.Device(), m.Region())
			if bad := VerifyRecovery(m); len(bad) != 0 {
				t.Fatalf("first recovery left %d mismatches: %v", len(bad), bad[:min(3, len(bad))])
			}
			words := m.WrittenWords()
			before := make(map[uint64]uint64, len(words))
			for _, a := range words {
				got, _ := recovery.VerifyWord(m.Device(), a, 0)
				before[uint64(a)] = uint64(got)
			}
			recovery.Recover(m.Device(), m.Region())
			for _, a := range words {
				if got, _ := recovery.VerifyWord(m.Device(), a, 0); uint64(got) != before[uint64(a)] {
					t.Fatalf("second recovery changed %v: %#x -> %#x", a, before[uint64(a)], uint64(got))
				}
			}
		})
	}
}

// TestCrashReplayDeterministic: the same Spec (seed included) under the
// same crash schedule yields byte-identical results — identical run
// stats AND an identical durable log region. This is what makes every
// torture repro line trustworthy.
func TestCrashReplayDeterministic(t *testing.T) {
	plan := fault.Plan{
		Trigger: fault.TriggerCommit, AfterCommits: 9,
		FlushBudget: 96, TearWords: true, Seed: 11,
	}
	run := func() ([]byte, int64) {
		p := plan
		spec := Spec{Design: "Silo", Workload: "Hash", Cores: 2, Txns: 40, Seed: 11, Fault: &p}
		m, _, err := RunMachine(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Crashed() {
			m.InjectCrash(m.Now())
		}
		var log []byte
		region := m.Region()
		for tid := 0; tid < region.Threads(); tid++ {
			log = append(log, m.Device().Peek(region.AreaBase(tid), int(region.Used(tid)))...)
		}
		return log, m.Commits()
	}
	logA, commitsA := run()
	logB, commitsB := run()
	if commitsA != commitsB {
		t.Fatalf("commit counts differ: %d vs %d", commitsA, commitsB)
	}
	if !bytes.Equal(logA, logB) {
		t.Fatalf("durable log regions differ (%d vs %d bytes)", len(logA), len(logB))
	}
	if len(logA) == 0 {
		t.Fatal("no log bytes to compare")
	}
}
