package harness

import (
	"bytes"
	"io"
	"testing"

	"silo/internal/telemetry"
)

// Attaching telemetry sinks must not perturb the simulation: the run
// record with a Chrome trace and an interval sampler recording is
// byte-identical to the bare run (stats.Run is comparable, so == is the
// full-struct check).
func TestTelemetrySinksDoNotPerturbRun(t *testing.T) {
	spec := Spec{Design: "Silo", Workload: "Btree", Cores: 2, Txns: 200, Seed: 9}
	bare, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	ct := telemetry.NewChromeTrace(io.Discard)
	sampler := telemetry.NewIntervalSampler(10_000)
	spec.Telemetry = telemetry.NewRecorder(ct, sampler)
	instrumented, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	if bare != instrumented {
		t.Fatalf("telemetry perturbed the run:\nbare:         %+v\ninstrumented: %+v", bare, instrumented)
	}
	if len(sampler.Windows()) == 0 {
		t.Error("sampler saw no events on an instrumented run")
	}
}

// An end-to-end recording of a real run must validate: well-formed JSON,
// monotone per-track timestamps, balanced slices, and the tracks the
// acceptance criteria name — per-core tx slices plus WPQ-depth and
// log-buffer-occupancy counter series.
func TestRecordedTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	ct := telemetry.NewChromeTrace(&buf)
	spec := Spec{
		Design: "Silo", Workload: "Btree", Cores: 2, Txns: 200, Seed: 9,
		Telemetry: telemetry.NewRecorder(ct),
	}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("recorded trace does not validate: %v", err)
	}
	if st.Events == 0 || st.ByPhase["B"] == 0 || st.ByPhase["B"] != st.ByPhase["E"] {
		t.Errorf("trace stats = %+v, want balanced non-zero tx slices", st)
	}
	for _, name := range []string{`"wpq-depth ch0"`, `"logbuf-occupancy core0"`, `"logbuf-occupancy core1"`} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("trace lacks counter series %s", name)
		}
	}
}
