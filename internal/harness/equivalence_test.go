package harness

import (
	"testing"

	"silo/internal/stats"
	"silo/internal/telemetry"
)

// eventLog records the probe-event stream verbatim so two runs can be
// compared event by event, not just by their end-of-run record.
type eventLog struct {
	events []telemetry.Event
}

func (l *eventLog) Event(e telemetry.Event) { l.events = append(l.events, e) }

// The cooperative scheduler must be observationally identical to the
// legacy goroutine shim: for every design x workload pair, the same seed
// produces the same run record (stats.Run is comparable, so == is the
// full-struct check) and the same telemetry event stream. This is the
// contract that let the engine core be rewritten without re-validating
// any paper figure.
func TestLegacyShimMatchesCooperativeScheduler(t *testing.T) {
	run := func(t *testing.T, design, wl string, legacy bool) (stats.Run, []telemetry.Event) {
		t.Helper()
		log := &eventLog{}
		r, err := Run(Spec{
			Design: design, Workload: wl, Cores: 2, Txns: 24, Seed: 7,
			LegacyEngine: legacy,
			Telemetry:    telemetry.NewRecorder(log),
		})
		if err != nil {
			t.Fatalf("%s/%s legacy=%v: %v", design, wl, legacy, err)
		}
		return r, log.events
	}

	for _, design := range DesignNames() {
		for _, wl := range Fig4Names() {
			design, wl := design, wl
			t.Run(design+"/"+wl, func(t *testing.T) {
				t.Parallel()
				coop, coopEv := run(t, design, wl, false)
				shim, shimEv := run(t, design, wl, true)
				if coop != shim {
					t.Errorf("run records diverge:\ncooperative: %+v\nlegacy shim: %+v", coop, shim)
				}
				if len(coopEv) != len(shimEv) {
					t.Fatalf("event streams diverge: %d cooperative events vs %d legacy", len(coopEv), len(shimEv))
				}
				for i := range coopEv {
					if coopEv[i] != shimEv[i] {
						t.Fatalf("event %d diverges:\ncooperative: %v\nlegacy shim: %v", i, coopEv[i], shimEv[i])
					}
				}
			})
		}
	}
}
