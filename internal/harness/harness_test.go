package harness

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"bytes"

	"silo/internal/core"
	"silo/internal/stats"
	"silo/internal/trace"
)

func coreOptions() core.Options { return core.Options{} }

func TestDesignFactoryAllNames(t *testing.T) {
	for _, d := range DesignNames() {
		if _, err := DesignFactory(d, coreOptions()); err != nil {
			t.Errorf("design %q: %v", d, err)
		}
	}
	if _, err := DesignFactory("Nope", coreOptions()); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestGetWorkloadAllNames(t *testing.T) {
	names := append([]string{}, WorkloadNames()...)
	names = append(names, "TPCC-Mix", "Rtree", "Ctrie", "TATP", "Bank", "Sweep40")
	for _, n := range names {
		w, err := GetWorkload(n)
		if err != nil || w == nil {
			t.Errorf("workload %q: %v", n, err)
		}
	}
	for _, bad := range []string{"nope", "Sweep", "Sweep0", "Sweepx"} {
		if _, err := GetWorkload(bad); err == nil {
			t.Errorf("bad workload %q accepted", bad)
		}
	}
}

func TestRunBasics(t *testing.T) {
	r, err := Run(Spec{Design: "Silo", Workload: "Queue", Cores: 2, Txns: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != 200 || r.Cores != 2 {
		t.Errorf("run record: %+v", r)
	}
	if r.Cycles <= 0 || r.Stores == 0 {
		t.Error("empty run")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	spec := Spec{Design: "Silo", Workload: "Hash", Cores: 2, Txns: 300, Seed: 5}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different runs:\n%+v\n%+v", a, b)
	}
	spec.Seed = 6
	c, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Spec{Design: "Nope", Workload: "Btree"}); err == nil {
		t.Error("bad design accepted")
	}
	if _, err := Run(Spec{Design: "Silo", Workload: "Nope"}); err == nil {
		t.Error("bad workload accepted")
	}
}

// TestGridShape runs a reduced grid and validates the paper's ordering
// claims: Silo has the highest throughput and Base the most media writes.
func TestGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	grid, err := Grid([]int{2}, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range WorkloadNames() {
		base := grid[GridKey{"Base", wl, 2}]
		siloRun := grid[GridKey{"Silo", wl, 2}]
		if siloRun.Throughput() <= base.Throughput() {
			t.Errorf("%s: Silo throughput %.1f <= Base %.1f", wl, siloRun.Throughput(), base.Throughput())
		}
		if siloRun.MediaWrites >= base.MediaWrites {
			t.Errorf("%s: Silo media writes %d >= Base %d", wl, siloRun.MediaWrites, base.MediaWrites)
		}
	}
	// Table rendering works and normalizes Base to 1.
	tbl := Fig11(grid, []int{2})[0]
	if !strings.Contains(tbl.String(), "Base") {
		t.Error("Fig11 table missing Base row")
	}
	if tbl.Rows[0][1] != "1.000" {
		t.Errorf("Base not normalized to 1: %v", tbl.Rows[0])
	}
	thr := Fig12(grid, []int{2})[0]
	if len(thr.Rows) != len(DesignNames()) {
		t.Error("Fig12 row count")
	}
}

func TestFig4Table(t *testing.T) {
	tbl, err := Fig4(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig4Names()) {
		t.Fatalf("Fig4 rows = %d", len(tbl.Rows))
	}
}

func TestFig13Table(t *testing.T) {
	tbl, err := Fig13(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("Fig13 rows = %d", len(tbl.Rows))
	}
	// Remaining <= Total on every row (reduction never adds logs).
	for _, row := range tbl.Rows {
		if row[1] < row[2] && len(row[1]) == len(row[2]) {
			t.Errorf("row %v: remaining exceeds total", row)
		}
	}
}

func TestStaticTables(t *testing.T) {
	for _, tbl := range []*stats.Table{Table1(0, 8), Table4(8, 0), ConfigTable()} {
		if len(tbl.Rows) == 0 || tbl.String() == "" {
			t.Errorf("table %q empty", tbl.Title)
		}
	}
	// Table IV rows: eADR, BBB, Silo.
	t4 := Table4(8, 0)
	if len(t4.Rows) != 3 || t4.Rows[2][0] != "Silo" {
		t.Errorf("Table IV shape: %v", t4.Rows)
	}
}

func TestFig15Flat(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	tbl, err := Fig15(1, 200, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Log buffer latency is off the critical path: every normalized value
	// stays within a few percent of 1.
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < 0.9 || v > 1.1 {
				t.Errorf("%s: normalized throughput %v far from 1 (Fig. 15 expects flat)", row[0], v)
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt for table debugging helpers

// TestTraceRecordReplayFidelity records a run and replays it under the
// same design: loads, stores, commits and PM traffic must match exactly,
// since the operation streams and the initial PM state are identical.
func TestTraceRecordReplayFidelity(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	spec := Spec{Design: "Silo", Workload: "Btree", Cores: 2, Txns: 300, Seed: 4}
	spec.Trace = w
	orig, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tr.Transactions()) != orig.Transactions {
		t.Fatalf("trace has %d txns, run committed %d", tr.Transactions(), orig.Transactions)
	}
	spec.Trace = nil
	rep, err := ReplayRun(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loads != orig.Loads || rep.Stores != orig.Stores || rep.Transactions != orig.Transactions {
		t.Errorf("replay op counts differ: %+v vs %+v", rep, orig)
	}
	if rep.Cycles != orig.Cycles || rep.MediaWrites != orig.MediaWrites {
		t.Errorf("replay timing/traffic differ: cycles %d vs %d, media %d vs %d",
			rep.Cycles, orig.Cycles, rep.MediaWrites, orig.MediaWrites)
	}
}

// TestTraceReplayAcrossDesigns replays one Btree trace under every design:
// op counts are pinned, while timing and traffic may differ.
func TestTraceReplayAcrossDesigns(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	spec := Spec{Design: "Silo", Workload: "Btree", Cores: 1, Txns: 150, Seed: 4, Trace: w}
	orig, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	tr, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ExtendedDesignNames() {
		r, err := ReplayRun(Spec{Design: d, Workload: "Btree", Cores: 1, Seed: 4}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stores != orig.Stores || r.Transactions != orig.Transactions {
			t.Errorf("%s: replay changed the op stream", d)
		}
	}
}

func TestOrderingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design run")
	}
	tbl, err := Ordering("Queue", 1, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ExtendedDesignNames()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Silo's commit stall must be the smallest among logging designs.
	stall := map[string]string{}
	for _, row := range tbl.Rows {
		stall[row[0]] = row[2]
	}
	silo, _ := strconv.ParseFloat(stall["Silo"], 64)
	morlog, _ := strconv.ParseFloat(stall["MorLog"], 64)
	if silo >= morlog {
		t.Errorf("Silo commit stall %v >= MorLog %v", silo, morlog)
	}
}

func TestLatencyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design run")
	}
	tbl, err := Latency("Queue", 1, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ExtendedDesignNames()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestEADRStudyTable(t *testing.T) {
	tbl, err := EADRStudy("YCSB", 1, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// eADR-SW's L1 accesses per tx must exceed SWLog's (cache pollution).
	sw, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	eadr, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if eadr <= sw {
		t.Errorf("eADR-SW L1 accesses %v <= SWLog %v; pollution not visible", eadr, sw)
	}
}

func TestRecoverySweepTable(t *testing.T) {
	tbl, err := RecoverySweep("Silo", "Queue", 2, 800, 3, []int64{300, 5000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		v := row[len(row)-1]
		if !strings.HasSuffix(v, "ok") {
			t.Errorf("crash at %s: verification %q", row[0], v)
		}
		parts := strings.SplitN(strings.TrimSuffix(v, " ok"), "/", 2)
		if len(parts) == 2 && parts[0] != parts[1] {
			t.Errorf("crash at %s: mismatches present: %s", row[0], v)
		}
	}
}

// TestCrashScanExhaustive crashes a small Silo run at every single
// operation index and verifies atomic durability each time.
func TestCrashScanExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive scan is slow")
	}
	spec := Spec{Design: "Silo", Workload: "Bank", Cores: 1, Txns: 40, Seed: 6}
	points, failures, err := CrashScan(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if points < 300 {
		t.Fatalf("scan covered only %d points", points)
	}
	if len(failures) != 0 {
		t.Fatalf("atomic durability violated at %d points: %v", len(failures), failures[:min(3, len(failures))])
	}
	t.Logf("exhaustive crash scan: %d crash points, all recovered correctly", points)
}

// TestCrashScanStridedAllDesigns runs a strided scan over every design.
func TestCrashScanStridedAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("scan is slow")
	}
	for _, d := range ExtendedDesignNames() {
		d := d
		t.Run(d, func(t *testing.T) {
			spec := Spec{Design: d, Workload: "Queue", Cores: 2, Txns: 60, Seed: 6}
			points, failures, err := CrashScan(spec, 37)
			if err != nil {
				t.Fatal(err)
			}
			if points == 0 {
				t.Fatal("no crash points")
			}
			if len(failures) != 0 {
				t.Fatalf("violations: %v", failures[:min(3, len(failures))])
			}
		})
	}
}

func TestHotspotTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design run")
	}
	tbl, err := Hotspot("Btree", 1, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ExtendedDesignNames()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	skew := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad skew %q", row[4])
		}
		skew[row[0]] = v
	}
	// Per-transaction log truncation makes Base reuse the same log lines;
	// its wear skew must dwarf Silo's.
	if skew["Base"] < 4*skew["Silo"] {
		t.Errorf("Base wear skew %.1f not >> Silo %.1f", skew["Base"], skew["Silo"])
	}
}

// TestGridParallelDeterminism: the grid runs concurrently across host
// CPUs, but each simulation is hermetic — two grids with the same seed
// must be identical.
func TestGridParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two grids")
	}
	a, err := Grid([]int{1}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid([]int{1}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("grid sizes differ")
	}
	for k, ra := range a {
		if rb := b[k]; ra != rb {
			t.Fatalf("grid not deterministic at %+v", k)
		}
	}
}
