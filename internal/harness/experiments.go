package harness

import (
	"fmt"
	"runtime"
	"sync"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/energy"
	"silo/internal/logging"
	"silo/internal/pm"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
)

// GridKey indexes one run in the Fig. 11/12 grid.
type GridKey struct {
	Design   string
	Workload string
	Cores    int
}

// Grid runs every (design × workload × cores) combination once and
// returns the run records; Fig11 and Fig12 both read from it so the
// expensive grid is simulated once. txnsPerCore transactions run on each
// core (weak scaling), so the cold-cache warm-up fraction is identical
// across core counts and the normalized comparisons stay fair. Runs are
// independent simulations, so they execute in parallel across host CPUs;
// results are deterministic regardless of parallelism.
func Grid(coresList []int, txnsPerCore int, seed int64) (map[GridKey]stats.Run, error) {
	var keys []GridKey
	for _, cores := range coresList {
		for _, wl := range WorkloadNames() {
			for _, d := range DesignNames() {
				keys = append(keys, GridKey{d, wl, cores})
			}
		}
	}
	results := make([]stats.Run, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k GridKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(Spec{
				Design: k.Design, Workload: k.Workload, Cores: k.Cores,
				Txns: txnsPerCore * k.Cores, Seed: seed,
			})
		}(i, k)
	}
	wg.Wait()
	out := make(map[GridKey]stats.Run, len(keys))
	for i, k := range keys {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[k] = results[i]
	}
	return out, nil
}

// gridTable renders one metric of the grid for one core count, normalized
// per workload to Base, with a geometric-mean Average column.
func gridTable(grid map[GridKey]stats.Run, cores int, title string, metric func(stats.Run) float64) *stats.Table {
	cols := append([]string{"Design"}, WorkloadNames()...)
	cols = append(cols, "Average")
	t := stats.NewTable(fmt.Sprintf("%s (%d cores, normalized to Base)", title, cores), cols...)
	for _, d := range DesignNames() {
		vals := make([]float64, 0, len(WorkloadNames())+1)
		for _, wl := range WorkloadNames() {
			base := metric(grid[GridKey{"Base", wl, cores}])
			v := metric(grid[GridKey{d, wl, cores}])
			if base > 0 {
				vals = append(vals, v/base)
			} else {
				vals = append(vals, 0)
			}
		}
		vals = append(vals, stats.GeoMean(vals))
		t.AddFloats(d, "%.3f", vals...)
	}
	return t
}

// Fig11 renders the normalized PM media write traffic (one table per core
// count), matching Fig. 11(a–d).
func Fig11(grid map[GridKey]stats.Run, coresList []int) []*stats.Table {
	var out []*stats.Table
	for _, c := range coresList {
		out = append(out, gridTable(grid, c, "Fig. 11: write traffic to PM media",
			func(r stats.Run) float64 { return float64(r.MediaWrites) }))
	}
	return out
}

// Fig12 renders the normalized transaction throughput (one table per core
// count), matching Fig. 12(a–d).
func Fig12(grid map[GridKey]stats.Run, coresList []int) []*stats.Table {
	var out []*stats.Table
	for _, c := range coresList {
		out = append(out, gridTable(grid, c, "Fig. 12: transaction throughput",
			func(r stats.Run) float64 { return r.Throughput() }))
	}
	return out
}

// Fig4 measures the write size per transaction for the eleven workloads.
func Fig4(txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable("Fig. 4: write size (B) per transaction",
		"Workload", "Bytes/Tx", "Stores/Tx")
	for _, wl := range Fig4Names() {
		name := wl
		if wl == "TPCC" {
			name = "TPCC-Mix" // Fig. 4 profiles the full application
		}
		r, err := Run(Spec{Design: "Silo", Workload: name, Cores: 1, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(wl,
			fmt.Sprintf("%.1f", r.WriteBytesPerTx()),
			fmt.Sprintf("%.1f", float64(r.Stores)/float64(r.Transactions)))
	}
	return t, nil
}

// Fig13 reports the total vs remaining on-chip log entries per
// transaction under Silo, plus the reduction rate (§VI-D). TPCC runs all
// five transaction types, as in the paper's capacity study.
func Fig13(txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable("Fig. 13: on-chip log entries per transaction (Silo)",
		"Workload", "Total/Tx", "Remaining/Tx", "MaxRemaining", "Reduced%")
	names := []string{"Array", "Btree", "Hash", "Queue", "RBtree", "TPCC-Mix", "YCSB"}
	for _, wl := range names {
		m, _, err := RunMachine(Spec{Design: "Silo", Workload: wl, Cores: 1, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		s, ok := m.Design().(*core.Silo)
		if !ok {
			return nil, fmt.Errorf("harness: Fig13 requires the Silo design")
		}
		total, remaining, maxRem := s.LogReduction()
		red := 0.0
		if total > 0 {
			red = (1 - remaining/total) * 100
		}
		t.AddRow(wl,
			fmt.Sprintf("%.1f", total),
			fmt.Sprintf("%.1f", remaining),
			fmt.Sprintf("%d", maxRem),
			fmt.Sprintf("%.1f", red))
	}
	return t, nil
}

// Fig14 runs the large-transaction study: the per-transaction write set is
// scaled to 1–16× the log buffer capacity by repeating each workload's
// operation, and throughput plus media writes are normalized to the 1×
// configuration per benchmark.
func Fig14(cores, txns int, seed int64) (throughput, writes *stats.Table, err error) {
	mults := []int{1, 2, 4, 8, 16}
	cols := []string{"Workload", "1x", "2x", "4x", "8x", "16x"}
	throughput = stats.NewTable("Fig. 14a: normalized throughput vs write-set size (Silo)", cols...)
	writes = stats.NewTable("Fig. 14b: normalized PM media writes vs write-set size (Silo)", cols...)

	for _, wl := range WorkloadNames() {
		// Calibrate: average words written per op at 1 op/tx.
		cal, err := Run(Spec{Design: "Silo", Workload: wl, Cores: 1, Txns: 300, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		wordsPerOp := float64(cal.Stores) / float64(cal.Transactions)
		if wordsPerOp < 1 {
			wordsPerOp = 1
		}
		var thr, wr []float64
		for _, mult := range mults {
			target := float64(mult * logging.DefaultBufferEntries)
			ops := int(target/wordsPerOp + 0.5)
			if ops < 1 {
				ops = 1
			}
			r, err := Run(Spec{Design: "Silo", Workload: wl, Cores: cores, Txns: txns,
				Seed: seed, OpsPerTx: ops})
			if err != nil {
				return nil, nil, err
			}
			// Per-op rates, so the comparison isolates the overflow cost
			// from the transactions simply being bigger.
			thr = append(thr, r.Throughput()*float64(ops))
			wr = append(wr, float64(r.MediaWrites)/float64(r.Transactions)/float64(ops))
		}
		throughput.AddFloats(wl, "%.3f", stats.Normalize(thr, thr[0])...)
		writes.AddFloats(wl, "%.3f", stats.Normalize(wr, wr[0])...)
	}
	return throughput, writes, nil
}

// Fig15 sweeps the log buffer access latency (8–128 cycles) and reports
// Silo's throughput normalized to the 8-cycle configuration.
func Fig15(cores, txns int, seed int64, latencies []sim.Cycle) (*stats.Table, error) {
	if len(latencies) == 0 {
		latencies = []sim.Cycle{8, 16, 32, 64, 96, 128}
	}
	cols := []string{"Workload"}
	for _, l := range latencies {
		cols = append(cols, fmt.Sprintf("%dcy", l))
	}
	t := stats.NewTable("Fig. 15: throughput vs log buffer latency (Silo, normalized to 8 cycles)", cols...)
	for _, wl := range WorkloadNames() {
		var vals []float64
		for _, lat := range latencies {
			r, err := Run(Spec{Design: "Silo", Workload: wl, Cores: cores, Txns: txns,
				Seed: seed, LogBufLatency: lat})
			if err != nil {
				return nil, err
			}
			vals = append(vals, r.Throughput())
		}
		t.AddFloats(wl, "%.3f", stats.Normalize(vals, vals[0])...)
	}
	return t, nil
}

// Table1 renders the hardware overhead of Silo (Table I).
func Table1(entries, cores int) *stats.Table {
	if entries <= 0 {
		entries = logging.DefaultBufferEntries
	}
	o := energy.Overhead(entries)
	t := stats.NewTable("Table I: hardware overhead of Silo", "Component", "Type", "Size")
	t.AddRow("Log buffer", "SRAM",
		fmt.Sprintf("%d entries, %dB per core", entries, o.LogBufferBytesPerCore))
	t.AddRow("64-bit comparators", "CMOS cells",
		fmt.Sprintf("%d comparators per log buffer", o.ComparatorsPerBuffer))
	t.AddRow("Battery", "Lithium thin-film",
		fmt.Sprintf("%.3gmm3 per log buffer", o.BatteryLiMM3PerBuffer))
	t.AddRow("Log head and tail", "Flip-flops",
		fmt.Sprintf("%dB per core", o.HeadTailBytesPerCore))
	return t
}

// Table4 renders the battery requirements of eADR, BBB and Silo (Table IV).
func Table4(cores, entries int) *stats.Table {
	if entries <= 0 {
		entries = logging.DefaultBufferEntries
	}
	hc := cache.DefaultHierarchyConfig()
	cacheBytes := int64(cores)*int64(hc.L1.Size+hc.L2.Size) + int64(hc.L3.Size)
	domains := []energy.Domain{
		energy.EADRDomain(cacheBytes),
		energy.BBBDomain(cores),
		energy.SiloDomain(cores, entries),
	}
	t := stats.NewTable(fmt.Sprintf("Table IV: battery requirements (%d cores)", cores),
		"System", "FlushSize(KB)", "FlushEnergy(uJ)", "Cap(mm3;mm2)", "Li(mm3;mm2)")
	for _, d := range domains {
		cap, li := d.Cap(), d.Li()
		t.AddRow(d.Name,
			fmt.Sprintf("%.4g", float64(d.FlushBytes)/1024),
			fmt.Sprintf("%.4g", d.FlushEnergyMicroJ()),
			fmt.Sprintf("%.3g; %.3g", cap.VolumeMM3, cap.AreaMM2),
			fmt.Sprintf("%.3g; %.3g", li.VolumeMM3, li.AreaMM2))
	}
	return t
}

// Ordering reproduces §II-D / Fig. 3 as a measurement: for every design
// (including the software-logging and pure undo/redo schemes), the average
// cycles a transaction spends stalled on persists at store time and at
// commit time — the two ordering constraints Silo eliminates.
func Ordering(workloadName string, cores, txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("Ordering constraints on %s (%d cores): stall cycles per transaction", workloadName, cores),
		"Design", "StoreStall/Tx", "CommitStall/Tx", "Throughput(tx/Mcy)")
	for _, d := range ExtendedDesignNames() {
		r, err := Run(Spec{Design: d, Workload: workloadName, Cores: cores, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		tx := float64(r.Transactions)
		t.AddRow(d,
			fmt.Sprintf("%.1f", float64(r.StoreStallCycles)/tx),
			fmt.Sprintf("%.1f", float64(r.CommitStallCycles)/tx),
			fmt.Sprintf("%.1f", r.Throughput()))
	}
	return t, nil
}

// Latency reports the commit-stall and whole-transaction latency
// distributions per design — the tail-latency view of the ordering
// constraints (a transaction behind a Base/SWLog design sees every
// persist; behind Silo it sees a fixed ACK).
func Latency(workloadName string, cores, txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("Commit and transaction latency on %s (%d cores), cycles", workloadName, cores),
		"Design", "CommitMean", "CommitP50", "CommitP99", "TxMean", "TxP99")
	for _, d := range ExtendedDesignNames() {
		m, _, err := RunMachine(Spec{Design: d, Workload: workloadName, Cores: cores, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		ch, th := m.CommitHist(), m.TxHist()
		t.AddRow(d,
			fmt.Sprintf("%.1f", ch.Mean()),
			fmt.Sprintf("%d", ch.Percentile(50)),
			fmt.Sprintf("%d", ch.Percentile(99)),
			fmt.Sprintf("%.1f", th.Mean()),
			fmt.Sprintf("%d", th.Percentile(99)))
	}
	return t, nil
}

// EADRStudy reproduces the §II-C argument: software logging on an eADR
// platform avoids the flush instructions but pollutes the caches with an
// append-only log stream. The table contrasts eADR-SW against Silo (and
// plain SWLog on ADR) on throughput, L1 behaviour and PM traffic.
func EADRStudy(workloadName string, cores, txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("eADR software logging vs hardware logging on %s (%d cores)", workloadName, cores),
		"Design", "Thr(tx/Mcy)", "L1Miss%", "L1Writes/Tx", "MediaWr/Tx")
	for _, d := range []string{"SWLog", "eADR-SW", "Silo"} {
		r, err := Run(Spec{Design: d, Workload: workloadName, Cores: cores, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		miss := 0.0
		if acc := r.L1Hits + r.L1Misses; acc > 0 {
			miss = 100 * float64(r.L1Misses) / float64(acc)
		}
		t.AddRow(d,
			fmt.Sprintf("%.1f", r.Throughput()),
			fmt.Sprintf("%.2f", miss),
			fmt.Sprintf("%.1f", float64(r.L1Hits+r.L1Misses)/float64(r.Transactions)),
			fmt.Sprintf("%.2f", float64(r.MediaWrites)/float64(r.Transactions)))
	}
	return t, nil
}

// RecoverySweep crashes a run at several points and reports the recovery
// work and the verification outcome — §III-G quantified.
func RecoverySweep(design, workloadName string, cores, txns int, seed int64, points []int64) (*stats.Table, error) {
	if len(points) == 0 {
		points = []int64{500, 2000, 8000, 32000}
	}
	t := stats.NewTable(
		fmt.Sprintf("Crash recovery sweep: %s on %s (%d cores)", design, workloadName, cores),
		"CrashAtOp", "Committed", "Records", "Redo", "Undo", "Discarded", "RecoveryUs", "Verified")
	for _, at := range points {
		m, _, err := RunMachine(Spec{Design: design, Workload: workloadName, Cores: cores,
			Txns: txns, Seed: seed, CrashAtOp: at})
		if err != nil {
			return nil, err
		}
		if !m.Crashed() {
			m.InjectCrash(m.Now())
		}
		rep := recovery.Recover(m.Device(), m.Region())
		bad := 0
		checked := 0
		for _, a := range m.WrittenWords() {
			want, ok := m.GoldenCommitted(a)
			if !ok {
				continue
			}
			checked++
			if m.Device().PeekWord(a) != want {
				bad++
			}
		}
		verdict := fmt.Sprintf("%d/%d ok", checked-bad, checked)
		// Recovery time estimate on the simulated machine: scan every
		// record (PM read) + apply every replay/revoke (PM write), at the
		// Table II latencies and 2 GHz.
		pmCfg := m.Device().Config()
		recCycles := int64(rep.TotalRecords)*int64(pmCfg.ReadLatency) +
			int64(rep.RedoApplied+rep.UndoApplied)*int64(pmCfg.WriteLatency)
		t.AddRow(fmt.Sprintf("%d", at),
			fmt.Sprintf("%d", m.Commits()),
			fmt.Sprintf("%d", rep.TotalRecords),
			fmt.Sprintf("%d", rep.RedoApplied),
			fmt.Sprintf("%d", rep.UndoApplied),
			fmt.Sprintf("%d", rep.Discarded),
			fmt.Sprintf("%.2f", float64(recCycles)/2000),
			verdict)
	}
	return t, nil
}

// CrashScan exhaustively injects a power failure at *every* operation
// index of a run (or every `stride`-th) and verifies atomic durability
// after recovery each time. It returns the number of crash points tested
// and descriptions of any violations — the strongest correctness sweep in
// the repository, feasible because runs are deterministic.
func CrashScan(spec Spec, stride int64) (points int, failures []string, err error) {
	if stride < 1 {
		stride = 1
	}
	// Determine the run length first.
	probe := spec
	probe.CrashAtOp = 0
	m0, _, err := RunMachine(probe)
	if err != nil {
		return 0, nil, err
	}
	m0.Device() // keep the linter honest about usage
	totalOps := int64(0)
	{
		// Re-derive the op count by recording a trace-less run: use the
		// machine's engine op counters.
		e := m0.Engine(spec.Seed)
		for _, k := range []sim.OpKind{sim.OpLoad, sim.OpStore, sim.OpTxBegin, sim.OpTxEnd, sim.OpCompute} {
			totalOps += e.Ops(k)
		}
	}
	for at := stride; at <= totalOps; at += stride {
		s := spec
		s.CrashAtOp = at
		m, _, err := RunMachine(s)
		if err != nil {
			return points, failures, err
		}
		if !m.Crashed() {
			m.InjectCrash(m.Now())
		}
		recovery.Recover(m.Device(), m.Region())
		points++
		for _, a := range m.WrittenWords() {
			want, ok := m.GoldenCommitted(a)
			if !ok {
				continue
			}
			if got := m.Device().PeekWord(a); got != want {
				failures = append(failures,
					fmt.Sprintf("crash@%d: %v = %#x want %#x", at, a, uint64(got), uint64(want)))
				if len(failures) > 20 {
					return points, failures, nil
				}
				break
			}
		}
	}
	return points, failures, nil
}

// Hotspot reports the media wear distribution per design: endurance is
// governed not just by total writes (Fig. 11) but by where they land —
// log-as-backup designs hammer the (reused) log region lines while Silo's
// writes follow the data. Skew = hottest line vs mean; the hottest line
// dies Skew× sooner than the average one before wear leveling.
func Hotspot(workloadName string, cores, txns int, seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("Media wear distribution on %s (%d cores)", workloadName, cores),
		"Design", "MediaWrites", "LinesTouched", "MaxLine", "Skew", "HottestIn")
	for _, d := range ExtendedDesignNames() {
		m, r, err := RunMachine(Spec{Design: d, Workload: workloadName, Cores: cores, Txns: txns, Seed: seed})
		if err != nil {
			return nil, err
		}
		m.Device().DrainAll()
		w := m.Device().WearStats()
		region := "data"
		if m.Device().Config().Layout.InLog(w.HottestLine) {
			region = "log"
		}
		skew := 0.0
		if w.MeanWrites > 0 {
			skew = float64(w.MaxWrites) / w.MeanWrites
		}
		t.AddRow(d,
			fmt.Sprintf("%d", r.MediaWrites),
			fmt.Sprintf("%d", w.LinesTouched),
			fmt.Sprintf("%d", w.MaxWrites),
			fmt.Sprintf("%.1f", skew),
			region)
	}
	return t, nil
}

// ConfigTable renders the simulated system configuration (Table II).
func ConfigTable() *stats.Table {
	hc := cache.DefaultHierarchyConfig()
	p := pm.DefaultConfig()
	t := stats.NewTable("Table II: simulated system configuration", "Component", "Configuration")
	t.AddRow("Cores", "x86-64-like, 2 GHz, 1 thread/core")
	t.AddRow("L1 I/D", fmt.Sprintf("private, %dKB, %d-way, %d cycles", hc.L1.Size>>10, hc.L1.Ways, hc.L1.Latency))
	t.AddRow("L2", fmt.Sprintf("private, %dKB, %d-way, %d cycles", hc.L2.Size>>10, hc.L2.Ways, hc.L2.Latency))
	t.AddRow("L3", fmt.Sprintf("shared, %dMB, %d-way, %d cycles", hc.L3.Size>>20, hc.L3.Ways, hc.L3.Latency))
	t.AddRow("Memory controller", fmt.Sprintf("FRFCFS-like, %d-entry WPQ in ADR domain", p.WPQEntries))
	t.AddRow("Log buffer", fmt.Sprintf("%d entries (%dB)/core, FIFO, 8 cycles, battery backed",
		logging.DefaultBufferEntries, logging.DefaultBufferEntries*logging.OnChipEntryBytes))
	t.AddRow("PM", fmt.Sprintf("phase-change memory; read %d / write %d cycles; on-PM buffer %dB lines",
		p.ReadLatency, p.WriteLatency, p.BufLineSize))
	return t
}
