package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"silo/internal/stats"
)

// BenchSchema versions the BENCH_silo.json format; bump it when a field
// changes meaning so trend tooling can refuse to compare unlike runs.
const BenchSchema = 1

// BenchRow is one (design × workload) cell of the benchmark snapshot.
type BenchRow struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`

	Throughput      float64 `json:"throughput_tx_per_mcycle"`
	WriteBytesPerTx float64 `json:"write_bytes_per_tx"`
	MediaWrites     int64   `json:"media_writes"`
	Cycles          int64   `json:"cycles"`
	Transactions    int64   `json:"transactions"`

	// Commit-stall percentiles from machine.CommitHist (cycles a core
	// stalls at Tx_end), and whole-transaction latency percentiles.
	CommitP50 int64 `json:"commit_stall_p50_cycles"`
	CommitP99 int64 `json:"commit_stall_p99_cycles"`
	TxP50     int64 `json:"tx_latency_p50_cycles"`
	TxP99     int64 `json:"tx_latency_p99_cycles"`
}

// BenchReport is the machine-readable performance snapshot silo-bench
// emits: the repo's perf trajectory lives in the committed history of
// this file. No wall-clock timestamp is recorded — two runs of the same
// tree must produce byte-identical reports.
type BenchReport struct {
	Schema      int        `json:"schema"`
	Cores       int        `json:"cores"`
	TxnsPerCore int        `json:"txns_per_core"`
	Seed        int64      `json:"seed"`
	Rows        []BenchRow `json:"rows"`
}

// Bench runs every (design × workload) pair at the given core count and
// returns the snapshot. Runs execute in parallel across host CPUs like
// Grid; the audit layer is off (perf numbers, not correctness runs).
func Bench(cores, txnsPerCore int, seed int64) (BenchReport, error) {
	type key struct{ d, w string }
	var keys []key
	for _, w := range WorkloadNames() {
		for _, d := range DesignNames() {
			keys = append(keys, key{d, w})
		}
	}
	rows := make([]BenchRow, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, r, err := RunMachine(Spec{
				Design: k.d, Workload: k.w, Cores: cores,
				Txns: txnsPerCore * cores, Seed: seed,
				DisableAudit: true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			ch, th := m.CommitHist(), m.TxHist()
			rows[i] = BenchRow{
				Design:          k.d,
				Workload:        k.w,
				Throughput:      r.Throughput(),
				WriteBytesPerTx: r.WriteBytesPerTx(),
				MediaWrites:     r.MediaWrites,
				Cycles:          r.Cycles,
				Transactions:    r.Transactions,
				CommitP50:       ch.Percentile(50),
				CommitP99:       ch.Percentile(99),
				TxP50:           th.Percentile(50),
				TxP99:           th.Percentile(99),
			}
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return BenchReport{}, err
		}
	}
	return BenchReport{
		Schema:      BenchSchema,
		Cores:       cores,
		TxnsPerCore: txnsPerCore,
		Seed:        seed,
		Rows:        rows,
	}, nil
}

// WriteJSON writes the report as indented JSON (stable field and row
// order, so diffs of the committed snapshot stay reviewable).
func (b BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Table renders the snapshot as a text table for terminal consumption.
func (b BenchReport) Table() *stats.Table {
	t := stats.NewTable("Benchmark snapshot (throughput tx/Mcycle, commit-stall p50/p99 cycles)",
		"Design", "Workload", "Throughput", "WB/Tx", "CommitP50", "CommitP99", "TxP99")
	for _, r := range b.Rows {
		t.AddRow(r.Design, r.Workload,
			fmt.Sprintf("%.2f", r.Throughput), fmt.Sprintf("%.1f", r.WriteBytesPerTx),
			fmt.Sprintf("%d", r.CommitP50), fmt.Sprintf("%d", r.CommitP99),
			fmt.Sprintf("%d", r.TxP99))
	}
	return t
}
