package harness

import (
	"testing"

	"silo/internal/machine"
	"silo/internal/telemetry"
)

// A machine built from recycled parts must be observationally identical
// to one built from scratch: same run record (stats.Run is comparable,
// so == is the full-struct check) and same telemetry event stream, for
// every design × workload pair. The recycler is deliberately polluted
// first — its pooled tables carry a different design's and workload's
// leftover capacity — so the test proves reset-in-place, not just reuse
// of compatible state. This is the contract that lets fleet workers
// recycle simulation state across arbitrary campaign sequences.
func TestRecycledMachineMatchesFresh(t *testing.T) {
	run := func(t *testing.T, design, wl string, rec *machine.Recycler) ([]telemetry.Event, interface{}) {
		t.Helper()
		log := &eventLog{}
		r, err := Run(Spec{
			Design: design, Workload: wl, Cores: 2, Txns: 24, Seed: 7,
			Recycle:   rec,
			Telemetry: telemetry.NewRecorder(log),
		})
		if err != nil {
			t.Fatalf("%s/%s recycled=%v: %v", design, wl, rec != nil, err)
		}
		return log.events, r
	}

	for _, design := range DesignNames() {
		for _, wl := range Fig4Names() {
			design, wl := design, wl
			t.Run(design+"/"+wl, func(t *testing.T) {
				t.Parallel()
				freshEv, fresh := run(t, design, wl, nil)

				// Pollute the recycler with a run of a different design and
				// workload, then build the machine under test from its pools.
				rec := machine.NewRecycler()
				otherDesign, otherWl := "Silo", "Hash"
				if design == otherDesign {
					otherDesign = "Base"
				}
				if wl == otherWl {
					otherWl = "Array"
				}
				run(t, otherDesign, otherWl, rec)
				reusedEv, reused := run(t, design, wl, rec)

				if fresh != reused {
					t.Errorf("run records diverge:\nfresh:   %+v\nrecycled: %+v", fresh, reused)
				}
				if len(freshEv) != len(reusedEv) {
					t.Fatalf("event streams diverge: %d fresh events vs %d recycled", len(freshEv), len(reusedEv))
				}
				for i := range freshEv {
					if freshEv[i] != reusedEv[i] {
						t.Fatalf("event %d diverges:\nfresh:   %v\nrecycled: %v", i, freshEv[i], reusedEv[i])
					}
				}
			})
		}
	}
}
