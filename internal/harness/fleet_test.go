package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"silo/internal/audit"
	"silo/internal/core"
	"silo/internal/fault"
	"silo/internal/telemetry"
)

// fleetConfig is a small sweep with a synthetic executor, so fleet
// plumbing tests don't pay for real simulations.
func fleetConfig(campaigns int, run func(Campaign) CampaignOutcome) TortureConfig {
	return TortureConfig{
		Seed:      4,
		Campaigns: campaigns,
		Txns:      8,
		Shrink:    false,
		Backoff:   time.Millisecond,
		Run:       run,
	}
}

// A campaign that panics must become one TortureFailure; the rest of the
// fleet completes and aggregates normally.
func TestFleetContainsPanickingCampaign(t *testing.T) {
	cfg := fleetConfig(6, func(c Campaign) CampaignOutcome {
		if c.Index == 3 {
			panic("synthetic campaign panic")
		}
		return CampaignOutcome{Campaign: c, Commits: 1}
	})
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", len(res.Failures), res.Summary())
	}
	f := res.Failures[0].Outcome
	if f.Campaign.Index != 3 || !f.Panicked {
		t.Errorf("failure = index %d panicked=%v", f.Campaign.Index, f.Panicked)
	}
	if !strings.Contains(f.Err.Error(), "synthetic campaign panic") {
		t.Errorf("err = %v", f.Err)
	}
	if len(f.Trail) == 0 {
		t.Error("no stack excerpt captured for the panic")
	}
	if res.Commits != 5 {
		t.Errorf("surviving campaigns not aggregated: commits = %d", res.Commits)
	}
	if !strings.Contains(res.Summary(), f.Campaign.Repro()) {
		t.Error("summary lacks the failing campaign's repro line")
	}
}

// Infra failures are retried with backoff; a campaign that recovers on a
// later attempt counts as clean.
func TestFleetRetriesInfraFlakes(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	cfg := fleetConfig(3, func(c Campaign) CampaignOutcome {
		mu.Lock()
		attempts[c.Index]++
		n := attempts[c.Index]
		mu.Unlock()
		if c.Index == 1 && n <= 2 {
			return CampaignOutcome{Campaign: c, Err: InfraError{errors.New("flaky host")}}
		}
		return CampaignOutcome{Campaign: c}
	})
	cfg.Retries = 3
	var recorded []Record
	cfg.OnRecord = func(r Record) {
		mu.Lock()
		recorded = append(recorded, r)
		mu.Unlock()
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || len(res.Infra) != 0 {
		t.Fatalf("recovered flake still reported:\n%s", res.Summary())
	}
	if attempts[1] != 3 {
		t.Errorf("campaign 1 ran %d times, want 3", attempts[1])
	}
	for _, r := range recorded {
		if r.Index == 1 && r.Attempts != 3 {
			t.Errorf("record attempts = %d, want 3", r.Attempts)
		}
	}
}

// A campaign whose infra failures outlast the retry budget lands in
// Infra — visible, with its attempt count — without failing Ok().
func TestFleetReportsExhaustedInfraRetries(t *testing.T) {
	cfg := fleetConfig(1, func(c Campaign) CampaignOutcome {
		return CampaignOutcome{Campaign: c, Err: InfraError{errors.New("host out of memory")}}
	})
	cfg.Retries = 1
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("infra-only sweep failed Ok():\n%s", res.Summary())
	}
	if len(res.Infra) != 1 || res.Infra[0].Outcome.Attempts != 2 {
		t.Fatalf("infra = %+v", res.Infra)
	}
	if !strings.Contains(res.Summary(), "infra: campaign 0") {
		t.Errorf("summary lacks infra report:\n%s", res.Summary())
	}
}

// The wall-clock watchdog abandons a wedged campaign and reports it as
// an infra timeout; the fleet is not held hostage.
func TestFleetWallClockWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // unblock the abandoned goroutine at test end
	cfg := fleetConfig(3, func(c Campaign) CampaignOutcome {
		if c.Index == 2 {
			<-release
		}
		return CampaignOutcome{Campaign: c}
	})
	cfg.WallBudget = 50 * time.Millisecond
	cfg.Retries = -1
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("timeout failed Ok():\n%s", res.Summary())
	}
	if len(res.Infra) != 1 {
		t.Fatalf("infra = %d, want 1", len(res.Infra))
	}
	o := res.Infra[0].Outcome
	if !o.TimedOut || o.Campaign.Index != 2 || !IsInfra(o.Err) {
		t.Errorf("outcome = %+v", o)
	}
}

// The sim-cycle watchdog kills a run that makes no progress to
// completion (a livelocked design would otherwise spin the simulated
// clock forever) and classifies it as infra, not a durability verdict.
func TestCampaignSimCycleWatchdog(t *testing.T) {
	c := Campaign{Spec: Spec{
		Design: "Silo", Workload: "Array", Cores: 1, Txns: 1 << 20,
		Seed: 3, MaxCycles: 500,
	}, Plan: fault.Plan{Trigger: fault.TriggerNone}}
	out := RunCampaignContained(c)
	if !out.TimedOut || !IsInfra(out.Err) {
		t.Fatalf("outcome = %+v", out)
	}
	if !strings.Contains(out.Err.Error(), "sim-cycle watchdog") {
		t.Errorf("err = %v", out.Err)
	}
}

// A closed Stop channel drains the sweep: unstarted campaigns are
// skipped, the result says so, and the summary names the interruption.
func TestFleetStopDrains(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	cfg := fleetConfig(8, func(c Campaign) CampaignOutcome {
		t.Error("campaign ran despite closed Stop")
		return CampaignOutcome{Campaign: c}
	})
	cfg.Stop = stop
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 8 || !res.Interrupted {
		t.Fatalf("skipped=%d interrupted=%v", res.Skipped, res.Interrupted)
	}
	if !strings.Contains(res.Summary(), "interrupted: 8 campaigns skipped") {
		t.Errorf("summary lacks interruption notice:\n%s", res.Summary())
	}
}

// Interrupt + resume must reproduce the uninterrupted sweep's aggregates
// byte for byte, with the resumed half replayed from the JSONL stream.
func TestFleetResumeByteIdenticalAggregates(t *testing.T) {
	base := TortureConfig{Seed: 6, Campaigns: 8, Txns: 8, Shrink: false}

	full, err := Torture(base)
	if err != nil {
		t.Fatal(err)
	}

	// Run again streaming records, keep only the first 5 indices —
	// simulating a sweep interrupted partway through its checkpoint file.
	var mu sync.Mutex
	var stream bytes.Buffer
	cfg := base
	cfg.OnRecord = func(r Record) {
		mu.Lock()
		defer mu.Unlock()
		if r.Index < 5 {
			if err := WriteRecord(&stream, r); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := Torture(cfg); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("checkpoint holds %d records, want 5", len(recs))
	}
	resumedRuns := 0
	cfg = base
	cfg.Resume = recs
	cfg.Run = func(c Campaign) CampaignOutcome {
		mu.Lock()
		resumedRuns++
		mu.Unlock()
		return RunCampaign(c)
	}
	resumed, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumedRuns != 3 {
		t.Errorf("resumed sweep re-executed %d campaigns, want 3", resumedRuns)
	}
	if full.Summary() != resumed.Summary() {
		t.Errorf("aggregates differ after resume:\n--- full ---\n%s--- resumed ---\n%s",
			full.Summary(), resumed.Summary())
	}
}

// TraceDir re-runs only the failing campaigns with a Chrome-trace sink:
// the failure gets a validated trace file and a summary pointer, the
// passing campaigns get nothing.
func TestFleetTracesFailingCampaigns(t *testing.T) {
	dir := t.TempDir()
	cfg := fleetConfig(3, func(c Campaign) CampaignOutcome {
		// The trace re-run attaches a recorder via Spec.Telemetry; emit a
		// tiny tx lifecycle through it so the recording has real events.
		if tel := c.Spec.Telemetry; tel.Enabled() {
			tel.TxBegin(0, 100, 0)
			tel.TxCommit(0, 250, 10, 2, 150)
		}
		if c.Index == 1 {
			return CampaignOutcome{Campaign: c, Mismatches: []string{"0x10 = 0 want 1"}}
		}
		return CampaignOutcome{Campaign: c}
	})
	cfg.TraceDir = dir
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", len(res.Failures), res.Summary())
	}
	p := res.Failures[0].TracePath
	if want := filepath.Join(dir, "campaign-1.trace.json"); p != want {
		t.Fatalf("trace path = %q, want %q", p, want)
	}
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts, err := telemetry.ValidateChromeTrace(f)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if ts.Events == 0 {
		t.Error("trace recorded no events")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("trace dir holds %d files, want 1 (passing campaigns must not be traced)", len(entries))
	}
	if !strings.Contains(res.Summary(), p) {
		t.Errorf("summary lacks the trace path:\n%s", res.Summary())
	}
}

// A seeded §III-G ordering bug — crash-flushing a committed
// transaction's redo records before its commit ID tuple — must be caught
// by the named crash-flush-order invariant. The golden shadow cannot see
// it: with an unbounded battery all records survive, and recovery's scan
// finds the tuple no matter where it sits.
func TestAuditorCatchesRedoBeforeCommitTuple(t *testing.T) {
	c := Campaign{Spec: Spec{
		Design: "Silo", Workload: "Array", Cores: 1, Txns: 4, Seed: 7,
		SiloOpts: core.Options{DebugRedoBeforeCommit: true},
	}, Plan: fault.Plan{Trigger: fault.TriggerCommit, AfterCommits: 1, Seed: 7}}

	out := RunCampaignContained(c)
	if out.Invariant != audit.InvCrashOrder {
		t.Fatalf("invariant = %q (err %v), want %q", out.Invariant, out.Err, audit.InvCrashOrder)
	}
	if !out.Panicked || len(out.Trail) == 0 {
		t.Errorf("contained violation lost its panic/trail: %+v", out)
	}

	// Same bug, auditor off: the end-to-end verdict is clean — which is
	// exactly why the ordering rule needs a runtime invariant.
	blind := c
	blind.Spec.DisableAudit = true
	if out := RunCampaignContained(blind); out.Failed() {
		t.Fatalf("golden shadow caught the ordering bug; mutation premise broken: %v, %v",
			out.Err, out.Mismatches)
	}

	// And without the seeded bug the invariant is quiet.
	clean := c
	clean.Spec.SiloOpts = core.Options{}
	if out := RunCampaignContained(clean); out.Failed() {
		t.Fatalf("clean campaign failed: %v, %v", out.Err, out.Mismatches)
	}
}

// Shrink must return a reproducer that still fails, and every reduction
// it kept must be individually safe: restoring any single reduced
// dimension to its original value keeps the campaign failing.
func TestShrinkMinimalFailingReproducer(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink executes many campaigns")
	}
	orig := Campaign{Spec: Spec{
		Design: "Silo", Workload: "Sweep40", Cores: 2, Txns: 8, Seed: 5,
	}, Plan: fault.Plan{
		Trigger: fault.TriggerCommit, AfterCommits: 1,
		FlushBudget: 8, TearWords: true, StrictBudget: true, Seed: 5,
	}}
	fails := func(c Campaign) bool {
		out := RunCampaignContained(c)
		return !IsInfra(out.Err) && out.Failed()
	}
	if !fails(orig) {
		t.Fatal("chosen campaign does not fail; shrink test premise broken")
	}
	s := Shrink(orig)
	if !fails(s) {
		t.Fatalf("shrunk campaign no longer fails: %s", s.Repro())
	}
	if s.Spec.Txns > orig.Spec.Txns || s.Spec.Cores > orig.Spec.Cores {
		t.Fatalf("shrink grew the campaign: %s", s.Repro())
	}
	var restores []func(*Campaign)
	if s.Spec.Txns != orig.Spec.Txns {
		restores = append(restores, func(c *Campaign) { c.Spec.Txns = orig.Spec.Txns })
	}
	if s.Spec.Cores != orig.Spec.Cores {
		restores = append(restores, func(c *Campaign) { c.Spec.Cores = orig.Spec.Cores })
	}
	if s.Plan.StrictBudget != orig.Plan.StrictBudget {
		restores = append(restores, func(c *Campaign) { c.Plan.StrictBudget = orig.Plan.StrictBudget })
	}
	if s.Plan.FlushBudget != orig.Plan.FlushBudget || s.Plan.TearWords != orig.Plan.TearWords {
		restores = append(restores, func(c *Campaign) {
			c.Plan.FlushBudget = orig.Plan.FlushBudget
			c.Plan.TearWords = orig.Plan.TearWords
		})
	}
	if s.Plan.Trigger != orig.Plan.Trigger {
		restores = append(restores, func(c *Campaign) {
			c.Plan.Trigger = orig.Plan.Trigger
			c.Plan.AfterCommits = orig.Plan.AfterCommits
		})
	}
	if len(restores) == 0 {
		t.Fatal("shrink reduced nothing on a shrinkable campaign")
	}
	for i, restore := range restores {
		trial := s
		restore(&trial)
		if !fails(trial) {
			t.Errorf("restoring reduction %d stops the failure — shrink kept an unsafe reduction (%s)",
				i, trial.Repro())
		}
	}
}
