package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func validLine(idx int, extra string) string {
	return `{"index":` + strconv.Itoa(idx) + `,"design":"Silo","workload":"Array","cores":1,"txns":4,"seed":1,"plan":"trigger=none","repro":"r","report":{},"attempts":1,"commits":3,"mid_run":true` + extra + "}\n"
}

func TestLoadCheckpointEmptyStreamErrors(t *testing.T) {
	for name, body := range map[string]string{
		"empty":      "",
		"whitespace": "\n\n  \n",
	} {
		t.Run(name, func(t *testing.T) {
			s, err := LoadCheckpoint(strings.NewReader(body))
			if err == nil {
				t.Fatalf("want error on %s stream, got %+v", name, s)
			}
			if !strings.Contains(err.Error(), "no records") {
				t.Errorf("error does not explain the problem: %v", err)
			}
		})
	}
}

func TestLoadCheckpointTornTailTolerated(t *testing.T) {
	body := validLine(0, "") + validLine(1, "") + `{"index":2,"design":"Si`
	s, err := LoadCheckpoint(strings.NewReader(body))
	if err != nil {
		t.Fatalf("torn final line must not fail the load: %v", err)
	}
	if !s.TornTail {
		t.Error("torn tail not flagged")
	}
	if s.Campaigns != 2 || s.Records != 2 {
		t.Errorf("campaigns=%d records=%d, want 2/2", s.Campaigns, s.Records)
	}
	if !strings.Contains(s.String(), "interrupted mid-write") {
		t.Errorf("summary hides the interruption:\n%s", s.String())
	}
}

func TestLoadCheckpointOnlyTornRecordErrors(t *testing.T) {
	s, err := LoadCheckpoint(strings.NewReader(`{"index":0,"des`))
	if err == nil {
		t.Fatalf("a stream holding only a torn record must error, got %+v", s)
	}
	if !strings.Contains(err.Error(), "torn partial record") {
		t.Errorf("error does not explain the problem: %v", err)
	}
}

func TestLoadCheckpointMidStreamCorruptionErrors(t *testing.T) {
	body := validLine(0, "") + "GARBAGE NOT JSON\n" + validLine(1, "")
	_, err := LoadCheckpoint(strings.NewReader(body))
	if err == nil {
		t.Fatal("mid-stream corruption must fail the load")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the corrupt line: %v", err)
	}
}

func TestLoadCheckpointAggregates(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(validLine(0, ""))
	b.WriteString(validLine(0, `,"torn":2`)) // retried campaign: later record wins
	b.WriteString(validLine(1, `,"err":"infra: watchdog","infra":true`))
	b.WriteString(validLine(2, `,"mismatches":["addr 8 want 1 got 2"]`))
	s, err := LoadCheckpoint(&b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 4 || s.Campaigns != 3 {
		t.Errorf("records=%d campaigns=%d, want 4/3", s.Records, s.Campaigns)
	}
	if s.Infra != 1 {
		t.Errorf("infra=%d want 1", s.Infra)
	}
	if len(s.Failures) != 1 || s.Failures[0].Index != 2 {
		t.Errorf("failures=%+v want campaign 2 only", s.Failures)
	}
	if s.Torn != 2 {
		t.Errorf("later duplicate did not win: torn=%d want 2", s.Torn)
	}
	// Campaign 0 contributes 3 commits; campaign 1 is infra and campaign
	// 2 failed, so neither folds into the clean aggregates.
	if s.Commits != 3 {
		t.Errorf("commits=%d want 3", s.Commits)
	}
	if !strings.Contains(s.String(), "FAIL (1 campaigns") {
		t.Errorf("summary misses the failure:\n%s", s.String())
	}
	if !strings.Contains(s.Table().String(), "Silo") {
		t.Errorf("design table empty:\n%s", s.Table().String())
	}
}

// A real sweep's stream must load cleanly and agree with the sweep's own
// aggregates.
func TestLoadCheckpointRoundTripFromSweep(t *testing.T) {
	var buf bytes.Buffer
	cfg := TortureConfig{Seed: 13, Campaigns: 5, Txns: 8, Parallel: 1}
	cfg.OnRecord = func(r Record) {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Campaigns != 5 || s.TornTail {
		t.Errorf("campaigns=%d torntail=%v, want 5/false", s.Campaigns, s.TornTail)
	}
	if s.Commits != res.Commits || s.MidRun != res.MidRunCrashes {
		t.Errorf("summary disagrees with sweep: commits %d vs %d, midrun %d vs %d",
			s.Commits, res.Commits, s.MidRun, res.MidRunCrashes)
	}
	if len(s.Failures) != len(res.Failures) {
		t.Errorf("failures %d vs %d", len(s.Failures), len(res.Failures))
	}
}
