package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"silo/internal/fault"
	"silo/internal/machine"
	"silo/internal/recovery"
)

// TortureConfig parameterizes a crash-storm campaign sweep: every
// campaign is an independent (design × workload × seeded crash schedule)
// run whose recovered PM state is verified word-for-word against the
// machine's golden committed shadow.
type TortureConfig struct {
	Seed      int64
	Campaigns int
	// Offset shifts the campaign index range to [Offset, Offset+Campaigns):
	// campaign k of a sweep reproduces alone with Offset=k, Campaigns=1.
	Offset    int
	Designs   []string // default DesignNames()
	Workloads []string // default {"Array", "Hash", "TPCC"}
	Cores     int      // default 2
	Txns      int      // default 48
	OpsPerTx  int      // default 0 (workload native)

	// AllowStrict admits beyond-spec battery faults (critical records
	// draw from the budget) and AllowBitFlips admits log media
	// corruption. Both can legitimately lose committed work — the CRCs
	// detect, they cannot restore — so the zero-mismatch guarantee only
	// holds with them off.
	AllowStrict   bool
	AllowBitFlips bool

	// Shrink reduces each failing campaign to a minimal reproducer.
	Shrink bool

	Parallel int // concurrent campaigns (0 → GOMAXPROCS)
}

func (c *TortureConfig) defaults() {
	if c.Campaigns <= 0 {
		c.Campaigns = 100
	}
	if len(c.Designs) == 0 {
		c.Designs = DesignNames()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"Array", "Hash", "TPCC"}
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.Txns <= 0 {
		c.Txns = 48
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
}

// Campaign is one fully-determined torture run.
type Campaign struct {
	Index int
	Spec  Spec
	Plan  fault.Plan
}

// Repro renders the silo-torture command line that replays this exact
// campaign (design, workload, machine shape, and crash schedule).
func (c Campaign) Repro() string {
	return fmt.Sprintf(
		"go run ./cmd/silo-torture -designs %s -workloads %s -cores %d -txns %d -seed %d -plan %q",
		c.Spec.Design, c.Spec.Workload, c.Spec.Cores, c.Spec.Txns, c.Spec.Seed, c.Plan.String())
}

// MakeCampaign derives campaign i of the sweep deterministically from
// the config: same seed and index, same campaign, on any machine.
func MakeCampaign(cfg TortureConfig, i int) Campaign {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
	spec := Spec{
		Design:   cfg.Designs[rng.Intn(len(cfg.Designs))],
		Workload: cfg.Workloads[rng.Intn(len(cfg.Workloads))],
		Cores:    cfg.Cores,
		Txns:     cfg.Txns,
		Seed:     rng.Int63(),
		OpsPerTx: cfg.OpsPerTx,
	}
	// Rough op-count scale for trigger placement: a transaction is a
	// begin + end + a handful of loads/stores per op.
	opsPerTx := int64(cfg.OpsPerTx)
	if opsPerTx < 1 {
		opsPerTx = 1
	}
	totalOps := int64(cfg.Txns) * (2 + 8*opsPerTx)
	plan := fault.Random(rng, totalOps, cfg.AllowStrict, cfg.AllowBitFlips)
	return Campaign{Index: i, Spec: spec, Plan: plan}
}

// CampaignOutcome is the record of one executed campaign.
type CampaignOutcome struct {
	Campaign   Campaign
	Err        error
	Mismatches []string // golden-shadow verification failures
	Report     recovery.Report
	MidRun     bool  // the trigger fired before the workload finished
	Commits    int64 // transactions committed before the crash
	Restarts   int   // mid-recovery re-crashes survived
	Torn       int64 // crash-flush records torn by the energy budget
	Dropped    int64 // crash-flush records dropped entirely
}

// Failed reports whether the campaign violated atomic durability (or
// could not run at all).
func (o CampaignOutcome) Failed() bool { return o.Err != nil || len(o.Mismatches) > 0 }

// VerifyRecovery checks every word any transaction ever wrote against
// the machine's golden committed shadow and returns the mismatches in
// address order.
func VerifyRecovery(m *machine.Machine) []string {
	words := m.WrittenWords()
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	var bad []string
	for _, a := range words {
		want, ok := m.GoldenCommitted(a)
		if !ok {
			continue
		}
		if got, ok := recovery.VerifyWord(m.Device(), a, want); !ok {
			bad = append(bad, fmt.Sprintf("%v = %#x want %#x", a, uint64(got), uint64(want)))
		}
	}
	return bad
}

// RunCampaign executes one campaign end to end: run until the crash
// schedule fires (or the workload finishes, in which case power fails at
// completion), recover — re-crashing recovery itself if the plan says so
// until a pass completes — verify the full golden shadow, then recover
// once more and re-verify to prove a completed recovery is idempotent.
func RunCampaign(c Campaign) CampaignOutcome {
	out := CampaignOutcome{Campaign: c}
	spec := c.Spec
	plan := c.Plan // private copy: campaigns must not share mutable state
	spec.Fault = &plan
	m, _, err := RunMachine(spec)
	if err != nil {
		out.Err = err
		return out
	}
	out.MidRun = m.Crashed()
	if !out.MidRun {
		// The schedule never fired mid-run; the power still goes out.
		m.InjectCrash(m.Now())
	}
	out.Commits = m.Commits()
	out.Torn = m.Region().CrashImagesTorn
	out.Dropped = m.Region().CrashImagesDropped

	if plan.RecrashEvery > 0 {
		// Crash recovery itself after every RecrashEvery applied words;
		// each retry's battery lasts twice as long, so the loop
		// terminates, and recovery never mutates the log, so restarting
		// from scratch is legal.
		limit := plan.RecrashEvery
		for {
			out.Report = recovery.RecoverOpts(m.Device(), m.Region(), recovery.Options{MaxWrites: limit})
			if out.Report.Complete {
				break
			}
			out.Restarts++
			limit *= 2
		}
	} else {
		out.Report = recovery.Recover(m.Device(), m.Region())
	}
	out.Mismatches = VerifyRecovery(m)

	// Idempotence: a second full pass over the same log must change
	// nothing.
	second := recovery.Recover(m.Device(), m.Region())
	if again := VerifyRecovery(m); len(again) > len(out.Mismatches) {
		out.Mismatches = append(again,
			"second recovery pass changed the data region (not idempotent)")
	} else if second.TotalRecords != out.Report.TotalRecords ||
		second.Quarantined != out.Report.Quarantined {
		out.Mismatches = append(out.Mismatches, fmt.Sprintf(
			"second recovery pass scanned differently: %d/%d records, %d/%d quarantined",
			second.TotalRecords, out.Report.TotalRecords,
			second.Quarantined, out.Report.Quarantined))
	}
	return out
}

// Shrink reduces a failing campaign to a minimal reproducer: bisect the
// transaction count, drop to one core, then strip crash-schedule
// features one at a time, keeping each reduction only if the campaign
// still fails.
func Shrink(c Campaign) Campaign {
	fails := func(tc Campaign) bool { return RunCampaign(tc).Failed() }
	for c.Spec.Txns > 1 {
		trial := c
		trial.Spec.Txns = c.Spec.Txns / 2
		if !fails(trial) {
			break
		}
		c = trial
	}
	if c.Spec.Cores > 1 {
		trial := c
		trial.Spec.Cores = 1
		if fails(trial) {
			c = trial
		}
	}
	mods := []func(*fault.Plan){
		func(p *fault.Plan) { p.RecrashEvery = 0 },
		func(p *fault.Plan) { p.BitFlips = 0 },
		func(p *fault.Plan) { p.StrictBudget = false },
		func(p *fault.Plan) { p.FlushBudget = 0; p.TearWords = false },
		func(p *fault.Plan) { p.Trigger = fault.TriggerNone },
	}
	for _, mod := range mods {
		trial := c
		mod(&trial.Plan)
		if fails(trial) {
			c = trial
		}
	}
	return c
}

// TortureFailure is one campaign that violated atomic durability.
type TortureFailure struct {
	Outcome CampaignOutcome
	// Shrunk is the minimal reproducer (nil unless Shrink was on).
	Shrunk *Campaign
}

// TortureResult aggregates a campaign sweep.
type TortureResult struct {
	Campaigns     int
	MidRunCrashes int
	Commits       int64
	RecoveredTx   int
	RedoApplied   int
	UndoApplied   int
	Quarantined   int
	Torn          int64
	Dropped       int64
	Restarts      int
	Failures      []TortureFailure
}

// Ok reports whether every campaign verified clean.
func (r TortureResult) Ok() bool { return len(r.Failures) == 0 }

// Summary renders the sweep as a short report, with a repro line per
// failure.
func (r TortureResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "torture: %d campaigns, %d crashed mid-run, %d tx committed\n",
		r.Campaigns, r.MidRunCrashes, r.Commits)
	fmt.Fprintf(&b, "recovery: %d tx recovered, %d redo, %d undo, %d quarantined, %d torn, %d dropped, %d mid-recovery re-crashes\n",
		r.RecoveredTx, r.RedoApplied, r.UndoApplied, r.Quarantined, r.Torn, r.Dropped, r.Restarts)
	if r.Ok() {
		b.WriteString("result: PASS (zero post-recovery mismatches)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "result: FAIL (%d campaigns violated atomic durability)\n", len(r.Failures))
	for _, f := range r.Failures {
		o := f.Outcome
		fmt.Fprintf(&b, "  campaign %d: %s on %s", o.Campaign.Index, o.Campaign.Spec.Design, o.Campaign.Spec.Workload)
		if o.Err != nil {
			fmt.Fprintf(&b, " error: %v\n", o.Err)
		} else {
			n := len(o.Mismatches)
			show := o.Mismatches
			if len(show) > 3 {
				show = show[:3]
			}
			fmt.Fprintf(&b, " %d mismatches: %s\n", n, strings.Join(show, "; "))
		}
		fmt.Fprintf(&b, "    repro: %s\n", o.Campaign.Repro())
		if f.Shrunk != nil {
			fmt.Fprintf(&b, "    shrunk: %s\n", f.Shrunk.Repro())
		}
	}
	return b.String()
}

// Torture runs the campaign sweep. Campaigns are independent
// simulations, so they execute in parallel across host CPUs; results
// are deterministic regardless of parallelism.
func Torture(cfg TortureConfig) (TortureResult, error) {
	cfg.defaults()
	outcomes := make([]CampaignOutcome, cfg.Campaigns)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = RunCampaign(MakeCampaign(cfg, cfg.Offset+i))
		}(i)
	}
	wg.Wait()

	var res TortureResult
	res.Campaigns = cfg.Campaigns
	for _, o := range outcomes {
		if o.Err != nil {
			// A campaign that cannot even run is a config error worth
			// failing the whole sweep for.
			res.Failures = append(res.Failures, TortureFailure{Outcome: o})
			continue
		}
		if o.MidRun {
			res.MidRunCrashes++
		}
		res.Commits += o.Commits
		res.RecoveredTx += o.Report.CommittedTx
		res.RedoApplied += o.Report.RedoApplied
		res.UndoApplied += o.Report.UndoApplied
		res.Quarantined += o.Report.Quarantined
		res.Torn += o.Torn
		res.Dropped += o.Dropped
		res.Restarts += o.Restarts
		if len(o.Mismatches) > 0 {
			res.Failures = append(res.Failures, TortureFailure{Outcome: o})
		}
	}
	if cfg.Shrink {
		for i := range res.Failures {
			if res.Failures[i].Outcome.Err != nil {
				continue
			}
			s := Shrink(res.Failures[i].Outcome.Campaign)
			res.Failures[i].Shrunk = &s
		}
	}
	return res, nil
}
