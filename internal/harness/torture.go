package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"silo/internal/audit"
	"silo/internal/fault"
	"silo/internal/machine"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// TortureConfig parameterizes a crash-storm campaign sweep: every
// campaign is an independent (design × workload × seeded crash schedule)
// run whose recovered PM state is verified word-for-word against the
// machine's golden committed shadow.
type TortureConfig struct {
	Seed      int64
	Campaigns int
	// Offset shifts the campaign index range to [Offset, Offset+Campaigns):
	// campaign k of a sweep reproduces alone with Offset=k, Campaigns=1.
	Offset    int
	Designs   []string // default DesignNames()
	Workloads []string // default {"Array", "Hash", "TPCC"}
	Cores     int      // default 2
	Txns      int      // default 48
	OpsPerTx  int      // default 0 (workload native)

	// AllowStrict admits beyond-spec battery faults (critical records
	// draw from the budget) and AllowBitFlips admits log media
	// corruption. Both can legitimately lose committed work — the CRCs
	// detect, they cannot restore — so the zero-mismatch guarantee only
	// holds with them off.
	AllowStrict   bool
	AllowBitFlips bool

	// Shrink reduces each failing campaign to a minimal reproducer.
	Shrink bool

	// TraceDir, when non-empty, re-runs every *failing* campaign with a
	// Chrome-trace telemetry sink attached and writes the timeline to
	// DIR/campaign-<idx>.trace.json (Perfetto-loadable). Passing
	// campaigns are never traced — the sweep stays cheap, and only the
	// runs someone will actually debug pay for a recording.
	TraceDir string

	Parallel int // concurrent campaigns (0 → GOMAXPROCS)

	// DisableAudit turns off the runtime invariant layer inside every
	// campaign (the sweep then only has the golden shadow).
	DisableAudit bool

	// MaxCycles is the per-campaign sim-cycle watchdog: a campaign whose
	// simulated clock reaches it is killed as livelocked and reported as
	// an infra failure (default 1<<31 cycles ≈ 1 simulated second; < 0
	// disables).
	MaxCycles sim.Cycle

	// WallBudget is the per-campaign wall-clock watchdog (default 2m;
	// < 0 disables). A campaign that exceeds it is abandoned — its
	// goroutine is leaked by design, the only containment Go offers for
	// a wedged computation — and reported as an infra failure.
	WallBudget time.Duration

	// Retries bounds re-runs of campaigns that failed for infra reasons
	// (watchdogs, host flakes); verification failures are deterministic
	// and never retried (default 2; < 0 disables).
	Retries int
	// Backoff is the base delay between retries, doubling each attempt
	// with deterministic seeded jitter (default 50ms). The delay for
	// (seed, campaign, attempt) is a pure function — no wall-clock
	// dependence — so a resumed sweep retries on the same schedule.
	Backoff time.Duration

	// Resume maps campaign index → completed record from a previous
	// run's JSONL stream; those campaigns are not re-executed, and the
	// final aggregates are byte-identical to an uninterrupted sweep.
	Resume map[int]Record

	// OnRecord, when non-nil, receives every freshly completed
	// campaign's record (checkpoint streaming). Calls are serialized.
	OnRecord func(Record)

	// Sink, when non-nil, is the two-phase checkpoint sink: Encode runs
	// on the campaign's own goroutine — record construction and
	// marshaling stay out of the fleet's emit lock — and only Write is
	// serialized. Prefer it over OnRecord for file-backed streams.
	Sink RecordSink

	// OnSinkError receives Sink Encode/Write failures (host-level I/O
	// problems, not campaign verdicts). Nil drops them; the fleet never
	// aborts on a checkpoint write failure.
	OnSinkError func(error)

	// Stop, when non-nil and closed, drains the sweep: campaigns not yet
	// started are skipped and the partial aggregates returned.
	Stop <-chan struct{}

	// Run overrides the campaign executor (fleet tests); default
	// RunCampaign. Torture wraps it in panic containment either way.
	Run func(Campaign) CampaignOutcome

	// Make overrides campaign derivation (the design-space explorer maps
	// an index to a grid point instead of a random sample); default
	// MakeCampaign. It receives the global campaign index (Offset
	// applied) and must be a pure function of it — resume, repro, and
	// cross-worker determinism all depend on index → campaign being
	// stable.
	Make func(i int) Campaign
}

func (c *TortureConfig) defaults() {
	if c.Campaigns <= 0 {
		c.Campaigns = 100
	}
	if len(c.Designs) == 0 {
		c.Designs = DesignNames()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"Array", "Hash", "TPCC"}
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.Txns <= 0 {
		c.Txns = 48
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 1 << 31
	}
	if c.WallBudget == 0 {
		c.WallBudget = 2 * time.Minute
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// Campaign is one fully-determined torture run.
type Campaign struct {
	Index int
	Spec  Spec
	Plan  fault.Plan
}

// Repro renders the silo-torture command line that replays this exact
// campaign (design, workload, machine shape, and crash schedule).
func (c Campaign) Repro() string {
	return fmt.Sprintf(
		"go run ./cmd/silo-torture -designs %s -workloads %s -cores %d -txns %d -seed %d -plan %q",
		c.Spec.Design, c.Spec.Workload, c.Spec.Cores, c.Spec.Txns, c.Spec.Seed, c.Plan.String())
}

// MakeCampaign derives campaign i of the sweep deterministically from
// the config: same seed and index, same campaign, on any machine.
func MakeCampaign(cfg TortureConfig, i int) Campaign {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
	spec := Spec{
		Design:   cfg.Designs[rng.Intn(len(cfg.Designs))],
		Workload: cfg.Workloads[rng.Intn(len(cfg.Workloads))],
		Cores:    cfg.Cores,
		Txns:     cfg.Txns,
		Seed:     rng.Int63(),
		OpsPerTx: cfg.OpsPerTx,
	}
	// Rough op-count scale for trigger placement: a transaction is a
	// begin + end + a handful of loads/stores per op.
	opsPerTx := int64(cfg.OpsPerTx)
	if opsPerTx < 1 {
		opsPerTx = 1
	}
	totalOps := int64(cfg.Txns) * (2 + 8*opsPerTx)
	plan := fault.Random(rng, totalOps, cfg.AllowStrict, cfg.AllowBitFlips)
	spec.DisableAudit = cfg.DisableAudit
	if cfg.MaxCycles > 0 {
		spec.MaxCycles = cfg.MaxCycles
	}
	return Campaign{Index: i, Spec: spec, Plan: plan}
}

// CampaignOutcome is the record of one executed campaign.
type CampaignOutcome struct {
	Campaign   Campaign
	Err        error
	Mismatches []string // golden-shadow verification failures
	Report     recovery.Report
	MidRun     bool  // the trigger fired before the workload finished
	Commits    int64 // transactions committed before the crash
	Restarts   int   // mid-recovery re-crashes survived
	Torn       int64 // crash-flush records torn by the energy budget
	Dropped    int64 // crash-flush records dropped entirely

	// Avail is the availability phase breakdown for cluster campaigns
	// (nil for machine-scope campaigns and for cluster runs with
	// neither replication nor crash windows).
	Avail *AvailSummary

	// Explore carries the design-space explorer's per-point metrics
	// (nil for torture campaigns); see internal/explore.
	Explore *ExploreMetrics

	// Invariant names the audit invariant that fired (empty otherwise);
	// Trail is the auditor's ring-buffered event trail at that moment,
	// or a bounded stack excerpt for a non-audit panic.
	Invariant string
	Trail     []string

	Panicked bool // the campaign goroutine panicked (contained)
	TimedOut bool // a watchdog (wall-clock or sim-cycle) killed it
	Infra    bool // Err is an infra failure, not a durability verdict
	Attempts int  // executions including retries (0 for resumed records)
}

// Failed reports whether the campaign violated atomic durability (or
// could not run at all).
func (o CampaignOutcome) Failed() bool { return o.Err != nil || len(o.Mismatches) > 0 }

// InfraError marks a campaign failure caused by the host or the harness
// (watchdog kills, resource flakes) rather than by the design under
// test; the fleet retries these with backoff and CI distinguishes them
// from durability bugs by exit code.
type InfraError struct{ Err error }

func (e InfraError) Error() string { return "infra: " + e.Err.Error() }
func (e InfraError) Unwrap() error { return e.Err }

// IsInfra reports whether err is (or wraps) an InfraError.
func IsInfra(err error) bool {
	var ie InfraError
	return errors.As(err, &ie)
}

// VerifyRecovery checks every word any transaction ever wrote against
// the machine's golden committed shadow and returns the mismatches in
// address order.
func VerifyRecovery(m *machine.Machine) []string {
	words := m.WrittenWords()
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	var bad []string
	for _, a := range words {
		want, ok := m.GoldenCommitted(a)
		if !ok {
			continue
		}
		if got, ok := recovery.VerifyWord(m.Device(), a, want); !ok {
			bad = append(bad, fmt.Sprintf("%v = %#x want %#x", a, uint64(got), uint64(want)))
		}
	}
	return bad
}

// RunCampaign executes one campaign end to end: run until the crash
// schedule fires (or the workload finishes, in which case power fails at
// completion), recover — re-crashing recovery itself if the plan says so
// until a pass completes — verify the full golden shadow, then recover
// once more and re-verify to prove a completed recovery is idempotent.
func RunCampaign(c Campaign) CampaignOutcome {
	out := CampaignOutcome{Campaign: c}
	spec := c.Spec
	plan := c.Plan // private copy: campaigns must not share mutable state
	spec.Fault = &plan
	m, _, err := RunMachine(spec)
	if err != nil {
		out.Err = err
		return out
	}
	defer m.Release() // outcome extraction below is the machine's last use
	if m.WatchdogFired() {
		// The sim-cycle budget killed a livelocked run; no battery flush
		// ran, so there is no durability verdict to extract.
		out.Err = InfraError{fmt.Errorf("sim-cycle watchdog: no progress to completion within %d cycles", spec.MaxCycles)}
		out.TimedOut = true
		return out
	}
	out.MidRun = m.Crashed()
	if !out.MidRun {
		// The schedule never fired mid-run; the power still goes out.
		m.InjectCrash(m.Now())
	}
	out.Commits = m.Commits()
	out.Torn = m.Region().CrashImagesTorn
	out.Dropped = m.Region().CrashImagesDropped

	if plan.RecrashEvery > 0 {
		// Crash recovery itself after every RecrashEvery applied words;
		// each retry's battery lasts twice as long, so the loop
		// terminates, and recovery never mutates the log, so restarting
		// from scratch is legal.
		limit := plan.RecrashEvery
		for {
			out.Report = recovery.RecoverOpts(m.Device(), m.Region(), recovery.Options{MaxWrites: limit})
			if out.Report.Complete {
				break
			}
			out.Restarts++
			limit *= 2
		}
	} else {
		out.Report = recovery.Recover(m.Device(), m.Region())
	}
	out.Mismatches = VerifyRecovery(m)

	// Idempotence: a second full pass over the same log must change
	// nothing. The comparison is by mismatch *content*, not count — a
	// second pass corrupting different words of equal count is just as
	// broken — and first-pass mismatches are never dropped.
	second := recovery.Recover(m.Device(), m.Region())
	again := VerifyRecovery(m)
	out.Mismatches = append(out.Mismatches, audit.CompareRecoveryPasses(
		out.Mismatches, again,
		out.Report.TotalRecords, second.TotalRecords,
		out.Report.Quarantined, second.Quarantined)...)
	return out
}

// RunCampaignContained is RunCampaign behind the fleet's panic
// containment: an audit violation or stray panic becomes a failed
// outcome carrying the invariant name and event trail.
func RunCampaignContained(c Campaign) CampaignOutcome {
	return runContained(RunCampaign, c, 0)
}

// runContained executes run(c) on its own goroutine, converting panics
// into failed outcomes and enforcing the wall-clock watchdog (wall <= 0
// disables). On timeout the campaign goroutine is abandoned — leaked by
// design; Go offers no way to kill a wedged computation — and an infra
// failure is returned.
func runContained(run func(Campaign) CampaignOutcome, c Campaign, wall time.Duration) CampaignOutcome {
	done := make(chan CampaignOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				out := CampaignOutcome{Campaign: c, Panicked: true}
				if v, ok := r.(*audit.Violation); ok {
					out.Err = v
					out.Invariant = v.Invariant
					out.Trail = v.Trail
				} else {
					out.Err = fmt.Errorf("panic: %v", r)
					out.Trail = stackTrail()
				}
				done <- out
			}
		}()
		done <- run(c)
	}()
	if wall <= 0 {
		return <-done
	}
	timer := time.NewTimer(wall)
	defer timer.Stop()
	select {
	case out := <-done:
		return out
	case <-timer.C:
		return CampaignOutcome{
			Campaign: c,
			Err:      InfraError{fmt.Errorf("wall-clock watchdog: campaign still running after %v", wall)},
			TimedOut: true,
		}
	}
}

// stackTrail returns a bounded stack excerpt for non-audit panics.
func stackTrail() []string {
	buf := make([]byte, 8<<10)
	n := runtime.Stack(buf, false)
	lines := strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n")
	if len(lines) > 24 {
		lines = lines[:24]
	}
	return lines
}

// Shrink reduces a failing campaign to a minimal reproducer: bisect the
// transaction count, drop to one core, then strip crash-schedule
// features one at a time, keeping each reduction only if the campaign
// still fails.
func Shrink(c Campaign) Campaign {
	return shrinkWith(c, func(tc Campaign) bool {
		// Contained: a shrink trial that panics (audit violation) is a
		// failing trial, not a dead process. Infra kills don't count as
		// failing — keeping a reduction on a timeout would be wrong.
		out := RunCampaignContained(tc)
		return !IsInfra(out.Err) && out.Failed()
	})
}

func shrinkWith(c Campaign, fails func(Campaign) bool) Campaign {
	for c.Spec.Txns > 1 {
		trial := c
		trial.Spec.Txns = c.Spec.Txns / 2
		if !fails(trial) {
			break
		}
		c = trial
	}
	if c.Spec.Cores > 1 {
		trial := c
		trial.Spec.Cores = 1
		if fails(trial) {
			c = trial
		}
	}
	mods := []func(*fault.Plan){
		func(p *fault.Plan) { p.RecrashEvery = 0 },
		func(p *fault.Plan) { p.BitFlips = 0 },
		func(p *fault.Plan) { p.StrictBudget = false },
		func(p *fault.Plan) { p.FlushBudget = 0; p.TearWords = false },
		func(p *fault.Plan) { p.Trigger = fault.TriggerNone },
	}
	for _, mod := range mods {
		trial := c
		mod(&trial.Plan)
		if fails(trial) {
			c = trial
		}
	}
	return c
}

// TortureFailure is one campaign that violated atomic durability.
type TortureFailure struct {
	Outcome CampaignOutcome
	// Shrunk is the minimal reproducer (nil unless Shrink was on).
	Shrunk *Campaign
	// TracePath is the Chrome-trace recording of the failing run (empty
	// unless TraceDir was set and the re-run produced one).
	TracePath string
}

// TortureResult aggregates a campaign sweep.
type TortureResult struct {
	Campaigns     int
	MidRunCrashes int
	Commits       int64
	RecoveredTx   int
	RedoApplied   int
	UndoApplied   int
	Quarantined   int
	Torn          int64
	Dropped       int64
	Restarts      int
	Failures      []TortureFailure

	// Avail aggregates cluster availability breakdowns by replication
	// configuration ("r1", "r3/sync", ...); empty for machine sweeps.
	Avail map[string]*AvailSummary

	// Infra lists campaigns that never produced a durability verdict
	// (watchdog kills, host flakes) after exhausting retries; they do
	// not fail Ok() but CI surfaces them with a distinct exit code.
	Infra []TortureFailure

	// Skipped counts campaigns never started because Stop drained the
	// sweep; Interrupted is set when that happened.
	Skipped     int
	Interrupted bool
}

// Ok reports whether every campaign that ran verified clean.
func (r TortureResult) Ok() bool { return len(r.Failures) == 0 }

// Summary renders the sweep as a short report, with a repro line per
// failure.
func (r TortureResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "torture: %d campaigns, %d crashed mid-run, %d tx committed\n",
		r.Campaigns, r.MidRunCrashes, r.Commits)
	fmt.Fprintf(&b, "recovery: %d tx recovered, %d redo, %d undo, %d quarantined, %d torn, %d dropped, %d mid-recovery re-crashes\n",
		r.RecoveredTx, r.RedoApplied, r.UndoApplied, r.Quarantined, r.Torn, r.Dropped, r.Restarts)
	if len(r.Avail) > 0 {
		b.WriteString("availability:\n")
		b.WriteString(availLines(r.Avail, "  "))
	}
	if r.Skipped > 0 {
		fmt.Fprintf(&b, "interrupted: %d campaigns skipped (resume to finish them)\n", r.Skipped)
	}
	for _, f := range r.Infra {
		o := f.Outcome
		fmt.Fprintf(&b, "infra: campaign %d (%s on %s, %d attempts): %v\n",
			o.Campaign.Index, o.Campaign.Spec.Design, o.Campaign.Spec.Workload, o.Attempts, o.Err)
		fmt.Fprintf(&b, "    repro: %s\n", o.Campaign.Repro())
	}
	if r.Ok() {
		b.WriteString("result: PASS (zero post-recovery mismatches)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "result: FAIL (%d campaigns violated atomic durability)\n", len(r.Failures))
	for _, f := range r.Failures {
		o := f.Outcome
		fmt.Fprintf(&b, "  campaign %d: %s on %s", o.Campaign.Index, o.Campaign.Spec.Design, o.Campaign.Spec.Workload)
		if o.Err != nil {
			fmt.Fprintf(&b, " error: %v\n", o.Err)
		} else {
			n := len(o.Mismatches)
			show := o.Mismatches
			if len(show) > 3 {
				show = show[:3]
			}
			fmt.Fprintf(&b, " %d mismatches: %s\n", n, strings.Join(show, "; "))
		}
		if o.Invariant != "" {
			tail := o.Trail
			if len(tail) > 4 {
				tail = tail[len(tail)-4:]
			}
			for _, e := range tail {
				fmt.Fprintf(&b, "    trail: %s\n", e)
			}
		}
		fmt.Fprintf(&b, "    repro: %s\n", o.Campaign.Repro())
		if f.Shrunk != nil {
			fmt.Fprintf(&b, "    shrunk: %s\n", f.Shrunk.Repro())
		}
		if f.TracePath != "" {
			fmt.Fprintf(&b, "    trace: %s\n", f.TracePath)
		}
	}
	return b.String()
}

// RetryDelay is the infra-retry backoff for (seed, campaign, attempt):
// the base doubling each attempt, plus up to half a base of jitter
// drawn from a splitmix of the inputs. It is a pure function — two runs
// of the same sweep retry on the identical schedule, with no wall-clock
// or shared-RNG dependence, and distinct campaigns still decorrelate so
// a burst of infra failures does not retry in lockstep.
func RetryDelay(seed int64, campaign, attempt int, base time.Duration) time.Duration {
	d := base << attempt
	if base <= 0 {
		return 0
	}
	x := uint64(seed) ^ uint64(campaign)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	jitter := time.Duration(x % uint64(base/2+1))
	return d + jitter
}

// reorderWindowPerWorker sizes the fleet's reorder window: the sweep
// holds at most Parallel*reorderWindowPerWorker completed-but-undrained
// outcomes, so memory is O(Parallel + window) regardless of campaign
// count, while workers stay busy across moderate completion skew.
const reorderWindowPerWorker = 4

// fleetSlot is one reorder-window entry: a completed (or resumed, or
// skipped) campaign waiting for every earlier index to drain.
type fleetSlot struct {
	out     CampaignOutcome
	rec     Record
	enc     []byte
	encErr  error
	hasRec  bool
	skipped bool
	done    bool
}

// Torture runs the campaign sweep as a hardened fleet: a fixed pool of
// Parallel workers pulls campaign indices from a bounded dispatcher,
// each campaign behind panic containment, wall-clock and sim-cycle
// watchdogs, and bounded infra retries. Each worker reuses its
// simulation state across campaigns through a machine.Recycler.
// Completed outcomes stream through an in-order reorder window —
// aggregates and the checkpoint record stream are emitted strictly in
// campaign-index order — so results are byte-identical regardless of
// parallelism (and, with Resume, regardless of interruption), and
// memory stays O(Parallel + window) instead of O(Campaigns).
func Torture(cfg TortureConfig) (TortureResult, error) {
	cfg.defaults()
	run := cfg.Run
	if run == nil {
		run = RunCampaign
	}
	mk := cfg.Make
	if mk == nil {
		mk = func(i int) Campaign { return MakeCampaign(cfg, i) }
	}
	window := cfg.Parallel * reorderWindowPerWorker

	var (
		mu       sync.Mutex
		space    = sync.NewCond(&mu)
		ring     = make([]fleetSlot, window)
		next     int  // lowest sequence number not yet drained
		draining bool // a drainer owns the in-order processing loop
		res      TortureResult
	)
	res.Campaigns = cfg.Campaigns

	stopping := func() bool {
		if cfg.Stop == nil {
			return false
		}
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}

	// process consumes one drained slot: emit its checkpoint record, then
	// fold the outcome into the aggregates. Only ever called by the
	// single active drainer, in strict index order — that is what makes
	// summaries and record streams byte-identical across worker counts.
	process := func(s *fleetSlot) {
		if s.skipped {
			res.Skipped++
			return
		}
		if s.hasRec {
			if cfg.OnRecord != nil {
				cfg.OnRecord(s.rec)
			}
			if cfg.Sink != nil {
				err := s.encErr
				if err == nil {
					err = cfg.Sink.Write(s.rec, s.enc)
				}
				if err != nil && cfg.OnSinkError != nil {
					cfg.OnSinkError(err)
				}
			}
		}
		o := s.out
		if o.Infra {
			res.Infra = append(res.Infra, TortureFailure{Outcome: o})
			return
		}
		if o.Err != nil {
			// A campaign that cannot even run — config error or audit
			// violation — fails the whole sweep.
			res.Failures = append(res.Failures, TortureFailure{Outcome: o})
			return
		}
		if o.MidRun {
			res.MidRunCrashes++
		}
		res.Commits += o.Commits
		res.RecoveredTx += o.Report.CommittedTx
		res.RedoApplied += o.Report.RedoApplied
		res.UndoApplied += o.Report.UndoApplied
		res.Quarantined += o.Report.Quarantined
		res.Torn += o.Torn
		res.Dropped += o.Dropped
		res.Restarts += o.Restarts
		if o.Avail != nil {
			if res.Avail == nil {
				res.Avail = make(map[string]*AvailSummary)
			}
			mergeAvail(res.Avail, o.Avail)
		}
		if len(o.Mismatches) > 0 {
			res.Failures = append(res.Failures, TortureFailure{Outcome: o})
		}
	}

	// deliver parks seq's slot in the reorder window, then drains every
	// contiguous completed slot from `next` upward. One drainer at a time
	// owns the loop (combining pattern): a deliverer that finds a drain
	// in progress just deposits and leaves, and the active drainer
	// re-checks for newly contiguous work before retiring — no slot is
	// ever stranded. Slot storage is recycled as it drains, so the window
	// (not the campaign count) bounds retained outcomes.
	deliver := func(seq int, s fleetSlot) {
		mu.Lock()
		s.done = true
		ring[seq%window] = s
		if draining {
			mu.Unlock()
			return
		}
		draining = true
		batch := make([]fleetSlot, 0, window)
		for {
			batch = batch[:0]
			for next < cfg.Campaigns && ring[next%window].done {
				batch = append(batch, ring[next%window])
				ring[next%window] = fleetSlot{}
				next++
			}
			if len(batch) == 0 {
				draining = false
				mu.Unlock()
				return
			}
			space.Broadcast()
			mu.Unlock()
			for i := range batch {
				process(&batch[i])
			}
			mu.Lock()
		}
	}

	execOne := func(seq int, rec *machine.Recycler) {
		if stopping() {
			deliver(seq, fleetSlot{skipped: true})
			return
		}
		idx := cfg.Offset + seq
		c := mk(idx)
		c.Spec.Recycle = rec
		var out CampaignOutcome
		for attempt := 0; ; attempt++ {
			out = runContained(run, c, cfg.WallBudget)
			out.Attempts = attempt + 1
			if !IsInfra(out.Err) || attempt >= cfg.Retries {
				break
			}
			time.Sleep(RetryDelay(cfg.Seed, idx, attempt, cfg.Backoff))
		}
		out.Infra = IsInfra(out.Err)
		s := fleetSlot{out: out}
		if cfg.OnRecord != nil || cfg.Sink != nil {
			// Record construction and sink encoding (JSON marshal,
			// index-row building) run here, on the worker, concurrently
			// across the fleet; the drain serializes only the actual write
			// (see BenchmarkFleetEmit).
			s.rec = OutcomeRecord(out)
			s.hasRec = true
			if cfg.Sink != nil {
				s.enc, s.encErr = cfg.Sink.Encode(s.rec)
			}
		}
		deliver(seq, s)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker recycler: campaigns on this worker reuse one
			// another's machine state (reset in place), and no other
			// worker touches it, so reuse adds no cross-worker coupling.
			rec := machine.NewRecycler()
			for seq := range work {
				execOne(seq, rec)
			}
		}()
	}

	// The dispatcher (this goroutine) admits index i only once the drain
	// has advanced past i-window, bounding the reorder window; resumed
	// and stop-skipped campaigns bypass the workers but flow through the
	// same window so ordering and memory bounds hold uniformly.
	var resumeErr error
	for i := 0; i < cfg.Campaigns; i++ {
		mu.Lock()
		for i >= next+window {
			space.Wait()
		}
		mu.Unlock()
		idx := cfg.Offset + i
		if rec, ok := cfg.Resume[idx]; ok {
			out, err := rec.Outcome()
			if err != nil {
				// Fail fast: a corrupt resume record invalidates the whole
				// sweep — stop dispatching, let in-flight campaigns drain,
				// and surface the error instead of burning the remaining
				// campaign budget first.
				resumeErr = fmt.Errorf("torture: resume record %d: %w", idx, err)
				break
			}
			deliver(i, fleetSlot{out: out})
			continue
		}
		if stopping() {
			deliver(i, fleetSlot{skipped: true})
			continue
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if resumeErr != nil {
		return TortureResult{}, resumeErr
	}
	res.Interrupted = res.Skipped > 0
	if cfg.Shrink {
		fails := func(tc Campaign) bool {
			out := runContained(run, tc, cfg.WallBudget)
			return !IsInfra(out.Err) && out.Failed()
		}
		for i := range res.Failures {
			o := res.Failures[i].Outcome
			if o.Err != nil && o.Invariant == "" {
				continue // config errors and stray panics don't shrink
			}
			s := shrinkWith(o.Campaign, fails)
			res.Failures[i].Shrunk = &s
		}
	}
	if cfg.TraceDir != "" && len(res.Failures) > 0 {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return res, fmt.Errorf("torture: trace dir: %w", err)
		}
		for i := range res.Failures {
			res.Failures[i].TracePath = traceCampaign(cfg, run, res.Failures[i].Outcome.Campaign)
		}
	}
	return res, nil
}

// traceCampaign re-executes one failing campaign with a Chrome-trace
// telemetry sink attached and returns the written trace path ("" when
// tracing could not complete). The re-run is deterministic — same
// campaign, same schedule — so the recording shows the same failure;
// it stays panic-contained, and a violation mid-run simply truncates
// the trace at the crash, which is exactly the interesting tail.
func traceCampaign(cfg TortureConfig, run func(Campaign) CampaignOutcome, c Campaign) string {
	path := filepath.Join(cfg.TraceDir, fmt.Sprintf("campaign-%d.trace.json", c.Index))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	ct := telemetry.NewChromeTrace(f)
	c.Spec.Telemetry = telemetry.NewRecorder(ct)
	out := runContained(run, c, cfg.WallBudget)
	if out.TimedOut {
		// The abandoned goroutine may still be writing; closing the
		// trace under it would race. Leave the partial file behind but
		// don't advertise it.
		return ""
	}
	if err := ct.Close(); err != nil {
		f.Close()
		return ""
	}
	if err := f.Close(); err != nil {
		return ""
	}
	return path
}
