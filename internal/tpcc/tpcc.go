// Package tpcc implements a scaled-down TPC-C on the simulated PM heap:
// one warehouse per core (share-nothing, matching the paper's
// software-isolation assumption), all five transaction types. The paper
// uses New-Order alone for the throughput/traffic comparisons (§VI-A,
// "configured like MorLog") and the full five-type mix for the log-buffer
// capacity study (§VI-D); both variants are provided.
package tpcc

import (
	"math/rand"

	"silo/internal/mem"
	"silo/internal/pmds"
	"silo/internal/pmheap"
	"silo/internal/sim"
	"silo/internal/workload"
)

const (
	districts    = 10
	custPerDist  = 30
	items        = 1000
	ringCap      = 4096
	dirCap       = 4096
	maxOrderLine = 2 // order lines per New-Order: 1..maxOrderLine+? see newOrder
)

// warehouse holds the PM addresses of one core's warehouse.
type warehouse struct {
	wh    mem.Addr   // w0 ytd, w1 tax
	dist  mem.Addr   // districts lines: w0 next_o_id, w1 ytd, w2 tax
	cust  mem.Addr   // districts*custPerDist lines
	item  mem.Addr   // items lines (read-only): w0 price
	stock mem.Addr   // items lines: w0 qty, w1 ytd, w2 order_cnt
	rings []mem.Addr // per district: line0 = head/tail, then ringCap order refs
	dirs  []mem.Addr // per district: dirCap words mapping o_id -> order row
	hist  mem.Addr   // history append area
	histN int
}

// TPCC is the workload; it satisfies workload.Workload.
type TPCC struct {
	workload.TxShape
	mix  bool // all five transaction types vs New-Order only
	heap *pmheap.Heap
	whs  []*warehouse
}

// New returns the TPCC workload. mix=false runs only New-Order
// transactions; mix=true runs the standard five-type mix
// (45/43/4/4/4 New-Order/Payment/Order-Status/Delivery/Stock-Level).
func New(mix bool) *TPCC { return &TPCC{mix: mix} }

// Name implements workload.Workload.
func (t *TPCC) Name() string {
	if t.mix {
		return "TPCC-Mix"
	}
	return "TPCC"
}

// Setup implements workload.Workload.
func (t *TPCC) Setup(direct pmds.Accessor, heap *pmheap.Heap, cores int, rng *rand.Rand) {
	t.heap = heap
	t.whs = t.whs[:0]
	for c := 0; c < cores; c++ {
		w := &warehouse{
			wh:    heap.AllocLines(c, 1),
			dist:  heap.AllocLines(c, districts),
			cust:  heap.AllocLines(c, districts*custPerDist),
			item:  heap.AllocLines(c, items),
			stock: heap.AllocLines(c, items),
			hist:  heap.AllocLines(c, 8192),
		}
		direct.Store(w.wh, 0)
		direct.Store(w.wh+8, 7) // tax ‰
		for d := 0; d < districts; d++ {
			row := w.dist + mem.Addr(d*mem.LineSize)
			direct.Store(row, 1)    // next_o_id
			direct.Store(row+8, 0)  // ytd
			direct.Store(row+16, 5) // tax ‰
			ring := heap.AllocLines(c, 1+ringCap/mem.WordsPerLine)
			direct.Store(ring, 0)   // head
			direct.Store(ring+8, 0) // tail
			w.rings = append(w.rings, ring)
			dir := heap.Alloc(c, dirCap*mem.WordSize, mem.LineSize)
			w.dirs = append(w.dirs, dir)
		}
		for i := 0; i < districts*custPerDist; i++ {
			row := w.cust + mem.Addr(i*mem.LineSize)
			direct.Store(row, 5000) // balance
		}
		for i := 0; i < items; i++ {
			direct.Store(w.item+mem.Addr(i*mem.LineSize), mem.Word(rng.Intn(9900))+100) // price
			srow := w.stock + mem.Addr(i*mem.LineSize)
			direct.Store(srow, mem.Word(rng.Intn(90))+10) // qty
		}
		t.whs = append(t.whs, w)
	}
}

func (w *warehouse) distRow(d int) mem.Addr { return w.dist + mem.Addr(d*mem.LineSize) }
func (w *warehouse) custRow(d, c int) mem.Addr {
	return w.cust + mem.Addr((d*custPerDist+c)*mem.LineSize)
}
func (w *warehouse) itemRow(i int) mem.Addr  { return w.item + mem.Addr(i*mem.LineSize) }
func (w *warehouse) stockRow(i int) mem.Addr { return w.stock + mem.Addr(i*mem.LineSize) }

// ringPush appends an order reference to district d's new-order ring.
func (w *warehouse) ringPush(acc pmds.Accessor, d int, ref mem.Word) {
	ring := w.rings[d]
	tail := acc.Load(ring + 8)
	slot := ring + mem.LineSize + mem.Addr(uint64(tail)%ringCap*mem.WordSize)
	acc.Store(slot, ref)
	acc.Store(ring+8, tail+1)
}

// ringPop removes the oldest order reference, if any.
func (w *warehouse) ringPop(acc pmds.Accessor, d int) (mem.Word, bool) {
	ring := w.rings[d]
	head := acc.Load(ring)
	tail := acc.Load(ring + 8)
	if head == tail {
		return 0, false
	}
	slot := ring + mem.LineSize + mem.Addr(uint64(head)%ringCap*mem.WordSize)
	ref := acc.Load(slot)
	acc.Store(ring, head+1)
	return ref, true
}

// newOrder runs one New-Order transaction (inside an open tx).
func (t *TPCC) newOrder(acc pmds.Accessor, core int, w *warehouse, rng *rand.Rand) {
	d := rng.Intn(districts)
	c := rng.Intn(custPerDist)
	drow := w.distRow(d)
	wtax := acc.Load(w.wh + 8)
	dtax := acc.Load(drow + 16)
	oid := acc.Load(drow)
	acc.Store(drow, oid+1)
	acc.Load(w.custRow(d, c)) // customer discount/credit read

	olCnt := 1 + rng.Intn(maxOrderLine)
	// Order row + its order lines, allocated together.
	orow := t.heap.AllocLines(core, 1+olCnt)
	acc.Store(orow, oid)
	acc.Store(orow+8, mem.Word(c))
	acc.Store(orow+16, mem.Word(olCnt))
	acc.Store(orow+24, 0) // carrier: unassigned
	var total mem.Word
	for l := 0; l < olCnt; l++ {
		it := rng.Intn(items)
		price := acc.Load(w.itemRow(it))
		srow := w.stockRow(it)
		qty := acc.Load(srow)
		olQty := mem.Word(rng.Intn(10)) + 1
		if qty >= olQty+10 {
			qty -= olQty
		} else {
			qty += 91 - olQty
		}
		acc.Store(srow, qty)
		acc.Store(srow+8, acc.Load(srow+8)+olQty) // ytd
		ol := orow + mem.Addr((1+l)*mem.LineSize)
		amount := price * olQty
		acc.Store(ol, mem.Word(it))
		acc.Store(ol+8, olQty)
		acc.Store(ol+16, amount)
		acc.Store(ol+24, 0) // delivery date
		total += amount
	}
	_ = wtax + dtax
	// Register the order and queue it for delivery.
	dir := w.dirs[d]
	acc.Store(dir+mem.Addr(uint64(oid)%dirCap*mem.WordSize), mem.Word(orow))
	w.ringPush(acc, d, mem.Word(orow))
}

// payment runs one Payment transaction.
func (t *TPCC) payment(acc pmds.Accessor, w *warehouse, rng *rand.Rand) {
	d := rng.Intn(districts)
	c := rng.Intn(custPerDist)
	amt := mem.Word(rng.Intn(5000)) + 1
	acc.Store(w.wh, acc.Load(w.wh)+amt) // w_ytd
	drow := w.distRow(d)
	acc.Store(drow+8, acc.Load(drow+8)+amt) // d_ytd
	crow := w.custRow(d, c)
	acc.Store(crow, acc.Load(crow)-amt)     // balance
	acc.Store(crow+8, acc.Load(crow+8)+amt) // ytd_payment
	acc.Store(crow+16, acc.Load(crow+16)+1) // payment_cnt
	h := w.hist + mem.Addr((w.histN%8192)*mem.LineSize)
	w.histN++
	acc.Store(h, mem.Word(d)<<32|mem.Word(c))
	acc.Store(h+8, amt)
}

// orderStatus runs one Order-Status transaction (read-only).
func (t *TPCC) orderStatus(acc pmds.Accessor, w *warehouse, rng *rand.Rand) {
	d := rng.Intn(districts)
	c := rng.Intn(custPerDist)
	acc.Load(w.custRow(d, c))
	oid := acc.Load(w.distRow(d))
	if oid <= 1 {
		return
	}
	oid--
	orow := mem.Addr(acc.Load(w.dirs[d] + mem.Addr(uint64(oid)%dirCap*mem.WordSize)))
	if orow == 0 {
		return
	}
	olCnt := int(acc.Load(orow + 16))
	for l := 0; l < olCnt; l++ {
		ol := orow + mem.Addr((1+l)*mem.LineSize)
		acc.Load(ol)
		acc.Load(ol + 16)
	}
}

// delivery runs one Delivery transaction: pop the oldest undelivered
// order in every district, stamp it and credit the customer.
func (t *TPCC) delivery(acc pmds.Accessor, w *warehouse, rng *rand.Rand) {
	carrier := mem.Word(rng.Intn(10)) + 1
	for d := 0; d < districts; d++ {
		ref, ok := w.ringPop(acc, d)
		if !ok {
			continue
		}
		orow := mem.Addr(ref)
		acc.Store(orow+24, carrier)
		olCnt := int(acc.Load(orow + 16))
		var total mem.Word
		for l := 0; l < olCnt; l++ {
			ol := orow + mem.Addr((1+l)*mem.LineSize)
			total += acc.Load(ol + 16)
			acc.Store(ol+24, 20260705) // delivery date
		}
		c := int(acc.Load(orow+8)) % custPerDist
		crow := w.custRow(d, c)
		acc.Store(crow, acc.Load(crow)+total)
		acc.Store(crow+24, acc.Load(crow+24)+1) // delivery_cnt
	}
}

// stockLevel runs one Stock-Level transaction (read-only).
func (t *TPCC) stockLevel(acc pmds.Accessor, w *warehouse, rng *rand.Rand) {
	d := rng.Intn(districts)
	next := acc.Load(w.distRow(d))
	low := 0
	for k := mem.Word(1); k <= 5 && k < next; k++ {
		oid := next - k
		orow := mem.Addr(acc.Load(w.dirs[d] + mem.Addr(uint64(oid)%dirCap*mem.WordSize)))
		if orow == 0 {
			continue
		}
		olCnt := int(acc.Load(orow + 16))
		for l := 0; l < olCnt; l++ {
			it := int(acc.Load(orow+mem.Addr((1+l)*mem.LineSize))) % items
			if acc.Load(w.stockRow(it)) < 15 {
				low++
			}
		}
	}
}

// Program implements workload.Workload.
func (t *TPCC) Program(core, txns int) sim.Program {
	w := t.whs[core]
	return func(ctx *sim.Ctx) {
		for i := 0; i < txns; i++ {
			ctx.TxBegin()
			for j := 0; j < t.OpsPerTx(); j++ {
				if !t.mix {
					t.newOrder(ctx, core, w, ctx.Rand)
					continue
				}
				switch p := ctx.Rand.Intn(100); {
				case p < 45:
					t.newOrder(ctx, core, w, ctx.Rand)
				case p < 88:
					t.payment(ctx, w, ctx.Rand)
				case p < 92:
					t.orderStatus(ctx, w, ctx.Rand)
				case p < 96:
					t.delivery(ctx, w, ctx.Rand)
				default:
					t.stockLevel(ctx, w, ctx.Rand)
				}
			}
			ctx.TxEnd()
		}
	}
}

// Stream implements workload.Workload on the coroutine transport: the
// five transaction profiles are deeply data-dependent (directory walks,
// order-line scans), so the transaction loop keeps its program form.
func (t *TPCC) Stream(core, txns int, rng *rand.Rand) sim.OpStream {
	return sim.NewProgramStream(core, rng, t.Program(core, txns))
}
