package tpcc

import (
	"math/rand"
	"testing"

	"silo/internal/cache"
	"silo/internal/core"
	"silo/internal/machine"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/pmheap"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/workload"
)

func run(t *testing.T, mix bool, cores, txnsPerCore int) (*TPCC, stats.Run) {
	t.Helper()
	m := machine.New(machine.Config{
		Cores:  cores,
		PM:     pm.DefaultConfig(),
		Cache:  cache.DefaultHierarchyConfig(),
		Design: core.Factory(core.Options{}),
	})
	w := New(mix)
	heap := pmheap.New(pm.DefaultConfig().Layout, cores)
	w.Setup(workload.Direct(m.Device()), heap, cores, rand.New(rand.NewSource(13)))
	progs := make([]sim.Program, cores)
	for c := 0; c < cores; c++ {
		progs[c] = w.Program(c, txnsPerCore)
	}
	m.Engine(13).Run(progs)
	return w, m.CollectStats("Silo", w.Name())
}

func TestNames(t *testing.T) {
	if New(false).Name() != "TPCC" || New(true).Name() != "TPCC-Mix" {
		t.Error("names")
	}
}

func TestNewOrderCommitsAndWrites(t *testing.T) {
	_, r := run(t, false, 1, 300)
	if r.Transactions != 300 {
		t.Fatalf("committed %d", r.Transactions)
	}
	perTx := float64(r.Stores) / float64(r.Transactions)
	// New-Order writes roughly 14–20 words in this scaled configuration.
	if perTx < 8 || perTx > 30 {
		t.Errorf("New-Order stores/tx = %.1f, outside the expected envelope", perTx)
	}
}

func TestMixCommits(t *testing.T) {
	_, r := run(t, true, 1, 500)
	if r.Transactions != 500 {
		t.Fatalf("committed %d", r.Transactions)
	}
	if r.Stores == 0 || r.Loads == 0 {
		t.Error("mix produced no traffic")
	}
}

func TestMultiCoreWarehousesIndependent(t *testing.T) {
	w, r := run(t, false, 2, 100)
	if r.Transactions != 200 {
		t.Fatalf("committed %d", r.Transactions)
	}
	if len(w.whs) != 2 {
		t.Fatal("warehouse count")
	}
	// Per-core warehouses must not share addresses (share-nothing).
	if w.whs[0].wh == w.whs[1].wh || w.whs[0].stock == w.whs[1].stock {
		t.Error("warehouses share PM addresses")
	}
}

// TestNewOrderSemantics drives newOrder directly against a plain map
// accessor and checks the database effects.
func TestNewOrderSemantics(t *testing.T) {
	acc := &mapAcc{words: map[uint64]uint64{}}
	w := New(false)
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(acc, heap, 1, rand.New(rand.NewSource(1)))
	wh := w.whs[0]
	rng := rand.New(rand.NewSource(2))

	before := make([]uint64, districts)
	for d := 0; d < districts; d++ {
		before[d] = acc.words[uint64(wh.distRow(d))]
	}
	for i := 0; i < 50; i++ {
		w.newOrder(acc, 0, wh, rng)
	}
	// next_o_id advanced exactly once per order, summed over districts.
	var advanced uint64
	for d := 0; d < districts; d++ {
		advanced += acc.words[uint64(wh.distRow(d))] - before[d]
	}
	if advanced != 50 {
		t.Errorf("next_o_id advanced %d, want 50", advanced)
	}
	// Every district ring holds tail-head == number of orders placed there.
	var queued uint64
	for d := 0; d < districts; d++ {
		ring := wh.rings[d]
		queued += acc.words[uint64(ring)+8] - acc.words[uint64(ring)]
	}
	if queued != 50 {
		t.Errorf("new-order rings hold %d, want 50", queued)
	}
}

func TestDeliveryDrainsRings(t *testing.T) {
	acc := &mapAcc{words: map[uint64]uint64{}}
	w := New(true)
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(acc, heap, 1, rand.New(rand.NewSource(1)))
	wh := w.whs[0]
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		w.newOrder(acc, 0, wh, rng)
	}
	for i := 0; i < 5; i++ {
		w.delivery(acc, wh, rng)
	}
	var queued uint64
	for d := 0; d < districts; d++ {
		ring := wh.rings[d]
		queued += acc.words[uint64(ring)+8] - acc.words[uint64(ring)]
	}
	if queued >= 30 {
		t.Errorf("delivery drained nothing: %d still queued", queued)
	}
	// Delivery on empty rings must be a no-op, not a crash.
	for i := 0; i < 20; i++ {
		w.delivery(acc, wh, rng)
	}
}

func TestReadOnlyTransactionsDoNotWrite(t *testing.T) {
	acc := &mapAcc{words: map[uint64]uint64{}}
	w := New(true)
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(acc, heap, 1, rand.New(rand.NewSource(1)))
	wh := w.whs[0]
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		w.newOrder(acc, 0, wh, rng)
	}
	acc.stores = 0
	for i := 0; i < 20; i++ {
		w.orderStatus(acc, wh, rng)
		w.stockLevel(acc, wh, rng)
	}
	if acc.stores != 0 {
		t.Errorf("read-only transactions stored %d words", acc.stores)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	acc := &mapAcc{words: map[uint64]uint64{}}
	w := New(true)
	heap := pmheap.New(pm.DefaultConfig().Layout, 1)
	w.Setup(acc, heap, 1, rand.New(rand.NewSource(1)))
	wh := w.whs[0]
	ytdBefore := acc.words[uint64(wh.wh)]
	w.payment(acc, wh, rand.New(rand.NewSource(3)))
	if acc.words[uint64(wh.wh)] <= ytdBefore {
		t.Error("warehouse YTD not increased")
	}
}

// mapAcc is a pmds.Accessor over a plain map.
type mapAcc struct {
	words  map[uint64]uint64
	stores int
}

func (a *mapAcc) Load(addr mem.Addr) mem.Word { return mem.Word(a.words[uint64(addr)]) }
func (a *mapAcc) Store(addr mem.Addr, v mem.Word) {
	a.stores++
	a.words[uint64(addr)] = uint64(v)
}
