package energy

// PM lifetime model: phase-change memory cells endure a bounded number of
// programs (10^8–10^9 for PCM). The paper motivates Fig. 11 with PM
// lifetime ("exacerbates the write endurance of PM and hence shortens the
// PM lifetime"); this model turns the simulator's media-write counters
// into the headline a datasheet would carry.

// LifetimeParams describes a PM DIMM for lifetime estimation.
type LifetimeParams struct {
	CapacityBytes int64   // device capacity
	CellEndurance float64 // program cycles per cell (PCM: ~1e8)
	WearLeveling  float64 // efficiency of wear leveling, 0..1 (1 = perfect)
	CyclesPerSec  float64 // simulated clock rate (2 GHz)
}

// DefaultLifetimeParams returns a 16 GB PCM DIMM at 2 GHz with 10^8-cycle
// cells and 90 %-efficient wear leveling.
func DefaultLifetimeParams() LifetimeParams {
	return LifetimeParams{
		CapacityBytes: 16 << 30,
		CellEndurance: 1e8,
		WearLeveling:  0.9,
		CyclesPerSec:  2e9,
	}
}

// Years estimates the device lifetime in years for a workload that wrote
// mediaBytes to the media over simCycles of simulated time, assuming the
// workload runs continuously at that rate. With perfect wear leveling the
// device dies when CapacityBytes × CellEndurance total byte-programs have
// been issued; imperfect leveling scales that budget down.
func (p LifetimeParams) Years(mediaBytes int64, simCycles int64) float64 {
	if mediaBytes <= 0 || simCycles <= 0 {
		return 0
	}
	bytesPerSec := float64(mediaBytes) / (float64(simCycles) / p.CyclesPerSec)
	budget := float64(p.CapacityBytes) * p.CellEndurance * p.WearLeveling
	seconds := budget / bytesPerSec
	return seconds / (365.25 * 24 * 3600)
}

// RelativeLifetime returns how much longer a device lasts under `writes`
// media writes than under `baseWrites` for the same work: the Fig. 11
// endurance argument as a single ratio.
func RelativeLifetime(baseWrites, writes int64) float64 {
	if writes <= 0 || baseWrites <= 0 {
		return 0
	}
	return float64(baseWrites) / float64(writes)
}
