// Package energy implements the battery and hardware-overhead models of
// Tables I and IV: the energy to flush a persistence domain to PM at a
// crash (11.228 nJ per byte moved, from the mobile-platform data-movement
// study the paper cites) and the resulting supercapacitor / lithium
// thin-film battery volumes and areas.
package energy

import (
	"math"

	"silo/internal/logging"
)

// Energy-model constants (§VI-E).
const (
	// NanoJoulePerByte is the energy to move one byte from an on-chip
	// buffer to PM.
	NanoJoulePerByte = 11.228

	// CapDensityWhPerCm3 is the supercapacitor energy density (10⁻⁴ Wh/cm³).
	CapDensityWhPerCm3 = 1e-4
	// LiDensityWhPerCm3 is the lithium thin-film density (10⁻² Wh/cm³).
	LiDensityWhPerCm3 = 1e-2

	microJoulePerWh = 3.6e9
)

// Battery describes one battery option sized for a flush.
type Battery struct {
	VolumeMM3 float64
	AreaMM2   float64 // face area of a cube of that volume
}

// ForEnergy sizes a battery of the given density for an energy budget.
func ForEnergy(microJ, densityWhPerCm3 float64) Battery {
	wh := microJ / microJoulePerWh
	cm3 := wh / densityWhPerCm3
	mm3 := cm3 * 1000
	return Battery{VolumeMM3: mm3, AreaMM2: math.Pow(mm3, 2.0/3.0)}
}

// Domain is a persistence domain whose crash flush a battery must power.
type Domain struct {
	Name       string
	FlushBytes int64
	DirtyFrac  float64 // fraction actually flushed (eADR flushes dirty blocks only)
}

// FlushEnergyMicroJ returns the crash-flush energy in µJ.
func (d Domain) FlushEnergyMicroJ() float64 {
	return float64(d.FlushBytes) * d.DirtyFrac * NanoJoulePerByte / 1000
}

// Cap returns the supercapacitor sized for this domain.
func (d Domain) Cap() Battery { return ForEnergy(d.FlushEnergyMicroJ(), CapDensityWhPerCm3) }

// Li returns the lithium thin-film battery sized for this domain.
func (d Domain) Li() Battery { return ForEnergy(d.FlushEnergyMicroJ(), LiDensityWhPerCm3) }

// SiloDomain is Silo's battery-backed log buffers: cores × entries ×
// 34 B (26 B entry + 8 B log-region address, §VI-D).
func SiloDomain(cores, entries int) Domain {
	return Domain{
		Name:       "Silo",
		FlushBytes: int64(cores) * int64(entries) * logging.OnChipEntryBytes,
		DirtyFrac:  1,
	}
}

// BBBDomain is BBB's battery-backed buffers: 32 entries × 64 B per core.
func BBBDomain(cores int) Domain {
	return Domain{Name: "BBB", FlushBytes: int64(cores) * 32 * 64, DirtyFrac: 1}
}

// EADRDomain is eADR's whole cache hierarchy (45 % of blocks dirty at a
// crash, per the paper's Table IV methodology).
func EADRDomain(cacheBytes int64) Domain {
	return Domain{Name: "eADR", FlushBytes: cacheBytes, DirtyFrac: 0.45}
}

// HardwareOverhead summarizes Table I for a configuration.
type HardwareOverhead struct {
	LogBufferBytesPerCore int
	ComparatorsPerBuffer  int
	HeadTailBytesPerCore  int
	BatteryLiMM3PerBuffer float64
}

// Overhead computes Table I for a per-core buffer of `entries` entries.
func Overhead(entries int) HardwareOverhead {
	d := Domain{FlushBytes: int64(entries) * logging.OnChipEntryBytes, DirtyFrac: 1}
	return HardwareOverhead{
		LogBufferBytesPerCore: entries * logging.OnChipEntryBytes,
		ComparatorsPerBuffer:  entries,
		HeadTailBytesPerCore:  16,
		BatteryLiMM3PerBuffer: d.Li().VolumeMM3,
	}
}
