package energy

import (
	"math"
	"testing"
)

func close(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

// TestSiloTableIV reproduces the Silo row of Table IV for 8 cores:
// 5.3125 KB flush size, ~62 µJ, Cap 0.17 mm³ / 0.31 mm², Li 0.0017 mm³.
func TestSiloTableIV(t *testing.T) {
	d := SiloDomain(8, 20)
	if d.FlushBytes != 5440 {
		t.Errorf("flush bytes = %d, want 5440 (5.3125 KB)", d.FlushBytes)
	}
	e := d.FlushEnergyMicroJ()
	if !close(e, 62, 0.03) {
		t.Errorf("flush energy = %.2f µJ, paper: 62", e)
	}
	if v := d.Cap().VolumeMM3; !close(v, 0.17, 0.05) {
		t.Errorf("Cap volume = %.3f mm³, paper: 0.17", v)
	}
	if a := d.Cap().AreaMM2; !close(a, 0.31, 0.05) {
		t.Errorf("Cap area = %.3f mm², paper: 0.31", a)
	}
	if v := d.Li().VolumeMM3; !close(v, 0.0017, 0.05) {
		t.Errorf("Li volume = %.5f mm³, paper: 0.0017", v)
	}
	if a := d.Li().AreaMM2; !close(a, 0.014, 0.06) {
		t.Errorf("Li area = %.4f mm², paper: 0.014", a)
	}
}

// TestBBBTableIV reproduces the BBB row: 16 KB, ~190 µJ, Cap ~0.5 mm³.
func TestBBBTableIV(t *testing.T) {
	d := BBBDomain(8)
	if d.FlushBytes != 16<<10 {
		t.Errorf("BBB flush bytes = %d, want 16 KB", d.FlushBytes)
	}
	e := d.FlushEnergyMicroJ()
	if !close(e, 194, 0.06) { // paper: 194 µJ; pure model gives ~184
		t.Errorf("BBB energy = %.1f µJ, paper: 194", e)
	}
	if v := d.Cap().VolumeMM3; !close(v, 0.54, 0.1) {
		t.Errorf("BBB Cap volume = %.3f, paper: 0.54", v)
	}
}

// TestEADRTableIV reproduces the eADR row: 10,496 KB of caches, 45 %
// dirty, ~54,377 µJ, Cap 151 mm³ / 28.4 mm².
func TestEADRTableIV(t *testing.T) {
	d := EADRDomain(10496 << 10)
	e := d.FlushEnergyMicroJ()
	if !close(e, 54377, 0.01) {
		t.Errorf("eADR energy = %.0f µJ, paper: 54,377", e)
	}
	if v := d.Cap().VolumeMM3; !close(v, 151, 0.02) {
		t.Errorf("eADR Cap volume = %.1f mm³, paper: 151", v)
	}
	if a := d.Cap().AreaMM2; !close(a, 28.4, 0.02) {
		t.Errorf("eADR Cap area = %.1f mm², paper: 28.4", a)
	}
	if v := d.Li().VolumeMM3; !close(v, 1.51, 0.02) {
		t.Errorf("eADR Li volume = %.2f mm³, paper: 1.51", v)
	}
}

// TestBatteryRatios checks the headline comparison: eADR needs ~880x the
// Cap volume of Silo, BBB ~3.2x.
func TestBatteryRatios(t *testing.T) {
	siloV := SiloDomain(8, 20).Cap().VolumeMM3
	if r := EADRDomain(10496<<10).Cap().VolumeMM3 / siloV; r < 700 || r > 1000 {
		t.Errorf("eADR/Silo Cap ratio = %.0f, paper: 888", r)
	}
	if r := BBBDomain(8).Cap().VolumeMM3 / siloV; r < 2.5 || r > 4 {
		t.Errorf("BBB/Silo Cap ratio = %.1f, paper: 3.2", r)
	}
}

// TestTableIOverhead checks the per-core hardware budget of Table I.
func TestTableIOverhead(t *testing.T) {
	o := Overhead(20)
	if o.LogBufferBytesPerCore != 680 {
		t.Errorf("log buffer = %d B/core, paper: 680", o.LogBufferBytesPerCore)
	}
	if o.ComparatorsPerBuffer != 20 {
		t.Errorf("comparators = %d, paper: 20", o.ComparatorsPerBuffer)
	}
	if o.HeadTailBytesPerCore != 16 {
		t.Errorf("head/tail registers = %d B, paper: 16", o.HeadTailBytesPerCore)
	}
	// Paper: 2.125e-4 mm³ lithium per log buffer.
	if !close(o.BatteryLiMM3PerBuffer, 2.125e-4, 0.05) {
		t.Errorf("battery = %.4g mm³, paper: 2.125e-4", o.BatteryLiMM3PerBuffer)
	}
}

func TestForEnergyMonotone(t *testing.T) {
	small := ForEnergy(10, CapDensityWhPerCm3)
	big := ForEnergy(100, CapDensityWhPerCm3)
	if big.VolumeMM3 <= small.VolumeMM3 || big.AreaMM2 <= small.AreaMM2 {
		t.Error("battery sizing not monotone in energy")
	}
	li := ForEnergy(10, LiDensityWhPerCm3)
	if li.VolumeMM3 >= small.VolumeMM3 {
		t.Error("denser chemistry must give a smaller battery")
	}
}

func TestLifetimeModel(t *testing.T) {
	p := DefaultLifetimeParams()
	// 1 GB/s of media writes into a 16 GB device with 1e8-cycle cells and
	// 90% leveling: budget = 16e9 * 1e8 * 0.9 bytes; at 1e9 B/s that is
	// 1.44e9 * ... seconds — sanity: strictly positive, scales inversely.
	cycles := int64(2e9) // one second of simulated time
	y1 := p.Years(1<<30, cycles)
	y2 := p.Years(2<<30, cycles)
	if y1 <= 0 || y2 <= 0 {
		t.Fatal("lifetime must be positive")
	}
	if r := y1 / y2; r < 1.99 || r > 2.01 {
		t.Errorf("doubling write rate must halve lifetime: ratio %.3f", r)
	}
	if p.Years(0, cycles) != 0 || p.Years(1, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
}

func TestRelativeLifetime(t *testing.T) {
	if RelativeLifetime(100, 25) != 4 {
		t.Error("4x fewer writes = 4x lifetime")
	}
	if RelativeLifetime(0, 10) != 0 || RelativeLifetime(10, 0) != 0 {
		t.Error("degenerate inputs")
	}
}
