package logging

import (
	"fmt"

	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
)

// RegionWriter manages the distributed PM log region: each thread owns a
// contiguous log area addressed by head/tail registers (two 8 B flip-flop
// registers per core, Table I), so threads never contend on log writes.
type RegionWriter struct {
	layout  mem.Layout
	dev     *pm.Device
	threads int
	head    []mem.Addr // next append address per thread
	base    []mem.Addr
	size    []uint64

	// ImagesWritten counts serialized records appended during the run
	// (overflow traffic); crash-flush records are counted separately.
	ImagesWritten int64
	BytesWritten  int64
}

// NewRegionWriter lays out one log area per thread.
func NewRegionWriter(dev *pm.Device, threads int) *RegionWriter {
	layout := dev.Config().Layout
	w := &RegionWriter{layout: layout, dev: dev, threads: threads}
	for t := 0; t < threads; t++ {
		b, s := layout.ThreadLogArea(t, threads)
		w.base = append(w.base, b)
		w.size = append(w.size, s)
		w.head = append(w.head, b)
	}
	return w
}

// Append serializes the images into thread tid's log area through the
// memory controller, arriving at `arrival`. Consecutive images are packed
// into one PM write request (the batched overflow flush of §III-F), so a
// batch of N undo entries lands in a single on-PM-buffer line. It returns
// the WPQ acceptance time of the write.
func (w *RegionWriter) Append(arrival sim.Cycle, tid int, images []Image) sim.Cycle {
	if len(images) == 0 {
		return arrival
	}
	buf := make([]byte, 0, len(images)*UndoRedoBytes)
	var scratch [UndoRedoBytes]byte
	for _, im := range images {
		n := im.Encode(scratch[:])
		buf = append(buf, scratch[:n]...)
	}
	addr := w.reserve(tid, len(buf))
	accept, _ := w.dev.Write(arrival, addr, buf)
	w.ImagesWritten += int64(len(images))
	w.BytesWritten += int64(len(buf))
	return accept
}

// AppendAtCrash writes images with battery power during a crash flush:
// durable, but outside the run's timing and write-traffic accounting
// (the paper's Fig. 11 measures failure-free traffic).
func (w *RegionWriter) AppendAtCrash(tid int, images []Image) {
	if len(images) == 0 {
		return
	}
	buf := make([]byte, 0, len(images)*UndoRedoBytes)
	var scratch [UndoRedoBytes]byte
	for _, im := range images {
		n := im.Encode(scratch[:])
		buf = append(buf, scratch[:n]...)
	}
	addr := w.reserve(tid, len(buf))
	w.dev.Populate(addr, buf)
}

func (w *RegionWriter) reserve(tid int, n int) mem.Addr {
	if uint64(w.head[tid]-w.base[tid])+uint64(n) > w.size[tid] {
		panic(fmt.Sprintf("logging: thread %d log area exhausted", tid))
	}
	a := w.head[tid]
	w.head[tid] += mem.Addr(n)
	return a
}

// Truncate deletes thread tid's logs — log deletion after a transaction
// commits with no crash (§III-F). The used bytes are invalidated so a
// later recovery scan stops at the area base; truncation is metadata work
// in real hardware and is not charged to the run's write traffic.
func (w *RegionWriter) Truncate(tid int) {
	used := int(w.head[tid] - w.base[tid])
	if used > 0 {
		w.dev.Erase(w.base[tid], used)
	}
	w.head[tid] = w.base[tid]
}

// Used returns the bytes currently appended in thread tid's log area.
func (w *RegionWriter) Used(tid int) uint64 { return uint64(w.head[tid] - w.base[tid]) }

// AreaSize returns the capacity of thread tid's log area.
func (w *RegionWriter) AreaSize(tid int) uint64 { return w.size[tid] }

// Scan parses thread tid's log area from its base until the first invalid
// record, returning the records in append order. Recovery uses it after a
// crash; the scan is self-terminating, so it does not depend on the
// volatile head register surviving the crash.
func (w *RegionWriter) Scan(tid int) []Image {
	var out []Image
	addr := w.base[tid]
	end := w.base[tid] + mem.Addr(w.size[tid])
	for addr+UndoRedoBytes <= end {
		raw := w.dev.Peek(addr, UndoRedoBytes)
		im, sz, ok := DecodeImage(raw)
		if !ok {
			break
		}
		out = append(out, im)
		addr += mem.Addr(sz)
	}
	return out
}

// ScanAll returns every thread's records, indexed by thread.
func (w *RegionWriter) ScanAll() [][]Image {
	out := make([][]Image, w.threads)
	for t := 0; t < w.threads; t++ {
		out[t] = w.Scan(t)
	}
	return out
}
