package logging

import (
	"fmt"

	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// RegionWriter manages the distributed PM log region: each thread owns a
// contiguous log area addressed by head/tail registers (two 8 B flip-flop
// registers per core, Table I), so threads never contend on log writes.
//
// Records land on media sealed (see Seal): every record carries a
// sequence number and a CRC so a post-crash scan can tell a torn or
// corrupt record from a good one.
type RegionWriter struct {
	layout  mem.Layout
	dev     *pm.Device
	threads int
	head    []mem.Addr // next append address per thread
	base    []mem.Addr
	size    []uint64
	seq     []uint8 // next record sequence number per thread (mod 256)

	// ImagesWritten counts serialized records appended during the run
	// (overflow traffic); crash-flush records are counted separately.
	ImagesWritten int64
	BytesWritten  int64

	// CrashImagesDropped / CrashImagesTorn count crash-flush records the
	// energy budget cut: dropped entirely, or left as a torn prefix.
	CrashImagesDropped int64
	CrashImagesTorn    int64

	// OnAppend, when non-nil, observes every run-time Append (thread id,
	// record count) — the hook fault injection uses to trigger a crash
	// mid-overflow-eviction. Crash flushes do not fire it.
	OnAppend func(tid, images int)

	// OnCrashAppend, when non-nil, observes every crash-flush append
	// *before* the energy budget is consumed — the intended flush, which
	// is what ordering and battery-sizing invariants are about (whether
	// the budget then tears it is a separate, legal fault).
	OnCrashAppend func(tid int, critical bool, images []Image)

	// Tel receives typed probe events (seal writes, crash-flush appends);
	// nil disables probes.
	Tel *telemetry.Recorder
}

// NewRegionWriter lays out one log area per thread.
func NewRegionWriter(dev *pm.Device, threads int) *RegionWriter {
	layout := dev.Config().Layout
	w := &RegionWriter{layout: layout, dev: dev, threads: threads,
		seq: make([]uint8, threads)}
	for t := 0; t < threads; t++ {
		b, s := layout.ThreadLogArea(t, threads)
		w.base = append(w.base, b)
		w.size = append(w.size, s)
		w.head = append(w.head, b)
	}
	return w
}

// Threads returns the number of per-thread log areas.
func (w *RegionWriter) Threads() int { return w.threads }

// seal serializes images sealed with consecutive sequence numbers.
func (w *RegionWriter) seal(tid int, images []Image) []byte {
	buf := make([]byte, 0, len(images)*MaxSealedBytes)
	var scratch [MaxSealedBytes]byte
	for _, im := range images {
		n := im.Seal(scratch[:], w.seq[tid])
		w.seq[tid]++
		buf = append(buf, scratch[:n]...)
	}
	return buf
}

// Append serializes the images into thread tid's log area through the
// memory controller, arriving at `arrival`. Consecutive images are packed
// into one PM write request (the batched overflow flush of §III-F), so a
// batch of N undo entries lands in a single on-PM-buffer line. It returns
// the WPQ acceptance time of the write.
func (w *RegionWriter) Append(arrival sim.Cycle, tid int, images []Image) sim.Cycle {
	if len(images) == 0 {
		return arrival
	}
	buf := w.seal(tid, images)
	addr := w.reserve(tid, len(buf))
	accept, _ := w.dev.Write(arrival, addr, buf)
	w.ImagesWritten += int64(len(images))
	w.BytesWritten += int64(len(buf))
	w.Tel.LogSeal(tid, accept, len(images), len(buf))
	if w.OnAppend != nil {
		w.OnAppend(tid, len(images))
	}
	return accept
}

// AppendAtCrash writes images with battery power during a crash flush:
// durable, but outside the run's timing and write-traffic accounting
// (the paper's Fig. 11 measures failure-free traffic). The device's
// crash-energy budget applies: the flush can stop partway, dropping a
// suffix of records and tearing the last one at word granularity.
func (w *RegionWriter) AppendAtCrash(tid int, images []Image) {
	w.appendAtCrash(tid, images, false)
}

// AppendAtCrashCritical is AppendAtCrash for records the battery reserve
// guarantees — commit ID tuples and undo logs, the set recovery cannot
// be correct without and the one the paper's Table IV battery is sized
// for. They bypass the energy budget unless it is armed strict.
func (w *RegionWriter) AppendAtCrashCritical(tid int, images []Image) {
	w.appendAtCrash(tid, images, true)
}

func (w *RegionWriter) appendAtCrash(tid int, images []Image, critical bool) {
	w.Tel.LogCrashFlush(tid, 0, len(images), critical)
	if w.OnCrashAppend != nil {
		w.OnCrashAppend(tid, critical, images)
	}
	var scratch [MaxSealedBytes]byte
	for i, im := range images {
		n := im.Seal(scratch[:], w.seq[tid])
		allowed := w.dev.CrashAllowance(n, critical)
		if allowed >= n {
			addr := w.reserve(tid, n)
			w.dev.Populate(addr, scratch[:n])
			w.seq[tid]++
			continue
		}
		// Energy exhausted: the remaining records never leave the chip.
		if allowed > 0 {
			addr := w.reserve(tid, allowed)
			w.dev.Populate(addr, scratch[:allowed])
			w.CrashImagesTorn++
			w.CrashImagesDropped += int64(len(images) - i - 1)
		} else {
			w.CrashImagesDropped += int64(len(images) - i)
		}
		return
	}
}

func (w *RegionWriter) reserve(tid int, n int) mem.Addr {
	if uint64(w.head[tid]-w.base[tid])+uint64(n) > w.size[tid] {
		panic(fmt.Sprintf("logging: thread %d log area exhausted", tid))
	}
	a := w.head[tid]
	w.head[tid] += mem.Addr(n)
	return a
}

// Truncate deletes thread tid's logs — log deletion after a transaction
// commits with no crash (§III-F). The used bytes are invalidated so a
// later recovery scan stops at the area base; truncation is metadata work
// in real hardware and is not charged to the run's write traffic. The
// sequence counter restarts with the area.
func (w *RegionWriter) Truncate(tid int) {
	used := int(w.head[tid] - w.base[tid])
	if used > 0 {
		w.dev.Erase(w.base[tid], used)
	}
	w.head[tid] = w.base[tid]
	w.seq[tid] = 0
}

// Used returns the bytes currently appended in thread tid's log area.
func (w *RegionWriter) Used(tid int) uint64 { return uint64(w.head[tid] - w.base[tid]) }

// AreaSize returns the capacity of thread tid's log area.
func (w *RegionWriter) AreaSize(tid int) uint64 { return w.size[tid] }

// AreaBase returns the base address of thread tid's log area.
func (w *RegionWriter) AreaBase(tid int) mem.Addr { return w.base[tid] }

// ScanResult is the outcome of one thread's checked log scan.
type ScanResult struct {
	// Images holds the well-formed records in append order.
	Images []Image
	// Quarantined counts torn/corrupt records the scan refused to
	// interpret. The scan stops at the first one: everything after a
	// tear is unordered garbage the sequence discipline cannot vouch for.
	Quarantined int
}

// ScanChecked parses thread tid's log area from its base, verifying each
// record's CRC and sequence number, until the clean end of the log or a
// torn/corrupt record (which is quarantined and terminates the scan).
// Recovery uses it after a crash; the scan is self-terminating, so it
// does not depend on the volatile head register surviving the crash.
func (w *RegionWriter) ScanChecked(tid int) ScanResult {
	var res ScanResult
	addr := w.base[tid]
	end := w.base[tid] + mem.Addr(w.size[tid])
	seq := uint8(0)
	for addr < end {
		n := MaxSealedBytes
		if rem := int(end - addr); n > rem {
			n = rem
		}
		raw := w.dev.Peek(addr, n)
		im, sz, status := UnsealImage(raw, seq)
		if status == SealEnd {
			break
		}
		if status == SealCorrupt {
			res.Quarantined++
			break
		}
		res.Images = append(res.Images, im)
		addr += mem.Addr(sz)
		seq++
	}
	return res
}

// Scan returns thread tid's well-formed records in append order
// (ScanChecked without the quarantine count).
func (w *RegionWriter) Scan(tid int) []Image {
	return w.ScanChecked(tid).Images
}

// ScanAllChecked returns every thread's checked scan, indexed by thread.
func (w *RegionWriter) ScanAllChecked() []ScanResult {
	out := make([]ScanResult, w.threads)
	for t := 0; t < w.threads; t++ {
		out[t] = w.ScanChecked(t)
	}
	return out
}

// ScanAll returns every thread's records, indexed by thread.
func (w *RegionWriter) ScanAll() [][]Image {
	out := make([][]Image, w.threads)
	for t := 0; t < w.threads; t++ {
		out[t] = w.Scan(t)
	}
	return out
}
