package logging

import (
	"testing"
	"testing/quick"

	"silo/internal/mem"
	"silo/internal/pm"
)

func TestImageSizes(t *testing.T) {
	if UndoBytes != 18 {
		t.Errorf("undo image = %dB, paper says 18B", UndoBytes)
	}
	if UndoRedoBytes != 26 {
		t.Errorf("undo+redo image = %dB, paper says 26B", UndoRedoBytes)
	}
	if OnChipEntryBytes != 34 {
		t.Errorf("on-chip entry = %dB, paper says 26+8", OnChipEntryBytes)
	}
	if DefaultBufferEntries*OnChipEntryBytes != 680 {
		t.Errorf("log buffer = %dB/core, paper says 680B",
			DefaultBufferEntries*OnChipEntryBytes)
	}
}

func TestImageEncodeDecodeRoundtrip(t *testing.T) {
	images := []Image{
		{Kind: ImageUndo, TID: 3, TxID: 500, Addr: 0x123456789AB8, Data: 0xCAFE},
		{Kind: ImageRedo, FlushBit: true, TID: 255, TxID: 65535, Addr: mem.AddrMask48 &^ 7, Data: ^mem.Word(0)},
		{Kind: ImageCommit, TID: 7, TxID: 42},
		{Kind: ImageUndoRedo, TID: 1, TxID: 2, Addr: 0x1000, Data: 1, Data2: 2},
	}
	var buf [UndoRedoBytes]byte
	for _, im := range images {
		n := im.Encode(buf[:])
		if n != im.Size() {
			t.Errorf("%v: encoded %dB, Size says %d", im.Kind, n, im.Size())
		}
		got, n2, ok := DecodeImage(buf[:])
		if !ok || n2 != n {
			t.Fatalf("%v: decode failed (ok=%v n=%d)", im.Kind, ok, n2)
		}
		want := im
		if want.Kind == ImageCommit {
			want.Addr, want.Data, want.Data2 = 0, 0, 0
		}
		if want.Kind == ImageUndo || want.Kind == ImageRedo {
			want.Data2 = 0
		}
		if got != want {
			t.Errorf("roundtrip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	if _, _, ok := DecodeImage(make([]byte, 32)); ok {
		t.Error("decoded an all-zero record")
	}
	if _, _, ok := DecodeImage([]byte{0x08}); ok {
		t.Error("decoded a truncated record")
	}
}

func TestImageEncodeProperty(t *testing.T) {
	f := func(kindRaw uint8, flush bool, tid uint8, txid uint16, addr uint64, d1, d2 uint64) bool {
		im := Image{
			Kind:     ImageKind(kindRaw % 4),
			FlushBit: flush,
			TID:      tid,
			TxID:     txid,
			Addr:     mem.Addr(addr) & mem.AddrMask48,
			Data:     mem.Word(d1),
			Data2:    mem.Word(d2),
		}
		var buf [UndoRedoBytes]byte
		n := im.Encode(buf[:])
		got, n2, ok := DecodeImage(buf[:])
		if !ok || n != n2 {
			return false
		}
		if got.Kind != im.Kind || got.FlushBit != im.FlushBit ||
			got.TID != im.TID || got.TxID != im.TxID {
			return false
		}
		if im.Kind == ImageCommit {
			return true
		}
		if got.Addr != im.Addr || got.Data != im.Data {
			return false
		}
		return im.Kind != ImageUndoRedo || got.Data2 == im.Data2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryImages(t *testing.T) {
	e := Entry{FlushBit: true, TID: 2, TxID: 9, Addr: 0x800, Old: 10, New: 20}
	u := e.UndoImage()
	if u.Kind != ImageUndo || u.Data != 10 || !u.FlushBit || u.Addr != 0x800 {
		t.Errorf("undo image wrong: %+v", u)
	}
	r := e.RedoImage()
	if r.Kind != ImageRedo || r.Data != 20 {
		t.Errorf("redo image wrong: %+v", r)
	}
	c := CommitImage(2, 9)
	if c.Kind != ImageCommit || c.TID != 2 || c.TxID != 9 {
		t.Errorf("commit image wrong: %+v", c)
	}
	if e.String() == "" || ImageUndoRedo.String() != "undo+redo" {
		t.Error("stringers broken")
	}
}

func TestBufferAppendAndMerge(t *testing.T) {
	b := NewBuffer(4)
	e := Entry{TID: 1, TxID: 1, Addr: 64, Old: 1, New: 2}
	if merged := b.Append(e); merged {
		t.Error("first append reported merged")
	}
	// Same word: merge keeps oldest old, newest new.
	if merged := b.Append(Entry{TID: 1, TxID: 1, Addr: 64, Old: 2, New: 3}); !merged {
		t.Error("same-word append did not merge")
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
	got := b.Entries()[0]
	if got.Old != 1 || got.New != 3 {
		t.Errorf("merged entry old/new = %d/%d, want 1/3", got.Old, got.New)
	}
	// Sub-word addresses map to the same word.
	if merged := b.Append(Entry{Addr: 68, Old: 3, New: 4}); !merged {
		t.Error("address 68 should merge into word 64")
	}
}

func TestBufferCapacityAndEvict(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 3; i++ {
		b.Append(Entry{Addr: mem.Addr(i * 8), New: mem.Word(i)})
	}
	if !b.Full() {
		t.Fatal("buffer should be full")
	}
	ev := b.EvictOldest(2)
	if len(ev) != 2 || ev[0].Addr != 0 || ev[1].Addr != 8 {
		t.Errorf("evicted %v, want oldest two", ev)
	}
	if b.Len() != 1 || b.Entries()[0].Addr != 16 {
		t.Errorf("remaining entry wrong")
	}
	// Evicting more than available returns what exists.
	if got := b.EvictOldest(10); len(got) != 1 {
		t.Errorf("over-evict returned %d entries", len(got))
	}
}

func TestBufferAppendFullPanics(t *testing.T) {
	b := NewBuffer(1)
	b.Append(Entry{Addr: 0})
	defer func() {
		if recover() == nil {
			t.Error("append to full buffer did not panic")
		}
	}()
	b.Append(Entry{Addr: 8})
}

func TestBufferPushSkipsMerge(t *testing.T) {
	b := NewBuffer(4)
	b.Push(Entry{Addr: 0, New: 1})
	b.Push(Entry{Addr: 0, New: 2})
	if b.Len() != 2 {
		t.Errorf("push merged: len=%d", b.Len())
	}
}

func TestBufferMatchLine(t *testing.T) {
	b := NewBuffer(8)
	b.Append(Entry{Addr: 64})
	b.Append(Entry{Addr: 72})
	b.Append(Entry{Addr: 128})
	n := 0
	b.MatchLine(70, func(e *Entry) {
		e.FlushBit = true
		n++
	})
	if n != 2 {
		t.Errorf("MatchLine hit %d entries, want 2", n)
	}
	if !b.Entry(0).FlushBit || !b.Entry(1).FlushBit || b.Entry(2).FlushBit {
		t.Error("flush bits set on wrong entries")
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(2)
	b.Append(Entry{Addr: 0})
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Error("reset did not empty buffer")
	}
	if b.Bytes() != 0 {
		t.Error("bytes after reset")
	}
	if b.Cap() != 2 {
		t.Error("capacity changed by reset")
	}
}

func newRegion(threads int) (*pm.Device, *RegionWriter) {
	dev := pm.New(pm.DefaultConfig())
	return dev, NewRegionWriter(dev, threads)
}

func TestRegionAppendScan(t *testing.T) {
	_, w := newRegion(2)
	images := []Image{
		{Kind: ImageUndo, TID: 0, TxID: 1, Addr: 0x100, Data: 11},
		{Kind: ImageRedo, TID: 0, TxID: 1, Addr: 0x108, Data: 22, FlushBit: false},
		CommitImage(0, 1),
	}
	w.Append(0, 0, images)
	got := w.Scan(0)
	if len(got) != 3 {
		t.Fatalf("scanned %d records, want 3", len(got))
	}
	if got[0].Data != 11 || got[1].Data != 22 || got[2].Kind != ImageCommit {
		t.Errorf("scan contents wrong: %+v", got)
	}
	// Thread 1 untouched.
	if len(w.Scan(1)) != 0 {
		t.Error("thread 1 has phantom records")
	}
}

func TestRegionTruncate(t *testing.T) {
	_, w := newRegion(1)
	w.Append(0, 0, []Image{{Kind: ImageUndo, Addr: 8, Data: 5}})
	if w.Used(0) == 0 {
		t.Fatal("nothing appended")
	}
	w.Truncate(0)
	if w.Used(0) != 0 {
		t.Error("head not reset")
	}
	if len(w.Scan(0)) != 0 {
		t.Error("records visible after truncate")
	}
	// Appending after truncate reuses the area cleanly.
	w.Append(0, 0, []Image{{Kind: ImageRedo, Addr: 16, Data: 6}})
	got := w.Scan(0)
	if len(got) != 1 || got[0].Data != 6 {
		t.Errorf("post-truncate scan wrong: %+v", got)
	}
}

func TestRegionAppendAtCrash(t *testing.T) {
	dev, w := newRegion(1)
	before := dev.Stats().WPQWrites
	w.AppendAtCrash(0, []Image{{Kind: ImageUndo, Addr: 8, Data: 5}})
	if dev.Stats().WPQWrites != before {
		t.Error("crash append counted as run traffic")
	}
	if len(w.Scan(0)) != 1 {
		t.Error("crash append not durable")
	}
}

func TestRegionBatchedAppendIsOneWrite(t *testing.T) {
	dev, w := newRegion(1)
	batch := make([]Image, 14)
	for i := range batch {
		batch[i] = Image{Kind: ImageUndo, FlushBit: true, Addr: mem.Addr(i * 8), Data: mem.Word(i)}
	}
	w.Append(0, 0, batch)
	if got := dev.Stats().WPQWrites; got != 1 {
		t.Errorf("batched append used %d WPQ writes, want 1 (§III-F)", got)
	}
	if got := w.ImagesWritten; got != 14 {
		t.Errorf("ImagesWritten = %d", got)
	}
	if got := w.BytesWritten; got != 14*(UndoBytes+SealBytes) {
		t.Errorf("BytesWritten = %d, want %d (18B image + 3B on-media seal)", got, 14*(UndoBytes+SealBytes))
	}
	if got := len(w.Scan(0)); got != 14 {
		t.Errorf("scanned %d, want 14", got)
	}
}

func TestRegionScanAll(t *testing.T) {
	_, w := newRegion(3)
	w.Append(0, 1, []Image{CommitImage(1, 5)})
	all := w.ScanAll()
	if len(all) != 3 || len(all[1]) != 1 || len(all[0]) != 0 {
		t.Errorf("ScanAll shape wrong: %v", all)
	}
}

// TestBufferMergeClearsFlushBit is the regression test for a protocol
// subtlety the exhaustive checker (core.TestSiloProtocolExhaustive)
// surfaced: after a cacheline eviction sets an entry's flush-bit, a later
// store to the same word merges into that entry — and must clear the
// flush-bit, or the post-eviction value would never be flushed at commit
// nor crash-flushed as redo, losing a committed update.
func TestBufferMergeClearsFlushBit(t *testing.T) {
	b := NewBuffer(4)
	b.Append(Entry{Addr: 64, Old: 0, New: 1})
	b.Entry(0).FlushBit = true // cacheline evicted (§III-D)
	b.Append(Entry{Addr: 64, Old: 1, New: 2})
	if b.Entry(0).FlushBit {
		t.Fatal("flush-bit survived a merge; the merged new data would be lost")
	}
	if b.Entry(0).New != 2 || b.Entry(0).Old != 0 {
		t.Error("merge values wrong")
	}
}

func TestSealUnsealRoundtrip(t *testing.T) {
	images := []Image{
		{Kind: ImageUndo, TID: 3, TxID: 500, Addr: 0x123456789AB8, Data: 0xCAFE},
		{Kind: ImageRedo, FlushBit: true, TID: 255, TxID: 65535, Addr: mem.AddrMask48 &^ 7, Data: ^mem.Word(0)},
		{Kind: ImageCommit, TID: 7, TxID: 42},
		{Kind: ImageUndoRedo, TID: 1, TxID: 2, Addr: 0x1000, Data: 1, Data2: 2},
	}
	var buf [MaxSealedBytes]byte
	for seq := 0; seq < 256; seq += 51 {
		for _, im := range images {
			n := im.Seal(buf[:], uint8(seq))
			if n != im.Size()+SealBytes {
				t.Fatalf("%v: sealed %dB, want %d", im.Kind, n, im.Size()+SealBytes)
			}
			got, n2, st := UnsealImage(buf[:n], uint8(seq))
			if st != SealOK || n2 != n {
				t.Fatalf("%v seq %d: unseal status %v n %d", im.Kind, seq, st, n2)
			}
			if got.Kind != im.Kind || got.TxID != im.TxID {
				t.Errorf("roundtrip content: %+v vs %+v", got, im)
			}
		}
	}
}

func TestUnsealDetectsEveryBitFlip(t *testing.T) {
	// CRC-16 catches all single-bit errors: no flipped bit in a sealed
	// record may unseal as SealOK. (Hitting the valid bit reads as a
	// clean log end — still never OK.)
	im := Image{Kind: ImageUndo, TID: 1, TxID: 9, Addr: 0x800, Data: 0x1234}
	var buf [MaxSealedBytes]byte
	n := im.Seal(buf[:], 4)
	for i := 0; i < n; i++ {
		for b := 0; b < 8; b++ {
			buf[i] ^= 1 << b
			if _, _, st := UnsealImage(buf[:n], 4); st == SealOK {
				t.Fatalf("bit %d of byte %d flipped undetected", b, i)
			}
			buf[i] ^= 1 << b
		}
	}
	// Untouched, it still unseals.
	if _, _, st := UnsealImage(buf[:n], 4); st != SealOK {
		t.Fatalf("control unseal failed: %v", st)
	}
}

func TestUnsealSeqMismatch(t *testing.T) {
	// A stale record left by an earlier, longer log generation carries
	// the wrong sequence number and must be quarantined, not replayed.
	im := CommitImage(0, 7)
	var buf [MaxSealedBytes]byte
	n := im.Seal(buf[:], 3)
	if _, _, st := UnsealImage(buf[:n], 5); st != SealCorrupt {
		t.Errorf("wrong-seq record unsealed with status %v, want corrupt", st)
	}
}

func TestUnsealCleanEnd(t *testing.T) {
	if _, _, st := UnsealImage(make([]byte, 32), 0); st != SealEnd {
		t.Error("zeroed media not treated as log end")
	}
	if _, _, st := UnsealImage(nil, 0); st != SealEnd {
		t.Error("empty buffer not treated as log end")
	}
}

func TestScanCheckedTornTail(t *testing.T) {
	// Crash flush with enough battery for the first record plus one word:
	// the second record tears and must be quarantined while the first
	// survives.
	dev, w := newRegion(1)
	dev.SetCrashEnergy((UndoBytes+SealBytes)+8, true, false)
	w.AppendAtCrash(0, []Image{
		{Kind: ImageUndo, TID: 0, TxID: 1, Addr: 0x100, Data: 1},
	})
	w.AppendAtCrash(0, []Image{
		{Kind: ImageUndo, TID: 0, TxID: 1, Addr: 0x108, Data: 2},
	})
	dev.ClearCrashEnergy()
	res := w.ScanChecked(0)
	if len(res.Images) != 1 || res.Images[0].Data != 1 {
		t.Fatalf("scan kept %d records: %+v", len(res.Images), res.Images)
	}
	if res.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", res.Quarantined)
	}
	if w.CrashImagesTorn != 1 {
		t.Errorf("CrashImagesTorn = %d", w.CrashImagesTorn)
	}
}

func TestScanCheckedDroppedRecordIsCleanEnd(t *testing.T) {
	// Battery too small for even one word of the record: it is dropped
	// whole, leaving zeroed media — a clean log end, not corruption.
	dev, w := newRegion(1)
	dev.SetCrashEnergy(4, true, false)
	w.AppendAtCrash(0, []Image{{Kind: ImageUndo, TID: 0, TxID: 1, Addr: 0x100, Data: 1}})
	dev.ClearCrashEnergy()
	res := w.ScanChecked(0)
	if len(res.Images) != 0 || res.Quarantined != 0 {
		t.Errorf("dropped record misread: %+v", res)
	}
	if w.CrashImagesDropped != 1 {
		t.Errorf("CrashImagesDropped = %d", w.CrashImagesDropped)
	}
}

func TestTruncateResetsSeq(t *testing.T) {
	// Per-thread sequence numbers restart at zero after truncation so a
	// fresh log generation scans cleanly from the area base.
	_, w := newRegion(1)
	for i := 0; i < 3; i++ {
		w.Append(0, 0, []Image{{Kind: ImageUndo, Addr: mem.Addr(i * 8), Data: mem.Word(i)}})
	}
	w.Truncate(0)
	w.Append(0, 0, []Image{{Kind: ImageUndo, Addr: 8, Data: 7}})
	res := w.ScanChecked(0)
	if len(res.Images) != 1 || res.Quarantined != 0 {
		t.Errorf("post-truncate generation misread: %+v", res)
	}
}
