package logging

import "testing"

// The table-driven CRC must match the reference CRC-16/CCITT-FALSE
// check value ("123456789" -> 0x29B1) and the bit-serial definition.
func TestCRC16KnownAnswer(t *testing.T) {
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16 check value = %#04x, want 0x29b1", got)
	}
	bitSerial := func(b []byte) uint16 {
		crc := uint16(0xFFFF)
		for _, c := range b {
			crc ^= uint16(c) << 8
			for i := 0; i < 8; i++ {
				if crc&0x8000 != 0 {
					crc = crc<<1 ^ 0x1021
				} else {
					crc <<= 1
				}
			}
		}
		return crc
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i*37 + 11)
		if got, want := crc16(buf[:i+1]), bitSerial(buf[:i+1]); got != want {
			t.Fatalf("len %d: table crc %#04x != bit-serial %#04x", i+1, got, want)
		}
	}
}
