// Package logging defines the hardware-logging building blocks shared by
// Silo and the baseline designs: the undo+redo log entry (Fig. 6), the
// battery-backed on-chip log buffer with per-entry comparators (§III-B),
// the distributed per-thread log region writer, and the Design interface
// through which the simulated machine drives a logging scheme.
package logging

import (
	"fmt"

	"silo/internal/mem"
)

// Entry is one hardware log entry (Fig. 6): a flush-bit, an 8-bit thread
// ID, a 16-bit transaction ID, the 48-bit physical address of the logged
// word, and the old and new data words. On chip it is an undo+redo entry;
// when written to PM it is serialized as an undo-only (18 B), redo-only
// (18 B) or commit-record (10 B) image.
type Entry struct {
	FlushBit bool
	TID      uint8
	TxID     uint16
	Addr     mem.Addr // word-aligned; 48 bits significant
	Old      mem.Word
	New      mem.Word
}

// Serialized log-image sizes in bytes.
const (
	// HeaderBytes is the serialized metadata: flags(1) + tid(1) +
	// txid(2) + addr(6).
	HeaderBytes = 10
	// UndoBytes is an undo log image: header + old data (18 B, §III-F).
	UndoBytes = HeaderBytes + mem.WordSize
	// RedoBytes is a redo log image: header + new data.
	RedoBytes = HeaderBytes + mem.WordSize
	// UndoRedoBytes is the full on-chip entry serialized: header + old +
	// new (26 B, §VI-D).
	UndoRedoBytes = HeaderBytes + 2*mem.WordSize
	// CommitBytes is an ID-tuple commit record: header only.
	CommitBytes = HeaderBytes
	// OnChipEntryBytes is the per-entry on-chip cost used for the log
	// buffer capacity math in §VI-D: the 26 B entry plus its 8 B
	// assigned physical address in the log region (20 × 34 B = 680 B).
	OnChipEntryBytes = UndoRedoBytes + 8
)

// Image kinds, stored in the flags byte of a serialized entry.
type ImageKind uint8

const (
	// ImageUndo carries the old data word.
	ImageUndo ImageKind = iota
	// ImageRedo carries the new data word.
	ImageRedo
	// ImageCommit is an ID tuple (tid, txid) marking a committed
	// transaction whose redo logs were crash-flushed (§III-G).
	ImageCommit
	// ImageUndoRedo carries both words — the 26 B full entry the
	// conventional "log as backup" baselines write per store.
	ImageUndoRedo
)

func (k ImageKind) String() string {
	switch k {
	case ImageUndo:
		return "undo"
	case ImageRedo:
		return "redo"
	case ImageCommit:
		return "commit"
	case ImageUndoRedo:
		return "undo+redo"
	}
	return "invalid"
}

// Image is one serialized log-region record.
type Image struct {
	Kind     ImageKind
	FlushBit bool
	TID      uint8
	TxID     uint16
	Addr     mem.Addr
	Data     mem.Word // old (undo/undo+redo) or new (redo)
	Data2    mem.Word // new (undo+redo only)
}

// Size returns the serialized byte size of the image.
func (im Image) Size() int {
	switch im.Kind {
	case ImageCommit:
		return CommitBytes
	case ImageUndoRedo:
		return UndoRedoBytes
	default:
		return UndoBytes
	}
}

const (
	kindMask  = 0b11
	flagFlush = 1 << 2
	flagValid = 1 << 3
)

// Encode serializes the image into buf and returns the bytes written.
// The layout is fixed so recovery can parse the log region byte stream.
func (im Image) Encode(buf []byte) int {
	flags := byte(im.Kind&kindMask) | flagValid
	if im.FlushBit {
		flags |= flagFlush
	}
	buf[0] = flags
	buf[1] = im.TID
	buf[2] = byte(im.TxID)
	buf[3] = byte(im.TxID >> 8)
	a := uint64(im.Addr & mem.AddrMask48)
	for i := 0; i < 6; i++ {
		buf[4+i] = byte(a >> (8 * i))
	}
	if im.Kind == ImageCommit {
		return CommitBytes
	}
	for i := 0; i < 8; i++ {
		buf[HeaderBytes+i] = byte(im.Data >> (8 * i))
	}
	if im.Kind != ImageUndoRedo {
		return UndoBytes
	}
	for i := 0; i < 8; i++ {
		buf[HeaderBytes+8+i] = byte(im.Data2 >> (8 * i))
	}
	return UndoRedoBytes
}

// DecodeImage parses one record from buf. ok is false when buf starts with
// an invalid/empty record (end of a thread's log area) or when reserved
// flag bits are set — recovery must not guess at records it does not
// fully understand.
func DecodeImage(buf []byte) (im Image, n int, ok bool) {
	if len(buf) < CommitBytes || buf[0]&flagValid == 0 {
		return Image{}, 0, false
	}
	if buf[0]&^(kindMask|flagFlush|flagValid) != 0 {
		return Image{}, 0, false
	}
	im.Kind = ImageKind(buf[0] & kindMask)
	im.FlushBit = buf[0]&flagFlush != 0
	im.TID = buf[1]
	im.TxID = uint16(buf[2]) | uint16(buf[3])<<8
	var a uint64
	for i := 5; i >= 0; i-- {
		a = a<<8 | uint64(buf[4+i])
	}
	im.Addr = mem.Addr(a)
	if im.Kind == ImageCommit {
		return im, CommitBytes, true
	}
	if len(buf) < UndoBytes {
		return Image{}, 0, false
	}
	var d mem.Word
	for i := 7; i >= 0; i-- {
		d = d<<8 | mem.Word(buf[HeaderBytes+i])
	}
	im.Data = d
	if im.Kind != ImageUndoRedo {
		return im, UndoBytes, true
	}
	if len(buf) < UndoRedoBytes {
		return Image{}, 0, false
	}
	var d2 mem.Word
	for i := 7; i >= 0; i-- {
		d2 = d2<<8 | mem.Word(buf[HeaderBytes+8+i])
	}
	im.Data2 = d2
	return im, UndoRedoBytes, true
}

// On-media sealing. Encode/DecodeImage describe the *logical* record
// layout whose sizes the paper's capacity math depends on (18 B undo,
// 26 B undo+redo, §III-F/§VI-D). On media every record additionally
// carries a 3 B seal trailer — a sequence number and a CRC — so a
// recovery scan can tell a torn or bit-flipped record from a good one
// instead of replaying garbage. The trailer models the ECC/metadata
// bits PM DIMMs already store out-of-band per line, which is why it is
// not charged against the paper's record sizes.
const (
	// SealBytes is the on-media trailer: seq(1) + crc16(2).
	SealBytes = 3
	// MaxSealedBytes bounds any sealed record (undo+redo + trailer).
	MaxSealedBytes = UndoRedoBytes + SealBytes
)

// SealStatus classifies what UnsealImage found at a scan position.
type SealStatus uint8

const (
	// SealOK: a well-formed record.
	SealOK SealStatus = iota
	// SealEnd: erased media (valid bit clear) — the clean end of a log.
	SealEnd
	// SealCorrupt: a record that started but fails its checksum, carries
	// an out-of-order sequence number, or is cut off by the area end —
	// a torn crash flush or a media fault. The scan must quarantine it.
	SealCorrupt
)

// crc16Table drives the byte-at-a-time CRC below; the bit-serial version
// it replaces was the single hottest function in a torture sweep.
var crc16Table = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// crc16 is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — small enough
// for a log-controller datapath, strong enough to catch any torn 8-byte
// suffix or single bit flip in a ≤29 B record.
func crc16(b []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, c := range b {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^c]
	}
	return crc
}

// Seal serializes the image plus its on-media trailer into buf and
// returns the bytes written. seq is the record's position (mod 256) in
// its thread's log area since the last truncation; the CRC covers the
// record and the sequence number.
func (im Image) Seal(buf []byte, seq uint8) int {
	n := im.Encode(buf)
	buf[n] = seq
	c := crc16(buf[:n+1])
	buf[n+1] = byte(c)
	buf[n+2] = byte(c >> 8)
	return n + SealBytes
}

// UnsealImage parses one sealed record from buf, checking its CRC and
// expected sequence number. It distinguishes the clean end of a log
// (erased media) from a torn or corrupt record, which recovery must
// quarantine rather than interpret.
func UnsealImage(buf []byte, wantSeq uint8) (im Image, n int, status SealStatus) {
	if len(buf) == 0 || buf[0]&flagValid == 0 {
		return Image{}, 0, SealEnd
	}
	im, sz, ok := DecodeImage(buf)
	if !ok || len(buf) < sz+SealBytes {
		return Image{}, 0, SealCorrupt
	}
	if buf[sz] != wantSeq {
		return Image{}, 0, SealCorrupt
	}
	if c := crc16(buf[:sz+1]); buf[sz+1] != byte(c) || buf[sz+2] != byte(c>>8) {
		return Image{}, 0, SealCorrupt
	}
	return im, sz + SealBytes, SealOK
}

// UndoImage serializes e's undo half.
func (e Entry) UndoImage() Image {
	return Image{Kind: ImageUndo, FlushBit: e.FlushBit, TID: e.TID, TxID: e.TxID, Addr: e.Addr, Data: e.Old}
}

// RedoImage serializes e's redo half.
func (e Entry) RedoImage() Image {
	return Image{Kind: ImageRedo, FlushBit: e.FlushBit, TID: e.TID, TxID: e.TxID, Addr: e.Addr, Data: e.New}
}

// CommitImage builds the ID tuple for (tid, txid).
func CommitImage(tid uint8, txid uint16) Image {
	return Image{Kind: ImageCommit, TID: tid, TxID: txid}
}

// String formats the entry for debugging.
func (e Entry) String() string {
	fb := 0
	if e.FlushBit {
		fb = 1
	}
	return fmt.Sprintf("log{f=%d t%d/x%d %s old=%#x new=%#x}", fb, e.TID, e.TxID, e.Addr, uint64(e.Old), uint64(e.New))
}
