package logging

import "silo/internal/mem"

// Buffer is one core's battery-backed log buffer (§III-B): a small FIFO of
// log entries, each flanked by a 64-bit hardware comparator so address
// matching happens in parallel in under a nanosecond. The default capacity
// is 20 entries (680 B per core, Table I), sized in §VI-D so the largest
// observed post-reduction write set (Hash) fits.
//
// The buffer is a persistence domain: its contents survive a crash long
// enough to be flushed by the battery (§III-G).
type Buffer struct {
	cap     int
	entries []Entry // FIFO order: entries[0] is oldest
}

// DefaultBufferEntries is the per-core log buffer capacity from §VI-D.
const DefaultBufferEntries = 20

// NewBuffer returns a buffer with the given entry capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity}
}

// Cap returns the entry capacity.
func (b *Buffer) Cap() int { return b.cap }

// Len returns the number of live entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Full reports whether an append would overflow.
func (b *Buffer) Full() bool { return len(b.entries) >= b.cap }

// Bytes returns the on-chip footprint of the live entries.
func (b *Buffer) Bytes() int { return len(b.entries) * OnChipEntryBytes }

// Match returns the index of the entry logging the same word address
// (the parallel comparator array), or -1. Merging never crosses threads
// or transactions (§III-C), so the caller's buffer-per-core/tx discipline
// makes an address match sufficient.
func (b *Buffer) Match(addr mem.Addr) int {
	w := addr.Word()
	for i := range b.entries {
		if b.entries[i].Addr == w {
			return i
		}
	}
	return -1
}

// MatchLine invokes fn on every entry whose logged word lies in the
// cacheline at la — the flush-bit comparison path of §III-D (the addr
// field shifted to line granularity).
func (b *Buffer) MatchLine(la mem.Addr, fn func(e *Entry)) {
	la = la.Line()
	for i := range b.entries {
		if b.entries[i].Addr.Line() == la {
			fn(&b.entries[i])
		}
	}
}

// Append adds e, merging into an existing entry for the same word if one
// exists: the existing entry keeps its (oldest) old data and takes e's
// (newest) new data, which is sufficient to recover to a none-or-all
// state (§III-C). A merge also clears the entry's flush-bit: the entry
// now holds data newer than whatever cacheline eviction reached PM, so
// the new data must be flushed after commit (and crash-flushed as redo)
// again — without this, a store following an eviction of the same word
// would be silently dropped on commit. It reports whether a merge
// happened. Appending to a full buffer without a prior merge panics —
// the caller must evict first.
func (b *Buffer) Append(e Entry) (merged bool) {
	if i := b.Match(e.Addr); i >= 0 {
		b.entries[i].New = e.New
		b.entries[i].FlushBit = e.FlushBit
		return true
	}
	if b.Full() {
		panic("logging: append to full buffer; evict first")
	}
	b.entries = append(b.entries, e)
	return false
}

// Push appends without comparator matching (merge-disabled ablation);
// the buffer may then hold several entries for one word, in store order.
func (b *Buffer) Push(e Entry) {
	if b.Full() {
		panic("logging: push to full buffer; evict first")
	}
	b.entries = append(b.entries, e)
}

// EvictOldest removes and returns up to n entries in FIFO order — the
// batched overflow eviction of §III-F.
func (b *Buffer) EvictOldest(n int) []Entry {
	if n > len(b.entries) {
		n = len(b.entries)
	}
	out := make([]Entry, n)
	copy(out, b.entries[:n])
	b.entries = append(b.entries[:0], b.entries[n:]...)
	return out
}

// Entries returns the live entries in FIFO order (shared backing array;
// callers must not mutate unless they own the buffer).
func (b *Buffer) Entries() []Entry { return b.entries }

// Entry returns a pointer to the i-th oldest entry.
func (b *Buffer) Entry(i int) *Entry { return &b.entries[i] }

// Reset deallocates all entries (transaction commit, §III-B).
func (b *Buffer) Reset() { b.entries = b.entries[:0] }
