package logging

import (
	"bytes"
	"testing"
)

// FuzzDecodeImage feeds arbitrary bytes to the log-record decoder: it must
// never panic and never read past the declared record size, and any record
// it accepts must re-encode to the same bytes (up to its size).
func FuzzDecodeImage(f *testing.F) {
	var seed [UndoRedoBytes]byte
	Image{Kind: ImageUndoRedo, TID: 1, TxID: 2, Addr: 0x1000, Data: 3, Data2: 4}.Encode(seed[:])
	f.Add(seed[:])
	f.Add([]byte{0})
	f.Add([]byte{0x0B, 1, 2, 3})
	f.Fuzz(func(t *testing.T, in []byte) {
		im, n, ok := DecodeImage(in)
		if !ok {
			return
		}
		if n > len(in) {
			t.Fatalf("decoder claimed %d bytes from a %d-byte input", n, len(in))
		}
		var buf [UndoRedoBytes]byte
		n2 := im.Encode(buf[:])
		if n2 != n {
			t.Fatalf("re-encode size %d != decoded size %d", n2, n)
		}
		if !bytes.Equal(buf[:n], in[:n]) {
			t.Fatalf("re-encode differs: %x vs %x", buf[:n], in[:n])
		}
	})
}
