package logging

import (
	"bytes"
	"testing"

	"silo/internal/pm"
)

// FuzzDecodeImage feeds arbitrary bytes to the log-record decoder: it must
// never panic and never read past the declared record size, and any record
// it accepts must re-encode to the same bytes (up to its size).
func FuzzDecodeImage(f *testing.F) {
	var seed [UndoRedoBytes]byte
	Image{Kind: ImageUndoRedo, TID: 1, TxID: 2, Addr: 0x1000, Data: 3, Data2: 4}.Encode(seed[:])
	f.Add(seed[:])
	f.Add([]byte{0})
	f.Add([]byte{0x0B, 1, 2, 3})
	f.Fuzz(func(t *testing.T, in []byte) {
		im, n, ok := DecodeImage(in)
		if !ok {
			return
		}
		if n > len(in) {
			t.Fatalf("decoder claimed %d bytes from a %d-byte input", n, len(in))
		}
		var buf [UndoRedoBytes]byte
		n2 := im.Encode(buf[:])
		if n2 != n {
			t.Fatalf("re-encode size %d != decoded size %d", n2, n)
		}
		if !bytes.Equal(buf[:n], in[:n]) {
			t.Fatalf("re-encode differs: %x vs %x", buf[:n], in[:n])
		}
	})
}

// sealed returns im sealed with seq, exactly sized.
func sealed(im Image, seq uint8) []byte {
	var buf [MaxSealedBytes]byte
	n := im.Seal(buf[:], seq)
	return append([]byte(nil), buf[:n]...)
}

// FuzzUnsealImage feeds arbitrary bytes plus an expected sequence number
// to the sealed-record parser. It must never panic; anything it accepts
// must carry the expected sequence number and re-seal to the identical
// bytes (a valid CRC over a canonical encoding); anything it rejects
// must be classified, never interpreted.
func FuzzUnsealImage(f *testing.F) {
	rec := Image{Kind: ImageUndoRedo, TID: 1, TxID: 2, Addr: 0x1000, Data: 3, Data2: 4}
	undo := Image{Kind: ImageUndo, TID: 3, TxID: 9, Addr: 0x2000, Data: 7}

	f.Add(sealed(rec, 0), uint8(0))                  // well-formed record
	f.Add(sealed(CommitImage(1, 2), 17), uint8(17))  // commit tuple, mid-log seq
	f.Add(sealed(undo, 255), uint8(255))             // seq at the wraparound boundary
	f.Add(sealed(rec, 0), uint8(1))                  // wrong expected seq
	f.Add([]byte{}, uint8(0))                        // zero-length input
	f.Add([]byte{0}, uint8(0))                       // erased media (valid bit clear)
	f.Add(sealed(rec, 5)[:UndoRedoBytes+1], uint8(5)) // torn mid-trailer

	// Payload bit flipped under a stale CRC: the checksum must catch it.
	flip := sealed(rec, 3)
	flip[HeaderBytes] ^= 0x10
	f.Add(flip, uint8(3))

	// CRC-collision-adjacent corruption: each trailer byte off by one.
	nearLo := sealed(rec, 3)
	nearLo[len(nearLo)-2]++
	f.Add(nearLo, uint8(3))
	nearHi := sealed(rec, 3)
	nearHi[len(nearHi)-1]++
	f.Add(nearHi, uint8(3))

	f.Fuzz(func(t *testing.T, in []byte, wantSeq uint8) {
		im, n, status := UnsealImage(in, wantSeq)
		switch status {
		case SealOK:
			if n < CommitBytes+SealBytes || n > len(in) || n > MaxSealedBytes {
				t.Fatalf("accepted record with impossible size %d (input %d)", n, len(in))
			}
			if in[n-SealBytes] != wantSeq {
				t.Fatalf("accepted record carries seq %d, want %d", in[n-SealBytes], wantSeq)
			}
			again := sealed(im, wantSeq)
			if !bytes.Equal(again, in[:n]) {
				t.Fatalf("re-seal differs: %x vs %x", again, in[:n])
			}
		case SealEnd, SealCorrupt:
			if n != 0 {
				t.Fatalf("rejected record (status %d) claimed %d bytes", status, n)
			}
		default:
			t.Fatalf("unknown seal status %d", status)
		}
	})
}

// FuzzScanChecked drops arbitrary bytes onto a log area's media and runs
// the checked recovery scan over it. The scan must never panic, must
// stop at the first tear (quarantining at most one record), and every
// record it accepts must re-seal byte-identically to the media it was
// read from — the scan never "repairs" what it parses.
func FuzzScanChecked(f *testing.F) {
	rec := Image{Kind: ImageUndoRedo, TID: 0, TxID: 2, Addr: 0x1000, Data: 3, Data2: 4}

	stream := func(n int) []byte { // n well-formed records, consecutive seqs
		var b []byte
		for i := 0; i < n; i++ {
			b = append(b, sealed(CommitImage(0, uint16(i)), uint8(i))...)
		}
		return b
	}
	f.Add([]byte{})       // empty log
	f.Add(stream(3))      // clean short log
	f.Add(stream(300))    // sequence number wraps past 255 mid-log
	f.Add(append(stream(2), 0xFF, 0x13, 0x88)) // valid prefix, then garbage

	torn := append(stream(1), sealed(rec, 1)[:12]...) // record cut mid-payload
	f.Add(torn)

	flipped := append(stream(1), sealed(rec, 1)...) // payload bit flip, stale CRC
	flipped[len(flipped)-10] ^= 0x01
	f.Add(flipped)

	near := append(stream(1), sealed(rec, 1)...) // CRC byte off by one
	near[len(near)-1]++
	f.Add(near)

	f.Fuzz(func(t *testing.T, media []byte) {
		if len(media) > 4096 {
			media = media[:4096]
		}
		dev := pm.New(pm.DefaultConfig())
		w := NewRegionWriter(dev, 1)
		dev.Populate(w.AreaBase(0), media)

		res := w.ScanChecked(0)
		if res.Quarantined > 1 {
			t.Fatalf("scan quarantined %d records; it must stop at the first tear", res.Quarantined)
		}
		// Every accepted record must re-seal to exactly the media bytes
		// it came from, in order, from the area base.
		var replay []byte
		for i, im := range res.Images {
			replay = append(replay, sealed(im, uint8(i))...)
		}
		if len(replay) > len(media) {
			t.Fatalf("scan accepted %d bytes from %d bytes of media", len(replay), len(media))
		}
		if !bytes.Equal(replay, media[:len(replay)]) {
			t.Fatalf("accepted records differ from media:\n%x\nvs\n%x", replay, media[:len(replay)])
		}
	})
}
