package logging

import (
	"silo/internal/cache"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
	"silo/internal/stats"
)

// Env is everything a logging design needs from the simulated machine.
type Env struct {
	PM     *pm.Device
	Cache  *cache.Hierarchy
	Region *RegionWriter
	Cores  int

	// LogBufEntries is the per-core log buffer capacity (default 20).
	LogBufEntries int
	// LogBufLatency is the log buffer access latency in cycles (Fig. 15
	// sweeps 8–128; it is off the critical path in Silo).
	LogBufLatency sim.Cycle

	// PersistPath is the on-chip cost, in cycles, of synchronously
	// pushing one item from the core down to the ADR persistence domain
	// (the L1→L2→LLC→MC path a clwb-like flush traverses). Designs whose
	// ordering constraints put persists on the critical path (Fig. 3)
	// pay it per synchronous persist; Silo's log path bypasses the
	// caches and never does.
	PersistPath sim.Cycle
}

// Design is a hardware atomic-durability scheme under test: Silo or one of
// the paper's baselines. The machine calls the hooks with operations in
// nondecreasing time order; every returned Cycle is *extra* latency the
// issuing core stalls beyond the plain cache access — the design's
// ordering constraints (§II-D) made concrete.
type Design interface {
	Name() string

	// TxBegin starts a transaction on core.
	TxBegin(core int, now sim.Cycle) sim.Cycle

	// Store is called after the cache write completed; old is the word's
	// previous value captured from L1D, new the stored value.
	Store(core int, addr mem.Addr, old, new mem.Word, now sim.Cycle) sim.Cycle

	// TxEnd commits core's transaction; the return value is the commit
	// stall (waiting for persists, flushes, or just an on-chip ACK).
	TxEnd(core int, now sim.Cycle) sim.Cycle

	// CachelineEvicted is called when a dirty line leaves the LLC toward
	// the memory controller. The design routes it: most schemes write it
	// to the PM data region; LAD buffers uncommitted lines in the MC;
	// Silo additionally sets flush-bits on matching logs (§III-D).
	CachelineEvicted(now sim.Cycle, la mem.Addr, data [mem.LineSize]byte)

	// Crash flushes whatever the design keeps in battery/ADR domains so
	// recovery can run (§III-G). It must not charge run statistics.
	Crash(now sim.Cycle)

	// CollectStats adds the design's counters to the run record.
	CollectStats(r *stats.Run)
}

// MCReader is implemented by designs whose memory-controller buffering can
// shadow PM contents (LAD): a cache fill must observe buffered lines.
type MCReader interface {
	// MCBuffered returns the buffered copy of la, if the MC holds one.
	MCBuffered(la mem.Addr) ([mem.LineSize]byte, bool)
}

// Ticker is implemented by designs with time-driven behaviour (FWB's
// periodic force write-back). The machine calls Tick before each op.
type Ticker interface {
	Tick(now sim.Cycle)
}

// CachePersistor is implemented by designs whose platform battery-backs
// the entire cache hierarchy (eADR, BBB): at a crash the machine flushes
// all dirty lines to PM instead of dropping them.
type CachePersistor interface {
	PersistCachesAtCrash() bool
}

// Factory builds a design over an environment. The harness keeps a
// registry of factories keyed by design name.
type Factory func(env *Env) Design
