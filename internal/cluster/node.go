package cluster

import (
	"fmt"
	"math/rand"

	"silo/internal/cache"
	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/machine"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// nodeState is one node's availability.
type nodeState uint8

const (
	// nodeUp: serving requests.
	nodeUp nodeState = iota
	// nodeWedged: a scheduled crash lands inside or immediately after
	// the current service run; the node stops serving and waits for its
	// evCrash to perform the teardown. Responses in this gap are lost.
	nodeWedged
	// nodeDown: crashed; rebooting and replaying its log. Packets are
	// blackholed until the router's failure detector marks it down.
	nodeDown
	// nodeResync (Replicas > 1 only): rebooted and replayed, now pulling
	// the catch-up diff from live replicas before re-entering the ring.
	// Client requests are blackholed; forwarded replication messages are
	// accepted and applied so the sync-ack contract covers the node.
	nodeResync
)

// node is one shard server: a single-core Silo machine over a PM device
// that survives the node's crashes, plus the queueing and incarnation
// state around it.
type node struct {
	id    int
	state nodeState

	dev    *pm.Device
	m      *machine.Machine
	eng    *sim.Engine
	incarn int

	queue    []*request
	busy     bool
	inflight *request

	// replQueue holds replication messages awaiting apply. It is served
	// ahead of client requests and is exempt from QueueCap shedding —
	// backpressure on replication would silently weaken the ack
	// contract, so lag is surfaced (telemetry KReplLag) instead.
	replQueue []*replMsg

	// kv/ver mirror the node's durably applied (value, version) words
	// per key. They survive crashes in host memory, which is legitimate
	// only because every recovery verifies the replayed PM media against
	// them word-for-word (checkReplRecovered) — keeping the maps is
	// equivalent to re-reading them from the media they provably match.
	kv  map[uint64]uint64
	ver map[uint64]uint64

	// crashTimes is this node's slice of the cluster fault schedule
	// (sorted); nextCrash indexes the first not-yet-fired entry.
	// pendingCrash caches crashTimes[nextCrash] (0 = none pending) and
	// is fixed for the lifetime of an incarnation.
	crashTimes   []sim.Cycle
	nextCrash    int
	pendingCrash sim.Cycle

	crashes int
	served  int64
	commits int64

	// windowOpen tracks the unavailability window of the latest crash:
	// opened at power failure, closed at the first successful service
	// completion of the next incarnation.
	windowOpen bool
	windowIdx  int // index into Result.Windows
}

// machinePlan returns this node's machine-level fault plan: the cluster
// template's crash *shape* (budget, tearing, strict draw, re-crash
// cadence) for every node, with the self-crash trigger armed only on
// the designated node's first incarnation (re-arming it every reboot
// would thrash a node into a crash loop the plan never asked for).
func (c *Cluster) machinePlan(id, incarn int) *fault.Plan {
	if c.cfg.Plan == nil {
		return nil
	}
	p := c.cfg.Plan.Node // copy
	if id != c.selfCrashNodeID() || incarn > 0 {
		p.Trigger = fault.TriggerNone
	} else if p.Trigger == fault.TriggerCycle {
		// Node machine clocks restart every reboot, so a node-local
		// cycle trigger is ambiguous across incarnations; remap it to
		// the op count the fault generator would have scaled it from.
		p.Trigger = fault.TriggerOp
		if p.AtOp = int64(p.AtCycle) / 40; p.AtOp < 1 {
			p.AtOp = 1
		}
	}
	p.Seed ^= int64(id) * 0x6a09e667f3bcc909
	return &p
}

// bootNode builds node id's next machine incarnation. On first boot the
// device is created fresh; on reboot the surviving device is power-
// cycled and reused, so media contents (data and logs) carry across the
// crash while caches and logging hardware come up cold.
func (c *Cluster) bootNode(n *node) error {
	factory, err := harness.DesignFactory(c.cfg.Design, c.designOpts)
	if err != nil {
		return err
	}
	cfg := machine.Config{
		Cores:        1,
		PM:           pm.DefaultConfig(),
		Cache:        cache.DefaultHierarchyConfig(),
		Design:       factory,
		Fault:        c.machinePlan(n.id, n.incarn),
		DisableAudit: c.cfg.DisableAudit,
	}
	if n.dev != nil {
		n.dev.PowerCycle()
		cfg.Device = n.dev
	}
	n.m = machine.New(cfg)
	n.dev = n.m.Device()
	n.eng = n.m.Engine(c.cfg.Seed ^ int64(n.id)*1_000_003 ^ int64(n.incarn)<<40)
	n.busy = false
	n.inflight = nil
	n.queue = n.queue[:0]
	n.replQueue = n.replQueue[:0]
	return nil
}

// keyAddr maps a key to its PM word. The data region below the first
// heap arena is unused by the KV nodes (they run no other workload), so
// a flat 8-byte-per-key layout starting one page in is collision-free.
func (c *Cluster) keyAddr(key uint64) mem.Addr {
	return c.layout.DataBase + 4096 + mem.Addr(key*8)
}

// reqStream is the op stream one request executes on the node machine:
// [TxBegin, Store, TxEnd] for a Put, [Load] for a Get. It records the
// loaded word and whether the crash sentinel unwound it.
type reqStream struct {
	ops     []sim.Op
	i       int
	crashed bool
	loaded  uint64
}

func (s *reqStream) Next() (sim.Op, bool) {
	if s.crashed || s.i >= len(s.ops) {
		return sim.Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

func (s *reqStream) Deliver(r sim.Result) {
	if r.Latency < 0 {
		s.crashed = true
		return
	}
	if s.i > 0 && s.ops[s.i-1].Kind == sim.OpLoad {
		s.loaded = uint64(r.Value)
	}
}

// serviceResult is what one machine execution of a request produced.
type serviceResult struct {
	dur       sim.Cycle // machine busy time including fixed overhead
	crashed   bool      // the machine lost power during the run
	committed bool      // the Put's Tx_end completed (commit is durable)
	loaded    uint64    // the Get's value
}

// runService executes req on node n's machine starting at cluster time
// now. A Put under replication (ver > 0) durably stores the value and
// its replication version in one transaction. If a cluster-scheduled
// crash is pending for this incarnation, the engine is armed so the
// power failure lands mid-run at the exact mapped machine cycle — the
// machine clock only advances while serving, so the mapping is
// (pending − now) cycles ahead of the current core time, re-armed at
// every service start.
func (c *Cluster) runService(n *node, req *request, ver uint64, now sim.Cycle) (serviceResult, error) {
	addr := c.keyAddr(req.key)
	st := &reqStream{}
	switch {
	case req.read:
		st.ops = []sim.Op{{Kind: sim.OpLoad, Addr: addr}}
	case ver > 0:
		st.ops = []sim.Op{
			{Kind: sim.OpTxBegin},
			{Kind: sim.OpStore, Addr: addr, Data: mem.Word(req.val)},
			{Kind: sim.OpStore, Addr: c.verAddr(req.key), Data: mem.Word(ver)},
			{Kind: sim.OpTxEnd},
		}
	default:
		st.ops = []sim.Op{
			{Kind: sim.OpTxBegin},
			{Kind: sim.OpStore, Addr: addr, Data: mem.Word(req.val)},
			{Kind: sim.OpTxEnd},
		}
	}
	return c.runStream(n, st, now, req.id)
}

// runApply executes one replication message's apply transaction on the
// replica's machine: value and version words stored durably together.
func (c *Cluster) runApply(n *node, msg *replMsg, now sim.Cycle) (serviceResult, error) {
	st := &reqStream{ops: []sim.Op{
		{Kind: sim.OpTxBegin},
		{Kind: sim.OpStore, Addr: c.keyAddr(msg.key), Data: mem.Word(msg.val)},
		{Kind: sim.OpStore, Addr: c.verAddr(msg.key), Data: mem.Word(msg.ver)},
		{Kind: sim.OpTxEnd},
	}}
	return c.runStream(n, st, now, -int64(msg.ver))
}

// runStream drives one op stream to completion on n's machine.
func (c *Cluster) runStream(n *node, st *reqStream, now sim.Cycle, label int64) (serviceResult, error) {
	var res serviceResult
	t0 := n.eng.CoreTime(0)
	if n.pendingCrash > 0 && n.pendingCrash > now {
		n.eng.ScheduleCrash(t0+(n.pendingCrash-now), n.m.InjectCrash)
	}
	commitsBefore := n.m.Commits()
	n.eng.Bind([]sim.OpStream{st})
	for steps := 0; n.eng.Step(); steps++ {
		if steps > serviceStepBudget {
			return res, fmt.Errorf("cluster: node %d wedged serving work item %d (step budget)", n.id, label)
		}
	}
	res.dur = n.eng.CoreTime(0) - t0 + c.cfg.ServiceOverhead
	res.crashed = st.crashed
	res.committed = n.m.Commits() > commitsBefore
	res.loaded = st.loaded
	return res, nil
}

const serviceStepBudget = 1 << 16

// crashNode performs the power-failure teardown of node n at cluster
// time now: battery flush (if the machine hasn't already crashed
// itself), queue drain with connection resets, optional log-media bit
// flips, recovery replay — re-crashed every RecrashEvery applied words
// per the plan, with a doubling battery so it terminates — then both
// correctness verdicts (machine golden shadow and cluster shadow), log
// truncation, and scheduling of the reboot completion.
func (c *Cluster) crashNode(n *node, now sim.Cycle) {
	if n.state == nodeDown {
		return
	}
	if !n.m.Crashed() {
		n.m.InjectCrash(n.eng.Now())
	}
	n.state = nodeDown
	n.crashes++
	c.res.Crashes++
	c.tel.NodeState(n.id, now, telemetry.NodeDown, n.crashes)

	// The unavailability window opens now; commits on surviving nodes
	// during it prove the cluster kept serving. A node struck again
	// before its first post-recovery service completion never closed the
	// previous window — the outage is continuous, so the strike merges
	// into the open window instead of opening (and orphaning) a new one.
	if n.windowOpen {
		c.res.Windows[n.windowIdx].Strikes++
	} else {
		n.windowOpen = true
		n.windowIdx = len(c.res.Windows)
		c.res.Windows = append(c.res.Windows, CrashWindow{Node: n.id, DownAt: now, Strikes: 1})
	}

	// The acked-survival contract is checked at the moment of the crash,
	// against the replicas still standing.
	if c.cfg.Replicas > 1 {
		c.checkAckedSurvival(n, now)
	}

	// Queued requests get connection resets (fast client failure); the
	// in-flight one, if any, is simply lost — its client times out.
	// Queued replication applies die with the node: their writes reach
	// it again through the catch-up resync.
	for _, qr := range n.queue {
		c.schedule(now+c.hopDelay(), evResp, n.id, qr, respReset)
	}
	n.queue = n.queue[:0]
	c.res.ReplDropped += int64(len(n.replQueue))
	n.replQueue = n.replQueue[:0]
	n.inflight = nil
	n.busy = false
	c.tel.NodeQueue(n.id, now, 0, c.cfg.QueueCap, false)

	region := n.m.Region()
	c.res.Torn += region.CrashImagesTorn
	c.res.Dropped += region.CrashImagesDropped

	plan := c.machinePlan(n.id, n.incarn)
	if plan != nil && plan.BitFlips > 0 {
		rng := rand.New(rand.NewSource(plan.Seed ^ int64(n.incarn)))
		fault.FlipLogBits(n.dev, region, rng, plan.BitFlips)
	}

	// Recovery replay. It runs synchronously here (host time) but is
	// billed in simulated time below; probes are stamped at the replay
	// start so Perfetto shows recovery progress inside the window.
	recoverStart := now + c.cfg.RebootDelay
	c.tel.NodeState(n.id, recoverStart, telemetry.NodeRecovering, n.crashes)
	var rep recovery.Report
	restarts := 0
	if plan != nil && plan.RecrashEvery > 0 {
		limit := plan.RecrashEvery
		for {
			rep = recovery.RecoverOpts(n.dev, region, recovery.Options{
				MaxWrites: limit, Telemetry: c.tel, Now: recoverStart,
			})
			if rep.Complete {
				break
			}
			restarts++
			limit *= 2
		}
	} else {
		rep = recovery.RecoverOpts(n.dev, region, recovery.Options{Telemetry: c.tel, Now: recoverStart})
	}
	c.res.RecoveryRestarts += restarts
	c.res.Recovery.CommittedTx += rep.CommittedTx
	c.res.Recovery.RedoApplied += rep.RedoApplied
	c.res.Recovery.UndoApplied += rep.UndoApplied
	c.res.Recovery.Discarded += rep.Discarded
	c.res.Recovery.Quarantined += rep.Quarantined
	c.res.Recovery.TotalRecords += rep.TotalRecords
	c.res.Recovery.AppliedWrites += rep.AppliedWrites

	// Verdict 1: the machine's own golden committed shadow, word for
	// word over everything any transaction wrote on this incarnation.
	for _, bad := range harness.VerifyRecovery(n.m) {
		c.shadow.diverge("node %d incarnation %d: %s", n.id, n.incarn, bad)
	}
	// Verdict 2: the cluster shadow over every committed key this node
	// owns — catches cross-incarnation loss the per-incarnation machine
	// shadow cannot see, and proves uncommitted Puts rolled back. Under
	// replication the per-node applied map replaces single-owner state
	// (a replica legitimately trails the cluster-committed value).
	if c.cfg.Replicas > 1 {
		c.checkReplRecovered(n, now)
	} else {
		c.shadow.checkRecovered(n.id, c.ring.Owner, func(key uint64) uint64 {
			return uint64(n.dev.PeekWord(c.keyAddr(key)))
		}, now)
	}

	// Invalidate the replayed logs before the next incarnation: the new
	// region writer restarts sequence numbers at zero, and a stale
	// longer log surviving behind it would alias a future crash scan.
	for t := 0; t < region.Threads(); t++ {
		region.Truncate(t)
	}

	// The node machine is done; release its pooled cache arrays.
	n.m.Release()
	c.released[n.id] = true

	// Reboot + replay cost in simulated time, then back in service.
	cost := c.cfg.RebootDelay +
		c.cfg.RecoverPerRecord*sim.Cycle(rep.TotalRecords) +
		c.cfg.RecoverPerWrite*sim.Cycle(rep.AppliedWrites)
	if restarts > 0 {
		cost += c.cfg.RebootDelay * sim.Cycle(restarts)
	}
	c.schedule(now+cost, evRecovered, n.id, nil, n.incarn)

	// The router notices the failure only after its detection lag;
	// until then requests are blackholed and clients burn a timeout.
	c.schedule(now+c.cfg.DetectDelay, evHealthDown, n.id, nil, n.crashes)
}
