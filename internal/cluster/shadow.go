package cluster

import (
	"fmt"
	"sort"

	"silo/internal/sim"
)

// shadow is the cluster-level golden state. The simulator has god's-eye
// knowledge of when each node's machine commits a transaction, so the
// shadow updates at *apply* time: committed[key] is the value of the
// last Put whose Tx_end completed on the owning node, whether or not
// the client ever learned about it. Each key has exactly one owner and
// each node serializes requests on its single-core machine, so per-key
// commit order is total and the expected state is exact — no
// admissible-value sets, no linearizability search.
//
// Ack state is tracked separately to pin down the failover semantics
// the paper's crash flush buys:
//
//   - an acked Put must have committed (the node acks only after
//     Tx_end), so an ack for a never-committed value is a divergence;
//   - a committed-but-unacked Put (the crash ate the response) legally
//     surfaces after failover — reads and post-recovery PM state are
//     checked against committed state, not acked state;
//   - an *uncommitted* Put must never surface: recovery rolls it back
//     to committed[key], which the per-key recovered check enforces.
// Under replication (Replicas > 1) the shadow additionally tracks, per
// key, the highest *acked* version the client ever observed. Versions
// are assigned at primary commit from a global monotone counter, so
// per-key version order is per-key commit order. At every node crash
// the cluster checks the acked-survival invariant: some live replica of
// the key must have applied at least the acked version. In sync mode a
// violation is a divergence (the protocol promised the write was
// replicated before the ack); in bounded-async mode it is counted as an
// acked-but-lost write — reported, never hidden.
type shadow struct {
	committed map[uint64]uint64 // key → last committed value
	everComm  map[uint64]map[uint64]bool // key → set of values ever committed
	ackedVer  map[uint64]uint64 // key → max version acked to a client
	ackedLost int64             // async: acked writes absent from every live replica at a crash
	divergences []string
}

func newShadow() *shadow {
	return &shadow{
		committed: make(map[uint64]uint64),
		everComm:  make(map[uint64]map[uint64]bool),
		ackedVer:  make(map[uint64]uint64),
	}
}

// commitPut records that the owning node's machine committed value val
// for key (called at service completion, cluster time now).
func (s *shadow) commitPut(key, val uint64) {
	s.committed[key] = val
	set := s.everComm[key]
	if set == nil {
		set = make(map[uint64]bool)
		s.everComm[key] = set
	}
	set[val] = true
}

// ackPut checks an acked Put: the value must have actually committed.
func (s *shadow) ackPut(key, val uint64, node int, now sim.Cycle) {
	if !s.everComm[key][val] {
		s.diverge("node %d: acked put key=%d val=%d never committed (now=%d)", node, key, val, now)
	}
}

// noteAcked records the version the client just saw acked for key —
// the high-water mark the acked-survival invariant checks at crashes.
func (s *shadow) noteAcked(key, ver uint64) {
	if ver > s.ackedVer[key] {
		s.ackedVer[key] = ver
	}
}

// checkGet checks a served Get against the expected word — the serving
// node's applied state (identical to the cluster-committed value at
// R = 1, and to the replica's own replicated prefix at R > 1).
func (s *shadow) checkGet(key, got, want uint64, node int, now sim.Cycle) {
	if got != want {
		s.diverge("node %d: get key=%d = %d want %d (now=%d)", node, key, got, want, now)
	}
}

// checkRecovered verifies every committed key owned by `node` against
// the post-recovery PM image via read (which peeks the device). Called
// after each crash's recovery completes; it is the cluster-level analog
// of harness.VerifyRecovery and additionally proves uncommitted
// in-flight Puts were rolled back.
func (s *shadow) checkRecovered(node int, owner func(uint64) int, read func(uint64) uint64, now sim.Cycle) {
	// Sorted key order keeps divergence reports deterministic (they feed
	// byte-identical JSONL checkpoints).
	keys := make([]uint64, 0, len(s.committed))
	for key := range s.committed {
		if owner(key) == node {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		want := s.committed[key]
		if got := read(key); got != want {
			s.diverge("node %d: recovered key=%d = %d want %d (now=%d)", node, key, got, want, now)
		}
	}
}

func (s *shadow) diverge(format string, args ...any) {
	if len(s.divergences) < 64 { // bound the report; one divergence fails the run anyway
		s.divergences = append(s.divergences, fmt.Sprintf(format, args...))
	}
}
