package cluster

import (
	"fmt"
	"testing"

	"silo/internal/fault"
)

// replicatedConfig is a replicated cluster with one mid-load crash of
// node 1 — the basic failover scenario.
func replicatedConfig(seed int64, design string, replicas int, mode ReplicationMode) Config {
	cfg := Config{
		Seed: seed, Design: design, Nodes: 4, Requests: 500,
		Replicas: replicas, Replication: mode,
	}
	horizon := cfg.LoadHorizon()
	cfg.Plan = &fault.ClusterPlan{
		Crashes: []fault.NodeCrash{{Node: 1, At: horizon / 3}},
		Node:    fault.Plan{FlushBudget: 256, TearWords: true, RecrashEvery: 8},
	}
	return cfg
}

func TestClusterReplicatedFaultFree(t *testing.T) {
	for _, mode := range []ReplicationMode{ReplSync, ReplAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			res := Run(Config{Seed: 2, Design: "Silo", Nodes: 4, Requests: 400, Replicas: 3, Replication: mode})
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if len(res.Divergences) != 0 {
				t.Fatalf("divergences: %v", res.Divergences)
			}
			if res.Acked+res.Failed != res.Generated {
				t.Fatalf("acked %d + failed %d != generated %d", res.Acked, res.Failed, res.Generated)
			}
			if res.ReplSent == 0 || res.ReplApplied == 0 {
				t.Fatalf("no replication traffic: sent=%d applied=%d", res.ReplSent, res.ReplApplied)
			}
			// Every committed Put fans out to Replicas-1 live peers on a
			// fault-free run.
			if want := res.CommittedPuts * int64(res.Replicas-1); res.ReplSent != want {
				t.Fatalf("repl sent %d want %d (commits=%d R=%d)", res.ReplSent, want, res.CommittedPuts, res.Replicas)
			}
			if res.AckedLost != 0 {
				t.Fatalf("acked-lost %d on a fault-free run", res.AckedLost)
			}
		})
	}
}

func TestClusterReplicatedFailover(t *testing.T) {
	for _, design := range []string{"Silo", "FWB"} {
		t.Run(design, func(t *testing.T) {
			res := Run(replicatedConfig(7, design, 3, ReplSync))
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if len(res.Divergences) != 0 {
				t.Fatalf("divergences: %v", res.Divergences)
			}
			if res.Crashes == 0 {
				t.Fatal("scheduled crash never fired")
			}
			if res.Promotions == 0 {
				t.Fatal("failure detection never promoted a replica")
			}
			if res.AckedLost != 0 {
				t.Fatalf("sync mode lost %d acked writes", res.AckedLost)
			}
			for i, w := range res.Windows {
				if !w.Closed {
					t.Errorf("window %d never closed", i)
				}
				if w.PromotedAt == 0 {
					t.Errorf("window %d: promotion never recorded", i)
				}
				// The client-visible window is detection + promotion,
				// strictly below the owner's full outage (reboot + replay
				// + resync).
				if w.Width() != w.PromotedAt-w.DownAt {
					t.Errorf("window %d width %d != promotion bound %d", i, w.Width(), w.PromotedAt-w.DownAt)
				}
				if w.Width() >= w.OwnerOutage() {
					t.Errorf("window %d: promoted width %d not below owner outage %d", i, w.Width(), w.OwnerOutage())
				}
				if w.DetectedAt == 0 || w.RecoveredAt == 0 || w.ResyncEnd == 0 {
					t.Errorf("window %d missing phase marks: %+v", i, w)
				}
				if w.ResyncEnd < w.RecoveredAt || w.RecoveredAt < w.DetectedAt {
					t.Errorf("window %d phases out of order: %+v", i, w)
				}
			}
		})
	}
}

func TestClusterReplicatedStormSyncNoAckedLoss(t *testing.T) {
	// Storm: two nodes down within one detection window, plus a strike
	// aimed at the first victim's catch-up resync.
	cfg := Config{Seed: 17, Design: "Silo", Nodes: 4, Requests: 600, Replicas: 3, Replication: ReplSync}
	horizon := cfg.LoadHorizon()
	cfg.Plan = &fault.ClusterPlan{
		Crashes: []fault.NodeCrash{
			{Node: 0, At: horizon / 4},
			{Node: 2, At: horizon/4 + 15_000},    // inside node 0's detection window
			{Node: 0, At: horizon/4 + horizon/8}, // likely mid-resync
		},
		Node: fault.Plan{FlushBudget: 128, TearWords: true},
	}
	res := Run(cfg)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("divergences: %v", res.Divergences)
	}
	if res.AckedLost != 0 {
		t.Fatalf("sync storm lost %d acked writes", res.AckedLost)
	}
	if res.Crashes < 2 {
		t.Fatalf("crashes %d want >= 2", res.Crashes)
	}
	if res.Acked == 0 {
		t.Fatal("storm silenced the whole cluster")
	}
}

func TestClusterReplicatedAsyncReportsLoss(t *testing.T) {
	// Async mode may strand acked writes at a primary crash. Hunt a seed
	// that does and assert the loss is *reported* while the run stays
	// divergence-free (the report is the contract).
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		cfg := replicatedConfig(seed, "Silo", 2, ReplAsync)
		cfg.AsyncDelay = 200_000 // wide loss window so a crash lands inside it
		res := Run(cfg)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Divergences) != 0 {
			t.Fatalf("seed %d: async loss must be reported, not a divergence: %v", seed, res.Divergences)
		}
		if res.AckedLost > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed produced an acked-but-lost write; loss accounting never exercised")
	}
}

func TestClusterReplicatedDeterministic(t *testing.T) {
	fp := func(r Result) string {
		return fmt.Sprintf("g=%d a=%d f=%d cp=%d rs=%d ra=%d st=%d dr=%d pr=%d re=%d al=%d w=%d fc=%d div=%d",
			r.Generated, r.Acked, r.Failed, r.CommittedPuts, r.ReplSent, r.ReplApplied,
			r.ReplStale, r.ReplDropped, r.Promotions, r.ResyncEntries, r.AckedLost,
			len(r.Windows), r.FinalCycle, len(r.Divergences))
	}
	a := Run(replicatedConfig(23, "Silo", 3, ReplSync))
	b := Run(replicatedConfig(23, "Silo", 3, ReplSync))
	if a.Err != nil || b.Err != nil {
		t.Fatalf("run: %v / %v", a.Err, b.Err)
	}
	if fp(a) != fp(b) {
		t.Fatalf("identical replicated configs diverged:\n%s\n%s", fp(a), fp(b))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}

func TestClusterOverlappingWindowsMerge(t *testing.T) {
	// Two nodes down simultaneously, and node 1 struck again while still
	// recovering: the second strike must merge into the open window
	// (Strikes=2), not orphan it, and both windows must stay finite and
	// disjoint per node.
	cfg := Config{Seed: 31, Design: "Silo", Nodes: 3, Requests: 500}
	horizon := cfg.LoadHorizon()
	cfg.Plan = &fault.ClusterPlan{
		Crashes: []fault.NodeCrash{
			{Node: 1, At: horizon / 3},
			{Node: 2, At: horizon/3 + 20_000}, // overlaps node 1's window
			{Node: 1, At: horizon/3 + 60_000}, // strikes node 1 mid-recovery or just after
		},
		Node: fault.Plan{FlushBudget: 256, TearWords: true},
	}
	res := Run(cfg)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("divergences: %v", res.Divergences)
	}
	if res.Crashes < 3 {
		t.Fatalf("crashes %d want 3", res.Crashes)
	}
	perNode := map[int]int{}
	totalStrikes := 0
	for i, w := range res.Windows {
		perNode[w.Node]++
		totalStrikes += w.Strikes
		if !w.Closed {
			t.Errorf("window %d (node %d) never closed", i, w.Node)
		}
		if w.Width() <= 0 || w.Width() >= res.FinalCycle {
			t.Errorf("window %d width %d implausible (final %d)", i, w.Width(), w.Width())
		}
	}
	if totalStrikes != res.Crashes {
		t.Fatalf("window strikes %d != crashes %d: a strike was lost or double-counted", totalStrikes, res.Crashes)
	}
	// Windows of the same node must not overlap: each later window opens
	// after the earlier one closed.
	byNode := map[int][]CrashWindow{}
	for _, w := range res.Windows {
		byNode[w.Node] = append(byNode[w.Node], w)
	}
	for node, ws := range byNode {
		for i := 1; i < len(ws); i++ {
			if ws[i].DownAt < ws[i-1].ServingAt {
				t.Errorf("node %d windows overlap: [%d,%d] then [%d,%d]",
					node, ws[i-1].DownAt, ws[i-1].ServingAt, ws[i].DownAt, ws[i].ServingAt)
			}
		}
	}
}
