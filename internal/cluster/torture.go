package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/sim"
)

// Scenario derives the fully-determined cluster run for one torture
// campaign. The mapping rides the generic campaign fields so the
// fleet's shrinker keeps working unchanged: Spec.Cores is the node
// count (dropping cores → fewer nodes), Spec.Txns the request count
// (bisecting txns → shorter load), and Spec.Seed everything else — the
// ring, the load mix, the crash schedule. c.Plan becomes the per-crash
// template (budget, tearing, re-crash cadence, optional self-trigger).
func Scenario(c harness.Campaign) Config {
	cfg := Config{
		Seed:     c.Spec.Seed,
		Design:   c.Spec.Design,
		Nodes:    c.Spec.Cores,
		Requests: c.Spec.Txns,
		// Cluster campaigns are small enough that per-request audit and
		// telemetry stay affordable; audit follows the spec flag.
		DisableAudit: c.Spec.DisableAudit,
		Telemetry:    c.Spec.Telemetry,
	}
	rng := rand.New(rand.NewSource(c.Spec.Seed ^ 0x736361747465)) // "scatte[r]"
	cfg.Keys = 256 << rng.Intn(3)                                 // 256–1024: enough collisions to matter
	cfg.Tenants = 1 + rng.Intn(4)
	cfg.ReadPercent = 30 + rng.Intn(60)
	cfg.ZipfS = 1.01 + rng.Float64()*0.4
	cfg.MeanGap = 600 + float64(rng.Intn(1400))
	if rng.Intn(2) == 0 {
		cfg.DiurnalAmp = 0.3 + rng.Float64()*0.5
		cfg.DiurnalPeriod = cfg.LoadHorizon() / sim.Cycle(1+rng.Intn(3))
	}
	plan := fault.RandomCluster(rng, cfg.Nodes, cfg.LoadHorizon(), c.Plan)
	cfg.Plan = &plan
	return cfg
}

// RunCampaign executes one cluster campaign and maps its Result onto
// the fleet's generic outcome: cluster-shadow divergences and per-node
// golden-shadow mismatches land in Mismatches (a durability verdict),
// event-budget and drain failures land in Err as infra.
func RunCampaign(c harness.Campaign) harness.CampaignOutcome {
	out := harness.CampaignOutcome{Campaign: c}
	res := Run(Scenario(c))
	if res.Err != nil {
		if res.Infra {
			out.Err = harness.InfraError{Err: res.Err}
		} else {
			out.Err = res.Err
		}
		return out
	}
	out.MidRun = res.Crashes > 0
	out.Commits = res.CommittedPuts
	out.Torn = res.Torn
	out.Dropped = res.Dropped
	out.Restarts = res.RecoveryRestarts
	out.Report = res.Recovery
	out.Report.Complete = true
	out.Mismatches = res.Divergences
	return out
}

// TortureConfig parameterizes a cluster campaign sweep. It is a thin
// projection onto harness.TortureConfig: the fleet supplies panic
// containment, watchdogs, seeded-backoff infra retries, JSONL
// checkpoint/resume, and shrinking; this package supplies the campaign
// executor.
type TortureConfig struct {
	Seed      int64
	Campaigns int
	Offset    int
	Designs   []string // default harness.DesignNames()
	Nodes     int      // nodes per campaign (default 4)
	Requests  int      // client requests per campaign (default 400)

	AllowStrict   bool
	AllowBitFlips bool
	Shrink        bool
	Parallel      int
	DisableAudit  bool

	WallBudget time.Duration
	Retries    int
	Backoff    time.Duration

	Resume   map[int]harness.Record
	OnRecord func(harness.Record)
	Stop     <-chan struct{}
}

// Torture runs the cluster campaign sweep on the hardened fleet.
func Torture(cfg TortureConfig) (harness.TortureResult, error) {
	h := harness.TortureConfig{
		Seed:      cfg.Seed,
		Campaigns: cfg.Campaigns,
		Offset:    cfg.Offset,
		Designs:   cfg.Designs,
		// The workload name is cosmetic at cluster scope (Scenario
		// derives the real load from the seed) but keeps records and
		// repro lines self-describing.
		Workloads:     []string{"ClusterKV"},
		Cores:         cfg.Nodes,
		Txns:          cfg.Requests,
		AllowStrict:   cfg.AllowStrict,
		AllowBitFlips: cfg.AllowBitFlips,
		Shrink:        cfg.Shrink,
		Parallel:      cfg.Parallel,
		DisableAudit:  cfg.DisableAudit,
		WallBudget:    cfg.WallBudget,
		Retries:       cfg.Retries,
		Backoff:       cfg.Backoff,
		Resume:        cfg.Resume,
		OnRecord:      cfg.OnRecord,
		Stop:          cfg.Stop,
		Run:           RunCampaign,
	}
	if h.Cores <= 0 {
		h.Cores = 4
	}
	if h.Txns <= 0 {
		h.Txns = 400
	}
	if len(h.Designs) == 0 {
		h.Designs = harness.DesignNames()
	}
	return harness.Torture(h)
}

// ReproArgs renders the silo-cluster flags that replay campaign idx of
// a sweep alone.
func ReproArgs(seed int64, idx int, nodes, requests int) string {
	return fmt.Sprintf("go run ./cmd/silo-cluster -campaigns 1 -offset %d -seed %d -nodes %d -requests %d",
		idx, seed, nodes, requests)
}
