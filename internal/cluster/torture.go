package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/sim"
)

// Scenario derives the fully-determined cluster run for one torture
// campaign. The mapping rides the generic campaign fields so the
// fleet's shrinker keeps working unchanged: Spec.Cores is the node
// count (dropping cores → fewer nodes), Spec.Txns the request count
// (bisecting txns → shorter load), and Spec.Seed everything else — the
// ring, the load mix, the crash schedule. c.Plan becomes the per-crash
// template (budget, tearing, re-crash cadence, optional self-trigger).
func Scenario(c harness.Campaign) Config {
	cfg := Config{
		Seed:     c.Spec.Seed,
		Design:   c.Spec.Design,
		Nodes:    c.Spec.Cores,
		Requests: c.Spec.Txns,
		// Cluster campaigns are small enough that per-request audit and
		// telemetry stay affordable; audit follows the spec flag.
		DisableAudit: c.Spec.DisableAudit,
		Telemetry:    c.Spec.Telemetry,
	}
	rng := rand.New(rand.NewSource(c.Spec.Seed ^ 0x736361747465)) // "scatte[r]"
	cfg.Keys = 256 << rng.Intn(3)                                 // 256–1024: enough collisions to matter
	cfg.Tenants = 1 + rng.Intn(4)
	cfg.ReadPercent = 30 + rng.Intn(60)
	cfg.ZipfS = 1.01 + rng.Float64()*0.4
	cfg.MeanGap = 600 + float64(rng.Intn(1400))
	if rng.Intn(2) == 0 {
		cfg.DiurnalAmp = 0.3 + rng.Float64()*0.5
		cfg.DiurnalPeriod = cfg.LoadHorizon() / sim.Cycle(1+rng.Intn(3))
	}
	plan := fault.RandomCluster(rng, cfg.Nodes, cfg.LoadHorizon(), c.Plan)
	cfg.Plan = &plan
	// Replication rides the workload name ("ClusterKV/r3/sync") so
	// records and resume streams stay self-describing; the bare name
	// derives R from the seed instead. Seed-derived campaigns stay
	// sync-only — the sweep-wide zero-acked-loss claim only holds for
	// sync replication, and async exposure is an explicit opt-in.
	reps, mode, explicit := parseReplWorkload(c.Spec.Workload)
	if !explicit {
		reps, mode = 1+rng.Intn(3), ReplSync
	}
	if reps > cfg.Nodes {
		reps = cfg.Nodes
	}
	cfg.Replicas, cfg.Replication = reps, mode
	// Half the campaigns chase their own recent writes, pinning reads
	// to the keys most exposed across a failover.
	if rng.Intn(2) == 0 {
		cfg.ReadRecentBias = 20 + rng.Intn(60)
	}
	return cfg
}

// replWorkload encodes a forced replication config into the campaign
// workload name; parseReplWorkload is its inverse, reporting explicit =
// false for the bare name (seed-derived replication).
func replWorkload(replicas int, mode ReplicationMode) string {
	if replicas <= 0 {
		return "ClusterKV"
	}
	return fmt.Sprintf("ClusterKV/r%d/%s", replicas, mode)
}

func parseReplWorkload(name string) (replicas int, mode ReplicationMode, explicit bool) {
	rest, ok := strings.CutPrefix(name, "ClusterKV/r")
	if !ok {
		return 0, ReplSync, false
	}
	rs, ms, ok := strings.Cut(rest, "/")
	if !ok {
		return 0, ReplSync, false
	}
	r, err := strconv.Atoi(rs)
	if err != nil || r < 1 {
		return 0, ReplSync, false
	}
	m, err := ParseReplicationMode(ms)
	if err != nil {
		return 0, ReplSync, false
	}
	return r, m, true
}

// availSummary projects a cluster result's crash windows onto the
// fleet's availability phase breakdown.
func availSummary(res Result) *harness.AvailSummary {
	if res.Replicas <= 1 && len(res.Windows) == 0 {
		return nil
	}
	a := &harness.AvailSummary{
		Replicas:  res.Replicas,
		Windows:   len(res.Windows),
		AckedLost: res.AckedLost,
	}
	if a.Replicas < 1 {
		a.Replicas = 1
	}
	if res.Replicas > 1 {
		a.Mode = res.Mode.String()
	}
	for _, w := range res.Windows {
		a.Strikes += w.Strikes
		a.DetectSum += int64(w.Detect())
		a.PromoteSum += int64(w.Promote())
		a.ResyncSum += int64(w.Resync())
		width, owner := int64(w.Width()), int64(w.OwnerOutage())
		a.WidthSum += width
		a.OwnerSum += owner
		if width > a.WidthMax {
			a.WidthMax = width
		}
		if owner > a.OwnerMax {
			a.OwnerMax = owner
		}
	}
	return a
}

// RunCampaign executes one cluster campaign and maps its Result onto
// the fleet's generic outcome: cluster-shadow divergences and per-node
// golden-shadow mismatches land in Mismatches (a durability verdict),
// event-budget and drain failures land in Err as infra.
func RunCampaign(c harness.Campaign) harness.CampaignOutcome {
	out := harness.CampaignOutcome{Campaign: c}
	res := Run(Scenario(c))
	if res.Err != nil {
		if res.Infra {
			out.Err = harness.InfraError{Err: res.Err}
		} else {
			out.Err = res.Err
		}
		return out
	}
	out.MidRun = res.Crashes > 0
	out.Commits = res.CommittedPuts
	out.Torn = res.Torn
	out.Dropped = res.Dropped
	out.Restarts = res.RecoveryRestarts
	out.Report = res.Recovery
	out.Report.Complete = true
	out.Mismatches = res.Divergences
	out.Avail = availSummary(res)
	return out
}

// TortureConfig parameterizes a cluster campaign sweep. It is a thin
// projection onto harness.TortureConfig: the fleet supplies panic
// containment, watchdogs, seeded-backoff infra retries, JSONL
// checkpoint/resume, and shrinking; this package supplies the campaign
// executor.
type TortureConfig struct {
	Seed      int64
	Campaigns int
	Offset    int
	Designs   []string // default harness.DesignNames()
	Nodes     int      // nodes per campaign (default 4)
	Requests  int      // client requests per campaign (default 400)

	// Replicas forces every campaign's replica-set size (0 = derive R
	// from each campaign's seed, sync mode). Replication selects the
	// mode when Replicas is forced.
	Replicas    int
	Replication ReplicationMode

	AllowStrict   bool
	AllowBitFlips bool
	Shrink        bool
	Parallel      int
	DisableAudit  bool

	WallBudget time.Duration
	Retries    int
	Backoff    time.Duration

	Resume   map[int]harness.Record
	OnRecord func(harness.Record)
	// Sink/OnSinkError are the two-phase checkpoint sink (see
	// harness.TortureConfig): encoding runs off the emit lock.
	Sink        harness.RecordSink
	OnSinkError func(error)
	Stop        <-chan struct{}
}

// Torture runs the cluster campaign sweep on the hardened fleet.
func Torture(cfg TortureConfig) (harness.TortureResult, error) {
	h := harness.TortureConfig{
		Seed:      cfg.Seed,
		Campaigns: cfg.Campaigns,
		Offset:    cfg.Offset,
		Designs:   cfg.Designs,
		// The workload name carries the forced replication config (or,
		// bare, leaves R seed-derived) so records and repro lines stay
		// self-describing; Scenario derives the rest from the seed.
		Workloads:     []string{replWorkload(cfg.Replicas, cfg.Replication)},
		Cores:         cfg.Nodes,
		Txns:          cfg.Requests,
		AllowStrict:   cfg.AllowStrict,
		AllowBitFlips: cfg.AllowBitFlips,
		Shrink:        cfg.Shrink,
		Parallel:      cfg.Parallel,
		DisableAudit:  cfg.DisableAudit,
		WallBudget:    cfg.WallBudget,
		Retries:       cfg.Retries,
		Backoff:       cfg.Backoff,
		Resume:        cfg.Resume,
		OnRecord:      cfg.OnRecord,
		Sink:          cfg.Sink,
		OnSinkError:   cfg.OnSinkError,
		Stop:          cfg.Stop,
		Run:           RunCampaign,
	}
	if h.Cores <= 0 {
		h.Cores = 4
	}
	if h.Txns <= 0 {
		h.Txns = 400
	}
	if len(h.Designs) == 0 {
		h.Designs = harness.DesignNames()
	}
	return harness.Torture(h)
}

// ReproArgs renders the silo-cluster flags that replay campaign idx of
// a sweep alone. replicas 0 means the sweep left R seed-derived.
func ReproArgs(seed int64, idx int, nodes, requests, replicas int, mode ReplicationMode) string {
	s := fmt.Sprintf("go run ./cmd/silo-cluster -campaigns 1 -offset %d -seed %d -nodes %d -requests %d",
		idx, seed, nodes, requests)
	if replicas > 0 {
		s += fmt.Sprintf(" -replicas %d -replication %s", replicas, mode)
	}
	return s
}
