package cluster

import (
	"bytes"
	"testing"

	"silo/internal/harness"
)

// Scenario must be a pure function of the campaign: the fleet's resume
// and shrink machinery both depend on re-deriving the identical run.
func TestScenarioDeterministic(t *testing.T) {
	base := harness.TortureConfig{Seed: 5, Campaigns: 8, Cores: 3, Txns: 200,
		Workloads: []string{"ClusterKV"}}
	for i := 0; i < 8; i++ {
		c := harness.MakeCampaign(base, i)
		a, b := Scenario(c), Scenario(c)
		pa, pb := a.Plan, b.Plan
		a.Plan, b.Plan = nil, nil
		if a != b {
			t.Fatalf("campaign %d: configs differ:\n%+v\n%+v", i, a, b)
		}
		if pa.String() != pb.String() {
			t.Fatalf("campaign %d: plans differ: %s vs %s", i, pa, pb)
		}
		if a.Nodes != 3 || a.Requests != 200 {
			t.Fatalf("campaign %d: spec shape not honored: %+v", i, a)
		}
	}
}

// A small sweep on the hardened fleet: every campaign must verify clean
// (zero divergences across both verdicts), with real crashes happening.
func TestClusterTortureSweep(t *testing.T) {
	res, err := Torture(TortureConfig{
		Seed: 77, Campaigns: 12, Nodes: 3, Requests: 150, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infra) != 0 {
		t.Fatalf("infra failures: %s", res.Summary())
	}
	if !res.Ok() {
		t.Fatalf("sweep failed:\n%s", res.Summary())
	}
	if res.MidRunCrashes == 0 {
		t.Fatal("no campaign crashed a node; the sweep proved nothing")
	}
	if res.Commits == 0 {
		t.Fatal("no commits across the sweep")
	}
}

// An interrupted cluster sweep resumed from its JSONL checkpoint must
// finish with the byte-identical stream of an uninterrupted run.
func TestClusterSweepResumeByteIdentical(t *testing.T) {
	base := TortureConfig{Seed: 31, Campaigns: 6, Nodes: 3, Requests: 120, Parallel: 1}

	runSweep := func(stopAfter int, buf *bytes.Buffer, resume map[int]harness.Record) harness.TortureResult {
		cfg := base
		cfg.Resume = resume
		var stop chan struct{}
		n := 0
		if stopAfter > 0 {
			stop = make(chan struct{})
			cfg.Stop = stop
		}
		cfg.OnRecord = func(r harness.Record) {
			if err := harness.WriteRecord(buf, r); err != nil {
				t.Fatal(err)
			}
			if n++; stopAfter > 0 && n == stopAfter {
				close(stop)
			}
		}
		res, err := Torture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var baseline bytes.Buffer
	full := runSweep(0, &baseline, nil)
	if !full.Ok() || len(full.Infra) != 0 {
		t.Fatalf("baseline sweep unclean:\n%s", full.Summary())
	}

	var interrupted bytes.Buffer
	part := runSweep(2, &interrupted, nil)
	if !part.Interrupted {
		t.Fatal("stop did not interrupt the sweep")
	}
	recs, err := harness.ReadRecords(bytes.NewReader(interrupted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("partial stream has %d records, want 2", len(recs))
	}
	resumed := runSweep(0, &interrupted, recs)
	if resumed.Interrupted {
		t.Fatal("resumed sweep still interrupted")
	}
	if !bytes.Equal(interrupted.Bytes(), baseline.Bytes()) {
		t.Errorf("resumed stream differs from baseline:\n%s\nvs\n%s",
			interrupted.Bytes(), baseline.Bytes())
	}
	if full.Summary() != resumed.Summary() {
		t.Errorf("summaries differ:\n%s\nvs\n%s", full.Summary(), resumed.Summary())
	}
}
