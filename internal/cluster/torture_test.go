package cluster

import (
	"bytes"
	"strings"
	"testing"

	"silo/internal/harness"
)

// Scenario must be a pure function of the campaign: the fleet's resume
// and shrink machinery both depend on re-deriving the identical run.
func TestScenarioDeterministic(t *testing.T) {
	base := harness.TortureConfig{Seed: 5, Campaigns: 8, Cores: 3, Txns: 200,
		Workloads: []string{"ClusterKV"}}
	for i := 0; i < 8; i++ {
		c := harness.MakeCampaign(base, i)
		a, b := Scenario(c), Scenario(c)
		pa, pb := a.Plan, b.Plan
		a.Plan, b.Plan = nil, nil
		if a != b {
			t.Fatalf("campaign %d: configs differ:\n%+v\n%+v", i, a, b)
		}
		if pa.String() != pb.String() {
			t.Fatalf("campaign %d: plans differ: %s vs %s", i, pa, pb)
		}
		if a.Nodes != 3 || a.Requests != 200 {
			t.Fatalf("campaign %d: spec shape not honored: %+v", i, a)
		}
	}
}

// A small sweep on the hardened fleet: every campaign must verify clean
// (zero divergences across both verdicts), with real crashes happening.
func TestClusterTortureSweep(t *testing.T) {
	res, err := Torture(TortureConfig{
		Seed: 77, Campaigns: 12, Nodes: 3, Requests: 150, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infra) != 0 {
		t.Fatalf("infra failures: %s", res.Summary())
	}
	if !res.Ok() {
		t.Fatalf("sweep failed:\n%s", res.Summary())
	}
	if res.MidRunCrashes == 0 {
		t.Fatal("no campaign crashed a node; the sweep proved nothing")
	}
	if res.Commits == 0 {
		t.Fatal("no commits across the sweep")
	}
}

// An interrupted cluster sweep resumed from its JSONL checkpoint must
// finish with the byte-identical stream of an uninterrupted run.
func TestClusterSweepResumeByteIdentical(t *testing.T) {
	base := TortureConfig{Seed: 31, Campaigns: 6, Nodes: 3, Requests: 120, Parallel: 1}

	runSweep := func(stopAfter int, buf *bytes.Buffer, resume map[int]harness.Record) harness.TortureResult {
		cfg := base
		cfg.Resume = resume
		var stop chan struct{}
		n := 0
		if stopAfter > 0 {
			stop = make(chan struct{})
			cfg.Stop = stop
		}
		cfg.OnRecord = func(r harness.Record) {
			if err := harness.WriteRecord(buf, r); err != nil {
				t.Fatal(err)
			}
			if n++; stopAfter > 0 && n == stopAfter {
				close(stop)
			}
		}
		res, err := Torture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var baseline bytes.Buffer
	full := runSweep(0, &baseline, nil)
	if !full.Ok() || len(full.Infra) != 0 {
		t.Fatalf("baseline sweep unclean:\n%s", full.Summary())
	}

	var interrupted bytes.Buffer
	part := runSweep(2, &interrupted, nil)
	if !part.Interrupted {
		t.Fatal("stop did not interrupt the sweep")
	}
	recs, err := harness.ReadRecords(bytes.NewReader(interrupted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("partial stream has %d records, want 2", len(recs))
	}
	resumed := runSweep(0, &interrupted, recs)
	if resumed.Interrupted {
		t.Fatal("resumed sweep still interrupted")
	}
	if !bytes.Equal(interrupted.Bytes(), baseline.Bytes()) {
		t.Errorf("resumed stream differs from baseline:\n%s\nvs\n%s",
			interrupted.Bytes(), baseline.Bytes())
	}
	if full.Summary() != resumed.Summary() {
		t.Errorf("summaries differ:\n%s\nvs\n%s", full.Summary(), resumed.Summary())
	}
}

// The deterministic-replay guard at replication scope: a forced-R=3
// sync sweep must emit a byte-identical JSONL stream on a second run
// and through an interrupt/resume cycle, and its summary must carry the
// availability breakdown.
func TestClusterReplicatedSweepByteIdentical(t *testing.T) {
	base := TortureConfig{
		Seed: 93, Campaigns: 6, Nodes: 4, Requests: 150, Parallel: 1,
		Replicas: 3, Replication: ReplSync,
	}

	runSweep := func(stopAfter int, buf *bytes.Buffer, resume map[int]harness.Record) harness.TortureResult {
		cfg := base
		cfg.Resume = resume
		var stop chan struct{}
		n := 0
		if stopAfter > 0 {
			stop = make(chan struct{})
			cfg.Stop = stop
		}
		cfg.OnRecord = func(r harness.Record) {
			if err := harness.WriteRecord(buf, r); err != nil {
				t.Fatal(err)
			}
			if n++; stopAfter > 0 && n == stopAfter {
				close(stop)
			}
		}
		res, err := Torture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var first, second bytes.Buffer
	resA := runSweep(0, &first, nil)
	resB := runSweep(0, &second, nil)
	if !resA.Ok() || len(resA.Infra) != 0 {
		t.Fatalf("replicated sweep unclean:\n%s", resA.Summary())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("two identical replicated sweeps wrote different streams:\n%s\nvs\n%s",
			first.Bytes(), second.Bytes())
	}
	if resA.Summary() != resB.Summary() {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", resA.Summary(), resB.Summary())
	}
	if !strings.Contains(resA.Summary(), "r3/sync") {
		t.Fatalf("summary lacks the replication availability breakdown:\n%s", resA.Summary())
	}
	if a := resA.Avail["r3/sync"]; a == nil || a.AckedLost != 0 {
		t.Fatalf("r3/sync breakdown missing or lossy: %+v", a)
	}

	var interrupted bytes.Buffer
	part := runSweep(2, &interrupted, nil)
	if !part.Interrupted {
		t.Fatal("stop did not interrupt the sweep")
	}
	recs, err := harness.ReadRecords(bytes.NewReader(interrupted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed := runSweep(0, &interrupted, recs)
	if resumed.Interrupted {
		t.Fatal("resumed sweep still interrupted")
	}
	if !bytes.Equal(interrupted.Bytes(), first.Bytes()) {
		t.Errorf("resumed replicated stream differs from baseline:\n%s\nvs\n%s",
			interrupted.Bytes(), first.Bytes())
	}
	if resA.Summary() != resumed.Summary() {
		t.Errorf("resumed summary differs:\n%s\nvs\n%s", resA.Summary(), resumed.Summary())
	}
}

// Forced replication must ride the record stream itself: a resumed
// record re-derives the identical campaign config, replica count
// included.
func TestScenarioReplicationFromWorkloadName(t *testing.T) {
	cfgT := harness.TortureConfig{Seed: 11, Campaigns: 4, Cores: 4, Txns: 100,
		Workloads: []string{replWorkload(2, ReplAsync)}}
	for i := 0; i < 4; i++ {
		cfg := Scenario(harness.MakeCampaign(cfgT, i))
		if cfg.Replicas != 2 || cfg.Replication != ReplAsync {
			t.Fatalf("campaign %d: got R=%d mode=%v, want forced 2/async", i, cfg.Replicas, cfg.Replication)
		}
	}
	// Bare name: seed-derived R in [1,3], sync only.
	cfgT.Workloads = []string{"ClusterKV"}
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		cfg := Scenario(harness.MakeCampaign(cfgT, i))
		if cfg.Replicas < 1 || cfg.Replicas > 3 {
			t.Fatalf("campaign %d: derived R=%d out of [1,3]", i, cfg.Replicas)
		}
		if cfg.Replication != ReplSync {
			t.Fatalf("campaign %d: derived mode %v, want sync-only sweeps", i, cfg.Replication)
		}
		seen[cfg.Replicas] = true
	}
	if len(seen) < 2 {
		t.Fatalf("seed-derived R never varied: %v", seen)
	}
}
