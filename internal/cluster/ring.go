// Package cluster composes N simulated Silo machines into a sharded
// persistent-memory key-value service: consistent-hash shard routing, a
// deterministic network/RPC cost model (hop latency, timeouts, bounded
// retries with seeded-jitter backoff, bounded per-node queues with
// overload shedding), Zipfian multi-tenant client load, and a cluster-
// scope fault layer — node crashes with the bounded-energy battery
// flush, recovery-under-load log replay while the router fails over,
// and multi-node crash storms.
//
// The whole cluster is one single-goroutine discrete-event simulation:
// given a Config it produces the identical event sequence, ack
// sequence, and Result on every run, which is what lets cluster
// campaigns ride the torture fleet's checkpoint/resume and shrinking
// machinery unchanged.
//
// Correctness is judged two ways at once: every node machine keeps its
// own golden committed shadow (verified word-for-word after each
// crash's recovery, with the per-node audit invariants live during
// execution), and the cluster keeps a service-level shadow tracking,
// per key, the last transaction that *committed* on the owning node —
// distinguishing acked writes (the client saw success; they must
// survive) from committed-but-unacked writes (the crash ate the
// response; the value legally surfaces after failover).
package cluster

// Ring is a consistent-hash ring mapping keys to nodes: each node
// projects vnodes virtual points onto the 64-bit ring and a key belongs
// to the first point clockwise of its hash. Placement is a pure
// function of (nodes, vnodes, seed): every run, resume, and reproducer
// sees identical shard ownership.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	h    uint64
	node int
}

// NewRing builds a ring of `nodes` nodes with `vnodes` virtual points
// each (minimums 1 and 1).
func NewRing(nodes, vnodes int, seed int64) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{nodes: nodes}
	r.points = make([]ringPoint, 0, nodes*vnodes)
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			h := splitmix64(uint64(seed) ^ uint64(n)<<32 ^ uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{h: h, node: n})
		}
	}
	// Insertion sort keeps this dependency-free and deterministic; the
	// point count is small (nodes × vnodes).
	for i := 1; i < len(r.points); i++ {
		for j := i; j > 0 && less(r.points[j], r.points[j-1]); j-- {
			r.points[j], r.points[j-1] = r.points[j-1], r.points[j]
		}
	}
	return r
}

// less orders points by hash, breaking exact collisions by node so the
// sort (and therefore ownership) is total.
func less(a, b ringPoint) bool {
	if a.h != b.h {
		return a.h < b.h
	}
	return a.node < b.node
}

// Owner returns the node owning key: the first ring point at or
// clockwise of the key's hash.
func (r *Ring) Owner(key uint64) int {
	h := splitmix64(key)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap
	}
	return r.points[lo].node
}

// OwnersN returns the key's ordered replica set: the first n *distinct*
// nodes met walking clockwise from the key's hash. Element 0 is the
// primary (identical to Owner); elements 1..n-1 are the replicas in
// promotion order. n is clamped to [1, nodes], so the result never
// contains duplicates and never exhausts the ring.
func (r *Ring) OwnersN(key uint64, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := splitmix64(key)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	owners := make([]int, 0, n)
	seen := uint64(0) // node-id bitset; falls back to a scan for nodes ≥ 64
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		p := r.points[(lo+i)%len(r.points)]
		if p.node < 64 {
			if seen&(1<<uint(p.node)) != 0 {
				continue
			}
			seen |= 1 << uint(p.node)
		} else {
			dup := false
			for _, o := range owners {
				if o == p.node {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		owners = append(owners, p.node)
	}
	return owners
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.nodes }

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
