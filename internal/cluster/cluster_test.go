package cluster

import (
	"fmt"
	"testing"

	"silo/internal/fault"
	"silo/internal/sim"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing(5, 16, 42)
	b := NewRing(5, 16, 42)
	counts := make([]int, 5)
	for k := uint64(0); k < 10_000; k++ {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("key %d: owner %d vs %d across identical rings", k, oa, ob)
		}
		if oa < 0 || oa >= 5 {
			t.Fatalf("key %d: owner %d out of range", k, oa)
		}
		counts[oa]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %d owns no keys (counts %v)", n, counts)
		}
	}
}

func TestClusterFaultFree(t *testing.T) {
	res := Run(Config{Seed: 1, Design: "Silo", Nodes: 3, Requests: 300})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("divergences on a fault-free run: %v", res.Divergences)
	}
	if res.Generated != 300 {
		t.Fatalf("generated %d want 300", res.Generated)
	}
	if res.Acked == 0 {
		t.Fatal("no requests acked")
	}
	if res.Crashes != 0 || len(res.Windows) != 0 {
		t.Fatalf("crashes %d windows %d on a fault-free run", res.Crashes, len(res.Windows))
	}
	if res.Acked+res.Failed != res.Generated {
		t.Fatalf("acked %d + failed %d != generated %d", res.Acked, res.Failed, res.Generated)
	}
	if res.CommittedPuts < res.AckedPuts {
		t.Fatalf("committed %d < acked puts %d: acks without commits", res.CommittedPuts, res.AckedPuts)
	}
}

func crashConfig(seed int64, design string) Config {
	cfg := Config{Seed: seed, Design: design, Nodes: 3, Requests: 400}
	horizon := cfg.LoadHorizon()
	cfg.Plan = &fault.ClusterPlan{
		Crashes: []fault.NodeCrash{{Node: 1, At: horizon / 3}},
		Node:    fault.Plan{FlushBudget: 256, TearWords: true, RecrashEvery: 8},
	}
	return cfg
}

func TestClusterNodeCrashRecoversUnderLoad(t *testing.T) {
	for _, design := range []string{"Silo", "Base", "FWB"} {
		t.Run(design, func(t *testing.T) {
			res := Run(crashConfig(7, design))
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if len(res.Divergences) != 0 {
				t.Fatalf("divergences: %v", res.Divergences)
			}
			if res.Crashes == 0 {
				t.Fatal("scheduled crash never fired")
			}
			if len(res.Windows) == 0 {
				t.Fatal("no crash windows recorded")
			}
			for i, w := range res.Windows {
				if !w.Closed {
					t.Errorf("window %d never closed: node %d down at %d", i, w.Node, w.DownAt)
				}
				if w.Width() <= 0 {
					t.Errorf("window %d has nonpositive width %d", i, w.Width())
				}
				if w.CommitsElsewhere == 0 {
					t.Errorf("window %d: no commits on surviving nodes", i)
				}
			}
			if res.Acked == 0 {
				t.Fatal("nothing acked despite surviving nodes")
			}
		})
	}
}

func TestClusterDeterministic(t *testing.T) {
	fp := func(r Result) string {
		return fmt.Sprintf("g=%d a=%d f=%d cp=%d to=%d sh=%d ff=%d rt=%d cr=%d w=%d p50=%d p99=%d fc=%d div=%d",
			r.Generated, r.Acked, r.Failed, r.CommittedPuts, r.Timeouts, r.Sheds,
			r.FastFails, r.Retries, r.Crashes, len(r.Windows),
			r.Latency.Percentile(50), r.Latency.Percentile(99), r.FinalCycle, len(r.Divergences))
	}
	a := Run(crashConfig(11, "Silo"))
	b := Run(crashConfig(11, "Silo"))
	if a.Err != nil || b.Err != nil {
		t.Fatalf("run: %v / %v", a.Err, b.Err)
	}
	if fp(a) != fp(b) {
		t.Fatalf("identical configs diverged:\n%s\n%s", fp(a), fp(b))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}

func TestClusterCrashStorm(t *testing.T) {
	cfg := Config{Seed: 3, Design: "Silo", Nodes: 4, Requests: 500}
	horizon := cfg.LoadHorizon()
	cfg.Plan = &fault.ClusterPlan{
		Crashes: []fault.NodeCrash{
			{Node: 0, At: horizon / 4},
			{Node: 2, At: horizon/4 + 10_000},
			{Node: 0, At: horizon * 3 / 4}, // repeat offender
		},
		Node: fault.Plan{FlushBudget: 128, TearWords: true},
	}
	res := Run(cfg)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("divergences: %v", res.Divergences)
	}
	if res.Crashes < 3 {
		t.Fatalf("crashes %d want >= 3", res.Crashes)
	}
	if res.Acked == 0 {
		t.Fatal("storm silenced the whole cluster")
	}
}

func TestClusterDiurnalLoad(t *testing.T) {
	cfg := Config{Seed: 5, Design: "Silo", Nodes: 3, Requests: 400, DiurnalAmp: 0.6}
	cfg.DiurnalPeriod = cfg.LoadHorizon() / 2
	res := Run(cfg)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("divergences: %v", res.Divergences)
	}
	if res.Acked == 0 {
		t.Fatal("no acks under diurnal load")
	}
}

func TestClusterParsePlanRoundTrip(t *testing.T) {
	p := fault.ClusterPlan{
		Crashes: []fault.NodeCrash{{Node: 2, At: 12345}, {Node: 0, At: 99999}},
		Node:    fault.Plan{Trigger: fault.TriggerOp, AtOp: 7, FlushBudget: 64, TearWords: true, RecrashEvery: 4, Seed: 9},
	}
	got, err := fault.ParseClusterPlan(p.String())
	if err != nil {
		t.Fatalf("parse %q: %v", p.String(), err)
	}
	if got.String() != p.String() {
		t.Fatalf("round trip: %q -> %q", p.String(), got.String())
	}
	empty, err := fault.ParseClusterPlan("")
	if err != nil || empty.Active() {
		t.Fatalf("empty plan: %+v err %v", empty, err)
	}
}

func TestClusterUnavailabilityWindowFinite(t *testing.T) {
	res := Run(crashConfig(13, "Silo"))
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	for _, w := range res.Windows {
		if !w.Closed {
			t.Fatalf("window for node %d not closed", w.Node)
		}
		// A window must be bounded by detection + reboot + replay plus
		// queueing slack, far below the whole run.
		if w.Width() >= res.FinalCycle {
			t.Fatalf("window [%d,%d] spans the whole run (%d)", w.DownAt, w.ServingAt, res.FinalCycle)
		}
	}
	if res.Latency.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	if p50, p99 := res.Latency.Percentile(50), res.Latency.Percentile(99); p50 <= 0 || p99 < p50 {
		t.Fatalf("implausible percentiles p50=%d p99=%d", p50, p99)
	}
}

func TestClusterStepBudgetIsInfra(t *testing.T) {
	// A pathological config (tiny event budget) must surface as an
	// infra error, never a hang or a durability verdict.
	cfg := Config{Seed: 1, Nodes: 2, Requests: 100, MaxEvents: 10}
	res := Run(cfg)
	if res.Err == nil || !res.Infra {
		t.Fatalf("want infra error, got err=%v infra=%v", res.Err, res.Infra)
	}
}

var benchSink Result

func BenchmarkClusterSteadyState(b *testing.B) {
	cfg := Config{Seed: 9, Design: "Silo", Nodes: 3, Requests: 200, DisableAudit: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = Run(cfg)
		if benchSink.Err != nil {
			b.Fatal(benchSink.Err)
		}
	}
}

var _ = sim.Cycle(0)
