package cluster

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"silo/internal/core"
	"silo/internal/fault"
	"silo/internal/mem"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
	"silo/internal/workload"
)

// Config parameterizes one cluster run. The zero value of any field is
// replaced by the defaults below; a Config fully determines the run.
type Config struct {
	Seed   int64
	Design string // logging design name (harness registry; default "Silo")

	Nodes    int    // shard servers (default 4)
	VNodes   int    // virtual ring points per node (default 16)
	Requests int    // client requests to generate (default 2000)
	Keys     uint64 // keyspace size (default 4096)

	// Client load shape (see workload.KVLoadConfig).
	Tenants        int
	ReadPercent    int     // default 60
	ZipfS          float64 // default 1.07
	MeanGap        float64 // per-tenant mean inter-arrival, cycles (default 1200)
	ReadRecentBias int     // % of reads chasing the tenant's recent writes
	DiurnalPeriod  sim.Cycle
	DiurnalAmp     float64

	// Network/RPC cost model. All times are simulated cycles (2 GHz:
	// 2000 cycles = 1 µs).
	HopLatency  sim.Cycle // one-way hop (default 2000)
	HopJitter   sim.Cycle // uniform extra per hop (default 400)
	Timeout     sim.Cycle // client attempt timeout (default 300_000)
	Retries     int       // retries after the first attempt (default 3)
	BackoffBase sim.Cycle // retry backoff base, doubling + jitter (default 20_000)
	QueueCap    int       // per-node waiting-request bound (default 64)

	// ServiceOverhead is the fixed per-request cost outside the machine
	// execution — parse, dispatch, reply marshalling (default 600).
	ServiceOverhead sim.Cycle

	// Failure/recovery cost model.
	DetectDelay      sim.Cycle // router failure-detection lag (default 30_000)
	RebootDelay      sim.Cycle // power-on to replay start (default 50_000)
	RecoverPerRecord sim.Cycle // replay cost per scanned log record (default 300)
	RecoverPerWrite  sim.Cycle // replay cost per applied word (default 150)

	// Replication. Replicas is the replica-set size R — each key lives
	// on the first R distinct ring nodes (default 1: no replication,
	// exactly the pre-replication behavior). Replication selects sync
	// (ack after all live replicas applied) or bounded-async (ack after
	// the primary commit; replicas apply AsyncDelay later, and acked
	// writes lost to a primary crash are counted, not hidden).
	Replicas    int
	Replication ReplicationMode

	// PromoteDelay is the router's promotion lag after detection: once a
	// node is marked down, the next live replica takes over this many
	// cycles later (default 4000 = 2 µs). ResyncBase + ResyncPerEntry
	// model the rebooted node's catch-up stream setup and per-entry
	// apply/transfer cost (defaults 10_000 and 200); AsyncDelay is the
	// bounded-async replication lag (default 10_000 = 5 µs).
	PromoteDelay   sim.Cycle
	ResyncBase     sim.Cycle
	ResyncPerEntry sim.Cycle
	AsyncDelay     sim.Cycle

	// Plan is the cluster fault schedule (nil = fault-free).
	Plan *fault.ClusterPlan

	DisableAudit bool
	Telemetry    *telemetry.Recorder

	// MaxEvents bounds the event loop against harness bugs (0 → scaled
	// to the request count). Exceeding it is an infra failure.
	MaxEvents int64
}

func (cfg *Config) defaults() {
	if cfg.Design == "" {
		cfg.Design = "Silo"
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 4
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = 16
	}
	if cfg.Requests < 1 {
		cfg.Requests = 2000
	}
	if cfg.Keys < 2 {
		cfg.Keys = 4096
	}
	if cfg.Tenants < 1 {
		cfg.Tenants = 3
	}
	if cfg.ReadPercent == 0 {
		cfg.ReadPercent = 60
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.07
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1200
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 2000
	}
	if cfg.HopJitter == 0 {
		cfg.HopJitter = 400
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 300_000
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 20_000
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.ServiceOverhead == 0 {
		cfg.ServiceOverhead = 600
	}
	if cfg.DetectDelay == 0 {
		cfg.DetectDelay = 30_000
	}
	if cfg.RebootDelay == 0 {
		cfg.RebootDelay = 50_000
	}
	if cfg.RecoverPerRecord == 0 {
		cfg.RecoverPerRecord = 300
	}
	if cfg.RecoverPerWrite == 0 {
		cfg.RecoverPerWrite = 150
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		cfg.Replicas = cfg.Nodes
	}
	if cfg.PromoteDelay == 0 {
		cfg.PromoteDelay = 4000
	}
	if cfg.ResyncBase == 0 {
		cfg.ResyncBase = 10_000
	}
	if cfg.ResyncPerEntry == 0 {
		cfg.ResyncPerEntry = 200
	}
	if cfg.AsyncDelay == 0 {
		cfg.AsyncDelay = 10_000
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 400*int64(cfg.Requests) + 100_000
	}
}

// LoadHorizon estimates when request generation ends — the window fault
// schedules should land inside.
func (cfg Config) LoadHorizon() sim.Cycle {
	c := cfg
	c.defaults()
	perTenant := float64(c.Requests) / float64(c.Tenants)
	return sim.Cycle(perTenant * c.MeanGap)
}

// CrashWindow is one node outage's availability record. Consecutive
// strikes with no successful service in between (a node crashing again
// during reboot, replay, or catch-up) merge into one continuous window:
// Strikes counts them, DownAt is the first power failure, and the
// phase marks below track the final strike's recovery.
type CrashWindow struct {
	Node   int
	DownAt sim.Cycle
	// ServingAt is when the recovered node completed its first request
	// of the next incarnation; [DownAt, ServingAt] is the old owner's
	// full outage. When load ended before the node served again, Closed
	// is false and ServingAt clamps to FinalCycle.
	ServingAt sim.Cycle
	Closed    bool
	Strikes   int
	// Phase marks (zero = the phase never happened before the window
	// resolved): the failure detector firing, the router promoting the
	// next live replica (Replicas > 1), the final strike's reboot+replay
	// completing, and the catch-up resync finishing.
	DetectedAt  sim.Cycle
	PromotedAt  sim.Cycle
	RecoveredAt sim.Cycle
	ResyncEnd   sim.Cycle
	// FailoverAt is the first completion another replica of one of this
	// node's keys served inside the window — evidence the keys stayed
	// available (Replicas > 1).
	FailoverAt sim.Cycle
	// CommitsElsewhere counts transactions committed by surviving nodes
	// inside the window — nonzero means the cluster kept serving.
	CommitsElsewhere int64
}

// Width returns the client-visible unavailability: with replication the
// window ends at promotion (replicas serve from there on); without it —
// or when the node returned before promotion — it ends when the owner
// served again.
func (w CrashWindow) Width() sim.Cycle {
	if w.PromotedAt > 0 {
		return w.PromotedAt - w.DownAt
	}
	return w.ServingAt - w.DownAt
}

// OwnerOutage returns the crashed node's full time out of the ring.
func (w CrashWindow) OwnerOutage() sim.Cycle { return w.ServingAt - w.DownAt }

// Detect returns the detection phase (crash → detector fired).
func (w CrashWindow) Detect() sim.Cycle {
	if w.DetectedAt == 0 {
		return 0
	}
	return w.DetectedAt - w.DownAt
}

// Promote returns the promotion phase (detector fired → failover done).
func (w CrashWindow) Promote() sim.Cycle {
	if w.PromotedAt == 0 || w.DetectedAt == 0 {
		return 0
	}
	return w.PromotedAt - w.DetectedAt
}

// Resync returns the background catch-up phase (replay done → rejoined
// the ring), which no longer blocks client traffic under replication.
func (w CrashWindow) Resync() sim.Cycle {
	if w.ResyncEnd == 0 || w.RecoveredAt == 0 {
		return 0
	}
	return w.ResyncEnd - w.RecoveredAt
}

// NodeStats summarizes one node's run.
type NodeStats struct {
	Served  int64
	Commits int64
	Crashes int
}

// Result is everything one cluster run produced.
type Result struct {
	Design   string
	Nodes    int
	Replicas int
	Mode     ReplicationMode

	Generated int64 // client requests created
	Gets      int64
	Puts      int64
	Acked     int64 // requests acknowledged to the client
	AckedPuts int64
	Failed    int64 // requests exhausted their retry budget

	CommittedPuts int64 // Tx_end completions across all nodes (incl. unacked and duplicates)

	Timeouts  int64 // client attempt timeouts
	Sheds     int64 // requests refused by a full node queue
	FastFails int64 // router fast-fails to a node marked down
	Resets    int64 // queued requests bounced by a node crash
	Retries   int64 // attempts beyond the first
	Late      int64 // responses arriving after the request was resolved

	Latency stats.Histogram // acked-request client latency, cycles

	Crashes          int
	Windows          []CrashWindow
	Recovery         recovery.Report // summed over all node recoveries
	RecoveryRestarts int
	Torn             int64
	Dropped          int64

	// Replication counters (Replicas > 1).
	ReplSent      int64 // replication messages sent
	ReplApplied   int64 // apply transactions committed on replicas
	ReplStale     int64 // messages superseded by a newer applied version
	ReplDropped   int64 // messages discarded at a down/wedged replica
	Promotions    int   // failovers the router completed
	ResyncEntries int64 // catch-up diff entries applied by rebooted nodes
	AckedLost     int64 // async mode: acked writes no live replica held at a crash

	Divergences []string // cluster-shadow + per-node golden-shadow verdicts

	PerNode    []NodeStats
	FinalCycle sim.Cycle

	Err   error
	Infra bool // Err is a harness/resource failure, not a verdict
}

// Available reports the fraction of generated requests that were acked.
func (r *Result) Available() float64 {
	if r.Generated == 0 {
		return 1
	}
	return float64(r.Acked) / float64(r.Generated)
}

// event kinds of the cluster DES.
type evKind uint8

const (
	evArrive    evKind = iota // a tenant's next request materializes at the router
	evRetry                   // a client re-sends after backoff
	evNodeRecv                // a request reaches its shard server
	evNodeDone                // the server finished executing a request
	evResp                    // a response (or reset) reaches the client
	evTimeout                 // a client attempt timer fires
	evCrash                   // a scheduled node power failure
	evRecovered               // a node finished reboot + replay
	evHealthDown              // the router's failure detector marks a node down
	evReplRecv                // a replication message reaches a replica
	evReplDone                // a replica finished applying a replication message
	evReplAck                 // a replica's apply ack reaches the committing member
	evPromote                 // the router promotes the next live replica of a down node
	evResynced                // a rebooted node finished catch-up and re-enters the ring
)

// response kinds carried in evResp's arg.
const (
	respOK = iota
	respShed
	respUnavail
	respReset
)

type request struct {
	id        int64
	tenant    int
	key       uint64
	read      bool
	val       uint64 // put payload (globally unique write sequence)
	node      int    // owner at last routing
	attempt   int
	firstSend sim.Cycle
	done      bool
	committed bool
	loaded    uint64
}

type event struct {
	at   sim.Cycle
	seq  int64 // tie-break: events at equal time fire in schedule order
	kind evKind
	node int // node id, tenant id (evArrive), or -1
	req  *request
	arg  int
	repl *replMsg // replication payload (evReplRecv/evReplDone/evReplAck)
	ver  uint64   // commit version riding evNodeDone/evResp for acked Puts
}

// eventQueue is a binary min-heap over (at, seq).
type eventQueue []event

func (q eventQueue) lessAt(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.lessAt(i, p) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	*q = h[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.lessAt(l, small) {
			small = l
		}
		if r < n && q.lessAt(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Cluster is the running simulation state.
type Cluster struct {
	cfg        Config
	designOpts core.Options
	layout     mem.Layout
	ring       *Ring
	load       *workload.KVLoad
	nodes      []*node
	health     []bool // router's availability view
	shadow     *shadow
	tel        *telemetry.Recorder

	evq      eventQueue
	seq      int64
	rng      *rand.Rand // network + backoff jitter (deterministic use order)
	writeSeq uint64

	// Replication state (allocated only when Replicas > 1).
	groups     map[uint64][]int // key → cached ordered replica set
	linkNext   []sim.Cycle      // per (from, to) link: last replication delivery (FIFO)
	failedOver []bool           // router promoted the next replica of this down node
	verSeq     uint64           // global commit version counter

	generated   int64
	outstanding int64
	tenantNext  []pendingArrival
	released    []bool // per node: current machine already released

	// External control (silo-serve): extCrash holds a pending on-demand
	// node crash (0 none, n+1 node n, -1 any live node) set from another
	// goroutine; pacer, when non-nil, is called once per dispatched event
	// on the Drive goroutine to throttle toward wall-clock speed. Neither
	// is used by batch callers, whose runs stay byte-identical.
	extCrash atomic.Int64
	pacer    func(now sim.Cycle)

	res Result
}

// RequestCrash asks Drive to power-fail a node at the current event
// time: node >= 0 picks that node, node < 0 the lowest-numbered node
// still up. Safe from any goroutine; a request against a node already
// down is dropped (the evCrash double-strike guard).
func (c *Cluster) RequestCrash(node int) {
	if node < 0 {
		c.extCrash.Store(-1)
		return
	}
	c.extCrash.Store(int64(node) + 1)
}

// SetPacer installs a host-side throttle called once per dispatched
// event with the event's simulated time. Call before Drive.
func (c *Cluster) SetPacer(f func(now sim.Cycle)) { c.pacer = f }

// takeExtCrash resolves a pending external crash request to a node id
// (-1 when none is pending or no node is up).
func (c *Cluster) takeExtCrash() int {
	v := c.extCrash.Swap(0)
	if v == 0 {
		return -1
	}
	if v > 0 {
		n := int(v - 1)
		if n < len(c.nodes) && c.nodes[n].state != nodeDown {
			return n
		}
		return -1
	}
	for _, n := range c.nodes {
		if n.state != nodeDown {
			return n.id
		}
	}
	return -1
}

type pendingArrival struct {
	read bool
	key  uint64
}

// New builds a cluster simulation (nodes booted, faults and first
// arrivals scheduled) without running it; Run is New + Drive.
func New(cfg Config) (*Cluster, error) {
	cfg.defaults()
	c := &Cluster{
		cfg:    cfg,
		layout: mem.DefaultLayout(),
		ring:   NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed),
		shadow: newShadow(),
		tel:    cfg.Telemetry,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x636c7573746572)), // "cluster"
	}
	c.res.Design = cfg.Design
	c.res.Nodes = cfg.Nodes
	c.res.Replicas = cfg.Replicas
	c.res.Mode = cfg.Replication
	if cfg.Replicas > 1 {
		c.groups = make(map[uint64][]int)
		c.linkNext = make([]sim.Cycle, cfg.Nodes*cfg.Nodes)
		c.failedOver = make([]bool, cfg.Nodes)
	}
	c.load = workload.NewKVLoad(workload.KVLoadConfig{
		Seed:          cfg.Seed ^ 0x6c6f6164, // "load"
		Tenants:       cfg.Tenants,
		Keys:          cfg.Keys,
		ZipfS:         cfg.ZipfS,
		ReadPercent:   cfg.ReadPercent,
		MeanGap:       cfg.MeanGap,
		RecentBias:    cfg.ReadRecentBias,
		DiurnalPeriod: cfg.DiurnalPeriod,
		DiurnalAmp:    cfg.DiurnalAmp,
	})

	// Per-node crash schedules from the plan.
	crashTimes := make([][]sim.Cycle, cfg.Nodes)
	if cfg.Plan != nil {
		for _, nc := range cfg.Plan.Crashes {
			if nc.Node < 0 || nc.Node >= cfg.Nodes {
				continue
			}
			crashTimes[nc.Node] = append(crashTimes[nc.Node], nc.At)
		}
	}

	c.health = make([]bool, cfg.Nodes)
	c.released = make([]bool, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		n := &node{
			id:         id,
			crashTimes: crashTimes[id],
			kv:         make(map[uint64]uint64),
			ver:        make(map[uint64]uint64),
		}
		if len(n.crashTimes) > 0 {
			n.pendingCrash = n.crashTimes[0]
		}
		if err := c.bootNode(n); err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.health[id] = true
		c.tel.NodeState(id, 0, telemetry.NodeUp, 0)
		for _, at := range n.crashTimes {
			c.schedule(at, evCrash, id, nil, 0)
		}
	}

	// First arrival per tenant.
	c.tenantNext = make([]pendingArrival, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		at, read, key := c.load.Next(t, 0)
		c.tenantNext[t] = pendingArrival{read: read, key: key}
		c.schedule(at, evArrive, t, nil, 0)
	}
	return c, nil
}

// selfCrashNode is the node that arms the template plan's machine-level
// self-crash trigger (the first scheduled crash victim, else node 0).
func (c *Cluster) selfCrashNodeID() int {
	if c.cfg.Plan != nil && len(c.cfg.Plan.Crashes) > 0 {
		return c.cfg.Plan.Crashes[0].Node
	}
	return 0
}

// Run executes one cluster simulation to completion.
func Run(cfg Config) Result {
	c, err := New(cfg)
	if err != nil {
		return Result{Design: cfg.Design, Err: err}
	}
	return c.Drive()
}

// Drive pumps the event loop until the simulation drains (every request
// resolved, every recovery finished) and returns the result.
func (c *Cluster) Drive() Result {
	defer c.releaseAll()
	var processed int64
	for len(c.evq) > 0 && c.res.Err == nil {
		if processed++; processed > c.cfg.MaxEvents {
			c.res.Err = fmt.Errorf("cluster: event budget exceeded (%d events; livelock?)", c.cfg.MaxEvents)
			c.res.Infra = true
			break
		}
		ev := c.evq.pop()
		if ev.at > c.res.FinalCycle {
			c.res.FinalCycle = ev.at
		}
		if c.extCrash.Load() != 0 {
			if n := c.takeExtCrash(); n >= 0 {
				c.schedule(ev.at, evCrash, n, nil, 0)
			}
		}
		if c.pacer != nil {
			c.pacer(ev.at)
		}
		c.dispatch(ev)
	}
	c.finalize()
	return c.res
}

func (c *Cluster) schedule(at sim.Cycle, kind evKind, node int, req *request, arg int) {
	c.scheduleEv(event{at: at, kind: kind, node: node, req: req, arg: arg})
}

func (c *Cluster) scheduleEv(e event) {
	c.seq++
	e.seq = c.seq
	c.evq.push(e)
}

func (c *Cluster) fail(err error) {
	if c.res.Err == nil {
		c.res.Err = err
		c.res.Infra = true
	}
}

// hopDelay is one network hop: base latency plus uniform jitter.
func (c *Cluster) hopDelay() sim.Cycle {
	d := c.cfg.HopLatency
	if c.cfg.HopJitter > 0 {
		d += sim.Cycle(c.rng.Int63n(int64(c.cfg.HopJitter)))
	}
	return d
}

// backoff is the client retry delay before attempt `attempt` (>= 2):
// exponential in the attempt number with uniform jitter of half a base.
func (c *Cluster) backoff(attempt int) sim.Cycle {
	d := c.cfg.BackoffBase << (attempt - 2)
	if d > c.cfg.Timeout {
		d = c.cfg.Timeout // cap so late retries don't overshoot the horizon
	}
	return d + sim.Cycle(c.rng.Int63n(int64(c.cfg.BackoffBase/2+1)))
}

func (c *Cluster) dispatch(ev event) {
	switch ev.kind {
	case evArrive:
		c.onArrive(ev.node, ev.at)
	case evRetry:
		if ev.req.done {
			return // resolved (a late ack) before the retry fired
		}
		c.route(ev.req, ev.at)
	case evNodeRecv:
		c.onNodeRecv(c.nodes[ev.node], ev.req, ev.arg, ev.at)
	case evNodeDone:
		c.onNodeDone(c.nodes[ev.node], ev.req, ev.arg, ev.ver, ev.at)
	case evResp:
		c.onResp(ev.req, ev.arg, ev.node, ev.ver, ev.at)
	case evTimeout:
		if ev.req.done || ev.arg != ev.req.attempt {
			return
		}
		c.res.Timeouts++
		c.retryOrFail(ev.req, ev.at)
	case evCrash:
		n := c.nodes[ev.node]
		if n.state == nodeDown {
			return // double strike while already down
		}
		c.crashNode(n, ev.at)
	case evRecovered:
		c.onRecovered(c.nodes[ev.node], ev.at)
	case evHealthDown:
		n := c.nodes[ev.node]
		if n.crashes != ev.arg || n.state == nodeUp {
			return // a newer strike rescheduled detection, or the node beat the detector back up
		}
		c.health[ev.node] = false
		if n.windowOpen {
			if w := &c.res.Windows[n.windowIdx]; w.DetectedAt == 0 {
				w.DetectedAt = ev.at
			}
		}
		if c.cfg.Replicas > 1 {
			c.schedule(ev.at+c.cfg.PromoteDelay, evPromote, ev.node, nil, ev.arg)
		}
	case evReplRecv:
		c.onReplRecv(c.nodes[ev.node], ev.repl, ev.at)
	case evReplDone:
		c.onReplDone(c.nodes[ev.node], ev.repl, ev.arg, ev.at)
	case evReplAck:
		c.onReplAck(ev.repl, ev.at)
	case evPromote:
		c.onPromote(c.nodes[ev.node], ev.arg, ev.at)
	case evResynced:
		c.onResynced(c.nodes[ev.node], ev.arg, ev.at)
	}
}

// onArrive materializes tenant t's pre-drawn request and draws the next.
func (c *Cluster) onArrive(t int, now sim.Cycle) {
	if c.generated >= int64(c.cfg.Requests) {
		return
	}
	pa := c.tenantNext[t]
	c.generated++
	c.res.Generated++
	req := &request{
		id:        c.generated,
		tenant:    t,
		key:       pa.key,
		read:      pa.read,
		attempt:   1,
		firstSend: now,
	}
	if req.read {
		c.res.Gets++
	} else {
		c.writeSeq++
		req.val = c.writeSeq
		c.res.Puts++
	}
	c.outstanding++
	c.route(req, now)
	if c.generated < int64(c.cfg.Requests) {
		at, read, key := c.load.Next(t, now)
		c.tenantNext[t] = pendingArrival{read: read, key: key}
		c.schedule(at, evArrive, t, nil, 0)
	}
}

// route sends one attempt toward the key's first live replica. Without
// replication that is the single owner (fast-fail when the router
// believes it is down). With replication the router walks the ordered
// replica set: a member known down *and* failed-over is skipped; a
// member known down but not yet promoted blocks the walk (promotion is
// what authorizes the next replica to serve), so the request fast-fails
// and the client's backoff retry lands after promotion.
func (c *Cluster) route(req *request, now sim.Cycle) {
	nodeID, ok := c.ring.Owner(req.key), false
	if c.cfg.Replicas > 1 {
		for _, m := range c.groupOf(req.key) {
			nodeID = m
			if c.health[m] {
				ok = true
				break
			}
			if !c.failedOver[m] {
				break
			}
		}
	} else {
		ok = c.health[nodeID]
	}
	req.node = nodeID
	c.tel.Route(nodeID, now, req.key, req.attempt, !ok)
	if !ok {
		c.res.FastFails++
		c.schedule(now+c.hopDelay(), evResp, nodeID, req, respUnavail)
		return
	}
	c.schedule(now+c.hopDelay(), evNodeRecv, nodeID, req, req.attempt)
	c.schedule(now+c.cfg.Timeout, evTimeout, nodeID, req, req.attempt)
}

// onNodeRecv is a request arriving at its shard server.
func (c *Cluster) onNodeRecv(n *node, req *request, attempt int, now sim.Cycle) {
	if req.done || attempt != req.attempt {
		return // superseded attempt; the packet evaporates
	}
	if n.state != nodeUp {
		return // blackholed: down or wedged nodes don't answer; the client times out
	}
	if len(n.queue) >= c.cfg.QueueCap {
		c.res.Sheds++
		c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, true)
		c.schedule(now+c.hopDelay(), evResp, n.id, req, respShed)
		return
	}
	n.queue = append(n.queue, req)
	c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, false)
	if !n.busy {
		c.startService(n, now)
	}
}

// startService pulls the node's next work item — replication applies
// first (they carry other members' ack promises and are exempt from
// shedding), then client requests — and executes it on the machine. A
// node mid-resync serves only replication applies.
func (c *Cluster) startService(n *node, now sim.Cycle) {
	for {
		if n.busy || (n.state != nodeUp && n.state != nodeResync) {
			return
		}
		if n.pendingCrash > 0 && now >= n.pendingCrash {
			// The power failure event is due this very cycle; don't start
			// work the crash teardown would have to unwind.
			n.state = nodeWedged
			return
		}
		if len(n.replQueue) > 0 {
			msg := n.replQueue[0]
			copy(n.replQueue, n.replQueue[1:])
			n.replQueue = n.replQueue[:len(n.replQueue)-1]
			if msg.ver <= n.ver[msg.key] {
				// Superseded: a newer version already applied (commit order
				// crossed links during failover). The replica's state covers
				// this write, so the sync ack still goes out.
				c.res.ReplStale++
				c.ackRepl(n, msg, now)
				continue
			}
			c.serveApply(n, msg, now)
			return
		}
		if n.state != nodeUp || len(n.queue) == 0 {
			return
		}
		c.serveRequest(n, now)
		return
	}
}

// serveApply executes one replication apply on the node machine.
func (c *Cluster) serveApply(n *node, msg *replMsg, now sim.Cycle) {
	n.busy = true
	sr, err := c.runApply(n, msg, now)
	if err != nil {
		c.fail(err)
		return
	}
	if sr.committed {
		msg.committed = true
		n.kv[msg.key] = msg.val
		n.ver[msg.key] = msg.ver
		n.commits++
		c.res.ReplApplied++
	}
	if sr.crashed {
		tc := now + sr.dur - c.cfg.ServiceOverhead
		n.state = nodeWedged
		if !(n.pendingCrash > 0 && tc >= n.pendingCrash) {
			c.schedule(tc, evCrash, n.id, nil, 0)
		}
		return
	}
	done := now + sr.dur
	if n.pendingCrash > 0 && done >= n.pendingCrash {
		// Applied durably, but power fails before the ack leaves.
		n.state = nodeWedged
		return
	}
	c.scheduleEv(event{at: done, kind: evReplDone, node: n.id, repl: msg, arg: n.incarn})
}

// serveRequest pops the client queue head and executes it.
func (c *Cluster) serveRequest(n *node, now sim.Cycle) {
	req := n.queue[0]
	copy(n.queue, n.queue[1:])
	n.queue = n.queue[:len(n.queue)-1]
	n.busy = true
	n.inflight = req
	c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, false)

	var ver uint64
	if c.cfg.Replicas > 1 && !req.read {
		c.verSeq++
		ver = c.verSeq
	}
	sr, err := c.runService(n, req, ver, now)
	if err != nil {
		c.fail(err)
		return
	}
	if sr.committed {
		n.commits++
		c.res.CommittedPuts++
		req.committed = true
		c.shadow.commitPut(req.key, req.val)
		n.kv[req.key] = req.val
		if ver > 0 {
			n.ver[req.key] = ver
		}
		c.countCommitInWindows(n.id)
	}
	if req.read && !sr.crashed {
		req.loaded = sr.loaded
		c.shadow.checkGet(req.key, sr.loaded, n.kv[req.key], n.id, now)
	}
	if sr.crashed {
		// The machine lost power mid-request. If the cluster-scheduled
		// crash fired, its evCrash event performs the teardown at the
		// exact scheduled time; a machine-level self-trigger instead
		// gets a teardown event at the machine's crash cycle.
		tc := now + sr.dur - c.cfg.ServiceOverhead
		n.state = nodeWedged
		if !(n.pendingCrash > 0 && tc >= n.pendingCrash) {
			c.schedule(tc, evCrash, n.id, nil, 0)
		}
		return
	}
	done := now + sr.dur
	if n.pendingCrash > 0 && done >= n.pendingCrash {
		// The request committed, but power fails before the response
		// leaves the node: committed-but-unacked. The node wedges until
		// its crash event; the client sees a timeout.
		n.state = nodeWedged
		return
	}
	c.scheduleEv(event{at: done, kind: evNodeDone, node: n.id, req: req, arg: n.incarn, ver: ver})
}

// onNodeDone is the server finishing a client request: respond (or,
// for a sync-replicated Put, fan out to the replicas and defer the
// response to their acks) and pull the next queued work item.
func (c *Cluster) onNodeDone(n *node, req *request, incarn int, ver uint64, now sim.Cycle) {
	if n.incarn != incarn || n.state != nodeUp {
		return // stale completion from a pre-crash incarnation
	}
	n.busy = false
	n.inflight = nil
	n.served++
	if n.windowOpen {
		w := &c.res.Windows[n.windowIdx]
		w.ServingAt = now
		w.Closed = true
		n.windowOpen = false
	}
	if c.cfg.Replicas > 1 {
		c.stampFailover(req.key, n.id, now)
	}
	if c.cfg.Replicas > 1 && !req.read {
		c.replicate(n, req, ver, now)
	} else {
		c.scheduleEv(event{at: now + c.hopDelay(), kind: evResp, node: n.id, req: req, arg: respOK, ver: ver})
	}
	if len(n.queue) > 0 || len(n.replQueue) > 0 {
		c.startService(n, now)
	}
}

// stampFailover records, on every open window of another replica of
// this key, the first completion a surviving member served — evidence
// the key's shard stayed available through the crash.
func (c *Cluster) stampFailover(key uint64, servedBy int, now sim.Cycle) {
	for i := range c.res.Windows {
		w := &c.res.Windows[i]
		if !w.Closed && w.FailoverAt == 0 && w.Node != servedBy && c.inGroup(key, w.Node) {
			w.FailoverAt = now
		}
	}
}

// onResp is a response reaching the client.
func (c *Cluster) onResp(req *request, kind, nodeID int, ver uint64, now sim.Cycle) {
	if req.done {
		c.res.Late++
		return
	}
	switch kind {
	case respOK:
		req.done = true
		c.outstanding--
		c.res.Acked++
		c.res.Latency.Observe(int64(now - req.firstSend))
		if !req.read {
			c.res.AckedPuts++
			c.shadow.ackPut(req.key, req.val, nodeID, now)
			if ver > 0 {
				c.shadow.noteAcked(req.key, ver)
			}
		}
	case respShed, respUnavail, respReset:
		if kind == respReset {
			c.res.Resets++
		}
		c.retryOrFail(req, now)
	}
}

// retryOrFail re-sends with backoff, or gives up once the retry budget
// is spent.
func (c *Cluster) retryOrFail(req *request, now sim.Cycle) {
	if req.attempt > c.cfg.Retries {
		req.done = true
		c.outstanding--
		c.res.Failed++
		return
	}
	req.attempt++
	c.res.Retries++
	c.schedule(now+c.backoff(req.attempt), evRetry, -1, req, req.attempt)
}

// onRecovered brings the next incarnation of a node into service.
// Without replication it rejoins immediately; with replication it
// enters the catch-up resync first and rejoins at evResynced.
func (c *Cluster) onRecovered(n *node, now sim.Cycle) {
	n.incarn++
	if err := c.bootNode(n); err != nil {
		c.fail(err)
		return
	}
	c.released[n.id] = false
	for n.nextCrash < len(n.crashTimes) && n.crashTimes[n.nextCrash] <= now {
		n.nextCrash++
	}
	n.pendingCrash = 0
	if n.nextCrash < len(n.crashTimes) {
		n.pendingCrash = n.crashTimes[n.nextCrash]
	}
	if n.windowOpen {
		c.res.Windows[n.windowIdx].RecoveredAt = now
	}
	if c.cfg.Replicas > 1 {
		n.state = nodeResync
		c.tel.NodeState(n.id, now, telemetry.NodeRecovering, n.crashes)
		cost, crashed, err := c.resyncNode(n, now)
		if err != nil {
			c.fail(err)
			return
		}
		if crashed {
			// Power failed mid-catch-up: the committed prefix is durable
			// and the node's scheduled evCrash performs the teardown.
			n.state = nodeWedged
			return
		}
		c.schedule(now+cost, evResynced, n.id, nil, n.incarn)
		return
	}
	n.state = nodeUp
	c.health[n.id] = true
	c.tel.NodeState(n.id, now, telemetry.NodeUp, n.crashes)
}

// countCommitInWindows credits a commit on nodeID to every open crash
// window of *other* nodes — the "surviving nodes keep serving" proof.
func (c *Cluster) countCommitInWindows(nodeID int) {
	for i := range c.res.Windows {
		w := &c.res.Windows[i]
		if !w.Closed && w.Node != nodeID {
			w.CommitsElsewhere++
		}
	}
}

// finalize clamps open windows, snapshots per-node stats, and copies
// the shadow verdicts into the result.
func (c *Cluster) finalize() {
	for i := range c.res.Windows {
		if !c.res.Windows[i].Closed {
			c.res.Windows[i].ServingAt = c.res.FinalCycle
		}
	}
	for _, n := range c.nodes {
		c.res.PerNode = append(c.res.PerNode, NodeStats{
			Served: n.served, Commits: n.commits, Crashes: n.crashes,
		})
	}
	c.res.Divergences = c.shadow.divergences
	c.res.AckedLost = c.shadow.ackedLost
	if c.res.Err == nil && c.outstanding != 0 {
		// The event queue drained with live requests — a harness bug.
		c.res.Err = fmt.Errorf("cluster: %d requests unresolved at drain", c.outstanding)
		c.res.Infra = true
	}
}

// releaseAll returns every live machine's pooled resources.
func (c *Cluster) releaseAll() {
	for _, n := range c.nodes {
		if n.m != nil && !c.released[n.id] {
			n.m.Release()
			c.released[n.id] = true
		}
	}
}
